#!/usr/bin/env python
"""Load generator for ``repro.serve``: drive the query server, emit
``BENCH_serve.json``.

Two traffic shapes:

* **closed-loop** (default) — N worker threads, each with one persistent
  keep-alive connection, firing the next request the moment the previous
  response lands.  Measures the server's saturation throughput.
* **open-loop** — requests arrive on a fixed schedule (``--rate`` per
  second) regardless of how fast responses come back; latency is
  measured from the *scheduled* arrival, so queueing delay shows up in
  the percentiles the way it would for real users.

Traffic is a weighted endpoint mix (``--profile``); point-query
parameters are drawn from a bounded key space (``--keyspace``) so
repeats exercise the in-memory LRU tier.  After the run the generator
scrapes ``/metrics`` and folds the server-side cache-tier counters into
the report next to the client-side latency percentiles.

Usage::

    python scripts/run_loadgen.py --spawn [--mode closed|open]
        [--duration S] [--connections N] [--rate QPS]
        [--profile mixed|eval|cached] [--keyspace K] [--seed N]
        [--output BENCH_serve.json] [--check] [--check-against BASELINE]

``--spawn`` boots ``python -m repro serve`` on a free port and tears it
down afterwards; otherwise point ``--host``/``--port`` at a running
server.  ``--check`` is the CI smoke gate: fail unless ``/healthz`` and
``/metrics`` respond, every request class succeeded, and the obs
counters are non-zero.  ``--check-against`` fails on a large QPS
regression vs a committed baseline JSON.
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import random
import re
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"

# weighted endpoint mixes; "cached" hammers a tiny key space so nearly
# everything after warmup is an LRU hit
PROFILES = {
    "mixed": (("eval", 70), ("sweep", 10), ("optimize", 10),
              ("report", 5), ("healthz", 5)),
    "eval": (("eval", 100),),
    "cached": (("eval", 95), ("healthz", 5)),
}

_MODELS = ("merging-symmetric", "merging-asymmetric",
           "hm-symmetric", "comm-symmetric")
_R_CHOICES = (1.0, 4.0, 16.0, 32.0, 64.0)


class RequestFactory:
    """Deterministic per-worker request stream for one profile."""

    def __init__(self, profile: str, keyspace: int, seed: int):
        self.rng = random.Random(seed)
        self.keyspace = max(1, keyspace)
        pairs = PROFILES[profile]
        self.endpoints = [name for name, _ in pairs]
        self.weights = [weight for _, weight in pairs]

    def _point(self) -> dict:
        """One point query from a key space of ``keyspace`` distinct
        parameter tuples (repeats are what the LRU tier feeds on)."""
        k = self.rng.randrange(self.keyspace)
        sub = random.Random(k)  # key index -> stable parameter tuple
        return {
            "model": sub.choice(_MODELS),
            "f": round(sub.uniform(0.5, 0.999), 4),
            "fcon_share": round(sub.uniform(0.1, 0.9), 3),
            "fored_share": round(sub.uniform(0.1, 0.9), 3),
            "r": sub.choice(_R_CHOICES),
            "rl": sub.choice(_R_CHOICES),
        }

    def next(self) -> "tuple[str, str, str, bytes | None]":
        """Returns ``(endpoint_label, method, path, body)``."""
        endpoint = self.rng.choices(self.endpoints, self.weights)[0]
        if endpoint == "eval":
            return endpoint, "POST", "/v1/eval", json.dumps(self._point()).encode()
        if endpoint == "sweep":
            q = self._point()
            body = {"model": q.pop("model"), "n": 256, "points": [q]}
            return endpoint, "POST", "/v1/sweep", json.dumps(body).encode()
        if endpoint == "optimize":
            q = self._point()
            point = {k: q[k] for k in ("f", "fcon_share", "fored_share")}
            body = {"points": [point]}
            return endpoint, "POST", "/v1/optimize", json.dumps(body).encode()
        if endpoint == "report":
            return endpoint, "GET", "/v1/report/fig4", None
        return "healthz", "GET", "/healthz", None


def _do_request(conn: http.client.HTTPConnection, method: str, path: str,
                body: "bytes | None") -> int:
    headers = {"Content-Type": "application/json"} if body else {}
    conn.request(method, path, body=body, headers=headers)
    resp = conn.getresponse()
    resp.read()
    return resp.status


def closed_loop_worker(host: str, port: int, factory: RequestFactory,
                       deadline: float, samples: list) -> None:
    """Fire back-to-back requests on one keep-alive connection until the
    deadline; appends ``(endpoint, seconds, ok)`` per request."""
    conn = http.client.HTTPConnection(host, port, timeout=30)
    try:
        while time.perf_counter() < deadline:
            endpoint, method, path, body = factory.next()
            t0 = time.perf_counter()
            try:
                status = _do_request(conn, method, path, body)
                ok = status == 200
            except (OSError, http.client.HTTPException):
                ok = False
                conn.close()
                conn = http.client.HTTPConnection(host, port, timeout=30)
            samples.append((endpoint, time.perf_counter() - t0, ok))
    finally:
        conn.close()


def open_loop_worker(host: str, port: int, factory: RequestFactory,
                     start: float, rate: float, n_workers: int,
                     worker_idx: int, deadline: float, samples: list) -> None:
    """Issue requests at scheduled arrival times (this worker takes every
    ``n_workers``-th slot of the global schedule).  Latency counts from
    the *scheduled* arrival, so a slow server accrues queueing delay."""
    conn = http.client.HTTPConnection(host, port, timeout=30)
    interval = n_workers / rate
    scheduled = start + (worker_idx / rate)
    try:
        while scheduled < deadline:
            now = time.perf_counter()
            if now < scheduled:
                time.sleep(scheduled - now)
            endpoint, method, path, body = factory.next()
            try:
                status = _do_request(conn, method, path, body)
                ok = status == 200
            except (OSError, http.client.HTTPException):
                ok = False
                conn.close()
                conn = http.client.HTTPConnection(host, port, timeout=30)
            samples.append((endpoint, time.perf_counter() - scheduled, ok))
            scheduled += interval
    finally:
        conn.close()


def _percentile(sorted_vals: "list[float]", q: float) -> float:
    if not sorted_vals:
        return 0.0
    idx = min(len(sorted_vals) - 1, int(round(q * (len(sorted_vals) - 1))))
    return sorted_vals[idx]


def _latency_ms(seconds: "list[float]") -> dict:
    vals = sorted(seconds)
    return {
        "p50": round(_percentile(vals, 0.50) * 1e3, 3),
        "p90": round(_percentile(vals, 0.90) * 1e3, 3),
        "p99": round(_percentile(vals, 0.99) * 1e3, 3),
        "mean": round(sum(vals) / len(vals) * 1e3, 3) if vals else 0.0,
        "max": round(vals[-1] * 1e3, 3) if vals else 0.0,
    }


_METRIC_LINE = re.compile(r'^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})?\s+(\S+)$')


def parse_metrics(text: str) -> "dict[tuple, float]":
    """Prometheus exposition text -> ``{(name, ((label, value), ...)): v}``.

    Handles exactly what our exporter emits (no escaped commas inside
    label values for the families this script reads)."""
    out: "dict[tuple, float]" = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        m = _METRIC_LINE.match(line)
        if not m:
            continue
        name, label_blob, value = m.groups()
        labels = []
        if label_blob:
            for part in label_blob.split(","):
                k, _, v = part.partition("=")
                labels.append((k, v.strip('"')))
        try:
            out[(name, tuple(sorted(labels)))] = float(value)
        except ValueError:
            continue
    return out


def _metric_sum(metrics: "dict[tuple, float]", name: str, **match) -> float:
    total = 0.0
    for (n, labels), value in metrics.items():
        if n != name:
            continue
        label_map = dict(labels)
        if all(label_map.get(k) == v for k, v in match.items()):
            total += value
    return total


def scrape_cache_stats(host: str, port: int) -> dict:
    """Server-side cache/evaluation counters from ``/metrics``."""
    conn = http.client.HTTPConnection(host, port, timeout=10)
    try:
        conn.request("GET", "/metrics")
        resp = conn.getresponse()
        text = resp.read().decode()
    finally:
        conn.close()
    metrics = parse_metrics(text)
    hits = _metric_sum(metrics, "serve_cache_lookups_total",
                       tier="lru", result="hit")
    misses = _metric_sum(metrics, "serve_cache_lookups_total",
                         tier="lru", result="miss")
    lookups = hits + misses
    evals = {}
    for (name, labels), value in metrics.items():
        if name == "serve_evaluations_total":
            evals[dict(labels).get("kind", "?")] = int(value)
    batches = _metric_sum(metrics, "serve_batch_points_count")
    points = _metric_sum(metrics, "serve_batch_points_sum")
    return {
        "lru_hits": int(hits),
        "lru_misses": int(misses),
        "lru_hit_rate": round(hits / lookups, 4) if lookups else None,
        "coalesced": int(_metric_sum(metrics, "serve_coalesced_total")),
        "evaluations": evals,
        "batches": int(batches),
        "batched_points": int(points),
        "points_per_batch": round(points / batches, 2) if batches else None,
        "requests_seen": int(_metric_sum(metrics, "serve_requests_total")),
    }


def fetch_healthz(host: str, port: int) -> dict:
    conn = http.client.HTTPConnection(host, port, timeout=10)
    try:
        conn.request("GET", "/healthz")
        resp = conn.getresponse()
        return json.loads(resp.read().decode())
    finally:
        conn.close()


def _free_port() -> int:
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


def spawn_server(cache_size: int = 4096) -> "tuple[subprocess.Popen, int]":
    """Boot ``python -m repro serve`` on a free port; wait for /healthz."""
    port = _free_port()
    env = {**os.environ, "PYTHONPATH": str(SRC), "REPRO_OBS": "1"}
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--host", "127.0.0.1", "--port", str(port),
         "--cache-size", str(cache_size)],
        cwd=REPO, env=env,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    deadline = time.perf_counter() + 30
    while time.perf_counter() < deadline:
        if proc.poll() is not None:
            raise SystemExit(f"spawned server exited early "
                             f"(code {proc.returncode})")
        try:
            if fetch_healthz("127.0.0.1", port).get("status") == "ok":
                return proc, port
        except OSError:
            time.sleep(0.05)
    proc.terminate()
    raise SystemExit("spawned server not healthy within 30s")


def run_load(host: str, port: int, mode: str, duration: float,
             connections: int, rate: float, profile: str,
             keyspace: int, seed: int) -> dict:
    """Drive the server and return the measured report dict."""
    per_worker: "list[list]" = [[] for _ in range(connections)]
    start = time.perf_counter()
    deadline = start + duration
    threads = []
    for i in range(connections):
        factory = RequestFactory(profile, keyspace, seed + i)
        if mode == "closed":
            target, args = closed_loop_worker, (
                host, port, factory, deadline, per_worker[i])
        else:
            target, args = open_loop_worker, (
                host, port, factory, start, rate, connections, i,
                deadline, per_worker[i])
        t = threading.Thread(target=target, args=args,
                             name=f"loadgen-{i}", daemon=True)
        t.start()
        threads.append(t)
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - start

    samples = [s for worker in per_worker for s in worker]
    errors = sum(1 for _, _, ok in samples if not ok)
    by_endpoint: "dict[str, list[float]]" = {}
    endpoint_errors: "dict[str, int]" = {}
    for endpoint, dt, ok in samples:
        by_endpoint.setdefault(endpoint, []).append(dt)
        if not ok:
            endpoint_errors[endpoint] = endpoint_errors.get(endpoint, 0) + 1

    report = {
        "schema": 1,
        "mode": mode,
        "profile": profile,
        "keyspace": keyspace,
        "duration_seconds": round(elapsed, 3),
        "connections": connections,
        "target_rate": rate if mode == "open" else None,
        "requests": len(samples),
        "errors": errors,
        "qps": round(len(samples) / elapsed, 1) if elapsed else 0.0,
        "latency_ms": _latency_ms([dt for _, dt, _ in samples]),
        "per_endpoint": {
            name: {
                "requests": len(vals),
                "errors": endpoint_errors.get(name, 0),
                **_latency_ms(vals),
            }
            for name, vals in sorted(by_endpoint.items())
        },
    }
    report["cache"] = scrape_cache_stats(host, port)
    report["server"] = fetch_healthz(host, port)
    return report


def check_report(report: dict) -> "list[str]":
    """CI smoke assertions; returns failure strings (empty = pass)."""
    failures = []
    if report["requests"] == 0:
        failures.append("no requests completed")
    if report["errors"]:
        failures.append(f"{report['errors']} request(s) failed")
    if report["server"].get("status") != "ok":
        failures.append("healthz status is not ok")
    cache = report["cache"]
    if not cache.get("requests_seen"):
        failures.append("serve_requests_total is zero: obs counters dead")
    if cache.get("lru_hits", 0) + cache.get("lru_misses", 0) == 0:
        failures.append("cache tier counters are zero")
    return failures


def check_against(report: dict, baseline: "dict | None",
                  threshold: float = 0.5) -> "list[str]":
    """QPS regression gate vs a committed baseline (generous threshold:
    CI machines vary far more than the benchmark machines do)."""
    if baseline is None:
        return []
    old, new = baseline.get("qps"), report.get("qps")
    if not (old and new):
        return []
    drop = 1.0 - new / old
    if drop > threshold:
        return [f"serve QPS {new:,.0f} vs baseline {old:,.0f} (-{drop:.0%})"]
    print(f"  serve regression gate: pass ({new:,.0f} vs {old:,.0f} qps)")
    return []


def main(argv: "list[str] | None" = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--host", default="127.0.0.1")
    ap.add_argument("--port", type=int, default=8177)
    ap.add_argument("--spawn", action="store_true",
                    help="boot `python -m repro serve` on a free port")
    ap.add_argument("--mode", choices=("closed", "open"), default="closed")
    ap.add_argument("--duration", type=float, default=10.0,
                    help="seconds of load (default 10)")
    ap.add_argument("--connections", type=int, default=8,
                    help="worker threads / persistent connections")
    ap.add_argument("--rate", type=float, default=200.0,
                    help="open-loop arrivals per second")
    ap.add_argument("--profile", choices=sorted(PROFILES), default="mixed")
    ap.add_argument("--keyspace", type=int, default=64,
                    help="distinct point-query parameter tuples")
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--cache-size", type=int, default=4096,
                    help="LRU entries for a --spawn'd server")
    ap.add_argument("--output", default=str(REPO / "BENCH_serve.json"))
    ap.add_argument("--check", action="store_true",
                    help="CI smoke gate: fail on errors or dead counters")
    ap.add_argument("--check-against", metavar="BASELINE",
                    help="fail on >50%% QPS regression vs this BENCH json")
    args = ap.parse_args(argv)

    baseline = None
    if args.check_against:
        baseline_path = Path(args.check_against)
        if baseline_path.exists():
            # read before the run: --output may point at the same file
            baseline = json.loads(baseline_path.read_text())
        else:
            print(f"note: baseline {baseline_path} not found; gate skipped")

    proc = None
    host, port = args.host, args.port
    try:
        if args.spawn:
            proc, port = spawn_server(args.cache_size)
            host = "127.0.0.1"
            print(f"spawned server on http://{host}:{port}")
        report = run_load(host, port, args.mode, args.duration,
                          args.connections, args.rate, args.profile,
                          args.keyspace, args.seed)
    finally:
        if proc is not None:
            proc.terminate()
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()

    out = Path(args.output)
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    lat = report["latency_ms"]
    cache = report["cache"]
    hit = cache["lru_hit_rate"]
    print(f"wrote {out}")
    print(f"  {report['mode']}-loop {report['profile']}: "
          f"{report['requests']} requests in {report['duration_seconds']}s "
          f"({report['qps']:,} qps, {report['errors']} errors)")
    print(f"  latency p50 {lat['p50']}ms  p90 {lat['p90']}ms  "
          f"p99 {lat['p99']}ms  max {lat['max']}ms")
    print(f"  lru hit rate {f'{hit:.1%}' if hit is not None else 'n/a'}  "
          f"coalesced {cache['coalesced']}  "
          f"points/batch {cache['points_per_batch']}")

    failures = []
    if args.check:
        failures += check_report(report)
    if args.check_against:
        failures += check_against(report, baseline)
    for f in failures:
        print(f"FAIL: {f}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
