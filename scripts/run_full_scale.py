#!/usr/bin/env python
"""Run the measurement experiments at the paper's full dataset scale.

The benchmark suite uses reduced datasets to keep CI fast; this script
reruns Table II and Fig 2 with ``scale=1.0`` — the actual Table IV
attribute values (kmeans/fuzzy: 17 695 x 9, C=8; hop: ~15k particles after
the generator's hop scaling) — and prints the resulting parameter tables.

Takes tens of seconds at the default mem_scale=2; use --mem-scale 1 for
exact (undersampled-free) memory traces at a few minutes.

Run:  python scripts/run_full_scale.py [--threads 1,2,4,8,16]
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.registry import run_experiment


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--threads", default="1,2,4,8,16")
    parser.add_argument("--mem-scale", type=int, default=2)
    args = parser.parse_args()
    threads = tuple(int(t) for t in args.threads.split(","))

    for eid, options in (
        ("table2", dict(scale=1.0, thread_counts=threads, mem_scale=args.mem_scale)),
        ("fig2", dict(scale=1.0, thread_counts=threads, mem_scale=args.mem_scale)),
    ):
        print(f"== {eid} at full scale ==", flush=True)
        t0 = time.time()
        report = run_experiment(eid, **options)
        print(report.render())
        status = "all claims hold" if report.all_match else "SOME CLAIMS FAILED"
        print(f"[{eid}: {status}; {time.time() - t0:.0f}s]\n", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
