#!/usr/bin/env python
"""Run the measurement experiments at the paper's full dataset scale.

The benchmark suite uses reduced datasets to keep CI fast; this script
reruns Table II and Fig 2 with ``scale=1.0`` — the actual Table IV
attribute values (kmeans/fuzzy: 17 695 x 9, C=8; hop: ~15k particles after
the generator's hop scaling) — and prints the resulting parameter tables.

Takes tens of seconds at the default mem_scale=2; use --mem-scale 1 for
exact (undersampled-free) memory traces at a few minutes.

``--parallel N`` runs the sweeps on N worker processes via
``repro.engine``: both experiments' units are gathered up front,
globally deduplicated (Table II and Fig 2 share their entire sweep), and
the misses execute concurrently; the reports are byte-identical to a
serial run.  See docs/engine.md.

``--listen HOST:PORT`` executes the sweeps on *remote* workers instead:
start ``repro worker --connect HOST:PORT`` on as many machines as you
like (see the "Distributed execution" section of docs/engine.md) — this
is the intended path for the full-scale design-space grid.

Run:  python scripts/run_full_scale.py [--threads 1,2,4,8,16] [--parallel 8]
"""

from __future__ import annotations

import argparse
import contextlib
import sys
import time

from repro.experiments.registry import run_experiment


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--threads", default="1,2,4,8,16")
    parser.add_argument("--mem-scale", type=int, default=2)
    parser.add_argument("--parallel", type=int, default=None, metavar="N",
                        help="run the sweeps on N engine worker processes")
    parser.add_argument("--event-log", default=None, metavar="PATH",
                        help="with --parallel: append engine events as JSONL")
    parser.add_argument("--listen", default=None, metavar="HOST:PORT",
                        help="execute sweeps on remote 'repro worker' "
                             "processes instead of local ones")
    parser.add_argument("--worker-timeout", type=float, default=None,
                        metavar="S",
                        help="with --listen: serial fallback when no worker "
                             "connects within S seconds")
    args = parser.parse_args()
    threads = tuple(int(t) for t in args.threads.split(","))
    options = dict(scale=1.0, thread_counts=threads, mem_scale=args.mem_scale)

    if args.parallel is not None or args.listen is not None:
        from repro import engine

        context = engine.session(args.parallel or 1, event_log=args.event_log,
                                 listen=args.listen,
                                 worker_timeout=args.worker_timeout)
    else:
        context = contextlib.nullcontext(None)

    with context as sess:
        if sess is not None:
            from repro.engine import precompute

            if sess.remote_address:
                print(f"[coordinator listening on {sess.remote_address}; "
                      f"join with: repro worker --connect "
                      f"{sess.remote_address}]", flush=True)
            t0 = time.time()
            n = precompute(sess, ("table2", "fig2"), options)
            print(f"[precomputed {n} declared units in {time.time() - t0:.0f}s; "
                  f"engine: {sess.summary()}]\n", flush=True)
        for eid in ("table2", "fig2"):
            print(f"== {eid} at full scale ==", flush=True)
            t0 = time.time()
            report = run_experiment(eid, **options)
            print(report.render())
            status = "all claims hold" if report.all_match else "SOME CLAIMS FAILED"
            print(f"[{eid}: {status}; {time.time() - t0:.0f}s]\n", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
