#!/usr/bin/env python
"""Benchmark regression harness: run the suite, emit ``BENCH_simx.json``.

Runs the pytest-benchmark suites (``benchmarks/test_throughput.py``,
``benchmarks/test_fastpath.py`` and ``benchmarks/test_obs_overhead.py``),
derives simulated ops/sec, the fast-path speedup ratios and the
observability overhead, times a simulator sweep cold vs disk-warm,
measures the ``runall`` precompute pass (cross-experiment unit dedup
ratio and cold-vs-warm resolve wall-clock), and writes everything to
``BENCH_simx.json`` in the repo root — the artifact CI uploads so the
perf trajectory is tracked across commits.

Usage::

    python scripts/run_bench.py [--output BENCH_simx.json] [--quick]
        [--check-against BASELINE] [--metrics-out METRICS.jsonl]
        [--fuzz-iters N] [--serve] [--sched]

``--quick`` trims benchmark rounds for a fast smoke run.
``--check-against`` is the CI regression gate: exit non-zero if any
benchmark with a known op count lost more than 25% ops/sec against the
committed baseline JSON.  ``--serve`` additionally runs the query-server
load benchmark (``scripts/run_loadgen.py --spawn``), writes
``BENCH_serve.json``, folds its headline numbers into the report, and —
when ``--check-against`` is given — gates serve QPS against the
committed ``BENCH_serve.json`` next to the baseline file.  ``--metrics-out`` additionally runs a small
instrumented sweep and writes its ``repro.obs`` metrics + spans as
JSONL (readable with ``repro stats``).  ``--fuzz-iters N`` first runs N
seeded random trace programs (``tests.differential.gen``) through all
three simulator engines and asserts cycle-identity — a fast
correctness screen before trusting the perf numbers.  ``--distributed``
additionally times one fixed sweep batch executed by 1 and then 2
``repro worker`` subprocesses over localhost (the remote backend's
worker-count scaling), recorded under the report's ``distributed`` key.
``--sched`` additionally measures the scheduler layer: pinned vs
round-robin dispatch ops/sec on the same seeded corpus (the delta is
the dispatch layer's cost, since the two schedules coincide) and
wall-clock timings for 1x..4x oversubscription, recorded under
``sched``; with ``--check-against``, the pinned rate must stay within
5% of the baseline's.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"


def run_pytest_benchmarks(quick: bool) -> dict:
    """Run the benchmark suites and return pytest-benchmark's JSON."""
    out = Path(tempfile.mkdtemp(prefix="repro-bench-")) / "pytest-bench.json"
    cmd = [
        sys.executable, "-m", "pytest",
        str(REPO / "benchmarks" / "test_throughput.py"),
        str(REPO / "benchmarks" / "test_fastpath.py"),
        str(REPO / "benchmarks" / "test_obs_overhead.py"),
        "-q", "-p", "no:cacheprovider",
        "--benchmark-only",
        f"--benchmark-json={out}",
    ]
    if quick:
        cmd += ["--benchmark-min-rounds=1", "--benchmark-warmup=off"]
    env = {**os.environ, "PYTHONPATH": str(SRC)}
    res = subprocess.run(cmd, cwd=REPO, env=env)
    if res.returncode != 0:
        raise SystemExit(f"benchmark run failed (exit {res.returncode})")
    return json.loads(out.read_text())


def summarise(bench_json: dict) -> dict:
    """Per-benchmark timings and ops/sec (where op counts are known).

    ops/sec uses the *minimum* round time: scheduler noise only ever adds
    time, so the min is the most reproducible basis for a regression bar.
    """
    rows = {}
    for b in bench_json.get("benchmarks", []):
        name = b["name"]
        row = {"mean_seconds": b["stats"]["mean"], "min_seconds": b["stats"]["min"]}
        n_ops = b.get("extra_info", {}).get("n_ops")
        if n_ops:
            row["n_ops"] = n_ops
            row["ops_per_sec"] = n_ops / b["stats"]["min"]
        rows[name] = row
    return rows


def _ratio(rows: dict, stem: str, engine: str = "fast") -> "float | None":
    new = rows.get(f"{stem}[{engine}]")
    ref = rows.get(f"{stem}[reference]")
    if not (new and ref and "ops_per_sec" in new and "ops_per_sec" in ref):
        return None
    return new["ops_per_sec"] / ref["ops_per_sec"]


def _grid_speedup(rows: dict) -> "float | None":
    """Vectorized vs scalar wall time on the 48-point conclusions grid."""
    grid = rows.get("test_conclusions_grid_vectorized", {}).get("min_seconds")
    scalar = rows.get("test_conclusions_grid_scalar", {}).get("min_seconds")
    if not (grid and scalar):
        return None
    return scalar / grid


def run_fuzz(iters: int) -> dict:
    """N generated trace programs through all three engines, asserting
    cycle-identity (the differential harness's seed corpus, re-usable as
    a pre-benchmark correctness screen)."""
    sys.path.insert(0, str(REPO))
    from tests.differential.gen import MIXES, generate_program
    from tests.differential.test_engine_identity import _CONFIG_RING, run_three
    from tests.simx.test_fastpath_differential import assert_identical

    t0 = time.perf_counter()
    for seed in range(iters):
        mix = MIXES[seed % len(MIXES)]
        config_name, cfg = _CONFIG_RING[seed % len(_CONFIG_RING)]
        program = generate_program(seed, mix)
        ref, fast, bat = run_three(cfg, program)
        why = f"fuzz seed={seed} mix={mix} config={config_name}"
        assert ref.n_ops == fast.n_ops == bat.n_ops, why
        assert_identical(fast, ref)
        assert_identical(bat, ref)
    dt = time.perf_counter() - t0
    return {
        "iters": iters,
        "seconds": round(dt, 3),
        "programs_per_sec": round(iters / dt, 1) if dt else None,
    }


def obs_overhead(rows: dict) -> dict:
    """Observability cost ratios vs the bare ``Machine._run`` loop."""
    bare = rows.get("test_bare_loop", {}).get("min_seconds")
    out = {}
    for mode in ("disabled", "enabled"):
        row = rows.get(f"test_obs_{mode}", {})
        if bare and row.get("min_seconds"):
            out[f"{mode}_overhead_x"] = round(row["min_seconds"] / bare, 4)
    return out


def check_regressions(rows: dict, baseline: dict, threshold: float = 0.25) -> list:
    """Benchmarks that lost more than ``threshold`` ops/sec vs baseline."""
    failures = []
    base_rows = baseline.get("benchmarks", {})
    for name, row in sorted(rows.items()):
        old = base_rows.get(name, {}).get("ops_per_sec")
        new = row.get("ops_per_sec")
        if not (old and new):
            continue
        drop = 1.0 - new / old
        if drop > threshold:
            failures.append(
                f"{name}: {new:,.0f} ops/s vs baseline {old:,.0f} (-{drop:.0%})"
            )
    return failures


def collect_metrics(path: Path) -> None:
    """Run a small instrumented sweep and dump its metrics/spans as JSONL."""
    from repro import obs
    from repro.experiments import simsweep

    obs.set_enabled(True)
    try:
        with tempfile.TemporaryDirectory(prefix="repro-obsbench-") as tmp:
            simsweep.set_disk_store(tmp)
            simsweep.clear_cache(memory_only=True)
            wl = simsweep.default_workloads(0.03)["kmeans"]
            simsweep.simulate_breakdowns(wl, (1, 2), n_cores=4, mem_scale=4)
            simsweep.set_disk_store(None)
            simsweep.clear_cache(memory_only=True)
        obs.write_jsonl(path, meta={"command": "scripts/run_bench.py"})
    finally:
        obs.set_enabled(False)
        obs.reset()
        obs.RECORDER.clear()


def time_sweep_cache() -> dict:
    """Cold vs disk-warm wall time for a small simulator sweep."""
    from repro.experiments import simsweep

    with tempfile.TemporaryDirectory(prefix="repro-sweep-") as tmp:
        simsweep.set_disk_store(tmp)
        simsweep.clear_cache(memory_only=True)
        wl = simsweep.default_workloads(0.05)["kmeans"]
        threads = (1, 2, 4)

        t0 = time.perf_counter()
        cold = simsweep.simulate_breakdowns(wl, threads, n_cores=4, mem_scale=4)
        cold_s = time.perf_counter() - t0

        simsweep.clear_cache(memory_only=True)  # drop memo, keep disk
        t0 = time.perf_counter()
        warm = simsweep.simulate_breakdowns(wl, threads, n_cores=4, mem_scale=4)
        warm_s = time.perf_counter() - t0
        info = simsweep.cache_info()
        simsweep.set_disk_store(None)

    assert {p: w.total for p, w in cold.items()} == {p: w.total for p, w in warm.items()}
    return {
        "cold_seconds": round(cold_s, 4),
        "disk_warm_seconds": round(warm_s, 4),
        "warm_speedup": round(cold_s / warm_s, 1) if warm_s else None,
        "hit_rate": info["hit_rate"],
        "disk_hits": info["disk_hits"],
        "misses": info["misses"],
    }


def time_runall_precompute() -> dict:
    """The ``runall`` precompute pass: declare every experiment's units,
    measure the cross-experiment dedup ratio, and time resolving the
    union cold vs disk-warm."""
    from repro.experiments import simsweep
    from repro.experiments.registry import SWEEP_DECLARATIONS, declare_units
    from repro.pipeline import resolve_units

    options = dict(scale=0.03, thread_counts=(1, 2, 16),
                   hw_thread_counts=(1, 2))
    units = []
    for eid in sorted(SWEEP_DECLARATIONS):
        units.extend(declare_units(eid, **options))
    unique = {u.key for u in units}

    with tempfile.TemporaryDirectory(prefix="repro-runall-") as tmp:
        simsweep.set_disk_store(tmp)
        simsweep.clear_cache(memory_only=True)

        t0 = time.perf_counter()
        resolve_units(units)
        cold_s = time.perf_counter() - t0

        simsweep.clear_cache(memory_only=True)  # drop memos, keep disk
        t0 = time.perf_counter()
        resolve_units(units)
        warm_s = time.perf_counter() - t0

        simsweep.set_disk_store(None)
        simsweep.clear_cache(memory_only=True)

    return {
        "experiments": len(SWEEP_DECLARATIONS),
        "declared_units": len(units),
        "unique_units": len(unique),
        "dedup_ratio": round(len(units) / len(unique), 3),
        "cold_seconds": round(cold_s, 4),
        "disk_warm_seconds": round(warm_s, 4),
        "warm_speedup": round(cold_s / warm_s, 1) if warm_s else None,
    }


def time_distributed(worker_counts=(1, 2)) -> dict:
    """Worker-count scaling for the remote execution backend.

    One fixed table2 sweep batch, executed by N real ``repro worker``
    subprocesses over localhost sockets (protocol, pickling and framing
    costs included), against the same units executed inline — the number
    that says what adding workers actually buys at this unit size.
    """
    from repro.engine.events import EventLog
    from repro.engine.remote import RemotePool
    from repro.engine.units import execute
    from repro.experiments.registry import declare_units

    options = dict(scale=0.2, thread_counts=(1, 2, 4))
    units = list({u.key: u for u in
                  declare_units("table2", **options)}.values())

    t0 = time.perf_counter()
    for u in units:
        execute(u.kind, u.spec)
    serial_s = time.perf_counter() - t0

    out = {"units": len(units), "serial_seconds": round(serial_s, 4),
           "workers": {}}
    env = {**os.environ, "PYTHONPATH": str(SRC)}
    for n in worker_counts:
        events = EventLog()
        pool = RemotePool("127.0.0.1:0", lease_timeout=600.0, events=events)
        procs = [
            subprocess.Popen(
                [sys.executable, "-m", "repro", "worker", "--connect",
                 pool.address, "--name", f"bench-w{i}", "--retry-for", "60"],
                env=env, cwd=REPO,
                stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
            )
            for i in range(n)
        ]
        try:
            # time the execution, not the workers' interpreter startup:
            # the clock starts once all N workers are connected
            deadline = time.monotonic() + 60
            while (events.count("worker_connected") < n
                   and time.monotonic() < deadline):
                time.sleep(0.01)
            t0 = time.perf_counter()
            results = pool.run(units)
            dt = time.perf_counter() - t0
        finally:
            pool.close()
            for p in procs:
                p.terminate()
            for p in procs:
                try:
                    p.wait(timeout=30)
                except subprocess.TimeoutExpired:
                    p.kill()
        assert len(results) == len(units)
        out["workers"][str(n)] = {
            "seconds": round(dt, 4),
            "speedup_vs_serial": round(serial_s / dt, 2) if dt else None,
        }
    return out


def time_sched(quick: bool = False) -> dict:
    """Dispatch-layer cost and oversubscription scaling.

    Pinned vs round-robin on the *same* seeded program corpus, both on
    the reference engine with one thread per core: the round-robin
    schedule degenerates to the pinned one (see ``tests/sched``), so the
    ops/sec delta is purely the scheduler layer's dispatch overhead.
    Then a fixed compute workload at 1x..4x threads per core, timing the
    wall clock and recording the simulated dispatch accounting.
    """
    from dataclasses import replace

    from repro.simx import (
        Compute,
        Machine,
        MachineConfig,
        ThreadTrace,
        TraceProgram,
    )

    sys.path.insert(0, str(REPO))
    from tests.differential.gen import MIXES, generate_program

    base = replace(MachineConfig.baseline(n_cores=4),
                   fast_path=False, batch_path=False)
    n_programs = 8 if quick else 24
    programs = [generate_program(seed, MIXES[seed % len(MIXES)])
                for seed in range(n_programs)]

    def rate(cfg):
        for prog in programs:  # untimed warmup pass
            Machine(cfg).run(prog)
        best = None
        ops = 0
        for _ in range(1 if quick else 3):
            ops = 0
            t0 = time.perf_counter()
            for prog in programs:
                ops += Machine(cfg).run(prog).n_ops
            dt = time.perf_counter() - t0
            best = dt if best is None or dt < best else best
        return ops / best

    pinned_rate = rate(base)
    rr_rate = rate(replace(base, scheduler="round-robin"))

    def wide_program(n_threads, total=240_000):
        per = max(200, total // n_threads)
        return TraceProgram(f"wide-{n_threads}", [
            ThreadTrace(t, [Compute(200)] * (per // 200))
            for t in range(n_threads)
        ])

    oversub = {}
    cfg = replace(base, scheduler="round-robin", quantum=1000,
                  migration_cost=20)
    for ratio in (1, 2, 4):
        prog = wide_program(4 * ratio)
        t0 = time.perf_counter()
        res = Machine(cfg).run(prog)
        oversub[f"{ratio}x"] = {
            "threads": 4 * ratio,
            "wall_seconds": round(time.perf_counter() - t0, 4),
            "simulated_cycles": res.total_cycles,
            "preemptions": res.sched.preemptions,
            "migrations": res.sched.migrations,
        }

    return {
        "programs": n_programs,
        "pinned_ops_per_sec": round(pinned_rate, 1),
        "round_robin_ops_per_sec": round(rr_rate, 1),
        "dispatch_overhead_x": (round(pinned_rate / rr_rate, 3)
                                if rr_rate else None),
        "oversubscription": oversub,
    }


def check_sched_regression(sched: dict, baseline: dict,
                           threshold: float = 0.05) -> list:
    """The pinned dispatch rate must stay within ``threshold`` of the
    committed baseline — the scheduler refactor's "don't slow the
    paper's path" bar, tighter than the generic 25%% ops/sec gate.
    Skipped when the baseline predates the ``sched`` section."""
    old = (baseline or {}).get("sched", {}).get("pinned_ops_per_sec")
    new = sched.get("pinned_ops_per_sec")
    if not (old and new):
        return []
    drop = 1.0 - new / old
    if drop > threshold:
        return [f"pinned dispatch {new:,.0f} ops/s vs baseline "
                f"{old:,.0f} (-{drop:.0%}, bar is {threshold:.0%})"]
    return []


def run_serve_bench(output: Path, duration: float,
                    check_against: "Path | None") -> "tuple[dict, list]":
    """The serve load benchmark via ``run_loadgen`` (same interpreter);
    returns its headline numbers and any gate failures."""
    sys.path.insert(0, str(REPO / "scripts"))
    import run_loadgen

    argv = ["--spawn", "--duration", str(duration), "--check",
            "--output", str(output)]
    if check_against is not None:
        argv += ["--check-against", str(check_against)]
    rc = run_loadgen.main(argv)
    report = json.loads(output.read_text())
    summary = {
        "qps": report["qps"],
        "p50_ms": report["latency_ms"]["p50"],
        "p99_ms": report["latency_ms"]["p99"],
        "lru_hit_rate": report["cache"]["lru_hit_rate"],
    }
    return summary, ([] if rc == 0 else ["serve benchmark gate failed "
                                         "(see run_loadgen output above)"])


def main(argv: "list[str] | None" = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--output", default=str(REPO / "BENCH_simx.json"))
    ap.add_argument("--quick", action="store_true",
                    help="single benchmark round (smoke run)")
    ap.add_argument("--check-against", metavar="BASELINE",
                    help="fail on >25%% ops/sec regression vs this BENCH json")
    ap.add_argument("--metrics-out", metavar="FILE",
                    help="write repro.obs metrics JSONL from an instrumented sweep")
    ap.add_argument("--fuzz-iters", type=int, metavar="N", default=0,
                    help="run N differential fuzz programs through all three "
                         "engines before benchmarking")
    ap.add_argument("--serve", action="store_true",
                    help="also run the serve load benchmark "
                         "(writes BENCH_serve.json)")
    ap.add_argument("--serve-output", default=str(REPO / "BENCH_serve.json"))
    ap.add_argument("--serve-duration", type=float, default=8.0)
    ap.add_argument("--distributed", action="store_true",
                    help="also time a sweep batch on 1 vs 2 remote "
                         "'repro worker' subprocesses (worker-count scaling)")
    ap.add_argument("--sched", action="store_true",
                    help="also measure scheduler-layer dispatch cost "
                         "(pinned vs round-robin ops/sec) and "
                         "oversubscription timings")
    args = ap.parse_args(argv)

    sys.path.insert(0, str(SRC))

    fuzz = None
    if args.fuzz_iters:
        fuzz = run_fuzz(args.fuzz_iters)
        print(f"differential fuzz: {fuzz['iters']} programs cycle-identical "
              f"across 3 engines ({fuzz['programs_per_sec']} programs/s)")

    baseline = None
    if args.check_against:
        baseline_path = Path(args.check_against)
        if baseline_path.exists():
            # read before benchmarks run: --output may point at the same file
            baseline = json.loads(baseline_path.read_text())
        else:
            print(f"note: baseline {baseline_path} not found; gate skipped")

    bench_json = run_pytest_benchmarks(args.quick)
    rows = summarise(bench_json)
    report = {
        "schema": 3,
        "machine_info": bench_json.get("machine_info", {}).get("cpu", {}),
        "python": bench_json.get("machine_info", {}).get("python_version"),
        "benchmarks": rows,
        "fastpath": {
            "private_burst_speedup": _ratio(rows, "test_private_burst"),
            "shared_heavy_ratio": _ratio(rows, "test_shared_heavy"),
            "kmeans_mix_speedup": _ratio(rows, "test_kmeans_mix"),
            "private_burst_batch_speedup": _ratio(rows, "test_private_burst",
                                                  "batch"),
            "shared_heavy_batch_ratio": _ratio(rows, "test_shared_heavy",
                                               "batch"),
            "kmeans_mix_batch_speedup": _ratio(rows, "test_kmeans_mix",
                                               "batch"),
        },
        "model_grid_speedup": _grid_speedup(rows),
        "obs": obs_overhead(rows),
        "sweep_cache": time_sweep_cache(),
        "runall_precompute": time_runall_precompute(),
    }
    if fuzz is not None:
        report["differential_fuzz"] = fuzz
    if args.distributed:
        report["distributed"] = time_distributed()
    if args.sched:
        report["sched"] = time_sched(args.quick)

    serve_failures: list = []
    if args.serve:
        serve_baseline = None
        if args.check_against:
            # the serve baseline is the committed BENCH_serve.json in the
            # same directory as the simx baseline
            serve_baseline = Path(args.check_against).parent / "BENCH_serve.json"
        report["serve"], serve_failures = run_serve_bench(
            Path(args.serve_output), args.serve_duration, serve_baseline)

    out = Path(args.output)
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    if args.metrics_out:
        collect_metrics(Path(args.metrics_out))
        print(f"wrote obs metrics to {args.metrics_out}")

    fp = report["fastpath"]
    print(f"\nwrote {out}")
    for k, v in fp.items():
        print(f"  {k:28} {v:.2f}x" if v else f"  {k:28} n/a")
    mg = report["model_grid_speedup"]
    print(f"  model_grid_speedup           {mg:.1f}x" if mg
          else "  model_grid_speedup           n/a")
    for k, v in report["obs"].items():
        print(f"  obs {k:20} {v:.3f}x")
    sc = report["sweep_cache"]
    print(f"  sweep cold -> disk-warm  {sc['cold_seconds']}s -> "
          f"{sc['disk_warm_seconds']}s (hit rate {sc['hit_rate']:.0%})")
    rp = report["runall_precompute"]
    print(f"  runall precompute        {rp['declared_units']} units -> "
          f"{rp['unique_units']} unique (dedup {rp['dedup_ratio']}x); "
          f"cold {rp['cold_seconds']}s -> warm {rp['disk_warm_seconds']}s")

    if "distributed" in report:
        dist = report["distributed"]
        per_n = ", ".join(
            f"{n}w {w['seconds']}s ({w['speedup_vs_serial']}x)"
            for n, w in sorted(dist["workers"].items()))
        print(f"  distributed              {dist['units']} units, serial "
              f"{dist['serial_seconds']}s; {per_n}")

    if "sched" in report:
        sd = report["sched"]
        per_ratio = ", ".join(
            f"{r} {w['wall_seconds']}s/{w['preemptions']}p"
            for r, w in sorted(sd["oversubscription"].items()))
        print(f"  sched dispatch           pinned "
              f"{sd['pinned_ops_per_sec']:,.0f} ops/s, round-robin "
              f"{sd['round_robin_ops_per_sec']:,.0f} ops/s "
              f"({sd['dispatch_overhead_x']}x); oversub {per_ratio}")

    if "serve" in report:
        sv = report["serve"]
        hit = sv["lru_hit_rate"]
        print(f"  serve                    {sv['qps']:,} qps, "
              f"p50 {sv['p50_ms']}ms / p99 {sv['p99_ms']}ms, "
              f"lru hit rate {f'{hit:.0%}' if hit is not None else 'n/a'}")

    ok = True
    if serve_failures:
        for f in serve_failures:
            print(f"FAIL: {f}")
        ok = False
    if fp["private_burst_speedup"] and fp["private_burst_speedup"] < 3.0:
        print("FAIL: private-burst speedup below the 3x acceptance bar")
        ok = False
    if fp["shared_heavy_ratio"] and fp["shared_heavy_ratio"] < 0.9:
        print("FAIL: fast path regresses the shared-heavy benchmark")
        ok = False
    if fp["kmeans_mix_batch_speedup"] and fp["kmeans_mix_batch_speedup"] < 2.0:
        print("FAIL: batch engine below the 2x kmeans-mix acceptance bar")
        ok = False
    if fp["shared_heavy_batch_ratio"] and fp["shared_heavy_batch_ratio"] < 0.9:
        print("FAIL: batch engine regresses the shared-heavy benchmark")
        ok = False
    if mg and mg < 5.0:
        print("FAIL: vectorized model grid below the 5x acceptance bar")
        ok = False
    if baseline is not None and "sched" in report:
        sched_failures = check_sched_regression(report["sched"], baseline)
        for f in sched_failures:
            print(f"FAIL: scheduler regression: {f}")
        if sched_failures:
            ok = False
        else:
            print("  sched dispatch gate vs baseline: pass (within 5%)")
    if baseline is not None:
        failures = check_regressions(rows, baseline)
        for f in failures:
            print(f"FAIL: ops/sec regression: {f}")
        if failures:
            ok = False
        else:
            print("  regression gate vs baseline: pass (within 25%)")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
