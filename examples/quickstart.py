#!/usr/bin/env python
"""Quickstart: predict multicore scalability for an application with a
merging phase.

The paper's headline workflow in ~30 lines: describe your application by
three numbers (parallel fraction, constant share of the serial time,
growing share of the reduction), then ask the extended model what chip to
build and how far the application scales — and compare against what plain
Amdahl/Hill–Marty would have (over-)promised.

Run:  python examples/quickstart.py
"""

from repro import AppParams, amdahl, hill_marty, merging, optimizer

# ── 1. characterise the application ─────────────────────────────────────
# A data-mining-style workload: 99% parallel; of the 1% serial time, 60%
# is constant (startup, convergence checks) and the rest is the merging
# phase, 80% of which grows with the core count (Algorithm 1-style
# accumulation of per-thread partials).
app = AppParams(f=0.99, fcon_share=0.60, fored_share=0.80, name="my-miner")
print(app.describe())

# ── 2. what Amdahl's Law promises ────────────────────────────────────────
print(f"\nAmdahl's limit (infinite cores):    {amdahl.speedup_limit(app.f):.0f}x")
print(f"Amdahl on 256 unit cores:           {amdahl.speedup(app.f, 256):.1f}x")
r_hm, sp_hm = hill_marty.best_symmetric(app.f, n=256)
print(f"Hill-Marty best symmetric design:   {sp_hm:.1f}x with {256 / r_hm:.0f} cores of {r_hm:.0f} BCEs")

# ── 3. what the merging-phase model says ─────────────────────────────────
best = merging.best_symmetric(app, n=256)           # Eq 4
print(f"\nWith reduction overhead (Eq 4):     {best.speedup:.1f}x "
      f"with {best.cores:.0f} cores of {best.r:.0f} BCEs")

best_acmp = merging.best_asymmetric(app, n=256)     # Eq 5
print(f"Best asymmetric design (Eq 5):      {best_acmp.speedup:.1f}x with one "
      f"{best_acmp.rl:.0f}-BCE core + {best_acmp.small_cores:.0f}x{best_acmp.r:.0f} BCEs")

# ── 4. the design decision in one call ───────────────────────────────────
cmp_ = optimizer.compare_architectures(app, n=256)
print(f"\nACMP advantage under Amdahl:        {cmp_.amdahl_speedup_ratio:.2f}x")
print(f"ACMP advantage with merging phases: {cmp_.acmp_speedup_ratio:.2f}x")
print("\n=> reduction overhead pushed the optimum from many tiny cores to "
      "fewer capable ones,\n   and mostly erased the asymmetric design's edge "
      "- the paper's conclusions (b) and (c).")
