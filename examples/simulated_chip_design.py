#!/usr/bin/env python
"""Building the chips, not just modelling them.

The analytic model (Eqs 4–5) says merging phases favour fewer, larger
cores and blunt asymmetric designs.  Here we *construct* those chips in
the simulator — heterogeneous cores, real caches, MESI coherence — and
run workloads on them:

1. every symmetric design of a 16-BCE budget running a merge-heavy
   histogram → the "fewer but more capable cores" crossover appears in
   measured cycles;
2. an ACMP (one 16-BCE core + 7 small cores) vs a symmetric 8-core chip
   on kmeans → the big core helps, but the memory-bound merge barely
   accelerates, which is exactly why the paper calls the ACMP advantage
   "quite limited" for these applications.

Run:  python examples/simulated_chip_design.py   (~20 s)
"""

from repro.simx import Machine, MachineConfig
from repro.viz import bar_chart
from repro.workloads import HistogramWorkload, KMeansWorkload, make_blobs
from repro.workloads.instrument import breakdown_from_simulation
from repro.workloads.tracegen import program_from_execution

BUDGET = 16

# ── 1. the crossover, in cycles ──────────────────────────────────────────
print("1. every 16-BCE symmetric design running a merge-heavy histogram\n")
workload = HistogramWorkload(n_items=20000, n_bins=8192, seed=7)
cycles = {}
r = 1
while r <= BUDGET:
    n_cores = BUDGET // r
    config = MachineConfig(
        n_cores=n_cores,
        core_perf_factors=tuple(float(r) ** 0.5 for _ in range(n_cores)),
    )
    result = Machine(config).run(
        program_from_execution(workload.execute(n_cores), mem_scale=2)
    )
    cycles[r] = result.total_cycles
    r *= 2

print(bar_chart(
    [f"{BUDGET // r}x{r}-BCE" for r in cycles],
    [cycles[1] / c for c in cycles.values()],
    title="speedup vs the 16x1-BCE design (higher is better)",
    width=40,
))
best = min(cycles, key=cycles.get)
print(f"\n=> the most-cores design loses; the measured optimum is "
      f"{BUDGET // best} cores of {best} BCEs - conclusion (b) with no "
      "model in the loop.\n")

# ── 2. ACMP vs symmetric, phase by phase ─────────────────────────────────
print("2. ACMP (1x16-BCE + 7x1-BCE) vs symmetric 8x1-BCE on kmeans\n")
kmeans = KMeansWorkload(
    make_blobs(3000, 9, 8, seed=11), max_iterations=3, tolerance=1e-12
)
sym = breakdown_from_simulation(
    Machine(MachineConfig.baseline(n_cores=8)).run(
        program_from_execution(kmeans.execute(8), mem_scale=2)
    )
)
acmp = breakdown_from_simulation(
    Machine(MachineConfig.asymmetric(rl=16, n_small=7, r=1)).run(
        program_from_execution(kmeans.execute(8), mem_scale=2)
    )
)
print(f"{'phase':>14} {'symmetric':>12} {'ACMP':>12} {'speedup':>9}")
for label, s_val, a_val in (
    ("parallel", sym.parallel, acmp.parallel),
    ("merge", sym.reduction, acmp.reduction),
    ("init+serial", sym.init + sym.serial, acmp.init + acmp.serial),
    ("total", sym.total, acmp.total),
):
    ratio = s_val / a_val if a_val else float("inf")
    print(f"{label:>14} {s_val:>12,.0f} {a_val:>12,.0f} {ratio:>8.2f}x")

print(f"""
=> the 16-BCE core computes 4x faster, but the merge - dominated by
   coherence misses on other threads' partials - speeds up only
   {sym.reduction / acmp.reduction:.2f}x: wires don't care about core area.
   That is mechanically why the paper finds the benefit of asymmetric
   over symmetric designs 'indeed quite limited' for reduction-heavy
   applications (conclusion (c)).""")
