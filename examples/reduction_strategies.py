#!/usr/bin/env python
"""Reduction strategies: measured on the simulator vs the analytic model.

The paper analyses three merge implementations — the serial loop of
Algorithm 1 (linear), a combining tree (logarithmic) and a privatised
parallel exchange (constant computation, growing communication).  This
example runs all three *mechanically* through the simulator on the same
kmeans problem, then lines the measurements up against the growth
functions the model assumes (Fig 4's Linear/Log curves and Fig 7's
parallel-reduction case).

Run:  python examples/reduction_strategies.py
"""

import numpy as np

from repro.core import communication as comm
from repro.core import merging
from repro.core.params import AppParams
from repro.simx import Machine, MachineConfig
from repro.viz import line_chart
from repro.workloads import KMeansWorkload, make_blobs
from repro.workloads.instrument import breakdown_from_simulation
from repro.workloads.tracegen import program_from_execution

THREADS = (1, 2, 4, 8, 16)

# ── measure the three strategies on the simulator ────────────────────────
print("simulating kmeans with three merge strategies...")
dataset = make_blobs(3000, 9, 8, seed=11)
machine = Machine(MachineConfig.baseline(n_cores=16))
measured = {}
for strategy in ("serial", "tree", "parallel"):
    curve = {}
    for p in THREADS:
        wl = KMeansWorkload(
            dataset, max_iterations=3, tolerance=1e-12, reduction_strategy=strategy
        )
        res = machine.run(program_from_execution(wl.execute(p), mem_scale=2))
        # merge cost on the critical path: the slowest thread's busy time
        # in the reduction phase
        b = breakdown_from_simulation(res)
        critical = max(
            res.phase_stats.busy_cycles("reduction", t) for t in range(p)
        )
        curve[p] = critical
    measured[strategy] = curve
    norm = {p: round(v / curve[1], 2) for p, v in curve.items()}
    print(f"  {strategy:>9}: merge critical path vs 1 thread: {norm}")

print("""
The shapes match the model's growth functions:
  serial   ~ p          (grow_linear)
  tree     ~ log2(p)+1  (grow_log)
  parallel ~ flat       (grow_parallel; communication moves to the NoC)
""")

# ── what the model says those shapes buy at 256 BCEs ─────────────────────
app = AppParams(f=0.99, fcon_share=0.60, fored_share=0.80)
sizes = merging.power_of_two_sizes(256)
curves = {
    "serial merge (Linear)": np.asarray(merging.speedup_symmetric(app, 256, sizes, "linear")),
    "tree merge (Log)": np.asarray(merging.speedup_symmetric(app, 256, sizes, "log")),
    "parallel merge + mesh": np.asarray(comm.speedup_symmetric_comm(app, 256, sizes)),
}
print(line_chart(
    [int(s) for s in sizes], curves,
    title="256-BCE symmetric chip: speedup vs core size, by merge strategy",
    logx=True, height=14,
))
for name, sp in curves.items():
    i = int(np.argmax(sp))
    print(f"  {name:>24}: peak {sp[i]:5.1f}x at r={int(sizes[i])} BCEs/core")
print("\n=> a better merge implementation moves the optimum back toward "
      "more, smaller cores -\n   implementation choices ARE architecture "
      "choices once merges grow with the core count.")
