#!/usr/bin/env python
"""The paper's full measurement pipeline on one workload.

Reproduces the methodology of Sections IV–V end to end:

1. build a clustering dataset and run k-means, partitioned over 1..16
   threads, on the discrete-event CMP simulator (the SESC substitute);
2. extract the Table II parameters (f, fcon, fred, fored) from the
   per-phase cycle counts;
3. validate the growing-serial-section observation on the modelled
   2-socket Xeon (Fig 2(c));
4. feed the extracted parameters into the extended model and predict
   scaling to 256 cores, next to plain Amdahl (Fig 3).

Run:  python examples/characterize_workload.py          (~30 s)
      python examples/characterize_workload.py --fast   (smaller dataset)
"""

import sys

import numpy as np

from repro.core import measured as mm
from repro.hardware import execute_workload
from repro.simx import Machine, MachineConfig
from repro.workloads import KMeansWorkload, make_blobs
from repro.workloads.instrument import (
    breakdown_from_simulation,
    extract_parameters,
    serial_growth_curve,
    speedup_curve,
)
from repro.workloads.tracegen import program_from_execution

FAST = "--fast" in sys.argv
N_POINTS = 1500 if FAST else 6000
THREADS = (1, 2, 4, 8, 16)

# ── 1. simulate across core counts ───────────────────────────────────────
print(f"simulating kmeans (N={N_POINTS}, D=9, C=8) on the Table I machine...")
workload = KMeansWorkload(
    make_blobs(N_POINTS, 9, 8, seed=11), max_iterations=4, tolerance=1e-12
)
machine = Machine(MachineConfig.baseline(n_cores=16))
breakdowns = {}
for p in THREADS:
    program = program_from_execution(workload.execute(p), mem_scale=2)
    result = machine.run(program)
    breakdowns[p] = breakdown_from_simulation(result)
    print(f"  {p:2d} threads: {result.total_cycles:>12,} cycles, "
          f"reduction {breakdowns[p].reduction:>9,.0f}")

print("\nspeedup:", {p: round(v, 2) for p, v in speedup_curve(breakdowns).items()})
print("serial growth (Fig 2b):",
      {p: round(v, 2) for p, v in serial_growth_curve(breakdowns).items()})

# ── 2. extract Table II parameters ───────────────────────────────────────
extracted = extract_parameters(breakdowns, "kmeans")
print(f"\nextracted parameters (Table II methodology):")
print(f"  serial fraction: {extracted.serial_pct:.4f}%  "
      f"(f = {1 - extracted.serial_pct / 100:.5f})")
print(f"  fcon = {extracted.fcon_share:.0%} of serial, "
      f"fred = {extracted.fred_share:.0%}")
print(f"  fored = {extracted.fored_rel:.0%} relative growth per core, "
      f"alpha = {extracted.growth_alpha:.2f}")

# ── 3. hardware validation (Fig 2c) ──────────────────────────────────────
hw = execute_workload(workload, (1, 2, 4, 8), backend="model")
print("\nserial growth on the modelled Xeon (Fig 2c):",
      {p: round(v, 2) for p, v in serial_growth_curve(hw).items()})

# ── 4. predict scaling to 256 cores (Fig 3) ──────────────────────────────
params = extracted.to_measured_params()
cores = np.array([1, 4, 16, 64, 256])
amdahl_curve = np.asarray(mm.speedup_amdahl(params, cores))
extended_curve = np.asarray(mm.speedup_extended(params, cores))
print("\nprediction to 256 cores (Fig 3):")
print(f"  {'cores':>6} {'Amdahl':>8} {'extended':>9}")
for c, a, e in zip(cores, amdahl_curve, extended_curve):
    print(f"  {int(c):>6} {a:>8.1f} {e:>9.1f}")
peak_p, peak_sp = mm.peak_core_count(params)
print(f"\n=> Amdahl keeps climbing; the extended model peaks at "
      f"{peak_sp:.0f}x on {peak_p} cores and declines beyond - "
      "'naively using Amdahl's Law can lead to speedup overestimation'.")
