#!/usr/bin/env python
"""Chip-architect scenario: choose a 256-BCE design for a workload mix.

An architect has a transistor budget of 256 base-core equivalents and a
portfolio of applications with different merging-phase profiles.  This
example:

1. maps the optimal symmetric core size across the (fcon, fored) plane;
2. prints the speedup-vs-core-count Pareto front for one workload;
3. quantifies when an asymmetric design is still worth building;
4. shows how the answer changes if the interconnect is a ring or a torus
   instead of the paper's mesh.

Run:  python examples/design_space_exploration.py
"""

import numpy as np

from repro import AppParams, optimizer
from repro.core import communication as comm
from repro.core import merging
from repro.noc import topology_growcomm

BUDGET = 256

# ── 1. optimal core size across the application space ───────────────────
print("optimal symmetric core size (BCEs/core), f = 0.99, linear growth")
cons = [0.90, 0.75, 0.60]
ores = [0.05, 0.20, 0.40, 0.60, 0.80]
grid = optimizer.optimal_r_map(0.99, BUDGET, cons, ores)
header = "fcon\\fored " + " ".join(f"{o:>5.0%}" for o in ores)
print(header)
for c, row in zip(cons, grid):
    print(f"{c:>9.0%}  " + " ".join(f"{int(v):>5d}" for v in row))
print("=> more reduction overhead (left to right) forces bigger cores.\n")

# ── 2. Pareto front for a concrete application ───────────────────────────
app = AppParams(f=0.99, fcon_share=0.60, fored_share=0.80, name="miner")
points = optimizer.optimal_design_grid(app, BUDGET)
front = optimizer.pareto_front(points)
print(f"Pareto front (speedup vs core count) for {app.describe()}:")
for pt in front:
    shape = (f"{pt.cores:.0f}x{pt.r:.0f}-BCE" if pt.architecture == "sym"
             else f"1x{pt.rl:.0f} + {pt.cores - 1:.0f}x{pt.r:.0f}-BCE")
    print(f"  {pt.speedup:6.1f}x  {pt.architecture:>4}  {shape}")
print()

# ── 3. when is asymmetry still worth it? ─────────────────────────────────
print("ACMP advantage vs reduction overhead (f = 0.99, fcon = 60%):")
for ored in (0.05, 0.2, 0.4, 0.6, 0.8):
    a = AppParams(f=0.99, fcon_share=0.60, fored_share=ored)
    adv = optimizer.acmp_advantage(a, BUDGET)
    bar = "#" * int(20 * (adv - 1)) if adv > 1 else ""
    print(f"  fored={ored:>4.0%}: {adv:5.2f}x {bar}")
print("=> the asymmetric edge shrinks as the merge grows (conclusion (c)).\n")

# ── 4. interconnect sensitivity (beyond the paper) ───────────────────────
print("communication-aware peak speedup by topology (parallel reduction):")
sizes = merging.power_of_two_sizes(BUDGET)
for topo in ("crossbar", "torus", "mesh", "ring"):
    growth = topology_growcomm(topo)
    sp = np.asarray(comm.speedup_symmetric_comm(app, BUDGET, sizes, comm=growth))
    i = int(np.argmax(sp))
    print(f"  {topo:>9}: peak {sp[i]:5.1f}x at r={int(sizes[i])} BCEs/core")
print("=> a richer network keeps smaller cores viable; a ring forces the\n"
      "   serial-engine design even harder than the paper's mesh.")
