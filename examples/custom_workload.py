#!/usr/bin/env python
"""Extending the library: characterise your *own* workload.

The three bundled workloads are MineBench's clustering benchmarks, but the
pipeline is generic: anything that subclasses ``ClusteringWorkloadBase``
and records per-phase work can be simulated, extracted and fed to the
model.  Here we build a word-count-style histogram workload — another
classic partial-write-reduction pattern [Jin & Agrawal] — and push it
through the whole pipeline.

Run:  python examples/custom_workload.py
"""

from dataclasses import dataclass

import numpy as np

from repro.core import merging
from repro.simx import Machine, MachineConfig
from repro.workloads.base import (
    PHASE_INIT,
    PHASE_PARALLEL,
    PHASE_REDUCTION,
    PHASE_SERIAL,
    ClusteringWorkloadBase,
    PhaseWork,
    WorkloadExecution,
)
from repro.workloads.instrument import breakdown_from_simulation, extract_parameters
from repro.workloads.tracegen import program_from_execution


@dataclass
class HistogramWorkload(ClusteringWorkloadBase):
    """Parallel histogram: classic privatised partial-write reduction.

    Each thread histograms its slice of the input into a private
    ``n_bins`` array; the merging phase accumulates one partial histogram
    per thread (Algorithm 1 structure); a serial phase normalises.
    """

    n_items: int = 200_000
    n_bins: int = 4096
    seed: int = 0

    name = "histogram"

    def execute(self, n_threads: int) -> WorkloadExecution:
        rng = np.random.default_rng(self.seed)
        data = rng.integers(0, self.n_bins, size=self.n_items)
        ex = WorkloadExecution(
            workload=self.name, n_threads=n_threads, n_iterations=1
        )
        master = lambda v: tuple(int(v) if t == 0 else 0 for t in range(n_threads))  # noqa: E731

        ex.add(PhaseWork(
            phase=PHASE_INIT,
            per_thread_instructions=master(self.n_bins),
            per_thread_reads=master(0),
            per_thread_writes=master(self.n_bins),
        ))

        counts = self.per_thread_counts(self.n_items, n_threads)
        slices = self.partition(self.n_items, n_threads)
        partials = [np.bincount(data[sl], minlength=self.n_bins) for sl in slices]
        ex.add(PhaseWork(
            phase=PHASE_PARALLEL,
            per_thread_instructions=tuple(int(c) * 6 for c in counts),
            per_thread_reads=tuple(int(c) for c in counts),
            per_thread_writes=tuple(int(c) for c in counts),
        ))

        histogram = np.zeros(self.n_bins, dtype=np.int64)
        for part in partials:  # Algorithm 1: master accumulates each thread
            histogram += part
        ex.add(PhaseWork(
            phase=PHASE_REDUCTION,
            per_thread_instructions=master(self.n_bins * n_threads * 2),
            per_thread_reads=master(self.n_bins * n_threads),
            per_thread_writes=master(self.n_bins),
            shared_reads=master(self.n_bins * (n_threads - 1)),
        ))

        ex.add(PhaseWork(
            phase=PHASE_SERIAL,
            per_thread_instructions=master(self.n_bins * 2),
            per_thread_reads=master(self.n_bins),
            per_thread_writes=master(self.n_bins),
        ))
        ex.outputs = {"histogram": histogram}
        return ex


def main() -> None:
    workload = HistogramWorkload(n_items=60_000, n_bins=2048)
    machine = Machine(MachineConfig.baseline(n_cores=16))

    print("simulating the histogram workload across core counts...")
    breakdowns = {}
    for p in (1, 2, 4, 8, 16):
        program = program_from_execution(workload.execute(p), mem_scale=4)
        result = machine.run(program)
        breakdowns[p] = breakdown_from_simulation(result)
        print(f"  {p:2d} threads: reduction {breakdowns[p].reduction:>10,.0f} cycles")

    extracted = extract_parameters(breakdowns, "histogram")
    print(f"\nextracted: f={1 - extracted.serial_pct / 100:.5f}, "
          f"fcon={extracted.fcon_share:.0%}, fored={extracted.fored_rel:.0%} "
          f"(alpha={extracted.growth_alpha:.2f})")

    # a histogram has a *large* reduction relative to its cheap per-item
    # work, so the growing merge bites early:
    params = extracted.to_measured_params().to_design_params()
    best = merging.best_symmetric(params, n=256)
    print(f"\noptimal 256-BCE chip for this workload: "
          f"{best.cores:.0f} cores of {best.r:.0f} BCEs -> {best.speedup:.1f}x")
    print("(compare kmeans, whose heavier per-point work tolerates many "
          "more cores)")

    check = int(workload.execute(4).outputs["histogram"].sum())
    assert check == 60_000, "histogram must count every item exactly once"
    print("\nnumeric check passed: histogram counts every item once.")


if __name__ == "__main__":
    main()
