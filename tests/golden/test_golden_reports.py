"""Golden regression: canonical reports must not drift.

Each experiment here is run twice — serially and through a two-worker
engine session — and both results are compared byte-for-byte against the
committed golden JSON.  This catches three failure classes at once:

* silent changes to simulator timing semantics or the model maths;
* report-schema drift (column renames, float formatting);
* parallel/serial divergence (the engine's byte-identity contract).

To regenerate after an intentional change, see ``tests/golden/README.md``
(``REPRO_REGEN_GOLDEN=1``).
"""

import json
import multiprocessing as mp
import os
from pathlib import Path

import pytest

from repro import engine
from repro.experiments import simsweep
from repro.experiments.registry import run_experiment
from repro.experiments.store import report_to_dict

GOLDEN_DIR = Path(__file__).parent

#: experiment id → driver options pinned by the golden file
GOLDEN_CASES = {
    "table2": dict(scale=0.03, thread_counts=(1, 2, 4)),
    "fig4": {},
}

fork_only = pytest.mark.skipif(
    "fork" not in mp.get_all_start_methods(),
    reason="the parallel phase needs the fork start method",
)


def canonical_bytes(report) -> bytes:
    """The golden on-disk form: indented, key-sorted JSON."""
    return (json.dumps(report_to_dict(report), indent=2, sort_keys=True)
            + "\n").encode()


def _regen() -> bool:
    return os.environ.get("REPRO_REGEN_GOLDEN", "") == "1"


@pytest.fixture
def fresh_store(tmp_path):
    """Per-phase throwaway sweep stores so every phase really executes."""
    restore = simsweep.get_disk_store()

    def switch(name):
        simsweep.set_disk_store(tmp_path / name)
        simsweep.clear_cache(memory_only=True)

    try:
        yield switch
    finally:
        simsweep.set_disk_store(restore)
        simsweep.clear_cache(memory_only=True)


@pytest.mark.parametrize("experiment_id", sorted(GOLDEN_CASES))
def test_serial_run_matches_golden(experiment_id, fresh_store):
    fresh_store(f"{experiment_id}-serial")
    report = run_experiment(experiment_id, **GOLDEN_CASES[experiment_id])
    got = canonical_bytes(report)
    path = GOLDEN_DIR / f"{experiment_id}.json"
    if _regen():
        path.write_bytes(got)
        pytest.skip(f"regenerated {path.name}")
    assert path.exists(), (
        f"missing golden file {path}; regenerate with REPRO_REGEN_GOLDEN=1"
    )
    assert got == path.read_bytes(), (
        f"{experiment_id} drifted from its golden report; if intentional, "
        "regenerate per tests/golden/README.md"
    )


@fork_only
@pytest.mark.parametrize("experiment_id", sorted(GOLDEN_CASES))
def test_parallel2_run_matches_golden(experiment_id, fresh_store):
    """--parallel 2 must reproduce the same bytes as the golden serial run."""
    path = GOLDEN_DIR / f"{experiment_id}.json"
    if _regen() and not path.exists():
        pytest.skip("regenerating: serial test writes the file")
    fresh_store(f"{experiment_id}-parallel")
    with engine.session(2):
        report = run_experiment(experiment_id, **GOLDEN_CASES[experiment_id])
    assert canonical_bytes(report) == path.read_bytes()


def test_golden_files_are_valid_reports():
    """The committed files parse and carry the expected experiment ids."""
    for experiment_id in GOLDEN_CASES:
        data = json.loads((GOLDEN_DIR / f"{experiment_id}.json").read_text())
        assert data["experiment_id"] == experiment_id
        assert data["tables"], f"{experiment_id} golden has no tables"
