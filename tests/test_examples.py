"""Keep the examples runnable: execute each script end to end.

The fast scripts run as-is; the simulator-heavy ones run in their --fast /
reduced configurations so the suite stays quick.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, argv: "list[str] | None" = None):
    old_argv = sys.argv
    sys.argv = [name] + (argv or [])
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


class TestExamples:
    def test_quickstart(self, capsys):
        run_example("quickstart.py")
        out = capsys.readouterr().out
        assert "36.2" in out and "43.3" in out

    def test_design_space_exploration(self, capsys):
        run_example("design_space_exploration.py")
        out = capsys.readouterr().out
        assert "Pareto front" in out
        assert "crossbar" in out

    def test_custom_workload(self, capsys):
        run_example("custom_workload.py")
        out = capsys.readouterr().out
        assert "numeric check passed" in out

    @pytest.mark.slow
    def test_characterize_workload_fast_mode(self, capsys):
        run_example("characterize_workload.py", ["--fast"])
        out = capsys.readouterr().out
        assert "extracted parameters" in out
        assert "peak" in out

    @pytest.mark.slow
    def test_reduction_strategies(self, capsys):
        run_example("reduction_strategies.py")
        out = capsys.readouterr().out
        assert "peak" in out and "tree merge" in out

    @pytest.mark.slow
    def test_simulated_chip_design(self, capsys):
        run_example("simulated_chip_design.py")
        out = capsys.readouterr().out
        assert "conclusion (b)" in out and "conclusion (c)" in out
