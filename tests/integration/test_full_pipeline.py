"""Cross-cutting integration tests: every workload through the full
measure → extract → predict pipeline, on both measurement substrates."""

import numpy as np
import pytest

from repro.core import measured as mm
from repro.core import merging
from repro.hardware.executor import execute_workload
from repro.simx import Machine, MachineConfig
from repro.workloads import (
    FuzzyCMeansWorkload,
    HistogramWorkload,
    HopWorkload,
    KMeansWorkload,
    make_blobs,
    make_particles,
)
from repro.workloads.instrument import (
    breakdown_from_simulation,
    extract_parameters,
    serial_growth_curve,
    speedup_curve,
)
from repro.workloads.tracegen import program_from_execution

THREADS = (1, 2, 4, 8)


def all_workloads():
    return {
        "kmeans": KMeansWorkload(
            make_blobs(1200, 6, 4, seed=4), max_iterations=3, tolerance=1e-12
        ),
        "fuzzy": FuzzyCMeansWorkload(
            make_blobs(900, 6, 4, seed=5), max_iterations=2, tolerance=1e-12
        ),
        "hop": HopWorkload(
            make_particles(1200, n_halos=8, seed=6), n_neighbors=10
        ),
        "histogram": HistogramWorkload(n_items=8000, n_bins=512, seed=7),
    }


@pytest.fixture(scope="module")
def sim_breakdowns():
    machine = Machine(MachineConfig.baseline(n_cores=8))
    out = {}
    for name, wl in all_workloads().items():
        out[name] = {
            p: breakdown_from_simulation(
                machine.run(program_from_execution(wl.execute(p), mem_scale=4))
            )
            for p in THREADS
        }
    return out


class TestSimulatorPipeline:
    def test_all_workloads_speed_up(self, sim_breakdowns):
        # histogram is merge-dominated by design, so its ceiling is lower
        floors = {"kmeans": 3.0, "fuzzy": 3.0, "hop": 3.0, "histogram": 1.8}
        for name, b in sim_breakdowns.items():
            sp = speedup_curve(b)
            assert sp[8] > floors[name], name

    def test_all_serial_sections_grow(self, sim_breakdowns):
        for name, b in sim_breakdowns.items():
            growth = serial_growth_curve(b)
            assert growth[8] > growth[1], name

    def test_extraction_valid_for_every_workload(self, sim_breakdowns):
        for name, b in sim_breakdowns.items():
            ep = extract_parameters(b, name)
            assert 0 < ep.serial_pct < 50, name
            assert 0 <= ep.fcon_share <= 1, name
            assert abs(ep.fcon_share + ep.fred_share - 1) < 1e-9, name
            assert ep.fored_rel >= 0, name

    def test_prediction_roundtrip(self, sim_breakdowns):
        """The extracted record must reproduce the measured serial growth
        it was fitted from (Fig 2(d)'s accuracy question)."""
        for name, b in sim_breakdowns.items():
            ep = extract_parameters(b, name)
            mp = ep.to_measured_params()
            measured_growth = serial_growth_curve(b)
            for p in (2, 4, 8):
                predicted = float(mm.serial_time_normalised(mp, p))
                assert predicted == pytest.approx(measured_growth[p], rel=0.35), (
                    name, p
                )

    def test_design_recommendation_is_finite_and_sane(self, sim_breakdowns):
        for name, b in sim_breakdowns.items():
            params = extract_parameters(b, name).to_measured_params().to_design_params()
            best = merging.best_symmetric(params, 256)
            assert 1.0 <= best.r <= 256.0
            assert 1.0 < best.speedup <= 256.0


class TestHardwareModelPipeline:
    def test_hardware_and_simulator_agree_qualitatively(self, sim_breakdowns):
        for name, wl in all_workloads().items():
            hw = execute_workload(wl, THREADS, backend="model")
            hw_growth = serial_growth_curve(hw)
            sim_growth = serial_growth_curve(sim_breakdowns[name])
            # both substrates show growing serial sections
            assert hw_growth[8] > 1.1, name
            assert sim_growth[8] > 1.1, name

    def test_histogram_is_most_merge_bound(self, sim_breakdowns):
        shares = {
            name: extract_parameters(b, name).fred_share
            for name, b in sim_breakdowns.items()
        }
        assert shares["histogram"] == max(shares.values())


class TestNumericConsistency:
    def test_workload_outputs_thread_invariant(self):
        for name, wl in all_workloads().items():
            out1 = wl.execute(1).outputs
            out8 = wl.execute(8).outputs
            key = {
                "kmeans": "centers", "fuzzy": "centers",
                "hop": "groups", "histogram": "histogram",
            }[name]
            assert np.allclose(
                np.asarray(out1[key], dtype=float),
                np.asarray(out8[key], dtype=float),
                atol=1e-7,
            ), name
