"""Model-vs-simulator cross-validation: do Eq 4's design rankings match
what the simulator measures when we actually *build* those chips?

For a fixed BCE budget we simulate every symmetric design (nc cores of r
BCEs, perf factor sqrt(r)) running kmeans, and compare the measured
execution-time ranking against the extended model's predictions using
parameters extracted from a homogeneous sweep.  This closes the loop the
paper opens: the analytic model is trusted *because* it orders real
(simulated) designs correctly.
"""

import pytest

from repro.core import merging
from repro.simx import Machine, MachineConfig
from repro.workloads.datasets import make_blobs
from repro.workloads.instrument import breakdown_from_simulation, extract_parameters
from repro.workloads.kmeans import KMeansWorkload
from repro.workloads.tracegen import program_from_execution

BUDGET = 16  # BCEs — small enough to simulate every design point


@pytest.fixture(scope="module")
def workload():
    return KMeansWorkload(
        make_blobs(2000, 9, 8, seed=11), max_iterations=3, tolerance=1e-12
    )


@pytest.fixture(scope="module")
def extracted_params(workload):
    machine = Machine(MachineConfig.baseline(n_cores=16))
    breakdowns = {
        p: breakdown_from_simulation(
            machine.run(program_from_execution(workload.execute(p), mem_scale=2))
        )
        for p in (1, 2, 4, 8, 16)
    }
    return extract_parameters(breakdowns, "kmeans").to_measured_params().to_design_params()


@pytest.fixture(scope="module")
def design_results(workload, extracted_params):
    out = {}
    for r in (1, 2, 4, 8, 16):
        nc = BUDGET // r
        cfg = MachineConfig(
            n_cores=nc,
            core_perf_factors=tuple(float(r) ** 0.5 for _ in range(nc)),
        )
        res = Machine(cfg).run(
            program_from_execution(workload.execute(nc), mem_scale=2)
        )
        model_speedup = float(
            merging.speedup_symmetric(extracted_params, BUDGET, float(r))
        )
        out[r] = (res.total_cycles, model_speedup)
    return out


class TestDesignRanking:
    def test_rankings_agree_exactly(self, design_results):
        sim_rank = sorted(design_results, key=lambda r: design_results[r][0])
        model_rank = sorted(design_results, key=lambda r: -design_results[r][1])
        assert sim_rank == model_rank

    def test_model_best_design_is_simulated_best(self, design_results):
        sim_best = min(design_results, key=lambda r: design_results[r][0])
        model_best = max(design_results, key=lambda r: design_results[r][1])
        assert sim_best == model_best

    def test_speedup_ratios_directionally_consistent(self, design_results):
        # the model's predicted speedup ratio between any two designs has
        # the same sign as the simulator's (monotone association)
        rs = sorted(design_results)
        for a, b in zip(rs, rs[1:]):
            sim_faster = design_results[a][0] < design_results[b][0]
            model_faster = design_results[a][1] > design_results[b][1]
            assert sim_faster == model_faster, (a, b)

    def test_kmeans_prefers_many_small_cores_at_16_bces(self, design_results):
        # at a 16-BCE budget kmeans' tiny merge cannot yet outweigh the
        # parallel win: r=1 wins in both worlds (the crossover the paper
        # studies needs bigger budgets / heavier merges)
        assert min(design_results, key=lambda r: design_results[r][0]) == 1
