"""The bounded response LRU: eviction order, the size bound, counters."""

from repro.serve import LRUCache


class TestBound:
    def test_never_exceeds_maxsize(self):
        lru = LRUCache(maxsize=3)
        for i in range(10):
            lru.put(f"k{i}", i)
            assert len(lru) <= 3
        assert len(lru) == 3
        assert lru.evictions == 7

    def test_evicts_least_recently_used(self):
        lru = LRUCache(maxsize=2)
        lru.put("a", 1)
        lru.put("b", 2)
        assert lru.get("a") == 1  # refresh: "b" is now the LRU entry
        lru.put("c", 3)
        assert "b" not in lru
        assert lru.get("a") == 1 and lru.get("c") == 3

    def test_put_refresh_does_not_evict(self):
        lru = LRUCache(maxsize=2)
        lru.put("a", 1)
        lru.put("b", 2)
        lru.put("a", 10)  # refresh, not insert: both keys survive
        assert len(lru) == 2 and lru.evictions == 0
        assert lru.get("a") == 10 and lru.get("b") == 2


class TestDisabled:
    def test_maxsize_zero_disables_caching(self):
        lru = LRUCache(maxsize=0)
        lru.put("a", 1)
        assert len(lru) == 0
        assert lru.get("a") is None
        assert lru.misses == 1 and lru.hits == 0


class TestCounters:
    def test_info_shape_and_hit_rate(self):
        lru = LRUCache(maxsize=4)
        lru.put("a", 1)
        lru.get("a")
        lru.get("missing")
        info = lru.info()
        assert info["entries"] == 1 and info["maxsize"] == 4
        assert info["hits"] == 1 and info["misses"] == 1
        assert info["hit_rate"] == 0.5

    def test_clear_keeps_counters(self):
        lru = LRUCache(maxsize=4)
        lru.put("a", 1)
        lru.get("a")
        lru.clear()
        assert len(lru) == 0 and lru.hits == 1
