"""End-to-end over real HTTP: the asyncio server on an ephemeral port,
driven by ``http.client`` like any other client would."""

import http.client
import json

import pytest

from repro.serve import BackgroundServer, ServeApp

_EVAL_BODY = {"model": "merging-symmetric", "f": 0.99, "fcon_share": 0.6,
              "fored_share": 0.8, "r": 32}


@pytest.fixture(scope="module")
def server():
    with BackgroundServer(ServeApp()) as srv:
        yield srv


@pytest.fixture()
def conn(server):
    c = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
    yield c
    c.close()


def _json(conn, method, path, body=None):
    data = json.dumps(body).encode() if body is not None else None
    headers = {"Content-Type": "application/json"} if data else {}
    conn.request(method, path, body=data, headers=headers)
    resp = conn.getresponse()
    return resp.status, json.loads(resp.read().decode())


class TestEndToEnd:
    def test_healthz(self, conn):
        status, health = _json(conn, "GET", "/healthz")
        assert status == 200 and health["status"] == "ok"

    def test_eval_round_trip(self, conn):
        status, result = _json(conn, "POST", "/v1/eval", _EVAL_BODY)
        assert status == 200
        assert result["speedup"] == pytest.approx(36.227, abs=1e-3)

    def test_keep_alive_serves_many_requests_per_connection(self, conn):
        for _ in range(5):
            status, _ = _json(conn, "POST", "/v1/eval", _EVAL_BODY)
            assert status == 200

    def test_404_and_connection_survives(self, conn):
        status, payload = _json(conn, "GET", "/missing")
        assert status == 404 and "error" in payload
        status, _ = _json(conn, "GET", "/healthz")
        assert status == 200  # the 404 did not poison the connection

    def test_metrics_exposition(self, server, conn):
        conn.request("GET", "/metrics")
        resp = conn.getresponse()
        assert resp.status == 200
        assert resp.getheader("Content-Type").startswith("text/plain")
        resp.read()

    def test_malformed_request_line_gets_400(self, server):
        import socket

        with socket.create_connection(("127.0.0.1", server.port),
                                      timeout=10) as sock:
            sock.sendall(b"garbage\r\n\r\n")
            data = sock.recv(4096)
        assert data.startswith(b"HTTP/1.1 400 ")

    def test_connection_close_honoured(self, server):
        c = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
        try:
            c.request("GET", "/healthz", headers={"Connection": "close"})
            resp = c.getresponse()
            assert resp.status == 200
            assert resp.getheader("Connection") == "close"
            resp.read()
        finally:
            c.close()

    def test_query_params_reach_the_handler(self, conn):
        status, payload = _json(conn, "GET",
                                "/v1/report/table2?scale=0.03&threads=1,2")
        assert status == 200
        assert payload["options"] == {"scale": 0.03, "thread_counts": [1, 2]}


class TestHttp10KeepAliveDefault:
    """HTTP/1.0 defaults to ``Connection: close``; only 1.1 keeps alive."""

    def _raw(self, server, request: bytes) -> bytes:
        import socket

        chunks = []
        with socket.create_connection(("127.0.0.1", server.port),
                                      timeout=10) as sock:
            sock.sendall(request)
            while True:
                data = sock.recv(4096)
                if not data:
                    break
                chunks.append(data)
        return b"".join(chunks)

    def test_http10_without_connection_header_closes(self, server):
        # recv-until-EOF terminates only because the server closes — a
        # hang here IS the regression (the timeout would trip)
        response = self._raw(server, b"GET /healthz HTTP/1.0\r\n\r\n")
        assert b"Connection: close" in response

    def test_http10_explicit_keep_alive_is_honoured(self, server):
        import socket

        with socket.create_connection(("127.0.0.1", server.port),
                                      timeout=10) as sock:
            sock.sendall(b"GET /healthz HTTP/1.0\r\n"
                         b"Connection: keep-alive\r\n\r\n")
            first = sock.recv(4096)
            assert b"Connection: keep-alive" in first
            # the connection must still serve a second request
            sock.sendall(b"GET /healthz HTTP/1.0\r\n"
                         b"Connection: keep-alive\r\n\r\n")
            assert sock.recv(4096).startswith(b"HTTP/1.1 200 ")


class TestIdleTimeout:
    """A stalled client cannot hold a connection task forever."""

    @pytest.fixture(scope="class")
    def impatient(self):
        with BackgroundServer(ServeApp(), idle_timeout=0.5) as srv:
            yield srv

    def test_silent_connection_is_closed_with_408(self, impatient):
        import socket

        with socket.create_connection(("127.0.0.1", impatient.port),
                                      timeout=10) as sock:
            chunks = []
            while True:  # never send anything: the server must hang up
                data = sock.recv(4096)
                if not data:
                    break
                chunks.append(data)
        assert b"".join(chunks).startswith(b"HTTP/1.1 408 ")

    def test_stall_mid_header_is_also_timed_out(self, impatient):
        import socket

        with socket.create_connection(("127.0.0.1", impatient.port),
                                      timeout=10) as sock:
            sock.sendall(b"GET /healthz HTTP/1.1\r\nX-Slow")  # ...and stall
            chunks = []
            while True:
                data = sock.recv(4096)
                if not data:
                    break
                chunks.append(data)
        assert b"".join(chunks).startswith(b"HTTP/1.1 408 ")

    def test_active_connection_is_untouched(self, impatient):
        c = http.client.HTTPConnection("127.0.0.1", impatient.port, timeout=10)
        try:
            for _ in range(3):
                c.request("GET", "/healthz")
                resp = c.getresponse()
                assert resp.status == 200
                resp.read()
        finally:
            c.close()
