"""ServeApp endpoint logic: routing, validation, the LRU tier's
no-reevaluation guarantee, and report byte-identity with ``repro run``."""

import asyncio
import json

import numpy as np

from repro import obs
from repro.core import gridkernels
from repro.experiments.registry import run_experiment
from repro.pipeline import memo_info
from repro.serve import ServeApp

_EVAL_BODY = {"model": "merging-symmetric", "f": 0.99, "fcon_share": 0.6,
              "fored_share": 0.8, "r": 32}


def _request(app, method, path, params=None, body=b""):
    if isinstance(body, dict):
        body = json.dumps(body).encode()
    return asyncio.run(app.handle(method, path, params or {}, body))


def _metric_value(name, **labels):
    for fam in obs.snapshot():
        if fam["name"] != name:
            continue
        for s in fam["series"]:
            if all(s["labels"].get(k) == v for k, v in labels.items()):
                return s["value"]
    return 0.0


class TestRouting:
    def test_healthz(self):
        status, ctype, payload = _request(ServeApp(), "GET", "/healthz")
        assert status == 200 and ctype == "application/json"
        health = json.loads(payload)
        assert health["status"] == "ok"
        assert health["lru"]["maxsize"] == 4096

    def test_unknown_route_is_404(self):
        status, _, payload = _request(ServeApp(), "GET", "/nope")
        assert status == 404
        assert "no route" in json.loads(payload)["error"]

    def test_eval_requires_post(self):
        status, _, _ = _request(ServeApp(), "GET", "/v1/eval")
        assert status == 405

    def test_bad_json_body_is_400(self):
        status, _, payload = _request(ServeApp(), "POST", "/v1/eval",
                                      body=b"{not json")
        assert status == 400
        assert "valid JSON" in json.loads(payload)["error"]

    def test_unknown_model_is_400(self):
        status, _, payload = _request(
            ServeApp(), "POST", "/v1/eval", body={"model": "nope", "f": 0.9})
        assert status == 400
        assert "unknown model" in json.loads(payload)["error"]

    def test_missing_field_is_400(self):
        status, _, payload = _request(
            ServeApp(), "POST", "/v1/eval",
            body={"model": "merging-symmetric", "f": 0.99})
        assert status == 400
        assert "fcon_share" in json.loads(payload)["error"]

    def test_unknown_report_is_404(self):
        status, _, _ = _request(ServeApp(), "GET", "/v1/report/nope")
        assert status == 404

    def test_experiments_lists_registry(self):
        status, _, payload = _request(ServeApp(), "GET", "/v1/experiments")
        assert status == 200
        ids = [e["id"] for e in json.loads(payload)["experiments"]]
        assert "fig4" in ids and "table2" in ids


class TestEval:
    def test_point_matches_direct_kernel(self):
        status, _, payload = _request(ServeApp(), "POST", "/v1/eval",
                                      body=_EVAL_BODY)
        assert status == 200
        direct = gridkernels.merging_symmetric(
            np.array([0.99]), np.array([0.6]), np.array([0.8]), 256,
            np.array([32.0]))[0]
        assert json.loads(payload)["speedup"] == float(direct)

    def test_sweep_curve_matches_direct_kernel(self):
        body = {"model": "hm-symmetric", "n": 64,
                "points": [{"f": 0.975}]}
        status, _, payload = _request(ServeApp(), "POST", "/v1/sweep",
                                      body=body)
        assert status == 200
        result = json.loads(payload)
        from repro.core.merging import power_of_two_sizes

        sizes = power_of_two_sizes(64)
        direct = gridkernels.hm_symmetric(
            np.array([[0.975]]), 64, sizes[None, :], None)
        assert result["sizes"] == [float(s) for s in sizes]
        assert result["speedup"] == [[float(v) for v in direct[0]]]

    def test_optimize_matches_best_search(self):
        from repro.core.merging import best_asymmetric, best_symmetric
        from repro.core.params import AppParams

        body = {"points": [{"f": 0.99, "fcon_share": 0.6,
                            "fored_share": 0.8}]}
        status, _, payload = _request(ServeApp(), "POST", "/v1/optimize",
                                      body=body)
        assert status == 200
        result = json.loads(payload)
        params = AppParams(f=0.99, fcon_share=0.6, fored_share=0.8)
        sym = best_symmetric(params, 256)
        asym = best_asymmetric(params, 256)
        assert result["symmetric"]["r"] == [sym.r]
        assert result["symmetric"]["speedup"] == [sym.speedup]
        assert result["asymmetric"]["rl"] == [asym.rl]
        assert result["asymmetric"]["speedup"] == [asym.speedup]


class TestCacheTier:
    def test_repeat_query_is_lru_hit_with_no_new_evaluation(self):
        """The acceptance criterion: a repeated identical query is served
        from the in-memory tier — hit counter up, executed count flat."""
        obs.set_enabled(True)
        app = ServeApp()
        status, _, first = _request(app, "POST", "/v1/eval", body=_EVAL_BODY)
        assert status == 200
        executed_after_first = memo_info()["executed"]
        hits_before = app.lru.hits

        status, _, second = _request(app, "POST", "/v1/eval",
                                     body=dict(_EVAL_BODY))
        assert status == 200
        assert second == first  # byte-identical response
        assert app.lru.hits == hits_before + 1
        assert memo_info()["executed"] == executed_after_first
        assert _metric_value("serve_cache_lookups_total",
                             tier="lru", result="hit") == 1

    def test_concurrent_identical_queries_evaluate_once(self):
        """N identical in-flight queries coalesce onto one evaluation."""
        obs.set_enabled(True)
        app = ServeApp()

        async def scenario():
            return await asyncio.gather(*[
                app.eval_point(dict(_EVAL_BODY)) for _ in range(8)])

        results = asyncio.run(scenario())
        assert all(r == results[0] for r in results)
        assert app.flight.flights == 1
        assert app.flight.coalesced == 7
        assert _metric_value("serve_evaluations_total", kind="point") == 1

    def test_cache_size_zero_disables_the_tier(self):
        app = ServeApp(cache_size=0)
        _request(app, "POST", "/v1/eval", body=_EVAL_BODY)
        _request(app, "POST", "/v1/eval", body=_EVAL_BODY)
        assert app.lru.hits == 0 and len(app.lru) == 0


class TestReports:
    def test_fig4_render_byte_identical_to_run_experiment(self):
        status, _, payload = _request(ServeApp(), "GET", "/v1/report/fig4")
        assert status == 200
        served = json.loads(payload)
        direct = run_experiment("fig4")
        assert served["render"] == direct.render()
        assert served["all_match"] == direct.all_match

    def test_text_format_returns_the_render_verbatim(self):
        status, ctype, payload = _request(
            ServeApp(), "GET", "/v1/report/fig4", params={"format": "text"})
        assert status == 200 and ctype == "text/plain"
        assert payload.decode() == run_experiment("fig4").render() + "\n"

    def test_table2_with_options_byte_identical(self):
        params = {"scale": "0.03", "threads": "1,2"}
        status, _, payload = _request(
            ServeApp(), "GET", "/v1/report/table2", params=params)
        assert status == 200
        direct = run_experiment("table2", scale=0.03, thread_counts=(1, 2))
        assert json.loads(payload)["render"] == direct.render()

    def test_repeat_report_is_cached(self):
        app = ServeApp()
        _request(app, "GET", "/v1/report/fig4")
        hits = app.lru.hits
        _request(app, "GET", "/v1/report/fig4")
        assert app.lru.hits == hits + 1


class TestMetricsEndpoint:
    def test_metrics_exposition_has_serve_families(self):
        obs.set_enabled(True)
        app = ServeApp()
        _request(app, "POST", "/v1/eval", body=_EVAL_BODY)
        status, ctype, payload = _request(app, "GET", "/metrics")
        assert status == 200
        assert ctype.startswith("text/plain")
        text = payload.decode()
        assert "serve_requests_total" in text
        assert "serve_cache_lookups_total" in text
        assert "serve_pipeline_tier" in text
