"""Serving-layer fixtures: the serve modules share the process-wide obs
registry, so every test starts and ends with it disabled and empty."""

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.set_enabled(False)
    obs.reset()
    obs.RECORDER.clear()
    yield
    obs.set_enabled(False)
    obs.reset()
    obs.RECORDER.clear()
