"""Single-flight coalescing: at most one computation per key among
concurrent callers, later callers compute afresh, errors propagate.

No pytest-asyncio in the toolchain: each test drives its own loop with
``asyncio.run``.
"""

import asyncio

import pytest

from repro.serve import SingleFlight


class TestCoalescing:
    def test_concurrent_identical_calls_compute_once(self):
        async def scenario():
            flight = SingleFlight()
            calls = 0
            release = asyncio.Event()

            async def factory():
                nonlocal calls
                calls += 1
                await release.wait()
                return {"value": 42}

            tasks = [asyncio.ensure_future(flight.do("k", factory))
                     for _ in range(16)]
            await asyncio.sleep(0)  # let every caller reach the flight
            assert flight.inflight() == 1
            release.set()
            results = await asyncio.gather(*tasks)
            return calls, flight, results

        calls, flight, results = asyncio.run(scenario())
        assert calls == 1
        assert flight.flights == 1 and flight.coalesced == 15
        # followers receive the leader's object, not a copy
        assert all(r is results[0] for r in results)

    def test_distinct_keys_do_not_coalesce(self):
        async def scenario():
            flight = SingleFlight()
            calls = []

            async def factory(key):
                calls.append(key)
                await asyncio.sleep(0)
                return key

            results = await asyncio.gather(
                flight.do("a", lambda: factory("a")),
                flight.do("b", lambda: factory("b")),
            )
            return calls, results

        calls, results = asyncio.run(scenario())
        assert sorted(calls) == ["a", "b"]
        assert sorted(results) == ["a", "b"]

    def test_sequential_calls_compute_each_time(self):
        """Single-flight is concurrency de-dup, not memoisation."""
        async def scenario():
            flight = SingleFlight()
            calls = 0

            async def factory():
                nonlocal calls
                calls += 1
                return calls

            first = await flight.do("k", factory)
            second = await flight.do("k", factory)
            return first, second, flight

        first, second, flight = asyncio.run(scenario())
        assert (first, second) == (1, 2)
        assert flight.flights == 2 and flight.coalesced == 0
        assert flight.inflight() == 0


class TestErrors:
    def test_leader_error_reaches_every_follower(self):
        async def scenario():
            flight = SingleFlight()
            release = asyncio.Event()

            async def factory():
                await release.wait()
                raise RuntimeError("kernel blew up")

            tasks = [asyncio.ensure_future(flight.do("k", factory))
                     for _ in range(4)]
            await asyncio.sleep(0)
            release.set()
            return await asyncio.gather(*tasks, return_exceptions=True), flight

        results, flight = asyncio.run(scenario())
        assert len(results) == 4
        assert all(isinstance(r, RuntimeError) for r in results)
        assert flight.inflight() == 0  # the failed key is released

    def test_failed_flight_releases_key_for_retry(self):
        async def scenario():
            flight = SingleFlight()
            attempts = 0

            async def factory():
                nonlocal attempts
                attempts += 1
                if attempts == 1:
                    raise ValueError("transient")
                return "ok"

            with pytest.raises(ValueError):
                await flight.do("k", factory)
            return await flight.do("k", factory), attempts

        result, attempts = asyncio.run(scenario())
        assert result == "ok" and attempts == 2
