"""The micro-batcher: one kernel invocation per tick, answers
bit-identical to evaluating each point alone."""

import asyncio

import numpy as np
import pytest

from repro.core import gridkernels
from repro.serve import MicroBatcher
from repro.serve.batcher import BATCH_FIELDS
from repro.serve.queries import QueryError, eval_point_batch

_GROUP = ("merging-symmetric", 256, None, None)
_POINTS = [
    {"f": 0.99, "fcon_share": 0.6, "fored_share": 0.8, "r": 32.0},
    {"f": 0.975, "fcon_share": 0.3, "fored_share": 0.5, "r": 4.0},
    {"f": 0.5, "fcon_share": 0.9, "fored_share": 0.1, "r": 1.0},
]


class TestBatching:
    def test_one_tick_one_batch(self):
        async def scenario():
            batcher = MicroBatcher()
            results = await asyncio.gather(*[
                batcher.submit(_GROUP, p) for p in _POINTS])
            return batcher, results

        batcher, results = asyncio.run(scenario())
        assert batcher.batches == 1  # all three rode one grid invocation
        assert batcher.points == 3
        assert all(isinstance(s, float) for s in results)

    def test_distinct_signatures_get_distinct_units(self):
        async def scenario():
            batcher = MicroBatcher()
            await asyncio.gather(
                batcher.submit(_GROUP, _POINTS[0]),
                batcher.submit(("hm-symmetric", 256, None, None),
                               {"f": 0.99, "r": 16.0}),
            )
            return batcher

        batcher = asyncio.run(scenario())
        assert batcher.batches == 2 and batcher.points == 2

    def test_batched_answers_bit_identical_to_solo(self):
        """Batch composition must never change a response: the kernels
        are elementwise over the point axis."""
        async def scenario():
            batcher = MicroBatcher()
            return await asyncio.gather(*[
                batcher.submit(_GROUP, p) for p in _POINTS])

        batched = asyncio.run(scenario())
        for point, got in zip(_POINTS, batched):
            solo = eval_point_batch(
                "merging-symmetric", n=256,
                **{k: [v] for k, v in point.items()})["speedup"][0]
            assert got == float(solo)  # exact, not approx

    def test_matches_direct_kernel_call(self):
        direct = gridkernels.merging_symmetric(
            np.array([p["f"] for p in _POINTS]),
            np.array([p["fcon_share"] for p in _POINTS]),
            np.array([p["fored_share"] for p in _POINTS]),
            256,
            np.array([p["r"] for p in _POINTS]),
        )

        async def scenario():
            batcher = MicroBatcher()
            return await asyncio.gather(*[
                batcher.submit(_GROUP, p) for p in _POINTS])

        assert asyncio.run(scenario()) == [float(v) for v in direct]


class TestErrors:
    def test_kernel_error_fans_out_to_every_point(self):
        async def scenario():
            batcher = MicroBatcher()
            bad = {"f": 1.5, "fcon_share": 0.6, "fored_share": 0.8, "r": 32.0}
            return await asyncio.gather(
                batcher.submit(_GROUP, bad),
                batcher.submit(_GROUP, dict(bad)),
                return_exceptions=True,
            )

        results = asyncio.run(scenario())
        assert len(results) == 2
        assert all(isinstance(r, QueryError) for r in results)


class TestFields:
    def test_batch_fields_cover_every_model_parameter(self):
        from repro.serve.queries import MODELS

        names = {name for spec in MODELS.values()
                 for name in (*spec["required"], *spec["optional"])}
        assert names <= set(BATCH_FIELDS)
