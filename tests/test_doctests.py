"""Run the doctest examples embedded in the package docstrings."""

import doctest

import pytest

import repro
import repro.core


@pytest.mark.parametrize("module", [repro, repro.core])
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"
    assert results.attempted > 0, f"no doctests found in {module.__name__}"
