"""MetricsRegistry semantics: types, labels, buckets, cardinality, merge."""

import pytest

from repro.obs import metrics
from repro.obs.metrics import (
    MAX_SERIES_PER_FAMILY,
    MetricError,
    MetricsRegistry,
)


def _reg():
    return MetricsRegistry(enabled=True)


class TestRegistration:
    def test_idempotent_same_shape(self):
        reg = _reg()
        a = reg.counter("c", "help", labels=("x",))
        b = reg.counter("c", "other help ignored", labels=("x",))
        assert a is b

    def test_conflicting_type_raises(self):
        reg = _reg()
        reg.counter("m")
        with pytest.raises(MetricError, match="already registered"):
            reg.gauge("m")

    def test_conflicting_labels_raise(self):
        reg = _reg()
        reg.counter("m", labels=("a",))
        with pytest.raises(MetricError, match="already registered"):
            reg.counter("m", labels=("a", "b"))

    def test_get_returns_family_or_none(self):
        reg = _reg()
        fam = reg.gauge("g")
        assert reg.get("g") is fam
        assert reg.get("nope") is None


class TestCounter:
    def test_inc_and_value(self):
        c = _reg().counter("c", labels=("k",))
        c.inc(k="a")
        c.inc(2.5, k="a")
        c.inc(k="b")
        assert c.value(k="a") == 3.5
        assert c.value(k="b") == 1.0
        assert c.value(k="never") == 0.0

    def test_negative_increment_rejected(self):
        c = _reg().counter("c")
        with pytest.raises(MetricError, match="cannot decrease"):
            c.inc(-1)

    def test_wrong_label_set_rejected(self):
        c = _reg().counter("c", labels=("x",))
        with pytest.raises(MetricError, match="takes labels"):
            c.inc(y="oops")
        with pytest.raises(MetricError, match="takes labels"):
            c.inc()  # missing the declared label entirely

    def test_disabled_is_noop(self):
        reg = MetricsRegistry(enabled=False)
        c = reg.counter("c")
        c.inc(100)
        assert c.value() == 0.0
        assert reg.snapshot() == []


class TestGauge:
    def test_set_inc_dec(self):
        g = _reg().gauge("g")
        g.set(10)
        g.inc(5)
        g.dec(2)
        assert g.value() == 13.0


class TestHistogramBuckets:
    def test_le_semantics_on_exact_boundary(self):
        """A value equal to a bound counts in THAT bucket (Prometheus le)."""
        h = _reg().histogram("h", buckets=(1.0, 2.0, 5.0))
        h.observe(2.0)
        d = h.to_dict()["series"][0]
        assert d["buckets"] == {"1.0": 0, "2.0": 1, "5.0": 1, "+Inf": 1}
        assert d["count"] == 1
        assert d["sum"] == 2.0

    def test_buckets_are_cumulative(self):
        h = _reg().histogram("h", buckets=(1.0, 2.0, 5.0))
        for v in (0.5, 1.5, 1.7, 4.0, 100.0):
            h.observe(v)
        d = h.to_dict()["series"][0]
        assert d["buckets"] == {"1.0": 1, "2.0": 3, "5.0": 4, "+Inf": 5}
        assert d["sum"] == pytest.approx(107.7)

    def test_overflow_value_lands_only_in_inf(self):
        h = _reg().histogram("h", buckets=(1.0,))
        h.observe(9.9)
        d = h.to_dict()["series"][0]
        assert d["buckets"] == {"1.0": 0, "+Inf": 1}

    def test_buckets_sorted_and_deduped(self):
        h = _reg().histogram("h", buckets=(5.0, 1.0, 2.0))
        assert h.buckets == (1.0, 2.0, 5.0)
        with pytest.raises(MetricError, match="duplicate"):
            _reg().histogram("h2", buckets=(1.0, 1.0))
        with pytest.raises(MetricError, match="at least one"):
            _reg().histogram("h3", buckets=())

    def test_series_stats(self):
        h = _reg().histogram("h", buckets=(1.0,))
        assert h.series_stats() == {"count": 0, "sum": 0.0, "mean": 0.0}
        h.observe(0.5)
        h.observe(1.5)
        assert h.series_stats() == {"count": 2, "sum": 2.0, "mean": 1.0}


class TestCardinality:
    def test_overflow_folds_into_sentinel_series(self, monkeypatch):
        monkeypatch.setattr(metrics, "MAX_SERIES_PER_FAMILY", 3)
        c = _reg().counter("c", labels=("id",))
        for i in range(10):
            c.inc(id=str(i))
        # 3 real series plus the fold-over series holding the excess
        snap = c.to_dict()["series"]
        labels = [s["labels"]["id"] for s in snap]
        assert len(labels) == 4
        assert "__overflow__" in labels
        assert c.value(id="0") == 1.0
        overflow = next(s for s in snap if s["labels"]["id"] == "__overflow__")
        assert overflow["value"] == 7.0

    def test_default_cap_is_generous(self):
        assert MAX_SERIES_PER_FAMILY >= 256


class TestSnapshotMerge:
    def test_counters_add(self):
        a, b = _reg(), _reg()
        a.counter("c", labels=("k",)).inc(2, k="x")
        b.counter("c", labels=("k",)).inc(3, k="x")
        b.counter("c", labels=("k",)).inc(1, k="y")
        a.merge_snapshot(b.snapshot())
        c = a.get("c")
        assert c.value(k="x") == 5.0
        assert c.value(k="y") == 1.0

    def test_gauges_take_incoming(self):
        a, b = _reg(), _reg()
        a.gauge("g").set(10)
        b.gauge("g").set(3)
        a.merge_snapshot(b.snapshot())
        assert a.get("g").value() == 3.0

    def test_histograms_add_bucketwise(self):
        a, b = _reg(), _reg()
        ha = a.histogram("h", buckets=(1.0, 2.0))
        hb = b.histogram("h", buckets=(1.0, 2.0))
        ha.observe(0.5)
        hb.observe(1.5)
        hb.observe(5.0)
        a.merge_snapshot(b.snapshot())
        d = ha.to_dict()["series"][0]
        assert d["buckets"] == {"1.0": 1, "2.0": 2, "+Inf": 3}
        assert d["count"] == 3
        assert d["sum"] == pytest.approx(7.0)

    def test_unknown_family_created_on_the_fly(self):
        a, b = _reg(), _reg()
        b.counter("fresh").inc(4)
        b.histogram("fresh_h", buckets=(1.0, 8.0)).observe(3)
        a.merge_snapshot(b.snapshot())
        assert a.get("fresh").value() == 4.0
        assert a.get("fresh_h").series_stats()["count"] == 1

    def test_malformed_entries_skipped(self):
        a = _reg()
        a.counter("ok").inc()
        a.merge_snapshot([{"nonsense": True}, {"name": "x", "type": "wat"}])
        assert a.get("ok").value() == 1.0

    def test_merge_works_even_when_target_disabled(self):
        """Merging a worker delta must not depend on the enable switch —
        write-back happens after the parent may have disabled recording."""
        src = _reg()
        src.counter("c").inc(2)
        dst = MetricsRegistry(enabled=False)
        dst.merge_snapshot(src.snapshot())
        assert dst.get("c").value() == 2.0

    def test_reset_keeps_families(self):
        reg = _reg()
        reg.counter("c").inc(5)
        reg.reset()
        assert reg.snapshot() == []
        assert reg.get("c") is not None
        reg.counter("c").inc(1)
        assert reg.get("c").value() == 1.0


class TestEnvSwitch:
    def test_env_enables_fresh_registry(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "1")
        assert MetricsRegistry().enabled
        monkeypatch.setenv("REPRO_OBS", "off")
        assert not MetricsRegistry().enabled
        monkeypatch.delenv("REPRO_OBS")
        assert not MetricsRegistry().enabled
