"""Observability tests share one process-wide registry/recorder; every
test starts and ends with them disabled and empty."""

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.set_enabled(False)
    obs.reset()
    obs.RECORDER.clear()
    yield
    obs.set_enabled(False)
    obs.reset()
    obs.RECORDER.clear()
