"""Exporters: Prometheus text format, JSONL round-trip, stats rendering,
and the drain/merge worker shuttle."""

import json

from repro import obs
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanRecorder, span


def _populated_registry():
    reg = MetricsRegistry(enabled=True)
    reg.counter("runs_total", "runs", labels=("engine",)).inc(3, engine="fast")
    reg.gauge("depth", "queue depth").set(2)
    h = reg.histogram("latency_seconds", "latency", buckets=(0.25, 1.0))
    h.observe(0.25)  # 0.25 + 0.5 is exact in binary: stable _sum text
    h.observe(0.5)
    return reg


class TestPrometheus:
    def test_exposition_format(self):
        text = obs.render_prometheus(_populated_registry())
        lines = text.splitlines()
        assert "# TYPE runs_total counter" in lines
        assert 'runs_total{engine="fast"} 3' in lines
        assert "# TYPE depth gauge" in lines
        assert "depth 2" in lines
        assert "# TYPE latency_seconds histogram" in lines
        assert 'latency_seconds_bucket{le="0.25"} 1' in lines
        assert 'latency_seconds_bucket{le="1"} 2' in lines
        assert 'latency_seconds_bucket{le="+Inf"} 2' in lines
        assert "latency_seconds_sum 0.75" in lines
        assert "latency_seconds_count 2" in lines
        assert text.endswith("\n")

    def test_empty_registry_renders_empty(self):
        assert obs.render_prometheus(MetricsRegistry(enabled=True)) == ""


class TestLabelEscaping:
    """The exposition format requires ``\\``, ``"`` and newline escaped
    inside label values — unescaped they corrupt the whole scrape."""

    def _render_with_label(self, value):
        reg = MetricsRegistry(enabled=True)
        reg.counter("events_total", "events", labels=("src",)).inc(1, src=value)
        return obs.render_prometheus(reg)

    def test_double_quote_is_escaped(self):
        text = self._render_with_label('say "hi"')
        assert 'events_total{src="say \\"hi\\""} 1' in text.splitlines()

    def test_backslash_is_escaped(self):
        text = self._render_with_label("C:\\temp")
        assert 'events_total{src="C:\\\\temp"} 1' in text.splitlines()

    def test_newline_is_escaped(self):
        text = self._render_with_label("line1\nline2")
        assert 'events_total{src="line1\\nline2"} 1' in text.splitlines()
        # the series must still be one physical line
        assert all("events_total" not in line or "line2" in line
                   for line in text.splitlines() if "line1" in line)

    def test_backslash_before_quote_stays_unambiguous(self):
        # \" in the input must render as \\\" (escaped backslash, then
        # escaped quote) — escaping order matters
        text = self._render_with_label('\\"')
        assert 'events_total{src="\\\\\\""} 1' in text.splitlines()

    def test_plain_values_unchanged(self):
        text = self._render_with_label("fast")
        assert 'events_total{src="fast"} 1' in text.splitlines()


class TestJsonlRoundTrip:
    def test_metrics_and_spans_roundtrip(self, tmp_path):
        reg = _populated_registry()
        rec = SpanRecorder()
        obs.set_enabled(True)
        with span("outer", recorder=rec):
            with span("inner", recorder=rec):
                pass
        path = obs.write_jsonl(tmp_path / "m.jsonl", registry=reg,
                               recorder=rec, meta={"command": "test"})
        data = obs.read_jsonl(path)
        assert data["meta"]["command"] == "test"
        assert data["meta"]["schema"] == 1
        by_name = {m["name"]: m for m in data["metrics"]}
        assert by_name["runs_total"]["type"] == "counter"
        assert by_name["latency_seconds"]["type"] == "histogram"
        assert by_name["runs_total"]["series"][0]["value"] == 3
        # spans stream in completion order: children before parents
        assert [s["name"] for s in data["spans"]] == ["inner", "outer"]
        assert data["spans"][0]["depth"] == 1

    def test_roundtrip_survives_merge(self, tmp_path):
        """read → merge_snapshot must reproduce the original values."""
        reg = _populated_registry()
        path = obs.write_jsonl(tmp_path / "m.jsonl", registry=reg,
                               recorder=SpanRecorder())
        data = obs.read_jsonl(path)
        rebuilt = MetricsRegistry(enabled=True)
        rebuilt.merge_snapshot(data["metrics"])
        assert rebuilt.get("runs_total").value(engine="fast") == 3.0
        assert rebuilt.get("depth").value() == 2.0
        assert rebuilt.get("latency_seconds").series_stats()["count"] == 2

    def test_truncated_trailing_line_skipped(self, tmp_path):
        path = obs.write_jsonl(tmp_path / "m.jsonl",
                               registry=_populated_registry(),
                               recorder=SpanRecorder())
        with path.open("a") as fh:
            fh.write('{"type": "metric", "name": "trunc')  # killed mid-write
        data = obs.read_jsonl(path)
        assert all(m["name"] != "trunc" for m in data["metrics"])
        assert len(data["metrics"]) == 3


class TestRenderStats:
    def test_tables_cover_all_shapes(self, tmp_path):
        reg = _populated_registry()
        rec = SpanRecorder()
        obs.set_enabled(True)
        with span("slow.op", recorder=rec, key="v"):
            pass
        path = obs.write_jsonl(tmp_path / "m.jsonl", registry=reg, recorder=rec)
        out = obs.render_stats(obs.read_jsonl(path))
        assert 'runs_total{engine="fast"}' in out
        assert "latency_seconds" in out
        assert "slow.op" in out
        assert "slowest spans" in out
        assert "key=v" in out

    def test_empty_data_has_placeholder(self):
        out = obs.render_stats({"meta": {}, "metrics": [], "spans": []})
        assert "no metrics" in out


class TestDrainMerge:
    def test_drain_none_when_disabled(self):
        assert obs.drain() is None

    def test_drain_none_when_enabled_but_empty(self):
        obs.set_enabled(True)
        assert obs.drain() is None

    def test_drain_resets_and_merge_restores(self):
        obs.set_enabled(True)
        obs.counter("worker_metric").inc(5)
        with span("worker.span"):
            pass
        delta = obs.drain()
        assert delta is not None
        # drained: the default registry/recorder are empty again
        assert obs.snapshot() == []
        assert obs.RECORDER.spans == []
        # delta is queue-safe (plain JSON-able data)
        json.dumps(delta)
        obs.merge_delta(delta, worker=7)
        assert obs.REGISTRY.get("worker_metric").value() == 5.0
        [s] = obs.RECORDER.spans
        assert s.name == "worker.span"
        assert s.attrs["worker"] == 7

    def test_merge_delta_ignores_none(self):
        obs.merge_delta(None)
        assert obs.RECORDER.spans == []
