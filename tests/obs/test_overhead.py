"""Disabled observability must be free (one branch per call site).

The acceptance bar: with metrics disabled, simulator throughput through
the instrumented ``Machine.run`` stays within 2% of the bare
``Machine._run`` loop (which carries no observability wrapper at all).
Timing comparisons are noisy, so both sides are measured as
best-of-several batches and the check retries before failing —
a genuine regression fails every round, scheduler noise does not.
"""

import time
import timeit

from repro import obs
from repro.simx import Machine, MachineConfig
from repro.simx.trace import Compute, Load, Store, ThreadTrace, TraceProgram

LINE = 64


def _program(n_threads=2, n_rounds=150) -> TraceProgram:
    threads = []
    for tid in range(n_threads):
        base = tid * 65536
        ops = []
        for i in range(n_rounds):
            ops.append(Compute(8))
            ops.append(Load(base + (i % 32) * LINE))
            ops.append(Store(base + (i % 32) * LINE))
        threads.append(ThreadTrace(tid, ops))
    return TraceProgram("overhead-probe", threads)


def _best_seconds(fn, repeats=5, number=3) -> float:
    return min(timeit.repeat(fn, repeat=repeats, number=number))


def test_disabled_run_within_2pct_of_uninstrumented_loop():
    assert not obs.enabled()
    prog = _program()
    machine = Machine(MachineConfig(n_cores=4))
    machine.run(prog)  # warm caches/JIT-ish effects out of the measurement

    for attempt in range(4):
        instrumented = _best_seconds(lambda: machine.run(prog))
        bare = _best_seconds(lambda: machine._run(prog))
        if instrumented <= bare * 1.02:
            return
        time.sleep(0.1)  # noisy round (CI neighbours); re-measure
    raise AssertionError(
        f"disabled-metrics run() is {instrumented / bare:.3f}x the bare "
        f"_run() loop (limit 1.02x): the disabled path is not free"
    )


def test_disabled_mutators_do_not_allocate_series():
    """A hot loop of disabled inc/observe must leave the registry empty."""
    c = obs.counter("overhead_probe_total", labels=("k",))
    h = obs.histogram("overhead_probe_seconds")
    for i in range(10_000):
        c.inc(k=str(i % 7))
        h.observe(i * 1e-6)
    assert obs.snapshot() == []


def test_disabled_span_is_two_orders_cheaper_than_enabled():
    """The disabled span() short-circuit must not pay the record cost.

    Compared structurally rather than against wall-clock: the disabled
    path is a single branch; creating + recording a Span is dozens of
    operations.  A 1.0x ratio would mean the short-circuit is broken.
    """
    N = 20_000

    def loop():
        for _ in range(N):
            with obs.span("probe"):
                pass

    disabled = _best_seconds(loop, repeats=3, number=1)
    obs.set_enabled(True)
    try:
        enabled = _best_seconds(loop, repeats=3, number=1)
    finally:
        obs.set_enabled(False)
        obs.RECORDER.clear()
    assert disabled < enabled, (
        f"disabled spans ({disabled:.4f}s/{N}) not cheaper than enabled "
        f"({enabled:.4f}s/{N})"
    )
