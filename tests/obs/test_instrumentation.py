"""End-to-end instrumentation coverage (the PR's acceptance shape):
``repro run table2 --parallel 2 --metrics-out m.jsonl`` must emit
counters, histograms and spans covering the simulator, pool and cache
layers, and ``repro stats`` must render them."""

import multiprocessing as mp

import pytest

from repro import obs
from repro.cli import main
from repro.experiments import simsweep
from repro.simx import Machine, MachineConfig
from repro.simx.trace import Compute, Load, PhaseBegin, PhaseEnd, ThreadTrace, TraceProgram

fork_only = pytest.mark.skipif(
    "fork" not in mp.get_all_start_methods(),
    reason="worker metric shuttle is exercised via the fork start method",
)


@pytest.fixture
def fresh_store(tmp_path):
    restore = simsweep.get_disk_store()
    simsweep.set_disk_store(tmp_path / "store")
    simsweep.clear_cache(memory_only=True)
    try:
        yield
    finally:
        simsweep.set_disk_store(restore)
        simsweep.clear_cache(memory_only=True)


def _simple_program(n_rounds=50):
    ops = [PhaseBegin("parallel")]
    for i in range(n_rounds):
        ops.append(Compute(5))
        ops.append(Load((i % 8) * 64))
    ops.append(PhaseEnd("parallel"))
    return TraceProgram("probe", [ThreadTrace(0, ops)])


class TestSimulatorAccounting:
    def test_result_carries_op_and_burst_counts(self):
        prog = _simple_program()
        fast = Machine(MachineConfig(n_cores=2, fast_path=True)).run(prog)
        ref = Machine(MachineConfig(n_cores=2, fast_path=False)).run(prog)
        assert fast.engine == "fast"
        assert ref.engine == "reference"
        assert fast.n_ops == ref.n_ops > 0
        assert fast.n_bursts > 0
        assert ref.n_bursts == 0
        # accounting fields never affect timing semantics
        assert fast.total_cycles == ref.total_cycles

    def test_run_records_metrics_once_per_run(self):
        obs.set_enabled(True)
        prog = _simple_program()
        result = Machine(MachineConfig(n_cores=2)).run(prog)
        runs = obs.REGISTRY.get("simx_runs_total")
        assert runs.value(engine=result.engine) == 1.0
        assert obs.REGISTRY.get("simx_ops_total").value() == result.n_ops
        assert obs.REGISTRY.get("simx_cycles_total").value() == result.total_cycles
        assert obs.REGISTRY.get("simx_run_seconds").series_stats()["count"] == 1
        [s] = [s for s in obs.RECORDER.spans if s.name == "simx.run"]
        assert s.attrs["program"] == "probe"


@fork_only
def test_cli_metrics_out_covers_all_layers(tmp_path, capsys, fresh_store):
    """The acceptance command, end to end, through the real CLI."""
    out = tmp_path / "m.jsonl"
    rc = main([
        "run", "table2", "--scale", "0.03",
        "--parallel", "2", "--metrics-out", str(out),
    ])
    assert rc == 0
    assert "[metrics written to" in capsys.readouterr().out
    assert not obs.enabled()  # the context restored the disabled default

    data = obs.read_jsonl(out)
    families = {m["name"] for m in data["metrics"]}
    # simulator layer (executed inside pool workers, shuttled back)
    assert {"simx_runs_total", "simx_ops_total", "simx_cycles_total",
            "simx_run_seconds"} <= families
    # engine/pool layer
    assert {"engine_units_total", "engine_unit_seconds",
            "engine_events_total"} <= families
    # cache layer
    assert {"sweep_cache_lookups_total", "sweep_store_reads_total",
            "sweep_store_writes_total"} <= families
    # experiment layer
    assert "experiment_seconds" in families

    span_names = {s["name"] for s in data["spans"]}
    assert {"simx.run", "engine.batch", "experiment.run"} <= span_names
    # worker-side spans carry the worker id they came from
    assert any("worker" in s.get("attrs", {}) for s in data["spans"]
               if s["name"] == "simx.run")

    # the sweep executed on workers: runs == executed units and no
    # double counting from fork-inherited parent series
    runs = next(m for m in data["metrics"] if m["name"] == "simx_runs_total")
    total_runs = sum(s["value"] for s in runs["series"])
    units = next(m for m in data["metrics"] if m["name"] == "engine_units_total")
    total_units = sum(s["value"] for s in units["series"])
    assert total_runs == total_units > 0

    # and `repro stats` renders the same file without error
    rc = main(["stats", str(out)])
    rendered = capsys.readouterr().out
    assert rc == 0
    assert "simx_ops_total" in rendered
    assert "engine.batch" in rendered
    rc = main(["stats", str(out), "--prometheus"])
    prom = capsys.readouterr().out
    assert rc == 0
    assert "# TYPE simx_runs_total counter" in prom


def test_engine_session_serial_also_instruments(fresh_store):
    """Even the degraded serial pool records unit metrics and the close()
    metrics_snapshot event."""
    from repro import engine
    from repro.experiments.registry import run_experiment

    obs.set_enabled(True)
    with engine.session(1) as sess:
        run_experiment("table2", scale=0.03, thread_counts=(1, 2))
    units = obs.REGISTRY.get("engine_units_total")
    assert units.value(pool="serial") == 6.0
    snap_events = [e for e in sess.events.events if e.kind == "metrics_snapshot"]
    assert len(snap_events) == 1
    assert any(f["name"] == "simx_ops_total" for f in snap_events[0].data["metrics"])
    assert "simx.run" in snap_events[0].data["spans"]
