"""Span tracing: nesting, ordering, attributes, error capture."""

import pytest

from repro import obs
from repro.obs.spans import SpanRecorder, span


class TestSpanBasics:
    def test_disabled_span_yields_none_and_records_nothing(self):
        with span("quiet") as sid:
            assert sid is None
        assert obs.RECORDER.spans == []

    def test_enabled_span_records_with_attrs(self):
        obs.set_enabled(True)
        with span("work", program="kmeans", threads=4) as sid:
            assert isinstance(sid, int)
        [s] = obs.RECORDER.spans
        assert s.name == "work"
        assert s.span_id == sid
        assert s.parent_id is None
        assert s.depth == 0
        assert s.attrs == {"program": "kmeans", "threads": 4}
        assert s.seconds >= 0.0
        assert s.error is None

    def test_exception_recorded_and_reraised(self):
        obs.set_enabled(True)
        with pytest.raises(ValueError):
            with span("boom"):
                raise ValueError("nope")
        [s] = obs.RECORDER.spans
        assert s.error == "ValueError"
        assert "error" in s.to_dict()


class TestNesting:
    def test_children_recorded_before_parents(self):
        """Completion order: inner spans land first (natural for JSONL)."""
        obs.set_enabled(True)
        with span("outer"):
            with span("inner"):
                with span("innermost"):
                    pass
            with span("sibling"):
                pass
        names = [s.name for s in obs.RECORDER.spans]
        assert names == ["innermost", "inner", "sibling", "outer"]

    def test_parent_ids_and_depths(self):
        obs.set_enabled(True)
        with span("outer") as outer_id:
            with span("inner") as inner_id:
                with span("innermost"):
                    pass
        by_name = {s.name: s for s in obs.RECORDER.spans}
        assert by_name["outer"].parent_id is None
        assert by_name["outer"].depth == 0
        assert by_name["inner"].parent_id == outer_id
        assert by_name["inner"].depth == 1
        assert by_name["innermost"].parent_id == inner_id
        assert by_name["innermost"].depth == 2

    def test_sequential_ids_no_randomness(self):
        obs.set_enabled(True)
        rec = SpanRecorder()
        ids = []
        for _ in range(3):
            with span("s", recorder=rec) as sid:
                ids.append(sid)
        assert ids == [1, 2, 3]

    def test_context_restored_after_exception(self):
        obs.set_enabled(True)
        with span("outer"):
            with pytest.raises(RuntimeError):
                with span("failing"):
                    raise RuntimeError
            with span("after") as after_id:
                assert after_id is not None
        by_name = {s.name: s for s in obs.RECORDER.spans}
        # the post-failure sibling hangs off outer, not off the failed span
        assert by_name["after"].parent_id == by_name["outer"].span_id
        assert by_name["after"].depth == 1


class TestMergeAndSummary:
    def test_merge_dicts_adds_extra_attrs(self):
        rec = SpanRecorder()
        rec.merge_dicts(
            [{"name": "simx.run", "span_id": 7, "parent_id": None,
              "depth": 0, "start": 1.0, "seconds": 0.5, "attrs": {"p": 4}}],
            worker=3,
        )
        [s] = rec.spans
        assert s.attrs == {"p": 4, "worker": 3}
        assert s.span_id == 7

    def test_merge_dicts_drops_malformed(self):
        rec = SpanRecorder()
        rec.merge_dicts([{"no_name": True}, {"name": "ok", "span_id": "x"}])
        rec.merge_dicts([{"name": "good", "span_id": 1}])
        assert [s.name for s in rec.spans] == ["good"]

    def test_span_summary_rollup(self):
        obs.set_enabled(True)
        for _ in range(3):
            with span("repeat"):
                pass
        with span("once"):
            pass
        summary = obs.span_summary()
        assert summary["repeat"]["count"] == 3
        assert summary["once"]["count"] == 1
        assert summary["repeat"]["total_seconds"] >= summary["repeat"]["max_seconds"]
