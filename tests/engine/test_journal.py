"""Run-journal behaviour: durable appends, tolerant replay, resume tier."""

import json

import pytest

from repro.engine.journal import (
    RunJournal,
    new_run_id,
    read_manifest,
    resolve_run_dir,
    run_path,
    validate_run_id,
    write_manifest,
)
from repro.engine.pool import RunInterrupted
from repro.engine.scheduler import EngineSession
from repro.engine.units import WorkUnit, register_executor


def _double(spec):
    return {"value": spec[0] * 2}


register_executor("j-double", _double)


def unit(key, *spec):
    return WorkUnit(kind="j-double", key=key, spec=spec, label=key)


class TestRoundtrip:
    def test_record_then_reopen_replays(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with RunJournal(path, run_id="r1") as j:
            assert j.record("k1", {"value": 1})
            assert j.record("k2", {"value": 2})
        replayed = RunJournal(path)
        assert len(replayed) == 2
        assert replayed.get("k1") == {"value": 1}
        assert replayed.get("k2") == {"value": 2}
        assert replayed.run_id == "r1"  # recovered from the header
        assert not replayed.tail_truncated and replayed.dropped == 0

    def test_record_is_idempotent_per_key(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with RunJournal(path) as j:
            assert j.record("k", {"value": 1})
            assert not j.record("k", {"value": 1})
        # header + exactly one record
        assert len(path.read_text().splitlines()) == 2

    def test_contains_and_keys(self, tmp_path):
        with RunJournal(tmp_path / "j.jsonl") as j:
            j.record("a", {"value": 0})
            assert "a" in j and "b" not in j
            assert list(j.keys()) == ["a"]


class TestTolerantReplay:
    def test_truncated_tail_is_dropped_silently(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with RunJournal(path) as j:
            j.record("k1", {"value": 1})
            j.record("k2", {"value": 2})
        # cut mid-way through the last record, like a killed writer
        data = path.read_bytes()
        path.write_bytes(data[:-9])
        replayed = RunJournal(path)
        assert replayed.get("k1") == {"value": 1}
        assert "k2" not in replayed
        assert replayed.tail_truncated
        assert replayed.dropped == 0  # a torn tail is expected, not corrupt

    def test_corrupt_interior_line_is_skipped_and_counted(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with RunJournal(path) as j:
            j.record("k1", {"value": 1})
            j.record("k2", {"value": 2})
        lines = path.read_text().splitlines()
        lines[1] = "{this is not json"
        path.write_text("\n".join(lines) + "\n")
        replayed = RunJournal(path)
        assert "k1" not in replayed
        assert replayed.get("k2") == {"value": 2}
        assert replayed.dropped == 1

    def test_checksum_mismatch_reads_as_corrupt(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with RunJournal(path) as j:
            j.record("k1", {"value": 1})
            j.record("k2", {"value": 2})
        lines = path.read_text().splitlines()
        rec = json.loads(lines[1])
        rec["payload"]["value"] = 999  # silently flip the payload
        lines[1] = json.dumps(rec)
        path.write_text("\n".join(lines) + "\n")
        replayed = RunJournal(path)
        assert "k1" not in replayed  # checksum no longer matches
        assert replayed.dropped == 1

    def test_empty_and_missing_files(self, tmp_path):
        assert len(RunJournal(tmp_path / "missing.jsonl")) == 0
        empty = tmp_path / "empty.jsonl"
        empty.write_bytes(b"")
        assert len(RunJournal(empty)) == 0

    def test_resumed_journal_appends_after_torn_tail(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with RunJournal(path) as j:
            j.record("k1", {"value": 1})
            j.record("k2", {"value": 2})
        data = path.read_bytes()
        path.write_bytes(data[:-5])  # torn tail
        with RunJournal(path) as j2:
            assert j2.tail_truncated
            assert j2.record("k2", {"value": 2})  # re-settle the torn unit
        final = RunJournal(path)
        assert final.get("k1") == {"value": 1}
        assert final.get("k2") == {"value": 2}

    def test_broken_write_reports_once_and_disables(self, tmp_path):
        errors = []
        j = RunJournal(tmp_path / "no" / "j.jsonl", on_error=errors.append)
        (tmp_path / "no").mkdir()
        (tmp_path / "no" / "j.jsonl").mkdir()  # a directory: open() fails
        assert not j.record("k", {"value": 1})
        assert j.broken
        assert len(errors) == 1
        assert not j.record("k2", {"value": 2})  # stays silent after breaking
        assert len(errors) == 1


class TestRunDirectories:
    def test_validate_run_id(self):
        assert validate_run_id("nightly-01") == "nightly-01"
        for bad in ("", "../escape", "a/b", ".hidden", "x" * 200):
            with pytest.raises(ValueError):
                validate_run_id(bad)

    def test_new_run_id_is_valid_and_unique(self):
        a, b = new_run_id(), new_run_id()
        validate_run_id(a)
        assert a != b

    def test_run_path_creates_under_root(self, tmp_path):
        p = run_path("r1", root=tmp_path, create=True)
        assert p.is_dir() and p == tmp_path / "r1"

    def test_manifest_roundtrip(self, tmp_path):
        manifest = {"experiment": "table2", "options": {"scale": 0.03}}
        write_manifest(tmp_path, manifest)
        assert read_manifest(tmp_path) == manifest
        assert not list(tmp_path.glob("*.tmp"))

    def test_manifest_missing_or_corrupt_reads_none(self, tmp_path):
        assert read_manifest(tmp_path / "nowhere") is None
        (tmp_path / "manifest.json").write_text("{broken")
        assert read_manifest(tmp_path) is None

    def test_resolve_run_dir_finds_a_run_with_a_manifest(self, tmp_path):
        rd = run_path("r1", root=tmp_path, create=True)
        write_manifest(rd, {"experiment": "table2"})
        assert resolve_run_dir("r1", root=tmp_path) == rd

    def test_resolve_run_dir_accepts_a_journal_only_run(self, tmp_path):
        rd = run_path("r2", root=tmp_path, create=True)
        with RunJournal(rd / "journal.jsonl", run_id="r2") as j:
            j.record("k", {"value": 1})
        assert resolve_run_dir("r2", root=tmp_path) == rd

    def test_resolve_run_dir_refuses_missing_runs_with_a_hint(self, tmp_path):
        with pytest.raises(FileNotFoundError) as err:
            resolve_run_dir("never-ran", root=tmp_path)
        message = str(err.value)
        assert "never-ran" in message
        assert "REPRO_RUNS_DIR" in message  # points at the CWD trap

    def test_resolve_run_dir_refuses_an_empty_directory(self, tmp_path):
        # a bare directory (no manifest, no journal) is not a resumable
        # run — treating it as one would silently re-execute everything
        run_path("hollow", root=tmp_path, create=True)
        with pytest.raises(FileNotFoundError):
            resolve_run_dir("hollow", root=tmp_path)


class TestSessionIntegration:
    def test_settled_units_are_journaled(self, tmp_path):
        journal = RunJournal(tmp_path / "j.jsonl", run_id="r")
        with EngineSession(1, journal=journal) as sess:
            results = sess.run_units([unit("a", 1), unit("b", 2)])
        assert results == {"a": {"value": 2}, "b": {"value": 4}}
        replayed = RunJournal(tmp_path / "j.jsonl")
        assert replayed.get("a") == {"value": 2}
        assert replayed.get("b") == {"value": 4}

    def test_second_session_replays_without_executing(self, tmp_path):
        with EngineSession(1, journal=RunJournal(tmp_path / "j.jsonl")) as s1:
            s1.run_units([unit("a", 1), unit("b", 2)])
        with EngineSession(1, journal=RunJournal(tmp_path / "j.jsonl")) as s2:
            results = s2.run_units([unit("a", 1), unit("b", 2)])
        assert results == {"a": {"value": 2}, "b": {"value": 4}}
        assert s2.stats["journal_hits"] == 2
        assert s2.stats["executed"] == 0
        assert s2.events.count("journal_hit") == 2

    def test_journal_hits_backfill_cache(self, tmp_path):
        with EngineSession(1, journal=RunJournal(tmp_path / "j.jsonl")) as s1:
            s1.run_units([unit("a", 1)])
        written = {}
        with EngineSession(1, journal=RunJournal(tmp_path / "j.jsonl")) as s2:
            s2.run_units([unit("a", 1)],
                         cache_put=lambda u, p: written.update({u.key: p}))
        assert written == {"a": {"value": 2}}

    def test_cache_hits_are_journaled_too(self, tmp_path):
        with EngineSession(1, journal=RunJournal(tmp_path / "j.jsonl")) as sess:
            sess.run_units([unit("a", 1)], cache_get=lambda u: {"value": 2})
        assert RunJournal(tmp_path / "j.jsonl").get("a") == {"value": 2}

    def test_serial_interrupt_then_resume(self, tmp_path):
        """A drain mid-batch journals what settled; a resume finishes it."""
        journal = RunJournal(tmp_path / "j.jsonl", run_id="r")
        units = [unit(f"k{i}", i) for i in range(6)]
        with EngineSession(1, journal=journal, run_id="r") as sess:
            # the cache_put hook fires after each settle: stop after three
            def stopping_put(u, payload):
                if len(journal) >= 3:
                    sess.request_stop("test stop")

            with pytest.raises(RunInterrupted) as exc_info:
                sess.run_units(units, cache_put=stopping_put)
            assert exc_info.value.settled == 3
            assert exc_info.value.reason == "test stop"
        journal2 = RunJournal(tmp_path / "j.jsonl", run_id="r")
        assert len(journal2) == 3
        with EngineSession(1, journal=journal2, run_id="r") as resumed:
            results = resumed.run_units(units)
        assert results == {f"k{i}": {"value": 2 * i} for i in range(6)}
        assert resumed.stats["journal_hits"] == 3
        assert resumed.stats["executed"] == 3

    def test_stop_before_dispatch_raises_with_resume_state(self, tmp_path):
        journal = RunJournal(tmp_path / "j.jsonl", run_id="r")
        with EngineSession(1, journal=journal, run_id="r") as sess:
            sess.request_stop("SIGTERM")
            with pytest.raises(RunInterrupted) as exc_info:
                sess.run_units([unit("a", 1), unit("b", 2)])
        assert exc_info.value.pending == 2
        assert sess.events.count("run_interrupted") == 1
        event = [e for e in sess.events.events
                 if e.kind == "run_interrupted"][0]
        assert event.data["resume"] == "--resume r"
        assert event.data["reason"] == "SIGTERM"

    def test_journal_write_failure_emits_event(self, tmp_path):
        target = tmp_path / "j.jsonl"
        target.mkdir()  # open() for append will fail
        journal = RunJournal(target)
        with EngineSession(1, journal=journal) as sess:
            results = sess.run_units([unit("a", 1)])
        assert results == {"a": {"value": 2}}  # the run itself survives
        assert sess.events.count("journal_write_failed") == 1
