"""Scheduler semantics: dedup, cache tiers, degradation, session wiring.

These tests force the in-process serial pool (one worker), so executor
side effects are observable in this process without multiprocessing.
"""

import json

import pytest

from repro import engine
from repro.engine.scheduler import EngineSession
from repro.engine.pool import SerialPool
from repro.engine.units import WorkUnit, register_executor

CALLS = []


def _count(spec):
    CALLS.append(spec)
    return {"n": spec[0]}


register_executor("t-sched-count", _count)


def unit(key, *spec):
    return WorkUnit(kind="t-sched-count", key=key, spec=spec, label=key)


@pytest.fixture(autouse=True)
def _reset_calls():
    CALLS.clear()


class TestScheduling:
    def test_duplicate_keys_collapse_to_one_execution(self):
        with EngineSession(1) as sess:
            results = sess.run_units([unit("a", 1), unit("a", 1), unit("b", 2)])
        assert results == {"a": {"n": 1}, "b": {"n": 2}}
        assert len(CALLS) == 2
        assert sess.stats["deduped"] == 1

    def test_cache_hits_never_reach_the_pool(self):
        seeded = {"a": {"n": 99}}
        with EngineSession(1) as sess:
            results = sess.run_units(
                [unit("a", 1), unit("b", 2)],
                cache_get=lambda u: seeded.get(u.key),
            )
        assert results == {"a": {"n": 99}, "b": {"n": 2}}
        assert len(CALLS) == 1  # only the miss executed
        assert sess.stats["cache_hits"] == 1
        assert sess.events.count("cache_hit") == 1

    def test_cache_put_called_per_executed_unit(self):
        written = []
        with EngineSession(1) as sess:
            sess.run_units(
                [unit("a", 1), unit("b", 2)],
                cache_put=lambda u, payload: written.append((u.key, payload)),
            )
        assert sorted(written) == [("a", {"n": 1}), ("b", {"n": 2})]

    def test_cache_put_failure_is_tolerated(self):
        def bad_put(u, payload):
            raise OSError("disk full")

        with EngineSession(1) as sess:
            results = sess.run_units([unit("a", 1)], cache_put=bad_put)
        assert results == {"a": {"n": 1}}
        assert sess.events.count("cache_put_failed") == 1

    def test_progress_events_carry_eta(self):
        with EngineSession(1) as sess:
            sess.run_units([unit("a", 1), unit("b", 2)])
        progress = [e for e in sess.events.events if e.kind == "progress"]
        assert [e.data["done"] for e in progress] == [1, 2]
        assert all(e.data["total"] == 2 and e.data["eta_s"] >= 0 for e in progress)


class TestDegradation:
    def test_env_var_forces_serial_pool(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE_SERIAL", "1")
        with EngineSession(4) as sess:
            results = sess.run_units([unit("a", 1)])
            assert isinstance(sess._pool, SerialPool)
        assert results == {"a": {"n": 1}}
        assert sess.events.count("serial_fallback") == 1

    def test_single_worker_uses_serial_pool(self):
        with EngineSession(1) as sess:
            sess.run_units([unit("a", 1)])
            assert isinstance(sess._pool, SerialPool)


class TestSessionWiring:
    def test_session_installs_ambient_engine(self):
        from repro.experiments import simsweep

        assert simsweep.get_engine() is None
        with engine.session(1) as sess:
            assert simsweep.get_engine() is sess
        assert simsweep.get_engine() is None

    def test_event_log_written_as_jsonl(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with engine.session(1, event_log=str(path)) as sess:
            sess.run_units([unit("a", 1)])
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert lines and all("kind" in l and "t" in l for l in lines)
        assert any(l["kind"] == "unit_done" for l in lines)


class TestPrecompute:
    def test_precompute_dedups_across_experiments(self, tmp_path):
        """table2 and fig2 declare the same sweep — it must run once."""
        from repro.experiments import simsweep

        restore = simsweep.get_disk_store()
        try:
            simsweep.set_disk_store(tmp_path / "store")
            simsweep.clear_cache(memory_only=True)
            with engine.session(1) as sess:
                declared = engine.precompute(
                    sess, ["table2", "fig2", "fig4"],
                    {"scale": 0.03, "thread_counts": (1, 2),
                     "hw_thread_counts": (1, 2)},
                )
            # sweep: 2 experiments x 3 workloads x 2 points, shared
            # between table2 and fig2; hardware: fig2's own stage,
            # 3 workloads x 2 points; plus fig4's one model-eval-grid
            assert declared == 19
            assert sess.stats["deduped"] == 6
            assert sess.stats["executed"] == 13
        finally:
            simsweep.set_disk_store(restore)
            simsweep.clear_cache(memory_only=True)
