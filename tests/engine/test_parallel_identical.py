"""Determinism: a parallel run must be byte-identical to a serial run.

This is the engine's core contract (and an acceptance criterion for the
subsystem): parallelism changes only *where* sweep points execute, never
what any report contains.
"""

import json
import multiprocessing as mp

import pytest

from repro import engine
from repro.cli import main
from repro.experiments import simsweep
from repro.experiments.registry import run_experiment
from repro.experiments.store import report_to_dict

fork_only = pytest.mark.skipif(
    "fork" not in mp.get_all_start_methods(),
    reason="worker-pool tests need the fork start method",
)


@pytest.fixture
def fresh_store(tmp_path):
    """Point the sweep cache at per-phase throwaway dirs; restore after."""
    restore = simsweep.get_disk_store()

    def switch(name):
        simsweep.set_disk_store(tmp_path / name)
        simsweep.clear_cache(memory_only=True)

    try:
        yield switch
    finally:
        simsweep.set_disk_store(restore)
        simsweep.clear_cache(memory_only=True)


def as_bytes(report) -> str:
    return json.dumps(report_to_dict(report), sort_keys=True)


@fork_only
def test_table2_parallel_report_is_byte_identical(fresh_store):
    options = dict(scale=0.03, thread_counts=(1, 2, 4))
    fresh_store("serial")
    serial = run_experiment("table2", **options)

    fresh_store("parallel")
    with engine.session(2) as sess:
        parallel = run_experiment("table2", **options)

    assert sess.stats["executed"] == 9  # the pool really did the work
    assert parallel.render() == serial.render()
    assert as_bytes(parallel) == as_bytes(serial)


def test_fig4_parallel_report_is_byte_identical(fresh_store):
    """Model-only experiment: the whole figure is one vectorized
    model-eval-grid unit; the --parallel path must still be a byte-level
    no-op on the report."""
    fresh_store("fig4")
    serial = run_experiment("fig4")
    with engine.session(2) as sess:
        parallel = run_experiment("fig4")
    assert sess.stats["units"] == 1
    assert as_bytes(parallel) == as_bytes(serial)


def test_cli_run_fig4_parallel_json_identical(tmp_path, capsys):
    """`repro run fig4 --parallel 4` writes the same JSON as a serial run."""
    assert main(["run", "fig4", "--json", str(tmp_path / "serial")]) == 0
    assert main([
        "run", "fig4", "--parallel", "4", "--json", str(tmp_path / "parallel"),
    ]) == 0
    capsys.readouterr()
    serial = (tmp_path / "serial" / "fig4.json").read_bytes()
    parallel = (tmp_path / "parallel" / "fig4.json").read_bytes()
    assert parallel == serial
