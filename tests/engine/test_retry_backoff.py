"""Retry/backoff contract of the worker pool.

A unit that deterministically kills every worker that touches it must
surface a *structured* :class:`UnitFailure` — key, label, reason — in
bounded time, and the exponential backoff between its attempts must be
capped by ``max_backoff`` so a flaky unit can never push the retry
schedule toward unbounded waits.
"""

import multiprocessing as mp
import os
import signal
import time

import pytest

from repro.engine.pool import UnitFailure, WorkerPool
from repro.engine.scheduler import EngineSession
from repro.engine.units import WorkUnit, register_executor

fork_only = pytest.mark.skipif(
    "fork" not in mp.get_all_start_methods(),
    reason="relies on fork-inherited test executors",
)


def _suicide(spec):
    os.kill(os.getpid(), signal.SIGKILL)


register_executor("t-backoff-suicide", _suicide)


def _doomed(key="doomed"):
    return WorkUnit(kind="t-backoff-suicide", key=key, spec=(), label=f"unit:{key}")


@fork_only
class TestRetryBackoff:
    def test_failure_is_structured_not_a_hang(self):
        """Exhausting retries raises UnitFailure carrying key/label/reason."""
        started = time.monotonic()
        with WorkerPool(2, unit_timeout=30.0, max_retries=2,
                        backoff=0.01, max_backoff=0.05) as pool:
            with pytest.raises(UnitFailure) as exc_info:
                pool.run([_doomed()])
        elapsed = time.monotonic() - started
        failure = exc_info.value
        assert failure.key == "doomed"
        assert failure.label == "unit:doomed"
        assert "retry budget" in failure.reason
        assert "3 time(s)" in failure.reason  # initial attempt + 2 retries
        # 2 capped backoffs (<= 0.05 s each) plus worker respawns: the
        # whole thing must resolve promptly, not sit in a poll loop
        assert elapsed < 20.0
        assert pool.events.count("worker_crashed") == 3
        assert pool.events.count("unit_retry") == 2

    def test_backoff_delays_are_capped(self):
        """Every scheduled retry delay obeys min(backoff * 2^k, max_backoff)."""
        with WorkerPool(2, unit_timeout=30.0, max_retries=4,
                        backoff=0.02, max_backoff=0.05) as pool:
            with pytest.raises(UnitFailure):
                pool.run([_doomed()])
        retries = [e for e in pool.events.events if e.kind == "unit_retry"]
        assert len(retries) == 4
        delays = [e.data["delay_s"] for e in retries]
        # uncapped would be 0.02, 0.04, 0.08, 0.16; the cap bites at 0.05
        assert delays == [0.02, 0.04, 0.05, 0.05]
        assert all(d <= pool.max_backoff for d in delays)

    def test_max_backoff_never_below_base_backoff(self):
        pool = WorkerPool(1, backoff=0.5, max_backoff=0.1)
        assert pool.max_backoff == 0.5

    def test_session_forwards_max_backoff_to_pool(self):
        sess = EngineSession(2, max_retries=1, backoff=0.01, max_backoff=0.07)
        try:
            pool = sess._make_pool()
            assert isinstance(pool, WorkerPool)
            assert pool.max_backoff == 0.07
        finally:
            sess.close()

    def test_other_units_complete_despite_doomed_sibling(self):
        """The structured failure aborts the batch, but only after the
        doomed unit truly exhausted its budget — with retries disabled the
        first crash surfaces immediately."""
        started = time.monotonic()
        with WorkerPool(2, unit_timeout=30.0, max_retries=0,
                        backoff=0.01, max_backoff=0.05) as pool:
            with pytest.raises(UnitFailure, match="retry budget 0"):
                pool.run([_doomed()])
        assert time.monotonic() - started < 10.0
        assert pool.events.count("unit_retry") == 0
