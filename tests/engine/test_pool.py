"""Worker-pool behaviour: execution, errors, timeouts.

Test executors are registered at import time in the *parent*; worker
processes inherit them under the ``fork`` start method (the pool's
default on platforms that have it), so pool tests skip where only
``spawn`` exists.
"""

import multiprocessing as mp
import os
import time

import pytest

from repro.engine.events import EventLog
from repro.engine.pool import (
    RunInterrupted,
    SerialPool,
    UnitFailure,
    WorkerPool,
)
from repro.engine.units import WorkUnit, register_executor

fork_only = pytest.mark.skipif(
    "fork" not in mp.get_all_start_methods(),
    reason="pool tests rely on fork-inherited test executors",
)


def _echo(spec):
    return {"value": spec[0] * 2}


def _boom(spec):
    raise ValueError(f"bad spec {spec[0]}")


def _nap(spec):
    time.sleep(spec[0])
    return {"slept": spec[0]}


def _nap_once(spec):
    """Hang only on the first attempt (marker file = 'already tried')."""
    marker, value = spec
    if not os.path.exists(marker):
        open(marker, "w").close()
        time.sleep(60)
    return {"value": value}


register_executor("t-echo", _echo)
register_executor("t-boom", _boom)
register_executor("t-nap", _nap)
register_executor("t-nap-once", _nap_once)


def unit(kind, key, *spec):
    return WorkUnit(kind=kind, key=key, spec=spec, label=key)


class TestSerialPool:
    def test_runs_units_in_process(self):
        pool = SerialPool()
        results = pool.run([unit("t-echo", f"k{i}", i) for i in range(4)])
        assert results == {f"k{i}": {"value": 2 * i} for i in range(4)}
        assert pool.events.count("unit_done") == 4

    def test_duplicate_keys_execute_once(self):
        pool = SerialPool()
        results = pool.run([unit("t-echo", "same", 1), unit("t-echo", "same", 1)])
        assert results == {"same": {"value": 2}}
        assert pool.events.count("unit_done") == 1

    def test_exception_is_unit_failure(self):
        with pytest.raises(UnitFailure, match="k0"):
            SerialPool().run([unit("t-boom", "k0", 7)])

    def test_on_result_callback(self):
        seen = []
        SerialPool().run([unit("t-echo", "a", 1)],
                         on_result=lambda k, p: seen.append((k, p)))
        assert seen == [("a", {"value": 2})]

    def test_failure_carries_the_full_traceback(self):
        """Parity with the worker path: the serial failure report must
        include the formatted traceback, not just the exception repr."""
        with pytest.raises(UnitFailure) as exc_info:
            SerialPool().run([unit("t-boom", "k0", 7)])
        assert "Traceback (most recent call last)" in str(exc_info.value)
        assert "ValueError: bad spec 7" in str(exc_info.value)

    def test_stop_request_interrupts_between_units(self):
        stop_after = {"n": 2}

        def should_stop():
            return stop_after["n"] <= 0

        def on_result(key, payload):
            stop_after["n"] -= 1

        pool = SerialPool(should_stop=should_stop)
        with pytest.raises(RunInterrupted) as exc_info:
            pool.run([unit("t-echo", f"k{i}", i) for i in range(5)],
                     on_result=on_result)
        assert exc_info.value.settled == 2
        assert exc_info.value.pending == 3


@fork_only
class TestWorkerPool:
    def test_parallel_execution(self):
        with WorkerPool(3, unit_timeout=60.0) as pool:
            results = pool.run([unit("t-echo", f"k{i}", i) for i in range(10)])
        assert results == {f"k{i}": {"value": 2 * i} for i in range(10)}
        assert pool.events.count("worker_started") == 3
        assert pool.events.count("unit_done") == 10

    def test_pool_reusable_across_batches(self):
        with WorkerPool(2, unit_timeout=60.0) as pool:
            first = pool.run([unit("t-echo", "a", 1)])
            second = pool.run([unit("t-echo", "b", 2)])
        assert first == {"a": {"value": 2}}
        assert second == {"b": {"value": 4}}
        # the same workers served both batches
        assert pool.events.count("worker_started") == 2

    def test_executor_exception_fails_fast(self):
        with WorkerPool(2, unit_timeout=60.0) as pool:
            with pytest.raises(UnitFailure, match="ValueError"):
                pool.run([unit("t-boom", "bad", 3)])

    def test_unit_timeout_exhausts_retries(self):
        with WorkerPool(1, unit_timeout=0.5, max_retries=0, backoff=0.01) as pool:
            started = time.monotonic()
            with pytest.raises(UnitFailure, match="retry budget"):
                pool.run([unit("t-nap", "slow", 30)])
        assert time.monotonic() - started < 15
        assert pool.events.count("unit_timeout") == 1

    def test_unit_timeout_then_retry_succeeds(self, tmp_path):
        marker = str(tmp_path / "tried")
        with WorkerPool(1, unit_timeout=1.0, max_retries=2, backoff=0.01) as pool:
            results = pool.run([unit("t-nap-once", "flaky", marker, 9)])
        assert results == {"flaky": {"value": 9}}
        assert pool.events.count("unit_timeout") >= 1
        assert pool.events.count("unit_retry") >= 1
        assert pool.events.count("worker_restarted") >= 1

    def test_pool_reusable_after_unit_failure(self):
        """A failed batch must not leave dirty slots: the next batch on
        the same pool runs normally (regression: in-flight bookkeeping
        survived the UnitFailure raise and mis-saw busy workers)."""
        with WorkerPool(2, unit_timeout=60.0) as pool:
            with pytest.raises(UnitFailure):
                pool.run([unit("t-boom", "bad", 1)] +
                         [unit("t-echo", f"k{i}", i) for i in range(4)])
            # every slot must be idle again
            assert all(s.unit is None and s.deadline is None
                       and s.started is None for s in pool._slots.values())
            results = pool.run([unit("t-echo", "after", 21)])
        assert results == {"after": {"value": 42}}

    def test_queue_depth_gauge_resets_after_failure(self):
        from repro import obs

        obs.set_enabled(True)
        try:
            obs.reset()
            with WorkerPool(2, unit_timeout=60.0) as pool:
                with pytest.raises(UnitFailure):
                    pool.run([unit("t-boom", "bad", 1)] +
                             [unit("t-echo", f"g{i}", i) for i in range(3)])
                gauge = obs.gauge("engine_queue_depth", "")
                assert gauge.value() == 0
        finally:
            obs.set_enabled(False)
            obs.reset()

    def test_stop_request_drains_and_reports_state(self):
        stop = {"flag": False}
        with WorkerPool(2, unit_timeout=60.0, backoff=0.01,
                        should_stop=lambda: stop["flag"],
                        drain_grace=5.0) as pool:
            def on_result(key, payload):
                stop["flag"] = True  # request the stop after the 1st settle

            with pytest.raises(RunInterrupted) as exc_info:
                pool.run([unit("t-echo", f"k{i}", i) for i in range(8)],
                         on_result=on_result)
        exc = exc_info.value
        assert exc.settled >= 1
        assert exc.settled + len(exc.abandoned) + exc.pending == 8
        assert pool.events.count("drain_started") == 1

    def test_drain_reports_parked_retries_as_abandoned(self, tmp_path):
        """A retry sitting in the delayed queue when the drain starts must
        surface in ``RunInterrupted.abandoned`` — it was dispatched and
        lost, not never-dispatched ``pending`` work."""
        from repro.engine.chaos import KILL_ONCE

        events = EventLog()
        victim = WorkUnit(kind=KILL_ONCE, key="victim",
                          spec=(str(tmp_path / "marker"), 1), label="victim")
        with WorkerPool(2, unit_timeout=60.0, max_retries=2,
                        backoff=30.0, max_backoff=30.0,  # retry parks for 30s
                        events=events,
                        should_stop=lambda: events.count("unit_retry") > 0,
                        drain_grace=2.0) as pool:
            with pytest.raises(RunInterrupted) as exc_info:
                pool.run([victim]
                         + [unit("t-echo", f"k{i}", i) for i in range(3)])
        exc = exc_info.value
        assert "victim" in exc.abandoned
        assert exc.settled + len(exc.abandoned) + exc.pending == 4

    def test_pool_reusable_after_drain(self):
        stop = {"flag": False}
        with WorkerPool(2, unit_timeout=60.0, backoff=0.01,
                        should_stop=lambda: stop["flag"],
                        drain_grace=5.0) as pool:
            def on_result(key, payload):
                stop["flag"] = True

            with pytest.raises(RunInterrupted):
                pool.run([unit("t-echo", f"k{i}", i) for i in range(8)],
                         on_result=on_result)
            stop["flag"] = False  # stop cleared: the pool must work again
            results = pool.run([unit("t-echo", "again", 5)])
        assert results == {"again": {"value": 10}}
