"""The tentpole contract, for *every* experiment at once: a ``runall``
with a parallel engine session — one globally-deduplicated precompute
pass over the union of all declared units, then assembly — produces
byte-identical reports to a plain serial loop.

This extends the table2/fig4 identity tests to the full registry: sim
sweeps, config-bearing sweep points (ACMP, crossover, machine variants),
hand-built trace programs, hardware-model runs and model-eval grids all
flow through the same declare/assemble substrate.
"""

import json
import multiprocessing as mp

import pytest

from repro import engine
from repro.experiments import simsweep
from repro.experiments.registry import filter_options, run_experiment
from repro.experiments.store import report_to_dict

fork_only = pytest.mark.skipif(
    "fork" not in mp.get_all_start_methods(),
    reason="worker-pool tests need the fork start method",
)

#: one option set for the whole batch, exactly as ``repro runall`` passes
#: it — each driver/stage receives only the knobs it accepts.  fig2 needs
#: 16 in thread_counts (its claims index the 16-core point).
OPTIONS = dict(
    scale=0.03,
    thread_counts=(1, 2, 16),
    hw_thread_counts=(1, 2),
    n=128,  # ext-critical's ACS table sweeps rl up to 128
    max_cores=64,
    budget=4,
    n_items=2000,
    n_bins=256,
    updates=50,
    updates_per_thread=200,
    batch=32,
    merge_elements=64,
    rl=4,
    n_threads=2,
)


def _runall_ids():
    from repro.cli import _all_experiment_ids

    return _all_experiment_ids()


def _reports(ids):
    return {
        eid: json.dumps(report_to_dict(
            run_experiment(eid, **filter_options(eid, OPTIONS))
        ), sort_keys=True)
        for eid in ids
    }


@fork_only
def test_runall_parallel_matches_serial_for_every_experiment(tmp_path):
    ids = _runall_ids()
    restore = simsweep.get_disk_store()
    try:
        simsweep.set_disk_store(tmp_path / "serial")
        simsweep.clear_cache(memory_only=True)
        serial = _reports(ids)

        simsweep.set_disk_store(tmp_path / "parallel")
        simsweep.clear_cache(memory_only=True)
        with engine.session(2) as sess:
            engine.precompute(sess, ids, OPTIONS)
            parallel = _reports(ids)

        # the precompute genuinely executed work, and the cross-experiment
        # dedup collapsed the table2/fig2 shared sweep to single units
        assert sess.stats["executed"] > 0
        assert sess.stats["deduped"] > 0
        for eid in ids:
            assert parallel[eid] == serial[eid], f"{eid} diverged"
    finally:
        simsweep.set_disk_store(restore)
        simsweep.clear_cache(memory_only=True)
