"""Fault tolerance: workers killed mid-unit must not lose work.

The crash executors SIGKILL their own process — indistinguishable from
an OOM kill — *before* reporting anything, so the parent only learns
about it from process liveness.  A marker file records "this unit
already killed one worker", making the retry succeed.
"""

import json
import multiprocessing as mp
import os
import signal

import pytest

from repro.engine.pool import UnitFailure, WorkerPool
from repro.engine.units import WorkUnit, register_executor
from repro.experiments.store import report_to_dict

fork_only = pytest.mark.skipif(
    "fork" not in mp.get_all_start_methods(),
    reason="fault-tolerance tests rely on fork-inherited test executors",
)


def _echo(spec):
    return {"value": spec[0]}


def _crash_once(spec):
    marker, value = spec
    if not os.path.exists(marker):
        open(marker, "w").close()
        os.kill(os.getpid(), signal.SIGKILL)
    return {"value": value}


def _crash_always(spec):
    os.kill(os.getpid(), signal.SIGKILL)


def _crash_once_sweep_point(spec):
    """Sweep-point executor that SIGKILLs the first worker that runs it."""
    marker = os.environ.get("REPRO_TEST_CRASH_MARKER", "")
    if marker and not os.path.exists(marker):
        open(marker, "w").close()
        os.kill(os.getpid(), signal.SIGKILL)
    from repro.engine.executors import _run_sweep_point

    return _run_sweep_point(spec)


register_executor("t-ft-echo", _echo)
register_executor("t-crash-once", _crash_once)
register_executor("t-crash-always", _crash_always)
register_executor("t-crash-once-sweep", _crash_once_sweep_point)


def unit(kind, key, *spec):
    return WorkUnit(kind=kind, key=key, spec=spec, label=key)


@fork_only
class TestWorkerKill:
    def test_killed_worker_loses_only_inflight_unit(self, tmp_path):
        marker = str(tmp_path / "killed")
        units = [unit("t-ft-echo", f"k{i}", i) for i in range(6)]
        units.insert(3, unit("t-crash-once", "victim", marker, 42))
        with WorkerPool(2, unit_timeout=60.0, max_retries=2, backoff=0.01) as pool:
            results = pool.run(units)
        # every unit completed, including the one whose worker was killed
        assert results["victim"] == {"value": 42}
        assert all(results[f"k{i}"] == {"value": i} for i in range(6))
        assert pool.events.count("worker_crashed") >= 1
        assert pool.events.count("worker_restarted") >= 1
        assert pool.events.count("unit_retry") >= 1

    def test_repeated_crashes_exhaust_retry_budget(self):
        with WorkerPool(2, unit_timeout=60.0, max_retries=1, backoff=0.01) as pool:
            with pytest.raises(UnitFailure, match="retry budget"):
                pool.run([unit("t-crash-always", "doomed")])
        assert pool.events.count("worker_crashed") >= 2

    def test_worker_kill_mid_sweep_yields_correct_report(
        self, tmp_path, monkeypatch
    ):
        """Kill a worker during a real table2 sweep; the run must complete
        and produce a report identical to an undisturbed serial run."""
        from repro import engine
        from repro.experiments import simsweep
        from repro.experiments.registry import run_experiment

        options = dict(scale=0.03, thread_counts=(1, 2))

        restore = simsweep.get_disk_store()
        try:
            simsweep.set_disk_store(tmp_path / "serial-store")
            simsweep.clear_cache(memory_only=True)
            serial = run_experiment("table2", **options)

            # reroute the first declared unit through the crashing executor
            monkeypatch.setenv(
                "REPRO_TEST_CRASH_MARKER", str(tmp_path / "killed")
            )
            real_unit_for = simsweep._unit_for
            wrapped = {"done": False}

            def crashing_unit_for(workload, p, mem_scale, config):
                u = real_unit_for(workload, p, mem_scale, config)
                if not wrapped["done"]:
                    wrapped["done"] = True
                    u = WorkUnit(kind="t-crash-once-sweep", key=u.key,
                                 spec=u.spec, label=u.label)
                return u

            monkeypatch.setattr(simsweep, "_unit_for", crashing_unit_for)

            simsweep.set_disk_store(tmp_path / "engine-store")
            simsweep.clear_cache(memory_only=True)
            with engine.session(2, max_retries=2, backoff=0.01) as sess:
                parallel = run_experiment("table2", **options)

            assert sess.events.count("worker_crashed") >= 1
            assert sess.events.count("unit_retry") >= 1
            assert sess.stats["executed"] == 6  # no unit lost, none doubled
            assert parallel.render() == serial.render()
            assert (
                json.dumps(report_to_dict(parallel), sort_keys=True)
                == json.dumps(report_to_dict(serial), sort_keys=True)
            )
        finally:
            simsweep.set_disk_store(restore)
            simsweep.clear_cache(memory_only=True)
