"""Cycle-identity fuzz: thousands of programs through all three engines.

Every generated program runs through the reference interpreter, the
fused fast path and the lockstep batch interpreter on the same (rotating)
machine configuration; all observable output — total and per-thread
cycles, instruction counts, protocol counters, per-phase busy/wait/span
attribution and op accounting — must be identical.  Seeds are chunked so
a failure names a narrow seed range that replays standalone via
``tests.differential.gen.generate_program(seed, mix)``.
"""

import os
from dataclasses import replace

import pytest

from repro.simx import Machine
from tests.differential.gen import MIXES, generate_program
from tests.simx.test_fastpath_differential import CONFIGS, assert_identical

_CONFIG_RING = tuple(CONFIGS.items())

#: seeds per mix; 5 mixes x 408 = 2040 programs (the acceptance bar is
#: 2000).  Override with REPRO_DIFF_SEEDS for longer CI fuzz runs.
SEEDS_PER_MIX = int(os.environ.get("REPRO_DIFF_SEEDS", "408"))
_CHUNK = 51


def run_three(cfg, program):
    """One program through reference / fast / batch on the same config."""
    ref = Machine(replace(cfg, fast_path=False, batch_path=False)).run(program)
    fast = Machine(replace(cfg, fast_path=True, batch_path=False)).run(program)
    bat = Machine(replace(cfg, batch_path=True)).run(program)
    return ref, fast, bat


def test_corpus_meets_the_acceptance_bar():
    assert len(MIXES) * SEEDS_PER_MIX >= 2000


@pytest.mark.parametrize("start", range(0, SEEDS_PER_MIX, _CHUNK))
@pytest.mark.parametrize("mix", MIXES)
def test_three_engines_cycle_identical(mix, start):
    for seed in range(start, min(start + _CHUNK, SEEDS_PER_MIX)):
        config_name, cfg = _CONFIG_RING[seed % len(_CONFIG_RING)]
        program = generate_program(seed, mix)
        ref, fast, bat = run_three(cfg, program)
        why = f"mix={mix} seed={seed} config={config_name}"
        assert ref.engine == "reference", why
        assert fast.engine == "fast", why
        assert bat.engine == "batch", why
        assert ref.n_ops == fast.n_ops == bat.n_ops, why
        assert_identical(fast, ref)
        assert_identical(bat, ref)
