"""Grid-vs-scalar model oracles: the vectorized kernels are bit-exact.

``repro.core.gridkernels`` promises *bit-identity* with the scalar model
stack (same float64 operations in the same order), which is what lets the
fig4/fig5/conclusions experiments assemble their byte-exact golden
reports from one grid call.  Every check here therefore asserts exact
equality (``np.array_equal`` / ``==``), never closeness, across hundreds
of randomized parameter points per equation.
"""

import random

import numpy as np
import pytest

from repro.core import amdahl, communication, gridkernels, hill_marty, merging
from repro.core.communication import LINEAR_COMP, LOG_COMP, MESH_COMM, PARALLEL_COMP
from repro.core.params import AppParams
from repro.experiments import conclusions

_SEED = 20260808


def _points(n_cases=60, seed=_SEED):
    rng = random.Random(seed)
    out = []
    for _ in range(n_cases):
        out.append((
            rng.uniform(0.2, 0.9999),  # f (AppParams forbids exactly 1.0)
            rng.uniform(0.0, 1.0),     # fcon_share
            rng.uniform(0.0, 1.0),     # fored_share
        ))
    return out

POINTS = _points()
NS = (16, 64, 256)
GROWTHS = ("linear", "log")


def _sizes(n):
    return merging.power_of_two_sizes(n)


class TestEq1Amdahl:
    def test_grid_matches_scalar(self):
        rng = random.Random(_SEED + 1)
        fs = np.array([rng.uniform(0.0, 1.0) for _ in range(50)])
        ps = np.array([float(rng.randrange(1, 512)) for _ in range(50)])
        grid = gridkernels.amdahl_speedup(fs, ps)
        scalar = np.array([amdahl.speedup(f, p) for f, p in zip(fs, ps)])
        assert np.array_equal(grid, scalar)


class TestEq2And3HillMarty:
    @pytest.mark.parametrize("n", NS)
    def test_symmetric(self, n):
        sizes = _sizes(n)
        for f, _, _ in POINTS[:20]:
            grid = gridkernels.hm_symmetric(f, n, sizes)
            scalar = hill_marty.speedup_symmetric(f, n, sizes)
            assert np.array_equal(grid, np.asarray(scalar))

    @pytest.mark.parametrize("n", NS)
    def test_asymmetric(self, n):
        sizes = _sizes(n)
        for f, _, _ in POINTS[:20]:
            grid = gridkernels.hm_asymmetric(f, n, sizes)
            scalar = hill_marty.speedup_asymmetric(f, n, sizes)
            assert np.array_equal(grid, np.asarray(scalar))

    def test_asymmetric_grouped(self):
        n = 256
        sizes = _sizes(n)
        for f, _, _ in POINTS[:20]:
            for r in (1.0, 4.0, 16.0):
                feasible = sizes[sizes >= r]
                grid = gridkernels.hm_asymmetric_grouped(f, n, feasible, r)
                scalar = hill_marty.speedup_asymmetric_grouped(f, n, feasible, r)
                assert np.array_equal(grid, np.asarray(scalar))


class TestEq4And5Merging:
    @pytest.mark.parametrize("growth", GROWTHS)
    @pytest.mark.parametrize("n", NS)
    def test_symmetric(self, n, growth):
        sizes = _sizes(n)
        for f, c, o in POINTS[:15]:
            params = AppParams(f=f, fcon_share=c, fored_share=o)
            grid = gridkernels.merging_symmetric(f, c, o, n, sizes, growth)
            scalar = merging.speedup_symmetric(params, n, sizes, growth)
            assert np.array_equal(grid, np.asarray(scalar))

    @pytest.mark.parametrize("growth", GROWTHS)
    def test_asymmetric(self, growth):
        n = 256
        sizes = _sizes(n)
        for f, c, o in POINTS[:15]:
            params = AppParams(f=f, fcon_share=c, fored_share=o)
            for r in (1.0, 4.0, 16.0):
                feasible = sizes[sizes >= r]
                grid = gridkernels.merging_asymmetric(
                    f, c, o, n, feasible, r, growth
                )
                scalar = merging.speedup_asymmetric(
                    params, n, feasible, r, growth
                )
                assert np.array_equal(grid, np.asarray(scalar))


class TestEq6To8Communication:
    @pytest.mark.parametrize("comp", [PARALLEL_COMP, LINEAR_COMP, LOG_COMP],
                             ids=lambda c: c.name)
    def test_symmetric(self, comp):
        n = 256
        sizes = _sizes(n)
        for f, c, _ in POINTS[:15]:
            params = AppParams(f=f, fcon_share=c, fored_share=0.5)
            grid = gridkernels.comm_symmetric(f, c, n, sizes, comp, MESH_COMM)
            scalar = communication.speedup_symmetric_comm(
                params, n, sizes, comp, MESH_COMM
            )
            assert np.array_equal(grid, np.asarray(scalar))

    def test_asymmetric(self):
        n = 256
        sizes = _sizes(n)
        for f, c, _ in POINTS[:15]:
            params = AppParams(f=f, fcon_share=c, fored_share=0.5)
            for r in (1.0, 4.0):
                feasible = sizes[sizes >= r]
                grid = gridkernels.comm_asymmetric(f, c, n, feasible, r)
                scalar = communication.speedup_asymmetric_comm(
                    params, n, feasible, r
                )
                assert np.array_equal(grid, np.asarray(scalar))

    def test_eq8_mesh_growth(self):
        rng = random.Random(_SEED + 8)
        nc = np.array([rng.uniform(0.1, 300.0) for _ in range(200)])
        grid = gridkernels.mesh_growcomm(nc)
        scalar = np.array([float(np.sqrt(x) / 2.0) if x > 1.0 else 0.0
                           for x in nc])
        assert np.array_equal(grid, scalar)


class TestDesignSpaceReducers:
    def test_best_symmetric_matches_scalar_optimiser(self):
        n = 256
        f = np.array([p[0] for p in POINTS])
        c = np.array([p[1] for p in POINTS])
        o = np.array([p[2] for p in POINTS])
        best_r, best_sp = gridkernels.best_symmetric_grid(f, c, o, n)
        for i, (fv, cv, ov) in enumerate(POINTS):
            d = merging.best_symmetric(AppParams(f=fv, fcon_share=cv,
                                                 fored_share=ov), n)
            assert best_r[i] == d.r
            assert best_sp[i] == d.speedup

    def test_best_asymmetric_matches_scalar_optimiser(self):
        n = 256
        f = np.array([p[0] for p in POINTS])
        c = np.array([p[1] for p in POINTS])
        o = np.array([p[2] for p in POINTS])
        best_rl, best_r, best_sp = gridkernels.best_asymmetric_grid(f, c, o, n)
        for i, (fv, cv, ov) in enumerate(POINTS):
            d = merging.best_asymmetric(AppParams(f=fv, fcon_share=cv,
                                                  fored_share=ov), n)
            assert best_rl[i] == d.rl
            assert best_r[i] == d.r
            assert best_sp[i] == d.speedup


class TestConclusionsGrid:
    def test_grid_matches_point_oracle_on_random_points(self):
        pts = POINTS[:24]
        grid = gridkernels.conclusions_grid(
            np.array([p[0] for p in pts]),
            np.array([p[1] for p in pts]),
            np.array([p[2] for p in pts]),
            n=256,
        )
        for i, (f, c, o) in enumerate(pts):
            point = conclusions.evaluate_point(f, c, o, 256)
            for key, value in point.items():
                assert grid[key][i] == value, (key, f, c, o)

    def test_experiment_grid_helper_is_plain_python(self):
        out = conclusions.evaluate_grid([0.99, 0.999], [0.5, 0.9],
                                        [0.8, 0.2], 256)
        point = conclusions.evaluate_point(0.99, 0.5, 0.8, 256)
        for key, value in point.items():
            assert out[key][0] == value
