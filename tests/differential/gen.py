"""Seeded random trace-program generator for the differential harness.

Unlike the hypothesis strategy in ``tests/simx/test_fastpath_differential``
this generator is plain ``random.Random``, so the same programs can be
replayed outside pytest — ``scripts/run_bench.py --fuzz-iters N`` drives
it directly and CI pins seed matrices to exact programs.

Programs are deadlock-free by construction: every thread shares one
barrier/phase skeleton, lock sections are emitted whole (acquire and
release in the same step, never across a barrier) and never nested.

Address space (64-byte lines): each thread owns 16 private lines at
``(0x1000 + tid*0x100 + idx) * 64``; 8 lines at ``idx * 64`` are touched
by every thread; false-sharing stores hit distinct bytes of those same
shared lines.  Under the tiny 4-set L1 the differential suite uses, the
private streams collide with resident shared lines often enough to
exercise the eviction-hazard bail-out on every mix.
"""

from __future__ import annotations

import random

from repro.simx import (
    Barrier,
    Compute,
    Load,
    Lock,
    PhaseBegin,
    PhaseEnd,
    Store,
    ThreadTrace,
    TraceProgram,
    Unlock,
)

__all__ = ["MIXES", "generate_program"]

LINE = 64

#: op-mix profiles: weights for (compute, private, shared, reduction,
#: false-sharing) emission
MIXES = ("private", "shared", "reduction", "false-sharing", "mixed")

_WEIGHTS = {
    "private": (4, 10, 1, 0, 0),
    "shared": (3, 2, 10, 0, 1),
    "reduction": (3, 4, 1, 6, 0),
    "false-sharing": (3, 3, 1, 0, 8),
    "mixed": (4, 4, 3, 2, 2),
}
_KINDS = ("compute", "private", "shared", "reduction", "false-sharing")


def _emit(rng: random.Random, ops: list, tid: int, kind: str) -> None:
    """Append one step of the given kind to a thread's op list."""
    if kind == "compute":
        ops.append(Compute(rng.randrange(0, 400)))
    elif kind == "private":
        addr = (0x1000 + tid * 0x100 + rng.randrange(16)) * LINE
        ops.append(Store(addr) if rng.random() < 0.4 else Load(addr))
    elif kind == "shared":
        addr = rng.randrange(8) * LINE
        ops.append(Store(addr) if rng.random() < 0.4 else Load(addr))
    elif kind == "reduction":
        # a whole critical section on a shared accumulator line
        lock_id = rng.randrange(2)
        addr = rng.randrange(8) * LINE
        ops.append(Lock(lock_id))
        ops.append(Load(addr))
        ops.append(Compute(rng.randrange(1, 80)))
        ops.append(Store(addr))
        ops.append(Unlock(lock_id))
    else:  # false-sharing: distinct bytes of one line, per thread
        addr = rng.randrange(4) * LINE + (tid * 8) % LINE
        ops.append(Store(addr))


def generate_program(
    seed: int, mix: str = "mixed", max_threads: int = 4
) -> TraceProgram:
    """One deterministic trace program for ``(seed, mix)``.

    ``max_threads`` caps the drawn thread count so programs fit the
    target machine (the differential configs have 4 cores).
    """
    if mix not in _WEIGHTS:
        raise ValueError(f"unknown mix {mix!r}; expected one of {MIXES}")
    rng = random.Random((seed << 5) ^ 0xD1FF)
    weights = _WEIGHTS[mix]
    n_threads = rng.randint(1, max_threads)
    n_rounds = rng.randint(1, 3)
    per_thread: list[list] = [[] for _ in range(n_threads)]
    bid = 0
    for rnd in range(n_rounds):
        phase = rng.choice(("init", "parallel", "reduction", "merge"))
        use_phase = rng.random() < 0.8
        for tid in range(n_threads):
            ops = per_thread[tid]
            if use_phase:
                ops.append(PhaseBegin(phase))
            for _ in range(rng.randint(0, 14)):
                _emit(rng, ops, tid, rng.choices(_KINDS, weights)[0])
            if use_phase:
                ops.append(PhaseEnd(phase))
        if n_threads > 1 and (rnd < n_rounds - 1 or rng.random() < 0.5):
            for tid in range(n_threads):
                per_thread[tid].append(Barrier(bid))
            bid += 1
    return TraceProgram(
        f"fuzz-{mix}-{seed}",
        [ThreadTrace(tid, ops) for tid, ops in enumerate(per_thread)],
    )
