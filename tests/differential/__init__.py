"""Differential-equivalence harness: three engines, one observable truth.

The simulator has three execution engines — the op-at-a-time reference
interpreter, the fused fast path (``repro.simx.fastpath``) and the
lockstep batch interpreter (``repro.simx.batch``) — plus scalar and
vectorized (``repro.core.gridkernels``) evaluators of the paper's Eq 1-8
model.  This package is the gate that keeps them interchangeable:

* :mod:`tests.differential.gen` — a seeded random trace-program
  generator (stdlib ``random`` only, so ``scripts/run_bench.py`` can
  reuse it without hypothesis);
* ``test_engine_identity`` — thousands of generated programs, each run
  through all three engines and compared on every observable field;
* ``test_fallback_boundaries`` — directed traces pinning the exact
  fallback seams (eviction hazard, coherence event, phase transition
  inside an epoch) and the configurations that must bypass batch/fast
  execution entirely (banked DRAM, contended bus, prefetch);
* ``test_model_oracles`` — randomized grids where the vectorized
  kernels must match scalar oracles bit-for-bit;
* ``test_obs_parity`` — the obs metrics count each run exactly once,
  with the correct engine label, whichever engine ran;
* ``test_chaos_grid_resume`` — SIGKILL + ``--resume`` over a
  grid-declared experiment reproduces the report byte-for-byte.
"""
