"""Directed traces pinning the batch interpreter's fallback seams.

The lockstep epochs may only elide scheduling where reordering is
provably unobservable; each test here constructs the exact boundary
where that proof stops — a coherence event inside an epoch, an L1 fill
that would evict a shared line, a phase transition while other threads'
clocks diverge — and asserts the batch engine both takes the fallback
(where observable in the op accounting) and stays cycle-identical.
Configurations whose state couples cores (banked DRAM, contended bus,
prefetch, a cycle watchdog) must bypass the batch engine entirely.
"""

from dataclasses import replace

from repro.simx import (
    Barrier,
    Compute,
    Load,
    Machine,
    Store,
    supports_batch_path,
)
from repro.simx.batch import compile_batch
from tests.simx.test_fastpath_differential import (
    CONFIGS,
    LINE,
    assert_identical,
    program_of,
    tiny_config,
)


def run_ref_and_batch(threads, config):
    ref = Machine(replace(config, fast_path=False, batch_path=False)).run(
        program_of(threads)
    )
    bat = Machine(replace(config, batch_path=True)).run(program_of(threads))
    return ref, bat


def private(tid, idx):
    return (0x1000 + tid * 0x100 + idx) * LINE


class TestCoherenceEventInsideEpoch:
    def test_first_shared_access_parks_the_epoch(self):
        """A shared access mid-trace splits the segment at compile time
        and executes in global order; cycles stay identical."""
        threads = [
            [Load(private(0, i)) for i in range(6)]
            + [Store(0)]  # first coherence event
            + [Load(private(0, i)) for i in range(6)],
            [Compute(100), Load(0), Compute(100)],
        ]
        cfg = tiny_config()
        compiled = compile_batch(program_of(threads), cfg.line_size)
        # the shared line is a segment boundary, not part of any burst
        assert 0 in compiled.shared_lines
        ref, bat = run_ref_and_batch(threads, cfg)
        assert bat.engine == "batch"
        assert bat.n_bursts >= 2  # the private run was split, not fused over
        assert_identical(bat, ref)

    def test_remote_invalidation_between_epochs(self):
        """Thread 1's store invalidates thread 0's cached shared line;
        the reload observes it through the globally-ordered path."""
        threads = [
            [Load(0), Barrier(0), Load(0)],
            [Store(0), Barrier(0), Compute(10)],
        ]
        ref, bat = run_ref_and_batch(threads, tiny_config())
        assert ref.coherence.invalidations >= 1
        assert_identical(bat, ref)


class TestEvictionHazardBail:
    def test_private_fill_into_a_set_holding_a_shared_line_bails(self):
        """With shared lines resident in a full set, a private fill's
        victim depends on remote timing: the op must fall back.  Under
        the tiny L1 (4 sets x 2 ways), private lines 0,4,8,12 and shared
        lines 0,4 all map to set 0."""
        threads = [
            [Load(0 * LINE), Load(4 * LINE)]  # two shared lines fill set 0
            + [Load(private(0, i)) for i in (0, 4, 8, 12)],
            [Compute(50), Load(0 * LINE)],
        ]
        cfg = tiny_config()
        ref, bat = run_ref_and_batch(threads, cfg)
        assert bat.n_burst_fallbacks >= 1
        assert_identical(bat, ref)

    def test_bailed_op_still_executes_exactly_once(self):
        threads = [
            [Load(0 * LINE), Load(4 * LINE)]
            + [Store(private(0, i)) for i in (0, 4, 8, 12)],
        ]
        ref, bat = run_ref_and_batch(threads, tiny_config())
        assert ref.n_ops == bat.n_ops
        assert_identical(bat, ref)


class TestPhaseTransitionInsideEpoch:
    def test_phase_markers_note_eager_clocks(self):
        """Phase spans are recorded at each thread's own (eagerly
        advanced) clock, exactly as the reference scheduler would."""
        from repro.simx import PhaseBegin, PhaseEnd

        threads = [
            [PhaseBegin("parallel"), Compute(400)]
            + [Load(private(0, i)) for i in range(8)]
            + [PhaseEnd("parallel"), PhaseBegin("merge"), Store(0),
               PhaseEnd("merge")],
            [PhaseBegin("parallel"), Compute(20), PhaseEnd("parallel"),
             PhaseBegin("merge"), Load(0), PhaseEnd("merge")],
        ]
        ref, bat = run_ref_and_batch(threads, tiny_config())
        assert ref.phase_stats.spans == bat.phase_stats.spans
        assert_identical(bat, ref)


class TestConfigurationGates:
    """State that couples cores must bypass the batch engine entirely."""

    def test_banked_dram_falls_back_to_reference(self):
        cfg = replace(tiny_config(), batch_path=True, dram="banked")
        assert not supports_batch_path(cfg)
        threads = [[Load(private(0, i)) for i in range(8)], [Load(0), Store(0)]]
        got = Machine(cfg).run(program_of(threads))
        ref = Machine(replace(cfg, batch_path=False, fast_path=False)).run(
            program_of(threads)
        )
        # banked DRAM also rules out the fused fast path: full reference
        assert got.engine == "reference"
        assert_identical(got, ref)

    def test_contended_bus_falls_back(self):
        cfg = replace(tiny_config(), batch_path=True, bus_occupancy=2)
        assert not supports_batch_path(cfg)
        threads = [[Load(0), Store(0)], [Load(0), Store(0)]]
        got = Machine(cfg).run(program_of(threads))
        assert got.engine == "reference"

    def test_prefetch_falls_back(self):
        cfg = replace(tiny_config(), batch_path=True, prefetch_next_line=True)
        assert not supports_batch_path(cfg)

    def test_watchdog_falls_back(self):
        cfg = replace(tiny_config(), batch_path=True)
        assert supports_batch_path(cfg)
        assert not supports_batch_path(cfg, max_cycles=10_000)
        threads = [[Compute(100)]]
        got = Machine(cfg).run(program_of(threads), max_cycles=10_000)
        assert got.engine == "reference"

    def test_every_differential_config_supports_batch(self):
        for name, cfg in CONFIGS.items():
            assert supports_batch_path(replace(cfg, batch_path=True)), name
