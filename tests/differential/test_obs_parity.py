"""Obs-metrics parity across engines: one run, one count, right label.

The engine-accounting fields (``n_ops``/``n_bursts``/``n_fused_ops``/
``n_burst_fallbacks``) feed the ``simx_*`` obs counters; whichever engine
executes, every counter must increment exactly once per run with the
engine's own label — no double counting (e.g. batch delegating through
``Machine._run``) and no zero counting (e.g. batch results bypassing the
obs wrapper).
"""

import pytest

from repro import obs
from repro.simx import (
    Barrier,
    Compute,
    Load,
    Machine,
    MachineConfig,
    Store,
    ThreadTrace,
    TraceProgram,
)


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.set_enabled(False)
    obs.reset()
    obs.RECORDER.clear()
    yield
    obs.set_enabled(False)
    obs.reset()
    obs.RECORDER.clear()


def _program():
    threads = []
    for tid in range(2):
        base = 0x100000 * (tid + 1)
        ops = [Compute(40)]
        ops += [Load(base + i * 64) for i in range(12)]
        ops += [Store(base + i * 64) for i in range(4)]
        ops += [Load(0), Barrier(0)]
        threads.append(ThreadTrace(tid, ops))
    return TraceProgram("parity", threads)


ENGINES = {
    "reference": dict(fast_path=False, batch_path=False),
    "fast": dict(fast_path=True, batch_path=False),
    "batch": dict(batch_path=True),
}


@pytest.mark.parametrize("engine", ENGINES)
def test_each_engine_counts_its_run_exactly_once(engine):
    obs.set_enabled(True)
    result = Machine(MachineConfig(n_cores=2, **ENGINES[engine])).run(_program())
    assert result.engine == engine
    runs = obs.REGISTRY.get("simx_runs_total")
    assert runs.value(engine=engine) == 1.0
    for other in ENGINES:
        if other != engine:
            assert runs.value(engine=other) == 0.0
    assert obs.REGISTRY.get("simx_ops_total").value() == result.n_ops
    assert obs.REGISTRY.get("simx_bursts_total").value() == result.n_bursts
    assert obs.REGISTRY.get("simx_fused_ops_total").value() == result.n_fused_ops
    assert (obs.REGISTRY.get("simx_burst_fallbacks_total").value()
            == result.n_burst_fallbacks)
    assert obs.REGISTRY.get("simx_cycles_total").value() == result.total_cycles
    assert (obs.REGISTRY.get("simx_instructions_total").value()
            == sum(result.instructions))


def test_batch_accounting_matches_fast_conventions():
    """``engine="batch"`` results carry the same burst accounting the fast
    engine reports: compile-time bursts/fused ops, runtime ops/fallbacks."""
    prog = _program()
    fast = Machine(MachineConfig(n_cores=2, fast_path=True)).run(prog)
    bat = Machine(MachineConfig(n_cores=2, batch_path=True)).run(prog)
    assert bat.engine == "batch"
    assert bat.n_ops == fast.n_ops > 0
    assert bat.n_bursts > 0
    assert bat.n_fused_ops > 0
    # accounting is observational: timing must not depend on it
    assert bat.total_cycles == fast.total_cycles
    assert bat.thread_cycles == fast.thread_cycles


def test_ops_totals_agree_across_engines_with_obs_enabled():
    obs.set_enabled(True)
    totals = {}
    for engine, knobs in ENGINES.items():
        obs.reset()
        Machine(MachineConfig(n_cores=2, **knobs)).run(_program())
        totals[engine] = obs.REGISTRY.get("simx_ops_total").value()
    assert totals["reference"] == totals["fast"] == totals["batch"] > 0
