"""Crash-safety for the vectorized model path: an experiment whose whole
figure is one ``model-eval-grid`` unit (fig4), SIGKILLed mid-append at
the unit's settle and resumed with ``--resume``, reproduces the
uninterrupted report byte-for-byte from the journal alone.

The grid unit's payload is the full vectorized result set, so this also
pins that grid payloads round-trip losslessly through the journal's
settle records (float64 arrays in, identical bytes out).
"""

import json
import shutil
import signal

import pytest

from repro.engine.chaos import Chaos
from tests.chaos.test_interrupt_resume import run_cli

#: fig4 declares exactly one model-eval-grid unit (the whole figure)
FIG4_ARGS = ["run", "fig4"]
N_UNITS = 1

SEED = 2028
KILL_AT = Chaos(seed=SEED).settle_point(N_UNITS)


@pytest.fixture(scope="module")
def workdir(tmp_path_factory):
    return tmp_path_factory.mktemp("chaos-grid")


@pytest.fixture(scope="module")
def control_report(workdir):
    """The uninterrupted run's fig4 report (its own sweep cache)."""
    proc = run_cli([*FIG4_ARGS, "--json", "ctrl"], workdir,
                   sweeps="ctrl-sweeps")
    assert proc.returncode in (0, 1), proc.stderr
    return (workdir / "ctrl" / "fig4.json").read_bytes()


class TestGridUnitSigkillThenResume:
    @pytest.fixture(scope="class")
    def killed(self, workdir):
        proc = run_cli([*FIG4_ARGS, "--run-id", "g1"], workdir,
                       kill_at=KILL_AT)
        return proc

    def test_kill_was_delivered(self, killed):
        assert killed.returncode == -signal.SIGKILL

    def test_journal_holds_the_settled_grid_unit(self, workdir, killed):
        lines = (workdir / "runs" / "g1" / "journal.jsonl").read_text().splitlines()
        assert len(lines) == KILL_AT + 1  # header + the grid unit's record

    def test_resume_is_byte_identical(self, workdir, killed, control_report):
        # wipe the sweep store: resume must stand on the journal alone
        shutil.rmtree(workdir / "sweeps", ignore_errors=True)
        proc = run_cli(["run", "--resume", "g1", "--json", "res"], workdir)
        assert proc.returncode in (0, 1), proc.stderr
        resumed = (workdir / "res" / "fig4.json").read_bytes()
        assert resumed == control_report
        events = [json.loads(l) for l in
                  (workdir / "runs" / "g1" / "events.jsonl").open()]
        hits = sum(1 for e in events if e["kind"] == "journal_hit")
        assert hits >= KILL_AT
