"""Scheduler knobs: validation and cache-key visibility."""

from dataclasses import asdict, replace

import pytest

from repro.simx import Compute, MachineConfig, ThreadTrace, TraceProgram


def test_unknown_scheduler_rejected():
    with pytest.raises(ValueError, match="scheduler"):
        MachineConfig(n_cores=2, scheduler="lottery")


def test_quantum_meaningless_for_pinned():
    with pytest.raises(ValueError, match="pinned never preempts"):
        MachineConfig(n_cores=2, quantum=100)


def test_quantum_must_be_positive():
    with pytest.raises(ValueError, match="quantum"):
        MachineConfig(n_cores=2, scheduler="round-robin", quantum=0)


def test_migration_cost_must_be_non_negative():
    with pytest.raises(ValueError, match="migration_cost"):
        MachineConfig(n_cores=2, scheduler="round-robin", migration_cost=-1)


def test_migration_cost_meaningless_for_pinned():
    with pytest.raises(ValueError, match="migration_cost"):
        MachineConfig(n_cores=2, migration_cost=10)


def test_unknown_acmp_policy_rejected():
    with pytest.raises(ValueError, match="acmp_policy"):
        MachineConfig(n_cores=2, scheduler="acmp", acmp_policy="biggest-first")


def test_acmp_policy_requires_acmp_scheduler():
    with pytest.raises(ValueError, match="acmp_policy"):
        MachineConfig(
            n_cores=2, scheduler="round-robin",
            acmp_policy="reduction-owns-big",
        )


def test_round_robin_accepts_unset_quantum():
    cfg = MachineConfig(n_cores=2, scheduler="round-robin")
    assert cfg.quantum is None


def test_scheduler_fields_are_content_hash_visible():
    """The work-unit cache keys hash asdict(config): a scheduled run must
    never satisfy a pinned lookup (or vice versa)."""
    from repro.pipeline import sim_program_unit
    from tests.sched.test_scheduler_behavior import chopped_compute

    def builder():
        return TraceProgram("p", [chopped_compute(0, 100)])

    pinned = MachineConfig.baseline(n_cores=2)
    rr = replace(pinned, scheduler="round-robin", quantum=100)
    for field in ("scheduler", "quantum", "migration_cost", "acmp_policy"):
        assert field in asdict(pinned)
    keys = {
        sim_program_unit(builder, {}, cfg).key
        for cfg in (pinned, rr, replace(rr, quantum=200),
                    replace(rr, migration_cost=5))
    }
    assert len(keys) == 4


def test_error_message_points_at_the_scheduler_option():
    from repro.simx import Machine

    prog = TraceProgram("wide", [
        ThreadTrace(t, [Compute(10)]) for t in range(3)
    ])
    with pytest.raises(ValueError) as exc:
        Machine(MachineConfig.baseline(n_cores=2)).run(prog)
    msg = str(exc.value)
    assert "scheduler='round-robin'" in msg and "acmp" in msg
