"""The scheduler experiments compose with the whole pipeline, end to end.

Acceptance for the scheduler layer's experiment specs: a spec whose
units run on non-pinned machines (and therefore on the reference engine)
still behaves exactly like every other experiment under ``repro run``,
journaled ``--run-id`` + ``--resume``, and a 2-worker distributed run —
all byte-identical to the plain serial report.

Every process is a real ``python -m repro`` subprocess isolated via
``REPRO_RUNS_DIR`` / ``REPRO_SWEEP_CACHE_DIR``; the distributed scenario
gets its own sweep cache so units genuinely reach the workers.
"""

import json
import os
import socket
import subprocess
import sys
from pathlib import Path

import pytest

REPO_SRC = Path(__file__).resolve().parents[2] / "src"

#: 3 sim-program units (one per quantum), all on round-robin machines
SPEC_ID = "ext-priority-inversion-reduction"
RUN_ARGS = ["run", SPEC_ID]


def _free_port() -> int:
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


def _env(workdir, sweeps):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_SRC) + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_RUNS_DIR"] = str(workdir / "runs")
    env["REPRO_SWEEP_CACHE_DIR"] = str(workdir / sweeps)
    return env


def _run(args, workdir, sweeps):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, env=_env(workdir, sweeps),
        cwd=workdir, timeout=300,
    )


def _spawn(args, workdir, sweeps):
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *args],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        env=_env(workdir, sweeps), cwd=workdir,
    )


@pytest.fixture(scope="module")
def workdir(tmp_path_factory):
    return tmp_path_factory.mktemp("sched-e2e")


@pytest.fixture(scope="module")
def control_report(workdir):
    proc = _run([*RUN_ARGS, "--json", "ctrl"], workdir, "ctrl-sweeps")
    assert proc.returncode == 0, proc.stderr
    return (workdir / "ctrl" / f"{SPEC_ID}.json").read_bytes()


def test_journaled_run_resumes_byte_identically(workdir, control_report):
    proc = _run([*RUN_ARGS, "--run-id", "sched1"], workdir, "j-sweeps")
    assert proc.returncode == 0, proc.stderr
    journal = workdir / "runs" / "sched1" / "journal.jsonl"
    # header + one record per settled sim-program unit
    assert len(journal.read_text().splitlines()) == 4
    proc = _run(["run", "--resume", "sched1", "--json", "res"],
                workdir, "j-sweeps")
    assert proc.returncode == 0, proc.stderr
    assert (workdir / "res" / f"{SPEC_ID}.json").read_bytes() == control_report


def test_two_workers_reproduce_the_serial_report(workdir, control_report):
    port = _free_port()
    coordinator = _spawn(
        [*RUN_ARGS, "--json", "dist", "--listen", f"127.0.0.1:{port}",
         "--worker-timeout", "120", "--event-log", "events-dist.jsonl"],
        workdir, "dist-sweeps")
    workers = [
        _spawn(["worker", "--connect", f"127.0.0.1:{port}",
                "--name", f"w{i}", "--retry-for", "120"],
               workdir, "dist-sweeps")
        for i in (1, 2)
    ]
    try:
        out, err = coordinator.communicate(timeout=300)
        assert coordinator.returncode == 0, err
    finally:
        for p in (coordinator, *workers):
            if p.poll() is None:
                p.terminate()
        for p in workers:
            try:
                p.communicate(timeout=30)
            except subprocess.TimeoutExpired:
                p.kill()
                p.communicate()
    assert (workdir / "dist" / f"{SPEC_ID}.json").read_bytes() == control_report
    # not vacuous: the scheduled units really executed on remote workers
    events = [json.loads(line) for line in
              (workdir / "events-dist.jsonl").read_text().splitlines()]
    done_by = {e["worker"] for e in events
               if e["kind"] == "unit_done" and "worker" in e}
    assert done_by, "no unit was executed by a remote worker"
    assert done_by <= {"w1", "w2"}
