"""Stress parity: round-robin with pinned-affinity inputs ≡ pinned.

When every thread fits on its own core and the quantum is infinite, the
round-robin scheduler degenerates to the paper's model: the initial FIFO
dispatch places thread *i* on core *i*, last-core affinity returns every
thread to its own core after a block, and with no quantum nothing is ever
preempted.  Under those conditions the schedule — and therefore every
observable output — must be *cycle-identical* to the pinned scheduler.

The corpus is the same seeded generator the engine-identity fuzz uses
(``tests.differential.gen``): thousands of randomized programs mixing
private and shared traffic, locks, barriers and phase markers, on a
rotating ring of machine shapes.  Seeds chunk so a failure names a narrow
replayable range; ``REPRO_SCHED_SEEDS`` widens the sweep in CI.
"""

import os
from dataclasses import replace

import pytest

from repro.simx import Machine
from tests.differential.gen import MIXES, generate_program
from tests.simx.test_fastpath_differential import CONFIGS, assert_identical

_CONFIG_RING = tuple(CONFIGS.items())

#: seeds per mix; 5 mixes x 408 = 2040 programs (the acceptance bar is
#: 2000).  Override with REPRO_SCHED_SEEDS for longer CI runs.
SEEDS_PER_MIX = int(os.environ.get("REPRO_SCHED_SEEDS", "408"))
_CHUNK = 51


def run_both(cfg, program):
    """One program through the pinned and round-robin reference engines."""
    base = replace(cfg, fast_path=False, batch_path=False)
    pinned = Machine(base).run(program)
    rr = Machine(replace(base, scheduler="round-robin")).run(program)
    return pinned, rr


def test_corpus_meets_the_acceptance_bar():
    assert len(MIXES) * SEEDS_PER_MIX >= 2000


@pytest.mark.parametrize("start", range(0, SEEDS_PER_MIX, _CHUNK))
@pytest.mark.parametrize("mix", MIXES)
def test_round_robin_with_affinity_is_cycle_identical(mix, start):
    for seed in range(start, min(start + _CHUNK, SEEDS_PER_MIX)):
        config_name, cfg = _CONFIG_RING[seed % len(_CONFIG_RING)]
        program = generate_program(seed, mix)
        pinned, rr = run_both(cfg, program)
        why = f"mix={mix} seed={seed} config={config_name}"
        assert pinned.engine == "reference", why
        assert rr.engine == "reference", why
        assert_identical(rr, pinned)
        # the degenerate schedule really was pinned: every thread stayed
        # on its own core, nothing was ever preempted or displaced
        assert rr.sched.scheduler == "round-robin", why
        assert rr.sched.preemptions == 0, why
        assert rr.sched.migrations == 0, why
        assert rr.sched.involuntary_wait_cycles == 0, why
