"""Scheduler semantics: oversubscription, quanta, migration, ACMP policies.

These tests run hand-built programs where the expected dispatch behaviour
is small enough to reason about exactly: who preempts whom, what a
migration costs, and which core the merge thread lands on.
"""

from dataclasses import replace

import pytest

from repro.simx import (
    Barrier,
    Compute,
    Load,
    Machine,
    MachineConfig,
    PhaseBegin,
    PhaseEnd,
    Store,
    ThreadTrace,
    TraceProgram,
    build_scheduler,
    supports_batch_path,
    supports_fast_path,
    supports_scheduling,
)
from repro.simx.sched import (
    SERIAL_PHASES,
    AcmpScheduler,
    PinnedScheduler,
    RoundRobinScheduler,
)

LINE = 64


def chopped_compute(tid, total, chunk=50):
    """Compute work split into many ops — each boundary can preempt."""
    return ThreadTrace(tid, [Compute(chunk)] * (total // chunk))


def rr_config(cores, **overrides):
    return replace(
        MachineConfig.baseline(n_cores=cores), scheduler="round-robin",
        **overrides,
    )


class TestOversubscription:
    def test_more_threads_than_cores_completes(self):
        prog = TraceProgram("wide", [chopped_compute(t, 2000) for t in range(8)])
        res = Machine(rr_config(2, quantum=200)).run(prog)
        # 8 threads x 2000 instructions at IPC 2 on 2 cores: 4000 cycles
        assert res.total_cycles >= 4000
        assert res.sched.dispatches >= 8
        assert len(res.thread_cycles) == 8

    def test_pinned_still_rejects_oversubscription(self):
        prog = TraceProgram("wide", [chopped_compute(t, 100) for t in range(3)])
        with pytest.raises(ValueError, match="scheduler='round-robin'"):
            Machine(MachineConfig.baseline(n_cores=2)).run(prog)

    def test_instructions_are_tracked_per_thread(self):
        # two threads multiplexed on one core: per-core counters would
        # conflate them, per-thread accounting must not
        prog = TraceProgram("two", [
            ThreadTrace(0, [Compute(100)] * 4),
            ThreadTrace(1, [Compute(100)] * 2),
        ])
        res = Machine(rr_config(1, quantum=100)).run(prog)
        assert res.instructions == (400, 200)


class TestQuantum:
    def test_quantum_expiry_preempts(self):
        prog = TraceProgram("pair", [
            chopped_compute(0, 4000), chopped_compute(1, 4000),
        ])
        res = Machine(rr_config(1, quantum=200)).run(prog)
        assert res.sched.preemptions > 0

    def test_no_quantum_runs_to_block(self):
        prog = TraceProgram("pair", [
            chopped_compute(0, 4000), chopped_compute(1, 4000),
        ])
        res = Machine(rr_config(1)).run(prog)
        assert res.sched.preemptions == 0
        # strictly serialized: thread 1 starts after thread 0 finishes
        # (4000 instructions each at IPC 2 -> 2000 + 2000 cycles)
        assert res.total_cycles == 4000

    def test_expiry_without_waiters_grants_a_fresh_slice(self):
        # a lone thread on a core never has anyone to yield to
        prog = TraceProgram("solo", [chopped_compute(0, 4000)])
        res = Machine(rr_config(1, quantum=100)).run(prog)
        assert res.sched.preemptions == 0
        assert res.total_cycles == 2000

    def test_smaller_quantum_preempts_more(self):
        prog_f = lambda: TraceProgram("pair", [
            chopped_compute(0, 4000), chopped_compute(1, 4000),
        ])
        fine = Machine(rr_config(1, quantum=100)).run(prog_f())
        coarse = Machine(rr_config(1, quantum=1000)).run(prog_f())
        assert fine.sched.preemptions > coarse.sched.preemptions


class TestMigration:
    def test_migration_cost_is_charged(self):
        # 3 threads on 2 cores, no affinity possible for the odd one out:
        # the same program must take longer when moving costs cycles
        prog_f = lambda: TraceProgram("tri", [
            chopped_compute(t, 2000) for t in range(3)
        ])
        free = Machine(rr_config(2, quantum=200)).run(prog_f())
        taxed = Machine(
            rr_config(2, quantum=200, migration_cost=100)
        ).run(prog_f())
        assert free.sched.migrations > 0
        assert taxed.total_cycles > free.total_cycles

    def test_affinity_avoids_migrations_when_cores_suffice(self):
        prog = TraceProgram("fit", [
            ThreadTrace(0, [Compute(100), Barrier(0), Compute(100)]),
            ThreadTrace(1, [Compute(300), Barrier(0), Compute(100)]),
        ])
        res = Machine(rr_config(2, quantum=150)).run(prog)
        assert res.sched.migrations == 0


def acmp_config(policy, **overrides):
    return replace(
        MachineConfig.asymmetric(rl=4, n_small=3), scheduler="acmp",
        acmp_policy=policy, **overrides,
    )


def merge_program(n_threads=4):
    """Workers compute while the last thread (already in its reduction
    phase at the barrier) merges — the placement decision under test."""
    master = n_threads - 1
    threads = []
    for tid in range(n_threads):
        ops = [PhaseBegin("parallel"), Compute(800), PhaseEnd("parallel")]
        if tid == master:
            ops += [PhaseBegin("reduction"), Barrier(0), Compute(1600),
                    PhaseEnd("reduction")]
        else:
            ops += [Barrier(0), PhaseBegin("parallel"), Compute(1600),
                    PhaseEnd("parallel")]
        ops.append(Barrier(1))
        threads.append(ThreadTrace(tid, ops))
    return TraceProgram("merge", threads)


class TestAcmpPolicies:
    def test_serial_phases_cover_the_merge_vocabulary(self):
        assert {"reduction", "serial", "merge", "init"} <= set(SERIAL_PHASES)

    def test_reduction_owns_big_speeds_up_the_merge(self):
        fc = Machine(acmp_config("first-come")).run(merge_program())
        owned = Machine(acmp_config("reduction-owns-big")).run(merge_program())
        # big core runs the 1600-cycle merge at perf 2.0: 800 busy cycles
        assert owned.phase_cycles("reduction") < fc.phase_cycles("reduction")

    def test_migrate_on_phase_migrates(self):
        fc = Machine(acmp_config("first-come")).run(merge_program())
        mig = Machine(acmp_config("migrate-on-phase")).run(merge_program())
        assert mig.sched.migrations > fc.sched.migrations

    def test_policies_report_their_scheduler(self):
        res = Machine(acmp_config("first-come")).run(merge_program())
        assert res.sched.scheduler == "acmp"
        assert "acmp" in res.summary()


class TestFallbackSeam:
    """Non-pinned dispatch must force the reference engine: the fused
    fast path and the lockstep batch engine both assume one thread per
    core."""

    def test_supports_scheduling_gate(self):
        assert supports_scheduling(MachineConfig.baseline(n_cores=2))
        assert not supports_scheduling(rr_config(2))

    def test_fast_and_batch_paths_refuse_scheduled_configs(self):
        cfg = rr_config(2, fast_path=True, batch_path=True)
        assert not supports_fast_path(cfg)
        assert not supports_batch_path(cfg)

    def test_scheduled_run_lands_on_the_reference_engine(self):
        prog = TraceProgram("p", [chopped_compute(t, 500) for t in range(4)])
        res = Machine(rr_config(2, fast_path=True, quantum=100)).run(prog)
        assert res.engine == "reference"

    def test_pinned_config_still_takes_the_fast_path(self):
        prog = TraceProgram("p", [
            ThreadTrace(0, [Compute(10), Store(0x100), Compute(10)]),
        ])
        res = Machine(MachineConfig.baseline(n_cores=1)).run(prog)
        assert res.engine == "fast"


class TestFactory:
    def test_build_scheduler_selects_by_config(self):
        assert isinstance(
            build_scheduler(MachineConfig.baseline(n_cores=2)),
            PinnedScheduler,
        )
        rr = build_scheduler(rr_config(2))
        assert isinstance(rr, RoundRobinScheduler)
        assert not isinstance(rr, AcmpScheduler)
        assert isinstance(
            build_scheduler(acmp_config("first-come")), AcmpScheduler
        )

    def test_stats_name_follows_the_policy(self):
        assert build_scheduler(rr_config(2)).stats.scheduler == "round-robin"


class TestResultSurface:
    def test_summary_renders_scheduler_table_when_scheduled(self):
        prog = TraceProgram("p", [chopped_compute(t, 500) for t in range(4)])
        out = Machine(rr_config(2, quantum=100)).run(prog).summary()
        assert "round-robin" in out and "preemptions" in out

    def test_pinned_summary_omits_the_scheduler_table(self):
        prog = TraceProgram("p", [ThreadTrace(0, [Compute(100)])])
        out = Machine(MachineConfig.baseline(n_cores=1)).run(prog).summary()
        assert "preemptions" not in out
