"""Synchronisation under preemption: liveness, deadlock, watchdog.

The reference machine raises :class:`DeadlockError` when no thread can
run.  Under a time-multiplexing scheduler that check is subtler: a
preempted lock-holder is *queued*, not blocked, and must never be
mistaken for a deadlock; a genuine cyclic wait still must be."""

from dataclasses import replace

import pytest

from repro.simx import (
    Barrier,
    Compute,
    Lock,
    Machine,
    MachineConfig,
    ThreadTrace,
    TraceProgram,
    Unlock,
)
from repro.simx.machine import DeadlockError


def rr_config(cores, **overrides):
    return replace(
        MachineConfig.baseline(n_cores=cores), scheduler="round-robin",
        **overrides,
    )


def test_preempted_lock_holder_is_not_a_deadlock():
    # one core, tiny quantum: the holder is guaranteed to lose the core
    # mid-critical-section while another thread is blocked on the lock
    holder = ThreadTrace(0, [Lock(0), *[Compute(50)] * 40, Unlock(0)])
    waiter = ThreadTrace(1, [Compute(10), Lock(0), Compute(50), Unlock(0)])
    spin = ThreadTrace(2, [Compute(50)] * 40)
    res = Machine(rr_config(1, quantum=100)).run(
        TraceProgram("pi", [holder, waiter, spin])
    )
    assert res.sched.preemptions > 0  # the hazard actually occurred
    assert res.total_cycles > 0  # and the run still completed


def test_genuine_deadlock_is_still_detected():
    # classic ABBA on two cores: both threads block, nothing is queued
    t0 = ThreadTrace(0, [Lock(0), Compute(100), Lock(1)])
    t1 = ThreadTrace(1, [Lock(1), Compute(100), Lock(0)])
    with pytest.raises(DeadlockError, match="no runnable threads"):
        Machine(rr_config(2)).run(TraceProgram("abba", [t0, t1]))


def test_genuine_deadlock_detected_while_oversubscribed():
    # the ABBA pair shares one core with a finite spinner: after the
    # spinner drains, the queue is empty and the cycle must be reported
    t0 = ThreadTrace(0, [Lock(0), Compute(100), Lock(1)])
    t1 = ThreadTrace(1, [Lock(1), Compute(100), Lock(0)])
    spin = ThreadTrace(2, [Compute(50)] * 10)
    with pytest.raises(DeadlockError):
        Machine(rr_config(2, quantum=50)).run(
            TraceProgram("abba+spin", [t0, t1, spin])
        )


def test_barrier_mismatch_deadlock_under_round_robin():
    t0 = ThreadTrace(0, [Compute(10), Barrier(0)])
    t1 = ThreadTrace(1, [Compute(10)])  # never arrives
    with pytest.raises(DeadlockError):
        Machine(rr_config(2)).run(TraceProgram("lonely", [t0, t1]))


def test_max_cycles_watchdog_fires_under_round_robin():
    prog = TraceProgram("long", [
        ThreadTrace(t, [Compute(100)] * 100) for t in range(4)
    ])
    with pytest.raises(RuntimeError, match="max_cycles"):
        Machine(rr_config(2, quantum=200)).run(prog, max_cycles=1000)


def test_max_cycles_not_triggered_by_queue_wait_alone():
    # a thread can sit queued long past max_cycles; only *executed*
    # cycles count, so a short program under heavy multiplexing passes
    prog = TraceProgram("short", [
        ThreadTrace(t, [Compute(50)] * 4) for t in range(4)
    ])
    res = Machine(rr_config(1, quantum=50)).run(prog, max_cycles=900)
    assert res.total_cycles <= 900
