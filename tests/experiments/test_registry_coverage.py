"""Registry coverage: every experiment that performs simulator or
hardware-model work must *declare* that work as pipeline units.

The enforcement is mechanical rather than a hand-maintained list: warm
every declared unit of every declaring experiment, then forbid the
inline execution paths (``Machine.run`` and the hardware executors) and
assemble all registered experiments.  A driver that sneaks simulator or
hardware work past its declare stage — or a new experiment added without
one — trips the guard, naming the experiment.
"""

import pytest

from repro.experiments import simsweep
from repro.experiments.registry import (
    SPECS,
    SWEEP_DECLARATIONS,
    declare_units,
    filter_options,
    run_experiment,
)
from repro.pipeline import resolve_units
from repro.simx import Machine

#: one option set for the whole registry, as ``runall`` would pass it
#: (fig2's claims index the 16-core point; ext-critical sweeps rl to 128)
OPTIONS = dict(
    scale=0.03,
    thread_counts=(1, 2, 16),
    hw_thread_counts=(1, 2),
    n=128,
    max_cores=64,
    budget=4,
    n_items=2000,
    n_bins=256,
    updates=50,
    updates_per_thread=200,
    batch=32,
    merge_elements=64,
    rl=4,
    n_threads=2,
)


class InlineSimulationForbidden(AssertionError):
    """Raised when assembly reaches an execution path it should have
    declared (and therefore found warm in a cache)."""


def _forbid(*args, **kwargs):
    raise InlineSimulationForbidden(
        "assemble phase invoked the simulator/hardware inline; "
        "this work must be declared as pipeline units"
    )


@pytest.fixture(scope="module")
def warmed(tmp_path_factory):
    """Resolve every declared unit of every declaring experiment into a
    fresh store, exactly as ``runall``'s precompute pass would."""
    root = tmp_path_factory.mktemp("coverage-store")
    restore = simsweep.get_disk_store()
    simsweep.set_disk_store(root)
    simsweep.clear_cache(memory_only=True)
    try:
        for eid in sorted(SWEEP_DECLARATIONS):
            units = declare_units(eid, **OPTIONS)
            assert units, f"{eid} is registered as declaring but emitted no units"
            resolve_units(units)
        yield
    finally:
        simsweep.set_disk_store(restore)
        simsweep.clear_cache(memory_only=True)


@pytest.fixture
def no_inline_simulation(warmed, monkeypatch):
    import repro.hardware.executor as hwexec

    monkeypatch.setattr(Machine, "run", _forbid)
    monkeypatch.setattr(hwexec, "model_breakdown", _forbid)
    monkeypatch.setattr(hwexec, "process_breakdown", _forbid)


@pytest.mark.parametrize("eid", sorted(SPECS))
def test_assembles_on_warm_caches_alone(eid, no_inline_simulation):
    """With caches warm and inline execution forbidden, every registered
    experiment must still assemble its full report."""
    report = run_experiment(eid, **filter_options(eid, OPTIONS))
    assert report.experiment_id == SPECS[eid].experiment_id
    assert report.render()


def test_every_staged_spec_is_collected_as_declaring():
    staged = {eid for eid, spec in SPECS.items() if spec.declares_units}
    assert staged == set(SWEEP_DECLARATIONS)


def test_guard_trips_on_cold_caches(warmed, monkeypatch, tmp_path):
    """Sanity-check the instrument itself: with an empty store the guard
    must fire, proving the forbidden paths are really intercepted."""
    monkeypatch.setattr(Machine, "run", _forbid)
    restore = simsweep.get_disk_store()
    try:
        simsweep.set_disk_store(tmp_path / "cold")
        simsweep.clear_cache(memory_only=True)
        with pytest.raises(InlineSimulationForbidden):
            run_experiment("table2", **filter_options("table2", OPTIONS))
    finally:
        simsweep.set_disk_store(restore)
        simsweep.clear_cache(memory_only=True)
