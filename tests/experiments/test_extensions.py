"""Integration tests for the extension experiments."""

import pytest

from repro.experiments.registry import EXPERIMENTS, run_experiment


class TestRegistry:
    def test_extensions_registered(self):
        for eid in ("ext-critical", "ext-energy", "ext-scaled",
                    "ext-contention", "ext-acmp-sim"):
            assert eid in EXPERIMENTS


class TestExtensionDrivers:
    def test_critical(self):
        report = run_experiment("ext-critical")
        assert report.all_match, report.render()

    def test_energy(self):
        report = run_experiment("ext-energy")
        assert report.all_match, report.render()

    def test_scaled(self):
        report = run_experiment("ext-scaled")
        assert report.all_match, report.render()

    def test_contention(self):
        report = run_experiment("ext-contention")
        assert report.all_match, report.render()

    def test_acmp_sim(self):
        report = run_experiment("ext-acmp-sim", scale=0.05)
        assert report.all_match, report.render()

    def test_crossover_sim(self):
        report = run_experiment("ext-crossover-sim", n_items=8000, n_bins=4096)
        assert report.all_match, report.render()

    def test_falsesharing(self):
        report = run_experiment("ext-falsesharing", n_threads=4, updates=200)
        assert report.all_match, report.render()

    def test_locked_reduction(self):
        report = run_experiment(
            "ext-locked-reduction", n_threads=4, updates_per_thread=800
        )
        assert report.all_match, report.render()

    def test_mix(self):
        report = run_experiment("ext-mix")
        assert report.all_match, report.render()


class TestExtensionContent:
    def test_scaled_report_exposes_saturation(self):
        report = run_experiment("ext-scaled")
        lin = report.raw["linear"]
        gus = report.raw["gustafson"]
        assert lin[-1] < gus[-1] / 10  # merging kills weak scaling

    def test_energy_rows_cover_three_objectives(self):
        report = run_experiment("ext-energy")
        for perf_d, edp_d, ppw_d in report.raw["rows"].values():
            assert perf_d.speedup >= edp_d.speedup - 1e-9
            assert ppw_d.perf_per_watt >= edp_d.perf_per_watt - 1e-9
