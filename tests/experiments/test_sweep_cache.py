"""Property tests for the two-tier simulation sweep cache.

Covers the on-disk :class:`~repro.experiments.store.SweepStore` and its
integration in :mod:`repro.experiments.simsweep`: round-trips restore an
equal ``PhaseBreakdown``, any configuration change changes the key (no
stale hits), and corrupt or truncated cache files behave as misses, never
as crashes.
"""

import json
from dataclasses import asdict, replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments import simsweep
from repro.experiments.store import SweepStore
from repro.simx import MachineConfig

payloads = st.dictionaries(
    st.text(min_size=1, max_size=12),
    st.one_of(
        st.integers(min_value=-(2**40), max_value=2**40),
        st.floats(allow_nan=False, allow_infinity=False),
        st.text(max_size=20),
        st.booleans(),
        st.none(),
    ),
    max_size=6,
)


@pytest.fixture
def store(tmp_path):
    return SweepStore(tmp_path / "sweeps")


@pytest.fixture
def isolated_simsweep(tmp_path):
    """Point simsweep at a fresh disk store; restore the suite's after."""
    saved = simsweep._disk_store
    simsweep.set_disk_store(tmp_path / "sweeps")
    simsweep.clear_cache(memory_only=True)
    yield simsweep
    simsweep.clear_cache(memory_only=True)
    simsweep._disk_store = saved


class TestSweepStoreRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(payload=payloads)
    def test_round_trip_returns_equal_payload(self, tmp_path_factory, payload):
        store = SweepStore(tmp_path_factory.mktemp("rt"))
        key = store.key_for({"case": "round-trip"})
        store.put(key, payload)
        assert store.get(key) == payload

    def test_missing_key_is_none(self, store):
        assert store.get(store.key_for({"never": "stored"})) is None

    def test_len_and_clear(self, store):
        for i in range(3):
            store.put(store.key_for({"i": i}), {"v": i})
        assert len(store) == 3
        store.clear()
        assert len(store) == 0
        assert store.get(store.key_for({"i": 0})) is None

    def test_put_overwrites_atomically(self, store):
        key = store.key_for({"x": 1})
        store.put(key, {"v": 1})
        store.put(key, {"v": 2})
        assert store.get(key) == {"v": 2}
        assert len(store) == 1

    def test_unserialisable_payload_never_raises(self, store):
        """The "a failed write never raises" contract must cover
        ``json.dumps`` failures, not just OS errors (regression: a
        TypeError used to escape ``put``)."""
        key = store.key_for({"x": "bad"})
        assert store.put(key, {"v": object()}) is None
        assert store.put(key, {"v": {1, 2}}) is None  # sets aren't JSON
        assert store.get(key) is None
        # no half-written temp files left behind
        assert not list(store.root.glob("*.tmp"))
        # the store still works for good payloads afterwards
        assert store.put(key, {"v": 1}) is not None
        assert store.get(key) == {"v": 1}


class TestKeySensitivity:
    def test_key_is_deterministic(self, store):
        desc = {"workload": {"name": "kmeans", "size": 500}, "threads": 4}
        assert store.key_for(desc) == store.key_for(dict(desc))

    def test_key_ignores_dict_order(self, store):
        a = store.key_for({"a": 1, "b": 2})
        b = store.key_for({"b": 2, "a": 1})
        assert a == b

    @settings(max_examples=40, deadline=None)
    @given(
        threads=st.integers(min_value=1, max_value=64),
        other=st.integers(min_value=1, max_value=64),
    )
    def test_changed_field_changes_key(self, threads, other):
        base = {"workload": "kmeans", "threads": threads}
        changed = {"workload": "kmeans", "threads": other}
        assert (SweepStore.key_for(base) == SweepStore.key_for(changed)) == (
            threads == other
        )

    def test_machine_config_changes_key(self, store):
        cfg = MachineConfig.baseline(n_cores=4)
        variants = [
            replace(cfg, coherence_protocol="msi"),
            replace(cfg, interconnect="mesh"),
            replace(cfg, dram="banked"),
            replace(cfg, fast_path=False),
            MachineConfig.baseline(n_cores=8),
        ]
        keys = {store.key_for({"machine": asdict(c)}) for c in [cfg, *variants]}
        assert len(keys) == len(variants) + 1  # all distinct

    def test_sim_version_changes_key(self, store):
        a = store.key_for({"sim_version": 1, "w": "kmeans"})
        b = store.key_for({"sim_version": 2, "w": "kmeans"})
        assert a != b


class TestCorruptEntriesAreMisses:
    def test_truncated_file_is_a_miss(self, store):
        key = store.key_for({"x": 1})
        store.put(key, {"v": 1})
        path = store.path_for(key)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        assert store.get(key) is None

    def test_garbage_bytes_are_a_miss(self, store):
        key = store.key_for({"x": 2})
        store.path_for(key).parent.mkdir(parents=True, exist_ok=True)
        store.path_for(key).write_bytes(b"\x00\xff not json \xfe")
        assert store.get(key) is None

    def test_wrong_schema_version_is_a_miss(self, store):
        key = store.key_for({"x": 3})
        store.put(key, {"v": 3})
        raw = json.loads(store.path_for(key).read_text())
        raw["schema"] = 999
        store.path_for(key).write_text(json.dumps(raw))
        assert store.get(key) is None

    def test_key_mismatch_is_a_miss(self, store):
        # an entry copied under the wrong filename must not satisfy a lookup
        key_a, key_b = store.key_for({"x": "a"}), store.key_for({"x": "b"})
        store.put(key_a, {"v": "a"})
        store.path_for(key_b).parent.mkdir(parents=True, exist_ok=True)
        store.path_for(key_b).write_text(store.path_for(key_a).read_text())
        assert store.get(key_b) is None

    def test_unreadable_directory_is_empty_not_crash(self, tmp_path):
        store = SweepStore(tmp_path / "never-created")
        assert len(store) == 0
        assert store.get(store.key_for({"x": 1})) is None
        store.clear()  # no-op, no crash


class TestSimsweepDiskTier:
    def _workload(self):
        return simsweep.default_workloads(0.03)["kmeans"]

    def test_disk_hit_restores_equal_breakdown(self, isolated_simsweep):
        wl = self._workload()
        a = simsweep.simulate_breakdowns(wl, (1,), n_cores=2, mem_scale=8)
        simsweep.clear_cache(memory_only=True)  # drop memo, keep disk
        b = simsweep.simulate_breakdowns(wl, (1,), n_cores=2, mem_scale=8)
        assert simsweep.cache_info()["disk_hits"] == 1
        assert a[1] is not b[1]
        assert asdict(a[1]) == asdict(b[1])

    def test_corrupt_disk_entry_falls_back_to_simulation(self, isolated_simsweep, tmp_path):
        wl = self._workload()
        a = simsweep.simulate_breakdowns(wl, (1,), n_cores=2, mem_scale=8)
        store = simsweep._get_disk()
        for f in store.root.glob("*.json"):
            f.write_text("{ truncated")
        simsweep.clear_cache(memory_only=True)
        b = simsweep.simulate_breakdowns(wl, (1,), n_cores=2, mem_scale=8)
        assert simsweep.cache_info()["misses"] == 1  # re-simulated
        assert asdict(a[1]) == asdict(b[1])

    def test_clear_cache_clears_disk_tier(self, isolated_simsweep):
        wl = self._workload()
        simsweep.simulate_breakdowns(wl, (1,), n_cores=2, mem_scale=8)
        assert simsweep.cache_info()["disk_entries"] == 1
        simsweep.clear_cache()
        assert simsweep.cache_info()["disk_entries"] == 0
        simsweep.simulate_breakdowns(wl, (1,), n_cores=2, mem_scale=8)
        assert simsweep.cache_info()["misses"] == 1  # nothing survived

    def test_clear_cache_memory_only_keeps_disk(self, isolated_simsweep):
        wl = self._workload()
        simsweep.simulate_breakdowns(wl, (1,), n_cores=2, mem_scale=8)
        simsweep.clear_cache(memory_only=True)
        assert simsweep.cache_info()["memory_entries"] == 0
        assert simsweep.cache_info()["disk_entries"] == 1

    def test_disabled_disk_tier_still_simulates(self, isolated_simsweep):
        simsweep.set_disk_store(None)
        wl = self._workload()
        out = simsweep.simulate_breakdowns(wl, (1,), n_cores=2, mem_scale=8)
        assert out[1].total > 0
        assert simsweep.cache_info()["disk_entries"] == 0

    def test_machine_config_is_part_of_the_memo_key(self, isolated_simsweep):
        wl = self._workload()
        a = simsweep.simulate_breakdowns(
            wl, (1,), n_cores=2, mem_scale=8,
            config=MachineConfig.baseline(n_cores=2),
        )
        b = simsweep.simulate_breakdowns(
            wl, (1,), n_cores=2, mem_scale=8,
            config=replace(MachineConfig.baseline(n_cores=2), coherence_protocol="msi"),
        )
        assert simsweep.cache_info()["misses"] == 2  # no cross-config hit
        assert a[1] is not b[1]
