"""Unit tests for report diffing."""

import pytest

from repro.experiments import run_experiment
from repro.experiments.diffing import diff_reports
from repro.experiments.report import ExperimentReport, PaperComparison
from repro.util.tables import TextTable


def report(experiment_id="demo", measured=1.0, holds=True, table_rows=2):
    r = ExperimentReport(experiment_id, "Demo")
    r.add_comparison(PaperComparison(
        "claim A", paper_value=1.0, measured_value=measured, tolerance=0.1,
    ))
    r.add_comparison(PaperComparison(
        "claim B", "x", "y", qualitative=True, claim_holds=holds,
    ))
    t = TextTable(title="tbl", columns=["a"])
    for i in range(table_rows):
        t.add_row([i])
    r.add_table(t)
    return r


class TestDiff:
    def test_identical_reports_clean(self):
        d = diff_reports(report(), report())
        assert d.is_clean
        assert "no differences" in d.render()

    def test_flipped_claim_detected(self):
        d = diff_reports(report(holds=True), report(holds=False))
        assert not d.is_clean
        assert len(d.flipped_claims) == 1
        assert "FLIPPED" in d.render()

    def test_value_change_without_flip(self):
        d = diff_reports(report(measured=1.0), report(measured=1.05))
        assert d.changed_values
        assert not d.flipped_claims

    def test_value_change_that_flips(self):
        d = diff_reports(report(measured=1.0), report(measured=2.0))
        assert d.flipped_claims and not d.changed_values

    def test_added_and_removed_claims(self):
        old = report()
        new = report()
        new.comparisons.pop()  # drop claim B
        new.add_comparison(PaperComparison("claim C", 1.0, 1.0))
        d = diff_reports(old, new)
        assert "claim B" in d.removed_claims
        assert "claim C" in d.added_claims

    def test_table_shape_change(self):
        d = diff_reports(report(table_rows=2), report(table_rows=3))
        assert d.table_shape_changes

    def test_mismatched_experiments_rejected(self):
        with pytest.raises(ValueError):
            diff_reports(report("a"), report("b"))

    def test_real_report_self_diff_clean(self):
        a = run_experiment("fig7")
        b = run_experiment("fig7")
        assert diff_reports(a, b).is_clean

    def test_roundtrip_through_json_still_clean(self, tmp_path):
        from repro.experiments.store import load_report, save_report

        a = run_experiment("fig7")
        p = save_report(a, tmp_path / "r.json")
        assert diff_reports(a, load_report(p)).is_clean
