"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_with_options(self):
        args = build_parser().parse_args(["run", "fig4", "--csv", "--scale", "0.1"])
        assert args.experiment == "fig4"
        assert args.csv and args.scale == 0.1

    def test_predict_requires_params(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["predict"])

    def test_run_experiment_optional_with_resume(self):
        args = build_parser().parse_args(["run", "--resume", "nightly"])
        assert args.experiment is None and args.resume == "nightly"

    def test_run_accepts_run_id_and_threads(self):
        args = build_parser().parse_args(
            ["run", "table2", "--run-id", "r1", "--threads", "1,2,4"])
        assert args.run_id == "r1" and args.threads == "1,2,4"


class TestCommands:
    def test_list_prints_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out and "table2" in out

    def test_list_prints_descriptions(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out  # description, not just the bare id

    def test_list_json_includes_accepted_options(self, capsys):
        import json

        assert main(["list", "--json"]) == 0
        entries = json.loads(capsys.readouterr().out)
        by_id = {e["id"]: e for e in entries}
        for eid, knob in (("ext-oversubscription-sweep", "quantum"),
                          ("ext-acmp-merge-policy", "quantum"),
                          ("ext-priority-inversion-reduction", "quanta")):
            assert by_id[eid]["declares_units"], eid
            assert knob in by_id[eid]["accepted_options"], eid
        # canonical key mirrors the legacy one for every experiment
        for entry in entries:
            assert entry["accepted_options"] == entry["options"]

    def test_run_parallel_flag(self, capsys):
        assert main(["run", "fig4", "--parallel", "2"]) == 0
        assert "fig4" in capsys.readouterr().out

    def test_runall_smoke(self, capsys, monkeypatch):
        import repro.cli as cli
        from repro.experiments.registry import EXPERIMENTS

        monkeypatch.setattr(cli, "EXPERIMENTS", {"fig7": EXPERIMENTS["fig7"]})
        assert main(["runall", "--parallel", "2"]) == 0
        out = capsys.readouterr().out
        assert "fig7" in out and "engine:" in out

    def test_run_analytic_experiment(self, capsys):
        assert main(["run", "fig7"]) == 0
        out = capsys.readouterr().out
        assert "51.6" in out

    def test_run_csv_mode(self, capsys):
        assert main(["run", "table3", "--csv"]) == 0
        out = capsys.readouterr().out
        assert "parallelism,constant,reduction" in out

    def test_run_unknown_experiment(self):
        with pytest.raises(ValueError):
            main(["run", "fig99"])

    def test_run_without_experiment_or_manifest_is_an_error(
            self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path))
        assert main(["run"]) == 2
        assert "experiment id is required" in capsys.readouterr().err

    def test_run_with_run_id_journals_and_resumes(
            self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path))
        assert main(["run", "fig7", "--run-id", "cli-r1"]) == 0
        run_dir = tmp_path / "cli-r1"
        assert (run_dir / "manifest.json").exists()
        assert (run_dir / "events.jsonl").exists()
        capsys.readouterr()
        # resume needs no experiment argument: the manifest supplies it
        assert main(["run", "--resume", "cli-r1"]) == 0
        assert "fig7" in capsys.readouterr().out

    def test_predict(self, capsys):
        rc = main([
            "predict", "--f", "0.99", "--fcon", "0.6", "--fored", "0.8",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "best symmetric" in out
        assert "36.2" in out  # the paper's 4(d) peak
        assert "43.3" in out  # the paper's 5(h) peak

    def test_predict_with_target(self, capsys):
        rc = main([
            "predict", "--f", "0.999", "--fcon", "0.6", "--fored", "0.1",
            "--target", "40", "--cores", "64",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fored <=" in out

    def test_predict_with_unreachable_target(self, capsys):
        rc = main([
            "predict", "--f", "0.99", "--fcon", "0.6", "--fored", "0.1",
            "--target", "500", "--cores", "64",
        ])
        assert rc == 0
        assert "unreachable" in capsys.readouterr().out

    def test_predict_with_log_growth(self, capsys):
        rc = main([
            "predict", "--f", "0.999", "--fcon", "0.6", "--fored", "0.1",
            "--growth", "log",
        ])
        assert rc == 0
        assert "ACMP advantage" in capsys.readouterr().out

    def test_characterize(self, capsys):
        rc = main([
            "characterize", "kmeans", "--scale", "0.03", "--max-threads", "4",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fored" in out and "optimal 256-BCE" in out

    def test_characterize_with_tree_reduction(self, capsys):
        rc = main([
            "characterize", "kmeans", "--scale", "0.03", "--max-threads", "4",
            "--reduction", "tree",
        ])
        assert rc == 0
        assert "fored" in capsys.readouterr().out

    def test_characterize_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["characterize", "apriori"])

    def test_diff_identical_reports(self, capsys, tmp_path):
        assert main(["run", "fig1", "--json", str(tmp_path)]) == 0
        capsys.readouterr()
        rc = main([
            "diff", str(tmp_path / "fig1.json"), str(tmp_path / "fig1.json"),
        ])
        assert rc == 0
        assert "no differences" in capsys.readouterr().out

    def test_simulate_trace_file(self, capsys, tmp_path):
        from repro.simx import Compute, ThreadTrace, TraceProgram
        from repro.simx.traceio import dump_program

        prog = TraceProgram("tiny", [ThreadTrace(0, [Compute(1000)])])
        path = dump_program(prog, tmp_path / "tiny.jsonl")
        rc = main(["simulate", str(path), "--cores", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "tiny" in out and "coherence" in out

    def test_simulate_oversubscribed_with_scheduler(self, capsys, tmp_path):
        from repro.simx import Compute, ThreadTrace, TraceProgram
        from repro.simx.traceio import dump_program

        prog = TraceProgram(
            "wide", [ThreadTrace(t, [Compute(500)] * 4) for t in range(4)]
        )
        path = dump_program(prog, tmp_path / "wide.jsonl")
        rc = main([
            "simulate", str(path), "--cores", "2",
            "--scheduler", "round-robin", "--quantum", "600",
            "--migration-cost", "10",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "round-robin" in out and "preemptions" in out


class TestVersion:
    def test_version_flag_prints_and_exits(self, capsys):
        from repro.cli import version_string

        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert version_string() in capsys.readouterr().out

    def test_version_string_matches_package_metadata(self):
        import repro
        from repro.cli import version_string

        v = version_string()
        assert v  # never empty
        # installed dist metadata if available, else the module fallback —
        # either way it must agree with repro.__version__ (pyproject pins both)
        assert v == repro.__version__


class TestServeParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.host == "127.0.0.1" and args.port == 8177
        assert args.cache_size == 4096 and not args.no_metrics

    def test_serve_options(self):
        args = build_parser().parse_args(
            ["serve", "--host", "0.0.0.0", "--port", "9000",
             "--cache-size", "16", "--no-metrics"])
        assert args.host == "0.0.0.0" and args.port == 9000
        assert args.cache_size == 16 and args.no_metrics
