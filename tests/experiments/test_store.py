"""Unit tests for JSON report persistence."""

import pytest

from repro.experiments import run_experiment
from repro.experiments.store import (
    load_report,
    report_from_dict,
    report_to_dict,
    save_report,
)


@pytest.fixture(scope="module")
def fig7_report():
    return run_experiment("fig7")


class TestRoundtrip:
    def test_dict_roundtrip_preserves_structure(self, fig7_report):
        data = report_to_dict(fig7_report)
        rebuilt = report_from_dict(data)
        assert rebuilt.experiment_id == fig7_report.experiment_id
        assert len(rebuilt.tables) == len(fig7_report.tables)
        assert len(rebuilt.comparisons) == len(fig7_report.comparisons)
        assert rebuilt.all_match == fig7_report.all_match

    def test_comparison_outcomes_preserved(self, fig7_report):
        rebuilt = report_from_dict(report_to_dict(fig7_report))
        for a, b in zip(fig7_report.comparisons, rebuilt.comparisons):
            assert a.matches() == b.matches()

    def test_file_roundtrip(self, fig7_report, tmp_path):
        p = save_report(fig7_report, tmp_path / "sub" / "fig7.json")
        assert p.exists()
        rebuilt = load_report(p)
        assert rebuilt.render() == fig7_report.render()

    def test_schema_guard(self):
        with pytest.raises(ValueError, match="schema"):
            report_from_dict({"schema": 999})

    def test_json_is_diffable(self, fig7_report, tmp_path):
        a = save_report(fig7_report, tmp_path / "a.json").read_text()
        b = save_report(run_experiment("fig7"), tmp_path / "b.json").read_text()
        assert a == b  # deterministic output
