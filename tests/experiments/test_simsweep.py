"""Unit tests for the shared simulator-sweep machinery."""

import pytest

from repro.experiments import simsweep


class TestDefaultWorkloads:
    def test_contains_the_three_paper_workloads(self):
        wls = simsweep.default_workloads(0.05)
        assert set(wls) == {"kmeans", "fuzzy", "hop"}

    def test_scale_controls_dataset_size(self):
        small = simsweep.default_workloads(0.05)["kmeans"].dataset.n_points
        big = simsweep.default_workloads(0.5)["kmeans"].dataset.n_points
        assert big > small

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            simsweep.default_workloads(0.0)
        with pytest.raises(ValueError):
            simsweep.default_workloads(1.5)


class TestMemoisation:
    def test_cache_hit_returns_same_object(self):
        simsweep.clear_cache()
        wl = simsweep.default_workloads(0.03)["kmeans"]
        a = simsweep.simulate_breakdowns(wl, (1, 2), n_cores=2, mem_scale=8)
        b = simsweep.simulate_breakdowns(wl, (1, 2), n_cores=2, mem_scale=8)
        assert a[1] is b[1]  # memoised, not recomputed

    def test_different_mem_scale_different_entry(self):
        simsweep.clear_cache()
        wl = simsweep.default_workloads(0.03)["kmeans"]
        a = simsweep.simulate_breakdowns(wl, (1,), n_cores=2, mem_scale=8)
        b = simsweep.simulate_breakdowns(wl, (1,), n_cores=2, mem_scale=4)
        assert a[1] is not b[1]

    def test_clear_cache(self):
        simsweep.clear_cache()
        wl = simsweep.default_workloads(0.03)["kmeans"]
        a = simsweep.simulate_breakdowns(wl, (1,), n_cores=2, mem_scale=8)
        simsweep.clear_cache()
        b = simsweep.simulate_breakdowns(wl, (1,), n_cores=2, mem_scale=8)
        assert a[1] is not b[1]
        # but deterministic: equal values
        assert a[1].total == b[1].total


class TestSummaryRenderer:
    def test_simulation_summary_text(self):
        from repro.simx import Compute, Machine, MachineConfig, ThreadTrace, TraceProgram
        from repro.simx.trace import PhaseBegin, PhaseEnd

        prog = TraceProgram("demo", [ThreadTrace(0, [
            PhaseBegin("work"), Compute(100), PhaseEnd("work"),
        ])])
        res = Machine(MachineConfig.baseline(n_cores=1)).run(prog)
        text = res.summary()
        assert "demo" in text
        assert "work" in text
        assert "coherence" in text
