"""Registry option validation, descriptions, and sweep declarations."""

import pytest

from repro.experiments.registry import (
    EXPERIMENTS,
    declare_units,
    describe_experiment,
    run_experiment,
    validate_options,
)


class TestOptionValidation:
    def test_unknown_option_is_named_in_the_error(self):
        with pytest.raises(TypeError, match=r"fig4.*'bogus'"):
            run_experiment("fig4", bogus=1)

    def test_error_lists_accepted_options(self):
        with pytest.raises(TypeError, match=r"accepted: .*\bn\b"):
            run_experiment("fig4", scale=0.1)

    def test_known_option_is_forwarded(self):
        report = run_experiment("fig4", n=256)
        assert report.experiment_id == "fig4"

    def test_validate_options_accepts_known(self):
        validate_options("table2", {"scale": 0.1, "thread_counts": (1, 2)})

    def test_validate_options_unknown_experiment(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            validate_options("nope", {})


class TestDescriptions:
    def test_every_experiment_has_a_description(self):
        for eid in EXPERIMENTS:
            desc = describe_experiment(eid)
            assert desc, f"{eid} has no description"
            assert "\n" not in desc

    def test_description_is_the_docstring_headline(self):
        assert "Table II" in describe_experiment("table2")


class TestDeclarations:
    def test_experiments_without_sweeps_declare_nothing(self):
        assert declare_units("table3") == []

    def test_model_grid_experiments_declare_one_grid_unit(self):
        for eid in ("fig4", "fig5", "conclusions"):
            units = declare_units(eid)
            assert len(units) == 1, eid
            assert units[0].kind == "model-eval-grid"
            assert not units[0].cacheable

    def test_declared_units_match_driver_defaults(self):
        units = declare_units("table2", scale=0.03, thread_counts=(1, 2))
        assert len(units) == 6  # 3 workloads x 2 thread counts
        assert len({u.key for u in units}) == 6
        assert all(u.kind == "sweep-point" for u in units)

    def test_declarers_drop_options_they_do_not_understand(self):
        # fig2 declares two stages: the sim sweep (3 workloads x 2 thread
        # counts) plus hardware-model runs at the default hw_thread_counts
        # (3 workloads x 4); `thread_counts` means nothing to the hardware
        # stage and is dropped there rather than rejected.
        units = declare_units(
            "fig2", scale=0.03, thread_counts=(1, 2), hardware_backend="model"
        )
        assert len(units) == 18
        assert sum(u.kind == "sweep-point" for u in units) == 6
        assert sum(u.kind == "hardware-model" for u in units) == 12

    def test_hardware_stage_follows_its_own_thread_counts(self):
        units = declare_units(
            "fig2", scale=0.03, thread_counts=(1, 2), hw_thread_counts=(1, 2)
        )
        assert sum(u.kind == "hardware-model" for u in units) == 6

    def test_scheduler_specs_are_registered_and_declare_units(self):
        # one unit per sweep point, all simulator programs, distinct keys
        for eid, expect in (("ext-oversubscription-sweep", 4),
                            ("ext-acmp-merge-policy", 3),
                            ("ext-priority-inversion-reduction", 3)):
            assert eid in EXPERIMENTS, eid
            units = declare_units(eid)
            assert len(units) == expect, eid
            assert all(u.kind == "sim-program" for u in units), eid
            assert len({u.key for u in units}) == expect, eid

    def test_process_backend_units_are_not_cacheable(self):
        units = declare_units(
            "fig2", scale=0.03, thread_counts=(1, 2),
            hw_thread_counts=(1, 2), hardware_backend="process",
        )
        hw = [u for u in units if u.kind == "hardware-process"]
        assert len(hw) == 6
        assert all(not u.cacheable for u in hw)
        assert all(u.cacheable for u in units if u.kind == "sweep-point")
