"""Report JSON round-trips, for every registered experiment.

``save_report`` → ``load_report`` must lose nothing the renderer shows:
the reloaded report's ``render()`` output is byte-identical to the
original's.  This pins the serialisation schema against the whole
registry — any driver that sneaks a non-JSON-stable value (a numpy
scalar, a tuple cell) into a table or comparison fails here, naming the
experiment.
"""

import json

import pytest

from repro.experiments.registry import SPECS, filter_options, run_experiment
from repro.experiments.store import (
    load_report,
    report_from_dict,
    report_to_dict,
    save_report,
)

#: one tiny option set for the whole registry; each driver takes its own
#: subset (fig2's claims index the 16-core point, hence 16 in the list)
OPTIONS = dict(
    scale=0.03,
    thread_counts=(1, 2, 16),
    hw_thread_counts=(1, 2),
    n=128,  # ext-critical's ACS table sweeps rl up to 128
    max_cores=64,
    budget=4,
    n_items=2000,
    n_bins=256,
    updates=50,
    updates_per_thread=200,
    batch=32,
    merge_elements=64,
    rl=4,
    n_threads=2,
    n_cores=8,
)

_reports: dict = {}


def _report(eid):
    if eid not in _reports:
        _reports[eid] = run_experiment(eid, **filter_options(eid, OPTIONS))
    return _reports[eid]


@pytest.mark.parametrize("eid", sorted(SPECS))
def test_roundtrip_render_is_byte_identical(eid, tmp_path):
    report = _report(eid)
    path = save_report(report, tmp_path / f"{eid}.json")
    reloaded = load_report(path)
    assert reloaded.render() == report.render()
    assert reloaded.all_match == report.all_match


@pytest.mark.parametrize("eid", sorted(SPECS))
def test_serialised_form_is_pure_json(eid):
    """The dict form must survive dumps/loads untouched — nothing in it
    may rely on ``default=str`` coercion (which would corrupt a reload)."""
    data = report_to_dict(_report(eid))
    rehydrated = json.loads(json.dumps(data))
    assert rehydrated == data
    assert report_from_dict(rehydrated).render() == _report(eid).render()
