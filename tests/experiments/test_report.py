"""Unit tests for experiment reports and paper comparisons."""

import pytest

from repro.experiments.report import ExperimentReport, PaperComparison, series_table
from repro.util.tables import TextTable


class TestPaperComparison:
    def test_numeric_within_tolerance(self):
        c = PaperComparison("x", paper_value=100.0, measured_value=103.0, tolerance=0.05)
        assert c.matches()

    def test_numeric_outside_tolerance(self):
        c = PaperComparison("x", paper_value=100.0, measured_value=110.0, tolerance=0.05)
        assert not c.matches()

    def test_qualitative(self):
        assert PaperComparison(
            "x", "a", "b", qualitative=True, claim_holds=True
        ).matches()
        assert not PaperComparison(
            "x", "a", "b", qualitative=True, claim_holds=False
        ).matches()

    def test_zero_paper_value(self):
        c = PaperComparison("x", paper_value=0.0, measured_value=0.001, tolerance=0.01)
        assert c.matches()


class TestExperimentReport:
    def test_render_includes_everything(self):
        r = ExperimentReport("demo", "A demo")
        t = TextTable(title="t1", columns=["a"])
        t.add_row([1])
        r.add_table(t)
        r.add_comparison(PaperComparison("claim1", 1.0, 1.0))
        r.add_note("a note")
        text = r.render()
        assert "demo" in text and "t1" in text and "claim1" in text and "a note" in text

    def test_all_match(self):
        r = ExperimentReport("demo", "A demo")
        r.add_comparison(PaperComparison("good", 1.0, 1.0))
        assert r.all_match
        r.add_comparison(PaperComparison("bad", 1.0, 2.0))
        assert not r.all_match

    def test_failed_comparison_marked_in_render(self):
        r = ExperimentReport("demo", "A demo")
        r.add_comparison(PaperComparison("bad", 1.0, 2.0))
        assert "NO" in r.render()


class TestSeriesTable:
    def test_columns(self):
        t = series_table("f", "x", [1, 2], {"s1": [1.0, 2.0], "s2": [3.0, 4.0]})
        assert t.columns == ["x", "s1", "s2"]
        assert len(t.rows) == 2
