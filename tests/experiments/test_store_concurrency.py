"""SweepStore under racing processes.

Several workers hammer one store directory with puts, gets, torn/garbage
writes and full clears.  The contract: no operation ever raises, a read
returns either a complete payload for the right key or a miss, and a
put after the dust settles is durable.
"""

import multiprocessing as mp
import random

import pytest

from repro.experiments.store import SweepStore

fork_only = pytest.mark.skipif(
    "fork" not in mp.get_all_start_methods(),
    reason="hammer test forks worker processes",
)

_N_WORKERS = 4
_N_OPS = 200


def _hammer(root, seed, err_q):
    try:
        store = SweepStore(root)
        rng = random.Random(seed)
        for i in range(_N_OPS):
            slot = rng.randrange(6)
            key = SweepStore.key_for({"slot": slot})
            roll = rng.random()
            if roll < 0.45:
                store.put(key, {"slot": slot, "writer": seed, "i": i})
            elif roll < 0.85:
                payload = store.get(key)
                # a hit must be complete and belong to the requested key
                if payload is not None and payload.get("slot") != slot:
                    raise AssertionError(f"key {key[:8]} served wrong payload")
            elif roll < 0.95:
                # simulate a torn write / corrupt entry where readers look
                store.path_for(key).parent.mkdir(parents=True, exist_ok=True)
                store.path_for(key).write_text('{"schema": 1, "key": "')
            else:
                store.clear()
        err_q.put(None)
    except BaseException as exc:  # noqa: BLE001 - reported to the parent
        err_q.put(f"{type(exc).__name__}: {exc}")


@fork_only
def test_store_survives_racing_processes(tmp_path):
    root = str(tmp_path / "store")
    ctx = mp.get_context("fork")
    err_q = ctx.Queue()
    procs = [
        ctx.Process(target=_hammer, args=(root, seed, err_q), daemon=True)
        for seed in range(_N_WORKERS)
    ]
    for p in procs:
        p.start()
    failures = [err_q.get(timeout=60) for _ in procs]
    for p in procs:
        p.join(10)
    assert all(f is None for f in failures), failures
    assert all(p.exitcode == 0 for p in procs)

    # the store still works, and no temp litter survives a clear
    store = SweepStore(root)
    key = SweepStore.key_for({"final": True})
    assert store.put(key, {"ok": 1}) is not None
    assert store.get(key) == {"ok": 1}
    store.clear()
    assert list(store.root.glob("*.tmp")) == []
    assert len(store) == 0


def test_put_failure_returns_none_and_leaves_no_litter(tmp_path):
    store = SweepStore(tmp_path / "f")
    key = SweepStore.key_for({"x": 1})
    assert store.put(key, {"v": 1}) is not None
    # make the committed entry's path un-replaceable: a directory
    store.path_for(key).unlink()
    store.path_for(key).mkdir()
    assert store.put(key, {"v": 2}) is None
    assert list(store.root.glob("*.tmp")) == []
