"""Integration tests: every experiment driver runs and its paper
comparisons hold.

The analytic experiments (fig3/4/5/7, tables 1/3) are exact and fast; the
simulator-backed ones (table2/4, fig2) run at a reduced dataset scale —
their qualitative claims are scale-invariant (Table IV's own argument).
"""

import pytest

from repro.experiments.registry import EXPERIMENTS, get_experiment, run_experiment


class TestRegistry:
    def test_all_paper_artifacts_covered(self):
        for required in ("table1", "table2", "table3", "table4",
                         "fig2", "fig3", "fig4", "fig5", "fig7"):
            assert required in EXPERIMENTS

    def test_unknown_id_raises(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            get_experiment("fig99")


class TestAnalyticDrivers:
    """Exact closed-form experiments: every anchor must hold."""

    def test_table1(self):
        report = run_experiment("table1")
        assert "MESI" in report.render()

    def test_table3(self):
        report = run_experiment("table3")
        assert len(report.tables[0].rows) == 8

    def test_fig3_all_claims_hold(self):
        report = run_experiment("fig3")
        assert report.all_match, report.render()

    def test_fig4_all_anchors_hold(self):
        report = run_experiment("fig4")
        assert report.all_match, report.render()

    def test_fig5_all_anchors_hold(self):
        report = run_experiment("fig5")
        assert report.all_match, report.render()

    def test_fig7_all_anchors_hold(self):
        report = run_experiment("fig7")
        assert report.all_match, report.render()

    def test_fig1_and_fig6_decompositions(self):
        for eid in ("fig1", "fig6"):
            report = run_experiment(eid)
            assert report.all_match, report.render()

    def test_conclusions_grid(self):
        report = run_experiment("conclusions")
        assert report.all_match, report.render()


class TestSimulatorDrivers:
    """Simulator-backed experiments at reduced scale."""

    def test_table2(self):
        report = run_experiment("table2", scale=0.05, thread_counts=(1, 2, 4, 8))
        assert report.all_match, report.render()

    def test_fig2(self):
        # fig2's scalability claims need a dataset big enough that the
        # per-thread work dominates phase overheads at 16 threads
        report = run_experiment(
            "fig2", scale=0.12,
            thread_counts=(1, 2, 4, 8, 16),
            hw_thread_counts=(1, 2, 4, 8),
            mem_scale=4,
        )
        assert report.all_match, report.render()

    def test_table4(self):
        report = run_experiment(
            "table4", scale=0.04, thread_counts=(1, 2, 4, 8), mem_scale=4
        )
        assert report.all_match, report.render()


class TestAblations:
    def test_perf_law(self):
        report = run_experiment("ablation-perf")
        assert report.all_match, report.render()

    def test_topology(self):
        report = run_experiment("ablation-topology")
        assert report.all_match, report.render()

    def test_reduction_strategy(self):
        report = run_experiment(
            "ablation-reduction", scale=0.04, thread_counts=(1, 2, 4, 8)
        )
        assert report.all_match, report.render()

    def test_optimal_r_map(self):
        report = run_experiment("ablation-rmap")
        assert report.all_match, report.render()

    def test_machine_model_robustness(self):
        report = run_experiment(
            "ablation-machine", scale=0.04, thread_counts=(1, 2, 4, 8)
        )
        assert report.all_match, report.render()
