"""Unit tests for the link-contention analysis."""

import numpy as np
import pytest

from repro.noc.contention import (
    all_to_all_pattern,
    analyse_pattern,
    contended_growcomm,
    gather_pattern,
)
from repro.noc.topology import Mesh2D


class TestPatterns:
    def test_gather_pair_count(self):
        mesh = Mesh2D(16)
        assert len(gather_pattern(mesh, 0, x=1)) == 15
        assert len(gather_pattern(mesh, 0, x=3)) == 45

    def test_all_to_all_pair_count(self):
        mesh = Mesh2D(9)
        assert len(all_to_all_pattern(mesh)) == 72  # 9·8

    def test_gather_validates_master(self):
        with pytest.raises(ValueError):
            gather_pattern(Mesh2D(4), master=4)


class TestAnalysis:
    def test_gather_is_heavily_imbalanced(self):
        mesh = Mesh2D(64)
        analysis = analyse_pattern(mesh, gather_pattern(mesh, 0))
        # the funnel into the master makes the hot link far above average
        assert analysis.imbalance > 3.0
        assert analysis.bottleneck_time > analysis.uniform_time

    def test_all_to_all_far_better_balanced_than_gather(self):
        mesh = Mesh2D(64)
        gather = analyse_pattern(mesh, gather_pattern(mesh, 0))
        a2a = analyse_pattern(mesh, all_to_all_pattern(mesh))
        assert a2a.imbalance < gather.imbalance

    def test_total_transfers_is_sum_of_hops(self):
        mesh = Mesh2D(16)
        pairs = gather_pattern(mesh, 0)
        analysis = analyse_pattern(mesh, pairs)
        assert analysis.total_transfers == sum(
            mesh.hop_distance(s, d) for s, d in pairs
        )

    def test_empty_pattern(self):
        mesh = Mesh2D(4)
        analysis = analyse_pattern(mesh, [])
        assert analysis.max_link_load == 0
        assert analysis.imbalance == 1.0

    def test_central_master_relieves_the_hotspot(self):
        # gathering into a corner is worse than into the mesh's centre
        mesh = Mesh2D(64)  # 8x8
        corner = analyse_pattern(mesh, gather_pattern(mesh, 0))
        center = analyse_pattern(mesh, gather_pattern(mesh, mesh.node_at(3, 3)))
        assert center.max_link_load < corner.max_link_load

    def test_4x4_gather_pins_the_corrected_imbalance(self):
        """Regression for the factor-of-2 convention mismatch: all mean
        statistics use bidirectional capacity (2 slots per undirected
        link), so for the 4x4 corner gather — 48 total hop-transfers,
        hottest link 12, 24 links — the mean is exactly 1.0 and the
        imbalance exactly 12.0 (it used to read 6.0 against a
        half-capacity mean while uniform_time used full capacity)."""
        mesh = Mesh2D(16)
        analysis = analyse_pattern(mesh, gather_pattern(mesh, 0))
        assert analysis.total_transfers == 48
        assert analysis.max_link_load == 12
        assert analysis.total_links == 24
        assert analysis.mean_link_load == pytest.approx(1.0)
        assert analysis.imbalance == pytest.approx(12.0)
        assert analysis.uniform_time == pytest.approx(1.0)
        assert analysis.bottleneck_time == pytest.approx(12.0)

    def test_imbalance_equals_bottleneck_over_uniform(self):
        """The one-convention invariant the fix establishes, across
        patterns and mesh sizes."""
        for n in (4, 16, 64):
            mesh = Mesh2D(n)
            for pairs in (gather_pattern(mesh, 0), all_to_all_pattern(mesh)):
                a = analyse_pattern(mesh, pairs)
                assert a.imbalance == pytest.approx(
                    a.bottleneck_time / a.uniform_time)


class TestContendedGrowcomm:
    def test_zero_at_single_core(self):
        g = contended_growcomm("all_to_all")
        assert float(g(1.0)) == 0.0

    def test_monotone_in_cores(self):
        g = contended_growcomm("all_to_all")
        vals = g(np.array([4.0, 16.0, 64.0]))
        assert np.all(np.diff(vals) > 0)

    def test_contended_above_eq8(self):
        # the bottleneck link is always at least as loaded as the average,
        # so the contended model charges at least Eq 8's sqrt(nc)/2
        from repro.core.communication import MESH_COMM

        g = contended_growcomm("all_to_all")
        for nc in (16.0, 64.0, 256.0):
            assert float(g(nc)) >= float(MESH_COMM(nc)) * 0.9

    def test_usable_in_speedup_model(self):
        from repro.core import communication as comm
        from repro.core.params import AppParams

        p = AppParams(f=0.99, fcon_share=0.6, fored_share=0.8)
        g = contended_growcomm("all_to_all")
        sizes, sp = comm.sweep_symmetric_comm(p, 256, comm=g)
        assert np.all(sp > 0)
        # contention only lowers the peak vs the paper's Eq 8
        _, sp_eq8 = comm.sweep_symmetric_comm(p, 256)
        assert sp.max() <= sp_eq8.max() + 1e-9

    def test_unknown_pattern(self):
        with pytest.raises(ValueError):
            contended_growcomm("ring-around-the-rosie")
