"""Unit tests for routing and the networkx cross-verification."""

import numpy as np
import pytest

from repro.noc.routing import (
    hop_matrix,
    path_link_loads,
    torus_route,
    verify_against_networkx,
    xy_route,
)
from repro.noc.topology import FullyConnected, Hypercube, Mesh2D, Ring, Torus2D


class TestXYRoute:
    def test_path_endpoints(self):
        m = Mesh2D(16)
        path = xy_route(m, 0, 15)
        assert path[0] == 0 and path[-1] == 15

    def test_path_length_is_manhattan_distance(self):
        m = Mesh2D(16)
        for s in range(16):
            for d in range(16):
                assert len(xy_route(m, s, d)) - 1 == m.hop_distance(s, d)

    def test_path_steps_are_adjacent(self):
        m = Mesh2D(12)
        path = xy_route(m, 0, 11)
        for u, v in zip(path, path[1:]):
            assert m.hop_distance(u, v) == 1

    def test_x_before_y(self):
        m = Mesh2D(16)  # 4x4
        path = xy_route(m, 0, 15)
        rows = [m.coords(n)[0] for n in path]
        # row changes only after all column movement is done
        first_row_change = next(i for i, r in enumerate(rows) if r != rows[0])
        assert all(r == rows[0] for r in rows[:first_row_change])

    def test_self_route(self):
        m = Mesh2D(9)
        assert xy_route(m, 4, 4) == [4]


class TestTorusRoute:
    def test_endpoints(self):
        t = Torus2D(16)
        path = torus_route(t, 0, 10)
        assert path[0] == 0 and path[-1] == 10

    def test_length_matches_hop_distance(self):
        t = Torus2D(16)
        for s in range(16):
            for d in range(16):
                assert len(torus_route(t, s, d)) - 1 == t.hop_distance(s, d), (s, d)

    def test_takes_wraparound_shortcut(self):
        t = Torus2D(16)  # 4x4
        # 0 -> 3 wraps in one hop instead of three
        assert len(torus_route(t, 0, 3)) == 2

    def test_steps_are_adjacent(self):
        t = Torus2D(12)
        edges = set(t.edges())
        path = torus_route(t, 0, 11)
        for u, v in zip(path, path[1:]):
            assert (min(u, v), max(u, v)) in edges

    def test_self_route(self):
        t = Torus2D(9)
        assert torus_route(t, 4, 4) == [4]


class TestHopMatrix:
    def test_symmetric_zero_diagonal(self):
        h = hop_matrix(Mesh2D(9))
        assert np.all(h == h.T)
        assert np.all(np.diag(h) == 0)

    def test_mean_matches_average_hops(self):
        m = Torus2D(16)
        h = hop_matrix(m)
        n = m.n_nodes
        mean = h.sum() / (n * (n - 1))
        assert mean == pytest.approx(m.average_hops())


class TestNetworkxVerification:
    @pytest.mark.parametrize("topo_cls,size", [
        (Mesh2D, 16), (Mesh2D, 12), (Mesh2D, 7),
        (Torus2D, 16), (Torus2D, 9), (Torus2D, 4),
        (Ring, 9), (Ring, 2),
        (FullyConnected, 8),
        (Hypercube, 16), (Hypercube, 2),
    ])
    def test_closed_form_distances_match_bfs(self, topo_cls, size):
        assert verify_against_networkx(topo_cls(size))


class TestLinkLoads:
    def test_gather_to_master_loads_links_near_master(self):
        m = Mesh2D(16)
        pairs = [(src, 0) for src in range(1, 16)]
        loads = path_link_loads(m, pairs)
        # the link into the master carries the most traffic
        max_link = max(loads, key=loads.get)
        assert 0 in max_link

    def test_total_load_equals_total_hops(self):
        m = Mesh2D(9)
        pairs = [(1, 5), (8, 0)]
        loads = path_link_loads(m, pairs)
        assert sum(loads.values()) == sum(m.hop_distance(s, d) for s, d in pairs)
