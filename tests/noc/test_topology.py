"""Unit tests for on-chip topologies."""

import math

import pytest

from repro.noc.topology import (
    FullyConnected,
    Hypercube,
    Mesh2D,
    Ring,
    Torus2D,
    resolve_topology,
)


class TestMesh2D:
    def test_square_shape_for_perfect_square(self):
        m = Mesh2D(64)
        assert (m.rows, m.cols) == (8, 8)

    def test_nonsquare_factorisation(self):
        m = Mesh2D(12)
        assert m.rows * m.cols == 12
        assert m.rows == 3 and m.cols == 4  # as square as possible

    def test_prime_count_degenerates_to_line(self):
        m = Mesh2D(7)
        assert (m.rows, m.cols) == (1, 7)

    def test_paper_link_count_formula(self):
        # paper: 2·sqrt(nc)·(sqrt(nc)−1) links for a square mesh
        for nc in (4, 16, 64, 256):
            side = int(math.isqrt(nc))
            assert Mesh2D(nc).link_count() == 2 * side * (side - 1)

    def test_link_operations_doubles_links(self):
        m = Mesh2D(16)
        assert m.link_operations() == 2 * m.link_count()

    def test_manhattan_distance(self):
        m = Mesh2D(16)  # 4x4
        assert m.hop_distance(0, 15) == 6  # (0,0) -> (3,3)
        assert m.hop_distance(0, 3) == 3
        assert m.hop_distance(5, 5) == 0

    def test_coords_roundtrip(self):
        m = Mesh2D(24)
        for node in range(24):
            r, c = m.coords(node)
            assert m.node_at(r, c) == node

    def test_edge_count_matches_link_count(self):
        for nc in (1, 4, 9, 12, 16):
            m = Mesh2D(nc)
            assert sum(1 for _ in m.edges()) == m.link_count()

    def test_average_hops_approximates_sqrt_minus_one(self):
        # the paper uses avg_hops ≈ sqrt(nc) − 1; exact value for a k×k mesh
        # is 2(k²−1)/(3k) ≈ 2k/3, same order. Check the paper's estimate is
        # within a factor 1.5 of exact at 64+ cores.
        for nc in (64, 256):
            exact = Mesh2D(nc).average_hops()
            paper = math.sqrt(nc) - 1
            assert 0.6 < paper / exact < 1.6

    def test_node_validation(self):
        m = Mesh2D(4)
        with pytest.raises(ValueError):
            m.coords(4)
        with pytest.raises(ValueError):
            m.node_at(2, 0)


class TestTorus2D:
    def test_wraparound_shortens_distance(self):
        t = Torus2D(16)  # 4x4
        m = Mesh2D(16)
        assert t.hop_distance(0, 3) == 1  # wrap in the row
        assert t.hop_distance(0, 3) < m.hop_distance(0, 3)

    def test_no_duplicate_edges_on_two_wide(self):
        t = Torus2D(4)  # 2x2: wrap link == mesh link
        edges = list(t.edges())
        assert len(edges) == len(set(edges))

    def test_edge_count_square(self):
        # k×k torus with k>2 has 2·k² links
        t = Torus2D(16)
        assert sum(1 for _ in t.edges()) == 32

    def test_average_hops_below_mesh(self):
        assert Torus2D(64).average_hops() < Mesh2D(64).average_hops()


class TestRing:
    def test_distance_takes_short_way_round(self):
        r = Ring(8)
        assert r.hop_distance(0, 7) == 1
        assert r.hop_distance(0, 4) == 4

    def test_edge_counts(self):
        assert sum(1 for _ in Ring(1).edges()) == 0
        assert sum(1 for _ in Ring(2).edges()) == 1
        assert sum(1 for _ in Ring(8).edges()) == 8

    def test_average_hops_quarter_n(self):
        r = Ring(16)
        assert r.average_hops() == pytest.approx(16 / 4, rel=0.1)


class TestHypercube:
    def test_hamming_distance(self):
        h = Hypercube(16)
        assert h.hop_distance(0b0000, 0b1111) == 4
        assert h.hop_distance(0b0101, 0b0100) == 1
        assert h.hop_distance(3, 3) == 0

    def test_link_count(self):
        # (n/2)·log2 n: 16 nodes → 32 links
        assert Hypercube(16).link_count() == 32
        assert sum(1 for _ in Hypercube(16).edges()) == 32

    def test_average_hops_closed_form_matches_exact(self):
        h = Hypercube(16)
        exact = super(Hypercube, h).average_hops()
        assert h.average_hops() == pytest.approx(exact)

    def test_sits_between_torus_and_crossbar(self):
        n = 64
        assert (
            FullyConnected(n).average_hops()
            < Hypercube(n).average_hops()
            < Torus2D(n).average_hops()
        )

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            Hypercube(12)

    def test_single_node(self):
        h = Hypercube(1)
        assert h.average_hops() == 0.0
        assert h.link_count() == 0


class TestFullyConnected:
    def test_single_hop_everywhere(self):
        f = FullyConnected(10)
        assert all(
            f.hop_distance(s, d) == 1
            for s in range(10) for d in range(10) if s != d
        )

    def test_quadratic_links(self):
        assert FullyConnected(10).link_count() == 45

    def test_average_hops_is_one(self):
        assert FullyConnected(6).average_hops() == pytest.approx(1.0)


class TestResolve:
    def test_by_name(self):
        assert isinstance(resolve_topology("mesh", 16), Mesh2D)
        assert isinstance(resolve_topology("TORUS", 16), Torus2D)
        assert isinstance(resolve_topology("crossbar", 16), FullyConnected)

    def test_by_class(self):
        assert isinstance(resolve_topology(Ring, 8), Ring)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            resolve_topology("butterfly", 16)

    def test_hypercube_resolvable(self):
        assert isinstance(resolve_topology("hypercube", 16), Hypercube)

    def test_bad_spec_type(self):
        with pytest.raises(TypeError):
            resolve_topology(42, 16)  # type: ignore[arg-type]
