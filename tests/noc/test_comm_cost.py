"""Unit tests for topology-derived communication growth (Eq 8)."""

import math

import numpy as np
import pytest

from repro.core import communication as comm
from repro.noc.comm_cost import growcomm_for, reduction_comm_operations, topology_growcomm
from repro.noc.topology import FullyConnected, Mesh2D, Ring, Torus2D


class TestReductionOps:
    def test_paper_formula(self):
        # 2·(nc−1)·x with broadcast back
        assert reduction_comm_operations(64, x=10) == 2 * 63 * 10

    def test_gather_only(self):
        assert reduction_comm_operations(64, x=10, broadcast_back=False) == 63 * 10

    def test_single_core_no_messages(self):
        assert reduction_comm_operations(1, x=100) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            reduction_comm_operations(0)
        with pytest.raises(ValueError):
            reduction_comm_operations(4, x=-1)


class TestGrowcommFor:
    def test_mesh_matches_eq8_within_approximation(self):
        # Eq 8 simplifies avg_hops to sqrt(nc)−1 and divides out, giving
        # sqrt(nc)/2.  The exact ratio uses the true average hop count,
        # which for a k×k mesh is 2(k²−1)/(3k); the two agree to within
        # ~35% at 64+ cores (the k/3-vs-k/2 constant).
        for nc in (64, 256, 1024):
            exact = growcomm_for(Mesh2D(nc))
            eq8 = math.sqrt(nc) / 2.0
            assert 0.5 < eq8 / exact < 1.6, nc

    def test_mesh_x_cancels(self):
        m = Mesh2D(64)
        assert growcomm_for(m, x=1) * 5 == pytest.approx(growcomm_for(m, x=5))

    def test_single_core_zero(self):
        assert growcomm_for(Mesh2D(1)) == 0.0

    def test_topology_ordering(self):
        # richer networks carry reduction traffic faster:
        # crossbar < torus < mesh < ring
        nc = 64
        g = {
            "crossbar": growcomm_for(FullyConnected(nc)),
            "torus": growcomm_for(Torus2D(nc)),
            "mesh": growcomm_for(Mesh2D(nc)),
            "ring": growcomm_for(Ring(nc)),
        }
        assert g["crossbar"] < g["torus"] < g["mesh"] < g["ring"]

    def test_ring_growth_linear_in_cores(self):
        # ring: avg hops ~ nc/4, links ~ nc → growcomm ~ (2nc·nc/4)/(2nc) ~ nc/4
        g64 = growcomm_for(Ring(64))
        g128 = growcomm_for(Ring(128))
        assert g128 / g64 == pytest.approx(2.0, rel=0.1)

    def test_crossbar_growth_saturates(self):
        # crossbar: messages 2(nc−1)·x, hops 1, links nc(nc−1)/2 → 2/nc·x… shrinks
        assert growcomm_for(FullyConnected(256)) < growcomm_for(FullyConnected(16))


class TestTopologyGrowcommAdapter:
    def test_produces_comm_growth_usable_in_model(self):
        from repro.core.params import AppParams

        p = AppParams(f=0.99, fcon_share=0.6, fored_share=0.8)
        mesh_exact = topology_growcomm("mesh")
        sp = comm.speedup_symmetric_comm(p, 256, 4.0, comm=mesh_exact)
        assert np.isfinite(sp) and sp > 0

    def test_vectorised_evaluation(self):
        g = topology_growcomm("ring")
        out = g(np.array([4.0, 16.0, 64.0]))
        assert out.shape == (3,)
        assert np.all(np.diff(out) > 0)

    def test_caches_repeated_sizes(self):
        g = topology_growcomm("mesh")
        a = float(g(64.0))
        b = float(g(64.0))
        assert a == b

    def test_exact_mesh_below_eq8_at_scale(self):
        # Eq 8 estimates avg hops as sqrt(nc)−1 = k−1; the true k×k-mesh
        # average is 2(k²−1)/(3k) ≈ 2k/3 < k−1 for k ≥ 3, so the exact
        # topology-derived growth sits *below* the paper's closed form
        # (Eq 8 is conservative on hop distance).
        g = topology_growcomm("mesh")
        for nc in (256.0, 1024.0):
            assert float(g(nc)) < float(comm.MESH_COMM(nc))
            assert float(g(nc)) > 0.5 * float(comm.MESH_COMM(nc))
