"""Suite-wide fixtures.

The simulator-sweep cache (`repro.experiments.simsweep`) has an on-disk
tier that defaults to ``.repro-cache/sweeps`` under the current directory.
Tests must never read a developer's warm cache (stale hits would mask
simulator changes) nor clear it (``clear_cache()`` wipes the disk tier by
contract), so the whole suite runs against a throwaway store.
"""

import pytest

from repro.experiments import simsweep


@pytest.fixture(scope="session", autouse=True)
def _isolated_sweep_cache(tmp_path_factory):
    simsweep.set_disk_store(tmp_path_factory.mktemp("sweep-cache"))
    simsweep.clear_cache(memory_only=True)
    yield
    simsweep.set_disk_store(None)
