"""Unit tests for the fuzzy c-means workload."""

import numpy as np
import pytest

from repro.workloads.base import PHASE_PARALLEL, PHASE_REDUCTION
from repro.workloads.datasets import make_blobs
from repro.workloads.fuzzy import FuzzyCMeansWorkload
from repro.workloads.kmeans import KMeansWorkload


@pytest.fixture(scope="module")
def dataset():
    return make_blobs(500, 5, 4, seed=5, spread=0.04)


class TestNumerics:
    def test_memberships_are_a_distribution(self, dataset):
        ex = FuzzyCMeansWorkload(dataset, max_iterations=5).execute(2)
        u = ex.outputs["memberships"]
        assert u.shape == (dataset.n_points, dataset.n_centers)
        assert np.all(u >= 0)
        assert np.allclose(u.sum(axis=1), 1.0)

    def test_recovers_true_centers(self, dataset):
        ex = FuzzyCMeansWorkload(dataset, max_iterations=30, seed=2).execute(1)
        found = ex.outputs["centers"]
        d = np.linalg.norm(
            dataset.true_centers[:, None, :] - found[None, :, :], axis=2
        ).min(axis=1)
        assert d.max() < 0.12

    def test_result_independent_of_thread_count(self, dataset):
        wl = FuzzyCMeansWorkload(dataset, max_iterations=6, seed=2)
        c1 = wl.execute(1).outputs["centers"]
        c8 = wl.execute(8).outputs["centers"]
        assert np.allclose(c1, c8, atol=1e-7)

    def test_fuzziness_validation(self, dataset):
        with pytest.raises(ValueError):
            FuzzyCMeansWorkload(dataset, fuzziness=1.0)

    def test_kmeanspp_init_accepted(self, dataset):
        ex = FuzzyCMeansWorkload(
            dataset, max_iterations=5, seed=2, init="kmeans++"
        ).execute(1)
        assert ex.outputs["centers"].shape == (dataset.n_centers, dataset.n_dims)

    def test_unknown_init_rejected(self, dataset):
        import pytest as _pytest

        with _pytest.raises(ValueError):
            FuzzyCMeansWorkload(dataset, init="grid")

    def test_high_fuzziness_softens_memberships(self, dataset):
        crisp = FuzzyCMeansWorkload(dataset, fuzziness=1.5, max_iterations=10, seed=2)
        soft = FuzzyCMeansWorkload(dataset, fuzziness=4.0, max_iterations=10, seed=2)
        u_crisp = crisp.execute(1).outputs["memberships"]
        u_soft = soft.execute(1).outputs["memberships"]
        assert u_soft.max(axis=1).mean() < u_crisp.max(axis=1).mean()


class TestPhaseStructure:
    def test_more_parallel_work_per_point_than_kmeans(self, dataset):
        # the paper measures a much smaller serial fraction for fuzzy than
        # kmeans on the same data: fuzzy's per-point work is bigger while
        # the merge size is the same.
        fz = FuzzyCMeansWorkload(dataset, max_iterations=1, tolerance=1e-12).execute(1)
        km = KMeansWorkload(dataset, max_iterations=1, tolerance=1e-12).execute(1)
        fz_par = next(w for w in fz.phases if w.phase == PHASE_PARALLEL)
        km_par = next(w for w in km.phases if w.phase == PHASE_PARALLEL)
        assert fz_par.total_instructions > km_par.total_instructions
        assert fz.serial_instruction_fraction() < km.serial_instruction_fraction()

    def test_reduction_grows_linearly(self, dataset):
        def master_red(p):
            ex = FuzzyCMeansWorkload(
                dataset, max_iterations=1, tolerance=1e-12
            ).execute(p)
            red = next(w for w in ex.phases if w.phase == PHASE_REDUCTION)
            return red.per_thread_instructions[0]

        assert master_red(8) == pytest.approx(8 * master_red(1), rel=0.01)

    def test_reduction_size_matches_kmeans(self, dataset):
        # same C and D → same x (C·(D+1))
        fz = FuzzyCMeansWorkload(dataset)
        km = KMeansWorkload(dataset)
        assert fz.reduction_elements == km.reduction_elements
