"""Unit + property tests for reduction strategies."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.reduction import (
    parallel_reduce,
    resolve_strategy,
    serial_reduce,
    tree_reduce,
)


def partials(p: int, shape=(4, 3), seed: int = 0) -> list[np.ndarray]:
    rng = np.random.default_rng(seed)
    return [rng.normal(size=shape) for _ in range(p)]


class TestCorrectness:
    @pytest.mark.parametrize("reduce_fn", [serial_reduce, tree_reduce, parallel_reduce])
    def test_matches_numpy_sum(self, reduce_fn):
        parts = partials(7)
        total, _ = reduce_fn(parts)
        assert np.allclose(total, np.sum(parts, axis=0))

    @pytest.mark.parametrize("reduce_fn", [serial_reduce, tree_reduce, parallel_reduce])
    def test_single_partial_is_identity(self, reduce_fn):
        parts = partials(1)
        total, _ = reduce_fn(parts)
        assert np.allclose(total, parts[0])

    @pytest.mark.parametrize("reduce_fn", [serial_reduce, tree_reduce, parallel_reduce])
    def test_does_not_mutate_inputs(self, reduce_fn):
        parts = partials(4)
        copies = [p.copy() for p in parts]
        reduce_fn(parts)
        for a, b in zip(parts, copies):
            assert np.array_equal(a, b)

    def test_all_strategies_agree(self):
        parts = partials(8, shape=(16,))
        s, _ = serial_reduce(parts)
        t, _ = tree_reduce(parts)
        p, _ = parallel_reduce(parts)
        assert np.allclose(s, t)
        assert np.allclose(s, p)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            serial_reduce([np.zeros((2, 2)), np.zeros((3, 2))])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            tree_reduce([])


class TestCostModels:
    def test_serial_cost_linear_in_threads(self):
        # serial_element_ops = x·p: the model's grow_linear(nc) = nc
        _, c4 = serial_reduce(partials(4, shape=(10,)))
        _, c8 = serial_reduce(partials(8, shape=(10,)))
        assert c4.serial_element_ops == 40
        assert c8.serial_element_ops == 80
        assert c8.serial_element_ops == 2 * c4.serial_element_ops

    def test_serial_cost_at_one_thread_is_x(self):
        _, c = serial_reduce(partials(1, shape=(10,)))
        assert c.serial_element_ops == 10  # one full pass, grow(1) = 1

    def test_tree_cost_logarithmic(self):
        _, c16 = tree_reduce(partials(16, shape=(10,)))
        assert c16.serial_element_ops == 40  # x · log2(16)
        _, c1 = tree_reduce(partials(1, shape=(10,)))
        assert c1.serial_element_ops == 10  # x · grow_log(1) = x

    def test_parallel_cost_constant_per_thread(self):
        _, c4 = parallel_reduce(partials(4, shape=(12,)))
        _, c12 = parallel_reduce(partials(12, shape=(12,)))
        assert c4.parallel_element_ops == 12   # (x/p)·p = x
        assert c12.parallel_element_ops == 12
        assert c4.serial_element_ops == 0

    def test_messages_grow_with_threads(self):
        _, c2 = serial_reduce(partials(2, shape=(10,)))
        _, c8 = serial_reduce(partials(8, shape=(10,)))
        assert c2.messages == 10
        assert c8.messages == 70

    def test_parallel_broadcast_doubles_messages(self):
        parts = partials(4, shape=(10,))
        _, with_bcast = parallel_reduce(parts, broadcast_back=True)
        _, without = parallel_reduce(parts, broadcast_back=False)
        assert with_bcast.messages == 2 * without.messages


class TestResolve:
    def test_known_names(self):
        assert resolve_strategy("serial") is serial_reduce
        assert resolve_strategy("tree") is tree_reduce
        assert resolve_strategy("parallel") is parallel_reduce

    def test_unknown(self):
        with pytest.raises(ValueError):
            resolve_strategy("quantum")


class TestProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        p=st.integers(min_value=1, max_value=12),
        x=st.integers(min_value=1, max_value=50),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_strategies_numerically_equivalent(self, p, x, seed):
        parts = partials(p, shape=(x,), seed=seed)
        s, _ = serial_reduce(parts)
        t, _ = tree_reduce(parts)
        q, _ = parallel_reduce(parts)
        assert np.allclose(s, t, atol=1e-9)
        assert np.allclose(s, q, atol=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(p=st.integers(min_value=2, max_value=32), x=st.integers(min_value=1, max_value=64))
    def test_cost_ordering_serial_vs_tree(self, p, x):
        parts = [np.ones(x) for _ in range(p)]
        _, cs = serial_reduce(parts)
        _, ct = tree_reduce(parts)
        assert ct.serial_element_ops <= cs.serial_element_ops
