"""Hypothesis property tests for the parameter-extraction pipeline."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.instrument import (
    PhaseBreakdown,
    extract_parameters,
    serial_growth_curve,
    speedup_curve,
)


@st.composite
def model_consistent_breakdowns(draw):
    """Breakdowns generated exactly by the paper's model, with random
    parameters — extraction must invert them."""
    total1 = draw(st.floats(min_value=1e5, max_value=1e8))
    serial_frac = draw(st.floats(min_value=1e-4, max_value=0.2))
    fcon_share = draw(st.floats(min_value=0.05, max_value=0.95))
    fored = draw(st.floats(min_value=0.05, max_value=2.0))
    alpha = draw(st.floats(min_value=0.6, max_value=1.6))
    serial1 = total1 * serial_frac
    fcon = serial1 * fcon_share
    fcred = serial1 - fcon
    parallel1 = total1 - serial1
    out = {}
    for p in (1, 2, 4, 8, 16):
        red = fcred * (1 + fored * (p - 1) ** alpha)
        out[p] = PhaseBreakdown(
            n_threads=p, total=parallel1 / p + fcon + red,
            init=fcon / 2, parallel=parallel1 / p, reduction=red, serial=fcon / 2,
        )
    return out, dict(
        serial_frac=serial_frac, fcon_share=fcon_share, fored=fored, alpha=alpha
    )


class TestExtractionRoundtrip:
    @settings(max_examples=60, deadline=None)
    @given(data=model_consistent_breakdowns())
    def test_recovers_generating_parameters(self, data):
        breakdowns, truth = data
        ep = extract_parameters(breakdowns, "synthetic")
        assert ep.serial_pct / 100 == pytest_approx(truth["serial_frac"])
        assert ep.fcon_share == pytest_approx(truth["fcon_share"])
        assert ep.fored_rel == pytest_approx(truth["fored"], rel=0.02)
        assert abs(ep.growth_alpha - truth["alpha"]) < 0.02

    @settings(max_examples=40, deadline=None)
    @given(data=model_consistent_breakdowns())
    def test_curves_well_formed(self, data):
        breakdowns, _ = data
        growth = serial_growth_curve(breakdowns)
        speedup = speedup_curve(breakdowns)
        assert growth[1] == pytest_approx(1.0)
        assert speedup[1] == pytest_approx(1.0)
        values = [growth[p] for p in sorted(growth)]
        assert values == sorted(values)  # growth is monotone by model

    @settings(max_examples=40, deadline=None)
    @given(data=model_consistent_breakdowns())
    def test_roundtrip_through_measured_params(self, data):
        """extract → MeasuredParams → re-predict serial time == input."""
        from repro.core import measured as mm

        breakdowns, _ = data
        mp = extract_parameters(breakdowns, "x").to_measured_params()
        measured_growth = serial_growth_curve(breakdowns)
        for p in (2, 4, 8, 16):
            predicted = float(mm.serial_time_normalised(mp, p))
            assert predicted == pytest_approx(measured_growth[p], rel=0.05)


def pytest_approx(value, rel=1e-3):
    import pytest

    return pytest.approx(value, rel=rel)
