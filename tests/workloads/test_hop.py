"""Unit tests for the HOP workload."""

import numpy as np
import pytest

from repro.workloads.base import PHASE_PARALLEL, PHASE_REDUCTION
from repro.workloads.datasets import make_particles
from repro.workloads.hop import HopWorkload


@pytest.fixture(scope="module")
def dataset():
    return make_particles(1500, n_halos=5, seed=9, background_fraction=0.25)


class TestNumerics:
    def test_finds_plausible_group_count(self, dataset):
        ex = HopWorkload(dataset, n_neighbors=12).execute(1)
        n_groups = ex.outputs["n_groups"]
        # HOP finds density maxima: at least the halos, not thousands
        assert 1 <= n_groups <= dataset.n_particles // 10

    def test_groups_independent_of_thread_count(self, dataset):
        wl = HopWorkload(dataset, n_neighbors=12)
        g1 = wl.execute(1).outputs["groups"]
        g8 = wl.execute(8).outputs["groups"]
        assert np.array_equal(g1, g8)

    def test_background_particles_ungrouped(self, dataset):
        ex = HopWorkload(dataset, n_neighbors=12, density_threshold_quantile=0.3).execute(1)
        groups = ex.outputs["groups"]
        assert (groups == -1).sum() >= int(0.29 * dataset.n_particles)

    def test_density_positive(self, dataset):
        ex = HopWorkload(dataset, n_neighbors=8).execute(1)
        assert np.all(ex.outputs["density"] > 0)

    def test_roots_are_fixed_points(self, dataset):
        ex = HopWorkload(dataset, n_neighbors=12).execute(1)
        roots = ex.outputs["roots"]
        assert np.array_equal(roots[roots], roots)

    def test_dense_halo_members_share_groups(self, dataset):
        # particles in the same tight halo should mostly agree on a group
        ex = HopWorkload(dataset, n_neighbors=12).execute(1)
        groups = ex.outputs["groups"]
        grouped = groups[groups >= 0]
        # the biggest group holds a sensible share of grouped particles
        counts = np.bincount(grouped)
        assert counts.max() > len(grouped) / (5 * 4)


class TestPhaseStructure:
    def test_single_pass(self, dataset):
        ex = HopWorkload(dataset, n_neighbors=8).execute(2)
        assert ex.n_iterations == 1

    def test_tree_phase_does_not_scale_perfectly(self, dataset):
        # per-thread tree work at p=8 is more than 1/8 of the p=1 work
        def tree_instr(p):
            ex = HopWorkload(dataset, n_neighbors=8).execute(p)
            w = next(x for x in ex.phases if x.phase == PHASE_PARALLEL)
            return w.per_thread_instructions[0]

        assert tree_instr(8) > tree_instr(1) / 8 * 1.2

    def test_merge_entries_grow_with_threads(self, dataset):
        def table_entries(p):
            return HopWorkload(dataset, n_neighbors=12).execute(p).outputs[
                "table_entries"
            ]

        assert table_entries(8) > table_entries(2)

    def test_cross_edges_grow_with_threads(self, dataset):
        wl = HopWorkload(dataset, n_neighbors=12)
        e2 = wl.execute(2).outputs["cross_edges"]
        e8 = wl.execute(8).outputs["cross_edges"]
        assert e8 >= e2

    def test_reduction_is_master_only(self, dataset):
        ex = HopWorkload(dataset, n_neighbors=8).execute(4)
        red = next(w for w in ex.phases if w.phase == PHASE_REDUCTION)
        assert red.per_thread_instructions[0] > 0
        assert all(i == 0 for i in red.per_thread_instructions[1:])
        assert red.shared_reads[0] > 0


class TestValidation:
    def test_rejects_too_many_neighbors(self):
        tiny = make_particles(10, n_halos=1, seed=0)
        with pytest.raises(ValueError):
            HopWorkload(tiny, n_neighbors=10)

    def test_rejects_bad_quantile(self, dataset):
        with pytest.raises(ValueError):
            HopWorkload(dataset, density_threshold_quantile=1.0)
