"""Unit tests for the clustering-quality metrics."""

import numpy as np
import pytest

from repro.workloads.datasets import make_blobs
from repro.workloads.kmeans import KMeansWorkload
from repro.workloads.quality import (
    adjusted_rand_index,
    davies_bouldin,
    inertia,
    purity,
    silhouette_mean,
)


def two_clear_clusters(n=100, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.normal(0.0, 0.05, size=(n, 2))
    b = rng.normal(1.0, 0.05, size=(n, 2)) + np.array([1.0, 1.0])
    points = np.vstack([a, b])
    truth = np.array([0] * n + [1] * n)
    return points, truth


class TestInertia:
    def test_zero_when_points_on_centers(self):
        pts = np.array([[0.0, 0.0], [1.0, 1.0]])
        centers = pts.copy()
        assert inertia(pts, np.array([0, 1]), centers) == 0.0

    def test_matches_manual_computation(self):
        pts = np.array([[0.0, 0.0], [2.0, 0.0]])
        centers = np.array([[1.0, 0.0]])
        assert inertia(pts, np.array([0, 0]), centers) == pytest.approx(2.0)

    def test_invalid_label(self):
        with pytest.raises(ValueError):
            inertia(np.zeros((2, 2)), np.array([0, 5]), np.zeros((1, 2)))


class TestPurity:
    def test_perfect(self):
        pts, truth = two_clear_clusters()
        assert purity(truth, truth) == 1.0

    def test_label_permutation_still_pure(self):
        _, truth = two_clear_clusters()
        assert purity(1 - truth, truth) == 1.0

    def test_random_labels_impure(self):
        _, truth = two_clear_clusters()
        rng = np.random.default_rng(1)
        assert purity(rng.integers(0, 2, truth.size), truth) < 0.8

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            purity(np.array([0, 1]), np.array([0]))


class TestARI:
    def test_identical_partitions(self):
        _, truth = two_clear_clusters()
        assert adjusted_rand_index(truth, truth) == pytest.approx(1.0)

    def test_permuted_labels_still_one(self):
        _, truth = two_clear_clusters()
        assert adjusted_rand_index(1 - truth, truth) == pytest.approx(1.0)

    def test_random_near_zero(self):
        rng = np.random.default_rng(2)
        a = rng.integers(0, 4, 2000)
        b = rng.integers(0, 4, 2000)
        assert abs(adjusted_rand_index(a, b)) < 0.05

    def test_partial_agreement_between(self):
        _, truth = two_clear_clusters(n=200)
        noisy = truth.copy()
        noisy[:40] = 1 - noisy[:40]  # corrupt 10%
        score = adjusted_rand_index(noisy, truth)
        assert 0.3 < score < 1.0


class TestSilhouette:
    def test_well_separated_clusters_score_high(self):
        pts, truth = two_clear_clusters()
        assert silhouette_mean(pts, truth, sample=None) > 0.8

    def test_bad_split_scores_low(self):
        pts, truth = two_clear_clusters()
        rng = np.random.default_rng(0)
        bad = rng.integers(0, 2, truth.size)
        assert silhouette_mean(pts, bad, sample=None) < 0.2

    def test_sampled_close_to_exact(self):
        pts, truth = two_clear_clusters(n=300)
        exact = silhouette_mean(pts, truth, sample=None)
        sampled = silhouette_mean(pts, truth, sample=150, seed=1)
        assert abs(exact - sampled) < 0.1

    def test_single_cluster_rejected(self):
        pts, _ = two_clear_clusters()
        with pytest.raises(ValueError):
            silhouette_mean(pts, np.zeros(pts.shape[0], dtype=int))


class TestDaviesBouldin:
    def test_tight_separated_clusters_score_low(self):
        pts, truth = two_clear_clusters()
        assert davies_bouldin(pts, truth) < 0.5

    def test_bad_labels_score_higher(self):
        pts, truth = two_clear_clusters()
        rng = np.random.default_rng(3)
        bad = rng.integers(0, 2, truth.size)
        assert davies_bouldin(pts, bad) > davies_bouldin(pts, truth)


class TestWorkloadQuality:
    def test_kmeans_produces_quality_clustering(self):
        ds = make_blobs(800, 4, 4, seed=7, spread=0.03)
        rng = np.random.default_rng(7)
        # ground truth: nearest true center
        truth = np.argmin(
            np.linalg.norm(ds.points[:, None] - ds.true_centers[None], axis=2), axis=1
        )
        ex = KMeansWorkload(ds, max_iterations=25, seed=3, init="kmeans++").execute(2)
        ari = adjusted_rand_index(ex.outputs["assignments"], truth)
        assert ari > 0.9
