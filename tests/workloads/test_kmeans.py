"""Unit tests for the kmeans workload."""

import numpy as np
import pytest

from repro.workloads.base import (
    PHASE_INIT,
    PHASE_PARALLEL,
    PHASE_REDUCTION,
    PHASE_SERIAL,
)
from repro.workloads.datasets import make_blobs
from repro.workloads.kmeans import KMeansWorkload


@pytest.fixture(scope="module")
def dataset():
    return make_blobs(600, 5, 4, seed=3, spread=0.04)


class TestNumerics:
    def test_recovers_true_centers(self, dataset):
        wl = KMeansWorkload(dataset, max_iterations=30, seed=1, init="kmeans++")
        ex = wl.execute(1)
        found = ex.outputs["centers"]
        # each true center has a found center nearby
        d = np.linalg.norm(
            dataset.true_centers[:, None, :] - found[None, :, :], axis=2
        ).min(axis=1)
        assert d.max() < 0.1

    def test_result_independent_of_thread_count(self, dataset):
        wl = KMeansWorkload(dataset, max_iterations=8, seed=1)
        c1 = wl.execute(1).outputs["centers"]
        c4 = wl.execute(4).outputs["centers"]
        assert np.allclose(c1, c4, atol=1e-8)

    def test_inertia_decreases_with_iterations(self, dataset):
        short = KMeansWorkload(dataset, max_iterations=1, seed=1, tolerance=1e-12)
        long = KMeansWorkload(dataset, max_iterations=20, seed=1, tolerance=1e-12)
        assert long.execute(1).outputs["inertia"] <= short.execute(1).outputs["inertia"]

    def test_assignments_cover_all_points(self, dataset):
        ex = KMeansWorkload(dataset, max_iterations=3).execute(2)
        a = ex.outputs["assignments"]
        assert a.shape == (dataset.n_points,)
        assert a.min() >= 0 and a.max() < dataset.n_centers

    def test_convergence_stops_early(self, dataset):
        wl = KMeansWorkload(dataset, max_iterations=100, tolerance=1e-3, seed=1)
        ex = wl.execute(1)
        assert ex.n_iterations < 100


class TestPhaseStructure:
    def test_phase_sequence(self, dataset):
        ex = KMeansWorkload(dataset, max_iterations=2, tolerance=1e-12).execute(2)
        phases = [w.phase for w in ex.phases]
        assert phases[0] == PHASE_INIT
        assert phases[1:4] == [PHASE_PARALLEL, PHASE_REDUCTION, PHASE_SERIAL]
        assert phases.count(PHASE_PARALLEL) == ex.n_iterations

    def test_serial_phases_have_master_only_work(self, dataset):
        ex = KMeansWorkload(dataset, max_iterations=2).execute(4)
        for w in ex.phases:
            if w.phase in (PHASE_INIT, PHASE_REDUCTION, PHASE_SERIAL):
                assert all(i == 0 for i in w.per_thread_instructions[1:]), w.phase
                assert w.per_thread_instructions[0] > 0

    def test_parallel_work_is_balanced(self, dataset):
        ex = KMeansWorkload(dataset, max_iterations=1, tolerance=1e-12).execute(4)
        par = next(w for w in ex.phases if w.phase == PHASE_PARALLEL)
        instr = np.array(par.per_thread_instructions)
        assert instr.max() / instr.min() < 1.02

    def test_reduction_work_grows_linearly_with_threads(self, dataset):
        def master_red(p):
            ex = KMeansWorkload(dataset, max_iterations=1, tolerance=1e-12).execute(p)
            red = next(w for w in ex.phases if w.phase == PHASE_REDUCTION)
            return red.per_thread_instructions[0]

        r1, r2, r8 = master_red(1), master_red(2), master_red(8)
        assert r2 == pytest.approx(2 * r1, rel=0.01)
        assert r8 == pytest.approx(8 * r1, rel=0.01)

    def test_parallel_per_thread_work_shrinks_with_threads(self, dataset):
        def par_instr(p):
            ex = KMeansWorkload(dataset, max_iterations=1, tolerance=1e-12).execute(p)
            w = next(x for x in ex.phases if x.phase == PHASE_PARALLEL)
            return w.per_thread_instructions[0]

        assert par_instr(4) == pytest.approx(par_instr(1) / 4, rel=0.02)

    def test_shared_reads_attributed_to_master_for_serial_strategy(self, dataset):
        ex = KMeansWorkload(dataset, max_iterations=1, tolerance=1e-12).execute(4)
        red = next(w for w in ex.phases if w.phase == PHASE_REDUCTION)
        assert red.shared_reads[0] > 0
        assert all(s == 0 for s in red.shared_reads[1:])

    def test_serial_instruction_fraction_is_tiny(self, dataset):
        ex = KMeansWorkload(dataset, max_iterations=5).execute(1)
        assert ex.serial_instruction_fraction() < 0.02


class TestReductionStrategies:
    def test_tree_strategy_reduces_master_work(self, dataset):
        def master_red(strategy, p=8):
            wl = KMeansWorkload(
                dataset, max_iterations=1, tolerance=1e-12,
                reduction_strategy=strategy,
            )
            ex = wl.execute(p)
            red = next(w for w in ex.phases if w.phase == PHASE_REDUCTION)
            return red.per_thread_instructions[0]

        assert master_red("tree") < master_red("serial")

    def test_all_strategies_same_numeric_result(self, dataset):
        results = {
            s: KMeansWorkload(
                dataset, max_iterations=4, seed=2, reduction_strategy=s
            ).execute(4).outputs["centers"]
            for s in ("serial", "tree", "parallel")
        }
        assert np.allclose(results["serial"], results["tree"])
        assert np.allclose(results["serial"], results["parallel"])

    def test_unknown_strategy_rejected_at_construction(self, dataset):
        with pytest.raises(ValueError):
            KMeansWorkload(dataset, reduction_strategy="magic")


class TestValidation:
    def test_more_threads_than_points(self):
        tiny = make_blobs(4, 2, 2, seed=0)
        with pytest.raises(ValueError):
            KMeansWorkload(tiny).execute(8)

    def test_rejects_zero_iterations(self, dataset):
        with pytest.raises(ValueError):
            KMeansWorkload(dataset, max_iterations=0)
