"""Unit tests for synthetic dataset generators."""

import numpy as np
import pytest

from repro.workloads.datasets import (
    TABLE4_DATASETS,
    load_dataset,
    make_blobs,
    make_particles,
)


class TestMakeBlobs:
    def test_shape_and_attributes(self):
        ds = make_blobs(500, 9, 8, seed=0)
        assert ds.points.shape == (500, 9)
        assert ds.n_points == 500
        assert ds.n_dims == 9
        assert ds.n_centers == 8
        assert ds.true_centers.shape == (8, 9)

    def test_deterministic_with_seed(self):
        a = make_blobs(100, 4, 3, seed=7)
        b = make_blobs(100, 4, 3, seed=7)
        assert np.array_equal(a.points, b.points)

    def test_different_seeds_differ(self):
        a = make_blobs(100, 4, 3, seed=7)
        b = make_blobs(100, 4, 3, seed=8)
        assert not np.array_equal(a.points, b.points)

    def test_points_cluster_around_centers(self):
        ds = make_blobs(2000, 5, 4, seed=1, spread=0.05)
        # each point is within a few spreads of its nearest true center
        d = np.linalg.norm(
            ds.points[:, None, :] - ds.true_centers[None, :, :], axis=2
        ).min(axis=1)
        assert np.quantile(d, 0.99) < 0.05 * 5

    def test_rejects_more_centers_than_points(self):
        with pytest.raises(ValueError):
            make_blobs(5, 2, 10)

    def test_scaled_to(self):
        ds = make_blobs(200, 3, 4, seed=0)
        bigger = ds.scaled_to(800)
        assert bigger.n_points == 800
        assert bigger.n_dims == 3
        assert bigger.n_centers == 4


class TestMakeParticles:
    def test_shapes(self):
        ds = make_particles(1000, n_halos=4, seed=0)
        assert ds.positions.shape == (1000, 3)
        assert ds.masses.shape == (1000,)
        assert ds.n_particles == 1000

    def test_positions_in_unit_cube(self):
        ds = make_particles(500, seed=3)
        assert ds.positions.min() >= 0.0
        assert ds.positions.max() <= 1.0

    def test_halos_create_density_contrast(self):
        ds = make_particles(2000, n_halos=3, seed=1, background_fraction=0.3)
        # clustered particles concentrate: median nearest-neighbour distance
        # is much smaller than a uniform distribution's expectation
        from scipy.spatial import cKDTree

        d, _ = cKDTree(ds.positions).query(ds.positions, k=2)
        nn = d[:, 1]
        uniform_expectation = 0.55 / (2000 ** (1 / 3))
        assert np.median(nn) < uniform_expectation

    def test_rejects_bad_background(self):
        with pytest.raises(ValueError):
            make_particles(100, background_fraction=1.0)


class TestTable4Datasets:
    def test_all_ten_labels(self):
        assert len(TABLE4_DATASETS) == 10

    def test_kmeans_base_attributes(self):
        ds = load_dataset("kmeans-base")
        assert ds.n_points == 17695
        assert ds.n_dims == 9
        assert ds.n_centers == 8

    def test_kmeans_point_doubles_points(self):
        ds = load_dataset("kmeans-point")
        assert ds.n_points == 35390
        assert ds.n_dims == 18

    def test_kmeans_center_scales_centers(self):
        assert load_dataset("kmeans-center").n_centers == 32

    def test_unknown_label(self):
        with pytest.raises(ValueError):
            load_dataset("kmeans-huge")
