"""Unit tests for trace generation from workload executions."""

import pytest

from repro.simx.trace import Barrier, Compute, Load, PhaseBegin, PhaseEnd, Store
from repro.workloads.datasets import make_blobs
from repro.workloads.kmeans import KMeansWorkload
from repro.workloads.tracegen import AddressMap, TraceGenerator, program_from_execution


@pytest.fixture(scope="module")
def execution():
    ds = make_blobs(400, 5, 4, seed=2)
    return KMeansWorkload(ds, max_iterations=2, tolerance=1e-12).execute(4)


@pytest.fixture(scope="module")
def single_thread_execution():
    ds = make_blobs(400, 5, 4, seed=2)
    return KMeansWorkload(ds, max_iterations=2, tolerance=1e-12).execute(1)


class TestProgramShape:
    def test_thread_count_matches(self, execution):
        prog = program_from_execution(execution)
        assert prog.n_threads == 4

    def test_metadata(self, execution):
        prog = program_from_execution(execution)
        assert prog.metadata["workload"] == "kmeans"
        assert prog.metadata["n_iterations"] == 2

    def test_all_threads_have_equal_barrier_counts(self, execution):
        prog = program_from_execution(execution)
        barrier_seqs = [
            [op.barrier_id for op in t.ops if isinstance(op, Barrier)]
            for t in prog.threads
        ]
        assert all(seq == barrier_seqs[0] for seq in barrier_seqs)
        assert len(barrier_seqs[0]) == len(execution.phases)

    def test_single_thread_has_no_barriers(self, single_thread_execution):
        prog = program_from_execution(single_thread_execution)
        assert not any(isinstance(op, Barrier) for op in prog.threads[0].ops)

    def test_phases_balanced_per_thread(self, execution):
        prog = program_from_execution(execution)
        for t in prog.threads:
            depth = 0
            for op in t.ops:
                if isinstance(op, PhaseBegin):
                    depth += 1
                elif isinstance(op, PhaseEnd):
                    depth -= 1
                assert depth >= 0
            assert depth == 0

    def test_instruction_totals_preserved(self, execution):
        prog = program_from_execution(execution)
        expected = sum(w.total_instructions for w in execution.phases)
        emitted = sum(
            op.instructions
            for t in prog.threads
            for op in t.ops
            if isinstance(op, Compute)
        )
        assert emitted == expected


class TestAddressDiscipline:
    def test_private_loads_stay_in_own_region(self, execution):
        amap = AddressMap()
        prog = TraceGenerator(amap).program(execution)
        # thread 1's parallel-phase loads never touch thread 0's data region
        t1_loads = [
            op.addr for op in prog.threads[1].ops if isinstance(op, Load)
        ]
        t0_data = range(amap.data_region(0), amap.data_region(1))
        assert not any(a in t0_data for a in t1_loads if a >= amap.data_base and a < amap.partials_base)

    def test_master_reads_remote_partials_in_reduction(self, execution):
        amap = AddressMap()
        prog = TraceGenerator(amap).program(execution)
        t0_ops = list(prog.threads[0].ops)
        # collect loads inside reduction phases
        in_red, remote = False, []
        for op in t0_ops:
            if isinstance(op, PhaseBegin) and op.phase == "reduction":
                in_red = True
            elif isinstance(op, PhaseEnd) and op.phase == "reduction":
                in_red = False
            elif in_red and isinstance(op, Load):
                remote.append(op.addr)
        other_partials = [
            a for a in remote
            if a >= amap.partials_region(1)
        ]
        assert other_partials, "master must read other threads' partials"

    def test_workers_store_into_own_partials(self, execution):
        amap = AddressMap()
        prog = TraceGenerator(amap).program(execution)
        for tid in (1, 2, 3):
            stores = [
                op.addr for op in prog.threads[tid].ops if isinstance(op, Store)
            ]
            assert stores
            lo = amap.partials_region(tid)
            hi = lo + amap.partials_stride
            assert all(lo <= a < hi for a in stores)


class TestMemScale:
    def test_mem_scale_reduces_ops_but_not_compute(self, execution):
        full = program_from_execution(execution, mem_scale=1)
        scaled = program_from_execution(execution, mem_scale=8)

        def count(prog, kind):
            return sum(
                1 for t in prog.threads for op in t.ops if isinstance(op, kind)
            )

        def instr(prog):
            return sum(
                op.instructions
                for t in prog.threads for op in t.ops if isinstance(op, Compute)
            )

        assert count(scaled, Load) < count(full, Load)
        assert instr(scaled) == instr(full)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            TraceGenerator(chunks=0)
        with pytest.raises(ValueError):
            TraceGenerator(mem_scale=0)


class TestRunnability:
    def test_program_runs_on_machine(self, execution):
        from repro.simx import Machine, MachineConfig

        prog = program_from_execution(execution, mem_scale=4)
        res = Machine(MachineConfig.baseline(n_cores=4)).run(prog)
        assert res.total_cycles > 0
        assert res.phase_cycles("parallel") > res.phase_cycles("reduction")
