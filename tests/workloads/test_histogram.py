"""Unit tests for the histogram workload."""

import numpy as np
import pytest

from repro.workloads.base import PHASE_PARALLEL, PHASE_REDUCTION
from repro.workloads.histogram import HistogramWorkload


class TestNumerics:
    def test_counts_every_item_once(self):
        wl = HistogramWorkload(n_items=5000, n_bins=64)
        for p in (1, 3, 8):
            assert int(wl.execute(p).outputs["histogram"].sum()) == 5000

    def test_result_independent_of_thread_count(self):
        wl = HistogramWorkload(n_items=4000, n_bins=128, seed=2)
        h1 = wl.execute(1).outputs["histogram"]
        h8 = wl.execute(8).outputs["histogram"]
        assert np.array_equal(h1, h8)

    def test_mode_falls_in_a_bump(self):
        wl = HistogramWorkload(n_items=30000, n_bins=1000, seed=1)
        mode = wl.execute(2).outputs["mode_bin"]
        # the two Gaussian bumps sit at 25% and 70% of the range
        assert (0.2 < mode / 1000 < 0.3) or (0.6 < mode / 1000 < 0.8)

    def test_density_sums_to_one(self):
        wl = HistogramWorkload(n_items=2000, n_bins=32)
        assert wl.execute(4).outputs["density"].sum() == pytest.approx(1.0)

    def test_strategies_agree(self):
        results = [
            HistogramWorkload(
                n_items=3000, n_bins=64, reduction_strategy=s
            ).execute(4).outputs["histogram"]
            for s in ("serial", "tree", "parallel")
        ]
        assert np.array_equal(results[0], results[1])
        assert np.array_equal(results[0], results[2])


class TestPhaseStructure:
    def test_reduction_dominates_more_than_kmeans(self):
        # per-item work is tiny, bins are many: the merge share of serial
        # work towers over kmeans' on comparable sizes
        from repro.workloads.datasets import make_blobs
        from repro.workloads.kmeans import KMeansWorkload

        hist = HistogramWorkload(n_items=10000, n_bins=4096).execute(1)
        km = KMeansWorkload(
            make_blobs(10000, 9, 8, seed=0), max_iterations=1, tolerance=1e-12
        ).execute(1)

        def merge_share(ex):
            by_phase = ex.instructions_by_phase()
            serial = sum(
                v for k, v in by_phase.items() if k != PHASE_PARALLEL
            )
            return by_phase[PHASE_REDUCTION] / serial

        assert merge_share(hist) > merge_share(km)

    def test_reduction_grows_linearly_with_threads(self):
        def master_red(p):
            ex = HistogramWorkload(n_items=4000, n_bins=256).execute(p)
            red = next(w for w in ex.phases if w.phase == PHASE_REDUCTION)
            return red.per_thread_instructions[0]

        assert master_red(8) == pytest.approx(8 * master_red(1), rel=0.01)

    def test_bins_dial_the_overhead(self):
        # more bins = bigger x = heavier merge (the knob the extended
        # model's fored responds to)
        def red_instr(bins):
            ex = HistogramWorkload(n_items=4000, n_bins=bins).execute(4)
            red = next(w for w in ex.phases if w.phase == PHASE_REDUCTION)
            return red.per_thread_instructions[0]

        assert red_instr(4096) > 4 * red_instr(256)


class TestEndToEnd:
    def test_extracted_fored_larger_than_kmeans(self):
        """The whole point of the workload: the histogram's merge-dominated
        profile lands at a much higher reduction share than kmeans."""
        from repro.experiments.simsweep import simulate_breakdowns
        from repro.workloads.datasets import make_blobs
        from repro.workloads.instrument import extract_parameters
        from repro.workloads.kmeans import KMeansWorkload

        hist = HistogramWorkload(n_items=20000, n_bins=2048)
        km = KMeansWorkload(
            make_blobs(2000, 9, 8, seed=0), max_iterations=2, tolerance=1e-12
        )
        threads = (1, 2, 4, 8)
        ep_h = extract_parameters(
            simulate_breakdowns(hist, threads, n_cores=8, mem_scale=4), "hist"
        )
        ep_k = extract_parameters(
            simulate_breakdowns(km, threads, n_cores=8, mem_scale=4), "km"
        )
        assert ep_h.fred_share > ep_k.fred_share

    def test_validation(self):
        with pytest.raises(ValueError):
            HistogramWorkload(n_items=0)
        with pytest.raises(ValueError):
            HistogramWorkload(n_items=4).execute(8)
        with pytest.raises(ValueError):
            HistogramWorkload(reduction_strategy="magic")
