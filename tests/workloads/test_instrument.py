"""Unit tests for parameter extraction."""

import pytest

from repro.workloads.instrument import (
    ExtractedParams,
    PhaseBreakdown,
    extract_parameters,
    serial_growth_curve,
    speedup_curve,
)


def synthetic_breakdowns(
    total1=1_000_000.0, fcon=600.0, fcred=400.0, fored=0.7, alpha=1.0,
    ps=(1, 2, 4, 8, 16),
):
    """Breakdowns following the paper's model exactly: reduction(p) =
    fcred·(1 + fored·(p−1)^alpha), parallel scales linearly."""
    parallel1 = total1 - fcon - fcred
    out = {}
    for p in ps:
        red = fcred * (1 + fored * (p - 1) ** alpha)
        par = parallel1 / p
        out[p] = PhaseBreakdown(
            n_threads=p,
            total=par + fcon + red,
            init=fcon / 2,
            parallel=par,
            reduction=red,
            serial=fcon / 2,
        )
    return out


class TestExtraction:
    def test_recovers_exact_linear_parameters(self):
        b = synthetic_breakdowns(fored=0.72, alpha=1.0)
        ep = extract_parameters(b, "synthetic")
        assert ep.fored_rel == pytest.approx(0.72, rel=1e-6)
        assert ep.growth_alpha == pytest.approx(1.0, abs=1e-6)
        assert ep.fcon_share == pytest.approx(0.6, rel=1e-9)
        assert ep.fred_share == pytest.approx(0.4, rel=1e-9)
        assert ep.serial_pct == pytest.approx(0.1, rel=1e-9)

    def test_recovers_superlinear_alpha(self):
        b = synthetic_breakdowns(fored=1.5, alpha=1.3)
        ep = extract_parameters(b, "hoplike")
        assert ep.growth_alpha == pytest.approx(1.3, abs=0.01)
        assert ep.fored_rel == pytest.approx(1.5, rel=0.02)

    def test_flat_reduction_yields_zero_overhead(self):
        b = synthetic_breakdowns(fored=0.0)
        ep = extract_parameters(b, "flat")
        assert ep.fored_rel == 0.0

    def test_no_reduction_degenerates_gracefully(self):
        b = {
            p: PhaseBreakdown(
                n_threads=p, total=1000.0 / p + 10, init=5, parallel=1000.0 / p,
                reduction=0.0, serial=5,
            )
            for p in (1, 2, 4)
        }
        ep = extract_parameters(b, "amdahl")
        assert ep.fred_share == 0.0
        assert ep.fcon_share == 1.0

    def test_requires_single_core_point(self):
        b = synthetic_breakdowns(ps=(2, 4))
        with pytest.raises(ValueError):
            extract_parameters(b)

    def test_requires_multicore_point(self):
        b = synthetic_breakdowns(ps=(1,))
        with pytest.raises(ValueError):
            extract_parameters(b)

    def test_single_multicore_point_fits_linear(self):
        b = synthetic_breakdowns(fored=0.5, ps=(1, 4))
        ep = extract_parameters(b)
        assert ep.fored_rel == pytest.approx(0.5, rel=1e-6)
        assert ep.growth_alpha == 1.0

    def test_roundtrip_to_measured_params(self):
        ep = extract_parameters(synthetic_breakdowns(fored=0.72))
        mp = ep.to_measured_params()
        assert mp.fored_rel == pytest.approx(0.72, rel=1e-6)
        assert mp.fcon_share + mp.fred_share == pytest.approx(1.0)


class TestCurves:
    def test_serial_growth_normalised_to_one(self):
        b = synthetic_breakdowns()
        curve = serial_growth_curve(b)
        assert curve[1] == pytest.approx(1.0)
        assert curve[16] > curve[2] > 1.0

    def test_speedup_curve(self):
        b = synthetic_breakdowns()
        sp = speedup_curve(b)
        assert sp[1] == pytest.approx(1.0)
        assert sp[16] > sp[4] > 1.0
        assert sp[16] < 16.0  # growing serial section caps it

    def test_curves_require_base_point(self):
        b = synthetic_breakdowns(ps=(2, 4))
        with pytest.raises(ValueError):
            serial_growth_curve(b)
        with pytest.raises(ValueError):
            speedup_curve(b)


class TestPhaseBreakdownValidation:
    def test_rejects_negative_times(self):
        with pytest.raises(ValueError):
            PhaseBreakdown(
                n_threads=1, total=-1.0, init=0, parallel=0, reduction=0, serial=0
            )

    def test_rejects_zero_threads(self):
        with pytest.raises(ValueError):
            PhaseBreakdown(
                n_threads=0, total=1.0, init=0, parallel=1, reduction=0, serial=0
            )

    def test_serial_sections_sum(self):
        b = PhaseBreakdown(
            n_threads=2, total=100, init=3, parallel=90, reduction=5, serial=2
        )
        assert b.serial_sections == 10
        assert b.constant_serial == 5
