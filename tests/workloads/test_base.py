"""Direct unit tests for the workload base layer."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.workloads.base import (
    PHASE_PARALLEL,
    PHASE_REDUCTION,
    ClusteringWorkloadBase,
    PhaseWork,
    WorkloadExecution,
)


class TestPartition:
    def test_even_split(self):
        slices = ClusteringWorkloadBase.partition(100, 4)
        assert [s.stop - s.start for s in slices] == [25, 25, 25, 25]

    def test_remainder_goes_to_first_threads(self):
        slices = ClusteringWorkloadBase.partition(10, 3)
        assert [s.stop - s.start for s in slices] == [4, 3, 3]

    def test_contiguous_and_complete(self):
        slices = ClusteringWorkloadBase.partition(17, 5)
        assert slices[0].start == 0
        assert slices[-1].stop == 17
        for a, b in zip(slices, slices[1:]):
            assert a.stop == b.start

    @given(
        n=st.integers(min_value=0, max_value=10000),
        p=st.integers(min_value=1, max_value=64),
    )
    def test_partition_properties(self, n, p):
        slices = ClusteringWorkloadBase.partition(n, p)
        sizes = [s.stop - s.start for s in slices]
        assert len(slices) == p
        assert sum(sizes) == n
        assert max(sizes) - min(sizes) <= 1  # balanced

    def test_counts_match_partition(self):
        counts = ClusteringWorkloadBase.per_thread_counts(11, 4)
        assert list(counts) == [3, 3, 3, 2]

    def test_zero_threads_rejected(self):
        with pytest.raises(ValueError):
            ClusteringWorkloadBase.partition(10, 0)


class TestPhaseWork:
    def test_totals(self):
        w = PhaseWork(
            phase=PHASE_PARALLEL,
            per_thread_instructions=(10, 20),
            per_thread_reads=(1, 2),
            per_thread_writes=(3, 4),
        )
        assert w.total_instructions == 30
        assert w.total_memory_ops == 10
        assert w.n_threads == 2
        assert not w.is_serial()

    def test_reduction_is_serial_phase(self):
        w = PhaseWork(
            phase=PHASE_REDUCTION,
            per_thread_instructions=(10,),
            per_thread_reads=(0,),
            per_thread_writes=(0,),
        )
        assert w.is_serial()

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            PhaseWork(
                phase=PHASE_PARALLEL,
                per_thread_instructions=(1, 2),
                per_thread_reads=(1,),
                per_thread_writes=(1, 2),
            )

    def test_unknown_phase_rejected(self):
        with pytest.raises(ValueError):
            PhaseWork(
                phase="warmup",
                per_thread_instructions=(1,),
                per_thread_reads=(0,),
                per_thread_writes=(0,),
            )


class TestWorkloadExecution:
    def _work(self, phase, instr):
        return PhaseWork(
            phase=phase,
            per_thread_instructions=instr,
            per_thread_reads=tuple(0 for _ in instr),
            per_thread_writes=tuple(0 for _ in instr),
        )

    def test_add_checks_thread_count(self):
        ex = WorkloadExecution(workload="w", n_threads=2, n_iterations=1)
        with pytest.raises(ValueError):
            ex.add(self._work(PHASE_PARALLEL, (1, 2, 3)))

    def test_instructions_by_phase(self):
        ex = WorkloadExecution(workload="w", n_threads=2, n_iterations=1)
        ex.add(self._work(PHASE_PARALLEL, (100, 100)))
        ex.add(self._work(PHASE_REDUCTION, (50, 0)))
        ex.add(self._work(PHASE_PARALLEL, (10, 10)))
        by_phase = ex.instructions_by_phase()
        assert by_phase[PHASE_PARALLEL] == 220
        assert by_phase[PHASE_REDUCTION] == 50

    def test_serial_instruction_fraction(self):
        ex = WorkloadExecution(workload="w", n_threads=1, n_iterations=1)
        ex.add(self._work(PHASE_PARALLEL, (900,)))
        ex.add(self._work(PHASE_REDUCTION, (100,)))
        assert ex.serial_instruction_fraction() == pytest.approx(0.1)

    def test_empty_execution_fraction_zero(self):
        ex = WorkloadExecution(workload="w", n_threads=1, n_iterations=0)
        assert ex.serial_instruction_fraction() == 0.0
