"""Hypothesis property tests for trace generation: conservation laws."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simx.trace import Barrier, Compute, Load, Store
from repro.workloads.base import (
    PHASE_INIT,
    PHASE_PARALLEL,
    PHASE_REDUCTION,
    PHASE_SERIAL,
    PhaseWork,
    WorkloadExecution,
)
from repro.workloads.tracegen import TraceGenerator


@st.composite
def executions(draw):
    n_threads = draw(st.integers(min_value=1, max_value=6))
    n_phases = draw(st.integers(min_value=1, max_value=6))
    ex = WorkloadExecution(workload="synthetic", n_threads=n_threads, n_iterations=1)
    phases = [PHASE_INIT, PHASE_PARALLEL, PHASE_REDUCTION, PHASE_SERIAL]
    for _ in range(n_phases):
        phase = draw(st.sampled_from(phases))
        instr = tuple(
            draw(st.integers(min_value=0, max_value=5000)) for _ in range(n_threads)
        )
        reads = tuple(
            draw(st.integers(min_value=0, max_value=500)) for _ in range(n_threads)
        )
        writes = tuple(
            draw(st.integers(min_value=0, max_value=300)) for _ in range(n_threads)
        )
        shared = tuple(
            draw(st.integers(min_value=0, max_value=r)) for r in reads
        )
        ex.add(PhaseWork(
            phase=phase,
            per_thread_instructions=instr,
            per_thread_reads=reads,
            per_thread_writes=writes,
            shared_reads=shared,
        ))
    return ex


class TestConservation:
    @settings(max_examples=50, deadline=None)
    @given(ex=executions())
    def test_instructions_exactly_preserved(self, ex):
        prog = TraceGenerator().program(ex)
        emitted = sum(
            op.instructions
            for t in prog.threads for op in t.ops if isinstance(op, Compute)
        )
        expected = sum(w.total_instructions for w in ex.phases)
        assert emitted == expected

    @settings(max_examples=50, deadline=None)
    @given(ex=executions())
    def test_memory_ops_track_line_counts(self, ex):
        """Loads+stores per thread equal the line-granular totals of the
        accounting (elements / 8 per line, split private/shared)."""
        prog = TraceGenerator().program(ex)
        for tid, t in enumerate(prog.threads):
            emitted = sum(
                1 for op in t.ops if isinstance(op, (Load, Store))
            )
            expected = 0
            for w in ex.phases:
                reads = w.per_thread_reads[tid]
                shared = w.shared_reads[tid] if w.shared_reads else 0
                writes = w.per_thread_writes[tid]
                if (
                    w.per_thread_instructions[tid] == 0
                    and reads == 0 and writes == 0 and shared == 0
                ):
                    continue
                expected += math.ceil(max(0, reads - shared) * 8 / 64)
                expected += math.ceil(shared * 8 / 64)
                expected += math.ceil(writes * 8 / 64)
            assert emitted == expected, f"thread {tid}"

    @settings(max_examples=50, deadline=None)
    @given(ex=executions())
    def test_barrier_structure(self, ex):
        prog = TraceGenerator().program(ex)
        for t in prog.threads:
            barriers = [op.barrier_id for op in t.ops if isinstance(op, Barrier)]
            if ex.n_threads == 1:
                assert barriers == []
            else:
                assert barriers == list(range(len(ex.phases)))

    @settings(max_examples=25, deadline=None)
    @given(ex=executions())
    def test_generated_programs_always_run(self, ex):
        from repro.simx import Machine, MachineConfig

        prog = TraceGenerator(mem_scale=4).program(ex)
        res = Machine(MachineConfig.baseline(n_cores=ex.n_threads)).run(prog)
        assert res.total_cycles >= 0
