"""Smoke tests for the real-multiprocessing backend.

Wall-clock magnitudes are host-dependent, so nothing here asserts on
timing ratios — only that the backend runs, produces well-formed
breakdowns, and feeds the standard extraction pipeline.
"""

import pytest

from repro.hardware.executor import execute_workload, process_breakdown
from repro.workloads.datasets import make_blobs
from repro.workloads.instrument import serial_growth_curve
from repro.workloads.kmeans import KMeansWorkload


@pytest.fixture(scope="module")
def workload():
    return KMeansWorkload(make_blobs(1500, 6, 4, seed=3))


class TestProcessBackend:
    def test_breakdown_well_formed(self, workload):
        b = process_breakdown(workload, n_threads=2, iterations=2)
        assert b.n_threads == 2
        assert b.total > 0
        assert b.parallel > 0
        assert b.reduction >= 0
        assert b.total >= b.parallel

    def test_execute_workload_process_backend(self, workload):
        out = execute_workload(workload, (1, 2), backend="process")
        assert set(out) == {1, 2}
        # the curve machinery accepts the real timings
        curve = serial_growth_curve(out)
        assert curve[1] == pytest.approx(1.0)
        assert curve[2] > 0
