"""Unit tests for the hardware executor (model backend) and calibration."""

import pytest

from repro.hardware.calibration import compare_growth_curves
from repro.hardware.executor import execute_workload, model_breakdown
from repro.hardware.machine_model import XEON_E5520
from repro.workloads.datasets import make_blobs
from repro.workloads.instrument import extract_parameters, serial_growth_curve
from repro.workloads.kmeans import KMeansWorkload


@pytest.fixture(scope="module")
def workload():
    return KMeansWorkload(
        make_blobs(1200, 6, 4, seed=4), max_iterations=4, tolerance=1e-12
    )


@pytest.fixture(scope="module")
def breakdowns(workload):
    return execute_workload(workload, (1, 2, 4, 8), backend="model")


class TestModelBackend:
    def test_all_thread_counts_present(self, breakdowns):
        assert set(breakdowns) == {1, 2, 4, 8}

    def test_parallel_time_shrinks_with_threads(self, breakdowns):
        assert breakdowns[8].parallel < breakdowns[2].parallel < breakdowns[1].parallel

    def test_reduction_time_grows_with_threads(self, breakdowns):
        # the paper's core observation, on the hardware side
        assert breakdowns[8].reduction > breakdowns[2].reduction > breakdowns[1].reduction

    def test_serial_growth_curve_rises(self, breakdowns):
        curve = serial_growth_curve(breakdowns)
        assert curve[1] == pytest.approx(1.0)
        assert curve[8] > curve[2] > 1.0

    def test_extracted_parameters_sane(self, breakdowns):
        ep = extract_parameters(breakdowns, "kmeans-hw")
        assert 0 < ep.serial_pct < 5
        assert 0 < ep.fred_share < 1
        assert ep.fored_rel > 0

    def test_thread_count_beyond_machine_rejected(self, workload):
        with pytest.raises(ValueError):
            model_breakdown(workload, 16, XEON_E5520)

    def test_unknown_backend_rejected(self, workload):
        with pytest.raises(ValueError):
            execute_workload(workload, (1,), backend="gpu")


class TestCalibration:
    def test_identical_curves_correlate_perfectly(self):
        c = {1: 1.0, 2: 1.5, 4: 2.5, 8: 4.5}
        cmp_ = compare_growth_curves(c, dict(c))
        assert cmp_.correlation == pytest.approx(1.0)
        assert cmp_.max_relative_deviation == pytest.approx(0.0)
        assert cmp_.both_grow()

    def test_shape_agreement_detected(self):
        a = {1: 1.0, 2: 1.4, 4: 2.2, 8: 3.8}
        b = {1: 1.0, 2: 1.6, 4: 2.6, 8: 4.6}
        cmp_ = compare_growth_curves(a, b)
        assert cmp_.correlation > 0.99
        assert cmp_.both_grow()

    def test_common_core_counts_only(self):
        a = {1: 1.0, 2: 1.5, 16: 9.0}
        b = {1: 1.0, 2: 1.4, 8: 4.0}
        cmp_ = compare_growth_curves(a, b)
        assert cmp_.cores == (1, 2)

    def test_insufficient_overlap_raises(self):
        with pytest.raises(ValueError):
            compare_growth_curves({1: 1.0}, {1: 1.0, 2: 2.0})

    def test_simulator_and_hardware_model_agree_on_growth(self, workload, breakdowns):
        """Integration: Fig 2(b) vs Fig 2(c) — both environments show the
        same growing-serial-section shape."""
        from repro.simx import Machine, MachineConfig
        from repro.workloads.instrument import breakdown_from_simulation
        from repro.workloads.tracegen import program_from_execution

        sim = {}
        for p in (1, 2, 4, 8):
            prog = program_from_execution(workload.execute(p), mem_scale=4)
            res = Machine(MachineConfig.baseline(n_cores=8)).run(prog)
            sim[p] = breakdown_from_simulation(res)
        cmp_ = compare_growth_curves(
            serial_growth_curve(sim), serial_growth_curve(breakdowns)
        )
        assert cmp_.both_grow()
        assert cmp_.correlation > 0.95
