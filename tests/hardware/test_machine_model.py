"""Unit tests for the NUMA hardware machine model."""

import pytest

from repro.hardware.machine_model import XEON_E5520, HardwareMachineModel
from repro.workloads.base import PHASE_PARALLEL, PHASE_REDUCTION, PhaseWork


class TestTopology:
    def test_xeon_has_eight_cores(self):
        assert XEON_E5520.n_cores == 8

    def test_socket_packing(self):
        m = XEON_E5520
        assert [m.socket_of(t) for t in range(8)] == [0, 0, 0, 0, 1, 1, 1, 1]

    def test_validation(self):
        with pytest.raises(ValueError):
            HardwareMachineModel(n_sockets=0)
        with pytest.raises(ValueError):
            HardwareMachineModel(frequency_ghz=-1)


class TestTiming:
    def test_instruction_time(self):
        m = HardwareMachineModel(frequency_ghz=2.0, ipc=2.0)
        assert m.instruction_time_ns(4_000) == pytest.approx(1000.0)

    def test_remote_socket_access_costs_more(self):
        m = XEON_E5520
        # reader on socket 0 with 2 threads: the only other thread is local
        local_only = m.shared_access_ns(0, 2)
        # with 8 threads, 4 of 7 owners are on the other socket
        mixed = m.shared_access_ns(0, 8)
        assert mixed > local_only
        assert local_only == pytest.approx(m.local_c2c_ns)

    def test_single_thread_shared_access_is_private(self):
        assert XEON_E5520.shared_access_ns(0, 1) == XEON_E5520.private_access_ns

    def test_thread_time_charges_all_components(self):
        m = HardwareMachineModel()
        w = PhaseWork(
            phase=PHASE_REDUCTION,
            per_thread_instructions=(1000, 0),
            per_thread_reads=(100, 0),
            per_thread_writes=(10, 0),
            shared_reads=(50, 0),
        )
        t = m.thread_time_ns(w, 0)
        floor = m.instruction_time_ns(1000) + 60 * m.private_access_ns
        assert t > floor  # shared reads priced above private


class TestPhaseWallTime:
    def test_barrier_overhead_grows_with_threads(self):
        m = HardwareMachineModel()

        def wall(p):
            w = PhaseWork(
                phase=PHASE_PARALLEL,
                per_thread_instructions=tuple(1000 for _ in range(p)),
                per_thread_reads=tuple(0 for _ in range(p)),
                per_thread_writes=tuple(0 for _ in range(p)),
            )
            return m.phase_wall_time_ns(w)

        assert wall(8) > wall(2)  # same per-thread work, more barrier rounds

    def test_single_thread_no_barrier(self):
        m = HardwareMachineModel()
        w = PhaseWork(
            phase=PHASE_PARALLEL,
            per_thread_instructions=(4520,),
            per_thread_reads=(0,),
            per_thread_writes=(0,),
        )
        assert m.phase_wall_time_ns(w) == pytest.approx(m.instruction_time_ns(4520))

    def test_wall_time_is_slowest_thread(self):
        m = HardwareMachineModel()
        w = PhaseWork(
            phase=PHASE_PARALLEL,
            per_thread_instructions=(10_000, 100),
            per_thread_reads=(0, 0),
            per_thread_writes=(0, 0),
        )
        assert m.phase_wall_time_ns(w) >= m.instruction_time_ns(10_000)
