"""The injectors themselves: seeded, reproducible, correctly scoped."""

import os
import signal
import subprocess
import sys

import pytest

from repro.engine.chaos import (
    KILL_AT_SETTLE_ENV,
    Chaos,
    FlakyStore,
    corrupt_file,
    corrupt_store_entry,
    truncate_tail,
)
from repro.experiments.store import SweepStore


class TestChaosDeterminism:
    def test_same_seed_same_decisions(self):
        a, b = Chaos(seed=7), Chaos(seed=7)
        assert [a.settle_point(20) for _ in range(5)] == [
            b.settle_point(20) for _ in range(5)
        ]
        assert a.indices(10, 3) == b.indices(10, 3)
        assert a.pick("abcdef") == b.pick("abcdef")

    def test_different_seeds_diverge(self):
        points_a = [Chaos(seed=1).settle_point(1000) for _ in range(3)]
        points_b = [Chaos(seed=2).settle_point(1000) for _ in range(3)]
        assert points_a != points_b

    def test_settle_point_strictly_inside_run(self):
        chaos = Chaos(seed=3)
        for n in (2, 5, 50):
            for _ in range(20):
                assert 1 <= chaos.settle_point(n) < n
        assert chaos.settle_point(1) == 1


class TestFileCorruption:
    def test_truncate_cuts_interior(self, tmp_path):
        p = tmp_path / "f"
        p.write_bytes(b"x" * 100)
        corrupt_file(p, mode="truncate", seed=0)
        assert 0 < len(p.read_bytes()) < 100

    def test_garbage_keeps_length(self, tmp_path):
        p = tmp_path / "f"
        p.write_bytes(b"x" * 100)
        corrupt_file(p, mode="garbage", seed=0)
        data = p.read_bytes()
        assert len(data) == 100 and data != b"x" * 100

    def test_empty_mode(self, tmp_path):
        p = tmp_path / "f"
        p.write_bytes(b"x" * 100)
        corrupt_file(p, mode="empty")
        assert p.read_bytes() == b""

    def test_unknown_mode_rejected(self, tmp_path):
        p = tmp_path / "f"
        p.write_bytes(b"x")
        with pytest.raises(ValueError):
            corrupt_file(p, mode="set-on-fire")

    def test_corruption_is_seeded(self, tmp_path):
        a, b = tmp_path / "a", tmp_path / "b"
        a.write_bytes(b"x" * 100)
        b.write_bytes(b"x" * 100)
        corrupt_file(a, mode="garbage", seed=5)
        corrupt_file(b, mode="garbage", seed=5)
        assert a.read_bytes() == b.read_bytes()

    def test_truncate_tail(self, tmp_path):
        p = tmp_path / "f"
        p.write_bytes(b"0123456789")
        truncate_tail(p, nbytes=4)
        assert p.read_bytes() == b"012345"

    def test_corrupt_store_entry_makes_a_miss(self, tmp_path):
        store = SweepStore(tmp_path)
        store.put("deadbeef", {"value": 1})
        assert store.get("deadbeef") == {"value": 1}
        corrupt_store_entry(store, "deadbeef", mode="garbage", seed=0)
        assert store.get("deadbeef") is None  # corrupt reads as a miss


class TestFlakyStore:
    def test_drops_chosen_puts(self, tmp_path):
        flaky = FlakyStore(SweepStore(tmp_path), fail_puts={1})
        assert flaky.put("k0", {"v": 0}) is not None
        assert flaky.put("k1", {"v": 1}) is None  # dropped
        assert flaky.put("k2", {"v": 2}) is not None
        assert flaky.puts == 3 and flaky.dropped == 1
        assert flaky.get("k0") == {"v": 0}
        assert flaky.get("k1") is None

    def test_fail_all(self, tmp_path):
        flaky = FlakyStore(SweepStore(tmp_path), fail_all=True)
        for i in range(4):
            assert flaky.put(f"k{i}", {"v": i}) is None
        assert flaky.dropped == 4
        assert len(flaky) == 0

    def test_reads_and_keys_delegate(self, tmp_path):
        inner = SweepStore(tmp_path)
        flaky = FlakyStore(inner)
        desc = {"a": 1}
        assert flaky.key_for(desc) == inner.key_for(desc)
        assert flaky.path_for("k") == inner.path_for("k")
        assert flaky.root == inner.root


class TestKillAtSettle:
    def test_noop_without_env(self, monkeypatch):
        from repro.engine.chaos import maybe_kill_on_settle

        monkeypatch.delenv(KILL_AT_SETTLE_ENV, raising=False)
        maybe_kill_on_settle(100)  # must not raise or kill

    def test_noop_below_threshold_or_garbage(self, monkeypatch):
        from repro.engine.chaos import maybe_kill_on_settle

        monkeypatch.setenv(KILL_AT_SETTLE_ENV, "5")
        maybe_kill_on_settle(4)
        monkeypatch.setenv(KILL_AT_SETTLE_ENV, "not-a-number")
        maybe_kill_on_settle(100)
        monkeypatch.setenv(KILL_AT_SETTLE_ENV, "0")
        maybe_kill_on_settle(100)

    def test_kills_process_at_threshold(self):
        code = (
            "from repro.engine.chaos import maybe_kill_on_settle\n"
            "maybe_kill_on_settle(3)\n"
            "print('survived')\n"
        )
        env = dict(os.environ, **{KILL_AT_SETTLE_ENV: "3"})
        proc = subprocess.run([sys.executable, "-c", code],
                              capture_output=True, env=env)
        assert proc.returncode == -signal.SIGKILL
        assert b"survived" not in proc.stdout
