"""Distributed execution under chaos, end to end through the CLI.

The acceptance property for the remote backend: a table2 run executed on
two ``repro worker`` processes over localhost sockets is **byte-identical**
to the serial run — and stays byte-identical when a worker is SIGKILLed
mid-run *and* the coordinator itself is SIGKILLed mid-run and resumed
with ``--resume``.

Every process here is a real ``python -m repro`` subprocess, isolated
via ``REPRO_RUNS_DIR`` / ``REPRO_SWEEP_CACHE_DIR``.  Each scenario gets
its own sweep-cache directory: a shared cache would satisfy every unit
locally and nothing would ever reach a worker, making the distribution
assertions vacuous — which is why the tests also assert, from the event
log, that remote workers really executed units.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.engine.chaos import KILL_AT_SETTLE_ENV

REPO_SRC = Path(__file__).resolve().parents[2] / "src"

#: table2 at this scale/threads declares 6 sweep units (3 workloads x 2)
TABLE2_ARGS = ["run", "table2", "--scale", "0.03", "--threads", "1,2"]
KILL_AT = 3  # strictly inside the 6-unit run


def _free_port() -> int:
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


def _env(workdir, sweeps, *, kill_at=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_SRC) + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_RUNS_DIR"] = str(workdir / "runs")
    env["REPRO_SWEEP_CACHE_DIR"] = str(workdir / sweeps)
    env.pop(KILL_AT_SETTLE_ENV, None)
    if kill_at is not None:
        env[KILL_AT_SETTLE_ENV] = str(kill_at)
    return env


def _spawn(args, workdir, sweeps, *, kill_at=None):
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *args],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        env=_env(workdir, sweeps, kill_at=kill_at), cwd=workdir,
    )


def _spawn_worker(port, workdir, sweeps, name, retry_for=120.0):
    return _spawn(["worker", "--connect", f"127.0.0.1:{port}",
                   "--name", name, "--retry-for", str(retry_for)],
                  workdir, sweeps)


def _reap(*procs):
    for p in procs:
        if p.poll() is None:
            p.terminate()
    for p in procs:
        try:
            p.communicate(timeout=30)
        except subprocess.TimeoutExpired:
            p.kill()
            p.communicate()


def _events(path):
    return [json.loads(line) for line in Path(path).read_text().splitlines()]


def _remote_workers(events):
    return {e["worker"] for e in events
            if e["kind"] == "unit_done" and "worker" in e}


@pytest.fixture(scope="module")
def workdir(tmp_path_factory):
    return tmp_path_factory.mktemp("remote-chaos")


@pytest.fixture(scope="module")
def control_report(workdir):
    """The serial, uninterrupted run's table2 report bytes."""
    proc = _spawn([*TABLE2_ARGS, "--json", "ctrl"], workdir, "ctrl-sweeps")
    out, err = proc.communicate(timeout=300)
    assert proc.returncode in (0, 1), err  # 1 = comparisons off at tiny scale
    return (workdir / "ctrl" / "table2.json").read_bytes()


class TestDistributedByteIdentity:
    def test_two_workers_reproduce_the_serial_report(self, workdir,
                                                     control_report):
        port = _free_port()
        coordinator = _spawn(
            [*TABLE2_ARGS, "--json", "dist", "--listen", f"127.0.0.1:{port}",
             "--worker-timeout", "120", "--event-log", "events-dist.jsonl"],
            workdir, "dist-sweeps")
        workers = [_spawn_worker(port, workdir, "dist-sweeps", f"w{i}")
                   for i in (1, 2)]
        try:
            out, err = coordinator.communicate(timeout=300)
            assert coordinator.returncode in (0, 1), err
        finally:
            _reap(coordinator, *workers)
        assert (workdir / "dist" / "table2.json").read_bytes() == control_report
        # the identity must not be vacuous: remote workers did the work
        # (a serial_fallback here would mean nothing was distributed)
        done_by = _remote_workers(_events(workdir / "events-dist.jsonl"))
        assert done_by, "no unit was executed by a remote worker"
        assert done_by <= {"w1", "w2"}


class TestChaosUnderDistribution:
    def test_worker_and_coordinator_sigkill_then_resume(self, workdir,
                                                        control_report):
        """SIGKILL one worker mid-run, let the coordinator die by chaos
        SIGKILL at the third journal settle, resume on the same port with
        the surviving worker — the report must still be byte-identical."""
        port = _free_port()
        journal = workdir / "runs" / "dist2" / "journal.jsonl"
        coordinator = _spawn(
            [*TABLE2_ARGS, "--run-id", "dist2", "--listen",
             f"127.0.0.1:{port}", "--worker-timeout", "120"],
            workdir, "dist2-sweeps", kill_at=KILL_AT)
        w1 = _spawn_worker(port, workdir, "dist2-sweeps", "w1")
        w2 = _spawn_worker(port, workdir, "dist2-sweeps", "w2")
        resumed = None
        try:
            # SIGKILL w1 as soon as the first unit settles (w1 may well be
            # holding a lease); its work must be re-issued to w2
            deadline = time.monotonic() + 240
            while time.monotonic() < deadline:
                if journal.exists() and len(journal.read_text().splitlines()) > 1:
                    break
                if coordinator.poll() is not None:
                    break
                time.sleep(0.05)
            if w1.poll() is None:
                w1.send_signal(signal.SIGKILL)
            out, err = coordinator.communicate(timeout=300)
            assert coordinator.returncode == -signal.SIGKILL, err
            # the journal holds exactly the settled prefix, durably
            lines = journal.read_text().splitlines()
            assert len(lines) == KILL_AT + 1  # header + one per settle

            resumed = _spawn(
                ["run", "--resume", "dist2", "--json", "res", "--listen",
                 f"127.0.0.1:{port}", "--worker-timeout", "120",
                 "--event-log", "events-res.jsonl"],
                workdir, "dist2-sweeps")
            out, err = resumed.communicate(timeout=300)
            assert resumed.returncode in (0, 1), err
        finally:
            _reap(coordinator, w1, w2, *([resumed] if resumed else []))
        assert (workdir / "res" / "table2.json").read_bytes() == control_report
        events = _events(workdir / "events-res.jsonl")
        # the resume replayed the journaled prefix instead of re-running it
        assert sum(1 for e in events if e["kind"] == "journal_hit") >= KILL_AT
        # and the remainder genuinely ran on the surviving remote worker
        assert _remote_workers(events) == {"w2"}
