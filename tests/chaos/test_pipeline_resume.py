"""Crash-safety beyond the classic sweeps: a *pipeline-declared*
experiment (ablation-machine — five machine-model variants, each a
config-bearing sweep unit built via the spec's declare stage) SIGKILLed
at a chaos-chosen settle point and resumed with ``--resume`` reproduces
the uninterrupted report byte-for-byte, standing on the journal alone.
"""

import json
import shutil
import signal

import pytest

from repro.engine.chaos import Chaos
from tests.chaos.test_interrupt_resume import run_cli

#: ablation-machine at this scale/threads declares 10 units
#: (5 machine-config variants x 2 thread counts)
MACHINE_ARGS = ["run", "ablation-machine", "--scale", "0.03",
                "--threads", "1,2"]
N_UNITS = 10

SEED = 2027
KILL_AT = Chaos(seed=SEED).settle_point(N_UNITS)


@pytest.fixture(scope="module")
def workdir(tmp_path_factory):
    return tmp_path_factory.mktemp("chaos-pipeline")


@pytest.fixture(scope="module")
def control_report(workdir):
    """The uninterrupted run's report (its own sweep cache)."""
    proc = run_cli([*MACHINE_ARGS, "--json", "ctrl"], workdir,
                   sweeps="ctrl-sweeps")
    assert proc.returncode in (0, 1), proc.stderr
    return (workdir / "ctrl" / "ablation-machine.json").read_bytes()


class TestPipelineSigkillThenResume:
    @pytest.fixture(scope="class")
    def killed(self, workdir):
        proc = run_cli([*MACHINE_ARGS, "--run-id", "pm1"], workdir,
                       kill_at=KILL_AT)
        return proc

    def test_kill_was_delivered(self, killed):
        assert killed.returncode == -signal.SIGKILL

    def test_journal_holds_exactly_the_settled_prefix(self, workdir, killed):
        lines = (workdir / "runs" / "pm1" / "journal.jsonl").read_text().splitlines()
        assert len(lines) == KILL_AT + 1  # header + settled records

    def test_resume_is_byte_identical(self, workdir, killed, control_report):
        # wipe the sweep store: resume must stand on the journal alone
        shutil.rmtree(workdir / "sweeps", ignore_errors=True)
        proc = run_cli(["run", "--resume", "pm1", "--json", "res"], workdir)
        assert proc.returncode in (0, 1), proc.stderr
        resumed = (workdir / "res" / "ablation-machine.json").read_bytes()
        assert resumed == control_report
        events = [json.loads(l) for l in
                  (workdir / "runs" / "pm1" / "events.jsonl").open()]
        hits = sum(1 for e in events if e["kind"] == "journal_hit")
        assert hits >= KILL_AT
