"""The headline crash-safety property, end to end through the CLI:

a run SIGKILLed at a chaos-chosen settle point, resumed with
``--resume``, produces **byte-identical** report JSON to an
uninterrupted run — even when every sweep-cache write of the first
attempt is wiped, and even when the journal's tail was torn by the
crash.

Each scenario is a real ``python -m repro`` subprocess (the kill is a
real ``SIGKILL`` delivered mid-append by
``REPRO_CHAOS_KILL_AT_SETTLE``), isolated via ``REPRO_RUNS_DIR`` /
``REPRO_SWEEP_CACHE_DIR``.  All chaos decisions come from a fixed seed.
"""

import json
import os
import shutil
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.engine.chaos import KILL_AT_SETTLE_ENV, Chaos, truncate_tail

REPO_SRC = Path(__file__).resolve().parents[2] / "src"

#: table2 at this scale/threads declares 6 sweep units (3 workloads x 2)
TABLE2_ARGS = ["run", "table2", "--scale", "0.03", "--threads", "1,2"]
N_UNITS = 6

SEED = 2026
KILL_AT = Chaos(seed=SEED).settle_point(N_UNITS)


@pytest.fixture(scope="module")
def workdir(tmp_path_factory):
    return tmp_path_factory.mktemp("chaos-cli")


def run_cli(args, workdir, *, kill_at=None, sweeps="sweeps"):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_SRC) + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_RUNS_DIR"] = str(workdir / "runs")
    env["REPRO_SWEEP_CACHE_DIR"] = str(workdir / sweeps)
    env.pop(KILL_AT_SETTLE_ENV, None)
    if kill_at is not None:
        env[KILL_AT_SETTLE_ENV] = str(kill_at)
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, env=env, cwd=workdir, timeout=300,
    )


@pytest.fixture(scope="module")
def control_report(workdir):
    """The uninterrupted run's table2 report (its own sweep cache)."""
    proc = run_cli([*TABLE2_ARGS, "--json", "ctrl"], workdir, sweeps="ctrl-sweeps")
    assert proc.returncode in (0, 1), proc.stderr  # 1 = comparisons off at tiny scale
    return (workdir / "ctrl" / "table2.json").read_bytes()


class TestSigkillThenResume:
    @pytest.fixture(scope="class")
    def killed(self, workdir):
        """One run SIGKILLed mid-append at the chaos-chosen settle."""
        proc = run_cli([*TABLE2_ARGS, "--run-id", "int1"], workdir,
                       kill_at=KILL_AT)
        return proc

    def test_kill_was_delivered(self, killed):
        assert killed.returncode == -signal.SIGKILL

    def test_journal_holds_exactly_the_settled_prefix(self, workdir, killed):
        lines = (workdir / "runs" / "int1" / "journal.jsonl").read_text().splitlines()
        # header + one record per settle up to (and including) the fatal one
        assert len(lines) == KILL_AT + 1
        assert "h" in json.loads(lines[0])

    def test_manifest_written_before_the_crash(self, workdir, killed):
        manifest = json.loads(
            (workdir / "runs" / "int1" / "manifest.json").read_text())
        assert manifest["experiment"] == "table2"
        assert manifest["options"]["scale"] == 0.03
        assert manifest["options"]["thread_counts"] == [1, 2]

    def test_resume_is_byte_identical(self, workdir, killed, control_report):
        # wipe the sweep store: resume must stand on the journal alone
        shutil.rmtree(workdir / "sweeps", ignore_errors=True)
        proc = run_cli(["run", "--resume", "int1", "--json", "res1"], workdir)
        assert proc.returncode in (0, 1), proc.stderr
        resumed = (workdir / "res1" / "table2.json").read_bytes()
        assert resumed == control_report
        # and the journal genuinely supplied the settled prefix
        events = [json.loads(l) for l in
                  (workdir / "runs" / "int1" / "events.jsonl").open()]
        hits = sum(1 for e in events if e["kind"] == "journal_hit")
        assert hits >= KILL_AT


class TestTornJournalResume:
    def test_resume_after_tail_corruption_still_byte_identical(
            self, workdir, control_report):
        proc = run_cli([*TABLE2_ARGS, "--run-id", "int2"], workdir,
                       kill_at=KILL_AT, sweeps="sweeps2")
        assert proc.returncode == -signal.SIGKILL
        journal = workdir / "runs" / "int2" / "journal.jsonl"
        truncate_tail(journal, nbytes=7)  # tear the last record mid-line
        shutil.rmtree(workdir / "sweeps2", ignore_errors=True)
        proc = run_cli(["run", "--resume", "int2", "--json", "res2"], workdir,
                       sweeps="sweeps2")
        assert proc.returncode in (0, 1), proc.stderr
        resumed = (workdir / "res2" / "table2.json").read_bytes()
        assert resumed == control_report


class TestResumeNoop:
    def test_fig4_resume_reproduces_the_completed_run(self, workdir):
        """fig4 declares one model-eval-grid unit; --resume of a *finished*
        run replays it from the journal and must reproduce the same bytes."""
        first = run_cli(["run", "fig4", "--run-id", "f1", "--json", "out-a"],
                        workdir)
        assert first.returncode in (0, 1), first.stderr
        again = run_cli(["run", "--resume", "f1", "--json", "out-b"], workdir)
        assert again.returncode == first.returncode, again.stderr
        assert ((workdir / "out-a" / "fig4.json").read_bytes()
                == (workdir / "out-b" / "fig4.json").read_bytes())

    def test_resume_unknown_run_errors_with_hint(self, workdir):
        """Resuming a run that does not exist under the resolved runs root
        must refuse loudly (it used to silently open a fresh journal)."""
        proc = run_cli(["run", "--resume", "never-ran"], workdir)
        assert proc.returncode == 2
        assert "no run directory" in proc.stderr
        assert "REPRO_RUNS_DIR" in proc.stderr  # the how-to-fix-it hint

    def test_manifest_records_the_absolute_runs_root(self, workdir):
        manifest = json.loads(
            (workdir / "runs" / "f1" / "manifest.json").read_text())
        assert Path(manifest["runs_root"]).is_absolute()
        assert Path(manifest["runs_root"]) == (workdir / "runs").resolve()
