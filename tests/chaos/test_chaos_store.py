"""Store-level fault injection through a real engine session.

Two failure modes the crash-safety contract covers:

* a **corrupted** sweep-store entry must read as a miss and cost exactly
  one re-execution — never an error, never a poisoned result;
* **lost cache writes** (FlakyStore dropping every put) must not matter
  for resumability: the write-ahead journal alone carries the run.
"""

from repro.engine.chaos import Chaos, FlakyStore, corrupt_store_entry
from repro.engine.journal import RunJournal
from repro.engine.scheduler import EngineSession
from repro.engine.units import WorkUnit, register_executor
from repro.experiments.store import SweepStore

EXECUTIONS = []


def _tracked(spec):
    EXECUTIONS.append(spec[0])
    return {"value": spec[0] * 10}


register_executor("cs-tracked", _tracked)


def units(n):
    return [
        WorkUnit(kind="cs-tracked", key=f"cs-k{i}", spec=(i,), label=f"cs-k{i}")
        for i in range(n)
    ]


def store_hooks(store):
    """cache_get/cache_put wired to a (possibly flaky) sweep store."""
    return {
        "cache_get": lambda u: store.get(u.key),
        "cache_put": lambda u, p: store.put(u.key, p),
    }


class TestCorruptedStoreEntry:
    def test_only_the_corrupt_unit_reexecutes(self, tmp_path):
        store = SweepStore(tmp_path / "sweeps")
        batch = units(5)
        EXECUTIONS.clear()
        with EngineSession(1) as warm:
            warm.run_units(batch, **store_hooks(store))
        assert len(EXECUTIONS) == 5

        victim = Chaos(seed=42).pick([u.key for u in batch])
        corrupt_store_entry(store, victim, mode="garbage", seed=42)

        EXECUTIONS.clear()
        with EngineSession(1) as rerun:
            results = rerun.run_units(batch, **store_hooks(store))
        assert len(EXECUTIONS) == 1  # exactly the corrupted entry
        assert rerun.stats["cache_hits"] == 4
        assert results == {f"cs-k{i}": {"value": i * 10} for i in range(5)}

    def test_truncated_entry_also_reads_as_miss(self, tmp_path):
        store = SweepStore(tmp_path / "sweeps")
        batch = units(3)
        with EngineSession(1) as warm:
            warm.run_units(batch, **store_hooks(store))
        corrupt_store_entry(store, batch[0].key, mode="truncate", seed=1)
        EXECUTIONS.clear()
        with EngineSession(1) as rerun:
            results = rerun.run_units(batch, **store_hooks(store))
        assert EXECUTIONS == [0]
        assert results[batch[0].key] == {"value": 0}


class TestLostCacheWrites:
    def test_journal_alone_makes_the_run_resumable(self, tmp_path):
        """Every cache write fails (disk full); the journal still has it."""
        flaky = FlakyStore(SweepStore(tmp_path / "sweeps"), fail_all=True)
        batch = units(4)
        EXECUTIONS.clear()
        journal = RunJournal(tmp_path / "j.jsonl", run_id="r")
        with EngineSession(1, journal=journal, run_id="r") as first:
            first.run_units(batch, **store_hooks(flaky))
        assert len(EXECUTIONS) == 4
        assert flaky.dropped >= 4  # the store kept nothing
        assert len(flaky) == 0

        EXECUTIONS.clear()
        journal2 = RunJournal(tmp_path / "j.jsonl", run_id="r")
        with EngineSession(1, journal=journal2, run_id="r") as resumed:
            results = resumed.run_units(batch, **store_hooks(flaky))
        assert EXECUTIONS == []  # nothing re-executed
        assert resumed.stats["journal_hits"] == 4
        assert results == {f"cs-k{i}": {"value": i * 10} for i in range(4)}

    def test_some_writes_lost_costs_nothing_on_resume(self, tmp_path):
        """Deterministically drop a seeded subset of puts; the journal
        still covers every settled unit."""
        chaos = Chaos(seed=9)
        flaky = FlakyStore(SweepStore(tmp_path / "sweeps"),
                           fail_puts=chaos.indices(6, 3))
        batch = units(6)
        journal = RunJournal(tmp_path / "j.jsonl", run_id="r")
        EXECUTIONS.clear()
        with EngineSession(1, journal=journal, run_id="r") as first:
            first.run_units(batch, **store_hooks(flaky))
        assert flaky.dropped == 3
        EXECUTIONS.clear()
        journal2 = RunJournal(tmp_path / "j.jsonl", run_id="r")
        with EngineSession(1, journal=journal2, run_id="r") as resumed:
            resumed.run_units(batch, **store_hooks(flaky))
        assert EXECUTIONS == []
        assert resumed.stats["journal_hits"] == 6
