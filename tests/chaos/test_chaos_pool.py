"""Pool-level fault injection: killed and hung workers mid-run.

Exercises the chaos executors (registered at import of
``repro.engine.chaos``) against a real :class:`WorkerPool`: the pool
must retry the unit on a fresh worker and still deliver every result.
Fork-only, like the other pool tests — the chaos executors are
registered in the parent and inherited by forked workers.
"""

import multiprocessing as mp

import pytest

from repro.engine.chaos import HANG_ONCE, KILL_ONCE
from repro.engine.pool import WorkerPool
from repro.engine.units import WorkUnit, register_executor

fork_only = pytest.mark.skipif(
    "fork" not in mp.get_all_start_methods(),
    reason="pool tests rely on fork-inherited executors",
)


def _echo(spec):
    return {"value": spec[0] * 2}


register_executor("ch-echo", _echo)


@fork_only
class TestWorkerKill:
    def test_sigkilled_worker_retries_and_completes(self, tmp_path):
        unit = WorkUnit(kind=KILL_ONCE, key="victim",
                        spec=(str(tmp_path / "marker"), 7), label="victim")
        with WorkerPool(2, unit_timeout=60.0, max_retries=2,
                        backoff=0.01) as pool:
            results = pool.run([unit])
        assert results == {"victim": {"value": 7}}
        assert pool.events.count("worker_crashed") >= 1
        assert pool.events.count("worker_restarted") >= 1
        assert pool.events.count("unit_retry") >= 1

    def test_killed_worker_loses_only_its_unit(self, tmp_path):
        victim = WorkUnit(kind=KILL_ONCE, key="victim",
                          spec=(str(tmp_path / "marker"), 1), label="victim")
        bystanders = [
            WorkUnit(kind="ch-echo", key=f"b{i}", spec=(i,), label=f"b{i}")
            for i in range(6)
        ]
        with WorkerPool(3, unit_timeout=60.0, max_retries=2,
                        backoff=0.01) as pool:
            results = pool.run([victim] + bystanders)
        assert results["victim"] == {"value": 1}
        for i in range(6):
            assert results[f"b{i}"] == {"value": 2 * i}


@fork_only
class TestUnitHang:
    def test_hung_unit_times_out_then_succeeds(self, tmp_path):
        unit = WorkUnit(kind=HANG_ONCE, key="sloth",
                        spec=(str(tmp_path / "marker"), 60.0, 5), label="sloth")
        with WorkerPool(1, unit_timeout=1.0, max_retries=2,
                        backoff=0.01) as pool:
            results = pool.run([unit])
        assert results == {"sloth": {"value": 5}}
        assert pool.events.count("unit_timeout") >= 1
        assert pool.events.count("worker_restarted") >= 1
