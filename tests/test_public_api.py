"""Public-API consistency: __all__ names exist, modules import cleanly."""

import importlib
import pkgutil

import pytest

import repro

MODULES = [
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if name != "repro.__main__"  # importing it runs the CLI
]


class TestImports:
    @pytest.mark.parametrize("module_name", MODULES)
    def test_every_module_imports(self, module_name):
        importlib.import_module(module_name)

    @pytest.mark.parametrize("module_name", MODULES)
    def test_all_names_resolve(self, module_name):
        mod = importlib.import_module(module_name)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module_name}.__all__ lists missing {name!r}"

    def test_top_level_all(self):
        for name in repro.__all__:
            assert hasattr(repro, name)

    def test_version_string(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(p.isdigit() for p in parts)


class TestRegistryConsistency:
    def test_every_experiment_callable_and_documented(self):
        from repro.experiments.registry import EXPERIMENTS

        for eid, fn in EXPERIMENTS.items():
            assert callable(fn), eid
            assert fn.__doc__, f"experiment {eid} driver lacks a docstring"

    def test_make_experiments_md_covers_registry(self):
        """Every registered experiment (except the roll-up aliases) is
        tracked by the EXPERIMENTS.md generator."""
        import re
        from pathlib import Path

        from repro.experiments.registry import EXPERIMENTS

        script = Path(__file__).resolve().parent.parent / "scripts" / "make_experiments_md.py"
        tracked = set(re.findall(r'\("([a-z0-9-]+)",\s*"', script.read_text()))
        rollups = {"ablations"}  # aggregates the ablation-* ids
        missing = set(EXPERIMENTS) - tracked - rollups
        assert not missing, f"experiments not tracked by make_experiments_md: {missing}"
