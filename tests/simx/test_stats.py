"""Direct unit tests for per-phase cycle accounting."""

from repro.simx.stats import PhaseStats


class TestBusyAndWait:
    def test_accumulates_per_thread(self):
        s = PhaseStats()
        s.add_busy("p", 0, 100)
        s.add_busy("p", 0, 50)
        s.add_busy("p", 1, 30)
        assert s.busy_cycles("p", 0) == 150
        assert s.busy_cycles("p", 1) == 30
        assert s.busy_cycles("p") == 180

    def test_zero_cycles_not_recorded(self):
        s = PhaseStats()
        s.add_busy("p", 0, 0)
        s.add_wait("p", 0, 0)
        assert "p" not in s.busy
        assert "p" not in s.wait

    def test_wait_separate_from_busy(self):
        s = PhaseStats()
        s.add_busy("p", 0, 10)
        s.add_wait("p", 0, 99)
        assert s.busy_cycles("p") == 10
        assert s.wait_cycles("p") == 99

    def test_unknown_phase_is_zero(self):
        s = PhaseStats()
        assert s.busy_cycles("nothing") == 0
        assert s.wait_cycles("nothing", 3) == 0


class TestSpans:
    def test_span_covers_begin_to_end(self):
        s = PhaseStats()
        s.note_begin("p", 100)
        s.note_end("p", 500)
        assert s.span_cycles("p") == 400

    def test_span_widens_across_threads(self):
        s = PhaseStats()
        s.note_begin("p", 200)
        s.note_begin("p", 100)   # earlier thread
        s.note_end("p", 350)
        s.note_end("p", 400)
        assert s.span_cycles("p") == 300

    def test_missing_phase_span_zero(self):
        assert PhaseStats().span_cycles("x") == 0


class TestQueries:
    def test_phases_sorted_union(self):
        s = PhaseStats()
        s.add_busy("b", 0, 1)
        s.add_wait("a", 0, 1)
        s.note_begin("c", 0)
        assert s.phases() == ["a", "b", "c"]

    def test_merge_thread_busy_is_a_copy(self):
        s = PhaseStats()
        s.add_busy("p", 0, 5)
        copy = s.merge_thread_busy("p")
        copy[0] = 999
        assert s.busy_cycles("p", 0) == 5
