"""Unit + property tests for the MESI coherence controller."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simx.cache import MesiState
from repro.simx.coherence import CoherenceController
from repro.simx.config import CacheConfig, MachineConfig


def small_machine(n_cores: int = 4) -> MachineConfig:
    """Tiny caches so evictions and conflicts actually happen in tests."""
    return MachineConfig(
        n_cores=n_cores,
        l1d=CacheConfig(size=8 * 64, ways=2),   # 8 lines
        l1i=CacheConfig(size=8 * 64, ways=2),
        l2=CacheConfig(size=64 * 64, ways=4, hit_latency=12),
    )


def controller(n_cores: int = 4) -> CoherenceController:
    return CoherenceController(small_machine(n_cores))


class TestReadPath:
    def test_cold_read_goes_to_memory(self):
        c = controller()
        latency = c.read(0, 0)
        assert c.stats.memory_fetches == 1
        assert latency >= c.config.memory_latency

    def test_second_read_hits_l1(self):
        c = controller()
        c.read(0, 0)
        latency = c.read(0, 0)
        assert latency == c.config.l1d.hit_latency
        assert c.stats.l1_hits == 1

    def test_first_reader_gets_exclusive(self):
        c = controller()
        c.read(0, 0)
        assert c.l1s[0].lookup(0).state is MesiState.EXCLUSIVE

    def test_second_reader_shares(self):
        c = controller()
        c.read(0, 0)
        c.read(1, 0)
        assert c.l1s[0].lookup(0).state is MesiState.SHARED
        assert c.l1s[1].lookup(0).state is MesiState.SHARED

    def test_read_of_remote_modified_triggers_transfer(self):
        c = controller()
        c.write(0, 0)
        latency = c.read(1, 0)
        assert c.stats.cache_to_cache == 1
        assert c.stats.writebacks >= 1
        assert latency > c.config.l1d.hit_latency + c.config.l2.hit_latency
        assert c.l1s[0].lookup(0).state is MesiState.SHARED
        assert c.l1s[1].lookup(0).state is MesiState.SHARED

    def test_same_line_different_bytes(self):
        c = controller()
        c.read(0, 0)
        latency = c.read(0, 63)  # same 64-byte line
        assert latency == c.config.l1d.hit_latency


class TestWritePath:
    def test_cold_write_installs_modified(self):
        c = controller()
        c.write(0, 0)
        assert c.l1s[0].lookup(0).state is MesiState.MODIFIED

    def test_write_hit_on_modified_is_cheap(self):
        c = controller()
        c.write(0, 0)
        assert c.write(0, 0) == c.config.l1d.hit_latency

    def test_silent_upgrade_from_exclusive(self):
        c = controller()
        c.read(0, 0)  # E
        latency = c.write(0, 0)
        assert latency == c.config.l1d.hit_latency
        assert c.stats.upgrades == 0
        assert c.l1s[0].lookup(0).state is MesiState.MODIFIED

    def test_upgrade_from_shared_invalidates_others(self):
        c = controller()
        c.read(0, 0)
        c.read(1, 0)
        c.read(2, 0)
        latency = c.write(0, 0)
        assert c.stats.upgrades == 1
        assert c.stats.invalidations == 2
        assert latency >= c.config.l1d.hit_latency + 2 * c.config.invalidation_latency
        assert c.l1s[1].lookup(0) is None
        assert c.l1s[2].lookup(0) is None

    def test_write_miss_steals_modified_line(self):
        c = controller()
        c.write(0, 0)
        c.write(1, 0)
        assert c.stats.cache_to_cache == 1
        assert c.l1s[0].lookup(0) is None
        assert c.l1s[1].lookup(0).state is MesiState.MODIFIED

    def test_ping_pong_is_expensive(self):
        # false-sharing-style ping-pong costs far more than local writes
        c = controller()
        local = sum(c.write(0, 64 * 100) for _ in range(10))
        c2 = controller()
        pingpong = sum(c2.write(i % 2, 0) for i in range(10))
        assert pingpong > local


class TestEvictions:
    def test_dirty_eviction_writes_back(self):
        c = controller()
        # fill one set (2 ways, set = line % 8): lines 0, 8, 16 share set 0
        c.write(0, 0 * 64)
        c.write(0, 8 * 64)
        c.write(0, 16 * 64)  # evicts line 0
        assert c.stats.writebacks >= 1
        assert c.l2.contains(0) or c.directory[0].in_l2

    def test_evicted_line_refetch_hits_l2(self):
        c = controller()
        c.write(0, 0 * 64)
        c.write(0, 8 * 64)
        c.write(0, 16 * 64)
        before = c.stats.memory_fetches
        c.read(0, 0 * 64)  # comes back from L2, not memory
        assert c.stats.memory_fetches == before


class TestInvariants:
    def test_invariants_after_simple_sharing(self):
        c = controller()
        c.read(0, 0)
        c.read(1, 0)
        c.write(2, 0)
        c.read(3, 0)
        c.check_invariants()

    @settings(max_examples=60, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["r", "w"]),
                st.integers(min_value=0, max_value=3),   # core
                st.integers(min_value=0, max_value=31),  # line
            ),
            min_size=1,
            max_size=120,
        )
    )
    def test_random_access_streams_preserve_mesi_safety(self, ops):
        c = controller(4)
        for kind, core, line in ops:
            addr = line * 64
            if kind == "r":
                c.read(core, addr)
            else:
                c.write(core, addr)
        c.check_invariants()

    @settings(max_examples=30, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["r", "w"]),
                st.integers(min_value=0, max_value=7),
                st.integers(min_value=0, max_value=15),
            ),
            min_size=1,
            max_size=80,
        )
    )
    def test_latencies_always_positive(self, ops):
        c = controller(8)
        for kind, core, line in ops:
            addr = line * 64
            latency = c.read(core, addr) if kind == "r" else c.write(core, addr)
            assert latency >= c.config.l1d.hit_latency
