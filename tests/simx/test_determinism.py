"""Property tests: the simulator is deterministic and scheduling-stable."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simx import (
    Barrier,
    Compute,
    Load,
    Machine,
    MachineConfig,
    Store,
    ThreadTrace,
    TraceProgram,
)
from repro.simx.config import CacheConfig


def tiny_machine(n_cores=4) -> Machine:
    return Machine(MachineConfig(
        n_cores=n_cores,
        l1d=CacheConfig(size=16 * 64, ways=4),
        l1i=CacheConfig(size=16 * 64, ways=4),
        l2=CacheConfig(size=256 * 64, ways=8, hit_latency=12),
    ))


@st.composite
def random_programs(draw):
    n_threads = draw(st.integers(min_value=1, max_value=4))
    n_barriers = draw(st.integers(min_value=0, max_value=3))
    threads = []
    for tid in range(n_threads):
        ops = []
        for b in range(n_barriers + 1):
            for _ in range(draw(st.integers(min_value=0, max_value=8))):
                kind = draw(st.sampled_from(["c", "l", "s"]))
                if kind == "c":
                    ops.append(Compute(draw(st.integers(min_value=1, max_value=500))))
                elif kind == "l":
                    ops.append(Load(draw(st.integers(min_value=0, max_value=63)) * 64))
                else:
                    ops.append(Store(draw(st.integers(min_value=0, max_value=63)) * 64))
            if b < n_barriers:
                ops.append(Barrier(b))
        threads.append(ops)
    return threads


class TestDeterminism:
    @settings(max_examples=30, deadline=None)
    @given(threads=random_programs())
    def test_identical_runs_identical_cycles(self, threads):
        def run():
            prog = TraceProgram(
                "p", [ThreadTrace(i, list(ops)) for i, ops in enumerate(threads)]
            )
            return tiny_machine().run(prog)

        a, b = run(), run()
        assert a.total_cycles == b.total_cycles
        assert a.thread_cycles == b.thread_cycles
        assert a.coherence.l1_misses == b.coherence.l1_misses
        assert a.coherence.cache_to_cache == b.coherence.cache_to_cache

    @settings(max_examples=30, deadline=None)
    @given(threads=random_programs())
    def test_total_cycles_at_least_per_thread_busy(self, threads):
        prog = TraceProgram(
            "p", [ThreadTrace(i, list(ops)) for i, ops in enumerate(threads)]
        )
        res = tiny_machine().run(prog)
        assert res.total_cycles == max(res.thread_cycles, default=0)

    @settings(max_examples=20, deadline=None)
    @given(
        work=st.lists(st.integers(min_value=100, max_value=2000), min_size=2, max_size=4),
    )
    def test_barrier_release_simultaneous(self, work):
        threads = [
            [Compute(w), Barrier(0), Compute(100)] for w in work
        ]
        prog = TraceProgram(
            "p", [ThreadTrace(i, ops) for i, ops in enumerate(threads)]
        )
        res = tiny_machine().run(prog)
        # all threads end at the same time: equal post-barrier work
        assert len(set(res.thread_cycles)) == 1
