"""Property tests: the simulator is deterministic and scheduling-stable."""

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simx import (
    Barrier,
    Compute,
    Load,
    Machine,
    MachineConfig,
    Store,
    ThreadTrace,
    TraceProgram,
)
from repro.simx.config import CacheConfig


def tiny_machine(n_cores=4) -> Machine:
    return Machine(MachineConfig(
        n_cores=n_cores,
        l1d=CacheConfig(size=16 * 64, ways=4),
        l1i=CacheConfig(size=16 * 64, ways=4),
        l2=CacheConfig(size=256 * 64, ways=8, hit_latency=12),
    ))


@st.composite
def random_programs(draw):
    n_threads = draw(st.integers(min_value=1, max_value=4))
    n_barriers = draw(st.integers(min_value=0, max_value=3))
    threads = []
    for tid in range(n_threads):
        ops = []
        for b in range(n_barriers + 1):
            for _ in range(draw(st.integers(min_value=0, max_value=8))):
                kind = draw(st.sampled_from(["c", "l", "s"]))
                if kind == "c":
                    ops.append(Compute(draw(st.integers(min_value=1, max_value=500))))
                elif kind == "l":
                    ops.append(Load(draw(st.integers(min_value=0, max_value=63)) * 64))
                else:
                    ops.append(Store(draw(st.integers(min_value=0, max_value=63)) * 64))
            if b < n_barriers:
                ops.append(Barrier(b))
        threads.append(ops)
    return threads


class TestDeterminism:
    @settings(max_examples=30, deadline=None)
    @given(threads=random_programs())
    def test_identical_runs_identical_cycles(self, threads):
        def run():
            prog = TraceProgram(
                "p", [ThreadTrace(i, list(ops)) for i, ops in enumerate(threads)]
            )
            return tiny_machine().run(prog)

        a, b = run(), run()
        assert a.total_cycles == b.total_cycles
        assert a.thread_cycles == b.thread_cycles
        assert a.coherence.l1_misses == b.coherence.l1_misses
        assert a.coherence.cache_to_cache == b.coherence.cache_to_cache

    @settings(max_examples=30, deadline=None)
    @given(threads=random_programs())
    def test_total_cycles_at_least_per_thread_busy(self, threads):
        prog = TraceProgram(
            "p", [ThreadTrace(i, list(ops)) for i, ops in enumerate(threads)]
        )
        res = tiny_machine().run(prog)
        assert res.total_cycles == max(res.thread_cycles, default=0)

    @settings(max_examples=20, deadline=None)
    @given(
        work=st.lists(st.integers(min_value=100, max_value=2000), min_size=2, max_size=4),
    )
    def test_barrier_release_simultaneous(self, work):
        threads = [
            [Compute(w), Barrier(0), Compute(100)] for w in work
        ]
        prog = TraceProgram(
            "p", [ThreadTrace(i, ops) for i, ops in enumerate(threads)]
        )
        res = tiny_machine().run(prog)
        # all threads end at the same time: equal post-barrier work
        assert len(set(res.thread_cycles)) == 1


# ── fast-path knob parity ─────────────────────────────────────────────────
#
# The `fast_path` knob may change throughput only, never results: every
# machine configuration must produce bitwise-equal output with the knob on
# and off.  Configurations the fast path cannot accelerate (banked DRAM,
# contended bus, prefetch) take the gated fallback, which must be exactly
# the reference path.  A deeper per-op differential proof lives in
# tests/simx/test_fastpath_differential.py; this is the regression tripwire
# that keeps the knob from ever forking behaviour silently.

PARITY_CONFIGS = {
    "baseline": MachineConfig.baseline(n_cores=4),
    "tiny-caches": MachineConfig(
        n_cores=4,
        l1d=CacheConfig(size=8 * 64, ways=2),
        l1i=CacheConfig(size=8 * 64, ways=2),
        l2=CacheConfig(size=64 * 64, ways=4, hit_latency=12),
    ),
    "msi": MachineConfig(n_cores=4, coherence_protocol="msi"),
    "mesh": MachineConfig(n_cores=4, interconnect="mesh"),
    "banked-dram": MachineConfig(n_cores=4, dram="banked"),
    "contended-bus": MachineConfig(n_cores=4, bus_occupancy=2),
    "prefetch": MachineConfig(n_cores=4, prefetch_next_line=True),
    "asymmetric": MachineConfig(n_cores=4, core_perf_factors=(2.0, 1.0, 1.0, 1.0)),
}


def _parity_program() -> TraceProgram:
    """A fixed mixed trace: private streams, shared lines, barriers."""
    threads = []
    for tid in range(4):
        base = (0x1000 + tid * 0x100) * 64
        ops = []
        for rnd in range(3):
            for i in range(12):
                ops.append(Compute(17 + 13 * i))
                ops.append(Load(base + ((rnd * 12 + i) % 24) * 64))
                if i % 3 == 0:
                    ops.append(Store(base + (i % 8) * 64))
                if i % 5 == 0:
                    ops.append(Load((i % 6) * 64))       # shared reads
                if i % 7 == 0:
                    ops.append(Store(((i + tid) % 6) * 64))  # shared writes
            ops.append(Barrier(rnd))
        threads.append(ThreadTrace(tid, ops))
    return TraceProgram("parity", threads)


class TestFastPathKnobParity:
    @pytest.mark.parametrize("name", sorted(PARITY_CONFIGS))
    def test_knob_never_changes_results(self, name):
        config = PARITY_CONFIGS[name]
        prog = _parity_program()
        on = Machine(replace(config, fast_path=True)).run(prog)
        off = Machine(replace(config, fast_path=False)).run(prog)
        assert on.total_cycles == off.total_cycles
        assert on.thread_cycles == off.thread_cycles
        assert on.instructions == off.instructions
        assert on.coherence == off.coherence
        assert on.phase_stats.spans == off.phase_stats.spans
        assert {p: dict(t) for p, t in on.phase_stats.busy.items()} == \
               {p: dict(t) for p, t in off.phase_stats.busy.items()}
        assert {p: dict(t) for p, t in on.phase_stats.wait.items()} == \
               {p: dict(t) for p, t in off.phase_stats.wait.items()}
        assert on.coherence_by_phase == off.coherence_by_phase

    @pytest.mark.parametrize("name", sorted(PARITY_CONFIGS))
    def test_knob_on_is_deterministic(self, name):
        config = replace(PARITY_CONFIGS[name], fast_path=True)
        prog = _parity_program()
        a = Machine(config).run(prog)
        b = Machine(config).run(prog)
        assert a.total_cycles == b.total_cycles
        assert a.thread_cycles == b.thread_cycles
        assert a.coherence == b.coherence
