"""Tests for the MSI protocol option (no Exclusive state)."""

import pytest

from repro.simx.cache import MesiState
from repro.simx.coherence import CoherenceController
from repro.simx.config import CacheConfig, MachineConfig


def controller(protocol: str) -> CoherenceController:
    return CoherenceController(MachineConfig(
        n_cores=4,
        coherence_protocol=protocol,
        l1d=CacheConfig(size=16 * 64, ways=4),
        l1i=CacheConfig(size=16 * 64, ways=4),
        l2=CacheConfig(size=256 * 64, ways=8, hit_latency=12),
    ))


class TestMsi:
    def test_read_installs_shared(self):
        c = controller("msi")
        c.read(0, 0)
        assert c.l1s[0].lookup(0).state is MesiState.SHARED

    def test_read_then_write_pays_upgrade(self):
        mesi, msi = controller("mesi"), controller("msi")
        mesi.read(0, 0)
        msi.read(0, 0)
        cost_mesi = mesi.write(0, 0)   # silent E -> M
        cost_msi = msi.write(0, 0)     # S -> M upgrade transaction
        assert cost_msi > cost_mesi
        assert msi.stats.upgrades == 1
        assert mesi.stats.upgrades == 0

    def test_safety_invariants_hold(self):
        c = controller("msi")
        for i in range(20):
            c.read(i % 4, (i % 8) * 64)
            c.write((i + 1) % 4, (i % 8) * 64)
        c.check_invariants()

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError):
            MachineConfig(coherence_protocol="moesi")

    def test_private_read_write_workload_slower_under_msi(self):
        # the E state exists exactly for read-then-modify private data
        def total(protocol):
            c = controller(protocol)
            cycles = 0
            for i in range(16):
                cycles += c.read(0, i * 64)
                cycles += c.write(0, i * 64)
            return cycles

        assert total("msi") > total("mesi")
