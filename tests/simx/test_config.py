"""Unit tests for machine configuration (Table I)."""

import pytest

from repro.simx.config import CacheConfig, CoreConfig, MachineConfig


class TestCacheConfig:
    def test_table1_l1d_geometry(self):
        c = CacheConfig(size=64 * 1024, ways=4)
        assert c.n_sets == 256
        assert c.n_lines == 1024

    def test_table1_l2_geometry(self):
        c = CacheConfig(size=4 * 1024 * 1024, ways=16)
        assert c.n_lines == 65536
        assert c.n_sets == 4096

    def test_rejects_nondivisible_geometry(self):
        with pytest.raises(ValueError):
            CacheConfig(size=1000, ways=3)

    def test_rejects_nonpositive_fields(self):
        with pytest.raises(ValueError):
            CacheConfig(size=0, ways=1)


class TestCoreConfig:
    def test_table1_defaults(self):
        c = CoreConfig()
        assert c.issue_width == 4
        assert c.instruction_window == 32
        assert c.lsq_entries == 16
        assert c.rob_entries == 64
        assert c.btb_entries == 512
        assert c.branch_history_entries == 2048

    def test_ipc_bounded_by_issue_width(self):
        with pytest.raises(ValueError):
            CoreConfig(issue_width=2, effective_ipc=3.0)


class TestMachineConfig:
    def test_baseline_matches_table1(self):
        m = MachineConfig.baseline()
        assert m.n_cores == 16
        assert m.l1i.size == 16 * 1024 and m.l1i.ways == 2
        assert m.l1d.size == 64 * 1024 and m.l1d.ways == 4
        assert m.l2.size == 4 * 1024 * 1024 and m.l2.ways == 16

    def test_with_cores(self):
        m = MachineConfig.baseline().with_cores(8)
        assert m.n_cores == 8
        assert m.l2.size == 4 * 1024 * 1024  # everything else untouched

    def test_rejects_unknown_interconnect(self):
        with pytest.raises(ValueError):
            MachineConfig(interconnect="hypercube")

    def test_rejects_mismatched_line_sizes(self):
        with pytest.raises(ValueError):
            MachineConfig(
                l1d=CacheConfig(size=64 * 1024, ways=4, line_size=32),
                l2=CacheConfig(size=4 * 1024 * 1024, ways=16, line_size=64),
            )

    def test_line_size_accessor(self):
        assert MachineConfig.baseline().line_size == 64
