"""Exact-cycle contract tests: hand-computed scenarios pin the timing
model so latency changes are deliberate, not accidental."""

import pytest

from repro.simx import (
    Compute,
    Load,
    Machine,
    MachineConfig,
    Store,
    ThreadTrace,
    TraceProgram,
)
from repro.simx.config import CacheConfig


def config(**kw) -> MachineConfig:
    return MachineConfig(
        n_cores=kw.pop("n_cores", 2),
        l1d=CacheConfig(size=32 * 64, ways=4, hit_latency=2),
        l1i=CacheConfig(size=32 * 64, ways=4, hit_latency=2),
        l2=CacheConfig(size=512 * 64, ways=8, hit_latency=12),
        memory_latency=120,
        remote_l1_latency=40,
        invalidation_latency=12,
        bus_latency=4,
        **kw,
    )


def run_single(ops) -> int:
    return Machine(config(n_cores=1)).run(
        TraceProgram("t", [ThreadTrace(0, ops)])
    ).total_cycles


class TestComputeTiming:
    def test_exact_ipc_division(self):
        # 1000 instructions at effective IPC 2.0 → 500 cycles
        assert run_single([Compute(1000)]) == 500

    def test_ceiling_rounding(self):
        assert run_single([Compute(3)]) == 2  # ceil(3/2)

    def test_zero_instructions_free(self):
        assert run_single([Compute(0)]) == 0


class TestMemoryTiming:
    def test_cold_read_cost(self):
        # L1 hit latency + bus + L2 hit + memory = 2 + 4 + 12 + 120 = 138
        assert run_single([Load(0)]) == 138

    def test_l1_hit_cost(self):
        # second access: exactly the L1 hit latency
        assert run_single([Load(0), Load(0)]) == 138 + 2

    def test_l2_hit_after_l1_eviction(self):
        # fill set 0 (4 ways: lines 0,32,64,96 map to set 0 of 32 sets),
        # then one more to evict line 0; refetching line 0 hits L2:
        # 2 + 4 + 12 = 18
        ops = [Load(i * 32 * 64) for i in range(5)]  # lines 0,32,...,128
        ops.append(Load(0))
        total = run_single(ops)
        assert total == 5 * 138 + 18

    def test_cold_write_cost_equals_cold_read(self):
        # write miss: RFO fetch = same hierarchy path
        assert run_single([Store(0)]) == 138


class TestCoherenceTiming:
    def test_cache_to_cache_read_cost(self):
        # core 1 reads a line core 0 holds Modified:
        # 2 (L1 probe) + 4 (bus) + 40 (remote L1) + 4 (c2c transfer) = 50
        from repro.simx.coherence import CoherenceController

        c = CoherenceController(config())
        c.write(0, 0)
        assert c.read(1, 0) == 50

    def test_upgrade_cost_per_sharer(self):
        from repro.simx.coherence import CoherenceController

        c = CoherenceController(config(n_cores=4))
        for core in range(4):
            c.read(core, 0)
        # upgrade by core 0: 2 + 4 + 3 sharers × 12 = 42
        assert c.write(0, 0) == 2 + 4 + 3 * 12

    def test_silent_exclusive_upgrade_is_just_a_hit(self):
        from repro.simx.coherence import CoherenceController

        c = CoherenceController(config())
        c.read(0, 0)          # E
        assert c.write(0, 0) == 2


class TestBarrierTiming:
    def test_release_time_exact(self):
        from repro.simx.trace import Barrier

        cfg = config(n_cores=2)
        prog = TraceProgram("b", [
            ThreadTrace(0, [Compute(1000), Barrier(0)]),   # arrives at 500
            ThreadTrace(1, [Compute(100), Barrier(0)]),    # arrives at 50
        ])
        res = Machine(cfg).run(prog)
        # both released at max(500, 50) + barrier_release_latency(10) = 510
        assert res.thread_cycles == (510, 510)
