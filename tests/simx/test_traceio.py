"""Unit tests for trace serialisation."""

import pytest

from repro.simx import (
    Barrier,
    Compute,
    Load,
    Lock,
    Machine,
    MachineConfig,
    PhaseBegin,
    PhaseEnd,
    Store,
    ThreadTrace,
    TraceProgram,
    Unlock,
)
from repro.simx.config import CacheConfig
from repro.simx.traceio import dump_program, load_program, op_from_record, op_to_record


def sample_program() -> TraceProgram:
    return TraceProgram(
        name="demo",
        threads=[
            ThreadTrace(0, [
                PhaseBegin("work"), Compute(100), Load(64), Store(128),
                Lock(1), Compute(10), Unlock(1), Barrier(0), PhaseEnd("work"),
            ]),
            ThreadTrace(1, [
                PhaseBegin("work"), Compute(50), Barrier(0), PhaseEnd("work"),
            ]),
        ],
        metadata={"workload": "demo", "n_iterations": 1},
    )


class TestOpRecords:
    @pytest.mark.parametrize("op", [
        Compute(42), Load(640), Store(0), Barrier(3), Lock(1), Unlock(1),
        PhaseBegin("x"), PhaseEnd("x"),
    ])
    def test_roundtrip_each_kind(self, op):
        tid, back = op_from_record(op_to_record(5, op))
        assert tid == 5
        assert back == op

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            op_from_record({"t": 0, "op": "Z"})


class TestFileRoundtrip:
    def test_program_roundtrip(self, tmp_path):
        original = sample_program()
        path = dump_program(original, tmp_path / "demo.jsonl")
        loaded = load_program(path)
        assert loaded.name == "demo"
        assert loaded.n_threads == 2
        assert loaded.metadata["workload"] == "demo"
        assert list(loaded.threads[0]) == list(sample_program().threads[0])

    def test_loaded_program_runs_identically(self, tmp_path):
        cfg = MachineConfig(
            n_cores=2,
            l1d=CacheConfig(size=16 * 64, ways=4),
            l1i=CacheConfig(size=16 * 64, ways=4),
            l2=CacheConfig(size=128 * 64, ways=8, hit_latency=12),
        )
        path = dump_program(sample_program(), tmp_path / "t.jsonl")
        a = Machine(cfg).run(sample_program())
        b = Machine(cfg).run(load_program(path))
        assert a.total_cycles == b.total_cycles
        assert a.thread_cycles == b.thread_cycles

    def test_generated_workload_trace_roundtrip(self, tmp_path):
        from repro.workloads.datasets import make_blobs
        from repro.workloads.kmeans import KMeansWorkload
        from repro.workloads.tracegen import program_from_execution

        wl = KMeansWorkload(make_blobs(300, 4, 3, seed=1), max_iterations=1,
                            tolerance=1e-12)
        prog = program_from_execution(wl.execute(2), mem_scale=4)
        path = dump_program(prog, tmp_path / "km.jsonl")
        loaded = load_program(path)
        assert loaded.n_threads == 2
        # op counts preserved
        assert sum(1 for _ in loaded.threads[0]) > 0

    def test_bad_header(self, tmp_path):
        p = tmp_path / "bad.jsonl"
        p.write_text('{"kind": "nonsense"}\n')
        with pytest.raises(ValueError):
            load_program(p)

    def test_empty_file(self, tmp_path):
        p = tmp_path / "empty.jsonl"
        p.write_text("")
        with pytest.raises(ValueError):
            load_program(p)

    def test_out_of_range_thread(self, tmp_path):
        p = tmp_path / "oob.jsonl"
        p.write_text(
            '{"kind": "program", "name": "x", "n_threads": 1, "metadata": {}}\n'
            '{"t": 5, "op": "C", "n": 1}\n'
        )
        with pytest.raises(ValueError):
            load_program(p)
