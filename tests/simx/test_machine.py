"""Unit and integration tests for the discrete-event machine."""

import pytest

from repro.simx.config import CacheConfig, MachineConfig
from repro.simx.machine import DeadlockError, Machine, TraceError
from repro.simx.trace import (
    Barrier,
    Compute,
    Load,
    Lock,
    PhaseBegin,
    PhaseEnd,
    Store,
    ThreadTrace,
    TraceProgram,
    Unlock,
)


def machine(n_cores: int = 4) -> Machine:
    return Machine(
        MachineConfig(
            n_cores=n_cores,
            l1d=CacheConfig(size=16 * 64, ways=4),
            l1i=CacheConfig(size=16 * 64, ways=4),
            l2=CacheConfig(size=256 * 64, ways=8, hit_latency=12),
        )
    )


def program(name: str, *op_lists) -> TraceProgram:
    return TraceProgram(
        name=name,
        threads=[ThreadTrace(i, list(ops)) for i, ops in enumerate(op_lists)],
    )


class TestSingleThread:
    def test_compute_timing_uses_effective_ipc(self):
        m = machine(1)
        res = m.run(program("p", [Compute(1000)]))
        assert res.total_cycles == 500  # IPC 2.0

    def test_memory_ops_accumulate_latency(self):
        m = machine(1)
        res = m.run(program("p", [Load(0), Load(0)]))
        # cold miss + L1 hit
        cfg = m.config
        assert res.total_cycles >= cfg.memory_latency + 2 * cfg.l1d.hit_latency

    def test_empty_trace(self):
        res = machine(1).run(program("p", []))
        assert res.total_cycles == 0

    def test_instruction_counting(self):
        res = machine(1).run(program("p", [Compute(100), Load(0), Store(64)]))
        assert res.instructions == (102,)


class TestPhases:
    def test_busy_cycles_attributed_to_phase(self):
        res = machine(1).run(
            program("p", [
                PhaseBegin("init"), Compute(200), PhaseEnd("init"),
                PhaseBegin("work"), Compute(800), PhaseEnd("work"),
            ])
        )
        assert res.phase_cycles("init") == 100
        assert res.phase_cycles("work") == 400

    def test_nested_phases_attribute_to_innermost(self):
        res = machine(1).run(
            program("p", [
                PhaseBegin("outer"), Compute(100),
                PhaseBegin("inner"), Compute(100), PhaseEnd("inner"),
                Compute(100), PhaseEnd("outer"),
            ])
        )
        assert res.phase_cycles("inner") == 50
        assert res.phase_cycles("outer") == 100

    def test_unbalanced_phase_end_raises(self):
        with pytest.raises(TraceError):
            machine(1).run(program("p", [PhaseEnd("x")]))

    def test_unclosed_phase_raises(self):
        with pytest.raises(TraceError):
            machine(1).run(program("p", [PhaseBegin("x")]))

    def test_phase_wall_span(self):
        res = machine(1).run(
            program("p", [Compute(200), PhaseBegin("w"), Compute(200), PhaseEnd("w")])
        )
        assert res.phase_wall_cycles("w") == 100


class TestBarriers:
    def test_all_threads_meet(self):
        res = machine(2).run(
            program("p",
                [Compute(1000), Barrier(0), Compute(10)],
                [Compute(10), Barrier(0), Compute(10)],
            )
        )
        # thread 1 waits for thread 0: both resume at 500 + release latency
        t0, t1 = res.thread_cycles
        assert t0 == t1

    def test_wait_time_recorded(self):
        res = machine(2).run(
            program("p",
                [PhaseBegin("w"), Compute(1000), Barrier(0), PhaseEnd("w")],
                [PhaseBegin("w"), Compute(10), Barrier(0), PhaseEnd("w")],
            )
        )
        assert res.phase_stats.wait_cycles("w", 1) >= 495 - 10

    def test_missing_thread_deadlocks(self):
        with pytest.raises(DeadlockError):
            machine(2).run(
                program("p", [Barrier(0)], [Compute(10)])
            )

    def test_sequential_barriers(self):
        res = machine(2).run(
            program("p",
                [Barrier(0), Compute(100), Barrier(1)],
                [Barrier(0), Compute(100), Barrier(1)],
            )
        )
        assert res.total_cycles > 0

    def test_duplicate_arrival_raises(self):
        with pytest.raises((TraceError, DeadlockError)):
            machine(2).run(
                program("p", [Barrier(0), Barrier(0)], [Compute(1)])
            )


class TestLocks:
    def test_lock_serialises_critical_sections(self):
        res = machine(2).run(
            program("p",
                [Lock(0), Compute(1000), Unlock(0)],
                [Lock(0), Compute(1000), Unlock(0)],
            )
        )
        acquire = 20
        # the two 500-cycle sections cannot overlap
        assert res.total_cycles >= 1000 + 2 * acquire

    def test_fifo_handover_wait_recorded(self):
        res = machine(2).run(
            program("p",
                [PhaseBegin("cs"), Lock(0), Compute(1000), Unlock(0), PhaseEnd("cs")],
                [PhaseBegin("cs"), Lock(0), Compute(1000), Unlock(0), PhaseEnd("cs")],
            )
        )
        total_wait = res.phase_stats.wait_cycles("cs")
        assert total_wait > 0

    def test_unlock_without_hold_raises(self):
        with pytest.raises(TraceError):
            machine(1).run(program("p", [Unlock(0)]))

    def test_finishing_with_lock_raises(self):
        with pytest.raises(TraceError):
            machine(1).run(program("p", [Lock(0)]))

    def test_never_released_lock_deadlocks(self):
        with pytest.raises((DeadlockError, TraceError)):
            machine(2).run(
                program("p", [Lock(0), Compute(10)], [Lock(0), Compute(10)])
            )


class TestResourceLimits:
    def test_more_threads_than_cores_rejected(self):
        with pytest.raises(ValueError):
            machine(1).run(program("p", [Compute(1)], [Compute(1)]))

    def test_max_cycles_watchdog(self):
        with pytest.raises(RuntimeError, match="max_cycles"):
            machine(1).run(
                program("p", [Compute(10_000) for _ in range(100)]),
                max_cycles=10_000,
            )

    def test_max_cycles_permits_short_runs(self):
        res = machine(1).run(program("p", [Compute(100)]), max_cycles=10_000)
        assert res.total_cycles == 50


class TestParallelSpeedup:
    def test_data_parallel_work_scales(self):
        """The headline integration check: embarrassingly parallel compute
        across p cores runs ~p times faster."""
        work = 160_000

        def worker(tid: int, p: int):
            return [Compute(work // p), Barrier(0)]

        times = {}
        for p in (1, 2, 4):
            m = machine(4)
            prog = TraceProgram(
                "scale", [ThreadTrace(i, worker(i, p)) for i in range(p)]
            )
            times[p] = m.run(prog).total_cycles
        assert times[1] / times[2] == pytest.approx(2.0, rel=0.01)
        assert times[1] / times[4] == pytest.approx(4.0, rel=0.02)

    def test_sharing_heavy_trace_slower_than_private(self):
        """Threads hammering the same lines pay coherence costs."""
        shared_ops = [[Store(0) for _ in range(50)] for _ in range(2)]
        private_ops = [[Store(64 * 1000 * (tid + 1)) for _ in range(50)] for tid in range(2)]
        shared = machine(2).run(program("shared", *shared_ops)).total_cycles
        private = machine(2).run(program("private", *private_ops)).total_cycles
        assert shared > private
