"""Unit tests for the interconnect timing models."""

import pytest

from repro.simx.config import MachineConfig
from repro.simx.interconnect import (
    BusInterconnect,
    MeshInterconnect,
    build_interconnect,
)


class TestBus:
    def test_fixed_latency(self):
        bus = BusInterconnect(4)
        assert bus.request_latency(0, 12345) == 4
        assert bus.request_latency(7, 0) == 4

    def test_core_to_core(self):
        bus = BusInterconnect(4)
        assert bus.core_to_core_latency(0, 1) == 4
        assert bus.core_to_core_latency(3, 3) == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            BusInterconnect(-1)


class TestMesh:
    def test_home_bank_distribution(self):
        mesh = MeshInterconnect(16, hop_latency=2)
        banks = {mesh.home_bank(line) for line in range(64)}
        assert banks == set(range(16))  # all banks used

    def test_local_bank_is_free(self):
        mesh = MeshInterconnect(16, hop_latency=2)
        # line 0 homes at tile 0; requests from tile 0 take zero hops
        assert mesh.request_latency(0, 0) == 0

    def test_distance_scales_latency(self):
        mesh = MeshInterconnect(16, hop_latency=2)  # 4x4
        # tile 15 is 6 hops from tile 0 → 2 * 6 * 2 = 24
        assert mesh.request_latency(15, 0) == 24

    def test_core_to_core_uses_hops(self):
        mesh = MeshInterconnect(16, hop_latency=3)
        assert mesh.core_to_core_latency(0, 15) == 6 * 3
        assert mesh.core_to_core_latency(5, 5) == 0


class TestBuild:
    def test_builds_from_config(self):
        assert isinstance(
            build_interconnect(MachineConfig.baseline(interconnect="bus")),
            BusInterconnect,
        )
        assert isinstance(
            build_interconnect(MachineConfig.baseline(interconnect="mesh")),
            MeshInterconnect,
        )
