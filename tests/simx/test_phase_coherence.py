"""Tests for per-phase coherence-event attribution."""

import pytest

from repro.simx import (
    Load,
    Machine,
    MachineConfig,
    PhaseBegin,
    PhaseEnd,
    Store,
    ThreadTrace,
    TraceProgram,
)
from repro.simx.config import CacheConfig


def machine(n_cores=4) -> Machine:
    return Machine(MachineConfig(
        n_cores=n_cores,
        l1d=CacheConfig(size=32 * 64, ways=4),
        l1i=CacheConfig(size=32 * 64, ways=4),
        l2=CacheConfig(size=512 * 64, ways=8, hit_latency=12),
    ))


class TestAttribution:
    def test_events_split_by_phase(self):
        ops = [
            PhaseBegin("a"), Load(0), Load(64), PhaseEnd("a"),
            PhaseBegin("b"), Load(0), PhaseEnd("b"),  # L1 hit in phase b
        ]
        res = machine(1).run(TraceProgram("p", [ThreadTrace(0, ops)]))
        a = res.phase_coherence("a")
        b = res.phase_coherence("b")
        assert a.l1_misses == 2 and a.memory_fetches == 2
        assert b.l1_hits == 1 and b.l1_misses == 0

    def test_totals_match_global_counters(self):
        ops = [PhaseBegin("x")] + [Load(i * 64) for i in range(20)] + \
              [Store(i * 64) for i in range(20)] + [PhaseEnd("x")]
        res = machine(1).run(TraceProgram("p", [ThreadTrace(0, ops)]))
        x = res.phase_coherence("x")
        assert x.reads == res.coherence.reads
        assert x.writes == res.coherence.writes
        assert x.memory_fetches == res.coherence.memory_fetches

    def test_unknown_phase_returns_zeros(self):
        res = machine(1).run(TraceProgram("p", [ThreadTrace(0, [Load(0)])]))
        assert res.phase_coherence("nope").reads == 0


class TestMergePhaseCoherence:
    """The mechanical heart of the paper: merge-phase coherence misses
    grow with the thread count."""

    @staticmethod
    def _merge_events(p: int):
        from repro.workloads.datasets import make_blobs
        from repro.workloads.kmeans import KMeansWorkload
        from repro.workloads.tracegen import program_from_execution

        wl = KMeansWorkload(
            make_blobs(800, 6, 4, seed=4), max_iterations=2, tolerance=1e-12
        )
        prog = program_from_execution(wl.execute(p), mem_scale=2)
        res = Machine(MachineConfig.baseline(n_cores=16)).run(prog)
        return res.phase_coherence("reduction")

    def test_merge_cache_to_cache_grows_with_threads(self):
        e2 = self._merge_events(2)
        e8 = self._merge_events(8)
        assert e8.cache_to_cache > e2.cache_to_cache

    def test_single_thread_merge_has_no_transfers(self):
        e1 = self._merge_events(1)
        assert e1.cache_to_cache == 0
        assert e1.invalidations == 0
