"""Property test: the set-associative cache against a reference model.

The reference is an obviously-correct (if slow) LRU implementation: one
ordered list per set.  Hypothesis drives both with the same access
streams; residency and eviction decisions must match exactly.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simx.cache import Cache, MesiState
from repro.simx.config import CacheConfig


class ReferenceLRU:
    """Textbook LRU cache over line addresses (no coherence states)."""

    def __init__(self, n_sets: int, ways: int):
        self.n_sets = n_sets
        self.ways = ways
        self.sets: list[list[int]] = [[] for _ in range(n_sets)]

    def access(self, line: int) -> bool:
        """Touch-or-insert; returns True on hit."""
        s = self.sets[line % self.n_sets]
        if line in s:
            s.remove(line)
            s.append(line)  # most recent at the back
            return True
        if len(s) >= self.ways:
            s.pop(0)
        s.append(line)
        return False

    def contains(self, line: int) -> bool:
        return line in self.sets[line % self.n_sets]


@settings(max_examples=80, deadline=None)
@given(
    ways=st.integers(min_value=1, max_value=4),
    sets_pow=st.integers(min_value=0, max_value=3),
    stream=st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=200),
)
def test_cache_matches_reference_lru(ways, sets_pow, stream):
    n_sets = 2**sets_pow
    cache = Cache(CacheConfig(size=ways * n_sets * 64, ways=ways))
    ref = ReferenceLRU(n_sets, ways)
    for line in stream:
        ref_hit = ref.access(line)
        line_obj = cache.touch(line)
        actual_hit = line_obj is not None
        if not actual_hit:
            cache.insert(line, MesiState.EXCLUSIVE)
        assert actual_hit == ref_hit, f"divergence at line {line}"
    # final residency identical
    for line in range(64):
        assert cache.contains(line) == ref.contains(line), line


@settings(max_examples=40, deadline=None)
@given(
    stream=st.lists(st.integers(min_value=0, max_value=31), min_size=1, max_size=150),
)
def test_hit_counters_consistent(stream):
    cache = Cache(CacheConfig(size=2 * 4 * 64, ways=2))
    hits = misses = 0
    for line in stream:
        if cache.touch(line) is None:
            cache.insert(line, MesiState.SHARED)
            misses += 1
        else:
            hits += 1
    assert cache.hits == hits
    assert cache.misses == misses
    assert cache.valid_lines() <= 8
