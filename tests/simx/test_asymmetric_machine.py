"""Tests for heterogeneous (ACMP) machine simulation."""

import pytest

from repro.simx import Compute, Machine, MachineConfig, ThreadTrace, TraceProgram
from repro.simx.config import CacheConfig


def small_caches():
    return dict(
        l1d=CacheConfig(size=16 * 64, ways=4),
        l1i=CacheConfig(size=16 * 64, ways=4),
        l2=CacheConfig(size=256 * 64, ways=8, hit_latency=12),
    )


class TestConfig:
    def test_asymmetric_builder(self):
        cfg = MachineConfig.asymmetric(rl=16, n_small=8, r=1)
        assert cfg.n_cores == 9
        assert cfg.perf_factor(0) == pytest.approx(4.0)   # sqrt(16)
        assert cfg.perf_factor(1) == pytest.approx(1.0)

    def test_asymmetric_with_bigger_small_cores(self):
        cfg = MachineConfig.asymmetric(rl=64, n_small=4, r=4)
        assert cfg.perf_factor(0) == pytest.approx(8.0)
        assert cfg.perf_factor(3) == pytest.approx(2.0)

    def test_homogeneous_default_factor(self):
        assert MachineConfig.baseline().perf_factor(5) == 1.0

    def test_factor_count_validated(self):
        with pytest.raises(ValueError):
            MachineConfig(n_cores=4, core_perf_factors=(2.0, 1.0))

    def test_factor_positivity_validated(self):
        with pytest.raises(ValueError):
            MachineConfig(n_cores=2, core_perf_factors=(1.0, -1.0))

    def test_large_core_at_least_small(self):
        with pytest.raises(ValueError):
            MachineConfig.asymmetric(rl=1, n_small=2, r=4)


class TestTiming:
    def test_big_core_computes_faster(self):
        cfg = MachineConfig(
            n_cores=2, core_perf_factors=(4.0, 1.0), **small_caches()
        )
        prog = TraceProgram(
            "p",
            [ThreadTrace(0, [Compute(8000)]), ThreadTrace(1, [Compute(8000)])],
        )
        res = Machine(cfg).run(prog)
        t_big, t_small = res.thread_cycles
        assert t_small == pytest.approx(4 * t_big, rel=0.01)

    def test_memory_latency_not_scaled(self):
        from repro.simx import Load

        cfg = MachineConfig(
            n_cores=2, core_perf_factors=(4.0, 1.0), **small_caches()
        )
        prog = TraceProgram(
            "p",
            [ThreadTrace(0, [Load(0)]), ThreadTrace(1, [Load(0x100000)])],
        )
        res = Machine(cfg).run(prog)
        # both cold misses cost the same: wires don't care about core size
        assert res.thread_cycles[0] == res.thread_cycles[1]


class TestAcmpWorkload:
    """Simulated ACMP vs symmetric CMP on a real workload: the serial
    sections (thread 0 = the big core) speed up, validating the structure
    Eq 5 assumes."""

    @pytest.fixture(scope="class")
    def breakdowns(self):
        from repro.workloads.datasets import make_blobs
        from repro.workloads.instrument import breakdown_from_simulation
        from repro.workloads.kmeans import KMeansWorkload
        from repro.workloads.tracegen import program_from_execution

        wl = KMeansWorkload(
            make_blobs(1200, 6, 4, seed=4), max_iterations=3, tolerance=1e-12
        )
        prog = program_from_execution(wl.execute(8), mem_scale=4)
        sym = Machine(MachineConfig.baseline(n_cores=8)).run(prog)
        prog2 = program_from_execution(wl.execute(8), mem_scale=4)
        acmp = Machine(MachineConfig.asymmetric(rl=16, n_small=7, r=1)).run(prog2)
        return breakdown_from_simulation(sym), breakdown_from_simulation(acmp)

    def test_acmp_shrinks_serial_sections(self, breakdowns):
        sym, acmp = breakdowns
        assert acmp.reduction < sym.reduction
        assert acmp.init + acmp.serial < sym.init + sym.serial

    def test_acmp_total_time_improves(self, breakdowns):
        sym, acmp = breakdowns
        assert acmp.total < sym.total
