"""Differential proof: the fused fast path is cycle-exact.

Every test runs the same trace program through two machines that differ
only in ``fast_path`` and asserts the *complete* observable output is
identical: total and per-thread cycles, per-phase busy/wait cycles and
spans, instruction counts, protocol counters, and the per-phase coherence
attribution.  The randomized programs mix thread-private and shared
addresses, locks, barriers and phase markers; the hand-built traces target
the specific hazards the fast path must detect (a private run whose L1
fill would evict a shared line, a store immediately before a barrier).
"""

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simx import (
    Barrier,
    Compute,
    Load,
    Lock,
    Machine,
    MachineConfig,
    PhaseBegin,
    PhaseEnd,
    Store,
    ThreadTrace,
    TraceProgram,
    Unlock,
)
from repro.simx.config import CacheConfig
from repro.simx.fastpath import Burst, compile_program, supports_fast_path

LINE = 64


def tiny_config(**overrides) -> MachineConfig:
    defaults = dict(
        n_cores=4,
        l1d=CacheConfig(size=8 * LINE, ways=2),  # 4 sets x 2 ways: evicts early
        l1i=CacheConfig(size=8 * LINE, ways=2),
        l2=CacheConfig(size=64 * LINE, ways=4, hit_latency=12),
    )
    defaults.update(overrides)
    return MachineConfig(**defaults)


CONFIGS = {
    "baseline-tiny": tiny_config(),
    "msi": tiny_config(coherence_protocol="msi"),
    "mesh": tiny_config(interconnect="mesh"),
    "asymmetric": tiny_config(core_perf_factors=(2.0, 1.0, 1.0, 1.0)),
    "bigger-l1": tiny_config(l1d=CacheConfig(size=64 * LINE, ways=4)),
}


def run_both(program_factory, config: MachineConfig):
    fast = Machine(replace(config, fast_path=True)).run(program_factory())
    ref = Machine(replace(config, fast_path=False)).run(program_factory())
    return fast, ref


def assert_identical(fast, ref):
    assert fast.total_cycles == ref.total_cycles
    assert fast.thread_cycles == ref.thread_cycles
    assert fast.instructions == ref.instructions
    assert fast.coherence == ref.coherence
    fs, rs = fast.phase_stats, ref.phase_stats
    assert {p: dict(t) for p, t in fs.busy.items() if any(t.values())} == \
           {p: dict(t) for p, t in rs.busy.items() if any(t.values())}
    assert {p: dict(t) for p, t in fs.wait.items() if any(t.values())} == \
           {p: dict(t) for p, t in rs.wait.items() if any(t.values())}
    assert fs.spans == rs.spans
    assert fast.coherence_by_phase == ref.coherence_by_phase


# ── randomized programs ───────────────────────────────────────────────────
#
# Address space: each thread owns 16 private lines; 8 lines are shared by
# everyone.  The strategy emits per-thread segment lists punctuated by the
# same barrier/phase skeleton for every thread so programs never deadlock;
# lock sections are non-nested (one lock at a time, FIFO handoff).


@st.composite
def trace_programs(draw):
    n_threads = draw(st.integers(min_value=1, max_value=4))
    n_rounds = draw(st.integers(min_value=1, max_value=3))
    use_phases = draw(st.booleans())
    threads = []
    for tid in range(n_threads):
        ops = []
        if use_phases:
            ops.append(PhaseBegin("work"))
        for rnd in range(n_rounds):
            n_ops = draw(st.integers(min_value=0, max_value=25))
            for _ in range(n_ops):
                kind = draw(
                    st.sampled_from(
                        ["compute", "pload", "pstore", "sload", "sstore", "lock"]
                    )
                )
                if kind == "compute":
                    ops.append(Compute(draw(st.integers(min_value=0, max_value=400))))
                elif kind == "pload":
                    idx = draw(st.integers(min_value=0, max_value=15))
                    ops.append(Load((0x1000 + tid * 0x100 + idx) * LINE))
                elif kind == "pstore":
                    idx = draw(st.integers(min_value=0, max_value=15))
                    ops.append(Store((0x1000 + tid * 0x100 + idx) * LINE))
                elif kind == "sload":
                    idx = draw(st.integers(min_value=0, max_value=7))
                    ops.append(Load(idx * LINE))
                elif kind == "sstore":
                    idx = draw(st.integers(min_value=0, max_value=7))
                    ops.append(Store(idx * LINE))
                else:  # a short critical section on a shared counter
                    lock_id = draw(st.integers(min_value=0, max_value=1))
                    ops.append(Lock(lock_id))
                    ops.append(Load((8 + lock_id) * LINE))
                    ops.append(Store((8 + lock_id) * LINE))
                    ops.append(Unlock(lock_id))
            if rnd < n_rounds - 1 and n_threads > 1:
                ops.append(Barrier(rnd))
        if use_phases:
            ops.append(PhaseEnd("work"))
        threads.append(ops)
    return threads


def program_of(threads) -> TraceProgram:
    return TraceProgram(
        "diff", [ThreadTrace(i, list(ops)) for i, ops in enumerate(threads)]
    )


class TestRandomizedDifferential:
    """>=200 randomized programs across the config matrix."""

    @settings(max_examples=120, deadline=None)
    @given(threads=trace_programs())
    def test_tiny_config(self, threads):
        assert_identical(*run_both(lambda: program_of(threads), CONFIGS["baseline-tiny"]))

    @settings(max_examples=40, deadline=None)
    @given(threads=trace_programs())
    def test_msi(self, threads):
        assert_identical(*run_both(lambda: program_of(threads), CONFIGS["msi"]))

    @settings(max_examples=40, deadline=None)
    @given(threads=trace_programs())
    def test_mesh(self, threads):
        assert_identical(*run_both(lambda: program_of(threads), CONFIGS["mesh"]))

    @settings(max_examples=20, deadline=None)
    @given(threads=trace_programs())
    def test_asymmetric(self, threads):
        assert_identical(*run_both(lambda: program_of(threads), CONFIGS["asymmetric"]))

    @settings(max_examples=20, deadline=None)
    @given(threads=trace_programs())
    def test_bigger_l1(self, threads):
        assert_identical(*run_both(lambda: program_of(threads), CONFIGS["bigger-l1"]))


# ── hand-built adversarial traces ─────────────────────────────────────────


class TestAdversarialTraces:
    def test_private_run_becomes_shared_mid_burst(self):
        """A long private streaming run whose L1 fills must evict shared
        lines: the burst has to bail *before* the evicting access."""

        def make():
            threads = []
            for tid in range(2):
                ops = []
                for i in range(8):
                    ops.append(Load(i * LINE))  # shared: fills the tiny L1
                base = (0x1000 + tid * 0x100) * LINE
                for i in range(16):  # private run evicting through every set
                    ops.append(Load(base + i * LINE))
                    ops.append(Store(base + i * LINE))
                ops.append(Barrier(0))
                for i in range(8):
                    ops.append(Store(i * LINE))  # shared writes observe state
                threads.append(ThreadTrace(tid, ops))
            return TraceProgram("bail", threads)

        for name, cfg in CONFIGS.items():
            assert_identical(*run_both(make, cfg))

    def test_store_immediately_before_barrier(self):
        def make():
            threads = []
            for tid in range(3):
                base = (0x1000 + tid * 0x100) * LINE
                ops = [Compute(100 * (tid + 1))]
                for b in range(3):
                    for i in range(6):
                        ops.append(Store(base + (i % 4) * LINE))
                    ops.append(Store(base))
                    ops.append(Barrier(b))
                threads.append(ThreadTrace(tid, ops))
            return TraceProgram("store-barrier", threads)

        assert_identical(*run_both(make, CONFIGS["baseline-tiny"]))

    def test_lock_handoff_between_private_runs(self):
        def make():
            threads = []
            for tid in range(3):
                base = (0x1000 + tid * 0x100) * LINE
                ops = [PhaseBegin("reduction")]
                for i in range(10):
                    ops.append(Load(base + i * LINE))
                ops.append(Lock(0))
                ops.append(Load(0))
                ops.append(Store(0))
                ops.append(Unlock(0))
                for i in range(10):
                    ops.append(Store(base + i * LINE))
                ops.append(PhaseEnd("reduction"))
                threads.append(ThreadTrace(tid, ops))
            return TraceProgram("lock-handoff", threads)

        assert_identical(*run_both(make, CONFIGS["baseline-tiny"]))

    def test_single_thread_all_private(self):
        def make():
            ops = [PhaseBegin("p")]
            for i in range(200):
                ops.append(Compute(i % 7))
                ops.append(Load((0x1000 + i % 32) * LINE))
                ops.append(Store((0x1000 + i % 16) * LINE))
            ops.append(PhaseEnd("p"))
            return TraceProgram("solo", [ThreadTrace(0, ops)])

        for cfg in CONFIGS.values():
            assert_identical(*run_both(make, cfg))

    def test_false_sharing_same_line_different_offsets(self):
        """Two threads write different bytes of one line — shared at line
        granularity, so never fused."""

        def make():
            threads = []
            for tid in range(2):
                ops = [Store(0x4000 * LINE + tid * 8) for _ in range(20)]
                threads.append(ThreadTrace(tid, ops))
            return TraceProgram("false-sharing", threads)

        fast, ref = run_both(make, CONFIGS["baseline-tiny"])
        assert_identical(fast, ref)
        comp = compile_program(make(), LINE)
        assert comp.n_bursts == 0  # the line is shared: nothing may fuse


# ── compilation invariants and gates ──────────────────────────────────────


class TestCompilation:
    def test_flattening_bursts_restores_the_original_ops(self):
        prog_threads = [
            [Compute(5), Load(0x1000 * LINE), Store(0x1000 * LINE), Barrier(0),
             Load(0), Lock(0), Unlock(0), Compute(1), Compute(2)],
            [Compute(3), Barrier(0), Load(0), Compute(9), Load(0x2000 * LINE),
             Store(0x2000 * LINE)],
        ]
        prog = program_of(prog_threads)
        comp = compile_program(prog, LINE)
        for tid, lowered in enumerate(comp.thread_ops):
            flat = []
            for entry in lowered:
                if isinstance(entry, Burst):
                    assert len(entry.ops) >= 2
                    assert all(type(o) in (Compute, Load, Store) for o in entry.ops)
                    flat.extend(entry.ops)
                else:
                    flat.append(entry)
            assert flat == prog_threads[tid]

    def test_shared_lines_are_never_fused(self):
        prog = program_of([[Load(0), Compute(1)], [Store(0), Compute(1)]])
        comp = compile_program(prog, LINE)
        assert comp.shared_lines == frozenset({0})
        for lowered in comp.thread_ops:
            for entry in lowered:
                if isinstance(entry, Burst):
                    assert all(type(o) is Compute for o in entry.ops)

    def test_fused_op_accounting(self):
        prog = program_of([[Compute(1), Compute(2), Compute(3)]])
        comp = compile_program(prog, LINE)
        assert comp.n_bursts == 1
        assert comp.n_fused_ops == 3

    @pytest.mark.parametrize(
        "overrides",
        [
            dict(fast_path=False),
            dict(dram="banked"),
            dict(prefetch_next_line=True),
            dict(bus_occupancy=2),
        ],
        ids=["knob-off", "banked-dram", "prefetch", "contended-bus"],
    )
    def test_unsafe_configs_fall_back(self, overrides):
        cfg = tiny_config(**overrides)
        assert not supports_fast_path(cfg)

    def test_max_cycles_forces_reference_path(self):
        cfg = tiny_config()
        assert supports_fast_path(cfg, max_cycles=None)
        assert not supports_fast_path(cfg, max_cycles=10_000)
        # and the watchdog still fires
        prog = program_of([[Compute(1000) for _ in range(100)]])
        with pytest.raises(RuntimeError, match="max_cycles"):
            Machine(cfg).run(prog, max_cycles=50)

    def test_contended_bus_still_identical(self):
        """Gated configs run the reference path under both knob settings —
        results must (trivially) stay identical."""

        def make():
            threads = []
            for tid in range(2):
                base = (0x1000 + tid * 0x100) * LINE
                ops = [Load(base + i * LINE) for i in range(20)]
                threads.append(ThreadTrace(tid, ops))
            return TraceProgram("contended", threads)

        assert_identical(*run_both(make, tiny_config(bus_occupancy=3)))

    def test_mesh_and_msi_combined(self):
        def make():
            threads = []
            for tid in range(4):
                base = (0x1000 + tid * 0x100) * LINE
                ops = []
                for i in range(15):
                    ops.append(Store(base + (i % 8) * LINE))
                    ops.append(Load((i % 4) * LINE))
                threads.append(ThreadTrace(tid, ops))
            return TraceProgram("mesh-msi", threads)

        cfg = tiny_config(interconnect="mesh", coherence_protocol="msi")
        assert_identical(*run_both(make, cfg))
