"""Tests for the banked-DRAM model and the next-line prefetcher."""

import pytest

from repro.simx import Load, Machine, MachineConfig, ThreadTrace, TraceProgram
from repro.simx.cache import MesiState
from repro.simx.coherence import CoherenceController
from repro.simx.config import CacheConfig
from repro.simx.dram import DramModel


class TestDramModel:
    def test_streaming_hits_open_rows(self):
        d = DramModel(n_banks=4, row_bytes=2048, line_size=64)
        # walk 64 consecutive lines: after each bank's first activation,
        # accesses stay in the open row
        latencies = [d.access(line) for line in range(64)]
        assert latencies.count(d.row_miss_latency) == 4  # one per bank
        assert d.row_hit_rate > 0.9

    def test_scattered_accesses_miss_rows(self):
        d = DramModel(n_banks=4, row_bytes=2048, line_size=64)
        stride = d.lines_per_row * d.n_banks  # new row every access
        for i in range(16):
            assert d.access(i * stride) == d.row_miss_latency
        assert d.row_hit_rate == 0.0

    def test_bank_interleaving(self):
        d = DramModel(n_banks=8)
        assert {d.bank_of(line) for line in range(16)} == set(range(8))

    def test_validation(self):
        with pytest.raises(ValueError):
            DramModel(row_bytes=100, line_size=64)
        with pytest.raises(ValueError):
            DramModel(n_banks=0)
        with pytest.raises(ValueError):
            DramModel().access(-1)


def tiny_config(**kw) -> MachineConfig:
    return MachineConfig(
        n_cores=2,
        l1d=CacheConfig(size=16 * 64, ways=4),
        l1i=CacheConfig(size=16 * 64, ways=4),
        l2=CacheConfig(size=256 * 64, ways=8, hit_latency=12),
        **kw,
    )


class TestBankedDramInMachine:
    def test_streaming_faster_than_scattered(self):
        cfg = tiny_config(dram="banked")
        stream = [Load(i * 64) for i in range(64)]
        scattered = [Load(i * 64 * 256) for i in range(64)]
        t_stream = Machine(cfg).run(
            TraceProgram("s", [ThreadTrace(0, stream)])
        ).total_cycles
        t_scatter = Machine(cfg).run(
            TraceProgram("r", [ThreadTrace(0, scattered)])
        ).total_cycles
        assert t_stream < t_scatter

    def test_flat_dram_indifferent_to_pattern(self):
        cfg = tiny_config(dram="flat")
        stream = [Load(i * 64) for i in range(32)]
        scattered = [Load(i * 64 * 256) for i in range(32)]
        t1 = Machine(cfg).run(TraceProgram("s", [ThreadTrace(0, stream)])).total_cycles
        t2 = Machine(cfg).run(TraceProgram("r", [ThreadTrace(0, scattered)])).total_cycles
        assert t1 == t2

    def test_unknown_dram_mode_rejected(self):
        with pytest.raises(ValueError):
            tiny_config(dram="quantum")


class TestPrefetcher:
    def test_sequential_scan_speeds_up(self):
        ops = [Load(i * 64) for i in range(64)]
        base = Machine(tiny_config()).run(
            TraceProgram("b", [ThreadTrace(0, list(ops))])
        ).total_cycles
        pref = Machine(tiny_config(prefetch_next_line=True)).run(
            TraceProgram("p", [ThreadTrace(0, list(ops))])
        ).total_cycles
        assert pref < base

    def test_prefetch_preserves_mesi_invariants(self):
        c = CoherenceController(tiny_config(prefetch_next_line=True))
        for i in range(32):
            c.read(i % 2, i * 64)
        c.write(0, 5 * 64)
        c.read(1, 5 * 64)
        c.check_invariants()

    def test_prefetch_never_steals_owned_lines(self):
        c = CoherenceController(tiny_config(prefetch_next_line=True))
        c.write(1, 1 * 64)       # core 1 owns line 1 in M
        c.read(0, 0)             # core 0 reads line 0 → prefetch would hit line 1
        owned = c.l1s[1].lookup(1)
        assert owned is not None and owned.state is MesiState.MODIFIED
        assert not c.l1s[0].contains(1)
