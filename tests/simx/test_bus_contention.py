"""Tests for the arbitrated (contended) bus."""

import pytest

from repro.simx import Load, Machine, MachineConfig, ThreadTrace, TraceProgram
from repro.simx.config import CacheConfig
from repro.simx.interconnect import ContendedBus


def config(occupancy: int, n_cores: int = 8) -> MachineConfig:
    return MachineConfig(
        n_cores=n_cores,
        bus_occupancy=occupancy,
        l1d=CacheConfig(size=16 * 64, ways=4),
        l1i=CacheConfig(size=16 * 64, ways=4),
        l2=CacheConfig(size=512 * 64, ways=8, hit_latency=12),
    )


class TestContendedBus:
    def test_back_to_back_requests_queue(self):
        bus = ContendedBus(latency=4, occupancy=10)
        first = bus.request_latency(0, 0, now=0)
        second = bus.request_latency(1, 1, now=0)
        assert first == 4
        assert second == 14  # waits out the first transaction's occupancy

    def test_spaced_requests_do_not_queue(self):
        bus = ContendedBus(latency=4, occupancy=10)
        bus.request_latency(0, 0, now=0)
        assert bus.request_latency(1, 1, now=100) == 4

    def test_statistics(self):
        bus = ContendedBus(latency=4, occupancy=10)
        bus.request_latency(0, 0, now=0)
        bus.request_latency(1, 1, now=0)
        assert bus.transactions == 2
        assert bus.queued_cycles == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            ContendedBus(latency=4, occupancy=0)


class TestMachineWithContention:
    def _miss_storm(self, occupancy: int, n_threads: int) -> int:
        """Every thread issues cold misses simultaneously."""
        threads = [
            ThreadTrace(tid, [Load((tid * 1000 + i) * 64) for i in range(32)])
            for tid in range(n_threads)
        ]
        m = Machine(config(occupancy, n_cores=n_threads))
        return m.run(TraceProgram("storm", threads)).total_cycles

    def test_contention_slows_parallel_miss_storms(self):
        assert self._miss_storm(8, 8) > self._miss_storm(0, 8)

    def test_single_thread_barely_affected(self):
        # one core's misses never overlap with anyone: occupancy only
        # matters between consecutive own requests, which are spaced by
        # the miss latency itself
        free = self._miss_storm(0, 1)
        contended = self._miss_storm(8, 1)
        assert contended <= free * 1.05

    def test_contention_grows_with_core_count(self):
        # the queueing penalty is superlinear in the number of
        # simultaneously missing cores
        penalty_2 = self._miss_storm(8, 2) - self._miss_storm(0, 2)
        penalty_8 = self._miss_storm(8, 8) - self._miss_storm(0, 8)
        assert penalty_8 > penalty_2
