"""Unit tests for the set-associative LRU cache."""

import pytest

from repro.simx.cache import Cache, MesiState
from repro.simx.config import CacheConfig


def small_cache(ways: int = 2, sets: int = 4) -> Cache:
    return Cache(CacheConfig(size=ways * sets * 64, ways=ways))


class TestBasicOperation:
    def test_miss_then_hit(self):
        c = small_cache()
        assert c.touch(5) is None
        c.insert(5, MesiState.EXCLUSIVE)
        line = c.touch(5)
        assert line is not None and line.state is MesiState.EXCLUSIVE
        assert c.hits == 1 and c.misses == 1

    def test_set_indexing_is_modulo(self):
        c = small_cache(sets=4)
        assert c.set_index(0) == 0
        assert c.set_index(4) == 0
        assert c.set_index(7) == 3

    def test_lookup_does_not_count_stats(self):
        c = small_cache()
        c.insert(1, MesiState.SHARED)
        c.lookup(1)
        c.lookup(2)
        assert c.hits == 0 and c.misses == 0


class TestLRUEviction:
    def test_evicts_least_recently_used(self):
        c = small_cache(ways=2, sets=1)
        c.insert(0, MesiState.EXCLUSIVE)
        c.insert(1, MesiState.EXCLUSIVE)
        c.touch(0)  # 1 is now LRU
        result = c.insert(2, MesiState.EXCLUSIVE)
        assert result.evicted is not None and result.evicted.line_addr == 1
        assert c.contains(0) and c.contains(2) and not c.contains(1)

    def test_eviction_returns_state_for_writeback(self):
        c = small_cache(ways=1, sets=1)
        c.insert(0, MesiState.MODIFIED)
        result = c.insert(1, MesiState.EXCLUSIVE)
        assert result.evicted.state is MesiState.MODIFIED

    def test_capacity_respected(self):
        c = small_cache(ways=2, sets=2)
        for line in range(10):
            c.insert(line, MesiState.SHARED)
        assert c.valid_lines() <= 4

    def test_upgrade_in_place_does_not_evict(self):
        c = small_cache(ways=1, sets=1)
        c.insert(0, MesiState.SHARED)
        result = c.insert(0, MesiState.MODIFIED)
        assert result.hit and result.evicted is None
        assert c.lookup(0).state is MesiState.MODIFIED


class TestStateManagement:
    def test_set_state(self):
        c = small_cache()
        c.insert(3, MesiState.EXCLUSIVE)
        c.set_state(3, MesiState.SHARED)
        assert c.lookup(3).state is MesiState.SHARED

    def test_set_state_invalid_removes(self):
        c = small_cache()
        c.insert(3, MesiState.SHARED)
        c.set_state(3, MesiState.INVALID)
        assert not c.contains(3)

    def test_set_state_on_absent_line_raises(self):
        c = small_cache()
        with pytest.raises(KeyError):
            c.set_state(9, MesiState.SHARED)

    def test_set_state_invalid_on_absent_line_is_noop(self):
        c = small_cache()
        c.set_state(9, MesiState.INVALID)  # no raise

    def test_invalidate(self):
        c = small_cache()
        c.insert(2, MesiState.MODIFIED)
        assert c.invalidate(2)
        assert not c.contains(2)
        assert not c.invalidate(2)  # second time: not present

    def test_cannot_insert_invalid(self):
        c = small_cache()
        with pytest.raises(ValueError):
            c.insert(0, MesiState.INVALID)


class TestMissRate:
    def test_zero_when_untouched(self):
        assert small_cache().miss_rate == 0.0

    def test_computed(self):
        c = small_cache()
        c.touch(0)          # miss
        c.insert(0, MesiState.SHARED)
        c.touch(0)          # hit
        assert c.miss_rate == pytest.approx(0.5)
