"""Unit tests for the Gustafson-scaled extension."""

import numpy as np
import pytest

from repro.core.growth import LOG, PARALLEL
from repro.core.params import AppParams
from repro.core.scaled import (
    scaled_speedup_gustafson,
    scaled_speedup_limit,
    scaled_speedup_merging,
)


def params(fored=0.8) -> AppParams:
    return AppParams(f=0.99, fcon_share=0.60, fored_share=fored)


class TestGustafson:
    def test_classic_formula(self):
        assert scaled_speedup_gustafson(0.99, 100) == pytest.approx(0.01 + 99.0)

    def test_unbounded(self):
        assert scaled_speedup_gustafson(0.5, 1e7) > 1e6

    def test_single_core_identity(self):
        assert scaled_speedup_gustafson(0.7, 1) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            scaled_speedup_gustafson(1.5, 4)
        with pytest.raises(ValueError):
            scaled_speedup_gustafson(0.5, 0)


class TestScaledWithMerging:
    def test_single_core_identity(self):
        assert scaled_speedup_merging(params(), 1) == pytest.approx(1.0)

    def test_below_gustafson_beyond_one_core(self):
        p = np.array([2.0, 16.0, 256.0, 4096.0])
        ours = np.asarray(scaled_speedup_merging(params(), p))
        gus = np.asarray(scaled_speedup_gustafson(params().f, p))
        assert np.all(ours < gus)

    def test_saturates_at_f_over_fored(self):
        pr = params()
        limit = scaled_speedup_limit(pr)
        assert limit == pytest.approx(pr.f / pr.fored)
        sp = float(scaled_speedup_merging(pr, 10**7))
        assert sp == pytest.approx(limit, rel=1e-3)
        assert sp < limit

    def test_no_overhead_recovers_gustafson_asymptotically(self):
        pr = params(fored=0.0)
        assert scaled_speedup_limit(pr) == float("inf")
        p = np.array([10.0, 1000.0])
        ours = np.asarray(scaled_speedup_merging(pr, p))
        gus = np.asarray(scaled_speedup_gustafson(pr.f, p))
        # constant serial parts only: ratio approaches 1
        assert ours[1] / gus[1] > 0.95

    def test_log_growth_scales_much_further(self):
        pr = params()
        p = 4096.0
        lin = float(scaled_speedup_merging(pr, p))
        log = float(scaled_speedup_merging(pr, p, LOG))
        par = float(scaled_speedup_merging(pr, p, PARALLEL))
        assert lin < log < par

    def test_monotone_in_cores_up_to_saturation(self):
        pr = params()
        p = np.array([1.0, 2.0, 8.0, 64.0, 512.0])
        sp = np.asarray(scaled_speedup_merging(pr, p))
        assert np.all(np.diff(sp) > 0)

    def test_weak_scaling_outruns_strong_scaling(self):
        # the Table IV intuition: growing the data postpones the wall —
        # the scaled curve at 256 cores beats the fixed-size extended
        # model's peak
        from repro.core import measured as mm
        from repro.core.params import TABLE2

        scaled = float(scaled_speedup_merging(params(), 256))
        k = TABLE2["kmeans"]
        _, fixed_peak = mm.peak_core_count(k)
        # not a like-for-like number, but the scaled curve must still be
        # climbing at 256 while the fixed-size model has peaked
        sp_255 = float(scaled_speedup_merging(params(), 255))
        assert scaled > sp_255
