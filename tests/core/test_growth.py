"""Unit tests for reduction growth functions grow(nc)."""

import numpy as np
import pytest

from repro.core.growth import (
    LINEAR,
    LOG,
    PARALLEL,
    LinearGrowth,
    LogGrowth,
    PolynomialGrowth,
    resolve_growth,
)


class TestLinearGrowth:
    def test_identity_on_core_count(self):
        assert LINEAR(64.0) == pytest.approx(64.0)
        assert LINEAR(1.0) == pytest.approx(1.0)

    def test_vectorised(self):
        nc = np.array([1.0, 2.0, 256.0])
        assert np.allclose(LINEAR(nc), nc)


class TestLogGrowth:
    def test_log2_of_core_count(self):
        assert LOG(256.0) == pytest.approx(8.0)
        assert LOG(64.0) == pytest.approx(6.0)

    def test_single_core_charges_unit_reduction(self):
        # grow(1) must be 1, not 0: the single-core run still performs the
        # measured reduction once (the paper normalises fractions at 1 core).
        assert LOG(1.0) == pytest.approx(1.0)

    def test_floor_at_one_below_two_cores(self):
        assert LOG(1.5) == pytest.approx(1.0)

    def test_always_leq_linear(self):
        nc = np.array([1.0, 2.0, 4.0, 64.0, 256.0])
        assert np.all(LOG(nc) <= LINEAR(nc))


class TestParallelGrowth:
    def test_constant_one(self):
        nc = np.array([1.0, 16.0, 256.0])
        assert np.allclose(PARALLEL(nc), 1.0)


class TestPolynomialGrowth:
    def test_alpha_one_is_linear(self):
        g = PolynomialGrowth(1.0)
        nc = np.array([1.0, 7.0, 64.0])
        assert np.allclose(g(nc), LinearGrowth()(nc))

    def test_superlinear_hop_like(self):
        g = PolynomialGrowth(1.25)
        assert g(16.0) > 16.0  # grows faster than core count

    def test_rejects_nonpositive_alpha(self):
        with pytest.raises(ValueError):
            PolynomialGrowth(0.0)


class TestValidationAndResolve:
    def test_rejects_core_count_below_one(self):
        with pytest.raises(ValueError):
            LINEAR(0.5)

    def test_default_is_linear(self):
        assert resolve_growth(None).name == "Linear"

    def test_named_lookup_case_insensitive(self):
        assert resolve_growth("LOG").name == "Log"
        assert resolve_growth("parallel").name == "Parallel"

    def test_passthrough_instance(self):
        g = LogGrowth()
        assert resolve_growth(g) is g

    def test_poly_spec(self):
        g = resolve_growth("poly:1.5")
        assert g(4.0) == pytest.approx(8.0)

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            resolve_growth("exponential")
