"""Property-based invariants of the model equations (Eq 1–5).

Randomised grids over ``(n, r, f, c, o)`` built with the stdlib
``random`` module under a fixed seed — no external property-testing
dependency — checking the algebraic structure the paper relies on:

* the Hill–Marty forms (Eq 2 symmetric, Eq 3 asymmetric) collapse to
  Amdahl's law (Eq 1) when every core is a base core (``r = 1`` /
  ``rl = 1``, where ``perf(1) = 1``);
* the extended merging model (Eq 4) collapses to Hill–Marty (Eq 2) when
  the growing-overhead share is zero (``o = 0``), for *every* core size
  and growth law;
* speedup is monotone non-decreasing in the parallel fraction ``f``;
* merging overhead only ever costs: the extended speedup never exceeds
  the Hill–Marty speedup for the same ``(f, n, r)`` (``grow(nc) >= 1``
  for every shipped growth law, so the serial term can only grow).
"""

import math
import random

import numpy as np
import pytest

from repro.core import amdahl, communication, gridkernels, hill_marty, merging
from repro.core.communication import MESH_COMM, PARALLEL_COMP
from repro.core.growth import PolynomialGrowth, resolve_growth
from repro.core.params import AppParams

_SEED = 20260806
_N_CASES = 60

#: every growth-law spec the model ships (poly spans sub- to super-linear)
_GROWTHS = ("linear", "log", "parallel", "poly:0.5", "poly:1.7", "poly:3")


def _random_grid(seed=_SEED, n_cases=_N_CASES):
    """Deterministic random (n, r, f, c, o, growth) tuples.

    ``r`` is drawn from the paper's power-of-two sweep grid for the drawn
    ``n`` so it always satisfies ``1 <= r <= n``.
    """
    rng = random.Random(seed)
    cases = []
    for i in range(n_cases):
        n = 2 ** rng.randint(2, 10)  # 4 .. 1024 BCEs
        r = 2 ** rng.randint(0, int(math.log2(n)))
        f = rng.uniform(0.01, 0.999)
        c = rng.uniform(0.0, 1.0)    # fcon_share
        o = rng.uniform(0.0, 1.0)    # fored_share
        growth = _GROWTHS[rng.randrange(len(_GROWTHS))]
        cases.append(pytest.param(n, r, f, c, o, growth,
                                  id=f"case{i}-n{n}-r{r}-{growth}"))
    return cases


_CASES = _random_grid()


@pytest.mark.parametrize("n,r,f,c,o,growth", _CASES)
class TestReductions:
    def test_eq2_reduces_to_amdahl_at_r1(self, n, r, f, c, o, growth):
        """Eq 2 with one-BCE cores is exactly Eq 1 (perf(1) = 1)."""
        assert hill_marty.speedup_symmetric(f, n, 1.0) == pytest.approx(
            amdahl.speedup(f, n), rel=1e-12
        )

    def test_eq3_reduces_to_amdahl_at_rl1(self, n, r, f, c, o, growth):
        """Eq 3 with a one-BCE 'large' core is exactly Eq 1."""
        assert hill_marty.speedup_asymmetric(f, n, 1.0) == pytest.approx(
            amdahl.speedup(f, n), rel=1e-12
        )

    def test_eq4_reduces_to_eq2_when_o_is_zero(self, n, r, f, c, o, growth):
        """With no growing overhead the merging model IS Hill–Marty, for
        any core size and any growth law."""
        params = AppParams(f=f, fcon_share=c, fored_share=0.0)
        assert merging.speedup_symmetric(params, n, r, growth=growth) == (
            pytest.approx(hill_marty.speedup_symmetric(f, n, r), rel=1e-12)
        )

    def test_eq5_reduces_to_eq3_when_o_is_zero(self, n, r, f, c, o, growth):
        """Asymmetric analogue: Eq 5 at o = 0 matches Eq 3 (small cores
        of 1 BCE, which is Eq 3's shape)."""
        params = AppParams(f=f, fcon_share=c, fored_share=0.0)
        rl = max(float(r), 1.0)
        assert merging.speedup_asymmetric(params, n, rl, r=1.0,
                                          growth=growth) == (
            pytest.approx(hill_marty.speedup_asymmetric(f, n, rl), rel=1e-12)
        )

    def test_speedup_monotone_in_f(self, n, r, f, c, o, growth):
        """More parallelism never slows the modelled chip down."""
        lo = AppParams(f=max(f - 0.005, 1e-6), fcon_share=c, fored_share=o)
        hi = AppParams(f=min(f + 0.005, 1 - 1e-9), fcon_share=c, fored_share=o)
        s_lo = merging.speedup_symmetric(lo, n, r, growth=growth)
        s_hi = merging.speedup_symmetric(hi, n, r, growth=growth)
        assert s_hi >= s_lo - 1e-12
        # and the underlying laws agree
        assert amdahl.speedup(hi.f, n) >= amdahl.speedup(lo.f, n) - 1e-12
        assert hill_marty.speedup_symmetric(hi.f, n, r) >= (
            hill_marty.speedup_symmetric(lo.f, n, r) - 1e-12
        )

    def test_extended_never_exceeds_hill_marty(self, n, r, f, c, o, growth):
        """Merging overhead is a pure cost: Eq 4 <= Eq 2 pointwise."""
        params = AppParams(f=f, fcon_share=c, fored_share=o)
        ext = merging.speedup_symmetric(params, n, r, growth=growth)
        hm = hill_marty.speedup_symmetric(f, n, r)
        assert ext <= hm + 1e-12

    def test_extended_asymmetric_never_exceeds_hill_marty(
        self, n, r, f, c, o, growth
    ):
        """Asymmetric analogue: Eq 5 <= Eq 3 pointwise (r = 1 smalls)."""
        params = AppParams(f=f, fcon_share=c, fored_share=o)
        rl = max(float(r), 1.0)
        ext = merging.speedup_asymmetric(params, n, rl, r=1.0, growth=growth)
        hm = hill_marty.speedup_asymmetric(f, n, rl)
        assert ext <= hm + 1e-12


def test_growth_laws_never_discount_at_one_plus_cores():
    """grow(nc) >= 1 for nc >= 1 — the premise behind ext <= HM above."""
    rng = random.Random(_SEED + 1)
    laws = [resolve_growth(g) for g in ("linear", "log", "parallel")]
    laws += [PolynomialGrowth(rng.uniform(0.05, 3.0)) for _ in range(5)]
    for law in laws:
        for _ in range(200):
            nc = rng.uniform(1.0, 1024.0)
            assert law(nc) >= 1.0 - 1e-12, (law.name, nc)


def test_grid_is_deterministic():
    """The random grid is reproducible: reruns test the same points."""
    a = [p.values for p in _random_grid()]
    b = [p.values for p in _random_grid()]
    assert a == b


# ── vectorized kernels vs the scalar stack (Eqs 1–8) ─────────────────────
#
# tests/differential/test_model_oracles.py sweeps random parameter points;
# the classes below pin the *shape* contract of repro.core.gridkernels on
# the same randomized grid: broadcasting matches per-point scalar calls
# bit-exactly, singleton and empty axes behave, and the raw-array kernels
# accept the f = 1.0 / r = rl edges the scalar AppParams path forbids.


def _broadcast_cases(seed=_SEED + 2, n_cases=12):
    rng = random.Random(seed)
    cases = []
    for i in range(n_cases):
        n = 2 ** rng.randint(3, 9)
        fs = np.array([rng.uniform(0.01, 0.999) for _ in range(rng.randint(1, 5))])
        c = rng.uniform(0.0, 1.0)
        o = rng.uniform(0.0, 1.0)
        growth = _GROWTHS[rng.randrange(len(_GROWTHS))]
        cases.append(pytest.param(n, fs, c, o, growth, id=f"bcast{i}-n{n}"))
    return cases


@pytest.mark.parametrize("n,fs,c,o,growth", _broadcast_cases())
class TestGridMatchesScalarUnderBroadcast:
    """A 2-D ``(f, r)`` broadcast equals the scalar call at every cell."""

    def test_eq1_amdahl(self, n, fs, c, o, growth):
        ps = np.array([1.0, 2.0, float(n)])
        grid = gridkernels.amdahl_speedup(fs[:, None], ps[None, :])
        assert grid.shape == (len(fs), len(ps))
        for i, f in enumerate(fs):
            for j, p in enumerate(ps):
                assert grid[i, j] == amdahl.speedup(float(f), float(p))

    def test_eq2_symmetric(self, n, fs, c, o, growth):
        sizes = merging.power_of_two_sizes(n)
        grid = gridkernels.hm_symmetric(fs[:, None], n, sizes)
        assert grid.shape == (len(fs), len(sizes))
        for i, f in enumerate(fs):
            for j, r in enumerate(sizes):
                assert grid[i, j] == hill_marty.speedup_symmetric(
                    float(f), n, float(r))

    def test_eq3_asymmetric(self, n, fs, c, o, growth):
        sizes = merging.power_of_two_sizes(n)
        grid = gridkernels.hm_asymmetric(fs[:, None], n, sizes)
        for i, f in enumerate(fs):
            for j, rl in enumerate(sizes):
                assert grid[i, j] == hill_marty.speedup_asymmetric(
                    float(f), n, float(rl))

    def test_eq4_merging_symmetric(self, n, fs, c, o, growth):
        sizes = merging.power_of_two_sizes(n)
        grid = gridkernels.merging_symmetric(fs[:, None], c, o, n, sizes, growth)
        for i, f in enumerate(fs):
            params = AppParams(f=float(f), fcon_share=c, fored_share=o)
            for j, r in enumerate(sizes):
                assert grid[i, j] == merging.speedup_symmetric(
                    params, n, float(r), growth=growth)

    def test_eq5_merging_asymmetric(self, n, fs, c, o, growth):
        sizes = merging.power_of_two_sizes(n)
        grid = gridkernels.merging_asymmetric(
            fs[:, None], c, o, n, sizes, 1.0, growth)
        for i, f in enumerate(fs):
            params = AppParams(f=float(f), fcon_share=c, fored_share=o)
            for j, rl in enumerate(sizes):
                assert grid[i, j] == merging.speedup_asymmetric(
                    params, n, float(rl), r=1.0, growth=growth)

    def test_eq6_and_7_communication(self, n, fs, c, o, growth):
        sizes = merging.power_of_two_sizes(n)
        sym = gridkernels.comm_symmetric(fs[:, None], c, n, sizes)
        asym = gridkernels.comm_asymmetric(fs[:, None], c, n, sizes)
        for i, f in enumerate(fs):
            params = AppParams(f=float(f), fcon_share=c, fored_share=o)
            for j, r in enumerate(sizes):
                assert sym[i, j] == communication.speedup_symmetric_comm(
                    params, n, float(r), PARALLEL_COMP, MESH_COMM)
                assert asym[i, j] == communication.speedup_asymmetric_comm(
                    params, n, float(r))


class TestGridEdgeShapes:
    """Singleton axes broadcast away; size-0 axes yield size-0 results."""

    def test_singleton_axes_match_the_flat_call(self):
        sizes = merging.power_of_two_sizes(64)
        flat = gridkernels.merging_symmetric(0.97, 0.5, 0.8, 64, sizes, "log")
        nested = gridkernels.merging_symmetric(
            np.array([[0.97]]), np.array([[0.5]]), np.array([[0.8]]),
            64, sizes, "log")
        assert nested.shape == (1, len(sizes))
        assert np.array_equal(nested[0], flat)

    def test_empty_grids_yield_empty_results(self):
        empty = np.empty(0)
        assert gridkernels.amdahl_speedup(empty, 4.0).shape == (0,)
        assert gridkernels.hm_symmetric(0.5, 64, empty).shape == (0,)
        assert gridkernels.hm_asymmetric(0.5, 64, empty).shape == (0,)
        assert gridkernels.hm_asymmetric_grouped(0.5, 64, empty).shape == (0,)
        assert gridkernels.merging_symmetric(0.5, 0.5, 0.5, 64, empty).shape == (0,)
        assert gridkernels.merging_asymmetric(0.5, 0.5, 0.5, 64, empty).shape == (0,)
        assert gridkernels.comm_symmetric(0.5, 0.5, 64, empty).shape == (0,)
        assert gridkernels.comm_asymmetric(0.5, 0.5, 64, empty).shape == (0,)
        assert gridkernels.mesh_growcomm(empty).shape == (0,)

    def test_empty_parameter_grid_through_the_reducers(self):
        r, sp = gridkernels.best_symmetric_grid(np.empty(0), 0.5, 0.5, 64)
        assert r.shape == sp.shape == (0,)
        rl, r, sp = gridkernels.best_asymmetric_grid(np.empty(0), 0.5, 0.5, 64)
        assert rl.shape == r.shape == sp.shape == (0,)
        out = gridkernels.conclusions_grid(np.empty(0), 0.5, 0.5, 64)
        assert all(v.shape == (0,) for v in out.values())

    def test_out_of_range_inputs_still_raise_elementwise(self):
        with pytest.raises(ValueError):
            gridkernels.amdahl_speedup(np.array([0.5, 1.5]), 4.0)
        with pytest.raises(ValueError):
            gridkernels.hm_symmetric(0.5, 64, np.array([1.0, 128.0]))
        with pytest.raises(ValueError):
            gridkernels.merging_symmetric(0.5, 0.5, 0.5, 64, np.array([0.0]))


class TestGridAcceptsEdgesTheScalarPathForbids:
    """The raw-array kernels accept f = 1.0 and rl = r; AppParams cannot
    express the former, so the expectation comes from the Eq 2/3 forms
    whose serial term is exactly zero."""

    def test_f_equal_one_zeroes_the_serial_term(self):
        sizes = merging.power_of_two_sizes(64)
        with pytest.raises(ValueError):
            AppParams(f=1.0, fcon_share=0.5, fored_share=0.5)
        hm = gridkernels.hm_symmetric(1.0, 64, sizes)
        assert np.array_equal(
            gridkernels.merging_symmetric(1.0, 0.5, 0.5, 64, sizes, "log"), hm)
        assert np.array_equal(
            gridkernels.comm_symmetric(1.0, 0.5, 64, sizes), hm)
        # Eq 5 sums the parallel throughput in a different order than Eq 3,
        # so compare within the kernel: with no serial work the share
        # parameters cannot matter, bit-exactly.
        asym = gridkernels.merging_asymmetric(1.0, 0.5, 0.5, 64, sizes, 1.0)
        assert np.array_equal(
            gridkernels.merging_asymmetric(1.0, 0.0, 1.0, 64, sizes, 1.0), asym)
        assert np.allclose(asym, gridkernels.hm_asymmetric(1.0, 64, sizes),
                           rtol=1e-15)

    def test_rl_equal_r_matches_the_scalar_call(self):
        params = AppParams(f=0.97, fcon_share=0.4, fored_share=0.6)
        for size in (1.0, 4.0, 16.0):
            grid = gridkernels.merging_asymmetric(
                0.97, 0.4, 0.6, 64, size, size, "linear")
            scalar = merging.speedup_asymmetric(
                params, 64, size, r=size, growth="linear")
            assert grid == scalar
