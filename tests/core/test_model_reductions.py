"""Property-based invariants of the model equations (Eq 1–5).

Randomised grids over ``(n, r, f, c, o)`` built with the stdlib
``random`` module under a fixed seed — no external property-testing
dependency — checking the algebraic structure the paper relies on:

* the Hill–Marty forms (Eq 2 symmetric, Eq 3 asymmetric) collapse to
  Amdahl's law (Eq 1) when every core is a base core (``r = 1`` /
  ``rl = 1``, where ``perf(1) = 1``);
* the extended merging model (Eq 4) collapses to Hill–Marty (Eq 2) when
  the growing-overhead share is zero (``o = 0``), for *every* core size
  and growth law;
* speedup is monotone non-decreasing in the parallel fraction ``f``;
* merging overhead only ever costs: the extended speedup never exceeds
  the Hill–Marty speedup for the same ``(f, n, r)`` (``grow(nc) >= 1``
  for every shipped growth law, so the serial term can only grow).
"""

import math
import random

import pytest

from repro.core import amdahl, hill_marty, merging
from repro.core.growth import PolynomialGrowth, resolve_growth
from repro.core.params import AppParams

_SEED = 20260806
_N_CASES = 60

#: every growth-law spec the model ships (poly spans sub- to super-linear)
_GROWTHS = ("linear", "log", "parallel", "poly:0.5", "poly:1.7", "poly:3")


def _random_grid(seed=_SEED, n_cases=_N_CASES):
    """Deterministic random (n, r, f, c, o, growth) tuples.

    ``r`` is drawn from the paper's power-of-two sweep grid for the drawn
    ``n`` so it always satisfies ``1 <= r <= n``.
    """
    rng = random.Random(seed)
    cases = []
    for i in range(n_cases):
        n = 2 ** rng.randint(2, 10)  # 4 .. 1024 BCEs
        r = 2 ** rng.randint(0, int(math.log2(n)))
        f = rng.uniform(0.01, 0.999)
        c = rng.uniform(0.0, 1.0)    # fcon_share
        o = rng.uniform(0.0, 1.0)    # fored_share
        growth = _GROWTHS[rng.randrange(len(_GROWTHS))]
        cases.append(pytest.param(n, r, f, c, o, growth,
                                  id=f"case{i}-n{n}-r{r}-{growth}"))
    return cases


_CASES = _random_grid()


@pytest.mark.parametrize("n,r,f,c,o,growth", _CASES)
class TestReductions:
    def test_eq2_reduces_to_amdahl_at_r1(self, n, r, f, c, o, growth):
        """Eq 2 with one-BCE cores is exactly Eq 1 (perf(1) = 1)."""
        assert hill_marty.speedup_symmetric(f, n, 1.0) == pytest.approx(
            amdahl.speedup(f, n), rel=1e-12
        )

    def test_eq3_reduces_to_amdahl_at_rl1(self, n, r, f, c, o, growth):
        """Eq 3 with a one-BCE 'large' core is exactly Eq 1."""
        assert hill_marty.speedup_asymmetric(f, n, 1.0) == pytest.approx(
            amdahl.speedup(f, n), rel=1e-12
        )

    def test_eq4_reduces_to_eq2_when_o_is_zero(self, n, r, f, c, o, growth):
        """With no growing overhead the merging model IS Hill–Marty, for
        any core size and any growth law."""
        params = AppParams(f=f, fcon_share=c, fored_share=0.0)
        assert merging.speedup_symmetric(params, n, r, growth=growth) == (
            pytest.approx(hill_marty.speedup_symmetric(f, n, r), rel=1e-12)
        )

    def test_eq5_reduces_to_eq3_when_o_is_zero(self, n, r, f, c, o, growth):
        """Asymmetric analogue: Eq 5 at o = 0 matches Eq 3 (small cores
        of 1 BCE, which is Eq 3's shape)."""
        params = AppParams(f=f, fcon_share=c, fored_share=0.0)
        rl = max(float(r), 1.0)
        assert merging.speedup_asymmetric(params, n, rl, r=1.0,
                                          growth=growth) == (
            pytest.approx(hill_marty.speedup_asymmetric(f, n, rl), rel=1e-12)
        )

    def test_speedup_monotone_in_f(self, n, r, f, c, o, growth):
        """More parallelism never slows the modelled chip down."""
        lo = AppParams(f=max(f - 0.005, 1e-6), fcon_share=c, fored_share=o)
        hi = AppParams(f=min(f + 0.005, 1 - 1e-9), fcon_share=c, fored_share=o)
        s_lo = merging.speedup_symmetric(lo, n, r, growth=growth)
        s_hi = merging.speedup_symmetric(hi, n, r, growth=growth)
        assert s_hi >= s_lo - 1e-12
        # and the underlying laws agree
        assert amdahl.speedup(hi.f, n) >= amdahl.speedup(lo.f, n) - 1e-12
        assert hill_marty.speedup_symmetric(hi.f, n, r) >= (
            hill_marty.speedup_symmetric(lo.f, n, r) - 1e-12
        )

    def test_extended_never_exceeds_hill_marty(self, n, r, f, c, o, growth):
        """Merging overhead is a pure cost: Eq 4 <= Eq 2 pointwise."""
        params = AppParams(f=f, fcon_share=c, fored_share=o)
        ext = merging.speedup_symmetric(params, n, r, growth=growth)
        hm = hill_marty.speedup_symmetric(f, n, r)
        assert ext <= hm + 1e-12

    def test_extended_asymmetric_never_exceeds_hill_marty(
        self, n, r, f, c, o, growth
    ):
        """Asymmetric analogue: Eq 5 <= Eq 3 pointwise (r = 1 smalls)."""
        params = AppParams(f=f, fcon_share=c, fored_share=o)
        rl = max(float(r), 1.0)
        ext = merging.speedup_asymmetric(params, n, rl, r=1.0, growth=growth)
        hm = hill_marty.speedup_asymmetric(f, n, rl)
        assert ext <= hm + 1e-12


def test_growth_laws_never_discount_at_one_plus_cores():
    """grow(nc) >= 1 for nc >= 1 — the premise behind ext <= HM above."""
    rng = random.Random(_SEED + 1)
    laws = [resolve_growth(g) for g in ("linear", "log", "parallel")]
    laws += [PolynomialGrowth(rng.uniform(0.05, 3.0)) for _ in range(5)]
    for law in laws:
        for _ in range(200):
            nc = rng.uniform(1.0, 1024.0)
            assert law(nc) >= 1.0 - 1e-12, (law.name, nc)


def test_grid_is_deterministic():
    """The random grid is reproducible: reruns test the same points."""
    a = [p.values for p in _random_grid()]
    b = [p.values for p in _random_grid()]
    assert a == b
