"""Unit tests for the memory-bandwidth-wall extension."""

import numpy as np
import pytest

from repro.core import merging
from repro.core.bandwidth import (
    bandwidth_wall_cores,
    best_symmetric_bw,
    speedup_symmetric_bw,
)
from repro.core.params import AppParams


def params(ored=0.8) -> AppParams:
    return AppParams(f=0.99, fcon_share=0.60, fored_share=ored)


class TestModel:
    def test_zero_beta_recovers_merging_model(self):
        sizes = merging.power_of_two_sizes(256)
        ours = np.asarray(speedup_symmetric_bw(params(), 256, sizes, beta=0.0))
        eq4 = np.asarray(merging.speedup_symmetric(params(), 256, sizes))
        assert np.allclose(ours, eq4)

    def test_wall_caps_speedup(self):
        # once bandwidth-bound, speedup <= 1/(f·beta) regardless of design
        beta = 0.01
        sizes = merging.power_of_two_sizes(256)
        sp = np.asarray(speedup_symmetric_bw(params(0.1), 256, sizes, beta))
        assert np.all(sp <= 1.0 / (0.99 * beta) + 1e-9)

    def test_wall_binds_small_cores_first(self):
        # many small cores have the highest aggregate compute, so they hit
        # the fixed bandwidth first: the loss vs beta=0 is largest at r=1
        p = AppParams(f=0.999, fcon_share=0.6, fored_share=0.05)
        # the compute bound's floor on a 256-BCE chip is 1/256; a wall at
        # 1/150 binds the 256x1-BCE design but not the 4x64-BCE one
        beta = 1.0 / 150
        loss_r1 = (
            float(merging.speedup_symmetric(p, 256, 1.0))
            / float(speedup_symmetric_bw(p, 256, 1.0, beta))
        )
        loss_r64 = (
            float(merging.speedup_symmetric(p, 256, 64.0))
            / float(speedup_symmetric_bw(p, 256, 64.0, beta))
        )
        assert loss_r1 > loss_r64

    def test_wall_shifts_optimum_to_bigger_cores(self):
        p = AppParams(f=0.999, fcon_share=0.6, fored_share=0.05)
        r_free, _ = best_symmetric_bw(p, 256, beta=0.0, growth="log")
        r_walled, _ = best_symmetric_bw(p, 256, beta=1 / 150, growth="log")
        assert r_walled >= r_free

    def test_monotone_in_beta(self):
        for r in (1.0, 8.0, 64.0):
            sp = [
                float(speedup_symmetric_bw(params(), 256, r, b))
                for b in (0.0, 0.005, 0.02, 0.1)
            ]
            assert sp == sorted(sp, reverse=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            speedup_symmetric_bw(params(), 256, 4.0, beta=-0.1)
        with pytest.raises(ValueError):
            speedup_symmetric_bw(params(), 256, 512.0, beta=0.1)


class TestWallCores:
    def test_closed_form(self):
        # r=1, perf=1: nc* = 1/beta
        assert bandwidth_wall_cores(256, 1.0, 0.01) == pytest.approx(100.0)

    def test_bigger_cores_hit_wall_at_fewer_cores(self):
        assert bandwidth_wall_cores(256, 16.0, 0.01) < bandwidth_wall_cores(
            256, 1.0, 0.01
        )

    def test_infinite_without_wall(self):
        assert bandwidth_wall_cores(256, 1.0, 0.0) == float("inf")
