"""Hypothesis property tests for the model layer's invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import amdahl, communication as comm, hill_marty, merging
from repro.core.growth import LINEAR, LOG, PARALLEL
from repro.core.params import AppParams

fractions = st.floats(min_value=0.5, max_value=0.99999, allow_nan=False)
shares = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
core_sizes = st.sampled_from([1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0])
processor_counts = st.integers(min_value=1, max_value=4096)


@st.composite
def app_params(draw):
    return AppParams(
        f=draw(fractions),
        fcon_share=draw(shares),
        fored_share=draw(shares),
    )


class TestAmdahlInvariants:
    @given(f=fractions, p=processor_counts)
    def test_speedup_bounded_by_p_and_limit(self, f, p):
        sp = amdahl.speedup(f, p)
        assert 1.0 <= sp <= p + 1e-9
        assert sp <= amdahl.speedup_limit(f) + 1e-9

    @given(f=fractions, p=st.integers(min_value=2, max_value=2048))
    def test_monotone_in_processors(self, f, p):
        assert amdahl.speedup(f, p) >= amdahl.speedup(f, p - 1) - 1e-12

    @given(f1=fractions, f2=fractions, p=processor_counts)
    def test_monotone_in_parallel_fraction(self, f1, f2, p):
        lo, hi = sorted([f1, f2])
        assert amdahl.speedup(hi, p) >= amdahl.speedup(lo, p) - 1e-12


class TestHillMartyInvariants:
    @given(f=fractions, r=core_sizes)
    def test_symmetric_bounded_by_amdahl_with_unit_cores(self, f, r):
        # building bigger cores can never beat ideal linear scaling of n
        # unit cores for the parallel part plus a perfect serial engine
        n = 256
        sp = hill_marty.speedup_symmetric(f, n, r)
        assert 0 < sp <= n

    @given(f=fractions, rl=core_sizes)
    def test_asymmetric_at_least_large_core_alone(self, f, rl):
        n = 256
        sp = hill_marty.speedup_asymmetric(f, n, rl)
        assert sp > 0
        # adding small cores never hurts relative to serialising everything
        # on the large core:
        serial_only = 1.0 / ((1 - f) / np.sqrt(rl) + f / np.sqrt(rl))
        assert sp >= serial_only - 1e-9


class TestMergingInvariants:
    @given(p=app_params(), r=core_sizes)
    def test_extended_at_most_hill_marty(self, p, r):
        # grow(nc) >= 1 for all our growth laws, so the extended serial cost
        # is >= the constant one → speedup can only be lower.
        n = 256
        ours = float(merging.speedup_symmetric(p, n, r))
        hm = float(hill_marty.speedup_symmetric(p.f, n, r))
        assert ours <= hm + 1e-9

    @given(p=app_params(), r=core_sizes)
    def test_growth_ordering_parallel_log_linear(self, p, r):
        n = 256
        sp_par = float(merging.speedup_symmetric(p, n, r, PARALLEL))
        sp_log = float(merging.speedup_symmetric(p, n, r, LOG))
        sp_lin = float(merging.speedup_symmetric(p, n, r, LINEAR))
        assert sp_par >= sp_log - 1e-9 >= sp_lin - 2e-9

    @given(p=app_params(), rl=core_sizes, r=st.sampled_from([1.0, 4.0, 16.0]))
    def test_asymmetric_positive_and_finite(self, p, rl, r):
        if rl < r:
            return
        sp = float(merging.speedup_asymmetric(p, 256, rl, r))
        assert np.isfinite(sp) and sp > 0

    @given(p=app_params())
    def test_zero_overhead_share_equals_hill_marty_everywhere(self, p):
        q = p.with_(fored_share=0.0)
        sizes = merging.power_of_two_sizes(256)
        ours = np.asarray(merging.speedup_symmetric(q, 256, sizes))
        hm = np.asarray(hill_marty.speedup_symmetric(q.f, 256, sizes))
        assert np.allclose(ours, hm)

    @given(p=app_params(), o1=shares, o2=shares, r=core_sizes)
    def test_monotone_decreasing_in_overhead_share(self, p, o1, o2, r):
        lo, hi = sorted([o1, o2])
        sp_lo = float(merging.speedup_symmetric(p.with_(fored_share=lo), 256, r))
        sp_hi = float(merging.speedup_symmetric(p.with_(fored_share=hi), 256, r))
        assert sp_hi <= sp_lo + 1e-9


class TestCommunicationInvariants:
    @given(p=app_params(), r=core_sizes)
    def test_comm_model_positive(self, p, r):
        sp = float(comm.speedup_symmetric_comm(p, 256, r))
        assert np.isfinite(sp) and sp > 0

    @given(p=app_params(), r=core_sizes)
    def test_comm_model_at_most_parallel_growth_model(self, p, r):
        # the comm model charges the parallel-reduction computation plus a
        # communication term; dropping the comm term recovers something at
        # least as fast as keeping it.
        n = 256
        no_comm = comm.CommGrowth("none", lambda nc: np.zeros_like(np.asarray(nc, float)))
        with_mesh = float(comm.speedup_symmetric_comm(p, n, r, comm=comm.MESH_COMM))
        without = float(comm.speedup_symmetric_comm(p, n, r, comm=no_comm))
        assert with_mesh <= without + 1e-9

    @settings(max_examples=50)
    @given(nc=st.floats(min_value=1.0, max_value=65536.0, allow_nan=False))
    def test_mesh_growcomm_monotone(self, nc):
        assert comm.MESH_COMM(nc + 1.0) >= comm.MESH_COMM(nc)
