"""Unit tests for the measured-form serial-growth model (Figs 2–3)."""

import numpy as np
import pytest

from repro.core import measured
from repro.core.params import TABLE2, MeasuredParams


class TestSerialTime:
    def test_single_core_equals_measured_serial_fraction(self):
        for app in TABLE2.values():
            assert measured.serial_time(app, 1) == pytest.approx(app.s)

    def test_grows_with_cores(self):
        cores = np.arange(1, 17)
        for app in TABLE2.values():
            st = np.asarray(measured.serial_time(app, cores))
            assert np.all(np.diff(st) > 0), app.name

    def test_linear_apps_grow_linearly(self):
        k = TABLE2["kmeans"]
        st = np.asarray(measured.serial_time(k, np.array([1.0, 2.0, 3.0, 4.0])))
        diffs = np.diff(st)
        assert np.allclose(diffs, diffs[0])  # constant slope
        assert diffs[0] == pytest.approx(k.fcred * k.fored_rel)

    def test_hop_grows_superlinearly(self):
        h = TABLE2["hop"]
        st = np.asarray(measured.serial_time(h, np.array([2.0, 4.0, 8.0, 16.0])))
        increments = np.diff(st)
        assert np.all(np.diff(increments) > 0)  # accelerating growth

    def test_rejects_core_count_below_one(self):
        with pytest.raises(ValueError):
            measured.serial_time(TABLE2["kmeans"], 0)


class TestNormalisedSerialTime:
    def test_unity_at_one_core(self):
        for app in TABLE2.values():
            assert measured.serial_time_normalised(app, 1) == pytest.approx(1.0)

    def test_fig2b_significant_growth_at_16_cores(self):
        # Fig 2(b): "serial section time ... grows significantly with the
        # number of cores" — all apps well above the constant-model's 1.0.
        for app in TABLE2.values():
            assert measured.serial_time_normalised(app, 16) > 2.0, app.name

    def test_growth_ordering_follows_reduction_share_times_slope(self):
        # normalised slope is fred_share·fored_rel: kmeans (0.43·0.72=0.31)
        # grows steeper than fuzzy (0.35·0.82=0.29) at moderate core counts.
        n16 = {name: measured.serial_time_normalised(app, 16) for name, app in TABLE2.items()}
        assert n16["kmeans"] > n16["fuzzy"]


class TestSpeedupPredictions:
    def test_amdahl_curve_matches_closed_form(self):
        k = TABLE2["kmeans"]
        assert measured.speedup_amdahl(k, 256) == pytest.approx(
            1.0 / (k.s + k.f / 256)
        )

    def test_extended_below_amdahl_beyond_one_core(self):
        cores = np.array([2.0, 16.0, 64.0, 256.0])
        for app in TABLE2.values():
            ext = np.asarray(measured.speedup_extended(app, cores))
            amd = np.asarray(measured.speedup_amdahl(app, cores))
            assert np.all(ext < amd), app.name

    def test_equal_at_one_core(self):
        for app in TABLE2.values():
            assert measured.speedup_extended(app, 1) == pytest.approx(
                measured.speedup_amdahl(app, 1)
            )

    def test_fig3_amdahl_scales_to_256_but_extended_tapers(self):
        # "Under the assumption that serial sections are constant ... speedup
        # linearly scales to at least 256 cores. However, by factoring in
        # growth ... speedup tapers off at much lesser core count."
        for app in TABLE2.values():
            amd = measured.speedup_amdahl(app, np.array([128.0, 256.0]))
            assert amd[1] > amd[0]  # Amdahl still rising at 256
            p_star, _ = measured.peak_core_count(app, max_cores=2048)
            assert p_star < 2048, app.name  # extended model peaks

    def test_peak_closed_form_for_linear_growth(self):
        # p* = sqrt(f / (fcred·fored_rel)) for alpha = 1
        k = TABLE2["kmeans"]
        p_star, _ = measured.peak_core_count(k, max_cores=8192)
        analytic = np.sqrt(k.f / (k.fcred * k.fored_rel))
        assert p_star == pytest.approx(analytic, rel=0.02)

    def test_fig2a_near_linear_scaling_to_16_cores(self):
        # Fig 2(a): kmeans and fuzzy "exhibit a speedup close to 16".
        for name in ("kmeans", "fuzzy"):
            sp16 = measured.speedup_extended(TABLE2[name], 16)
            assert sp16 > 15.5, name


class TestCustomParams:
    def test_zero_growth_is_amdahl(self):
        p = MeasuredParams(
            name="flat", serial_pct=1.0, critical_pct=0.0,
            fored_rel=0.0, fred_share=0.4, fcon_share=0.6,
        )
        cores = np.array([1.0, 8.0, 64.0])
        assert np.allclose(
            measured.speedup_extended(p, cores), measured.speedup_amdahl(p, cores)
        )
