"""Unit tests for the combined critical-section + merging model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import merging
from repro.core.critical import (
    CriticalParams,
    best_symmetric_cs,
    speedup_asymmetric_cs,
    speedup_symmetric_cs,
)
from repro.core.params import AppParams


def base() -> AppParams:
    return AppParams(f=0.99, fcon_share=0.60, fored_share=0.80)


class TestReduction:
    def test_zero_cs_recovers_merging_model(self):
        p = CriticalParams(base=base(), fcs_share=0.0)
        sizes = merging.power_of_two_sizes(256)
        ours = np.asarray(speedup_symmetric_cs(p, 256, sizes))
        eq4 = np.asarray(merging.speedup_symmetric(base(), 256, sizes))
        assert np.allclose(ours, eq4)

    def test_zero_cs_asymmetric(self):
        p = CriticalParams(base=base(), fcs_share=0.0)
        rl = np.array([16.0, 64.0, 128.0])
        ours = np.asarray(speedup_asymmetric_cs(p, 256, rl, r=4.0))
        eq5 = np.asarray(merging.speedup_asymmetric(base(), 256, rl, r=4.0))
        assert np.allclose(ours, eq5)


class TestFractions:
    def test_fcs_is_fraction_of_parallel_work(self):
        p = CriticalParams(base=base(), fcs_share=0.05)
        assert p.fcs == pytest.approx(0.99 * 0.05)
        assert p.f_ncs + p.fcs == pytest.approx(0.99)

    def test_rejects_bad_share(self):
        with pytest.raises(ValueError):
            CriticalParams(base=base(), fcs_share=1.5)


class TestSerializationEffects:
    def test_critical_sections_cap_speedup(self):
        # bottleneck mode: the parallel phase cannot beat the lock's
        # serial demand, served at perf(r): speedup <= perf(r) / fcs
        p = CriticalParams(base=base(), fcs_share=0.05)
        sizes = merging.power_of_two_sizes(256)
        sp = np.asarray(speedup_symmetric_cs(p, 256, sizes, mode="bottleneck"))
        caps = np.sqrt(sizes) / p.fcs
        assert np.all(sp <= caps + 1e-9)

    def test_more_cs_work_means_less_speedup(self):
        # shares big enough that the lock, not the merge, is binding
        lo = CriticalParams(base=base(), fcs_share=0.05)
        hi = CriticalParams(base=base(), fcs_share=0.40)
        _, sp_lo = best_symmetric_cs(lo, 256)
        _, sp_hi = best_symmetric_cs(hi, 256)
        assert sp_hi < sp_lo

    def test_small_cs_share_slack_when_merge_dominates(self):
        # with the paper's high-overhead class, a 1% critical section is
        # not the binding constraint — the merge is (orthogonality of the
        # two limiters, as Section VI argues)
        p = CriticalParams(base=base(), fcs_share=0.01)
        _, combined = best_symmetric_cs(p, 256)
        plain = merging.best_symmetric(base(), 256).speedup
        assert combined == pytest.approx(plain, rel=1e-6)

    def test_probabilistic_at_most_bottleneck_serialization(self):
        p = CriticalParams(base=base(), fcs_share=0.05)
        sizes = merging.power_of_two_sizes(256)
        prob = np.asarray(speedup_symmetric_cs(p, 256, sizes, mode="probabilistic"))
        btl = np.asarray(speedup_symmetric_cs(p, 256, sizes, mode="bottleneck"))
        assert np.all(prob >= btl - 1e-12)

    def test_negligible_cs_matches_paper_assumption(self):
        # Table II: clustering apps have <= 0.004% critical sections — the
        # paper excludes them; the combined model must agree to ~0.1%.
        p = CriticalParams(base=base(), fcs_share=0.00004)
        best_combined = best_symmetric_cs(p, 256)[1]
        best_plain = merging.best_symmetric(base(), 256).speedup
        assert best_combined == pytest.approx(best_plain, rel=1e-3)

    def test_large_cores_relieve_cs_bottleneck_on_symmetric(self):
        # critical sections run at perf(r): larger cores shorten them
        p = CriticalParams(base=base(), fcs_share=0.2)
        sp_small = float(speedup_symmetric_cs(p, 256, 1.0))
        sp_big = float(speedup_symmetric_cs(p, 256, 16.0))
        assert sp_big > sp_small


class TestACS:
    def test_accelerating_critical_sections_helps(self):
        # Suleman et al.'s ACS: contended CS on the big core beats CS on
        # the small cores
        p = CriticalParams(base=base(), fcs_share=0.10)
        rl = 64.0
        acs = float(speedup_asymmetric_cs(p, 256, rl, r=1.0, accelerate_critical=True))
        no_acs = float(speedup_asymmetric_cs(p, 256, rl, r=1.0, accelerate_critical=False))
        assert acs > no_acs

    def test_acmp_with_acs_beats_symmetric_for_cs_heavy_apps(self):
        # with heavy critical sections the large core pays off even at
        # high reduction overhead (it serves both bottlenecks)
        p = CriticalParams(base=base(), fcs_share=0.15)
        _, sym = best_symmetric_cs(p, 256)
        rl_grid = merging.power_of_two_sizes(256)
        asym = max(
            float(np.max(np.asarray(
                speedup_asymmetric_cs(p, 256, rl_grid[rl_grid >= r], r=r)
            )))
            for r in (1.0, 4.0, 16.0)
        )
        assert asym > sym


class TestValidation:
    def test_unknown_mode(self):
        p = CriticalParams(base=base(), fcs_share=0.05)
        with pytest.raises(ValueError):
            speedup_symmetric_cs(p, 256, 4.0, mode="magic")
        with pytest.raises(ValueError):
            speedup_asymmetric_cs(p, 256, 16.0, mode="magic")

    def test_geometry_validation(self):
        p = CriticalParams(base=base(), fcs_share=0.05)
        with pytest.raises(ValueError):
            speedup_symmetric_cs(p, 256, 512.0)
        with pytest.raises(ValueError):
            speedup_asymmetric_cs(p, 256, rl=2.0, r=4.0)


class TestProperties:
    @settings(max_examples=50)
    @given(
        fcs=st.floats(min_value=0.0, max_value=0.5),
        r=st.sampled_from([1.0, 4.0, 16.0, 64.0]),
        mode=st.sampled_from(["bottleneck", "probabilistic"]),
    )
    def test_combined_never_exceeds_merging_model(self, fcs, r, mode):
        p = CriticalParams(base=base(), fcs_share=fcs)
        combined = float(speedup_symmetric_cs(p, 256, r, mode=mode))
        plain = float(merging.speedup_symmetric(base(), 256, r))
        assert combined <= plain + 1e-9

    @settings(max_examples=50)
    @given(
        f1=st.floats(min_value=0.0, max_value=0.4),
        f2=st.floats(min_value=0.0, max_value=0.4),
        r=st.sampled_from([1.0, 8.0, 64.0]),
    )
    def test_monotone_in_cs_share(self, f1, f2, r):
        lo, hi = sorted([f1, f2])
        sp_lo = float(speedup_symmetric_cs(CriticalParams(base(), lo), 256, r))
        sp_hi = float(speedup_symmetric_cs(CriticalParams(base(), hi), 256, r))
        assert sp_hi <= sp_lo + 1e-9
