"""Unit tests for the extended merging-phase model (Eqs 4–5).

The `TestPaperAnchors` class pins every numeric value the paper's text
quotes from Figs 4 and 5 — these are the primary regression tests for the
reproduction.
"""

import numpy as np
import pytest

from repro.core import hill_marty, merging
from repro.core.growth import LINEAR, LOG
from repro.core.params import AppParams


def params_for(f: float, con: float, ored: float) -> AppParams:
    return AppParams(f=f, fcon_share=con, fored_share=ored)


class TestPaperAnchors:
    """Numeric values quoted in the paper's Section V text."""

    def test_fig4c_emb_moderate_low_peaks_at_104_5(self):
        # "(0.999, Linear) in graph 4(c) attains a maximum speedup of 104.5
        # for r = 4"
        d = merging.best_symmetric(params_for(0.999, 0.60, 0.10), 256)
        assert d.r == 4.0
        assert d.speedup == pytest.approx(104.5, abs=0.15)

    def test_fig4d_emb_moderate_high_peaks_at_67_1(self):
        # "in graph 4(d) maximum speedup of 67.1 is attained for r = 8"
        d = merging.best_symmetric(params_for(0.999, 0.60, 0.80), 256)
        assert d.r == 8.0
        assert d.speedup == pytest.approx(67.1, abs=0.1)

    def test_fig4d_nonemb_moderate_high_peaks_at_36_2(self):
        # "speedup = 36.2 for Linear under f = 0.99 ... (r = 32)"
        d = merging.best_symmetric(params_for(0.99, 0.60, 0.80), 256)
        assert d.r == 32.0
        assert d.speedup == pytest.approx(36.2, abs=0.1)

    def test_fig4b_nonemb_high_high_peaks_at_47_6(self):
        # "CMPs (Figure 4(b)) yield a maximum speedup of 47.6"
        d = merging.best_symmetric(params_for(0.99, 0.90, 0.80), 256)
        assert d.r == 16.0
        assert d.speedup == pytest.approx(47.6, abs=0.15)

    def test_fig5d_nonemb_high_high_acmp_64_2(self):
        # "ACMPs yield a speedup of 64.2" with r = 4 beating r = 1
        p = params_for(0.99, 0.90, 0.80)
        sp = float(merging.speedup_asymmetric(p, 256, rl=64.0, r=4.0))
        assert sp == pytest.approx(64.2, abs=0.1)
        sizes, curve_r4 = merging.sweep_asymmetric(p, 256, r=4.0)
        _, curve_r1 = merging.sweep_asymmetric(p, 256, r=1.0)
        assert curve_r4.max() > curve_r1.max()

    def test_fig5h_nonemb_moderate_high_acmp_values(self):
        # "perform worse (speedup = 22.6)" for r = 1; "ACMPs yield a maximum
        # speedup of 43.3 (r = 4)"
        p = params_for(0.99, 0.60, 0.80)
        _, curve_r1 = merging.sweep_asymmetric(p, 256, r=1.0)
        _, curve_r4 = merging.sweep_asymmetric(p, 256, r=4.0)
        assert curve_r1.max() == pytest.approx(22.6, abs=0.3)
        assert curve_r4.max() == pytest.approx(43.3, abs=0.1)

    def test_fig5h_acmp_with_many_small_cores_loses_to_symmetric(self):
        # the paper's key inversion: ACMP(r=1) = 22.6 < CMP = 36.2,
        # "contrary to the predictions using Amdahl's Law (162.3 vs 79.7)"
        p = params_for(0.99, 0.60, 0.80)
        _, curve_r1 = merging.sweep_asymmetric(p, 256, r=1.0)
        sym = merging.best_symmetric(p, 256)
        assert curve_r1.max() < sym.speedup
        # while plain Amdahl predicts the opposite ordering:
        _, hm_asym = hill_marty.best_asymmetric(p.f, 256)
        _, hm_sym = hill_marty.best_symmetric(p.f, 256)
        assert hm_asym > hm_sym


class TestSymmetricModel:
    def test_no_overhead_reduces_to_hill_marty(self):
        # with fored = 0 the serial cost is constant = 1 - f → exactly Eq 2.
        p = AppParams(f=0.99, fcon_share=0.7, fored_share=0.0)
        sizes = merging.power_of_two_sizes(256)
        ours = merging.speedup_symmetric(p, 256, sizes)
        hm = hill_marty.speedup_symmetric(0.99, 256, sizes)
        assert np.allclose(ours, hm)

    def test_extended_never_exceeds_hill_marty(self):
        # growth only adds serial cost (grow >= 1 ≥ the constant model's
        # implicit factor), so the extended prediction is an upper bound.
        p = params_for(0.99, 0.60, 0.80)
        sizes = merging.power_of_two_sizes(256)
        assert np.all(
            np.asarray(merging.speedup_symmetric(p, 256, sizes))
            <= np.asarray(hill_marty.speedup_symmetric(p.f, 256, sizes)) + 1e-9
        )

    def test_log_growth_dominates_linear(self):
        p = params_for(0.999, 0.60, 0.80)
        sizes = merging.power_of_two_sizes(256)
        lin = np.asarray(merging.speedup_symmetric(p, 256, sizes, LINEAR))
        log = np.asarray(merging.speedup_symmetric(p, 256, sizes, LOG))
        assert np.all(log >= lin - 1e-12)

    def test_fig4_log_growth_lets_emb_apps_use_small_cores(self):
        # "For embarrassingly parallel applications, however, small cores
        # manage to yield the highest speedup" under Log growth (Fig 4(c)).
        p = params_for(0.999, 0.60, 0.10)
        sizes, sp = merging.sweep_symmetric(p, 256, growth=LOG)
        assert sizes[int(np.argmax(sp))] == 1.0

    def test_higher_overhead_pushes_optimum_to_bigger_cores(self):
        # paper conclusion (b)
        low = merging.best_symmetric(params_for(0.99, 0.60, 0.10), 256)
        high = merging.best_symmetric(params_for(0.99, 0.60, 0.80), 256)
        assert high.r > low.r
        assert high.speedup < low.speedup

    def test_256_singleton_cores_never_optimal_under_linear_growth(self):
        # "a design with 256 cores (r = 1 ...) never yields the highest
        # speedup" for any Table III class under linear growth (Fig 4).
        from repro.core.classes import TABLE3_CLASSES

        for cls in TABLE3_CLASSES:
            d = merging.best_symmetric(cls.params(), 256, growth=LINEAR)
            assert d.r > 1.0, cls.key

    def test_serial_term_at_single_core_equals_serial_fraction(self):
        p = params_for(0.99, 0.60, 0.80)
        # r = n → one core → serial cost is fcon + fcred + fored·grow(1) = s
        assert merging.serial_term_symmetric(p, 256, 256.0) == pytest.approx(p.serial)

    def test_rejects_invalid_sizes(self):
        p = params_for(0.99, 0.6, 0.8)
        with pytest.raises(ValueError):
            merging.speedup_symmetric(p, 256, 0.0)
        with pytest.raises(ValueError):
            merging.speedup_symmetric(p, 256, 512.0)


class TestAsymmetricModel:
    def test_rl_equals_n_is_single_big_core(self):
        p = params_for(0.99, 0.60, 0.10)
        # one core: parallel throughput perf(n), serial cost s / perf(n)
        sp = float(merging.speedup_asymmetric(p, 256, rl=256.0, r=1.0))
        expected = 1.0 / ((p.serial / 16.0) + p.f / 16.0)
        assert sp == pytest.approx(expected)

    def test_no_overhead_with_unit_small_cores_reduces_to_eq3(self):
        p = AppParams(f=0.99, fcon_share=0.5, fored_share=0.0)
        rl = np.array([4.0, 32.0, 128.0])
        ours = merging.speedup_asymmetric(p, 256, rl, r=1.0)
        hm = hill_marty.speedup_asymmetric(0.99, 256, rl)
        assert np.allclose(ours, hm)

    def test_reduction_participants_include_large_core(self):
        # nc = (n - rl)/r + 1; with rl = n the reduction is single-core.
        p = params_for(0.99, 0.60, 0.80)
        sp_full = float(merging.speedup_asymmetric(p, 256, 256.0, 1.0))
        # manual: serial = (fcon + fcred + fored*1)/16, parallel = f/16
        expected = 1.0 / ((p.fcon + p.fcred + p.fored) / 16.0 + p.f / 16.0)
        assert sp_full == pytest.approx(expected)

    def test_low_overhead_prefers_many_small_cores(self):
        # Fig 5(a)/(e): with low reduction overhead, r = 1 wins.
        for con in (0.90, 0.60):
            p = params_for(0.999, con, 0.10)
            best = merging.best_asymmetric(p, 256)
            assert best.r == 1.0, f"fcon={con}"

    def test_rejects_large_core_smaller_than_small_cores(self):
        p = params_for(0.99, 0.6, 0.8)
        with pytest.raises(ValueError):
            merging.speedup_asymmetric(p, 256, rl=2.0, r=4.0)

    def test_sweep_respects_r_floor(self):
        p = params_for(0.99, 0.6, 0.8)
        sizes, _ = merging.sweep_asymmetric(p, 256, r=16.0)
        assert sizes.min() >= 16.0


class TestDesignRecords:
    def test_symmetric_core_count(self):
        d = merging.SymmetricDesign(r=4.0, speedup=10.0, n=256)
        assert d.cores == 64.0

    def test_asymmetric_core_counts(self):
        d = merging.AsymmetricDesign(rl=64.0, r=4.0, speedup=10.0, n=256)
        assert d.small_cores == 48.0
        assert d.cores == 49.0

    def test_power_of_two_grid(self):
        grid = merging.power_of_two_sizes(256)
        assert grid[0] == 1.0 and grid[-1] == 256.0
        assert len(grid) == 9
        assert np.all(np.diff(np.log2(grid)) == 1.0)

    def test_power_of_two_grid_with_cap(self):
        grid = merging.power_of_two_sizes(256, maximum=16)
        assert grid[-1] == 16.0
