"""Unit tests for workload-mix design optimisation."""

import numpy as np
import pytest

from repro.core import merging
from repro.core.mix import WorkloadMix, best_symmetric_for_mix, mix_speedup
from repro.core.params import AppParams


def light() -> AppParams:
    return AppParams(f=0.999, fcon_share=0.60, fored_share=0.10, name="light")


def heavy() -> AppParams:
    return AppParams(f=0.99, fcon_share=0.60, fored_share=0.80, name="heavy")


class TestMixConstruction:
    def test_uniform(self):
        m = WorkloadMix.uniform([light(), heavy()])
        assert np.allclose(m.normalised_weights, [0.5, 0.5])

    def test_normalisation(self):
        m = WorkloadMix(apps=(light(), heavy()), weights=(3.0, 1.0))
        assert np.allclose(m.normalised_weights, [0.75, 0.25])

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadMix(apps=(), weights=())
        with pytest.raises(ValueError):
            WorkloadMix(apps=(light(),), weights=(1.0, 2.0))
        with pytest.raises(ValueError):
            WorkloadMix(apps=(light(),), weights=(0.0,))


class TestMixSpeedup:
    def test_single_app_mix_equals_app_speedup(self):
        m = WorkloadMix.uniform([heavy()])
        for r in (1.0, 8.0, 64.0):
            assert mix_speedup(m, 256, r) == pytest.approx(
                float(merging.speedup_symmetric(heavy(), 256, r))
            )

    def test_harmonic_mean_below_arithmetic(self):
        m = WorkloadMix.uniform([light(), heavy()])
        r = 8.0
        sp_mix = mix_speedup(m, 256, r)
        sp_l = float(merging.speedup_symmetric(light(), 256, r))
        sp_h = float(merging.speedup_symmetric(heavy(), 256, r))
        assert min(sp_l, sp_h) <= sp_mix <= (sp_l + sp_h) / 2

    def test_weight_shifts_toward_heavier_app(self):
        mostly_heavy = WorkloadMix(apps=(light(), heavy()), weights=(1.0, 9.0))
        mostly_light = WorkloadMix(apps=(light(), heavy()), weights=(9.0, 1.0))
        r = 4.0
        assert mix_speedup(mostly_heavy, 256, r) < mix_speedup(mostly_light, 256, r)


class TestMixOptimum:
    def test_compromise_between_per_app_optima(self):
        r_light = merging.best_symmetric(light(), 256).r
        r_heavy = merging.best_symmetric(heavy(), 256).r
        mix_best = best_symmetric_for_mix(WorkloadMix.uniform([light(), heavy()]))
        lo, hi = sorted([r_light, r_heavy])
        assert lo <= mix_best.r <= hi

    def test_mix_optimum_dominates_single_app_designs_on_mix(self):
        m = WorkloadMix.uniform([light(), heavy()])
        best = best_symmetric_for_mix(m)
        for single in (light(), heavy()):
            r_single = merging.best_symmetric(single, 256).r
            assert best.speedup >= mix_speedup(m, 256, r_single) - 1e-9

    def test_extreme_weights_recover_single_app_optimum(self):
        m = WorkloadMix(apps=(light(), heavy()), weights=(1e6, 1e-6))
        best = best_symmetric_for_mix(m)
        assert best.r == merging.best_symmetric(light(), 256).r
