"""Unit tests for the inverse-problem (requirements) module."""

import pytest

from repro.core import measured as mm
from repro.core.params import TABLE2, MeasuredParams
from repro.core.requirements import (
    max_affordable_overhead,
    required_parallel_fraction,
    worthwhile_cores,
)


class TestAffordableOverhead:
    def test_inversion_is_exact(self):
        # plug the bound back into the forward model: it hits the target
        f, con, p, target = 0.999, 0.6, 64, 40.0
        o = max_affordable_overhead(f, con, p, target)
        assert o > 0
        params = MeasuredParams(
            name="x", serial_pct=100 * (1 - f), critical_pct=0.0,
            fored_rel=o, fred_share=1 - con, fcon_share=con,
        )
        assert float(mm.speedup_extended(params, p)) == pytest.approx(target, rel=1e-9)

    def test_unreachable_target_returns_zero(self):
        # target above Amdahl's own ceiling: no overhead budget at all
        assert max_affordable_overhead(0.99, 0.6, 64, 70.0) == 0.0

    def test_budget_shrinks_with_core_count(self):
        # the same target on more cores leaves room; but a *scaled* target
        # (fixed efficiency) tightens the budget as p grows
        o_small = max_affordable_overhead(0.999, 0.6, 32, 0.5 * 32)
        o_large = max_affordable_overhead(0.999, 0.6, 256, 0.5 * 256)
        assert o_large < o_small

    def test_no_reduction_rejected(self):
        with pytest.raises(ValueError):
            max_affordable_overhead(0.99, 0.6, 16, 10.0, fred_share=0.0)


class TestWorthwhileCores:
    def test_matches_peak_region(self):
        k = TABLE2["kmeans"]
        p = worthwhile_cores(k, min_gain=0.01)
        peak, _ = mm.peak_core_count(k, max_cores=8192)
        assert p <= 2 * peak  # never recommends scaling past the peak zone

    def test_lower_gain_threshold_recommends_more_cores(self):
        k = TABLE2["kmeans"]
        assert worthwhile_cores(k, min_gain=0.001) >= worthwhile_cores(
            k, min_gain=0.2
        )

    def test_hop_stops_earliest(self):
        counts = {name: worthwhile_cores(app) for name, app in TABLE2.items()}
        assert counts["hop"] == min(counts.values())


class TestRequiredParallelFraction:
    def test_amdahl_inversion(self):
        # f for 50x on 100 cores: 1/50 = (1-f) + f/100
        f = required_parallel_fraction(100, 50.0)
        assert 1.0 / ((1 - f) + f / 100) == pytest.approx(50.0, rel=1e-12)

    def test_growth_raises_the_bar(self):
        base = required_parallel_fraction(100, 30.0)
        with_growth = required_parallel_fraction(100, 30.0, serial_growth=0.01)
        assert with_growth > base

    def test_unreachable_raises(self):
        with pytest.raises(ValueError):
            required_parallel_fraction(10, 20.0)  # 20x on 10 cores

    def test_trivial_target(self):
        assert required_parallel_fraction(8, 1.0) == 0.0
