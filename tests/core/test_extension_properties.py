"""Hypothesis property tests for the extension models.

Common contract: every extension must (a) reduce exactly to the base
merging model when its knob is neutral, and (b) only ever *lower* speedup
as its cost knob grows.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import merging
from repro.core.bandwidth import speedup_symmetric_bw
from repro.core.critical import CriticalParams, speedup_symmetric_cs
from repro.core.mix import WorkloadMix, mix_speedup
from repro.core.params import AppParams
from repro.core.uncore import speedup_symmetric_uncore

fractions = st.floats(min_value=0.5, max_value=0.9999, allow_nan=False)
shares = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
core_sizes = st.sampled_from([1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0])


@st.composite
def app_params(draw):
    return AppParams(
        f=draw(fractions), fcon_share=draw(shares), fored_share=draw(shares)
    )


class TestNeutralKnobsRecoverEq4:
    @settings(max_examples=40)
    @given(p=app_params(), r=core_sizes)
    def test_bandwidth_zero_beta(self, p, r):
        assert float(speedup_symmetric_bw(p, 256, r, beta=0.0)) == float(
            merging.speedup_symmetric(p, 256, r)
        )

    @settings(max_examples=40)
    @given(p=app_params(), r=core_sizes)
    def test_uncore_zero_tau(self, p, r):
        assert float(speedup_symmetric_uncore(p, 256, r, tau=0.0)) == float(
            merging.speedup_symmetric(p, 256, r)
        )

    @settings(max_examples=40)
    @given(p=app_params(), r=core_sizes)
    def test_critical_zero_share(self, p, r):
        cs = CriticalParams(base=p, fcs_share=0.0)
        assert float(speedup_symmetric_cs(cs, 256, r)) == float(
            merging.speedup_symmetric(p, 256, r)
        )

    @settings(max_examples=40)
    @given(p=app_params(), r=core_sizes)
    def test_singleton_mix(self, p, r):
        m = WorkloadMix.uniform([p])
        assert float(mix_speedup(m, 256, r)) == float(
            merging.speedup_symmetric(p, 256, r)
        )


class TestKnobsOnlyHurt:
    @settings(max_examples=40)
    @given(
        p=app_params(), r=core_sizes,
        b1=st.floats(min_value=0.0, max_value=0.1),
        b2=st.floats(min_value=0.0, max_value=0.1),
    )
    def test_bandwidth_monotone(self, p, r, b1, b2):
        lo, hi = sorted([b1, b2])
        assert float(speedup_symmetric_bw(p, 256, r, hi)) <= float(
            speedup_symmetric_bw(p, 256, r, lo)
        ) + 1e-9

    @settings(max_examples=40)
    @given(
        p=app_params(), r=core_sizes,
        c1=st.floats(min_value=0.0, max_value=0.5),
        c2=st.floats(min_value=0.0, max_value=0.5),
    )
    def test_critical_monotone(self, p, r, c1, c2):
        lo, hi = sorted([c1, c2])
        sp_lo = float(speedup_symmetric_cs(CriticalParams(p, lo), 256, r))
        sp_hi = float(speedup_symmetric_cs(CriticalParams(p, hi), 256, r))
        assert sp_hi <= sp_lo + 1e-9

    @settings(max_examples=40)
    @given(p=app_params(), tau=st.floats(min_value=0.0, max_value=8.0))
    def test_uncore_bounded_by_best_free_design(self, p, tau):
        # a taxed design can beat the same-r free design (fewer cores →
        # smaller merge) but never the free *optimum*
        taxed = float(speedup_symmetric_uncore(p, 256, 1.0, tau))
        free_best = merging.best_symmetric(p, 256).speedup
        assert taxed <= free_best + 1e-9


class TestMixBounds:
    @settings(max_examples=40)
    @given(a=app_params(), b=app_params(), r=core_sizes)
    def test_mix_between_component_speedups(self, a, b, r):
        m = WorkloadMix.uniform([a, b])
        sp = float(mix_speedup(m, 256, r))
        sa = float(merging.speedup_symmetric(a, 256, r))
        sb = float(merging.speedup_symmetric(b, 256, r))
        assert min(sa, sb) - 1e-9 <= sp <= max(sa, sb) + 1e-9
