"""Unit tests for the model-accuracy metrics (Fig 2(d))."""

import numpy as np
import pytest

from repro.core.accuracy import AccuracyReport, accuracy_ratio, evaluate_accuracy


class TestAccuracyRatio:
    def test_perfect_prediction(self):
        r = accuracy_ratio([1.0, 2.0], [1.0, 2.0])
        assert np.allclose(r, 1.0)

    def test_over_and_under(self):
        r = accuracy_ratio([1.14, 0.82], [1.0, 1.0])
        assert r[0] == pytest.approx(1.14)
        assert r[1] == pytest.approx(0.82)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy_ratio([1.0], [1.0, 2.0])

    def test_rejects_nonpositive_measurement(self):
        with pytest.raises(ValueError):
            accuracy_ratio([1.0], [0.0])


class TestAccuracyReport:
    def test_paper_margins(self):
        # paper: max overestimation +14% (fuzzy), max underestimation −18%
        # (kmeans)
        rep = AccuracyReport(cores=(2, 4, 8, 16), ratios=(1.14, 1.0, 0.9, 0.82))
        assert rep.max_overestimation == pytest.approx(0.14)
        assert rep.max_underestimation == pytest.approx(0.18)

    def test_within_tolerance(self):
        rep = AccuracyReport(cores=(2, 4), ratios=(1.1, 0.95))
        assert rep.within(0.12)
        assert not rep.within(0.05)

    def test_mae(self):
        rep = AccuracyReport(cores=(2, 4), ratios=(1.1, 0.9))
        assert rep.mean_absolute_error == pytest.approx(0.1)

    def test_no_overestimation_when_all_below_one(self):
        rep = AccuracyReport(cores=(2,), ratios=(0.8,))
        assert rep.max_overestimation == 0.0


class TestEvaluate:
    def test_uses_common_core_counts_only(self):
        rep = evaluate_accuracy({2: 1.0, 4: 2.2, 32: 9.0}, {2: 1.0, 4: 2.0, 8: 4.0})
        assert rep.cores == (2, 4)
        assert rep.ratios[1] == pytest.approx(1.1)

    def test_empty_intersection_raises(self):
        with pytest.raises(ValueError):
            evaluate_accuracy({2: 1.0}, {4: 1.0})
