"""Unit tests for the application parameter records (Tables II–IV)."""

import pytest

from repro.core.params import TABLE2, TABLE4, AppParams, MeasuredParams


class TestAppParams:
    def test_fraction_decomposition_sums_to_serial(self):
        p = AppParams(f=0.99, fcon_share=0.6, fored_share=0.8)
        assert p.fcon + p.fred == pytest.approx(p.serial)
        assert p.fcred + p.fored == pytest.approx(p.fred)
        assert p.serial == pytest.approx(0.01)

    def test_table3_example_values(self):
        # f=0.999, fcon=60%, fored=10%: fcon=0.0006, fcred=0.00036, fored=0.00004
        p = AppParams(f=0.999, fcon_share=0.60, fored_share=0.10)
        assert p.fcon == pytest.approx(6e-4)
        assert p.fcred == pytest.approx(3.6e-4)
        assert p.fored == pytest.approx(4e-5)

    def test_comm_split_is_half_half(self):
        p = AppParams(f=0.99, fcon_share=0.6, fored_share=0.8)
        assert p.fcomp == pytest.approx(p.fcomm)
        assert p.fcomp + p.fcomm == pytest.approx(p.fred)

    def test_rejects_f_outside_open_interval(self):
        with pytest.raises(ValueError):
            AppParams(f=1.0, fcon_share=0.5, fored_share=0.5)
        with pytest.raises(ValueError):
            AppParams(f=0.0, fcon_share=0.5, fored_share=0.5)

    def test_rejects_shares_outside_unit_interval(self):
        with pytest.raises(ValueError):
            AppParams(f=0.99, fcon_share=1.2, fored_share=0.5)
        with pytest.raises(ValueError):
            AppParams(f=0.99, fcon_share=0.5, fored_share=-0.1)

    def test_with_replaces_fields(self):
        p = AppParams(f=0.99, fcon_share=0.6, fored_share=0.8, name="a")
        q = p.with_(f=0.999)
        assert q.f == 0.999 and q.fcon_share == 0.6 and q.name == "a"
        assert p.f == 0.99  # frozen original untouched

    def test_describe_mentions_name_and_f(self):
        p = AppParams(f=0.99, fcon_share=0.6, fored_share=0.8, name="kmeans")
        text = p.describe()
        assert "kmeans" in text and "0.99" in text


class TestMeasuredParams:
    def test_table2_kmeans_row(self):
        k = TABLE2["kmeans"]
        assert k.s == pytest.approx(0.00015)
        assert k.f == pytest.approx(0.99985)
        assert k.fred_share == pytest.approx(0.43)
        assert k.fcon_share == pytest.approx(0.57)
        assert k.fored_rel == pytest.approx(0.72)

    def test_table2_hop_superlinear(self):
        h = TABLE2["hop"]
        assert h.fored_rel > 1.0  # 155% relative growth
        assert h.growth_alpha > 1.0

    def test_absolute_fractions(self):
        k = TABLE2["kmeans"]
        assert k.fcon + k.fred == pytest.approx(k.s)
        assert k.fcred == pytest.approx(k.fred)  # single-core baseline

    def test_shares_must_sum_to_one(self):
        with pytest.raises(ValueError):
            MeasuredParams(
                name="bad", serial_pct=0.1, critical_pct=0.0,
                fored_rel=0.5, fred_share=0.3, fcon_share=0.3,
            )

    def test_to_design_params_clips_fored(self):
        h = TABLE2["hop"]
        d = h.to_design_params()
        assert d.fored_share == 1.0
        assert d.f == pytest.approx(h.f)
        k = TABLE2["kmeans"].to_design_params()
        assert k.fored_share == pytest.approx(0.72)

    def test_all_three_applications_present(self):
        assert set(TABLE2) == {"kmeans", "fuzzy", "hop"}


class TestTable4:
    def test_has_all_ten_rows(self):
        assert len(TABLE4) == 10

    def test_base_rows_match_table2_shares(self):
        by_label = {r.label: r for r in TABLE4}
        assert by_label["kmeans-base"].fred_share == pytest.approx(
            TABLE2["kmeans"].fred_share
        )
        assert by_label["hop-default"].fred_share == pytest.approx(
            TABLE2["hop"].fred_share
        )

    def test_fuzzy_base_row_documents_paper_inconsistency(self):
        # The paper's Table IV prints fuzzy-base as fred=65/fcon=35 while its
        # Table II prints fred=35/fcon=65 for the same run — the columns are
        # swapped in one of the two tables.  We transcribe both verbatim and
        # record the conflict here so it is visible, not silently "fixed".
        by_label = {r.label: r for r in TABLE4}
        assert by_label["fuzzy-base"].fred_share == pytest.approx(
            TABLE2["fuzzy"].fcon_share
        )

    def test_shares_sum_to_one(self):
        for row in TABLE4:
            assert row.fred_share + row.fcon_share == pytest.approx(1.0)

    def test_point_scaling_raises_parallel_fraction(self):
        # Table IV: scaling N increases f because merge work is independent
        # of the number of points.
        by_label = {r.label: r for r in TABLE4}
        assert by_label["kmeans-point"].f > by_label["kmeans-base"].f
        assert by_label["fuzzy-point"].f > by_label["fuzzy-base"].f

    def test_hop_parallel_fraction_drops_with_larger_set(self):
        by_label = {r.label: r for r in TABLE4}
        assert by_label["hop-med"].f < by_label["hop-default"].f
