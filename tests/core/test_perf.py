"""Unit tests for core performance laws perf(r)."""

import numpy as np
import pytest

from repro.core.perf import (
    SQRT_PERF,
    LinearPerf,
    PollackPerf,
    SqrtPerf,
    TablePerf,
    resolve_perf_law,
)


class TestSqrtPerf:
    def test_four_bce_core_is_twice_as_fast(self):
        # "a core made up of four BCEs performs twice as high as a single
        # BCE" (Section V.D)
        assert SQRT_PERF(4.0) == pytest.approx(2.0)

    def test_normalised_at_one(self):
        assert SQRT_PERF(1.0) == pytest.approx(1.0)
        SQRT_PERF.validate_normalised()

    def test_vectorised(self):
        out = SQRT_PERF(np.array([1.0, 4.0, 16.0, 64.0]))
        assert np.allclose(out, [1, 2, 4, 8])

    def test_rejects_nonpositive_r(self):
        with pytest.raises(ValueError):
            SQRT_PERF(0.0)
        with pytest.raises(ValueError):
            SQRT_PERF(np.array([1.0, -2.0]))


class TestPollackPerf:
    def test_half_exponent_matches_sqrt(self):
        law = PollackPerf(0.5)
        r = np.array([1.0, 2.0, 9.0, 256.0])
        assert np.allclose(law(r), SqrtPerf()(r))

    def test_larger_exponent_gives_faster_big_cores(self):
        assert PollackPerf(0.7)(16.0) > PollackPerf(0.5)(16.0)

    def test_rejects_superlinear_exponent(self):
        with pytest.raises(ValueError):
            PollackPerf(1.2)

    def test_rejects_nonpositive_exponent(self):
        with pytest.raises(ValueError):
            PollackPerf(0.0)


class TestLinearPerf:
    def test_identity(self):
        law = LinearPerf()
        assert law(8.0) == pytest.approx(8.0)


class TestTablePerf:
    def test_interpolates_measured_points(self):
        law = TablePerf({1.0: 1.0, 4.0: 1.8, 16.0: 3.0})
        assert law(4.0) == pytest.approx(1.8)
        assert law(16.0) == pytest.approx(3.0)

    def test_loglog_interpolation_between_points(self):
        law = TablePerf({1.0: 1.0, 4.0: 2.0})
        # log-log midpoint of (1,1)-(4,2) is (2, sqrt(2))
        assert law(2.0) == pytest.approx(np.sqrt(2.0))

    def test_requires_unit_anchor(self):
        with pytest.raises(ValueError):
            TablePerf({1.0: 2.0, 4.0: 3.0})

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            TablePerf({})

    def test_rejects_nonpositive_values(self):
        with pytest.raises(ValueError):
            TablePerf({1.0: 1.0, 4.0: -1.0})


class TestResolve:
    def test_default_is_sqrt(self):
        assert resolve_perf_law(None).name == "sqrt"
        assert resolve_perf_law("sqrt").name == "sqrt"

    def test_passthrough_instance(self):
        law = LinearPerf()
        assert resolve_perf_law(law) is law

    def test_pollack_spec(self):
        law = resolve_perf_law("pollack:0.6")
        assert law(16.0) == pytest.approx(16.0**0.6)

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            resolve_perf_law("cubic")
