"""Unit tests for the Hill–Marty models (Eqs 2–3)."""

import numpy as np
import pytest

from repro.core import amdahl, hill_marty


class TestSymmetric:
    def test_unit_cores_recover_amdahl(self):
        # r = 1: n cores of 1 BCE, perf(1) = 1 → plain Amdahl with p = n.
        f, n = 0.97, 256
        assert hill_marty.speedup_symmetric(f, n, 1.0) == pytest.approx(
            amdahl.speedup(f, n)
        )

    def test_single_big_core(self):
        # r = n: one core, speedup = perf(n) regardless of f.
        assert hill_marty.speedup_symmetric(0.5, 256, 256.0) == pytest.approx(16.0)

    def test_paper_f99_optimum(self):
        # f = 0.99, n = 256 → max 79.7 at r = 2 (quoted in Section V.D.2)
        r, sp = hill_marty.best_symmetric(0.99, 256)
        assert r == 2.0
        assert sp == pytest.approx(79.7, abs=0.1)

    def test_higher_serial_fraction_favours_bigger_cores(self):
        # Hill-Marty's finding: "as the serial fraction increases, it will
        # tend to favor designs with fewer and more capable cores".
        r_small_serial, _ = hill_marty.best_symmetric(0.999, 256)
        r_large_serial, _ = hill_marty.best_symmetric(0.9, 256)
        assert r_large_serial > r_small_serial

    def test_vectorised_sweep(self):
        sizes = np.array([1.0, 4.0, 16.0, 64.0])
        out = hill_marty.speedup_symmetric(0.99, 256, sizes)
        assert out.shape == (4,)
        assert np.all(out > 0)

    def test_rejects_core_bigger_than_chip(self):
        with pytest.raises(ValueError):
            hill_marty.speedup_symmetric(0.9, 256, 512.0)


class TestAsymmetric:
    def test_rl_equals_n_is_single_big_core(self):
        assert hill_marty.speedup_asymmetric(0.9, 256, 256.0) == pytest.approx(16.0)

    def test_beats_symmetric_for_amdahl_workloads(self):
        # Hill-Marty's headline: ACMPs outperform CMPs under constant serial
        # sections (for any f strictly between 0 and 1).
        for f in (0.9, 0.99, 0.999):
            _, sym = hill_marty.best_symmetric(f, 256)
            _, asym = hill_marty.best_asymmetric(f, 256)
            assert asym > sym

    def test_paper_f99_optimum_magnitude(self):
        # Section V.D.2 quotes 162.3 for the Amdahl asymmetric prediction;
        # on the power-of-two grid the model peaks at 164.5 (rl = 32).
        rl, sp = hill_marty.best_asymmetric(0.99, 256)
        assert sp == pytest.approx(164.5, abs=0.1)
        assert rl == 32.0

    def test_grouped_form_with_unit_small_cores_matches_eq3(self):
        f, n = 0.99, 256
        rl = np.array([2.0, 16.0, 128.0])
        a = hill_marty.speedup_asymmetric(f, n, rl)
        b = hill_marty.speedup_asymmetric_grouped(f, n, rl, r=1.0)
        assert np.allclose(a, b)

    def test_grouped_form_bigger_small_cores_reduce_parallel_throughput(self):
        f, n, rl = 0.999, 256, 16.0
        sp_r1 = hill_marty.speedup_asymmetric_grouped(f, n, rl, r=1.0)
        sp_r4 = hill_marty.speedup_asymmetric_grouped(f, n, rl, r=4.0)
        # under sqrt perf, aggregate parallel throughput falls with r
        assert sp_r1 > sp_r4

    def test_rejects_rl_bigger_than_chip(self):
        with pytest.raises(ValueError):
            hill_marty.speedup_asymmetric(0.9, 256, 300.0)


class TestDynamic:
    def test_dynamic_dominates_symmetric_and_asymmetric(self):
        f, n = 0.99, 256
        r = 64.0
        dyn = hill_marty.speedup_dynamic(f, n, r)
        assert dyn >= hill_marty.speedup_symmetric(f, n, r)
        assert dyn >= hill_marty.speedup_asymmetric(f, n, r)

    def test_dynamic_parallel_term_uses_all_bces(self):
        # fully parallel work runs at n regardless of r
        assert hill_marty.speedup_dynamic(1.0, 256, 16.0) == pytest.approx(256.0)
