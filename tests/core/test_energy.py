"""Unit tests for the energy extension."""

import numpy as np
import pytest

from repro.core import merging
from repro.core.energy import (
    DesignEnergy,
    PowerModel,
    best_symmetric_energy,
    evaluate_symmetric,
)
from repro.core.params import AppParams


def params() -> AppParams:
    return AppParams(f=0.99, fcon_share=0.60, fored_share=0.80)


class TestPowerModel:
    def test_unit_core_unit_power(self):
        pm = PowerModel()
        assert pm.active(1.0) == pytest.approx(1.0)

    def test_area_proportional_default(self):
        pm = PowerModel()
        assert pm.active(64.0) == pytest.approx(64.0)

    def test_idle_fraction(self):
        pm = PowerModel(idle_fraction=0.25)
        assert pm.idle(4.0) == pytest.approx(1.0)

    def test_superlinear_power(self):
        pm = PowerModel(mu=1.5)
        assert pm.active(4.0) == pytest.approx(8.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            PowerModel(mu=0.0)
        with pytest.raises(ValueError):
            PowerModel(idle_fraction=1.5)
        with pytest.raises(ValueError):
            PowerModel().active(-1.0)


class TestEvaluate:
    def test_speedup_matches_merging_model(self):
        sizes = merging.power_of_two_sizes(256)
        designs = evaluate_symmetric(params(), 256, sizes)
        model = np.asarray(merging.speedup_symmetric(params(), 256, sizes))
        assert np.allclose([d.speedup for d in designs], model)

    def test_scalar_input_returns_single_design(self):
        d = evaluate_symmetric(params(), 256, 4.0)
        assert isinstance(d, DesignEnergy)
        assert d.r == 4.0

    def test_edp_consistent(self):
        d = evaluate_symmetric(params(), 256, 8.0)
        assert d.edp == pytest.approx(d.energy / d.speedup)

    def test_perf_per_watt_is_inverse_average_power(self):
        d = evaluate_symmetric(params(), 256, 8.0)
        avg_power = d.energy * d.speedup  # energy / time
        assert d.perf_per_watt == pytest.approx(d.speedup / avg_power)

    def test_single_big_core_energy(self):
        # one 256-BCE core: no idle cores; energy = time · active(256)
        d = evaluate_symmetric(params(), 256, 256.0, PowerModel(idle_fraction=0.3))
        time = 1.0 / d.speedup
        assert d.energy == pytest.approx(time * 256.0)


class TestBestDesign:
    def test_objective_validation(self):
        with pytest.raises(ValueError):
            best_symmetric_energy(params(), 256, objective="happiness")

    def test_speedup_objective_matches_merging_best(self):
        d = best_symmetric_energy(params(), 256, objective="speedup")
        best = merging.best_symmetric(params(), 256)
        assert d.r == best.r
        assert d.speedup == pytest.approx(best.speedup)

    def test_edp_design_is_minimal(self):
        d = best_symmetric_energy(params(), 256, objective="edp")
        all_designs = evaluate_symmetric(
            params(), 256, merging.power_of_two_sizes(256)
        )
        assert d.edp == pytest.approx(min(x.edp for x in all_designs))

    def test_energy_optimum_is_interior(self):
        # neither 256 singletons (long serial phases with 255 idling
        # cores) nor one giant core (256 W always-on) is energy-optimal
        pm = PowerModel(idle_fraction=0.5)
        energy_best = best_symmetric_energy(params(), 256, "energy", pm)
        assert 1.0 < energy_best.r < 256.0

    def test_overhead_shifts_energy_optimum_to_bigger_cores(self):
        # the paper's conclusion (b), restated for energy: growing merges
        # lengthen the idle-heavy serial phases, penalising many-core
        # designs on energy too
        pm = PowerModel(idle_fraction=0.5)
        lo = AppParams(f=0.999, fcon_share=0.60, fored_share=0.10)
        hi = AppParams(f=0.999, fcon_share=0.60, fored_share=0.80)
        best_lo = best_symmetric_energy(lo, 256, "edp", pm)
        best_hi = best_symmetric_energy(hi, 256, "edp", pm)
        assert best_hi.r >= best_lo.r

    def test_high_overhead_raises_energy_cost_of_many_cores(self):
        lo = AppParams(f=0.99, fcon_share=0.60, fored_share=0.10)
        hi = AppParams(f=0.99, fcon_share=0.60, fored_share=0.80)
        e_lo = evaluate_symmetric(lo, 256, 1.0).energy
        e_hi = evaluate_symmetric(hi, 256, 1.0).energy
        assert e_hi > e_lo  # longer serial phases burn idle power
