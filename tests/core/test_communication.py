"""Unit tests for the communication-aware model (Eqs 6–8, Fig 7)."""

import numpy as np
import pytest

from repro.core import communication as comm
from repro.core import merging
from repro.core.params import AppParams


def moderate_nonemb() -> AppParams:
    """The Table III class Fig 7 is plotted for."""
    return AppParams(f=0.99, fcon_share=0.60, fored_share=0.80)


class TestMeshGrowcomm:
    def test_asymptotic_form(self):
        # Eq 8: growcomm ≈ sqrt(nc)/2
        assert comm.MESH_COMM(64.0) == pytest.approx(4.0)
        assert comm.MESH_COMM(256.0) == pytest.approx(8.0)

    def test_exact_expression_matches_simplification(self):
        # 2(nc-1)·x·(sqrt(nc)-1) / (4·sqrt(nc)·(sqrt(nc)-1)) == x(nc-1)/(2·sqrt(nc))
        # and for nc = m², (m²-1)/(2m) → m/2 only asymptotically; the paper
        # keeps the ≈ sqrt(nc)/2 form, which we adopt. Check they agree to
        # within 1/sqrt(nc) relative error at scale.
        for nc in (64.0, 256.0, 1024.0):
            exact = (nc - 1.0) / (2.0 * np.sqrt(nc))
            assert comm.MESH_COMM(nc) == pytest.approx(exact, rel=2.0 / np.sqrt(nc))

    def test_no_communication_on_single_core(self):
        assert comm.MESH_COMM(1.0) == pytest.approx(0.0)

    def test_rejects_core_count_below_one(self):
        with pytest.raises(ValueError):
            comm.MESH_COMM(0.5)


class TestCompGrowth:
    def test_parallel_has_no_extra_work(self):
        nc = np.array([1.0, 16.0, 256.0])
        assert np.allclose(comm.PARALLEL_COMP(nc), 0.0)

    def test_linear_extra_work(self):
        assert comm.LINEAR_COMP(1.0) == pytest.approx(0.0)
        assert comm.LINEAR_COMP(64.0) == pytest.approx(63.0)

    def test_log_extra_work(self):
        assert comm.LOG_COMP(1.0) == pytest.approx(0.0)
        assert comm.LOG_COMP(64.0) == pytest.approx(6.0)


class TestPaperAnchorsFig7:
    def test_fig7a_symmetric_peak_46_6_at_r8(self):
        # "r = 8 ... yields the highest speedup ... 79.7 against 46.6"
        sizes, sp = comm.sweep_symmetric_comm(moderate_nonemb(), 256)
        i = int(np.argmax(sp))
        assert sizes[i] == 8.0
        assert sp[i] == pytest.approx(46.6, abs=0.15)

    def test_fig7b_asymmetric_peak_51_6(self):
        # "the maximum speedup estimate is 51.6"
        best = -np.inf
        for r in (1.0, 4.0, 16.0):
            _, sp = comm.sweep_asymmetric_comm(moderate_nonemb(), 256, r=r)
            best = max(best, float(sp.max()))
        assert best == pytest.approx(51.6, abs=0.15)

    def test_fig7b_r4_slightly_beats_r1(self):
        # "a design with fewer larger cores provides a slightly better
        # estimate ... although the margin is not significant"
        _, sp1 = comm.sweep_asymmetric_comm(moderate_nonemb(), 256, r=1.0)
        _, sp4 = comm.sweep_asymmetric_comm(moderate_nonemb(), 256, r=4.0)
        assert sp4.max() > sp1.max()
        assert sp4.max() / sp1.max() < 1.15  # margin under 15%

    def test_fig7_acmp_advantage_diminished(self):
        # "the speedup improvement of ACMP over CMP is diminished"
        _, sym = comm.sweep_symmetric_comm(moderate_nonemb(), 256)
        best_asym = max(
            float(comm.sweep_asymmetric_comm(moderate_nonemb(), 256, r=r)[1].max())
            for r in (1.0, 4.0, 16.0)
        )
        ratio = best_asym / float(sym.max())
        # Amdahl predicts > 2x advantage for this class; comm model ~1.1x
        assert ratio < 1.2


class TestModelStructure:
    def test_communication_term_not_scaled_by_perf(self):
        # doubling core performance must not shrink the comm share: compare
        # serial terms at the same nc but different perf_serial.
        p = moderate_nonemb()
        t_slow = comm.serial_term_comm(p, 64.0, 1.0)
        t_fast = comm.serial_term_comm(p, 64.0, 4.0)
        comm_part = p.fcomm * (1.0 + float(comm.MESH_COMM(64.0)))
        # the fast core reduces only the compute part:
        assert float(t_fast) > comm_part
        assert float(t_slow) - float(t_fast) == pytest.approx(
            (p.fcon + p.fcomp) * (1.0 - 1.0 / 4.0)
        )

    def test_single_core_serial_term_recovers_full_serial_fraction(self):
        p = moderate_nonemb()
        t = comm.serial_term_comm(p, 1.0, 1.0)
        assert float(t) == pytest.approx(p.serial)

    def test_linear_comp_growth_costs_more_than_parallel(self):
        p = moderate_nonemb()
        sizes = merging.power_of_two_sizes(256)
        sp_par = np.asarray(
            comm.speedup_symmetric_comm(p, 256, sizes, comp=comm.PARALLEL_COMP)
        )
        sp_lin = np.asarray(
            comm.speedup_symmetric_comm(p, 256, sizes, comp=comm.LINEAR_COMP)
        )
        assert np.all(sp_par >= sp_lin - 1e-12)

    def test_rejects_invalid_geometry(self):
        p = moderate_nonemb()
        with pytest.raises(ValueError):
            comm.speedup_symmetric_comm(p, 256, 0.0)
        with pytest.raises(ValueError):
            comm.speedup_asymmetric_comm(p, 256, rl=2.0, r=8.0)
