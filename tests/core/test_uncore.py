"""Unit tests for the uncore-cost extension."""

import numpy as np
import pytest

from repro.core import merging
from repro.core.params import AppParams
from repro.core.uncore import (
    best_symmetric_uncore,
    speedup_symmetric_uncore,
    uncore_break_even,
)


def params(ored=0.8) -> AppParams:
    return AppParams(f=0.99, fcon_share=0.60, fored_share=ored)


class TestModel:
    def test_zero_tax_recovers_merging_model(self):
        sizes = merging.power_of_two_sizes(256)
        ours = np.asarray(speedup_symmetric_uncore(params(), 256, sizes, tau=0.0))
        eq4 = np.asarray(merging.speedup_symmetric(params(), 256, sizes))
        assert np.allclose(ours, eq4)

    def test_tax_hurts_low_overhead_workloads(self):
        # with a small merge, losing cores to uncore is pure loss
        p = AppParams(f=0.999, fcon_share=0.60, fored_share=0.05)
        sizes = merging.power_of_two_sizes(256)[:-1]
        taxed = np.asarray(speedup_symmetric_uncore(p, 256, sizes, tau=1.0))
        free = np.asarray(speedup_symmetric_uncore(p, 256, sizes, tau=0.0))
        assert np.all(taxed < free)

    def test_tax_can_help_high_overhead_small_core_designs(self):
        # the interesting interaction: the tax cuts the core count, and
        # with a linearly growing merge, fewer cores = less merge — for
        # overhead-dominated small-core designs the tax is a net *win*
        # (consolidation by another name)
        taxed = float(speedup_symmetric_uncore(params(0.8), 256, 1.0, tau=3.0))
        free = float(speedup_symmetric_uncore(params(0.8), 256, 1.0, tau=0.0))
        assert taxed > free

    def test_best_design_speedup_never_improves_with_tax(self):
        # ...but at the *optimum* the tax cannot help: the free-design
        # space contains every taxed design's effective configuration
        _, sp_free = best_symmetric_uncore(params(0.8), 256, tau=0.0)
        _, sp_taxed = best_symmetric_uncore(params(0.8), 256, tau=4.0)
        assert sp_taxed <= sp_free + 1e-9

    def test_tax_shifts_optimum_to_bigger_cores(self):
        r_free, _ = best_symmetric_uncore(params(0.10), 256, tau=0.0)
        r_taxed, _ = best_symmetric_uncore(params(0.10), 256, tau=4.0)
        assert r_taxed >= r_free

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            speedup_symmetric_uncore(params(), 256, 256.0, tau=1.0)
        with pytest.raises(ValueError):
            speedup_symmetric_uncore(params(), 256, 4.0, tau=-1.0)


class TestBreakEven:
    def test_zero_when_bigger_cores_already_win(self):
        # at high overhead the 2r design already beats r without any tax
        assert uncore_break_even(params(0.8), 256, r=1.0) == 0.0

    def test_positive_for_small_core_friendly_workloads(self):
        # embarrassingly parallel, low overhead: small cores win until the
        # tax gets heavy
        p = AppParams(f=0.999, fcon_share=0.60, fored_share=0.10)
        tau = uncore_break_even(p, 256, r=1.0, growth="log")
        assert tau > 0.0

    def test_break_even_is_a_fixed_point(self):
        p = AppParams(f=0.999, fcon_share=0.60, fored_share=0.10)
        tau = uncore_break_even(p, 256, r=1.0, growth="log")
        if np.isfinite(tau) and tau > 0:
            small = float(speedup_symmetric_uncore(p, 256, 1.0, tau, growth="log"))
            big = float(speedup_symmetric_uncore(p, 256, 2.0, tau, growth="log"))
            assert small == pytest.approx(big, rel=1e-3)
