"""Unit tests for Amdahl's Law (Eq 1)."""

import numpy as np
import pytest

from repro.core import amdahl


class TestSpeedup:
    def test_serial_application_never_speeds_up(self):
        assert amdahl.speedup(0.0, 64) == pytest.approx(1.0)

    def test_fully_parallel_application_scales_linearly(self):
        assert amdahl.speedup(1.0, 64) == pytest.approx(64.0)

    def test_single_processor_is_identity(self):
        assert amdahl.speedup(0.7, 1) == pytest.approx(1.0)

    def test_textbook_value(self):
        # f = 0.95 on 20 processors: 1 / (0.05 + 0.95/20) = 10.256...
        assert amdahl.speedup(0.95, 20) == pytest.approx(1 / (0.05 + 0.95 / 20))

    def test_paper_one_percent_serial_limits_near_100(self):
        # "even ... applications with a serial section ... one percent will
        # face a scalability limit at around one hundred cores" (Section I)
        assert amdahl.speedup_limit(0.99) == pytest.approx(100.0)

    def test_vectorised_over_processors(self):
        p = np.array([1, 2, 4, 8])
        out = amdahl.speedup(0.9, p)
        assert out.shape == (4,)
        assert out[0] == pytest.approx(1.0)
        assert np.all(np.diff(out) > 0)

    def test_monotonic_in_f(self):
        assert amdahl.speedup(0.99, 32) > amdahl.speedup(0.9, 32)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            amdahl.speedup(1.5, 4)
        with pytest.raises(ValueError):
            amdahl.speedup(-0.1, 4)

    def test_rejects_bad_processor_count(self):
        with pytest.raises(ValueError):
            amdahl.speedup(0.5, 0)


class TestSpeedupLimit:
    def test_limit_infinite_for_fully_parallel(self):
        assert amdahl.speedup_limit(1.0) == float("inf")

    def test_limit_is_supremum_of_speedup(self):
        f = 0.98
        assert amdahl.speedup(f, 10**9) < amdahl.speedup_limit(f)
        assert amdahl.speedup(f, 10**9) == pytest.approx(amdahl.speedup_limit(f), rel=1e-6)


class TestEfficiency:
    def test_efficiency_is_one_on_single_processor(self):
        assert amdahl.efficiency(0.8, 1) == pytest.approx(1.0)

    def test_efficiency_decreases_with_processors(self):
        e = amdahl.efficiency(0.95, np.array([1, 2, 4, 8, 16]))
        assert np.all(np.diff(e) < 0)

    def test_efficiency_bounded(self):
        e = amdahl.efficiency(0.99, np.array([2, 64, 1024]))
        assert np.all((0 < e) & (e <= 1))


class TestKarpFlatt:
    def test_roundtrip_with_speedup(self):
        f = 0.97
        for p in (2, 8, 32):
            sp = amdahl.speedup(f, p)
            s = amdahl.serial_fraction_from_speedup(sp, p)
            assert s == pytest.approx(1 - f, rel=1e-9)

    def test_perfect_speedup_gives_zero_serial(self):
        assert amdahl.serial_fraction_from_speedup(8.0, 8) == pytest.approx(0.0)

    def test_rejects_single_processor(self):
        with pytest.raises(ValueError):
            amdahl.serial_fraction_from_speedup(1.0, 1)

    def test_rejects_superlinear(self):
        with pytest.raises(ValueError):
            amdahl.serial_fraction_from_speedup(9.0, 8)


class TestCoresForTarget:
    def test_unreachable_target_is_infinite(self):
        assert amdahl.cores_for_target_speedup(0.99, 200) == float("inf")

    def test_trivial_target(self):
        assert amdahl.cores_for_target_speedup(0.5, 1.0) == 1.0

    def test_inverse_of_speedup(self):
        f = 0.99
        p = amdahl.cores_for_target_speedup(f, 50.0)
        assert amdahl.speedup(f, p) == pytest.approx(50.0, rel=1e-9)

    def test_rejects_nonpositive_target(self):
        with pytest.raises(ValueError):
            amdahl.cores_for_target_speedup(0.9, 0.0)
