"""Unit tests for the Table III application classes."""

import pytest

from repro.core.classes import (
    TABLE3_CLASSES,
    AppClass,
    get_class,
    iter_params,
)


class TestTable3:
    def test_exactly_eight_classes(self):
        assert len(TABLE3_CLASSES) == 8
        assert len({c.key for c in TABLE3_CLASSES}) == 8

    def test_parameter_values_match_table(self):
        c = get_class("emb", "high", "low")
        p = c.params()
        assert p.f == 0.999
        assert p.fcon_share == 0.90
        assert p.fored_share == 0.10

        c = get_class("non-emb", "moderate", "high")
        p = c.params()
        assert p.f == 0.99
        assert p.fcon_share == 0.60
        assert p.fored_share == 0.80

    def test_key_format(self):
        assert get_class("emb", "high", "low").key == "emb/high/low"

    def test_params_carry_name(self):
        for c in TABLE3_CLASSES:
            assert c.params().name == c.key

    def test_iter_params_order_matches_classes(self):
        keys = [p.name for p in iter_params()]
        assert keys == [c.key for c in TABLE3_CLASSES]

    def test_rejects_unknown_dimension_values(self):
        with pytest.raises(ValueError):
            AppClass("emb", "high", "medium")
        with pytest.raises(ValueError):
            AppClass("embarrassing", "high", "low")
        with pytest.raises(ValueError):
            AppClass("emb", "huge", "low")

    def test_panel_order_high_constant_first(self):
        # Fig 4 panels: (a) high/low, (b) high/high, (c) moderate/low,
        # (d) moderate/high — each with both parallelism cases.
        keys = [c.key for c in TABLE3_CLASSES]
        assert keys[0:2] == ["emb/high/low", "non-emb/high/low"]
        assert keys[2:4] == ["emb/high/high", "non-emb/high/high"]
        assert keys[4:6] == ["emb/moderate/low", "non-emb/moderate/low"]
        assert keys[6:8] == ["emb/moderate/high", "non-emb/moderate/high"]
