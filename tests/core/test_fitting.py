"""Unit tests for speedup-curve fitting."""

import numpy as np
import pytest

from repro.core import measured as mm
from repro.core.fitting import fit_amdahl, fit_serial_growth, to_measured_params
from repro.core.params import TABLE2, MeasuredParams


def synthetic_curve(params: MeasuredParams, cores):
    p = np.asarray(cores, dtype=np.float64)
    return p, np.asarray(mm.speedup_extended(params, p))


CORES = [1, 2, 4, 8, 16, 32, 64]


class TestFitAmdahl:
    def test_exact_amdahl_curve(self):
        f = 0.99
        p = np.array(CORES, dtype=float)
        sp = 1.0 / ((1 - f) + f / p)
        assert fit_amdahl(p, sp) == pytest.approx(0.01, rel=1e-9)

    def test_perfect_scaling_gives_zero_serial(self):
        p = np.array([1.0, 2.0, 4.0])
        assert fit_amdahl(p, p) == pytest.approx(0.0, abs=1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_amdahl([1, 2], [1, 2])  # too few points
        with pytest.raises(ValueError):
            fit_amdahl([1, 2, 4], [1, -1, 2])


class TestFitSerialGrowth:
    def test_roundtrip_linear_growth(self):
        k = TABLE2["kmeans"]
        p, sp = synthetic_curve(k, CORES)
        fit = fit_serial_growth(p, sp)
        assert fit.serial == pytest.approx(k.s, rel=0.05)
        assert fit.alpha == pytest.approx(1.0, abs=0.1)
        assert fit.slope == pytest.approx(k.fcred * k.fored_rel, rel=0.1)
        assert fit.residual < 1e-3

    def test_roundtrip_superlinear_growth(self):
        h = TABLE2["hop"]
        p, sp = synthetic_curve(h, CORES)
        fit = fit_serial_growth(p, sp)
        assert fit.alpha == pytest.approx(h.growth_alpha, abs=0.15)

    def test_fix_alpha(self):
        k = TABLE2["kmeans"]
        p, sp = synthetic_curve(k, CORES)
        fit = fit_serial_growth(p, sp, fix_alpha=1.0)
        assert fit.alpha == 1.0
        assert fit.slope == pytest.approx(k.fcred * k.fored_rel, rel=0.05)

    def test_predict_matches_input_curve(self):
        k = TABLE2["fuzzy"]
        p, sp = synthetic_curve(k, CORES)
        fit = fit_serial_growth(p, sp)
        assert np.allclose(fit.predict(p), sp, rtol=0.02)

    def test_peak_locates_maximum(self):
        k = TABLE2["kmeans"]
        p, sp = synthetic_curve(k, CORES)
        fit = fit_serial_growth(p, sp)
        peak_p, peak_sp = fit.peak()
        model_p, model_sp = mm.peak_core_count(k, max_cores=8192)
        assert peak_p == pytest.approx(model_p, rel=0.1)
        assert peak_sp == pytest.approx(model_sp, rel=0.05)

    def test_robust_to_measurement_noise(self):
        # with 1% noise the tiny constant serial fraction (0.015%) is not
        # identifiable, but the *growth slope* — which drives the paper's
        # conclusions — still is, and so is the predicted peak location.
        k = TABLE2["kmeans"]
        p, sp = synthetic_curve(k, CORES)
        rng = np.random.default_rng(0)
        noisy = sp * (1 + rng.normal(0, 0.01, sp.shape))
        fit = fit_serial_growth(p, noisy, fix_alpha=1.0)
        assert fit.slope == pytest.approx(k.fcred * k.fored_rel, rel=0.5)
        clean_peak, _ = mm.peak_core_count(k, max_cores=8192)
        fitted_peak, _ = fit.peak()
        assert 0.5 * clean_peak < fitted_peak < 2.0 * clean_peak

    def test_serial_time_at_one_core(self):
        k = TABLE2["kmeans"]
        p, sp = synthetic_curve(k, CORES)
        fit = fit_serial_growth(p, sp)
        assert fit.serial_time(1.0) == pytest.approx(fit.serial)


class TestToMeasuredParams:
    def test_roundtrip_through_record(self):
        k = TABLE2["kmeans"]
        p, sp = synthetic_curve(k, CORES)
        fit = fit_serial_growth(p, sp, fix_alpha=1.0)
        rec = to_measured_params(fit, fred_share=k.fred_share, name="refit")
        assert rec.fored_rel == pytest.approx(k.fored_rel, rel=0.1)
        # the refitted record predicts the same curve
        assert np.allclose(
            np.asarray(mm.speedup_extended(rec, p)), sp, rtol=0.03
        )

    def test_requires_interior_share(self):
        k = TABLE2["kmeans"]
        p, sp = synthetic_curve(k, CORES)
        fit = fit_serial_growth(p, sp)
        with pytest.raises(ValueError):
            to_measured_params(fit, fred_share=0.0)
