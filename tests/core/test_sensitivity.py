"""Unit tests for parameter-sensitivity analysis."""

import pytest

from repro.core import merging
from repro.core.params import AppParams
from repro.core.sensitivity import elasticity, speedup_sensitivities, tornado


def params() -> AppParams:
    return AppParams(f=0.99, fcon_share=0.60, fored_share=0.80)


class TestElasticity:
    def test_sign_of_parallel_fraction(self):
        # more parallel work → more speedup: positive elasticity
        sens = {s.parameter: s for s in speedup_sensitivities(params(), r=32.0)}
        assert sens["f"].elasticity > 0

    def test_sign_of_overhead_share(self):
        # more growing reduction → less speedup
        sens = {s.parameter: s for s in speedup_sensitivities(params(), r=32.0)}
        assert sens["fored_share"].elasticity < 0

    def test_constant_share_trades_against_overhead(self):
        # raising fcon share shrinks the growing part (fored = (1−fcon)·o):
        # at high overhead that is a net *gain*
        sens = {s.parameter: s for s in speedup_sensitivities(params(), r=1.0)}
        assert sens["fcon_share"].elasticity > 0

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError):
            elasticity(lambda p: 1.0, params(), "frobnication")

    def test_gradient_matches_manual_difference(self):
        fn = lambda p: float(merging.speedup_symmetric(p, 256, 8.0))  # noqa: E731
        s = elasticity(fn, params(), "fored_share", rel_step=1e-5)
        h = 1e-5 * 0.8
        manual = (
            fn(params().with_(fored_share=0.8 + h))
            - fn(params().with_(fored_share=0.8 - h))
        ) / (2 * h)
        assert s.gradient == pytest.approx(manual, rel=1e-6)


class TestTornado:
    def test_sorted_by_magnitude(self):
        ranked = tornado(speedup_sensitivities(params()))
        mags = [abs(s.elasticity) for s in ranked]
        assert mags == sorted(mags, reverse=True)

    def test_f_dominates_near_its_ceiling(self):
        # at f = 0.99 a relative change in f swings the serial fraction
        # enormously — it should rank top for the high-overhead class
        ranked = tornado(speedup_sensitivities(params()))
        assert ranked[0].parameter == "f"


class TestOptimalDesignSensitivity:
    def test_achievable_speedup_less_sensitive_than_fixed_design(self):
        # re-optimising the chip partially absorbs parameter shifts: the
        # achievable-speedup elasticity to fored is no larger than the
        # frozen-design one at the (previous) optimum
        frozen = {
            s.parameter: s
            for s in speedup_sensitivities(params(), r=32.0)
        }["fored_share"]
        adaptive = {
            s.parameter: s for s in speedup_sensitivities(params())
        }["fored_share"]
        assert abs(adaptive.elasticity) <= abs(frozen.elasticity) + 1e-6
