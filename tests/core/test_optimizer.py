"""Unit tests for the design-space explorer."""

import numpy as np
import pytest

from repro.core import optimizer
from repro.core.classes import get_class
from repro.core.params import AppParams


class TestCompareArchitectures:
    def test_paper_headline_comparison(self):
        # non-emb / moderate / high: extended model says ACMP 43.3 vs CMP
        # 36.2; Amdahl says 162-165 vs 79.7 (Section V.D.2).
        p = get_class("non-emb", "moderate", "high").params()
        cmp_ = optimizer.compare_architectures(p, 256)
        assert cmp_.symmetric.speedup == pytest.approx(36.2, abs=0.1)
        assert cmp_.asymmetric.speedup == pytest.approx(43.3, abs=0.1)
        assert cmp_.amdahl_symmetric == pytest.approx(79.7, abs=0.1)
        assert cmp_.amdahl_asymmetric == pytest.approx(164.5, abs=0.5)

    def test_advantage_ratios(self):
        p = get_class("non-emb", "moderate", "high").params()
        cmp_ = optimizer.compare_architectures(p, 256)
        # reduction overhead shrinks the ACMP advantage from >2x to ~1.2x
        assert cmp_.amdahl_speedup_ratio > 2.0
        assert cmp_.acmp_speedup_ratio < 1.3

    def test_low_overhead_keeps_acmp_advantage(self):
        p = get_class("non-emb", "high", "low").params()
        assert optimizer.acmp_advantage(p, 256) > 1.5


class TestOptimalRMap:
    def test_optimal_r_grows_with_overhead(self):
        grid = optimizer.optimal_r_map(
            f=0.99, n=256,
            fcon_shares=[0.60], fored_shares=[0.10, 0.40, 0.80],
        )
        row = grid[0]
        assert np.all(np.diff(row) >= 0)
        assert row[-1] > row[0]

    def test_shape(self):
        grid = optimizer.optimal_r_map(
            f=0.999, n=256, fcon_shares=[0.9, 0.6], fored_shares=[0.1, 0.8]
        )
        assert grid.shape == (2, 2)


class TestDesignGrid:
    def test_sorted_by_speedup(self):
        p = AppParams(f=0.99, fcon_share=0.6, fored_share=0.8)
        pts = optimizer.optimal_design_grid(p, 256)
        speeds = [q.speedup for q in pts]
        assert speeds == sorted(speeds, reverse=True)

    def test_contains_both_architectures(self):
        p = AppParams(f=0.99, fcon_share=0.6, fored_share=0.8)
        pts = optimizer.optimal_design_grid(p, 256)
        archs = {q.architecture for q in pts}
        assert archs == {"sym", "asym"}

    def test_comm_model_grid_lowers_top_speedup(self):
        p = AppParams(f=0.99, fcon_share=0.6, fored_share=0.8)
        plain = optimizer.optimal_design_grid(p, 256)[0].speedup
        with_comm = optimizer.optimal_design_grid(p, 256, include_comm=True)[0].speedup
        # comparable magnitudes; comm model peaks at 51.6, Eq 4/5 at 43.3
        assert 0.5 < with_comm / plain < 2.0

    def test_core_counts_consistent(self):
        p = AppParams(f=0.99, fcon_share=0.6, fored_share=0.8)
        for q in optimizer.optimal_design_grid(p, 256):
            if q.architecture == "sym":
                assert q.cores == pytest.approx(256 / q.r)
            else:
                assert q.cores == pytest.approx((256 - q.rl) / q.r + 1)


class TestContinuousOptimum:
    def test_at_least_as_good_as_grid(self):
        p = AppParams(f=0.99, fcon_share=0.6, fored_share=0.8)
        from repro.core import merging

        grid = merging.best_symmetric(p, 256)
        cont = optimizer.best_symmetric_continuous(p, 256)
        assert cont.speedup >= grid.speedup - 1e-9

    def test_continuous_optimum_near_grid_optimum(self):
        p = AppParams(f=0.999, fcon_share=0.6, fored_share=0.1)
        from repro.core import merging

        grid = merging.best_symmetric(p, 256)
        cont = optimizer.best_symmetric_continuous(p, 256)
        # within one octave of the power-of-two winner
        assert grid.r / 2 <= cont.r <= grid.r * 2

    def test_stationary_point(self):
        # the continuous optimum is a local maximum: neighbours are worse
        from repro.core import merging

        p = AppParams(f=0.99, fcon_share=0.6, fored_share=0.8)
        cont = optimizer.best_symmetric_continuous(p, 256)
        if 1.0 < cont.r < 256.0:
            for factor in (0.99, 1.01):
                nearby = float(
                    merging.speedup_symmetric(p, 256, cont.r * factor)
                )
                assert nearby <= cont.speedup + 1e-9


class TestParetoFront:
    def test_front_is_monotone(self):
        p = AppParams(f=0.999, fcon_share=0.6, fored_share=0.1)
        front = optimizer.pareto_front(optimizer.optimal_design_grid(p, 256))
        cores = [q.cores for q in front]
        speeds = [q.speedup for q in front]
        assert cores == sorted(cores, reverse=True)
        assert speeds == sorted(speeds)

    def test_front_members_not_dominated(self):
        p = AppParams(f=0.99, fcon_share=0.9, fored_share=0.8)
        pts = optimizer.optimal_design_grid(p, 256)
        front = optimizer.pareto_front(pts)
        for q in front:
            dominated = any(
                (o.cores > q.cores and o.speedup > q.speedup) for o in pts
            )
            assert not dominated
