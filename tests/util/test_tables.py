"""Unit tests for the text-table renderer."""

import pytest

from repro.util.tables import TextTable, format_float, render_series


class TestFormatFloat:
    def test_integers_render_bare(self):
        assert format_float(4.0) == "4"

    def test_small_values_scientific(self):
        assert "e" in format_float(1.5e-7)

    def test_nan(self):
        assert format_float(float("nan")) == "nan"

    def test_regular_value(self):
        assert format_float(3.14159) == "3.142"


class TestTextTable:
    def test_render_contains_all_cells(self):
        t = TextTable(title="Demo", columns=["app", "speedup"])
        t.add_row(["kmeans", 15.8])
        out = t.render()
        assert "Demo" in out and "kmeans" in out and "15.8" in out

    def test_row_width_mismatch_raises(self):
        t = TextTable(title="", columns=["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_column_alignment(self):
        t = TextTable(title="", columns=["x"])
        t.add_row(["longvalue"])
        lines = t.render().splitlines()
        widths = {len(line) for line in lines if line}
        assert len(widths) == 1  # all lines equal width

    def test_csv_escaping(self):
        t = TextTable(title="", columns=["a"])
        t.add_row(['has,comma'])
        assert '"has,comma"' in t.to_csv()

    def test_csv_header_first(self):
        t = TextTable(title="", columns=["col1", "col2"])
        t.add_row([1, 2])
        assert t.to_csv().splitlines()[0] == "col1,col2"


class TestRenderSeries:
    def test_one_column_per_series(self):
        out = render_series(
            "Fig X", "cores", [1, 2], {"amdahl": [1.0, 2.0], "ext": [1.0, 1.9]}
        )
        assert "amdahl" in out and "ext" in out and "cores" in out
        assert "1.9" in out
