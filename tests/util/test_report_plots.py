"""Unit tests for report chart rendering."""

from repro.experiments.report import ExperimentReport
from repro.util.tables import TextTable
from repro.viz.report_plots import chartable_tables, render_report_charts


def report_with(tables) -> ExperimentReport:
    r = ExperimentReport("demo", "Demo")
    for t in tables:
        r.add_table(t)
    return r


def series_table_fixture() -> TextTable:
    t = TextTable(title="series", columns=["x", "a", "b"])
    for x in (1, 2, 4, 8):
        t.add_row([x, float(x), float(2 * x)])
    return t


def text_table_fixture() -> TextTable:
    t = TextTable(title="config", columns=["param", "value"])
    t.add_row(["cache", "4M"])
    t.add_row(["cores", "16"])
    t.add_row(["pred", "GAp"])
    return t


class TestChartable:
    def test_series_table_detected(self):
        r = report_with([series_table_fixture()])
        assert len(chartable_tables(r)) == 1

    def test_text_table_skipped(self):
        r = report_with([text_table_fixture()])
        assert chartable_tables(r) == []

    def test_short_table_skipped(self):
        t = TextTable(title="short", columns=["x", "y"])
        t.add_row([1, 2.0])
        t.add_row([2, 3.0])
        assert chartable_tables(report_with([t])) == []

    def test_mixed_report(self):
        r = report_with([text_table_fixture(), series_table_fixture()])
        assert len(chartable_tables(r)) == 1


class TestRender:
    def test_renders_chart_with_legend(self):
        out = render_report_charts(report_with([series_table_fixture()]))
        assert "series" in out
        assert "* a" in out and "o b" in out

    def test_empty_when_nothing_chartable(self):
        assert render_report_charts(report_with([text_table_fixture()])) == ""

    def test_real_experiment_charts(self):
        from repro.experiments import run_experiment

        out = render_report_charts(run_experiment("fig4"))
        assert "Fig 4(a)" in out and "Fig 4(d)" in out
