"""Unit tests for ASCII chart rendering."""

import math

import pytest

from repro.viz.ascii_charts import bar_chart, line_chart, sparkline


class TestSparkline:
    def test_monotone_values_monotone_blocks(self):
        s = sparkline([1, 2, 3, 4, 5, 6, 7, 8])
        assert s == "▁▂▃▄▅▆▇█"

    def test_constant_series(self):
        s = sparkline([3.0, 3.0, 3.0])
        assert s == "▁▁▁"

    def test_nan_renders_blank(self):
        s = sparkline([1.0, float("nan"), 2.0])
        assert s[1] == " "

    def test_empty(self):
        assert sparkline([]) == ""


class TestBarChart:
    def test_peak_bar_is_full_width(self):
        out = bar_chart(["a", "b"], [5.0, 10.0], width=20)
        lines = out.splitlines()
        assert lines[1].count("█") == 20
        assert lines[0].count("█") == 10

    def test_labels_aligned(self):
        out = bar_chart(["x", "long-label"], [1.0, 2.0])
        lines = out.splitlines()
        assert lines[0].index("|") == lines[1].index("|")

    def test_title(self):
        assert bar_chart(["a"], [1.0], title="T").splitlines()[0] == "T"

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            bar_chart([], [])
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0], width=0)


class TestLineChart:
    def test_contains_markers_and_legend(self):
        out = line_chart(
            [1, 2, 4, 8], {"up": [1, 2, 3, 4], "down": [4, 3, 2, 1]}, logx=True
        )
        assert "*" in out and "o" in out
        assert "* up" in out and "o down" in out

    def test_y_scale_labels(self):
        out = line_chart([1, 2, 3], {"s": [0.0, 5.0, 10.0]})
        assert "10" in out
        assert "0 " in out

    def test_peak_marker_on_top_row(self):
        out = line_chart([1, 2, 3], {"s": [1.0, 9.0, 1.0]}, height=8)
        top_row = out.splitlines()[0]
        assert "*" in top_row

    def test_skips_nan_points(self):
        out = line_chart([1, 2, 3], {"s": [1.0, float("nan"), 3.0]})
        grid_rows = out.splitlines()[:-3]  # drop axis, x labels, legend
        assert sum(row.count("*") for row in grid_rows) == 2

    def test_logx_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            line_chart([0, 1, 2], {"s": [1, 2, 3]}, logx=True)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            line_chart([1, 2], {"s": [1, 2, 3]})

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            line_chart([1, 2], {"s": [1, 2]}, width=4)

    def test_all_nan_rejected(self):
        with pytest.raises(ValueError):
            line_chart([1, 2], {"s": [math.nan, math.nan]})
