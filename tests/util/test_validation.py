"""Unit tests for argument-validation helpers."""

import numpy as np
import pytest

from repro.util.validation import (
    check_fraction,
    check_positive,
    check_positive_int,
    check_power_of_two,
    ensure_array,
)


class TestCheckFraction:
    def test_accepts_endpoints_inclusive(self):
        assert check_fraction(0.0, "x") == 0.0
        assert check_fraction(1.0, "x") == 1.0

    def test_rejects_endpoints_exclusive(self):
        with pytest.raises(ValueError):
            check_fraction(0.0, "x", inclusive=False)
        with pytest.raises(ValueError):
            check_fraction(1.0, "x", inclusive=False)

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            check_fraction(float("nan"), "x")

    def test_error_names_parameter(self):
        with pytest.raises(ValueError, match="myparam"):
            check_fraction(2.0, "myparam")


class TestCheckPositive:
    def test_zero_policy(self):
        assert check_positive(0.0, "x", allow_zero=True) == 0.0
        with pytest.raises(ValueError):
            check_positive(0.0, "x")

    def test_negative_rejected_either_way(self):
        with pytest.raises(ValueError):
            check_positive(-1.0, "x", allow_zero=True)


class TestCheckPositiveInt:
    def test_accepts_numpy_integers(self):
        assert check_positive_int(np.int64(5), "x") == 5

    def test_accepts_integral_floats(self):
        assert check_positive_int(4.0, "x") == 4

    def test_rejects_fractional_floats(self):
        with pytest.raises(TypeError):
            check_positive_int(4.5, "x")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive_int(True, "x")

    def test_minimum(self):
        with pytest.raises(ValueError):
            check_positive_int(1, "x", minimum=2)


class TestCheckPowerOfTwo:
    def test_accepts_powers(self):
        for v in (1, 2, 4, 256, 1024):
            assert check_power_of_two(v, "x") == v

    def test_rejects_non_powers(self):
        for v in (3, 6, 100):
            with pytest.raises(ValueError):
                check_power_of_two(v, "x")


class TestEnsureArray:
    def test_scalar_becomes_1d(self):
        arr = ensure_array(3.0, "x")
        assert arr.shape == (1,)

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            ensure_array([1.0, float("nan")], "x")

    def test_preserves_values(self):
        arr = ensure_array([1, 2, 3], "x")
        assert np.allclose(arr, [1.0, 2.0, 3.0])
        assert arr.dtype == np.float64
