"""The wire layer of :mod:`repro.engine.remote`: framing, addresses,
spec transport — the parts every distributed guarantee stands on."""

import socket
import struct

import pytest

from repro.engine.chaos import NetChaos
from repro.engine.remote import (
    ProtocolError,
    decode_spec,
    encode_spec,
    parse_hostport,
    recv_frame,
    send_frame,
)


class TestParseHostport:
    def test_host_and_port(self):
        assert parse_hostport("10.0.0.7:7077") == ("10.0.0.7", 7077)

    def test_missing_host_means_all_interfaces(self):
        assert parse_hostport(":7077") == ("0.0.0.0", 7077)

    @pytest.mark.parametrize("bad", ["nohost", "host:", "host:abc", ""])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_hostport(bad)


class TestFraming:
    def test_roundtrip(self):
        a, b = socket.socketpair()
        try:
            send_frame(a, {"op": "hello", "worker": "w1", "pid": 42})
            assert recv_frame(b) == {"op": "hello", "worker": "w1", "pid": 42}
        finally:
            a.close()
            b.close()

    def test_clean_eof_between_frames_is_none(self):
        a, b = socket.socketpair()
        a.close()
        try:
            assert recv_frame(b) is None
        finally:
            b.close()

    def test_torn_body_raises_protocol_error(self):
        a, b = socket.socketpair()
        try:
            body = b'{"op": "result"}'
            # full length header, half the body, then EOF — the shape a
            # worker killed mid-send leaves behind
            a.sendall(struct.pack(">I", len(body)) + body[: len(body) // 2])
            a.close()
            with pytest.raises(ProtocolError):
                recv_frame(b)
        finally:
            b.close()

    def test_torn_length_header_raises_protocol_error(self):
        a, b = socket.socketpair()
        try:
            a.sendall(b"\x00\x00")
            a.close()
            with pytest.raises(ProtocolError):
                recv_frame(b)
        finally:
            b.close()

    def test_oversized_length_rejected_without_reading(self):
        a, b = socket.socketpair()
        try:
            a.sendall(struct.pack(">I", 2**31))
            with pytest.raises(ProtocolError):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_non_json_body_raises_protocol_error(self):
        a, b = socket.socketpair()
        try:
            body = b"not json at all"
            a.sendall(struct.pack(">I", len(body)) + body)
            with pytest.raises(ProtocolError):
                recv_frame(b)
        finally:
            a.close()
            b.close()


class TestSpecTransport:
    def test_roundtrips_non_json_values(self):
        # unit specs carry dataclasses and tuples — anything picklable
        spec = (("nested", 1.5), {"k": (1, 2)}, b"bytes", None)
        assert decode_spec(encode_spec(spec)) == spec

    def test_text_is_ascii_safe_for_json(self):
        blob = encode_spec((1, 2, 3))
        assert isinstance(blob, str)
        blob.encode("ascii")  # must survive a JSON frame untouched


class TestNetChaosParse:
    def test_parses_actions_and_delay(self):
        plan = NetChaos.parse("drop=0, duplicate=2, torn=3, delay=0.25")
        assert plan.plan(0) == ("drop", 0.25)
        assert plan.plan(1) == ("send", 0.25)
        assert plan.plan(2) == ("duplicate", 0.25)
        assert plan.plan(3) == ("torn", 0.25)

    def test_rejects_unknown_action(self):
        with pytest.raises(ValueError):
            NetChaos.parse("explode=1")

    def test_seeded_plans_are_reproducible(self):
        a = NetChaos.seeded(7, 10)
        b = NetChaos.seeded(7, 10)
        assert (a.drop, a.duplicate) == (b.drop, b.duplicate)
        assert a.drop.isdisjoint(a.duplicate)
