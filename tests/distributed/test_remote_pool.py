"""Coordinator/worker semantics, in-process: lease lifecycle, at-most-once
settle, journal-before-ack ordering, degradation, drain.

Workers here are :func:`repro.engine.remote.run_worker` on daemon
threads — the same loop ``repro worker`` runs, minus the process
boundary, so these tests are fast and deterministic.  The process-level
SIGKILL scenarios live in ``tests/chaos/test_remote_chaos.py``.
"""

import threading
import time

import pytest

from repro.engine.chaos import NetChaos
from repro.engine.events import EventLog
from repro.engine.pool import PoolUnavailable, RunInterrupted, UnitFailure
from repro.engine.remote import RemotePool, run_worker
from repro.engine.units import WorkUnit, register_executor


def _echo(spec):
    return {"value": spec[0] * 2}


def _boom(spec):
    raise ValueError(f"bad spec {spec[0]}")


register_executor("rt-echo", _echo)
register_executor("rt-boom", _boom)


def unit(kind, key, *spec):
    return WorkUnit(kind, key, spec, label=f"{kind}:{key}")


def start_worker(address, **kwargs):
    kwargs.setdefault("retry_for", 15.0)
    t = threading.Thread(target=run_worker, args=(address,), kwargs=kwargs,
                         daemon=True)
    t.start()
    return t


@pytest.fixture
def pool():
    p = RemotePool("127.0.0.1:0", lease_timeout=30.0, events=EventLog())
    yield p
    p.close()


class TestExecution:
    def test_results_land_and_on_result_fires_once_per_key(self, pool):
        start_worker(pool.address, name="w1")
        seen = []
        results = pool.run([unit("rt-echo", f"k{i}", i) for i in range(6)],
                           on_result=lambda k, p: seen.append(k))
        assert results == {f"k{i}": {"value": i * 2} for i in range(6)}
        assert sorted(seen) == sorted(results)

    def test_duplicate_keys_within_a_batch_run_once(self, pool):
        start_worker(pool.address, name="w1")
        results = pool.run([unit("rt-echo", "same", 3),
                            unit("rt-echo", "same", 3)])
        assert results == {"same": {"value": 6}}
        assert pool.events.count("unit_done") == 1

    def test_two_workers_share_one_batch(self, pool):
        start_worker(pool.address, name="w1")
        start_worker(pool.address, name="w2")
        results = pool.run([unit("rt-echo", f"k{i}", i) for i in range(12)])
        assert len(results) == 12
        workers = {e.data["worker"] for e in pool.events.events
                   if e.kind == "unit_done"}
        assert workers <= {"w1", "w2"}

    def test_executor_error_carries_worker_traceback(self, pool):
        start_worker(pool.address, name="w1")
        with pytest.raises(UnitFailure) as err:
            pool.run([unit("rt-boom", "bad", 9)])
        assert "bad spec 9" in str(err.value)
        assert "w1" in str(err.value)

    def test_empty_batch_is_a_noop(self, pool):
        assert pool.run([]) == {}


class TestLeaseLifecycle:
    def test_dropped_result_expires_the_lease_and_reissues(self):
        # the worker executes unit 0 but never sends the result: the lease
        # must time out, the unit re-issue, and the second attempt settle
        with RemotePool("127.0.0.1:0", lease_timeout=0.3, backoff=0.05,
                        max_retries=2) as pool:
            start_worker(pool.address, name="w1",
                         net_chaos=NetChaos(drop={0}))
            results = pool.run([unit("rt-echo", "k0", 5)])
            assert results == {"k0": {"value": 10}}
            assert pool.events.count("lease_expired") == 1
            assert pool.events.count("unit_retry") == 1

    def test_exhausted_lease_budget_fails_the_unit(self):
        with RemotePool("127.0.0.1:0", lease_timeout=0.2, backoff=0.05,
                        max_retries=1) as pool:
            start_worker(pool.address, name="w1",
                         net_chaos=NetChaos(drop={0, 1, 2, 3}))
            with pytest.raises(UnitFailure) as err:
                pool.run([unit("rt-echo", "k0", 5)])
            assert "retry budget" in str(err.value)

    def test_duplicate_result_frame_settles_exactly_once(self, pool):
        # duplicate the first result; a second unit keeps the batch open so
        # the duplicate frame is processed while the run is still active
        start_worker(pool.address, name="w1",
                     net_chaos=NetChaos(duplicate={0}))
        seen = []
        results = pool.run([unit("rt-echo", "k0", 4), unit("rt-echo", "k1", 5)],
                           on_result=lambda k, p: seen.append(k))
        assert results == {"k0": {"value": 8}, "k1": {"value": 10}}
        assert sorted(seen) == ["k0", "k1"]  # journal hook: once per key
        assert pool.events.count("duplicate_settle") == 1
        assert pool.events.count("unit_done") == 2

    def test_torn_result_frame_is_a_disconnect_not_a_result(self):
        # half a frame then EOF: the coordinator must drop the connection,
        # re-issue the lease, and settle on the worker's reconnect
        with RemotePool("127.0.0.1:0", lease_timeout=30.0, backoff=0.05,
                        max_retries=2) as pool:
            start_worker(pool.address, name="w1",
                         net_chaos=NetChaos(torn={0}))
            results = pool.run([unit("rt-echo", "k0", 6)])
            assert results == {"k0": {"value": 12}}
            assert pool.events.count("worker_disconnected") == 1
            assert pool.events.count("unit_done") == 1

    def test_disconnect_releases_leases_immediately(self):
        # a worker that dies holding a lease must not stall the run for
        # the full lease_timeout: the release path zeroes the deadline
        with RemotePool("127.0.0.1:0", lease_timeout=300.0, backoff=0.05,
                        max_retries=2) as pool:
            start_worker(pool.address, name="dier",
                         net_chaos=NetChaos(torn={0}))
            started = time.monotonic()
            results = pool.run([unit("rt-echo", "k0", 7)])
            assert results == {"k0": {"value": 14}}
            assert time.monotonic() - started < 30.0


class TestDegradationAndDrain:
    def test_no_worker_within_timeout_raises_pool_unavailable(self):
        with RemotePool("127.0.0.1:0", worker_timeout=0.2) as pool:
            with pytest.raises(PoolUnavailable):
                pool.run([unit("rt-echo", "k0", 1)])

    def test_drain_with_no_workers_reports_everything_pending(self):
        with RemotePool("127.0.0.1:0", should_stop=lambda: True,
                        drain_grace=0.2) as pool:
            with pytest.raises(RunInterrupted) as err:
                pool.run([unit("rt-echo", f"k{i}", i) for i in range(3)])
            assert err.value.settled == 0
            assert err.value.pending == 3

    def test_closed_pool_refuses_batches(self):
        pool = RemotePool("127.0.0.1:0")
        pool.close()
        with pytest.raises(PoolUnavailable):
            pool.run([unit("rt-echo", "k0", 1)])

    def test_workers_exit_when_the_pool_closes(self, pool):
        t = start_worker(pool.address, name="w1", retry_for=5.0)
        pool.run([unit("rt-echo", "k0", 1)])
        pool.close()
        t.join(timeout=15.0)
        assert not t.is_alive()

    def test_worker_exits_after_retry_window_with_no_coordinator(self):
        t = start_worker("127.0.0.1:9", retry_for=0.3)  # discard port: refused
        t.join(timeout=15.0)
        assert not t.is_alive()


class TestSchedulerIntegration:
    def test_session_listen_prefers_the_remote_pool(self):
        from repro.engine.scheduler import EngineSession

        sess = EngineSession(4, listen="127.0.0.1:0")
        try:
            assert sess.remote_address is not None
            assert isinstance(sess._pool, RemotePool)
            start_worker(sess.remote_address, name="w1")
            results = sess.run_units([unit("rt-echo", "k0", 2)])
            assert results == {"k0": {"value": 4}}
        finally:
            sess.close()

    def test_session_listen_degrades_serially_on_worker_timeout(self):
        from repro.engine.scheduler import EngineSession

        sess = EngineSession(4, listen="127.0.0.1:0", worker_timeout=0.2)
        try:
            results = sess.run_units([unit("rt-echo", "k0", 3)])
            assert results == {"k0": {"value": 6}}
            assert sess.events.count("serial_fallback") == 1
        finally:
            sess.close()
