"""Command-line interface: ``repro-merging`` / ``python -m repro``.

Subcommands
-----------
``list [--json]``
    Show the available experiments with one-line descriptions; ``--json``
    emits a machine-readable listing (id, description, accepted options,
    whether the experiment declares precomputable work units).
``run <id> [--csv] [--scale S] [--parallel N] [--run-id ID | --resume ID]``
    Run one experiment (or ``all``) and print its report.  ``--parallel``
    executes simulator sweeps on N worker processes via
    :mod:`repro.engine`; reports are byte-identical to serial runs.
    ``--run-id`` journals every settled sweep unit so a killed run can be
    picked up with ``--resume ID`` (which also restores the experiment
    and options from the run's manifest); while a journaled or parallel
    run is active, SIGINT/SIGTERM drains gracefully and exits 130 with a
    resume hint (see ``docs/engine.md``).
``runall [--parallel N] [--run-id ID | --resume ID]``
    Run every experiment with one globally-deduplicated parallel
    precompute pass (Table II and Fig 2 share their entire sweep, so it
    runs once).  Same crash-safety knobs as ``run``.
``predict --f F --fcon C --fored O [...]``
    One-off speedup prediction for an application you characterise on the
    command line — the library's headline use case without writing code.
``cache info|clear``
    Inspect or drop the on-disk simulation sweep cache (simulator-backed
    experiments reuse results across invocations; ``--no-sweep-cache`` on
    ``run``/``characterize`` opts a single invocation out).
``stats <metrics.jsonl> [--prometheus]``
    Render a metrics/span JSONL file written by ``--metrics-out`` (see
    ``docs/observability.md``) as terminal tables, or re-emit it in the
    Prometheus text exposition format.
``serve [--host H] [--port P] [--cache-size N] [--no-metrics]``
    Run the async model-query HTTP/JSON server (:mod:`repro.serve`):
    point/sweep evaluation of Eqs 1–8, optimal-(r, rl) search, and
    paper-report endpoints over the pipeline's cache tiers, with
    ``/metrics`` (Prometheus) and ``/healthz``.  See ``docs/serving.md``.
``worker --connect HOST:PORT [--name N] [--retry-for S]``
    Join a coordinator started with ``run``/``runall --listen`` as a
    remote execution worker: lease work units over the socket protocol
    of :mod:`repro.engine.remote`, execute them via the executor
    registry, stream results (and observability deltas) back.  See the
    "Distributed execution" section of ``docs/engine.md``.
"""

from __future__ import annotations

import argparse
import contextlib
import sys

from repro.core import merging, optimizer
from repro.core.params import AppParams
from repro.experiments.registry import (
    EXPERIMENTS,
    describe_experiment,
    run_experiment,
)
from repro.util.logging import configure, get_logger

__all__ = ["main", "build_parser", "version_string"]

log = get_logger("cli")


def version_string() -> str:
    """The installed package version (falls back to ``repro.__version__``
    for PYTHONPATH-only checkouts that were never pip-installed)."""
    try:
        from importlib.metadata import PackageNotFoundError, version

        return version("repro")
    except (ImportError, PackageNotFoundError):
        import repro

        return repro.__version__


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-merging",
        description=(
            "Reproduction of 'Implications of Merging Phases on Scalability "
            "of Multi-core Architectures' (ICPP 2011)"
        ),
    )
    parser.add_argument("-v", "--verbose", action="store_true")
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {version_string()}")
    sub = parser.add_subparsers(dest="command", required=True)

    list_p = sub.add_parser("list", help="list available experiments")
    list_p.add_argument("--json", action="store_true",
                        help="machine-readable listing: id, description, "
                             "accepted options, whether units are declared")

    run_p = sub.add_parser("run", help="run an experiment and print its report")
    run_p.add_argument("experiment", nargs="?", default=None,
                       help="experiment id, or 'all' (optional with "
                            "--resume: the run's manifest supplies it)")
    run_p.add_argument(
        "--scale", type=float, default=None,
        help="dataset scale for simulator-backed experiments (0..1]",
    )
    run_p.add_argument("--threads", default=None, metavar="LIST",
                       help="comma-separated thread counts for simulator "
                            "sweeps (e.g. 1,2,4)")
    run_p.add_argument("--csv", action="store_true", help="emit tables as CSV")
    run_p.add_argument("--plot", action="store_true",
                       help="render figure series as terminal line charts")
    run_p.add_argument("--json", metavar="DIR", default=None,
                       help="also write each report as JSON into DIR")
    run_p.add_argument("--no-sweep-cache", action="store_true",
                       help="skip the on-disk simulation sweep cache")
    run_p.add_argument("--parallel", type=int, default=None, metavar="N",
                       help="run simulator sweeps on N worker processes "
                            "(reports stay byte-identical to serial runs)")
    run_p.add_argument("--event-log", metavar="PATH", default=None,
                       help="with --parallel: append engine events "
                            "(dispatch, cache hits, crashes, ETA) as JSONL")
    run_p.add_argument("--metrics-out", metavar="PATH", default=None,
                       help="enable observability and write metrics + spans "
                            "as JSONL to PATH (render with 'repro stats')")
    run_p.add_argument("--run-id", default=None, metavar="ID",
                       help="journal settled sweep units under "
                            ".repro-cache/runs/ID so a killed run is "
                            "resumable with --resume ID")
    run_p.add_argument("--resume", default=None, metavar="ID",
                       help="resume a journaled run: replay its journal as "
                            "the first cache tier and re-execute only what "
                            "had not settled")
    run_p.add_argument("--listen", default=None, metavar="HOST:PORT",
                       help="execute units on remote workers: bind the "
                            "coordinator socket and wait for 'repro worker "
                            "--connect' processes (port 0 picks a free one)")
    run_p.add_argument("--worker-timeout", type=float, default=None,
                       metavar="S",
                       help="with --listen: fall back to in-process serial "
                            "execution when no worker connects within S "
                            "seconds (default: wait indefinitely)")
    run_p.add_argument("--lease-timeout", type=float, default=600.0,
                       metavar="S",
                       help="with --listen: re-issue a unit whose worker "
                            "has not reported back within S seconds "
                            "(default: 600)")

    runall_p = sub.add_parser(
        "runall",
        help="run every experiment, precomputing all sweeps on a worker pool",
    )
    runall_p.add_argument(
        "--parallel", type=int, default=None, metavar="N",
        help="worker processes (default: one per CPU, capped at 8)",
    )
    runall_p.add_argument("--scale", type=float, default=None,
                          help="dataset scale for simulator-backed experiments (0..1]")
    runall_p.add_argument("--csv", action="store_true", help="emit tables as CSV")
    runall_p.add_argument("--json", metavar="DIR", default=None,
                          help="also write each report as JSON into DIR")
    runall_p.add_argument("--no-sweep-cache", action="store_true",
                          help="skip the on-disk simulation sweep cache")
    runall_p.add_argument("--event-log", metavar="PATH", default=None,
                          help="append engine events as JSONL")
    runall_p.add_argument("--metrics-out", metavar="PATH", default=None,
                          help="enable observability and write metrics + "
                               "spans as JSONL to PATH")
    runall_p.add_argument("--threads", default=None, metavar="LIST",
                          help="comma-separated thread counts for simulator "
                               "sweeps (e.g. 1,2,4)")
    runall_p.add_argument("--run-id", default=None, metavar="ID",
                          help="journal settled sweep units for resumability")
    runall_p.add_argument("--resume", default=None, metavar="ID",
                          help="resume a journaled runall (restores options "
                               "from the run's manifest)")
    runall_p.add_argument("--listen", default=None, metavar="HOST:PORT",
                          help="execute units on remote workers (see "
                               "'run --listen')")
    runall_p.add_argument("--worker-timeout", type=float, default=None,
                          metavar="S",
                          help="with --listen: serial fallback when no "
                               "worker connects within S seconds")
    runall_p.add_argument("--lease-timeout", type=float, default=600.0,
                          metavar="S",
                          help="with --listen: re-issue a unit whose "
                               "worker has not reported back within S "
                               "seconds (default: 600)")

    pred = sub.add_parser("predict", help="speedup prediction for custom parameters")
    pred.add_argument("--f", type=float, required=True, help="parallel fraction")
    pred.add_argument("--fcon", type=float, required=True,
                      help="constant share of serial time (0..1)")
    pred.add_argument("--fored", type=float, required=True,
                      help="growing share of reduction time (0..1)")
    pred.add_argument("--n", type=int, default=256, help="chip budget in BCEs")
    pred.add_argument("--growth", default="linear",
                      help="linear | log | parallel | poly:<alpha>")
    pred.add_argument("--target", type=float, default=None,
                      help="also report the merge-overhead budget that "
                           "would still reach TARGET speedup on --cores cores")
    pred.add_argument("--cores", type=int, default=64,
                      help="core count for the --target analysis")

    char = sub.add_parser(
        "characterize",
        help="simulate a workload across core counts and extract its parameters",
    )
    char.add_argument("workload", choices=["kmeans", "fuzzy", "hop", "histogram"])
    char.add_argument("--scale", type=float, default=0.10,
                      help="dataset scale relative to the paper's (0..1]")
    char.add_argument("--max-threads", type=int, default=16)
    char.add_argument("--reduction", default="serial",
                      choices=["serial", "tree", "parallel"],
                      help="merge strategy (kmeans/fuzzy only)")
    char.add_argument("--no-sweep-cache", action="store_true",
                      help="skip the on-disk simulation sweep cache")

    cache_p = sub.add_parser(
        "cache", help="inspect or clear the on-disk simulation sweep cache"
    )
    cache_p.add_argument("action", choices=["info", "clear"])
    cache_p.add_argument("--memory-only", action="store_true",
                         help="with 'clear': keep the disk tier")

    stats_p = sub.add_parser(
        "stats", help="render a metrics JSONL file written by --metrics-out"
    )
    stats_p.add_argument("metrics_file", help="JSONL from run/runall --metrics-out")
    stats_p.add_argument("--prometheus", action="store_true",
                         help="emit the Prometheus text exposition format "
                              "instead of terminal tables")

    serve_p = sub.add_parser(
        "serve", help="run the async model-query HTTP/JSON server"
    )
    serve_p.add_argument("--host", default="127.0.0.1",
                         help="bind address (default 127.0.0.1)")
    serve_p.add_argument("--port", type=int, default=8177,
                         help="bind port (default 8177; 0 picks a free one)")
    serve_p.add_argument("--cache-size", type=int, default=4096, metavar="N",
                         help="in-memory LRU response-cache entries "
                              "(0 disables the tier)")
    serve_p.add_argument("--no-metrics", action="store_true",
                         help="leave observability off (/metrics will be "
                              "empty; saves the instrumentation branch)")
    serve_p.add_argument("--idle-timeout", type=float, default=30.0,
                         metavar="S",
                         help="close a keep-alive connection after S seconds "
                              "without a complete request (default 30)")

    worker_p = sub.add_parser(
        "worker",
        help="join a 'run/runall --listen' coordinator as a remote worker",
    )
    worker_p.add_argument("--connect", required=True, metavar="HOST:PORT",
                          help="the coordinator address printed by --listen")
    worker_p.add_argument("--name", default=None,
                          help="worker name on the coordinator's event "
                               "stream (default: hostname-pid)")
    worker_p.add_argument("--retry-for", type=float, default=30.0,
                          metavar="S",
                          help="keep reconnecting/idling for S seconds after "
                               "the last successful lease before exiting "
                               "(default 30; survives coordinator restarts)")
    worker_p.add_argument("--import", dest="imports", action="append",
                          default=[], metavar="MODULE",
                          help="import MODULE before serving (registers "
                               "extra unit executors); repeatable")
    worker_p.add_argument("--max-units", type=int, default=None, metavar="N",
                          help="exit after executing N units (for tests)")
    worker_p.add_argument("--chaos-net", default=None, metavar="SPEC",
                          help="inject network faults, e.g. "
                               "'drop=0,duplicate=2,delay=0.5' (see "
                               "repro.engine.chaos.NetChaos)")

    diff_p = sub.add_parser(
        "diff", help="compare two stored JSON reports of the same experiment"
    )
    diff_p.add_argument("old", help="baseline report (.json)")
    diff_p.add_argument("new", help="candidate report (.json)")

    sim_p = sub.add_parser(
        "simulate", help="run a serialized trace program (.jsonl) on a machine"
    )
    sim_p.add_argument("trace", help="trace file written by simx.traceio")
    sim_p.add_argument("--cores", type=int, default=16)
    sim_p.add_argument("--interconnect", choices=["bus", "mesh"], default="bus")
    sim_p.add_argument("--dram", choices=["flat", "banked"], default="flat")
    sim_p.add_argument("--protocol", choices=["mesi", "msi"], default="mesi")
    sim_p.add_argument("--no-fast-path", action="store_true",
                       help="force the op-at-a-time reference engine "
                            "(the fused fast path is cycle-identical; "
                            "this exists for cross-checking and timing)")
    sim_p.add_argument("--batch-path", action="store_true",
                       help="opt into the lockstep batch engine "
                            "(cycle-identical; fastest on private-heavy "
                            "traces; falls back where unsupported)")
    sim_p.add_argument("--scheduler", choices=["pinned", "round-robin", "acmp"],
                       default="pinned",
                       help="thread dispatch policy; non-pinned schedulers "
                            "time-multiplex and allow more threads than cores")
    sim_p.add_argument("--quantum", type=int, default=None,
                       help="preemption quantum in cycles "
                            "(round-robin/acmp only; default: run to block)")
    sim_p.add_argument("--migration-cost", type=int, default=0,
                       help="cycles charged when a thread resumes on a "
                            "different core (round-robin/acmp only)")
    sim_p.add_argument("--acmp-policy",
                       choices=["first-come", "reduction-owns-big",
                                "migrate-on-phase"],
                       default="first-come",
                       help="big-core ownership policy (acmp scheduler only)")
    return parser


def _cmd_list(args: argparse.Namespace) -> int:
    if getattr(args, "json", False):
        import json

        from repro.experiments.registry import SPECS
        from repro.pipeline import accepted_options

        entries = []
        for name in sorted(SPECS):
            spec = SPECS[name]
            accepted = accepted_options(spec.assemble)
            options = sorted(accepted) if accepted is not None else None
            entries.append({
                "id": name,
                "description": describe_experiment(name),
                "options": options,
                # canonical name, matching repro.pipeline.accepted_options;
                # "options" stays for older consumers
                "accepted_options": options,
                "declares_units": spec.declares_units,
            })
        print(json.dumps(entries, indent=2))
        return 0
    width = max(len(name) for name in EXPERIMENTS)
    for name in sorted(EXPERIMENTS):
        print(f"{name:{width}}  {describe_experiment(name)}".rstrip())
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.experiments import simsweep

    if args.action == "clear":
        simsweep.clear_cache(memory_only=args.memory_only)
        print("sweep cache cleared" + (" (memory tier only)" if args.memory_only else ""))
        return 0
    for k, v in simsweep.cache_info().items():
        print(f"{k:15} {v}")
    return 0


def _all_experiment_ids() -> list:
    return sorted(k for k in EXPERIMENTS if not k.startswith("ablation-"))


@contextlib.contextmanager
def _metrics_context(args: argparse.Namespace):
    """Enable observability for the command when ``--metrics-out`` was
    given; writes the JSONL snapshot on exit (even after a failure)."""
    path = getattr(args, "metrics_out", None)
    if path is None:
        yield None
        return
    import os

    from repro import obs

    obs.set_enabled(True)
    # spawn-method engine workers re-import in a fresh process; the env
    # var is how the enable switch reaches them (fork inherits it anyway)
    prior_env = os.environ.get("REPRO_OBS")
    os.environ["REPRO_OBS"] = "1"
    try:
        yield path
    finally:
        if prior_env is None:
            os.environ.pop("REPRO_OBS", None)
        else:
            os.environ["REPRO_OBS"] = prior_env
        obs.set_enabled(False)
        out = obs.write_jsonl(path, meta={"command": args.command})
        obs.reset()
        obs.RECORDER.clear()
        print(f"[metrics written to {out}]")


def _cmd_serve(args: argparse.Namespace) -> int:
    import os

    from repro import obs
    from repro.serve import ServeApp
    from repro.serve import server as serve_server

    if not args.no_metrics:
        obs.set_enabled(True)
        os.environ["REPRO_OBS"] = "1"  # reach any spawned engine workers
    return serve_server.run(ServeApp(cache_size=args.cache_size),
                            host=args.host, port=args.port,
                            idle_timeout=args.idle_timeout)


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.engine.chaos import NetChaos
    from repro.engine.remote import run_worker

    net_chaos = NetChaos.parse(args.chaos_net) if args.chaos_net else None
    return run_worker(
        args.connect,
        name=args.name,
        retry_for=args.retry_for,
        imports=args.imports,
        max_units=args.max_units,
        net_chaos=net_chaos,
    )


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro import obs

    data = obs.read_jsonl(args.metrics_file)
    if args.prometheus:
        reg = obs.MetricsRegistry(enabled=True)
        reg.merge_snapshot(data["metrics"])
        sys.stdout.write(obs.render_prometheus(reg))
    else:
        print(obs.render_stats(data))
    return 0


def _gather_options(args: argparse.Namespace) -> dict:
    """Driver options from the CLI flags (filtered per driver later)."""
    options: dict = {}
    if getattr(args, "scale", None) is not None:
        options["scale"] = args.scale
    threads = getattr(args, "threads", None)
    if threads:
        options["thread_counts"] = [int(t) for t in str(threads).split(",") if t]
    return options


def _resolve_run(args: argparse.Namespace, options: dict) -> "str | None":
    """The run id for this invocation (``--resume`` wins over ``--run-id``).

    Resuming merges the stored manifest into ``args``/``options``:
    explicit CLI flags win, everything else comes back exactly as the
    interrupted run had it — so ``repro run --resume <id>`` needs no
    other arguments.
    """
    resume = getattr(args, "resume", None)
    run_id = resume or getattr(args, "run_id", None)
    if resume:
        from repro.engine import read_manifest, resolve_run_dir

        # refuses to resume a run it cannot find (raises FileNotFoundError
        # with a hint) instead of silently opening a fresh journal — the
        # runs root is CWD-relative unless REPRO_RUNS_DIR is set
        manifest = read_manifest(resolve_run_dir(resume)) or {}
        if getattr(args, "experiment", None) is None:
            args.experiment = manifest.get("experiment")
        for k, v in (manifest.get("options") or {}).items():
            options.setdefault(k, v)
    return run_id


def _write_run_manifest(run_id: str, command: str, experiment: str,
                        options: dict) -> None:
    from repro.engine import run_path, runs_root, write_manifest

    write_manifest(run_path(run_id, create=True), {
        "command": command, "experiment": experiment, "options": options,
        # absolute, so a resume attempt from the wrong CWD can be told
        # where the run actually lives (see journal.resolve_run_dir)
        "runs_root": str(runs_root().resolve()),
    })


def _engine_context(args: argparse.Namespace, run_id: "str | None" = None):
    """An installed engine session when ``--parallel`` or a run id was
    given, else a no-op context yielding None.

    A run id without ``--parallel`` still needs a session (the journal
    lives on it); it runs on one worker, which degrades to the serial
    pool — deterministic settle order, byte-identical reports.
    """
    parallel = getattr(args, "parallel", None)
    listen = getattr(args, "listen", None)
    if parallel is None and run_id is None and listen is None:
        return contextlib.nullcontext(None)
    from repro import engine

    return engine.session(parallel if parallel is not None else 1,
                          event_log=args.event_log, run_id=run_id,
                          drain_signals=True, listen=listen,
                          worker_timeout=getattr(args, "worker_timeout", None),
                          lease_timeout=getattr(args, "lease_timeout", 600.0))


def _announce_listener(sess) -> None:
    """Tell the operator where remote workers should connect."""
    address = getattr(sess, "remote_address", None)
    if address:
        print(f"[coordinator listening on {address}; join with: "
              f"repro worker --connect {address}]", file=sys.stderr)


def _interrupted_exit(exc, run_id: "str | None") -> int:
    """Report a graceful drain and how to pick the run back up (exit 130,
    the shell convention for death-by-signal)."""
    hint = f"; resume with: --resume {run_id}" if run_id else ""
    print(f"run interrupted ({exc.reason}): {exc.settled} unit(s) settled, "
          f"{exc.pending} pending{hint}", file=sys.stderr)
    return 130


def _print_reports(ids, args: argparse.Namespace, options=None) -> bool:
    """Run and print each experiment; True when any comparison failed.

    ``options`` applies across the whole batch; each driver receives
    only the knobs it accepts (:func:`~repro.experiments.registry
    .filter_options`)."""
    from repro.experiments.registry import filter_options

    failed = False
    for eid in ids:
        report = run_experiment(eid, **filter_options(eid, options or {}))
        if args.csv:
            for t in report.tables:
                print(t.to_csv())
                print()
        else:
            print(report.render())
            print()
        if getattr(args, "plot", False):
            from repro.viz.report_plots import render_report_charts

            charts = render_report_charts(report)
            if charts:
                print(charts)
                print()
        if args.json:
            from pathlib import Path

            from repro.experiments.store import save_report

            path = save_report(report, Path(args.json) / f"{eid}.json")
            log.info("wrote %s", path)
        if not report.all_match:
            failed = True
            log.warning("experiment %s: some paper comparisons did not hold", eid)
    return failed


def _cmd_run(args: argparse.Namespace) -> int:
    if args.no_sweep_cache:
        from repro.experiments import simsweep

        simsweep.set_disk_store(None)
    options = _gather_options(args)
    try:
        run_id = _resolve_run(args, options)
    except FileNotFoundError as exc:
        print(f"run: {exc}", file=sys.stderr)
        return 2
    if args.experiment is None:
        print("run: an experiment id is required (or --resume a run whose "
              "manifest records one)", file=sys.stderr)
        return 2
    ids = _all_experiment_ids() if args.experiment == "all" else [args.experiment]
    with _metrics_context(args), _engine_context(args, run_id) as sess:
        if run_id is not None:
            _write_run_manifest(run_id, "run", args.experiment, options)
        if sess is not None:
            from repro.engine import RunInterrupted, precompute

            _announce_listener(sess)
            try:
                precompute(sess, ids, options)
                failed = _print_reports(ids, args, options)
            except RunInterrupted as exc:
                return _interrupted_exit(exc, run_id)
            log.info("engine: %s", sess.summary())
        else:
            failed = _print_reports(ids, args, options)
    return 1 if failed else 0


def _cmd_runall(args: argparse.Namespace) -> int:
    if args.no_sweep_cache:
        from repro.experiments import simsweep

        simsweep.set_disk_store(None)
    from repro import engine

    options = _gather_options(args)
    try:
        run_id = _resolve_run(args, options)
    except FileNotFoundError as exc:
        print(f"runall: {exc}", file=sys.stderr)
        return 2
    ids = _all_experiment_ids()
    with _metrics_context(args), \
            engine.session(args.parallel, event_log=args.event_log,
                           run_id=run_id, drain_signals=True,
                           listen=args.listen,
                           worker_timeout=args.worker_timeout,
                           lease_timeout=args.lease_timeout) as sess:
        if run_id is not None:
            _write_run_manifest(run_id, "runall", "all", options)
        _announce_listener(sess)
        try:
            engine.precompute(sess, ids, options)
            failed = _print_reports(ids, args, options)
        except engine.RunInterrupted as exc:
            return _interrupted_exit(exc, run_id)
        print(f"[{len(ids)} experiments; engine: {sess.summary()}]")
    return 1 if failed else 0


def _cmd_predict(args: argparse.Namespace) -> int:
    params = AppParams(f=args.f, fcon_share=args.fcon, fored_share=args.fored)
    cmp_ = optimizer.compare_architectures(params, args.n, growth=args.growth)
    print(f"application: {params.describe()}")
    sym = cmp_.symmetric
    asym = cmp_.asymmetric
    print(
        f"best symmetric : {sym.cores:.0f} cores of {sym.r:.0f} BCEs "
        f"-> speedup {sym.speedup:.1f}"
    )
    print(
        f"best asymmetric: 1x{asym.rl:.0f} BCE + {asym.small_cores:.0f}x{asym.r:.0f} "
        f"BCEs -> speedup {asym.speedup:.1f}"
    )
    print(
        f"Amdahl would predict {cmp_.amdahl_symmetric:.1f} (sym) / "
        f"{cmp_.amdahl_asymmetric:.1f} (asym)"
    )
    print(f"ACMP advantage: {cmp_.acmp_speedup_ratio:.2f}x "
          f"(Amdahl: {cmp_.amdahl_speedup_ratio:.2f}x)")
    if args.target is not None:
        from repro.core.requirements import max_affordable_overhead

        budget = max_affordable_overhead(
            args.f, args.fcon, args.cores, args.target
        )
        if budget <= 0:
            print(f"target {args.target:.0f}x on {args.cores} cores: "
                  "unreachable even with a flat merge")
        else:
            print(
                f"target {args.target:.0f}x on {args.cores} flat cores: the "
                f"merge may grow by at most {budget:.0%} of its single-core "
                f"time per added core (Table II form: fored <= {budget:.2f})"
            )
    return 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    from repro.experiments.simsweep import default_workloads, simulate_breakdowns
    from repro.workloads.instrument import (
        extract_parameters,
        serial_growth_curve,
        speedup_curve,
    )

    if args.no_sweep_cache:
        from repro.experiments import simsweep

        simsweep.set_disk_store(None)
    workloads = dict(default_workloads(args.scale))
    if args.workload == "histogram":
        from repro.workloads.histogram import HistogramWorkload

        workloads["histogram"] = HistogramWorkload(
            n_items=max(2000, int(100_000 * args.scale)), n_bins=2048
        )
    workload = workloads[args.workload]
    if args.reduction != "serial" and hasattr(workload, "reduction_strategy"):
        from dataclasses import replace

        workload = replace(workload, reduction_strategy=args.reduction)
    threads = [p for p in (1, 2, 4, 8, 16, 32) if p <= args.max_threads]
    print(f"simulating {args.workload} at scale {args.scale} "
          f"on {threads} cores...")
    breakdowns = simulate_breakdowns(
        workload, threads, n_cores=max(threads), mem_scale=2
    )
    print("speedup:        ",
          {p: round(v, 2) for p, v in speedup_curve(breakdowns).items()})
    print("serial growth:  ",
          {p: round(v, 2) for p, v in serial_growth_curve(breakdowns).items()})
    ep = extract_parameters(breakdowns, args.workload)
    print(f"\nf     = {1 - ep.serial_pct / 100:.5f}   (serial {ep.serial_pct:.4f}%)")
    print(f"fcon  = {ep.fcon_share:.0%} of serial time")
    print(f"fred  = {ep.fred_share:.0%} of serial time")
    print(f"fored = {ep.fored_rel:.0%} relative growth/core "
          f"(alpha = {ep.growth_alpha:.2f})")
    design = ep.to_measured_params().to_design_params()
    from repro.core import merging as merging_model

    best = merging_model.best_symmetric(design, 256)
    print(f"\noptimal 256-BCE symmetric chip: {best.cores:.0f} cores of "
          f"{best.r:.0f} BCEs -> {best.speedup:.1f}x")
    return 0


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    configure(verbose=args.verbose)
    if args.command == "list":
        return _cmd_list(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "runall":
        return _cmd_runall(args)
    if args.command == "predict":
        return _cmd_predict(args)
    if args.command == "characterize":
        return _cmd_characterize(args)
    if args.command == "cache":
        return _cmd_cache(args)
    if args.command == "stats":
        return _cmd_stats(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "worker":
        return _cmd_worker(args)
    if args.command == "diff":
        from repro.experiments.diffing import diff_reports
        from repro.experiments.store import load_report

        diff = diff_reports(load_report(args.old), load_report(args.new))
        print(diff.render())
        return 0 if diff.is_clean or not diff.flipped_claims else 1
    if args.command == "simulate":
        from repro.simx import Machine, MachineConfig
        from repro.simx.traceio import load_program

        config = MachineConfig(
            n_cores=args.cores,
            interconnect=args.interconnect,
            dram=args.dram,
            coherence_protocol=args.protocol,
            fast_path=not args.no_fast_path,
            batch_path=args.batch_path,
            scheduler=args.scheduler,
            quantum=args.quantum,
            migration_cost=args.migration_cost,
            acmp_policy=args.acmp_policy,
        )
        result = Machine(config).run(load_program(args.trace))
        print(result.summary())
        return 0
    return 2  # pragma: no cover - argparse enforces choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
