"""Uncore area costs combined with merging phases (Loh-style model).

The paper's Related Work cites Loh's observation [ALTA 2008] that
"uncore" resources — interconnect, directories, memory controllers, shared
cache slices — consume chip area that grows with the core count, but
notes Loh "does not consider the serializing nature of merging phases".
This module combines the two: each core pays an uncore area tax, shrinking
the budget available to cores, *and* the merge grows with the core count.

Area model.  With per-core uncore overhead ``tau`` (in BCEs per core),
hosting ``nc`` cores of ``r`` BCEs requires ``nc·(r + tau) <= n``, i.e.
the effective core count is ``nc = n / (r + tau)``.  Both the parallel
throughput and the merge growth see this reduced ``nc``.
"""

from __future__ import annotations

import numpy as np

from repro.core.growth import GrowthFunction, resolve_growth
from repro.core.params import AppParams
from repro.core.perf import PerfLaw, resolve_perf_law
from repro.util.validation import check_positive, check_positive_int

__all__ = ["speedup_symmetric_uncore", "best_symmetric_uncore", "uncore_break_even"]


def speedup_symmetric_uncore(
    params: AppParams,
    n: int,
    r: "float | np.ndarray",
    tau: float,
    growth: "str | GrowthFunction | None" = None,
    perf: "str | PerfLaw | None" = None,
) -> "float | np.ndarray":
    """Eq 4 with a per-core uncore area tax of ``tau`` BCEs.

    ``tau = 0`` recovers the plain merging model.  The chip hosts
    ``nc = n / (r + tau)`` cores; the parallel section runs on their
    aggregate throughput ``nc·perf(r)``; the merge grows with ``nc``.
    """
    n = check_positive_int(n, "n")
    check_positive(tau, "tau", allow_zero=True)
    law = resolve_perf_law(perf)
    g = resolve_growth(growth)
    arr = np.asarray(r, dtype=np.float64)
    if np.any(arr <= 0) or np.any(arr + tau > n):
        raise ValueError(
            f"need 0 < r and r + tau <= n; got r={r!r}, tau={tau}, n={n}"
        )
    pr = np.asarray(law(arr), dtype=np.float64)
    nc = n / (arr + tau)
    serial = (
        params.fcon + params.fcred + params.fored * np.asarray(g(nc))
    ) / pr
    parallel = params.f / (nc * pr)
    out = 1.0 / (serial + parallel)
    return float(out) if np.asarray(r).ndim == 0 else out


def best_symmetric_uncore(
    params: AppParams,
    n: int,
    tau: float,
    growth: "str | GrowthFunction | None" = None,
    perf: "str | PerfLaw | None" = None,
) -> tuple[float, float]:
    """(r*, speedup*) over the power-of-two grid under an uncore tax."""
    from repro.core.merging import power_of_two_sizes

    sizes = power_of_two_sizes(n)
    sizes = sizes[sizes + tau <= n]
    sp = np.asarray(speedup_symmetric_uncore(params, n, sizes, tau, growth, perf))
    i = int(np.argmax(sp))
    return float(sizes[i]), float(sp[i])


def uncore_break_even(
    params: AppParams,
    n: int,
    r: float,
    growth: "str | GrowthFunction | None" = None,
    perf: "str | PerfLaw | None" = None,
    tol: float = 1e-6,
) -> float:
    """The uncore tax at which halving the core count costs nothing.

    Returns the smallest ``tau`` such that a chip of ``n/(r+tau)`` cores
    of ``r`` BCEs is no faster than a chip of half as many ``2r``-BCE
    cores with the same tax — i.e. the point where uncore overhead (which
    charges per core) makes consolidation free.  Found by bisection;
    returns ``inf`` if no tax below ``n - r`` flips the comparison.
    """
    check_positive(r, "r")

    def gap(tau: float) -> float:
        small = float(speedup_symmetric_uncore(params, n, r, tau, growth, perf))
        big = float(speedup_symmetric_uncore(params, n, 2 * r, tau, growth, perf))
        return small - big

    lo, hi = 0.0, float(n - 2 * r)
    if gap(lo) <= 0:
        return 0.0
    if gap(hi) > 0:
        return float("inf")
    while hi - lo > tol:
        mid = (lo + hi) / 2
        if gap(mid) > 0:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2
