"""Application parameter records (Fig 1 / Table II / Table III of the paper).

The paper decomposes a parallel application's execution into a parallel
fraction ``f`` and a serial fraction ``s = 1 - f``; the serial fraction
further splits into (Fig 1)::

    s ─┬─ fcon   constant serial fraction (startup, stop criteria, ...)
       └─ fred   reduction (merging-phase) fraction
             ├─ fcred  constant part of the reduction
             └─ fored  part of the reduction whose cost grows with cores

Two parameterisations coexist in the paper and both are supported here:

* :class:`AppParams` — the *design-space* form of Table III.  ``fcon_share``
  is fcon as a share of serial time and ``fored_share`` is the growing part
  as a share of *reduction* time.  Both lie in [0, 1].  This form plugs
  straight into Eqs 4–7.
* :class:`MeasuredParams` — the *measured* form of Table II, where
  ``fored_rel`` is the relative increase of reduction time over ``fcred``
  per added core and may exceed 1 (hop: 1.55).  This form drives the
  serial-time growth model of Fig 2(b)/(d) and the Fig 3 predictions (see
  :mod:`repro.core.measured`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping

from repro.util.validation import check_fraction, check_positive

__all__ = [
    "AppParams",
    "MeasuredParams",
    "TABLE2",
    "TABLE2_CRITICAL_SECTION",
    "TABLE4",
    "DatasetRecord",
]


@dataclass(frozen=True)
class AppParams:
    """Design-space application parameters (Table III form).

    Parameters
    ----------
    f:
        Parallel fraction (0 < f < 1).
    fcon_share:
        Constant serial fraction as a share of total serial time,
        ``fcon(%)`` in the paper's tables.
    fored_share:
        Growing reduction share of the *reduction* fraction,
        ``fored(%)`` in Table III.
    name:
        Optional label for reports.
    """

    f: float
    fcon_share: float
    fored_share: float
    name: str = ""

    def __post_init__(self) -> None:
        check_fraction(self.f, "f", inclusive=False)
        check_fraction(self.fcon_share, "fcon_share")
        check_fraction(self.fored_share, "fored_share")

    # ── absolute fractions of total single-core execution time ────────────
    @property
    def serial(self) -> float:
        """Total serial fraction ``s = 1 - f``."""
        return 1.0 - self.f

    @property
    def fcon(self) -> float:
        """Constant serial fraction (absolute)."""
        return self.serial * self.fcon_share

    @property
    def fred(self) -> float:
        """Reduction fraction (absolute)."""
        return self.serial * (1.0 - self.fcon_share)

    @property
    def fored(self) -> float:
        """Growing reduction fraction (absolute)."""
        return self.fred * self.fored_share

    @property
    def fcred(self) -> float:
        """Constant reduction fraction (absolute)."""
        return self.fred * (1.0 - self.fored_share)

    # ── communication split (Section V.E) ────────────────────────────────
    @property
    def fcomp(self) -> float:
        """Computation half of the reduction fraction (Eq 6 premise:
        one computation per communication, so fcomp == fcomm == fred/2)."""
        return self.fred / 2.0

    @property
    def fcomm(self) -> float:
        """Communication half of the reduction fraction."""
        return self.fred / 2.0

    def with_(self, **changes: float) -> "AppParams":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.name or 'app'}: f={self.f:g}, fcon={self.fcon_share:.0%} of serial, "
            f"fored={self.fored_share:.0%} of reduction"
        )


@dataclass(frozen=True)
class MeasuredParams:
    """Measured application parameters (Table II form).

    Parameters
    ----------
    name:
        Application name (kmeans / fuzzy / hop).
    serial_pct:
        Serial fraction of single-core execution time, in percent
        (paper: 0.015 for kmeans means s = 0.00015).
    critical_pct:
        Fraction of time in critical sections, percent (reported but
        excluded from the analysis, as in the paper).
    fored_rel:
        Relative increase of reduction time over ``fcred`` per added core
        (Table II's fored(%) / 100; may exceed 1).
    fred_share:
        Reduction fraction as a share of serial time (Table II fred(%)).
    fcon_share:
        Constant fraction as a share of serial time (Table II fcon(%));
        ``fred_share + fcon_share == 1``.
    growth_alpha:
        Exponent of the measured growth: 1 for kmeans/fuzzy (linear); hop's
        merge grows superlinearly, which the paper attributes to memory
        accesses — modelled as a power law fitted by the instrumentation.
    """

    name: str
    serial_pct: float
    critical_pct: float
    fored_rel: float
    fred_share: float
    fcon_share: float
    growth_alpha: float = 1.0

    def __post_init__(self) -> None:
        check_positive(self.serial_pct, "serial_pct")
        check_positive(self.critical_pct, "critical_pct", allow_zero=True)
        check_positive(self.fored_rel, "fored_rel", allow_zero=True)
        check_fraction(self.fred_share, "fred_share")
        check_fraction(self.fcon_share, "fcon_share")
        if abs(self.fred_share + self.fcon_share - 1.0) > 1e-9:
            raise ValueError(
                f"fred_share + fcon_share must be 1, got "
                f"{self.fred_share} + {self.fcon_share}"
            )
        check_positive(self.growth_alpha, "growth_alpha")

    @property
    def s(self) -> float:
        """Serial fraction of single-core execution time (absolute)."""
        return self.serial_pct / 100.0

    @property
    def f(self) -> float:
        """Parallel fraction."""
        return 1.0 - self.s

    @property
    def fcon(self) -> float:
        """Constant serial fraction (absolute)."""
        return self.s * self.fcon_share

    @property
    def fred(self) -> float:
        """Reduction fraction (absolute). Equals fcred at one core."""
        return self.s * self.fred_share

    @property
    def fcred(self) -> float:
        """Constant reduction fraction (absolute). In the measured form the
        entire single-core reduction time is the constant baseline."""
        return self.fred

    def to_design_params(self) -> AppParams:
        """Project onto the design-space form for use with Eqs 4–7.

        The growing share of the reduction is ``fored_rel`` clipped to 1:
        in the design-space form at most the whole reduction can grow, and
        the measured relative slopes >= 1 (all three applications) mean the
        whole reduction is effectively overhead-dominated at scale.
        """
        return AppParams(
            f=self.f,
            fcon_share=self.fcon_share,
            fored_share=min(self.fored_rel, 1.0),
            name=self.name,
        )


#: Table II of the paper — measured parameters for the MineBench clustering
#: applications (default datasets, SESC simulation infrastructure).
TABLE2: Mapping[str, MeasuredParams] = {
    "kmeans": MeasuredParams(
        name="kmeans", serial_pct=0.015, critical_pct=0.004,
        fored_rel=0.72, fred_share=0.43, fcon_share=0.57,
    ),
    "fuzzy": MeasuredParams(
        name="fuzzy", serial_pct=0.002, critical_pct=0.0,
        fored_rel=0.82, fred_share=0.35, fcon_share=0.65,
    ),
    "hop": MeasuredParams(
        name="hop", serial_pct=0.100, critical_pct=0.0003,
        fored_rel=1.55, fred_share=0.12, fcon_share=0.88,
        growth_alpha=1.25,  # superlinear merge growth (Section V.A)
    ),
}

#: Critical-section percentages (Table II column 3), kept separately for the
#: Table II report.
TABLE2_CRITICAL_SECTION: Mapping[str, float] = {
    "kmeans": 0.004,
    "fuzzy": 0.0,
    "hop": 0.0003,
}


@dataclass(frozen=True)
class DatasetRecord:
    """A row of Table IV: dataset attributes and the measured fractions."""

    label: str
    n_points: int
    n_dims: int
    n_centers: int
    f: float
    fred_share: float
    fcon_share: float
    note: str = ""


#: Table IV of the paper — dataset-sensitivity study.
TABLE4: tuple[DatasetRecord, ...] = (
    DatasetRecord("kmeans-base",   17695,  9,  8, 0.99985, 0.43, 0.57),
    DatasetRecord("kmeans-dim",    17695, 18,  8, 0.99984, 0.41, 0.59),
    DatasetRecord("kmeans-point",  35390, 18,  8, 0.99992, 0.49, 0.51),
    DatasetRecord("kmeans-center", 17695, 18, 32, 0.99984, 0.41, 0.59),
    DatasetRecord("fuzzy-base",    17695,  9,  8, 0.99998, 0.65, 0.35),
    DatasetRecord("fuzzy-dim",     17695, 18,  8, 0.99997, 0.61, 0.39),
    DatasetRecord("fuzzy-point",   35390, 18,  8, 0.99999, 0.59, 0.41),
    DatasetRecord("fuzzy-center",  17695, 18, 32, 0.99998, 0.61, 0.39),
    DatasetRecord("hop-default",   61440,  3,  0, 0.9990, 0.12, 0.88, note="64p default"),
    DatasetRecord("hop-med",      491520,  3,  0, 0.9980, 0.15, 0.85, note="128p medium"),
)
