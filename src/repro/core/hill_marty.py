"""Hill–Marty multicore speedup models (Eqs 2 and 3 of the paper).

Hill and Marty ["Amdahl's Law in the Multicore Era", IEEE Computer 2008]
recast Amdahl's Law for a chip with an area budget of ``n`` base-core
equivalents (BCEs):

* **Symmetric CMP** — ``n/r`` cores of ``r`` BCEs each (Eq 2)::

      speedup = 1 / [ (1-f)/perf(r) + f·r / (perf(r)·n) ]

* **Asymmetric CMP** — one large ``rl``-BCE core plus ``n - rl`` one-BCE
  cores; the serial section runs on the large core, the parallel section on
  everything (Eq 3)::

      speedup = 1 / [ (1-f)/perf(rl) + f / (perf(rl) + n - rl) ]

These are the *constant-serial-section* baselines that the paper's extended
model (:mod:`repro.core.merging`) corrects.  We additionally provide the
generalised asymmetric form used implicitly by the paper's Fig 5 Amdahl
curves (small cores of ``r`` BCEs rather than 1), and Hill–Marty's dynamic
CMP as an extension.

All speedup functions are vectorised over their core-size argument.
"""

from __future__ import annotations

import numpy as np

from repro.core.perf import PerfLaw, resolve_perf_law
from repro.util.validation import check_fraction, check_positive_int

__all__ = [
    "speedup_symmetric",
    "speedup_asymmetric",
    "speedup_asymmetric_grouped",
    "speedup_dynamic",
    "best_symmetric",
    "best_asymmetric",
]


def _as_r_array(r: "float | np.ndarray", name: str) -> np.ndarray:
    arr = np.asarray(r, dtype=np.float64)
    if np.any(arr <= 0):
        raise ValueError(f"{name} must be > 0, got {r!r}")
    return arr


def speedup_symmetric(
    f: float,
    n: int,
    r: "float | np.ndarray",
    perf: "str | PerfLaw | None" = None,
) -> "float | np.ndarray":
    """Hill–Marty symmetric-CMP speedup (Eq 2).

    Parameters
    ----------
    f:
        Parallel fraction.
    n:
        Chip budget in BCEs (paper: 256).
    r:
        BCEs per core; scalar or array.  Need not divide ``n`` exactly for
        the continuous model, but must not exceed ``n``.
    perf:
        Performance law (default: sqrt).
    """
    check_fraction(f, "f")
    n = check_positive_int(n, "n")
    law = resolve_perf_law(perf)
    arr = _as_r_array(r, "r")
    if np.any(arr > n):
        raise ValueError(f"core size r must be <= n={n}")
    pr = np.asarray(law(arr), dtype=np.float64)
    out = 1.0 / ((1.0 - f) / pr + f * arr / (pr * n))
    return float(out) if np.asarray(r).ndim == 0 else out


def speedup_asymmetric(
    f: float,
    n: int,
    rl: "float | np.ndarray",
    perf: "str | PerfLaw | None" = None,
) -> "float | np.ndarray":
    """Hill–Marty asymmetric-CMP speedup (Eq 3): one ``rl``-BCE core plus
    ``n - rl`` one-BCE cores.

    At ``rl == n`` the chip is a single large core and the expression reduces
    to ``perf(n)`` (no parallel speedup beyond the big core).
    """
    check_fraction(f, "f")
    n = check_positive_int(n, "n")
    law = resolve_perf_law(perf)
    arr = _as_r_array(rl, "rl")
    if np.any(arr > n):
        raise ValueError(f"large-core size rl must be <= n={n}")
    prl = np.asarray(law(arr), dtype=np.float64)
    out = 1.0 / ((1.0 - f) / prl + f / (prl + n - arr))
    return float(out) if np.asarray(rl).ndim == 0 else out


def speedup_asymmetric_grouped(
    f: float,
    n: int,
    rl: "float | np.ndarray",
    r: float = 1.0,
    perf: "str | PerfLaw | None" = None,
) -> "float | np.ndarray":
    """Generalised asymmetric CMP: one ``rl``-BCE core plus ``(n - rl)/r``
    small cores of ``r`` BCEs each (the Amdahl reference curves of Fig 5).

    The parallel section runs on all cores with aggregate throughput
    ``perf(r)·(n - rl)/r + perf(rl)``; the serial section runs on the large
    core alone.
    """
    check_fraction(f, "f")
    n = check_positive_int(n, "n")
    law = resolve_perf_law(perf)
    arr = _as_r_array(rl, "rl")
    if np.any(arr > n):
        raise ValueError(f"large-core size rl must be <= n={n}")
    if r <= 0 or r > n:
        raise ValueError(f"small-core size r must be in (0, n], got {r}")
    prl = np.asarray(law(arr), dtype=np.float64)
    pr = float(law(r))
    parallel_throughput = pr * (n - arr) / r + prl
    out = 1.0 / ((1.0 - f) / prl + f / parallel_throughput)
    return float(out) if np.asarray(rl).ndim == 0 else out


def speedup_dynamic(
    f: float,
    n: int,
    r: "float | np.ndarray",
    perf: "str | PerfLaw | None" = None,
) -> "float | np.ndarray":
    """Hill–Marty *dynamic* CMP: serial sections run as one fused ``r``-BCE
    core, parallel sections use all ``n`` BCEs.  An optimistic upper bound,
    included for the ablation study (not evaluated in the paper).
    """
    check_fraction(f, "f")
    n = check_positive_int(n, "n")
    law = resolve_perf_law(perf)
    arr = _as_r_array(r, "r")
    if np.any(arr > n):
        raise ValueError(f"dynamic core size r must be <= n={n}")
    pr = np.asarray(law(arr), dtype=np.float64)
    out = 1.0 / ((1.0 - f) / pr + f / n)
    return float(out) if np.asarray(r).ndim == 0 else out


def _power_of_two_sizes(n: int) -> np.ndarray:
    """Core sizes 1, 2, 4, ..., n (the paper's sweep grid)."""
    return np.array([2**k for k in range(int(np.log2(n)) + 1) if 2**k <= n], dtype=np.float64)


def best_symmetric(
    f: float, n: int, perf: "str | PerfLaw | None" = None
) -> tuple[float, float]:
    """Return ``(r*, speedup*)`` maximising Eq 2 over power-of-two core sizes."""
    sizes = _power_of_two_sizes(check_positive_int(n, "n"))
    sp = np.asarray(speedup_symmetric(f, n, sizes, perf))
    i = int(np.argmax(sp))
    return float(sizes[i]), float(sp[i])


def best_asymmetric(
    f: float, n: int, perf: "str | PerfLaw | None" = None
) -> tuple[float, float]:
    """Return ``(rl*, speedup*)`` maximising Eq 3 over power-of-two sizes."""
    sizes = _power_of_two_sizes(check_positive_int(n, "n"))
    sp = np.asarray(speedup_asymmetric(f, n, sizes, perf))
    i = int(np.argmax(sp))
    return float(sizes[i]), float(sp[i])
