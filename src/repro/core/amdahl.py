"""Amdahl's Law (Eq 1 of the paper).

The classical fixed-workload speedup bound: if a fraction ``f`` of a
sequential application can be parallelised perfectly over ``p`` processors
and the remaining ``s = 1 - f`` stays serial,

    speedup(p) = 1 / (s + f / p)

which approaches ``1 / s`` as ``p → ∞``.  All functions are vectorised over
``p``.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_fraction, ensure_array

__all__ = [
    "speedup",
    "speedup_limit",
    "efficiency",
    "serial_fraction_from_speedup",
    "cores_for_target_speedup",
]


def speedup(f: float, p: "float | np.ndarray") -> "float | np.ndarray":
    """Amdahl speedup with parallel fraction ``f`` on ``p`` processors.

    Parameters
    ----------
    f:
        Parallel fraction in [0, 1].
    p:
        Processor count(s), >= 1.  Scalar or array.

    Returns
    -------
    float or numpy.ndarray
        Speedup relative to one processor.
    """
    check_fraction(f, "f")
    arr = np.asarray(p, dtype=np.float64)
    if np.any(arr < 1):
        raise ValueError(f"processor count p must be >= 1, got {p!r}")
    out = 1.0 / ((1.0 - f) + f / arr)
    return float(out) if arr.ndim == 0 else out


def speedup_limit(f: float) -> float:
    """The asymptotic speedup ``1 / (1 - f)`` (``inf`` when f == 1)."""
    check_fraction(f, "f")
    s = 1.0 - f
    return float("inf") if s == 0.0 else 1.0 / s


def efficiency(f: float, p: "float | np.ndarray") -> "float | np.ndarray":
    """Parallel efficiency ``speedup(p) / p`` in (0, 1]."""
    arr = np.asarray(p, dtype=np.float64)
    out = speedup(f, arr) / arr
    return float(out) if arr.ndim == 0 else out


def serial_fraction_from_speedup(measured_speedup: float, p: int) -> float:
    """Invert Amdahl's Law (the Karp–Flatt metric).

    Given a measured speedup on ``p`` processors, return the serial fraction
    that Amdahl's Law would attribute to the application::

        s = (p / speedup - 1) / (p - 1)

    Useful for sanity-checking simulator output against the model.
    """
    if p < 2:
        raise ValueError(f"p must be >= 2 to infer a serial fraction, got {p}")
    if not (0 < measured_speedup <= p):
        raise ValueError(
            f"measured speedup must be in (0, p], got {measured_speedup} for p={p}"
        )
    return (p / measured_speedup - 1.0) / (p - 1.0)


def cores_for_target_speedup(f: float, target: float) -> float:
    """Minimum processor count achieving ``target`` speedup, or ``inf``.

    Solves ``1 / (s + f/p) >= target`` for p.  Returns ``inf`` when the
    target exceeds the asymptotic limit ``1/s``.
    """
    check_fraction(f, "f")
    if target <= 0:
        raise ValueError(f"target speedup must be > 0, got {target}")
    if target <= 1.0:
        return 1.0
    s = 1.0 - f
    if target >= speedup_limit(f):
        return float("inf")
    return f / (1.0 / target - s)
