"""Communication-aware reduction model (Section V.E, Eqs 6–8).

Section V.E refines the reduction fraction into a *computation* half
``fcomp`` and a *communication* half ``fcomm`` (the paper's ideal premise:
one communication per computation at a single core, so
``fcomp == fcomm == fred / 2``), each with its own growth law:

* **Symmetric CMP** (Eq 6) — serial part::

      (fcon + fcomp·(1 + growcomp(nc))) / perf(r)
          + fcomm·(1 + growcomm(nc))

  The communication term is *not* divided by ``perf`` — a bigger core does
  not make the network faster.

* **Asymmetric CMP** (Eq 7) — same split with ``perf(rl)`` and
  ``nc = (n - rl)/r + 1``.

* **2D mesh** (Eq 8) — for a parallel (privatised) reduction of ``x``
  elements over ``nc`` cores, the network must carry ``2(nc-1)·x`` messages
  over an average of ``sqrt(nc) - 1`` hops, with
  ``4·sqrt(nc)(sqrt(nc) - 1)`` link-transfers available per unit time::

      growcomm(nc) = 2(nc-1)·x·(sqrt(nc)-1) / (4·sqrt(nc)·(sqrt(nc)-1))
                   ≈ sqrt(nc) / 2

Computation growth follows the reduction technique: linear accumulation has
``growcomp = grow_linear - 1`` extra work (the factor ``(1 + growcomp)``
means ``growcomp`` is the *extra* work relative to one core), a tree has
logarithmic extra work, and a privatised parallel reduction has none
(``x/nc · nc = x``).  The paper's Fig 7 uses the parallel technique — the
whole point of Section V.E is that even when reduction computation is fully
parallelised, communication still grows as ``sqrt(nc)/2`` on a mesh.

Validated anchors: Fig 7(a) peak 46.6 at r = 8; Fig 7(b) peak 51.6 at
rl = 32, r = 4 (DESIGN.md §1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.params import AppParams
from repro.core.perf import PerfLaw, resolve_perf_law
from repro.util.validation import check_positive_int

__all__ = [
    "CommGrowth",
    "mesh_growcomm",
    "MESH_COMM",
    "CompGrowth",
    "PARALLEL_COMP",
    "LINEAR_COMP",
    "LOG_COMP",
    "serial_term_comm",
    "speedup_symmetric_comm",
    "speedup_asymmetric_comm",
    "sweep_symmetric_comm",
    "sweep_asymmetric_comm",
]


@dataclass(frozen=True)
class CommGrowth:
    """Communication growth law ``growcomm(nc)`` for a topology."""

    name: str
    fn: Callable[[np.ndarray], np.ndarray]

    def __call__(self, nc: "float | np.ndarray") -> "float | np.ndarray":
        arr = np.asarray(nc, dtype=np.float64)
        if np.any(arr < 1):
            raise ValueError(f"core count nc must be >= 1, got {nc!r}")
        out = self.fn(arr)
        return float(out) if np.asarray(nc).ndim == 0 else out


def mesh_growcomm(nc: np.ndarray) -> np.ndarray:
    """Eq 8's asymptotic form: ``sqrt(nc) / 2`` (zero extra cost at nc=1).

    The exact pre-simplification expression divides out identically for
    nc > 1; at nc = 1 there is no communication at all, so the growth is 0
    (the factor ``1 + growcomm`` then charges exactly the single-core
    communication fraction).
    """
    arr = np.asarray(nc, dtype=np.float64)
    return np.where(arr > 1.0, np.sqrt(arr) / 2.0, 0.0)


#: The paper's 2D-mesh communication growth (Eq 8).
MESH_COMM = CommGrowth("mesh2d", mesh_growcomm)


@dataclass(frozen=True)
class CompGrowth:
    """Computation growth law ``growcomp(nc)``: *extra* reduction work
    relative to one core (the model charges ``fcomp · (1 + growcomp)``)."""

    name: str
    fn: Callable[[np.ndarray], np.ndarray]

    def __call__(self, nc: "float | np.ndarray") -> "float | np.ndarray":
        arr = np.asarray(nc, dtype=np.float64)
        if np.any(arr < 1):
            raise ValueError(f"core count nc must be >= 1, got {nc!r}")
        out = self.fn(arr)
        return float(out) if np.asarray(nc).ndim == 0 else out


#: Privatised parallel reduction: total computation stays x (no extra work).
PARALLEL_COMP = CompGrowth("parallel", lambda nc: np.zeros_like(np.asarray(nc, dtype=float)))
#: Serial accumulation: nc partials instead of 1 → extra work nc - 1.
LINEAR_COMP = CompGrowth("linear", lambda nc: np.asarray(nc, dtype=float) - 1.0)
#: Tree reduction: log2(nc) combining rounds of extra work.
LOG_COMP = CompGrowth("log", lambda nc: np.maximum(np.log2(np.asarray(nc, dtype=float)), 0.0))


def serial_term_comm(
    params: AppParams,
    nc: "float | np.ndarray",
    perf_serial: "float | np.ndarray",
    comp: CompGrowth = PARALLEL_COMP,
    comm: CommGrowth = MESH_COMM,
) -> np.ndarray:
    """The communication-aware serial cost (common body of Eqs 6 and 7).

    ``perf_serial`` is ``perf(r)`` for symmetric chips or ``perf(rl)`` for
    asymmetric ones; the communication half is charged at wire speed
    regardless of core size.
    """
    nc_arr = np.asarray(nc, dtype=np.float64)
    ps = np.asarray(perf_serial, dtype=np.float64)
    compute = (params.fcon + params.fcomp * (1.0 + np.asarray(comp(nc_arr)))) / ps
    communicate = params.fcomm * (1.0 + np.asarray(comm(nc_arr)))
    return compute + communicate


def speedup_symmetric_comm(
    params: AppParams,
    n: int,
    r: "float | np.ndarray",
    comp: CompGrowth = PARALLEL_COMP,
    comm: CommGrowth = MESH_COMM,
    perf: "str | PerfLaw | None" = None,
) -> "float | np.ndarray":
    """Communication-aware symmetric-CMP speedup (Eq 6 serial part plugged
    into the Hill–Marty denominator)."""
    n = check_positive_int(n, "n")
    law = resolve_perf_law(perf)
    arr = np.asarray(r, dtype=np.float64)
    if np.any(arr <= 0) or np.any(arr > n):
        raise ValueError(f"core size r must be in (0, n], got {r!r}")
    pr = np.asarray(law(arr), dtype=np.float64)
    nc = n / arr
    serial = serial_term_comm(params, nc, pr, comp, comm)
    out = 1.0 / (serial + params.f * arr / (pr * n))
    return float(out) if np.asarray(r).ndim == 0 else out


def speedup_asymmetric_comm(
    params: AppParams,
    n: int,
    rl: "float | np.ndarray",
    r: float = 1.0,
    comp: CompGrowth = PARALLEL_COMP,
    comm: CommGrowth = MESH_COMM,
    perf: "str | PerfLaw | None" = None,
) -> "float | np.ndarray":
    """Communication-aware asymmetric-CMP speedup (Eq 7)."""
    n = check_positive_int(n, "n")
    law = resolve_perf_law(perf)
    arr = np.asarray(rl, dtype=np.float64)
    if np.any(arr <= 0) or np.any(arr > n):
        raise ValueError(f"large-core size rl must be in (0, n], got {rl!r}")
    if r <= 0 or r > n:
        raise ValueError(f"small-core size r must be in (0, n], got {r}")
    if np.any(arr < r):
        raise ValueError(f"large core rl must be at least as big as small cores r={r}")
    prl = np.asarray(law(arr), dtype=np.float64)
    pr = float(law(r))
    n_small = (n - arr) / r
    nc = n_small + 1.0
    serial = serial_term_comm(params, nc, prl, comp, comm)
    out = 1.0 / (serial + params.f / (pr * n_small + prl))
    return float(out) if np.asarray(rl).ndim == 0 else out


def sweep_symmetric_comm(
    params: AppParams,
    n: int,
    comp: CompGrowth = PARALLEL_COMP,
    comm: CommGrowth = MESH_COMM,
    perf: "str | PerfLaw | None" = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Fig 7(a)-style sweep over power-of-two core sizes."""
    from repro.core.merging import power_of_two_sizes

    sizes = power_of_two_sizes(n)
    return sizes, np.asarray(speedup_symmetric_comm(params, n, sizes, comp, comm, perf))


def sweep_asymmetric_comm(
    params: AppParams,
    n: int,
    r: float = 1.0,
    comp: CompGrowth = PARALLEL_COMP,
    comm: CommGrowth = MESH_COMM,
    perf: "str | PerfLaw | None" = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Fig 7(b)-style sweep over power-of-two large-core sizes."""
    from repro.core.merging import power_of_two_sizes

    sizes = power_of_two_sizes(n)
    sizes = sizes[sizes >= r]
    return sizes, np.asarray(
        speedup_asymmetric_comm(params, n, sizes, r, comp, comm, perf)
    )
