"""Reduction-overhead growth functions ``grow(nc)``.

The paper's key observation is that the merging (reduction) phase contains a
component whose cost *grows with the number of cores*.  The growth shape
depends on how the reduction is implemented:

* **linear** — the master thread accumulates one partial result per thread
  (MineBench's implementation; Algorithm 1 in the paper): cost ∝ nc.
* **log** — a binary combining tree: cost ∝ log2(nc).
* **parallel** — privatised reduction where each of the nc threads combines
  x/nc elements: the *computation* does not grow at all (x/nc · nc = x);
  only communication grows (handled by :mod:`repro.core.communication`).
* **superlinear** — observed for `hop`, whose merging phase is memory-bound
  and grows faster than linearly (modelled as nc^alpha with alpha > 1).

Conventions (validated against the paper's numeric anchors; see DESIGN.md):
``grow`` takes the total number of cores participating in the reduction,
``nc = n/r`` for symmetric CMPs and ``nc = (n - rl)/r + 1`` for asymmetric
CMPs (the large core participates).  ``grow_linear(nc) = nc`` exactly (not
nc−1), which reproduces Fig 4(c)'s 104.5 peak to three significant digits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.util.validation import check_positive

__all__ = [
    "GrowthFunction",
    "LinearGrowth",
    "LogGrowth",
    "ParallelGrowth",
    "PolynomialGrowth",
    "LINEAR",
    "LOG",
    "PARALLEL",
    "resolve_growth",
]


@dataclass(frozen=True)
class GrowthFunction:
    """A reduction-cost growth law ``grow(nc)``.

    Attributes
    ----------
    name:
        Identifier used in reports ("Linear" / "Log" in the paper's legends).
    fn:
        Vectorised callable mapping participating-core count to the growth
        multiplier applied to the ``fored`` fraction.
    """

    name: str
    fn: Callable[[np.ndarray], np.ndarray]

    def __call__(self, nc: "float | np.ndarray") -> "float | np.ndarray":
        arr = np.asarray(nc, dtype=np.float64)
        if np.any(arr < 1):
            raise ValueError(f"core count nc must be >= 1, got {nc!r}")
        out = self.fn(arr)
        if arr.ndim == 0:
            return float(out)
        return out


def LinearGrowth() -> GrowthFunction:
    """Serial accumulation: the master combines one partial per core.

    ``grow(nc) = nc`` — the overhead fraction is multiplied by the core
    count, matching Algorithm 1 (kmeans merging loop over nthreads).
    """
    return GrowthFunction("Linear", lambda nc: nc)


def LogGrowth() -> GrowthFunction:
    """Tree reduction in ``ceil(log2(nc))`` combining steps.

    ``grow(nc) = log2(nc)`` for nc > 1; defined as 1 at nc = 1 so a
    single-core run charges exactly the measured single-core reduction time
    (the paper normalises all fractions at one core).
    """
    return GrowthFunction("Log", lambda nc: np.maximum(np.log2(nc), 1.0))


def ParallelGrowth() -> GrowthFunction:
    """Privatised parallel reduction: computation does not scale with cores.

    Each of the nc threads reduces x/nc elements, so total computation stays
    x: ``grow(nc) = 1``.  The growing *communication* cost of exchanging the
    privatised partials is modelled separately (Eq 6–8 of the paper).
    """
    return GrowthFunction("Parallel", lambda nc: np.ones_like(np.asarray(nc, dtype=np.float64)))


def PolynomialGrowth(alpha: float) -> GrowthFunction:
    """Power-law growth ``grow(nc) = nc ** alpha``.

    ``alpha = 1`` recovers linear growth; ``alpha > 1`` models the
    superlinear behaviour the paper measured for hop (fored = 155%, i.e. the
    memory-bound merge grows faster than the thread count).
    """
    check_positive(alpha, "alpha")
    a = float(alpha)
    return GrowthFunction(f"Poly({a:g})", lambda nc: np.power(nc, a))


#: Module-level instances for the three canonical shapes.
LINEAR = LinearGrowth()
LOG = LogGrowth()
PARALLEL = ParallelGrowth()

_NAMED: dict[str, GrowthFunction] = {
    "linear": LINEAR,
    "log": LOG,
    "parallel": PARALLEL,
}


def resolve_growth(spec: "str | GrowthFunction | None") -> GrowthFunction:
    """Resolve a growth spec: name, instance, or None (paper default: linear).

    Strings of the form ``"poly:<alpha>"`` build a power-law growth.
    """
    if spec is None:
        return LINEAR
    if isinstance(spec, GrowthFunction):
        return spec
    key = spec.lower()
    if key in _NAMED:
        return _NAMED[key]
    if key.startswith("poly:"):
        return PolynomialGrowth(float(key.split(":", 1)[1]))
    raise ValueError(
        f"unknown growth function {spec!r}; expected one of {sorted(_NAMED)} or 'poly:<alpha>'"
    )
