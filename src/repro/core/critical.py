"""Critical sections combined with merging phases (the paper's future work).

Section VI positions this work as orthogonal to Eyerman & Eeckhout's
critical-section extension of Amdahl's Law [ISCA 2010] and notes the two
"can [be] combined ... to improve accuracy of scalability prediction".
This module provides that combination.

Model.  Of the parallel fraction ``f``, a sub-fraction ``fcs`` executes
inside critical sections guarding shared state.  Two serialization models
are offered:

* ``"bottleneck"`` — the lock is a unit-throughput server: the parallel
  phase cannot finish faster than the total critical-section demand,
  so its duration is ``max(parallel_work / throughput, fcs_work)``.
  This is the asymptotic (worst-case contention) behaviour.
* ``"probabilistic"`` — a thread entering a critical section finds it
  busy with probability ``1 − (1 − fcs/f)^(p−1)`` (some other thread is
  inside); the contended share serializes, the rest parallelises.  This
  tracks the low-contention regime.

Both reduce exactly to the merging-phase model (Eq 4/5) when ``fcs = 0``,
and both inherit the growing reduction cost, so the combined model captures
*two* scalability limiters at once: lock serialization (flat in p) and
merge growth (increasing in p).

Critical sections execute on whichever core holds the lock; on a symmetric
CMP that is a ``perf(r)`` core, on an asymmetric CMP we follow [Suleman
et al., ASPLOS 2009] (ACS) and allow migrating contended critical sections
to the large core via ``accelerate_critical=True``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.growth import GrowthFunction, resolve_growth
from repro.core.params import AppParams
from repro.core.perf import PerfLaw, resolve_perf_law
from repro.util.validation import check_fraction, check_positive_int

__all__ = [
    "CriticalParams",
    "speedup_symmetric_cs",
    "speedup_asymmetric_cs",
    "best_symmetric_cs",
]

_MODES = ("bottleneck", "probabilistic")


@dataclass(frozen=True)
class CriticalParams:
    """An application with both a merging phase and critical sections.

    Parameters
    ----------
    base:
        The Fig 1 decomposition (f, fcon, fored shares).
    fcs_share:
        Fraction of the *parallel* work executed inside critical sections
        (Table II's critical-section column is ≤ 0.004% for the clustering
        apps — effectively zero — but e.g. database or graph workloads sit
        in the percent range).
    """

    base: AppParams
    fcs_share: float

    def __post_init__(self) -> None:
        check_fraction(self.fcs_share, "fcs_share")

    @property
    def fcs(self) -> float:
        """Critical-section work as a fraction of total single-core time."""
        return self.base.f * self.fcs_share

    @property
    def f_ncs(self) -> float:
        """Non-critical parallel fraction."""
        return self.base.f - self.fcs


def _contention(params: CriticalParams, n_threads: np.ndarray, mode: str) -> np.ndarray:
    """Fraction of critical-section work that serializes."""
    if mode == "bottleneck":
        return np.ones_like(n_threads)
    # probabilistic: another thread holds the lock with probability
    # 1 − (1 − cs-density)^(p−1)
    density = params.fcs_share
    return 1.0 - np.power(1.0 - density, np.maximum(n_threads - 1.0, 0.0))


def speedup_symmetric_cs(
    params: CriticalParams,
    n: int,
    r: "float | np.ndarray",
    growth: "str | GrowthFunction | None" = None,
    perf: "str | PerfLaw | None" = None,
    mode: str = "bottleneck",
) -> "float | np.ndarray":
    """Eq 4 extended with critical-section serialization.

    The parallel-phase duration is the larger of the throughput bound
    (all parallel work over aggregate throughput) and the serialization
    bound (contended critical-section work at single-core speed perf(r)).
    """
    if mode not in _MODES:
        raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
    n = check_positive_int(n, "n")
    law = resolve_perf_law(perf)
    g = resolve_growth(growth)
    arr = np.asarray(r, dtype=np.float64)
    if np.any(arr <= 0) or np.any(arr > n):
        raise ValueError(f"core size r must be in (0, n], got {r!r}")
    pr = np.asarray(law(arr), dtype=np.float64)
    nc = n / arr
    base = params.base
    serial = (base.fcon + base.fcred + base.fored * np.asarray(g(nc))) / pr
    throughput_bound = base.f * arr / (pr * n)
    contended = params.fcs * _contention(params, nc, mode)
    parallel_time = np.maximum(throughput_bound, contended / pr)
    out = 1.0 / (serial + parallel_time)
    return float(out) if np.asarray(r).ndim == 0 else out


def speedup_asymmetric_cs(
    params: CriticalParams,
    n: int,
    rl: "float | np.ndarray",
    r: float = 1.0,
    growth: "str | GrowthFunction | None" = None,
    perf: "str | PerfLaw | None" = None,
    mode: str = "bottleneck",
    accelerate_critical: bool = True,
) -> "float | np.ndarray":
    """Eq 5 extended with critical sections.

    With ``accelerate_critical`` (the ACS idea) contended critical sections
    migrate to the large core and run at ``perf(rl)``; otherwise they run
    on the small cores at ``perf(r)``.
    """
    if mode not in _MODES:
        raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
    n = check_positive_int(n, "n")
    law = resolve_perf_law(perf)
    g = resolve_growth(growth)
    arr = np.asarray(rl, dtype=np.float64)
    if np.any(arr <= 0) or np.any(arr > n):
        raise ValueError(f"large-core size rl must be in (0, n], got {rl!r}")
    if r <= 0 or r > n or np.any(arr < r):
        raise ValueError(f"small-core size r must be in (0, min(rl, n)], got {r}")
    prl = np.asarray(law(arr), dtype=np.float64)
    pr = float(law(r))
    n_small = (n - arr) / r
    nc = n_small + 1.0
    base = params.base
    serial = (base.fcon + base.fcred + base.fored * np.asarray(g(nc))) / prl
    throughput_bound = base.f / (pr * n_small + prl)
    cs_speed = prl if accelerate_critical else pr
    contended = params.fcs * _contention(params, nc, mode)
    parallel_time = np.maximum(throughput_bound, contended / cs_speed)
    out = 1.0 / (serial + parallel_time)
    return float(out) if np.asarray(rl).ndim == 0 else out


def best_symmetric_cs(
    params: CriticalParams,
    n: int,
    growth: "str | GrowthFunction | None" = None,
    perf: "str | PerfLaw | None" = None,
    mode: str = "bottleneck",
) -> tuple[float, float]:
    """(r*, speedup*) over the power-of-two grid for the combined model."""
    from repro.core.merging import power_of_two_sizes

    sizes = power_of_two_sizes(n)
    sp = np.asarray(speedup_symmetric_cs(params, n, sizes, growth, perf, mode))
    i = int(np.argmax(sp))
    return float(sizes[i]), float(sp[i])
