"""Inverse questions: requirements on an application, given a target.

The forward models answer "given the application, what does the chip
deliver?"  Architects and library authors often need the inverse:

* how large a merging phase can I *afford* before a target speedup at a
  given core count becomes unreachable? (``max_affordable_overhead``) —
  i.e. the reduction budget a parallel-algorithm author must stay within;
* how many cores is it *worth paying for* given my merge?
  (``worthwhile_cores``) — the count beyond which the next core buys less
  than ``min_gain`` relative speedup.

Both are exact inversions of the measured-form model
(:mod:`repro.core.measured`), solved in closed form where the algebra
allows and by bisection otherwise.
"""

from __future__ import annotations

import numpy as np

from repro.core.params import MeasuredParams
from repro.core import measured as mm
from repro.util.validation import check_fraction, check_positive, check_positive_int

__all__ = ["max_affordable_overhead", "worthwhile_cores", "required_parallel_fraction"]


def max_affordable_overhead(
    f: float,
    fcon_share: float,
    p: int,
    target_speedup: float,
    fred_share: "float | None" = None,
) -> float:
    """The largest ``fored_rel`` that still reaches ``target_speedup`` on
    ``p`` cores (linear growth), or 0 if even a flat merge falls short.

    With ``S(p) = fcon + fcred(1 + o(p−1))`` and speedup = 1/(S(p)+f/p),
    the bound solves exactly::

        o* = (1/target − f/p − s) / (fcred · (p − 1))

    ``fred_share`` defaults to the complement of ``fcon_share``.
    """
    check_fraction(f, "f", inclusive=False)
    check_fraction(fcon_share, "fcon_share")
    check_positive_int(p, "p", minimum=2)
    check_positive(target_speedup, "target_speedup")
    share = (1.0 - fcon_share) if fred_share is None else check_fraction(
        fred_share, "fred_share"
    )
    s = 1.0 - f
    fcred = s * share
    if fcred == 0:
        raise ValueError("application has no reduction (fred_share = 0)")
    slack = 1.0 / target_speedup - f / p - s
    if slack < 0:
        return 0.0
    return slack / (fcred * (p - 1))


def worthwhile_cores(
    params: MeasuredParams, min_gain: float = 0.01, max_cores: int = 65536
) -> int:
    """The last core count at which adding cores still pays.

    Walks the extended-model curve doubling p and returns the largest
    power-of-two ``p`` such that ``speedup(2p)/speedup(p) >= 1 + min_gain``
    still held on the way there — i.e. scaling past the returned count
    gains less than ``min_gain`` per doubling (or loses outright).
    """
    check_positive(min_gain, "min_gain")
    p = 1
    while 2 * p <= max_cores:
        gain = float(mm.speedup_extended(params, 2 * p)) / float(
            mm.speedup_extended(params, p)
        )
        if gain < 1.0 + min_gain:
            break
        p *= 2
    return p


def required_parallel_fraction(
    p: int, target_speedup: float, serial_growth: float = 0.0
) -> float:
    """The parallel fraction needed for ``target_speedup`` on ``p`` cores.

    ``serial_growth`` is the total *extra* serial time at p cores as a
    fraction of single-core time (0 recovers the classic Amdahl
    inversion).  Solves ``1/target = (1 − f) + serial_growth + f/p`` for
    f; raises if the target is unreachable even at f = 1.
    """
    check_positive_int(p, "p", minimum=2)
    check_positive(target_speedup, "target_speedup")
    check_positive(serial_growth, "serial_growth", allow_zero=True)
    lhs = 1.0 / target_speedup - serial_growth
    # 1/target = (1-f) + growth + f/p  =>  f = (1 - lhs) / (1 - 1/p)
    f = (1.0 - lhs) / (1.0 - 1.0 / p)
    if f > 1.0:
        raise ValueError(
            f"target speedup {target_speedup} on {p} cores is unreachable "
            f"even at f = 1 (serial growth {serial_growth})"
        )
    return max(0.0, float(f))
