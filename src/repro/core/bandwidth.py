"""Off-chip memory bandwidth combined with merging phases.

A standard critique of Hill–Marty-style models is that the parallel
section's throughput is bounded not only by aggregate core performance but
by off-chip bandwidth, which is roughly fixed per chip (pin-limited)
regardless of how the area is spent.  This extension adds that wall to the
merging-phase model and asks how it interacts with the paper's
conclusions.

Model.  Let ``beta`` be the application's *bandwidth demand*: the fraction
of single-BCE-core time the parallel section would need if memory traffic
were the only constraint (``beta = bytes_moved / (chip_bandwidth ·
single_core_time)``).  The parallel phase then takes::

    t_par = max( f·r / (perf(r)·n),  f·beta )

— compute-bound on the left, bandwidth-bound on the right.  The serial
term keeps the merging growth of Eq 4.  Note the wall is *flat* in the
core count: once hit, adding cores (or core area) buys nothing, exactly
like a fully-contended critical section.
"""

from __future__ import annotations

import numpy as np

from repro.core.growth import GrowthFunction, resolve_growth
from repro.core.params import AppParams
from repro.core.perf import PerfLaw, resolve_perf_law
from repro.util.validation import check_positive, check_positive_int

__all__ = [
    "speedup_symmetric_bw",
    "best_symmetric_bw",
    "bandwidth_wall_cores",
]


def speedup_symmetric_bw(
    params: AppParams,
    n: int,
    r: "float | np.ndarray",
    beta: float,
    growth: "str | GrowthFunction | None" = None,
    perf: "str | PerfLaw | None" = None,
) -> "float | np.ndarray":
    """Eq 4 with a memory-bandwidth wall at demand ``beta``.

    ``beta = 0`` recovers the plain merging model; ``beta = 1/n`` means
    the bandwidth and compute bounds coincide for 1-BCE cores.
    """
    n = check_positive_int(n, "n")
    check_positive(beta, "beta", allow_zero=True)
    law = resolve_perf_law(perf)
    g = resolve_growth(growth)
    arr = np.asarray(r, dtype=np.float64)
    if np.any(arr <= 0) or np.any(arr > n):
        raise ValueError(f"core size r must be in (0, n], got {r!r}")
    pr = np.asarray(law(arr), dtype=np.float64)
    nc = n / arr
    serial = (params.fcon + params.fcred + params.fored * np.asarray(g(nc))) / pr
    compute_bound = params.f * arr / (pr * n)
    bandwidth_bound = params.f * beta
    out = 1.0 / (serial + np.maximum(compute_bound, bandwidth_bound))
    return float(out) if np.asarray(r).ndim == 0 else out


def best_symmetric_bw(
    params: AppParams,
    n: int,
    beta: float,
    growth: "str | GrowthFunction | None" = None,
    perf: "str | PerfLaw | None" = None,
) -> tuple[float, float]:
    """(r*, speedup*) over the power-of-two grid under a bandwidth wall."""
    from repro.core.merging import power_of_two_sizes

    sizes = power_of_two_sizes(n)
    sp = np.asarray(speedup_symmetric_bw(params, n, sizes, beta, growth, perf))
    i = int(np.argmax(sp))
    return float(sizes[i]), float(sp[i])


def bandwidth_wall_cores(n: int, r: float, beta: float, perf: "str | PerfLaw | None" = None) -> float:
    """The core count at which the compute bound meets the bandwidth wall.

    For ``nc`` cores of ``r`` BCEs the compute bound is
    ``r/(perf(r)·n) = 1/(perf(r)·nc)``; it equals ``beta`` at
    ``nc* = 1/(perf(r)·beta)``.  Scaling beyond ``nc*`` is wasted area
    even before merging costs are considered.  Infinite when beta = 0.
    """
    check_positive(beta, "beta", allow_zero=True)
    if beta == 0.0:
        return float("inf")
    law = resolve_perf_law(perf)
    return 1.0 / (float(law(r)) * beta)
