"""Design-space exploration over CMP/ACMP configurations.

The paper reads optima off its sweep plots; this module makes that a
first-class operation: find the best symmetric and asymmetric designs for an
application, compare architectures, and map how the optimum moves across the
(f, fcon, fored) parameter cube — the quantitative backbone of the paper's
three conclusions (Section VII).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.core import communication as comm_mod
from repro.core import hill_marty, merging
from repro.core.growth import GrowthFunction, resolve_growth
from repro.core.params import AppParams
from repro.core.perf import PerfLaw, resolve_perf_law

__all__ = [
    "DesignComparison",
    "compare_architectures",
    "acmp_advantage",
    "optimal_r_map",
    "optimal_design_grid",
    "pareto_front",
    "best_symmetric_continuous",
]


@dataclass(frozen=True)
class DesignComparison:
    """Best symmetric vs best asymmetric design for one application."""

    params: AppParams
    symmetric: merging.SymmetricDesign
    asymmetric: merging.AsymmetricDesign
    amdahl_symmetric: float
    amdahl_asymmetric: float

    @property
    def acmp_speedup_ratio(self) -> float:
        """Asymmetric-over-symmetric speedup ratio under the extended model."""
        return self.asymmetric.speedup / self.symmetric.speedup

    @property
    def amdahl_speedup_ratio(self) -> float:
        """The same ratio under constant-serial-section Amdahl (Eqs 2–3)."""
        return self.amdahl_asymmetric / self.amdahl_symmetric


def compare_architectures(
    params: AppParams,
    n: int = 256,
    r_choices: Sequence[float] = (1.0, 4.0, 16.0),
    growth: "str | GrowthFunction | None" = None,
    perf: "str | PerfLaw | None" = None,
) -> DesignComparison:
    """Find the best symmetric and asymmetric designs under the extended
    model and under plain Hill–Marty, for side-by-side reporting.

    This is the computation behind the paper's headline comparisons, e.g.
    "ACMPs yield 22.6 vs 36.2 for symmetric, contrary to Amdahl's 162.3 vs
    79.7" (Section V.D.2).
    """
    sym = merging.best_symmetric(params, n, growth, perf)
    asym = merging.best_asymmetric(params, n, tuple(r_choices), growth, perf)
    _, hm_sym = hill_marty.best_symmetric(params.f, n, perf)
    # Amdahl's asymmetric reference uses the same grouped form as Eq 5 but
    # with a constant serial section; maximise over the same (rl, r) grid.
    hm_asym = -np.inf
    for r in r_choices:
        sizes = merging.power_of_two_sizes(n)
        sizes = sizes[sizes >= r]
        sp = np.asarray(
            hill_marty.speedup_asymmetric_grouped(params.f, n, sizes, float(r), perf)
        )
        hm_asym = max(hm_asym, float(sp.max()))
    return DesignComparison(
        params=params,
        symmetric=sym,
        asymmetric=asym,
        amdahl_symmetric=hm_sym,
        amdahl_asymmetric=float(hm_asym),
    )


def acmp_advantage(
    params: AppParams,
    n: int = 256,
    growth: "str | GrowthFunction | None" = None,
    perf: "str | PerfLaw | None" = None,
) -> float:
    """The asymmetric-over-symmetric best-design speedup ratio.

    Values near (or below) 1 are the paper's conclusion (c): reduction
    overhead erases the ACMP advantage.
    """
    return compare_architectures(params, n, growth=growth, perf=perf).acmp_speedup_ratio


def optimal_r_map(
    f: float,
    n: int,
    fcon_shares: Iterable[float],
    fored_shares: Iterable[float],
    growth: "str | GrowthFunction | None" = None,
    perf: "str | PerfLaw | None" = None,
) -> np.ndarray:
    """Matrix of optimal symmetric core sizes over a (fcon, fored) grid.

    Rows follow ``fcon_shares``, columns follow ``fored_shares``.  The
    paper's conclusion (b) — "a shift towards fewer and more capable cores" —
    appears as the optimal r growing along the fored axis.
    """
    cons = list(fcon_shares)
    ores = list(fored_shares)
    out = np.empty((len(cons), len(ores)), dtype=np.float64)
    for i, c in enumerate(cons):
        for j, o in enumerate(ores):
            p = AppParams(f=f, fcon_share=c, fored_share=o)
            out[i, j] = merging.best_symmetric(p, n, growth, perf).r
    return out


@dataclass(frozen=True)
class GridPoint:
    """One evaluated design point of :func:`optimal_design_grid`."""

    architecture: str  # "sym" | "asym"
    r: float
    rl: float  # 0 for symmetric designs
    speedup: float
    cores: float


def optimal_design_grid(
    params: AppParams,
    n: int = 256,
    r_choices: Sequence[float] = (1.0, 2.0, 4.0, 8.0, 16.0),
    growth: "str | GrowthFunction | None" = None,
    perf: "str | PerfLaw | None" = None,
    include_comm: bool = False,
) -> list[GridPoint]:
    """Enumerate every design point on the paper's grids, sorted by speedup
    (best first).  With ``include_comm`` the communication-aware model
    (Eqs 6–7, parallel reduction on a mesh) is used instead of Eqs 4–5.
    """
    g = resolve_growth(growth)
    law = resolve_perf_law(perf)
    points: list[GridPoint] = []
    sizes = merging.power_of_two_sizes(n)
    if include_comm:
        sym_speedups = np.asarray(
            comm_mod.speedup_symmetric_comm(params, n, sizes, perf=law)
        )
    else:
        sym_speedups = np.asarray(merging.speedup_symmetric(params, n, sizes, g, law))
    for r, sp in zip(sizes, sym_speedups):
        points.append(GridPoint("sym", float(r), 0.0, float(sp), n / float(r)))
    for r in r_choices:
        rl_grid = sizes[sizes >= r]
        if include_comm:
            sp_arr = np.asarray(
                comm_mod.speedup_asymmetric_comm(params, n, rl_grid, float(r), perf=law)
            )
        else:
            sp_arr = np.asarray(
                merging.speedup_asymmetric(params, n, rl_grid, float(r), g, law)
            )
        for rl, sp in zip(rl_grid, sp_arr):
            cores = (n - float(rl)) / float(r) + 1.0
            points.append(GridPoint("asym", float(r), float(rl), float(sp), cores))
    points.sort(key=lambda pt: pt.speedup, reverse=True)
    return points


def best_symmetric_continuous(
    params: AppParams,
    n: int = 256,
    growth: "str | GrowthFunction | None" = None,
    perf: "str | PerfLaw | None" = None,
) -> merging.SymmetricDesign:
    """The speedup-maximising symmetric design over *continuous* core
    sizes (the model is smooth in r; the paper samples powers of two).

    Optimises over ``log2 r`` with scipy's bounded scalar minimiser, then
    polishes against the grid optimum, so the result is never worse than
    :func:`repro.core.merging.best_symmetric`.
    """
    from scipy.optimize import minimize_scalar

    g = resolve_growth(growth)
    law = resolve_perf_law(perf)

    def negative_speedup(log2_r: float) -> float:
        r = float(2.0**log2_r)
        return -float(merging.speedup_symmetric(params, n, r, g, law))

    result = minimize_scalar(
        negative_speedup, bounds=(0.0, np.log2(n)), method="bounded",
        options={"xatol": 1e-6},
    )
    r_cont = float(2.0 ** float(result.x))
    sp_cont = -float(result.fun)
    grid_best = merging.best_symmetric(params, n, g, law)
    if grid_best.speedup > sp_cont:
        return grid_best
    return merging.SymmetricDesign(r=r_cont, speedup=sp_cont, n=n)


def pareto_front(points: Sequence[GridPoint]) -> list[GridPoint]:
    """The speedup-vs-core-count Pareto front of a design grid.

    A point is kept if no other point has both more cores and higher
    speedup — the trade-off the paper describes between "accommodating fewer
    but larger cores" and "applications that have potential for effectively
    using large number of cores" (Section V.D.1).
    """
    front: list[GridPoint] = []
    for p in sorted(points, key=lambda q: (-q.cores, -q.speedup)):
        if not front or p.speedup > front[-1].speedup:
            front.append(p)
    return front
