"""Chip design for workload mixes.

Real chips are not built for one application; an architect optimises a
design for a *portfolio* of applications with different merging-phase
profiles.  This module evaluates symmetric designs against a weighted mix
and locates the compromise optimum.

Aggregation uses the weighted harmonic mean of speedups — the natural
metric when the weights are the fractions of machine time each
application occupies (total time is the weighted sum of per-app times, so
mix speedup = 1 / Σ wᵢ/speedupᵢ).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core import merging
from repro.core.growth import GrowthFunction
from repro.core.params import AppParams
from repro.core.perf import PerfLaw

__all__ = ["WorkloadMix", "mix_speedup", "best_symmetric_for_mix"]


@dataclass(frozen=True)
class WorkloadMix:
    """A weighted set of applications.

    Weights are each application's share of machine time on the baseline
    core; they must be positive and are normalised on construction
    queries.
    """

    apps: tuple[AppParams, ...]
    weights: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.apps:
            raise ValueError("a mix needs at least one application")
        if len(self.apps) != len(self.weights):
            raise ValueError(
                f"{len(self.apps)} apps but {len(self.weights)} weights"
            )
        if any(w <= 0 for w in self.weights):
            raise ValueError("weights must be positive")

    @property
    def normalised_weights(self) -> np.ndarray:
        w = np.asarray(self.weights, dtype=np.float64)
        return w / w.sum()

    @staticmethod
    def uniform(apps: Sequence[AppParams]) -> "WorkloadMix":
        """Equal-time mix of the given applications."""
        return WorkloadMix(apps=tuple(apps), weights=tuple(1.0 for _ in apps))


def mix_speedup(
    mix: WorkloadMix,
    n: int,
    r: "float | np.ndarray",
    growth: "str | GrowthFunction | None" = None,
    perf: "str | PerfLaw | None" = None,
) -> "float | np.ndarray":
    """Weighted-harmonic-mean speedup of a symmetric design on the mix."""
    arr = np.atleast_1d(np.asarray(r, dtype=np.float64))
    weights = mix.normalised_weights
    inv = np.zeros_like(arr)
    for app, w in zip(mix.apps, weights):
        sp = np.asarray(merging.speedup_symmetric(app, n, arr, growth, perf))
        inv += w / sp
    out = 1.0 / inv
    return float(out[0]) if np.asarray(r).ndim == 0 else out


def best_symmetric_for_mix(
    mix: WorkloadMix,
    n: int = 256,
    growth: "str | GrowthFunction | None" = None,
    perf: "str | PerfLaw | None" = None,
) -> merging.SymmetricDesign:
    """The mix-optimal symmetric design over the power-of-two grid.

    The compromise sits between the per-app optima: it is never better
    for any single app than that app's own optimum, but dominates any
    single-app design on the mix metric.
    """
    sizes = merging.power_of_two_sizes(n)
    sp = np.asarray(mix_speedup(mix, n, sizes, growth, perf))
    i = int(np.argmax(sp))
    return merging.SymmetricDesign(r=float(sizes[i]), speedup=float(sp[i]), n=n)
