"""Measured-form serial-section growth model (Figs 2(b), 2(d) and 3).

Table II characterises each application by how its *measured* serial time
changes with core count: ``fored_rel`` is the relative increase of reduction
time over the single-core reduction time ``fcred`` per added core.  The
serial time on ``p`` cores, expressed as a fraction of single-core total
execution time, is::

    S(p) = fcon + fcred · (1 + fored_rel · (p - 1)^alpha)

with ``alpha = 1`` for the linear growth observed in kmeans and fuzzy, and
``alpha > 1`` for hop's superlinear, memory-bound merge.  ``S(1)`` equals
the measured single-core serial fraction ``s``, which is how the paper
normalises Fig 2(b)/(c).

The scalability predictions of Fig 3 plug ``S(p)`` into Amdahl's framework
(both models assume the parallel section scales linearly with cores)::

    speedup_extended(p) = 1 / (S(p) + f / p)
    speedup_amdahl(p)   = 1 / (s    + f / p)
"""

from __future__ import annotations

import numpy as np

from repro.core.params import MeasuredParams

__all__ = [
    "serial_time",
    "serial_time_normalised",
    "speedup_amdahl",
    "speedup_extended",
    "peak_core_count",
]


def _as_core_array(p: "float | np.ndarray") -> np.ndarray:
    arr = np.asarray(p, dtype=np.float64)
    if np.any(arr < 1):
        raise ValueError(f"core count p must be >= 1, got {p!r}")
    return arr


def serial_time(params: MeasuredParams, p: "float | np.ndarray") -> "float | np.ndarray":
    """Serial-section time on ``p`` cores as a fraction of single-core total
    execution time.

    ``serial_time(params, 1)`` equals the measured serial fraction ``s``.
    """
    arr = _as_core_array(p)
    grown = params.fored_rel * np.power(arr - 1.0, params.growth_alpha)
    out = params.fcon + params.fcred * (1.0 + grown)
    return float(out) if np.asarray(p).ndim == 0 else out


def serial_time_normalised(
    params: MeasuredParams, p: "float | np.ndarray"
) -> "float | np.ndarray":
    """Serial time normalised to the single-core serial time (Fig 2(b)/(c)).

    Value 1.0 at p = 1 by construction; a constant serial section (Amdahl's
    assumption) would stay at 1.0 for all p.
    """
    arr = _as_core_array(p)
    out = np.asarray(serial_time(params, arr)) / params.s
    return float(out) if np.asarray(p).ndim == 0 else out


def speedup_amdahl(params: MeasuredParams, p: "float | np.ndarray") -> "float | np.ndarray":
    """The constant-serial-section prediction (Fig 3's 'Amdahl' curves)."""
    arr = _as_core_array(p)
    out = 1.0 / (params.s + params.f / arr)
    return float(out) if np.asarray(p).ndim == 0 else out


def speedup_extended(
    params: MeasuredParams, p: "float | np.ndarray"
) -> "float | np.ndarray":
    """The growing-serial-section prediction (Fig 3's 'with overhead' curves).

    Both curves share the assumption that the parallel section scales
    linearly; only the serial-section treatment differs.
    """
    arr = _as_core_array(p)
    out = 1.0 / (np.asarray(serial_time(params, arr)) + params.f / arr)
    return float(out) if np.asarray(p).ndim == 0 else out


def peak_core_count(params: MeasuredParams, max_cores: int = 4096) -> tuple[int, float]:
    """The core count at which the extended prediction peaks.

    Under linear growth the optimum has a closed form
    (``p* = sqrt(f / (fcred·fored_rel))``), but we locate it on the integer
    grid so superlinear growth is handled uniformly.

    Returns
    -------
    (p_star, speedup_star)
    """
    cores = np.arange(1, max_cores + 1, dtype=np.float64)
    sp = np.asarray(speedup_extended(params, cores))
    i = int(np.argmax(sp))
    return int(cores[i]), float(sp[i])
