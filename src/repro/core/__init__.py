"""The paper's analytical models: Amdahl, Hill–Marty, and the merging-phase
extensions (Eqs 1–8 of the paper).

Quick tour
----------
>>> from repro.core import AppParams, merging
>>> p = AppParams(f=0.999, fcon_share=0.60, fored_share=0.10)
>>> round(float(merging.speedup_symmetric(p, n=256, r=4)), 1)  # paper: 104.5
104.6
"""

from repro.core import (
    accuracy,
    amdahl,
    bandwidth,
    classes,
    communication,
    critical,
    energy,
    fitting,
    gridkernels,
    growth,
    hill_marty,
    measured,
    merging,
    mix,
    optimizer,
    params,
    perf,
    requirements,
    scaled,
    sensitivity,
    uncore,
)
from repro.core.classes import TABLE3_CLASSES, AppClass
from repro.core.growth import LINEAR, LOG, PARALLEL, GrowthFunction, resolve_growth
from repro.core.params import TABLE2, TABLE4, AppParams, MeasuredParams
from repro.core.perf import SQRT_PERF, PerfLaw, resolve_perf_law

__all__ = [
    # submodules
    "accuracy",
    "amdahl",
    "bandwidth",
    "classes",
    "communication",
    "critical",
    "energy",
    "fitting",
    "gridkernels",
    "growth",
    "hill_marty",
    "measured",
    "merging",
    "mix",
    "optimizer",
    "params",
    "perf",
    "requirements",
    "scaled",
    "sensitivity",
    "uncore",
    # common types/constants
    "AppParams",
    "MeasuredParams",
    "AppClass",
    "TABLE2",
    "TABLE3_CLASSES",
    "TABLE4",
    "GrowthFunction",
    "PerfLaw",
    "LINEAR",
    "LOG",
    "PARALLEL",
    "SQRT_PERF",
    "resolve_growth",
    "resolve_perf_law",
]
