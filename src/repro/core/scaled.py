"""Scaled (Gustafson) speedup with merging phases.

Amdahl's Law fixes the problem size; Gustafson's Law grows it with the
machine, which is exactly what Table IV's point-scaling experiment does:
doubling the points doubles the *parallel* work while the merge size
(C·D elements) stays put.  This module asks the Gustafson-side question
the paper leaves implicit: does weak scaling rescue reduction-heavy
applications?

Model.  At ``p`` cores each core keeps its single-core share of parallel
work (per-core time ``f``), the constant serial parts stay ``fcon + fcred``
and the growing merge costs ``fored · grow(p)`` — merge growth depends on
the *core count*, not the data size (Table IV's finding).  Then::

    scaled_speedup(p) = work_done(p) / time(p)
                      = (s + f·p) / (s_grown(p) + f)

With a linear merge, ``s_grown(p) ≈ fored·p``: numerator and denominator
both grow linearly, so scaled speedup *saturates* at ``f / fored`` instead
of growing without bound as classic Gustafson predicts — weak scaling
postpones the wall but does not remove it.
"""

from __future__ import annotations

import numpy as np

from repro.core.growth import GrowthFunction, resolve_growth
from repro.core.params import AppParams

__all__ = [
    "scaled_speedup_gustafson",
    "scaled_speedup_merging",
    "scaled_speedup_limit",
]


def _as_core_array(p: "float | np.ndarray") -> np.ndarray:
    arr = np.asarray(p, dtype=np.float64)
    if np.any(arr < 1):
        raise ValueError(f"core count p must be >= 1, got {p!r}")
    return arr


def scaled_speedup_gustafson(f: float, p: "float | np.ndarray") -> "float | np.ndarray":
    """Classic Gustafson–Barsis scaled speedup ``s + f·p`` (s = 1 − f)."""
    if not (0.0 <= f <= 1.0):
        raise ValueError(f"f must be in [0, 1], got {f}")
    arr = _as_core_array(p)
    out = (1.0 - f) + f * arr
    return float(out) if np.asarray(p).ndim == 0 else out


def scaled_speedup_merging(
    params: AppParams,
    p: "float | np.ndarray",
    growth: "str | GrowthFunction | None" = None,
) -> "float | np.ndarray":
    """Gustafson speedup with a core-count-dependent merging phase.

    Work scales with p (each core keeps its parallel share); the serial
    time grows as ``fcon + fcred + fored·grow(p)``.
    """
    g = resolve_growth(growth)
    arr = _as_core_array(p)
    work = params.serial + params.f * arr
    time = params.fcon + params.fcred + params.fored * np.asarray(g(arr)) + params.f
    out = work / time
    return float(out) if np.asarray(p).ndim == 0 else out


def scaled_speedup_limit(params: AppParams) -> float:
    """Asymptotic scaled speedup under linear merge growth: ``f / fored``.

    Infinite when fored = 0 (classic Gustafson's unbounded weak scaling).
    """
    if params.fored == 0.0:
        return float("inf")
    return params.f / params.fored
