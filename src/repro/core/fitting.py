"""Fitting model parameters to measured speedup curves.

:mod:`repro.workloads.instrument` extracts parameters from *phase-level*
timings, which need an instrumented run.  Often all a user has is a
speedup-vs-cores curve from an uninstrumented application; this module
recovers the extended model's parameters from exactly that:

    speedup(p) = 1 / ( a + b·(p−1)^alpha + f/p ),   f = 1 − a

where ``a`` is the single-core serial fraction (fcon + fcred) and ``b``
the growing merge cost per (p−1)^alpha.  The decomposition of ``a`` into
fcon vs fcred is *not identifiable* from a speedup curve alone (both are
constants at p = 1); :func:`to_measured_params` therefore takes an assumed
reduction share when a full Table II-style record is needed.

Fitting is nonlinear least squares on *log speedup* (scipy), which weights
small and large speedups evenly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy.optimize import least_squares

from repro.core.params import MeasuredParams
from repro.util.validation import check_fraction, ensure_array

__all__ = ["SerialGrowthFit", "fit_amdahl", "fit_serial_growth", "to_measured_params"]


@dataclass(frozen=True)
class SerialGrowthFit:
    """Result of fitting the extended model to a speedup curve.

    ``serial`` is the single-core serial fraction, ``slope`` the growth
    coefficient (absolute fraction per (p−1)^alpha), ``alpha`` the growth
    exponent, ``residual`` the RMS of log-speedup errors.
    """

    serial: float
    slope: float
    alpha: float
    residual: float

    @property
    def f(self) -> float:
        """Fitted parallel fraction."""
        return 1.0 - self.serial

    def serial_time(self, p: "float | np.ndarray") -> "float | np.ndarray":
        """Fitted serial time S(p) as a fraction of single-core time."""
        arr = np.asarray(p, dtype=np.float64)
        out = self.serial + self.slope * np.power(np.maximum(arr - 1.0, 0.0), self.alpha)
        return float(out) if np.asarray(p).ndim == 0 else out

    def predict(self, p: "float | np.ndarray") -> "float | np.ndarray":
        """Fitted speedup at ``p`` cores."""
        arr = np.asarray(p, dtype=np.float64)
        out = 1.0 / (np.asarray(self.serial_time(arr)) + self.f / arr)
        return float(out) if np.asarray(p).ndim == 0 else out

    def peak(self, max_cores: int = 65536) -> tuple[int, float]:
        """Core count and value of the fitted curve's maximum."""
        cores = np.arange(1, max_cores + 1, dtype=np.float64)
        sp = np.asarray(self.predict(cores))
        i = int(np.argmax(sp))
        return int(cores[i]), float(sp[i])


def _validate_curve(cores: Sequence[float], speedups: Sequence[float]) -> tuple[np.ndarray, np.ndarray]:
    p = ensure_array(cores, "cores")
    s = ensure_array(speedups, "speedups")
    if p.shape != s.shape:
        raise ValueError(f"cores {p.shape} and speedups {s.shape} differ in length")
    if p.size < 3:
        raise ValueError("need at least three measurement points")
    if np.any(p < 1) or np.any(s <= 0):
        raise ValueError("cores must be >= 1 and speedups > 0")
    order = np.argsort(p)
    return p[order], s[order]


def fit_amdahl(cores: Sequence[float], speedups: Sequence[float]) -> float:
    """Least-squares Amdahl fit: the serial fraction ``s`` minimising the
    residual of ``1/speedup = s·(1 − 1/p) + 1/p`` (linear in s)."""
    p, sp = _validate_curve(cores, speedups)
    x = 1.0 - 1.0 / p
    y = 1.0 / sp - 1.0 / p
    denom = float(np.dot(x, x))
    if denom == 0:
        raise ValueError("curve has no multi-core points")
    return float(np.clip(np.dot(x, y) / denom, 0.0, 1.0))


def fit_serial_growth(
    cores: Sequence[float],
    speedups: Sequence[float],
    fix_alpha: "float | None" = None,
) -> SerialGrowthFit:
    """Fit the extended model to a speedup curve.

    Parameters
    ----------
    cores / speedups:
        The measured curve (>= 3 points; more points sharpen alpha).
    fix_alpha:
        Pin the growth exponent (1.0 = linear) instead of fitting it —
        recommended with fewer than five points.
    """
    p, sp = _validate_curve(cores, speedups)
    log_measured = np.log(sp)
    s0 = max(1e-6, fit_amdahl(p, sp))

    def model(theta: np.ndarray) -> np.ndarray:
        a, b, alpha = theta
        if fix_alpha is not None:
            alpha = fix_alpha
        st = a + b * np.power(np.maximum(p - 1.0, 0.0), alpha)
        return np.log(1.0 / (st + (1.0 - a) / p)) - log_measured

    theta0 = np.array([s0, s0 / 4 + 1e-9, 1.0])
    bounds = (
        np.array([1e-12, 0.0, 0.25]),
        np.array([0.5, 0.5, 3.0]),
    )
    result = least_squares(model, theta0, bounds=bounds)
    a, b, alpha = result.x
    if fix_alpha is not None:
        alpha = fix_alpha
    residual = float(np.sqrt(np.mean(result.fun**2)))
    return SerialGrowthFit(
        serial=float(a), slope=float(b), alpha=float(alpha), residual=residual
    )


def to_measured_params(
    fit: SerialGrowthFit, fred_share: float, name: str = "fitted"
) -> MeasuredParams:
    """Convert a speedup-curve fit into a Table II-style record.

    ``fred_share`` (the reduction's share of single-core serial time) is
    not identifiable from the curve and must be supplied — e.g. from one
    instrumented run or from the Table II values of a similar application.
    """
    check_fraction(fred_share, "fred_share", inclusive=False)
    fcred = fit.serial * fred_share
    return MeasuredParams(
        name=name,
        serial_pct=100.0 * fit.serial,
        critical_pct=0.0,
        fored_rel=fit.slope / fcred if fcred > 0 else 0.0,
        fred_share=fred_share,
        fcon_share=1.0 - fred_share,
        growth_alpha=fit.alpha,
    )
