"""Vectorized array kernels for Eqs 1–8 over whole parameter grids.

The scalar model stack (:mod:`repro.core.amdahl`, :mod:`~repro.core.hill_marty`,
:mod:`~repro.core.merging`, :mod:`~repro.core.communication`) evaluates one
:class:`~repro.core.params.AppParams` at a time — a design-space sweep such as
the conclusions experiment's 48-point grid resolves 48 separate calls, each
of which re-runs every power-of-two optimisation from scratch.  This module
re-expresses the same equations as numpy kernels over *raw broadcastable
arrays* of ``(f, fcon_share, fored_share, r, rl)``, so a full Fig-4/Fig-5
design-space sweep — or the whole conclusions grid — is one vectorized call.

Contract with the scalar stack (enforced by ``tests/differential/`` and the
grid-vs-scalar cases in ``tests/core/test_model_reductions.py``):

* **bit-identity** — every kernel performs the *same float64 operations in
  the same order* as its scalar counterpart, so results agree exactly (not
  merely to tolerance).  The byte-exact golden reports (``tests/golden``)
  depend on this: fig4/fig5 now assemble from grid payloads.
* **edge shapes** — kernels accept any broadcastable shapes, including
  singleton axes and empty grids (a size-0 axis yields a size-0 result).
* **f = 1.0** — unlike :class:`~repro.core.params.AppParams` (which forbids
  a zero serial fraction), the raw-array kernels accept ``f == 1.0``; the
  serial term is simply 0.

Design-space reducers (:func:`best_symmetric_grid`, :func:`best_asymmetric_grid`,
:func:`conclusions_grid`) mirror the scalar optimisers' grids and tie-breaking
exactly: ``np.argmax`` picks the first maximum just as the scalar loop does,
and the asymmetric small-core choice keeps the *earliest* ``r`` on ties
(strict ``>`` update, like :func:`repro.core.merging.best_asymmetric`).
"""

from __future__ import annotations

import numpy as np

from repro.core.communication import (
    MESH_COMM,
    PARALLEL_COMP,
    CommGrowth,
    CompGrowth,
    mesh_growcomm,
)
from repro.core.growth import GrowthFunction, resolve_growth
from repro.core.merging import power_of_two_sizes
from repro.core.perf import PerfLaw, resolve_perf_law
from repro.util.validation import check_positive_int

__all__ = [
    "split_serial",
    "amdahl_speedup",
    "hm_symmetric",
    "hm_asymmetric",
    "hm_asymmetric_grouped",
    "merging_symmetric",
    "merging_asymmetric",
    "comm_symmetric",
    "comm_asymmetric",
    "mesh_growcomm",
    "best_symmetric_grid",
    "best_asymmetric_grid",
    "hm_best_symmetric_grid",
    "hm_best_asymmetric_grouped_grid",
    "conclusions_grid",
]


def _as_f64(value, name: str, lo: "float | None" = None,
            hi: "float | None" = None) -> np.ndarray:
    """Coerce to float64, range-checking elementwise (empty arrays pass)."""
    arr = np.asarray(value, dtype=np.float64)
    if lo is not None and np.any(arr < lo):
        raise ValueError(f"{name} must be >= {lo}, got {value!r}")
    if hi is not None and np.any(arr > hi):
        raise ValueError(f"{name} must be <= {hi}, got {value!r}")
    return arr


def split_serial(
    f: "float | np.ndarray",
    fcon_share: "float | np.ndarray",
    fored_share: "float | np.ndarray",
) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
    """The Fig-1 serial-fraction decomposition as arrays.

    Returns ``(fcon, fcred, fored)`` — the absolute constant, constant-
    reduction and growing-reduction fractions — computed with the exact
    operation sequence of :class:`~repro.core.params.AppParams`'s derived
    properties, so values are bit-identical to the scalar path.
    """
    f = _as_f64(f, "f", 0.0, 1.0)
    con = _as_f64(fcon_share, "fcon_share", 0.0, 1.0)
    ored = _as_f64(fored_share, "fored_share", 0.0, 1.0)
    serial = 1.0 - f
    fcon = serial * con
    fred = serial * (1.0 - con)
    fored = fred * ored
    fcred = fred * (1.0 - ored)
    return fcon, fcred, fored


# ── Eq 1: Amdahl ─────────────────────────────────────────────────────────


def amdahl_speedup(
    f: "float | np.ndarray", p: "float | np.ndarray"
) -> np.ndarray:
    """Eq 1 over a broadcastable ``(f, p)`` grid."""
    f = _as_f64(f, "f", 0.0, 1.0)
    p = _as_f64(p, "p", 1.0)
    return 1.0 / ((1.0 - f) + f / p)


# ── Eqs 2–3: Hill–Marty ──────────────────────────────────────────────────


def hm_symmetric(
    f: "float | np.ndarray",
    n: int,
    r: "float | np.ndarray",
    perf: "str | PerfLaw | None" = None,
) -> np.ndarray:
    """Eq 2 over a broadcastable ``(f, r)`` grid."""
    n = check_positive_int(n, "n")
    law = resolve_perf_law(perf)
    f = _as_f64(f, "f", 0.0, 1.0)
    arr = _as_f64(r, "r", hi=n)
    if np.any(arr <= 0):
        raise ValueError(f"core size r must be > 0, got {r!r}")
    pr = np.asarray(law.fn(arr), dtype=np.float64)
    return 1.0 / ((1.0 - f) / pr + f * arr / (pr * n))


def hm_asymmetric(
    f: "float | np.ndarray",
    n: int,
    rl: "float | np.ndarray",
    perf: "str | PerfLaw | None" = None,
) -> np.ndarray:
    """Eq 3 over a broadcastable ``(f, rl)`` grid."""
    n = check_positive_int(n, "n")
    law = resolve_perf_law(perf)
    f = _as_f64(f, "f", 0.0, 1.0)
    arr = _as_f64(rl, "rl", hi=n)
    if np.any(arr <= 0):
        raise ValueError(f"large-core size rl must be > 0, got {rl!r}")
    prl = np.asarray(law.fn(arr), dtype=np.float64)
    return 1.0 / ((1.0 - f) / prl + f / (prl + n - arr))


def hm_asymmetric_grouped(
    f: "float | np.ndarray",
    n: int,
    rl: "float | np.ndarray",
    r: "float | np.ndarray" = 1.0,
    perf: "str | PerfLaw | None" = None,
) -> np.ndarray:
    """The grouped Eq 3 variant (Fig 5's Amdahl curves) over a grid."""
    n = check_positive_int(n, "n")
    law = resolve_perf_law(perf)
    f = _as_f64(f, "f", 0.0, 1.0)
    arr = _as_f64(rl, "rl", hi=n)
    rsm = _as_f64(r, "r", hi=n)
    if np.any(arr <= 0) or np.any(rsm <= 0):
        raise ValueError("core sizes must be > 0")
    prl = np.asarray(law.fn(arr), dtype=np.float64)
    pr = np.asarray(law.fn(rsm), dtype=np.float64)
    parallel_throughput = pr * (n - arr) / rsm + prl
    return 1.0 / ((1.0 - f) / prl + f / parallel_throughput)


# ── Eqs 4–5: merging-phase extended model ────────────────────────────────


def merging_symmetric(
    f: "float | np.ndarray",
    fcon_share: "float | np.ndarray",
    fored_share: "float | np.ndarray",
    n: int,
    r: "float | np.ndarray",
    growth: "str | GrowthFunction | None" = None,
    perf: "str | PerfLaw | None" = None,
) -> np.ndarray:
    """Eq 4 over a broadcastable ``(f, fcon_share, fored_share, r)`` grid."""
    n = check_positive_int(n, "n")
    g = resolve_growth(growth)
    law = resolve_perf_law(perf)
    arr = _as_f64(r, "r", hi=n)
    if np.any(arr <= 0):
        raise ValueError(f"core size r must be > 0, got {r!r}")
    fcon, fcred, fored = split_serial(f, fcon_share, fored_share)
    f = np.asarray(f, dtype=np.float64)
    nc = n / arr
    pr = np.asarray(law.fn(arr), dtype=np.float64)
    serial = fcon + fcred + fored * np.asarray(g.fn(nc), dtype=np.float64)
    return 1.0 / (serial / pr + f * arr / (pr * n))


def merging_asymmetric(
    f: "float | np.ndarray",
    fcon_share: "float | np.ndarray",
    fored_share: "float | np.ndarray",
    n: int,
    rl: "float | np.ndarray",
    r: "float | np.ndarray" = 1.0,
    growth: "str | GrowthFunction | None" = None,
    perf: "str | PerfLaw | None" = None,
) -> np.ndarray:
    """Eq 5 over a broadcastable ``(f, fcon_share, fored_share, rl, r)`` grid.

    Unlike the scalar path, ``rl < r`` points are *computed*, not rejected —
    reducers mask them out (see :func:`best_asymmetric_grid`), which lets a
    whole rectangular ``(rl, r)`` grid evaluate in one call.
    """
    n = check_positive_int(n, "n")
    g = resolve_growth(growth)
    law = resolve_perf_law(perf)
    arr = _as_f64(rl, "rl", hi=n)
    rsm = _as_f64(r, "r", hi=n)
    if np.any(arr <= 0) or np.any(rsm <= 0):
        raise ValueError("core sizes must be > 0")
    fcon, fcred, fored = split_serial(f, fcon_share, fored_share)
    f = np.asarray(f, dtype=np.float64)
    prl = np.asarray(law.fn(arr), dtype=np.float64)
    pr = np.asarray(law.fn(rsm), dtype=np.float64)
    n_small = (n - arr) / rsm
    nc = n_small + 1.0
    serial = fcon + fcred + fored * np.asarray(g.fn(nc), dtype=np.float64)
    parallel_throughput = pr * n_small + prl
    return 1.0 / (serial / prl + f / parallel_throughput)


# ── Eqs 6–8: communication-aware model ───────────────────────────────────


def _comm_serial(
    fcon: np.ndarray,
    fred: np.ndarray,
    nc: np.ndarray,
    perf_serial: np.ndarray,
    comp: CompGrowth,
    comm: CommGrowth,
) -> np.ndarray:
    """Common serial body of Eqs 6–7 (mirrors ``serial_term_comm``)."""
    fcomp = fred / 2.0
    fcomm = fred / 2.0
    compute = (fcon + fcomp * (1.0 + np.asarray(comp.fn(nc)))) / perf_serial
    communicate = fcomm * (1.0 + np.asarray(comm.fn(nc)))
    return compute + communicate


def comm_symmetric(
    f: "float | np.ndarray",
    fcon_share: "float | np.ndarray",
    n: int,
    r: "float | np.ndarray",
    comp: CompGrowth = PARALLEL_COMP,
    comm: CommGrowth = MESH_COMM,
    perf: "str | PerfLaw | None" = None,
) -> np.ndarray:
    """Eq 6 over a broadcastable ``(f, fcon_share, r)`` grid (the reduction
    split fcomp == fcomm == fred/2 is the paper's premise, so ``fored_share``
    does not enter)."""
    n = check_positive_int(n, "n")
    law = resolve_perf_law(perf)
    f = _as_f64(f, "f", 0.0, 1.0)
    con = _as_f64(fcon_share, "fcon_share", 0.0, 1.0)
    arr = _as_f64(r, "r", hi=n)
    if np.any(arr <= 0):
        raise ValueError(f"core size r must be > 0, got {r!r}")
    serial_frac = 1.0 - f
    fcon = serial_frac * con
    fred = serial_frac * (1.0 - con)
    pr = np.asarray(law.fn(arr), dtype=np.float64)
    nc = n / arr
    serial = _comm_serial(fcon, fred, nc, pr, comp, comm)
    return 1.0 / (serial + f * arr / (pr * n))


def comm_asymmetric(
    f: "float | np.ndarray",
    fcon_share: "float | np.ndarray",
    n: int,
    rl: "float | np.ndarray",
    r: "float | np.ndarray" = 1.0,
    comp: CompGrowth = PARALLEL_COMP,
    comm: CommGrowth = MESH_COMM,
    perf: "str | PerfLaw | None" = None,
) -> np.ndarray:
    """Eq 7 over a broadcastable ``(f, fcon_share, rl, r)`` grid."""
    n = check_positive_int(n, "n")
    law = resolve_perf_law(perf)
    f = _as_f64(f, "f", 0.0, 1.0)
    con = _as_f64(fcon_share, "fcon_share", 0.0, 1.0)
    arr = _as_f64(rl, "rl", hi=n)
    rsm = _as_f64(r, "r", hi=n)
    if np.any(arr <= 0) or np.any(rsm <= 0):
        raise ValueError("core sizes must be > 0")
    serial_frac = 1.0 - f
    fcon = serial_frac * con
    fred = serial_frac * (1.0 - con)
    prl = np.asarray(law.fn(arr), dtype=np.float64)
    pr = np.asarray(law.fn(rsm), dtype=np.float64)
    n_small = (n - arr) / rsm
    nc = n_small + 1.0
    serial = _comm_serial(fcon, fred, nc, prl, comp, comm)
    return 1.0 / (serial + f / (pr * n_small + prl))


# ── design-space reducers over the power-of-two grids ────────────────────


def _take_best(sp: np.ndarray, sizes: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
    """First-maximum argmax along the trailing (sizes) axis."""
    i = np.argmax(sp, axis=-1)
    best_size = sizes[i]
    best_sp = np.take_along_axis(sp, i[..., None], axis=-1)[..., 0]
    return best_size, best_sp


def best_symmetric_grid(
    f: "float | np.ndarray",
    fcon_share: "float | np.ndarray",
    fored_share: "float | np.ndarray",
    n: int = 256,
    growth: "str | GrowthFunction | None" = None,
    perf: "str | PerfLaw | None" = None,
) -> "tuple[np.ndarray, np.ndarray]":
    """Vectorized :func:`repro.core.merging.best_symmetric`: returns
    ``(r*, speedup*)`` arrays over the broadcast parameter grid."""
    sizes = power_of_two_sizes(n)
    f, con, ored = np.broadcast_arrays(
        np.asarray(f, dtype=np.float64),
        np.asarray(fcon_share, dtype=np.float64),
        np.asarray(fored_share, dtype=np.float64),
    )
    sp = merging_symmetric(
        f[..., None], con[..., None], ored[..., None], n, sizes, growth, perf
    )
    return _take_best(sp, sizes)


def best_asymmetric_grid(
    f: "float | np.ndarray",
    fcon_share: "float | np.ndarray",
    fored_share: "float | np.ndarray",
    n: int = 256,
    r_choices: "tuple[float, ...]" = (1.0, 4.0, 16.0),
    growth: "str | GrowthFunction | None" = None,
    perf: "str | PerfLaw | None" = None,
) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
    """Vectorized :func:`repro.core.merging.best_asymmetric`: returns
    ``(rl*, r*, speedup*)`` arrays.  Ties keep the earliest ``r_choice``
    (strict ``>`` update), matching the scalar loop."""
    sizes = power_of_two_sizes(n)
    f, con, ored = np.broadcast_arrays(
        np.asarray(f, dtype=np.float64),
        np.asarray(fcon_share, dtype=np.float64),
        np.asarray(fored_share, dtype=np.float64),
    )
    best_sp = np.full(f.shape, -np.inf)
    best_rl = np.zeros(f.shape)
    best_r = np.zeros(f.shape)
    for r in r_choices:
        feasible = sizes >= r
        if not feasible.any():
            continue
        sp = merging_asymmetric(
            f[..., None], con[..., None], ored[..., None], n, sizes, float(r),
            growth, perf,
        )
        cand_rl, cand_sp = _take_best(np.where(feasible, sp, -np.inf), sizes)
        better = cand_sp > best_sp
        best_sp = np.where(better, cand_sp, best_sp)
        best_rl = np.where(better, cand_rl, best_rl)
        best_r = np.where(better, float(r), best_r)
    if np.any(np.isneginf(best_sp)) and f.size:
        raise ValueError("no feasible asymmetric design for the given r_choices")
    return best_rl, best_r, best_sp


def hm_best_symmetric_grid(
    f: "float | np.ndarray",
    n: int = 256,
    perf: "str | PerfLaw | None" = None,
) -> "tuple[np.ndarray, np.ndarray]":
    """Vectorized :func:`repro.core.hill_marty.best_symmetric`."""
    sizes = power_of_two_sizes(n)
    f = np.asarray(f, dtype=np.float64)
    sp = hm_symmetric(f[..., None], n, sizes, perf)
    return _take_best(sp, sizes)


def hm_best_asymmetric_grouped_grid(
    f: "float | np.ndarray",
    n: int = 256,
    r_choices: "tuple[float, ...]" = (1.0, 4.0, 16.0),
    perf: "str | PerfLaw | None" = None,
) -> np.ndarray:
    """The constant-serial asymmetric reference maximised over the same
    ``(rl, r)`` grids as :func:`repro.core.optimizer.compare_architectures`."""
    sizes = power_of_two_sizes(n)
    f = np.asarray(f, dtype=np.float64)
    best = np.full(f.shape, -np.inf)
    for r in r_choices:
        feasible = sizes >= r
        if not feasible.any():
            continue
        sp = hm_asymmetric_grouped(f[..., None], n, sizes, float(r), perf)
        best = np.maximum(best, np.where(feasible, sp, -np.inf).max(axis=-1))
    return best


def conclusions_grid(
    f: "float | np.ndarray",
    fcon_share: "float | np.ndarray",
    fored_share: "float | np.ndarray",
    n: int = 256,
) -> "dict[str, np.ndarray]":
    """All conclusions-experiment metrics for a whole parameter grid in one
    vectorized call — the array counterpart of
    :func:`repro.experiments.conclusions.evaluate_point` (which runs three
    scalar optimisations per point)."""
    hm_r, hm_sp = hm_best_symmetric_grid(f, n)
    ours_r, ours_sp = best_symmetric_grid(f, fcon_share, fored_share, n)
    _, _, asym_sp = best_asymmetric_grid(f, fcon_share, fored_share, n)
    hm_asym = hm_best_asymmetric_grouped_grid(f, n)
    return {
        "hm_r": hm_r,
        "hm_speedup": hm_sp,
        "ours_r": ours_r,
        "ours_speedup": ours_sp,
        "acmp_ratio": asym_sp / ours_sp,
        "amdahl_ratio": hm_asym / hm_sp,
    }
