"""The paper's extended speedup model (Eqs 4 and 5): merging-phase overhead.

The serial fraction is decomposed (Fig 1) into a constant part ``fcon``, a
constant reduction part ``fcred``, and a growing reduction part ``fored``
whose cost is multiplied by a growth function of the participating core
count.  Substituting this for the constant ``s`` of Hill–Marty gives:

* **Symmetric CMP** (Eq 4), ``nc = n / r`` cores::

      speedup = 1 / [ (fcon + fcred + fored·grow(nc)) / perf(r)
                      + f·r / (perf(r)·n) ]

* **Asymmetric CMP** (Eq 5) — one ``rl``-BCE large core runs the serial
  section *and* the reduction (linear complexity on the large core), the
  parallel section runs on all cores; ``nc = (n - rl)/r + 1`` cores
  participate in the reduction (the large core collects one partial per
  core, including its own)::

      speedup = 1 / [ (fcon + fcred + fored·grow(nc)) / perf(rl)
                      + f / (perf(r)·(n - rl)/r + perf(rl)) ]

Conventions validated against the paper's reported peaks (DESIGN.md §1):
with ``n = 256``, ``perf = sqrt`` and Table III parameters these expressions
reproduce 104.5 / 67.1 / 36.2 / 47.6 / 64.2 / 43.3 / 22.6 to the paper's
reported precision.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.growth import GrowthFunction, resolve_growth
from repro.core.params import AppParams
from repro.core.perf import PerfLaw, resolve_perf_law
from repro.util.validation import check_positive_int

__all__ = [
    "serial_term_symmetric",
    "speedup_symmetric",
    "speedup_asymmetric",
    "sweep_symmetric",
    "sweep_asymmetric",
    "SymmetricDesign",
    "AsymmetricDesign",
    "best_symmetric",
    "best_asymmetric",
    "power_of_two_sizes",
]


def power_of_two_sizes(n: int, maximum: "int | None" = None) -> np.ndarray:
    """The paper's sweep grid: core sizes 1, 2, 4, ..., up to ``maximum``
    (default ``n``)."""
    n = check_positive_int(n, "n")
    cap = n if maximum is None else min(n, maximum)
    return np.array(
        [2**k for k in range(int(np.log2(cap)) + 1) if 2**k <= cap],
        dtype=np.float64,
    )


def _as_positive_array(value: "float | np.ndarray", name: str, upper: float) -> np.ndarray:
    arr = np.asarray(value, dtype=np.float64)
    if np.any(arr <= 0):
        raise ValueError(f"{name} must be > 0, got {value!r}")
    if np.any(arr > upper):
        raise ValueError(f"{name} must be <= {upper}, got {value!r}")
    return arr


def serial_term_symmetric(
    params: AppParams,
    n: int,
    r: "float | np.ndarray",
    growth: "str | GrowthFunction | None" = None,
) -> "float | np.ndarray":
    """The numerator-of-serial-cost ``fcon + fcred + fored·grow(n/r)``.

    Exposed separately because the model-accuracy analysis (Fig 2(d)) and
    the hardware validation compare this quantity against measured serial
    time directly.
    """
    n = check_positive_int(n, "n")
    g = resolve_growth(growth)
    arr = _as_positive_array(r, "r", n)
    nc = n / arr
    out = params.fcon + params.fcred + params.fored * np.asarray(g(nc), dtype=np.float64)
    return float(out) if np.asarray(r).ndim == 0 else out


def speedup_symmetric(
    params: AppParams,
    n: int,
    r: "float | np.ndarray",
    growth: "str | GrowthFunction | None" = None,
    perf: "str | PerfLaw | None" = None,
) -> "float | np.ndarray":
    """Extended symmetric-CMP speedup (Eq 4).

    Parameters
    ----------
    params:
        Application parameters (design-space form).
    n:
        Chip budget in BCEs (paper: 256).
    r:
        BCEs per core; scalar or array.
    growth:
        Reduction growth function (default: linear, the paper's baseline).
    perf:
        Core performance law (default: sqrt).
    """
    n = check_positive_int(n, "n")
    law = resolve_perf_law(perf)
    arr = _as_positive_array(r, "r", n)
    pr = np.asarray(law(arr), dtype=np.float64)
    serial = np.asarray(serial_term_symmetric(params, n, arr, growth), dtype=np.float64)
    out = 1.0 / (serial / pr + params.f * arr / (pr * n))
    return float(out) if np.asarray(r).ndim == 0 else out


def speedup_asymmetric(
    params: AppParams,
    n: int,
    rl: "float | np.ndarray",
    r: float = 1.0,
    growth: "str | GrowthFunction | None" = None,
    perf: "str | PerfLaw | None" = None,
) -> "float | np.ndarray":
    """Extended asymmetric-CMP speedup (Eq 5).

    Parameters
    ----------
    params:
        Application parameters (design-space form).
    n:
        Chip budget in BCEs.
    rl:
        Large-core size in BCEs; scalar or array.  Must satisfy
        ``r <= rl <= n``.
    r:
        Small-core size in BCEs (the paper plots r in {1, 4, 16}).
    growth:
        Reduction growth function applied to ``nc = (n - rl)/r + 1``.
    perf:
        Core performance law.
    """
    n = check_positive_int(n, "n")
    law = resolve_perf_law(perf)
    g = resolve_growth(growth)
    arr = _as_positive_array(rl, "rl", n)
    if r <= 0 or r > n:
        raise ValueError(f"small-core size r must be in (0, n], got {r}")
    if np.any(arr < r):
        raise ValueError(f"large core rl must be at least as big as small cores r={r}")
    prl = np.asarray(law(arr), dtype=np.float64)
    pr = float(law(r))
    n_small = (n - arr) / r
    nc = n_small + 1.0  # reduction participants: small cores + the large core
    serial = params.fcon + params.fcred + params.fored * np.asarray(g(nc), dtype=np.float64)
    parallel_throughput = pr * n_small + prl
    out = 1.0 / (serial / prl + params.f / parallel_throughput)
    return float(out) if np.asarray(rl).ndim == 0 else out


@dataclass(frozen=True)
class SymmetricDesign:
    """An optimal symmetric design point: ``nc = n/r`` cores of ``r`` BCEs."""

    r: float
    speedup: float
    n: int

    @property
    def cores(self) -> float:
        """Number of cores on the chip."""
        return self.n / self.r


@dataclass(frozen=True)
class AsymmetricDesign:
    """An optimal asymmetric design point: one ``rl``-BCE core plus
    ``(n - rl)/r`` small cores of ``r`` BCEs."""

    rl: float
    r: float
    speedup: float
    n: int

    @property
    def small_cores(self) -> float:
        """Number of small cores on the chip."""
        return (self.n - self.rl) / self.r

    @property
    def cores(self) -> float:
        """Total core count including the large core."""
        return self.small_cores + 1.0


def sweep_symmetric(
    params: AppParams,
    n: int,
    growth: "str | GrowthFunction | None" = None,
    perf: "str | PerfLaw | None" = None,
    sizes: "np.ndarray | None" = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Speedup across the power-of-two core-size grid (a Fig 4 curve).

    Returns ``(sizes, speedups)``.
    """
    grid = power_of_two_sizes(n) if sizes is None else np.asarray(sizes, dtype=np.float64)
    return grid, np.asarray(speedup_symmetric(params, n, grid, growth, perf))


def sweep_asymmetric(
    params: AppParams,
    n: int,
    r: float = 1.0,
    growth: "str | GrowthFunction | None" = None,
    perf: "str | PerfLaw | None" = None,
    sizes: "np.ndarray | None" = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Speedup across the power-of-two large-core grid (a Fig 5 curve).

    Only grid points with ``rl >= r`` are evaluated.  Returns
    ``(sizes, speedups)``.
    """
    grid = power_of_two_sizes(n) if sizes is None else np.asarray(sizes, dtype=np.float64)
    grid = grid[grid >= r]
    return grid, np.asarray(speedup_asymmetric(params, n, grid, r, growth, perf))


def best_symmetric(
    params: AppParams,
    n: int,
    growth: "str | GrowthFunction | None" = None,
    perf: "str | PerfLaw | None" = None,
) -> SymmetricDesign:
    """The speedup-maximising symmetric design over the power-of-two grid."""
    sizes, sp = sweep_symmetric(params, n, growth, perf)
    i = int(np.argmax(sp))
    return SymmetricDesign(r=float(sizes[i]), speedup=float(sp[i]), n=n)


def best_asymmetric(
    params: AppParams,
    n: int,
    r_choices: "tuple[float, ...]" = (1.0, 4.0, 16.0),
    growth: "str | GrowthFunction | None" = None,
    perf: "str | PerfLaw | None" = None,
) -> AsymmetricDesign:
    """The speedup-maximising asymmetric design over the power-of-two
    ``rl`` grid and the given small-core choices (paper: r in {1, 4, 16})."""
    best: AsymmetricDesign | None = None
    for r in r_choices:
        sizes, sp = sweep_asymmetric(params, n, r, growth, perf)
        if sizes.size == 0:
            continue
        i = int(np.argmax(sp))
        cand = AsymmetricDesign(rl=float(sizes[i]), r=float(r), speedup=float(sp[i]), n=n)
        if best is None or cand.speedup > best.speedup:
            best = cand
    if best is None:
        raise ValueError("no feasible asymmetric design for the given r_choices")
    return best
