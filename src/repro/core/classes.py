"""Application classes of Table III (Section V.D).

The paper's design-space study categorises applications along three
dimensions, two cases each:

* parallelism — embarrassingly parallel (f = 0.999) vs
  non-embarrassingly parallel (f = 0.99);
* constant serial share — high (fcon = 90% of serial) vs
  moderate (fcon = 60%);
* reduction overhead — low (fored = 10% of reduction) vs
  high (fored = 80%).

The eight combinations drive Figs 4, 5 and 7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.core.params import AppParams

__all__ = [
    "AppClass",
    "TABLE3_CLASSES",
    "get_class",
    "EMBARRASSING_F",
    "NON_EMBARRASSING_F",
    "HIGH_CONSTANT",
    "MODERATE_CONSTANT",
    "LOW_OVERHEAD",
    "HIGH_OVERHEAD",
]

EMBARRASSING_F = 0.999
NON_EMBARRASSING_F = 0.99
HIGH_CONSTANT = 0.90
MODERATE_CONSTANT = 0.60
LOW_OVERHEAD = 0.10
HIGH_OVERHEAD = 0.80


@dataclass(frozen=True)
class AppClass:
    """One row of Table III."""

    parallelism: str   # "emb" | "non-emb"
    constant: str      # "high" | "moderate"
    reduction: str     # "low" | "high"

    def __post_init__(self) -> None:
        if self.parallelism not in ("emb", "non-emb"):
            raise ValueError(f"parallelism must be 'emb' or 'non-emb', got {self.parallelism!r}")
        if self.constant not in ("high", "moderate"):
            raise ValueError(f"constant must be 'high' or 'moderate', got {self.constant!r}")
        if self.reduction not in ("low", "high"):
            raise ValueError(f"reduction must be 'low' or 'high', got {self.reduction!r}")

    @property
    def key(self) -> str:
        """Canonical identifier, e.g. ``'emb/high/low'``."""
        return f"{self.parallelism}/{self.constant}/{self.reduction}"

    def params(self) -> AppParams:
        """The Table III parameter values for this class."""
        return AppParams(
            f=EMBARRASSING_F if self.parallelism == "emb" else NON_EMBARRASSING_F,
            fcon_share=HIGH_CONSTANT if self.constant == "high" else MODERATE_CONSTANT,
            fored_share=LOW_OVERHEAD if self.reduction == "low" else HIGH_OVERHEAD,
            name=self.key,
        )


def _all_classes() -> tuple[AppClass, ...]:
    return tuple(
        AppClass(p, c, o)
        for c in ("high", "moderate")
        for o in ("low", "high")
        for p in ("emb", "non-emb")
    )


#: All eight Table III classes, ordered as the paper's figure panels:
#: (high-constant, low-overhead) first, embarrassing before non-embarrassing.
TABLE3_CLASSES: tuple[AppClass, ...] = _all_classes()


def get_class(parallelism: str, constant: str, reduction: str) -> AppClass:
    """Look up a class by its three dimension values."""
    return AppClass(parallelism, constant, reduction)


def iter_params() -> Iterator[AppParams]:
    """Iterate the eight Table III parameter sets in panel order."""
    for cls in TABLE3_CLASSES:
        yield cls.params()
