"""Model-accuracy metrics (Fig 2(d) of the paper).

Fig 2(d) normalises the serial-section time *predicted* by the extended
model to the serial-section time *measured* in simulation, per core count.
A ratio of 1.0 means a perfect prediction; the paper reports a maximum
overestimation of +14% (fuzzy) and a maximum underestimation of −18%
(kmeans).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.util.validation import ensure_array

__all__ = ["AccuracyReport", "accuracy_ratio", "evaluate_accuracy"]


def accuracy_ratio(predicted: Sequence[float], measured: Sequence[float]) -> np.ndarray:
    """Element-wise predicted/measured ratio (the Fig 2(d) y-axis)."""
    p = ensure_array(predicted, "predicted")
    m = ensure_array(measured, "measured")
    if p.shape != m.shape:
        raise ValueError(f"shape mismatch: predicted {p.shape} vs measured {m.shape}")
    if np.any(m <= 0):
        raise ValueError("measured values must be > 0")
    return p / m


@dataclass(frozen=True)
class AccuracyReport:
    """Summary of prediction accuracy across a core-count sweep."""

    cores: tuple[int, ...]
    ratios: tuple[float, ...]

    @property
    def max_overestimation(self) -> float:
        """Largest (ratio − 1) above zero, e.g. 0.14 for +14%."""
        return max(0.0, max(self.ratios) - 1.0)

    @property
    def max_underestimation(self) -> float:
        """Largest (1 − ratio) above zero, e.g. 0.18 for −18%."""
        return max(0.0, 1.0 - min(self.ratios))

    @property
    def mean_absolute_error(self) -> float:
        """Mean |ratio − 1| over the sweep."""
        return float(np.mean(np.abs(np.asarray(self.ratios) - 1.0)))

    def within(self, tolerance: float) -> bool:
        """True when every ratio is within ±tolerance of 1."""
        return all(abs(r - 1.0) <= tolerance for r in self.ratios)


def evaluate_accuracy(
    predicted_by_cores: Mapping[int, float],
    measured_by_cores: Mapping[int, float],
) -> AccuracyReport:
    """Build an :class:`AccuracyReport` from per-core-count serial times.

    Only core counts present in both mappings are evaluated (the paper
    compares at 2, 4, 8 and 16 cores).
    """
    common = sorted(set(predicted_by_cores) & set(measured_by_cores))
    if not common:
        raise ValueError("no common core counts between predicted and measured data")
    ratios = accuracy_ratio(
        [predicted_by_cores[c] for c in common],
        [measured_by_cores[c] for c in common],
    )
    return AccuracyReport(cores=tuple(common), ratios=tuple(float(r) for r in ratios))
