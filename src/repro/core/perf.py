"""Core performance laws ``perf(r)``.

The Hill–Marty framework measures chip area in *base-core equivalents*
(BCEs).  A core built from ``r`` BCEs runs sequential code ``perf(r)`` times
faster than a 1-BCE base core.  The paper (Section V.D) follows Borkar's
observation that performance is proportional to the square root of area —
``perf(r) = sqrt(r)`` — i.e. Pollack's rule.  This module provides that law
plus generalisations used by the ablation benchmarks.

All laws are vectorised: they accept scalars or numpy arrays of ``r``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from repro.util.validation import check_positive

__all__ = [
    "PerfLaw",
    "SqrtPerf",
    "PollackPerf",
    "LinearPerf",
    "TablePerf",
    "SQRT_PERF",
    "resolve_perf_law",
]

ArrayLike = "float | np.ndarray"


@dataclass(frozen=True)
class PerfLaw:
    """A sequential-performance law ``perf(r)``.

    Attributes
    ----------
    name:
        Short identifier used in reports and the CLI.
    fn:
        Vectorised callable mapping core size in BCEs to relative
        sequential performance.  Must satisfy ``fn(1) == 1``.
    """

    name: str
    fn: Callable[[np.ndarray], np.ndarray]

    def __call__(self, r: "float | np.ndarray") -> "float | np.ndarray":
        arr = np.asarray(r, dtype=np.float64)
        if np.any(arr <= 0):
            raise ValueError(f"core size r must be > 0, got {r!r}")
        out = self.fn(arr)
        if arr.ndim == 0:
            return float(out)
        return out

    def validate_normalised(self) -> None:
        """Check that a 1-BCE core has unit performance (the model's anchor)."""
        v = float(self(1.0))
        if not np.isclose(v, 1.0):
            raise ValueError(f"perf law {self.name!r} must satisfy perf(1)=1, got {v}")


def SqrtPerf() -> PerfLaw:
    """The paper's law: ``perf(r) = sqrt(r)`` (Pollack's rule).

    A 4-BCE core performs twice as fast as a 1-BCE core.
    """
    return PerfLaw("sqrt", np.sqrt)


def PollackPerf(theta: float) -> PerfLaw:
    """Generalised Pollack law ``perf(r) = r ** theta``.

    ``theta = 0.5`` recovers the paper's assumption; the ablation benchmarks
    sweep ``theta`` to test how sensitive the design conclusions are to the
    exact area-performance exponent.
    """
    check_positive(theta, "theta")
    if theta > 1.0:
        raise ValueError(
            f"theta must be <= 1 (super-linear returns on area are unphysical), got {theta}"
        )
    t = float(theta)
    return PerfLaw(f"pollack({t:g})", lambda r: np.power(r, t))


def LinearPerf() -> PerfLaw:
    """Idealised law ``perf(r) = r`` (perfect return on area).

    Under this law the symmetric-CMP parallel term is independent of ``r``;
    used as an upper-bound reference in ablations.
    """
    return PerfLaw("linear", lambda r: np.asarray(r, dtype=np.float64))


def TablePerf(points: Mapping[float, float], name: str = "table") -> PerfLaw:
    """A perf law interpolated (in log-log space) from measured points.

    Parameters
    ----------
    points:
        Mapping from core size ``r`` to measured relative performance.
        Must include ``r = 1`` with performance 1.
    name:
        Identifier for reports.
    """
    if not points:
        raise ValueError("points must not be empty")
    rs = np.array(sorted(points), dtype=np.float64)
    ps = np.array([points[r] for r in sorted(points)], dtype=np.float64)
    if np.any(rs <= 0) or np.any(ps <= 0):
        raise ValueError("core sizes and performances must be positive")
    if not np.isclose(np.interp(0.0, np.log2(rs), np.log2(ps)), 0.0, atol=1e-9):
        raise ValueError("TablePerf must interpolate through perf(1) = 1")

    log_r, log_p = np.log2(rs), np.log2(ps)

    def fn(r: np.ndarray) -> np.ndarray:
        return np.exp2(np.interp(np.log2(r), log_r, log_p))

    return PerfLaw(name, fn)


#: The default law used throughout the paper's evaluation.
SQRT_PERF = SqrtPerf()

_NAMED: dict[str, Callable[[], PerfLaw]] = {
    "sqrt": SqrtPerf,
    "linear": LinearPerf,
}


def resolve_perf_law(spec: "str | PerfLaw | None") -> PerfLaw:
    """Resolve a perf-law spec from a name, an existing law, or None.

    ``None`` and ``"sqrt"`` give the paper's default.  Strings of the form
    ``"pollack:<theta>"`` build a generalised Pollack law.
    """
    if spec is None:
        return SQRT_PERF
    if isinstance(spec, PerfLaw):
        return spec
    if spec in _NAMED:
        return _NAMED[spec]()
    if spec.startswith("pollack:"):
        return PollackPerf(float(spec.split(":", 1)[1]))
    raise ValueError(
        f"unknown perf law {spec!r}; expected one of {sorted(_NAMED)} or 'pollack:<theta>'"
    )
