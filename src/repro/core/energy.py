"""Energy and power extension of the merging-phase model.

The paper optimises pure performance; this extension (in the spirit of the
asymmetric-CMP energy literature, e.g. Morad et al. [12]) asks what the
growing merge does to *energy-efficient* design points.

Power model.  A core of ``r`` BCEs draws ``active_power(r) = r^mu`` when
executing (mu = 1: power tracks area — a reasonable first-order model for
equal-voltage designs) and ``idle_fraction`` of that when idle (leakage +
clock).  During serial phases one core is active and the rest idle;
during parallel phases all cores are active.

Metrics per design: execution time (the extended model's), energy,
energy-delay product, and performance per watt — each normalised to the
single-BCE baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.growth import GrowthFunction, resolve_growth
from repro.core.params import AppParams
from repro.core.perf import PerfLaw, resolve_perf_law
from repro.util.validation import check_fraction, check_positive, check_positive_int

__all__ = ["PowerModel", "DesignEnergy", "evaluate_symmetric", "best_symmetric_energy"]


@dataclass(frozen=True)
class PowerModel:
    """Per-core power as a function of size.

    Parameters
    ----------
    mu:
        Power-area exponent: ``active_power(r) = r ** mu``.  mu = 1 is
        area-proportional; mu > 1 models frequency/voltage premiums on
        large cores.
    idle_fraction:
        Idle (leakage) power as a fraction of active power.
    """

    mu: float = 1.0
    idle_fraction: float = 0.3

    def __post_init__(self) -> None:
        check_positive(self.mu, "mu")
        check_fraction(self.idle_fraction, "idle_fraction")

    def active(self, r: "float | np.ndarray") -> "float | np.ndarray":
        """Active power of an ``r``-BCE core (1-BCE core = 1)."""
        arr = np.asarray(r, dtype=np.float64)
        if np.any(arr <= 0):
            raise ValueError(f"core size must be > 0, got {r!r}")
        out = np.power(arr, self.mu)
        return float(out) if np.asarray(r).ndim == 0 else out

    def idle(self, r: "float | np.ndarray") -> "float | np.ndarray":
        """Idle power of an ``r``-BCE core."""
        out = np.asarray(self.active(r)) * self.idle_fraction
        return float(out) if np.asarray(r).ndim == 0 else out


@dataclass(frozen=True)
class DesignEnergy:
    """Energy metrics for one symmetric design point.

    All values are normalised to the single-BCE-core baseline executing
    the same application (time 1, power 1, energy 1).
    """

    r: float
    speedup: float
    energy: float
    edp: float
    perf_per_watt: float


def evaluate_symmetric(
    params: AppParams,
    n: int,
    r: "float | np.ndarray",
    power: "PowerModel | None" = None,
    growth: "str | GrowthFunction | None" = None,
    perf: "str | PerfLaw | None" = None,
) -> "DesignEnergy | list[DesignEnergy]":
    """Time/energy/EDP for symmetric designs under the extended model.

    The serial phases keep one core active and ``nc − 1`` idle; the
    parallel phase keeps all ``nc`` active.  Baseline energy is the
    single-BCE core running the whole application at power 1 for time 1.
    """
    n = check_positive_int(n, "n")
    pm = power or PowerModel()
    law = resolve_perf_law(perf)
    g = resolve_growth(growth)
    arr = np.atleast_1d(np.asarray(r, dtype=np.float64))
    if np.any(arr <= 0) or np.any(arr > n):
        raise ValueError(f"core size r must be in (0, n], got {r!r}")
    pr = np.asarray(law(arr), dtype=np.float64)
    nc = n / arr
    serial_time = (
        params.fcon + params.fcred + params.fored * np.asarray(g(nc))
    ) / pr
    parallel_time = params.f * arr / (pr * n)
    total_time = serial_time + parallel_time
    speedup = 1.0 / total_time

    p_active = np.asarray(pm.active(arr), dtype=np.float64)
    p_idle = np.asarray(pm.idle(arr), dtype=np.float64)
    serial_power = p_active + (nc - 1.0) * p_idle
    parallel_power = nc * p_active
    energy = serial_time * serial_power + parallel_time * parallel_power
    edp = energy * total_time
    perf_per_watt = speedup / (energy / total_time)  # 1 / average power

    out = [
        DesignEnergy(
            r=float(arr[i]), speedup=float(speedup[i]), energy=float(energy[i]),
            edp=float(edp[i]), perf_per_watt=float(perf_per_watt[i]),
        )
        for i in range(arr.size)
    ]
    return out[0] if np.asarray(r).ndim == 0 else out


def best_symmetric_energy(
    params: AppParams,
    n: int,
    objective: str = "edp",
    power: "PowerModel | None" = None,
    growth: "str | GrowthFunction | None" = None,
    perf: "str | PerfLaw | None" = None,
) -> DesignEnergy:
    """The design minimising EDP / energy or maximising perf-per-watt /
    speedup, over the power-of-two grid."""
    from repro.core.merging import power_of_two_sizes

    objectives = {
        "edp": (lambda d: d.edp, min),
        "energy": (lambda d: d.energy, min),
        "perf_per_watt": (lambda d: d.perf_per_watt, max),
        "speedup": (lambda d: d.speedup, max),
    }
    if objective not in objectives:
        raise ValueError(
            f"objective must be one of {sorted(objectives)}, got {objective!r}"
        )
    key, pick = objectives[objective]
    designs = evaluate_symmetric(
        params, n, power_of_two_sizes(n), power, growth, perf
    )
    return pick(designs, key=key)
