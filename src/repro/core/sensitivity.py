"""Parameter-sensitivity analysis of the extended model.

Which input moves the paper's conclusions most — the parallel fraction, the
constant share, or the overhead share?  This module differentiates the
model numerically around a design point and produces tornado-style rankings
used by the ablation benchmarks and the design-space example.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.core import merging
from repro.core.growth import GrowthFunction
from repro.core.params import AppParams
from repro.core.perf import PerfLaw

__all__ = ["Sensitivity", "speedup_sensitivities", "tornado", "elasticity"]

_FIELDS = ("f", "fcon_share", "fored_share")


@dataclass(frozen=True)
class Sensitivity:
    """Sensitivity of a model output to one input parameter.

    ``gradient`` is the raw partial derivative; ``elasticity`` the
    dimensionless %-output per %-input (comparable across parameters).
    """

    parameter: str
    base_value: float
    gradient: float
    elasticity: float


def _perturbed(params: AppParams, field: str, value: float) -> AppParams:
    clipped = min(max(value, 1e-9), 1 - 1e-9) if field == "f" else min(max(value, 0.0), 1.0)
    return params.with_(**{field: clipped})


def elasticity(
    fn: Callable[[AppParams], float],
    params: AppParams,
    field: str,
    rel_step: float = 1e-4,
) -> Sensitivity:
    """Central-difference elasticity of ``fn`` w.r.t. one parameter field."""
    if field not in _FIELDS:
        raise ValueError(f"field must be one of {_FIELDS}, got {field!r}")
    base_value = getattr(params, field)
    h = max(rel_step * max(abs(base_value), 1e-3), 1e-9)
    up = fn(_perturbed(params, field, base_value + h))
    down = fn(_perturbed(params, field, base_value - h))
    base_out = fn(params)
    gradient = (up - down) / (2 * h)
    el = gradient * base_value / base_out if base_out != 0 and base_value != 0 else 0.0
    return Sensitivity(
        parameter=field, base_value=base_value,
        gradient=float(gradient), elasticity=float(el),
    )


def speedup_sensitivities(
    params: AppParams,
    n: int = 256,
    r: "float | None" = None,
    growth: "str | GrowthFunction | None" = None,
    perf: "str | PerfLaw | None" = None,
) -> list[Sensitivity]:
    """Sensitivities of the symmetric speedup at a design point.

    With ``r`` unset the *optimal* design is re-solved at every
    perturbation — the sensitivity of the achievable speedup, not of one
    frozen chip.
    """

    def objective(p: AppParams) -> float:
        if r is not None:
            return float(merging.speedup_symmetric(p, n, r, growth, perf))
        return merging.best_symmetric(p, n, growth, perf).speedup

    return [elasticity(objective, params, field) for field in _FIELDS]


def tornado(sensitivities: Sequence[Sensitivity]) -> list[Sensitivity]:
    """Rank sensitivities by |elasticity|, largest first."""
    return sorted(sensitivities, key=lambda s: abs(s.elasticity), reverse=True)
