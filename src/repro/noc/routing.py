"""Routing over on-chip topologies.

The simulator's interconnect model and the Eq 8 verification both need
per-pair hop counts; this module provides XY (dimension-ordered) routing for
meshes — path enumeration, not just distances — and a networkx-backed
exhaustive checker used by the test suite to prove the closed-form
``hop_distance`` implementations correct.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.noc.topology import Mesh2D, Topology, Torus2D

__all__ = ["xy_route", "torus_route", "hop_matrix", "verify_against_networkx"]


def xy_route(mesh: Mesh2D, src: int, dst: int) -> list[int]:
    """The XY-routed path from src to dst inclusive of both endpoints.

    Dimension-ordered routing: travel along the row (X) first, then the
    column (Y).  Deadlock-free on meshes; its length is the Manhattan
    distance, i.e. the shortest possible path.
    """
    mesh.validate_node(src)
    mesh.validate_node(dst)
    r1, c1 = mesh.coords(src)
    r2, c2 = mesh.coords(dst)
    path = [src]
    c = c1
    while c != c2:
        c += 1 if c2 > c else -1
        path.append(mesh.node_at(r1, c))
    r = r1
    while r != r2:
        r += 1 if r2 > r else -1
        path.append(mesh.node_at(r, c2))
    return path


def torus_route(torus: Torus2D, src: int, dst: int) -> list[int]:
    """Wrap-aware dimension-ordered route on a torus, endpoints inclusive.

    In each dimension the route takes whichever direction is shorter
    (ties go the incrementing way); its length equals
    :meth:`Torus2D.hop_distance`.
    """
    torus.validate_node(src)
    torus.validate_node(dst)
    r1, c1 = torus.coords(src)
    r2, c2 = torus.coords(dst)

    def steps(frm: int, to: int, size: int) -> list[int]:
        if frm == to:
            return []
        fwd = (to - frm) % size
        back = (frm - to) % size
        direction = 1 if fwd <= back else -1
        count = fwd if direction == 1 else back
        out, cur = [], frm
        for _ in range(count):
            cur = (cur + direction) % size
            out.append(cur)
        return out

    path = [src]
    col = c1
    for col in steps(c1, c2, torus.cols):
        path.append(r1 * torus.cols + col)
    col = c2 if c1 != c2 else c1
    for row in steps(r1, r2, torus.rows):
        path.append(row * torus.cols + col)
    return path


def hop_matrix(topology: Topology) -> np.ndarray:
    """Dense matrix of pairwise hop distances (n x n, zeros on diagonal)."""
    n = topology.n_nodes
    out = np.zeros((n, n), dtype=np.int64)
    for s in range(n):
        for d in range(n):
            if s != d:
                out[s, d] = topology.hop_distance(s, d)
    return out


def verify_against_networkx(topology: Topology) -> bool:
    """Cross-check closed-form distances against BFS over the edge list.

    Returns True when every pairwise distance matches; raises
    :class:`AssertionError` naming the first mismatch otherwise.  Used by the
    property tests; requires networkx.
    """
    import networkx as nx

    g = nx.Graph()
    g.add_nodes_from(range(topology.n_nodes))
    g.add_edges_from(topology.edges())
    lengths = dict(nx.all_pairs_shortest_path_length(g))
    for s in range(topology.n_nodes):
        for d in range(topology.n_nodes):
            expected = lengths[s][d]
            actual = topology.hop_distance(s, d)
            assert actual == expected, (
                f"{topology!r}: hop_distance({s}, {d}) = {actual}, BFS says {expected}"
            )
    return True


def path_link_loads(mesh: Mesh2D, pairs: Sequence[tuple[int, int]]) -> dict[tuple[int, int], int]:
    """Count how many of the given (src, dst) transfers cross each link
    under XY routing — used to study reduction-traffic hotspots around the
    master core."""
    loads: dict[tuple[int, int], int] = {}
    for src, dst in pairs:
        path = xy_route(mesh, src, dst)
        for u, v in zip(path, path[1:]):
            key = (min(u, v), max(u, v))
            loads[key] = loads.get(key, 0) + 1
    return loads
