"""Communication-cost derivations per topology (the Eq 8 generalisation).

The paper derives the mesh communication growth as::

    growcomm(nc) = total_link_transfers / link_operations_per_unit_time
                 = [ 2·(nc−1)·x · avg_hops ] / [ 2 · 2·sqrt(nc)(sqrt(nc)−1) ]
                 ≈ sqrt(nc) / 2            (taking avg_hops ≈ sqrt(nc) − 1)

where a parallel reduction of ``x`` privatised elements needs each core to
send and receive partials from every other core (``2·(nc−1)·x`` messages).
This module computes the same ratio *from the topology object* — link count
and average hops are derived, not assumed — so the approximation in Eq 8 can
be quantified, and the model extended to other networks.
"""

from __future__ import annotations

import numpy as np

from repro.core.communication import CommGrowth
from repro.noc.topology import Topology, resolve_topology

__all__ = [
    "reduction_comm_operations",
    "growcomm_for",
    "topology_growcomm",
]


def reduction_comm_operations(nc: int, x: int = 1, broadcast_back: bool = True) -> int:
    """Message count of a privatised parallel reduction (Section V.E).

    Each of the ``nc`` cores sends its subset of ``x`` partial elements to
    every other core ((nc−1)·x messages); with ``broadcast_back`` (the
    paper's "common case") the combined results also return to every core,
    doubling the traffic to ``2·(nc−1)·x``.
    """
    if nc < 1:
        raise ValueError(f"nc must be >= 1, got {nc}")
    if x < 0:
        raise ValueError(f"x must be >= 0, got {x}")
    ops = (nc - 1) * x
    return 2 * ops if broadcast_back else ops


def growcomm_for(topology: Topology, x: int = 1, broadcast_back: bool = True) -> float:
    """The exact communication growth for a concrete topology instance.

    ``(messages · average_hops) / link_operations`` — the time (in units of
    a single-core element-transfer) the network needs to move the reduction
    traffic, assuming perfectly load-balanced links (the paper's idealised
    premise; it concedes the result "still provides an optimistic
    estimate").

    Note ``x`` cancels for the mesh in the paper's simplification but is
    kept here because non-uniform topologies need not be linear in it once
    link contention is considered.
    """
    nc = topology.n_nodes
    if nc == 1:
        return 0.0
    messages = reduction_comm_operations(nc, x, broadcast_back)
    total_transfers = messages * topology.average_hops()
    return total_transfers / topology.link_operations()


def topology_growcomm(
    name: str, x: int = 1, broadcast_back: bool = True, name_suffix: str = ""
) -> CommGrowth:
    """Build a :class:`~repro.core.communication.CommGrowth` whose values
    come from exact per-topology computation.

    The returned growth law evaluates the topology at each requested core
    count (rounded to the nearest integer ≥ 1) — plug it into
    :func:`repro.core.communication.speedup_symmetric_comm` to run Fig 7
    with torus/ring/crossbar interconnects (ablation benchmarks).
    """

    cache: dict[int, float] = {}

    def fn(nc_arr: np.ndarray) -> np.ndarray:
        arr = np.atleast_1d(np.asarray(nc_arr, dtype=np.float64))
        out = np.empty_like(arr)
        for i, v in enumerate(arr):
            k = max(1, int(round(float(v))))
            if k not in cache:
                cache[k] = growcomm_for(resolve_topology(name, k), x, broadcast_back)
            out[i] = cache[k]
        return out.reshape(np.asarray(nc_arr, dtype=np.float64).shape)

    label = f"{name}{name_suffix}" if name_suffix else name
    return CommGrowth(label, fn)
