"""Network-on-chip substrate for the communication-aware model (Section V.E).

The paper derives Eq 8 for a 2D mesh from first principles: link count,
bisection-free aggregate throughput, and average hop distance.  This package
implements those quantities for a family of topologies so that the derivation
can be *checked* (against exhaustive shortest-path computation) and the
communication model extended beyond meshes (ablation benchmarks).
"""

from repro.noc.comm_cost import (
    growcomm_for,
    reduction_comm_operations,
    topology_growcomm,
)
from repro.noc.topology import (
    FullyConnected,
    Mesh2D,
    Ring,
    Topology,
    Torus2D,
    resolve_topology,
)

__all__ = [
    "Topology",
    "Mesh2D",
    "Torus2D",
    "Ring",
    "FullyConnected",
    "resolve_topology",
    "growcomm_for",
    "topology_growcomm",
    "reduction_comm_operations",
]
