"""Link-contention refinement of the Eq 8 communication model.

Eq 8 divides total traffic by the network's aggregate link capacity —
implicitly assuming the reduction's messages spread evenly over every
link.  Real gather/all-to-all patterns do not: a serial reduction funnels
every partial into the master tile, saturating the links around it while
the rest of the mesh idles.

This module computes, for a concrete mesh and traffic pattern, the *exact*
per-link loads under XY routing and derives the bottleneck-limited
communication time: ``max_link_load`` transfers must cross the hottest
link serially, so the pattern cannot complete faster than that.  The ratio
``bottleneck_time / uniform_time`` quantifies how optimistic Eq 8 is
(the paper itself concedes the model "provides an optimistic estimate").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.communication import CommGrowth
from repro.noc.routing import path_link_loads
from repro.noc.topology import Mesh2D

__all__ = [
    "TrafficAnalysis",
    "gather_pattern",
    "all_to_all_pattern",
    "analyse_pattern",
    "contended_growcomm",
]


@dataclass(frozen=True)
class TrafficAnalysis:
    """Per-link load statistics for one traffic pattern on a mesh.

    All mean-based statistics use the **bidirectional-capacity
    convention**: a mesh of ``total_links`` undirected links offers
    ``2 * total_links`` unit-time transfer slots (one per direction),
    matching Eq 8's aggregate-capacity denominator and
    :meth:`~repro.noc.topology.Mesh2D.link_operations`.  Under this one
    convention ``imbalance == bottleneck_time / uniform_time`` exactly —
    the hottest-link slowdown factor relative to Eq 8's optimistic
    balanced-traffic estimate.
    """

    n_nodes: int
    total_transfers: int
    max_link_load: int
    mean_link_load: float
    busy_links: int
    total_links: int

    @property
    def imbalance(self) -> float:
        """Hottest-link load over the capacity-convention mean (1.0 =
        perfectly balanced; equals ``bottleneck_time / uniform_time``)."""
        if self.mean_link_load == 0:
            return 1.0
        return self.max_link_load / self.mean_link_load

    @property
    def uniform_time(self) -> float:
        """Completion time under Eq 8's balanced-links assumption."""
        if self.total_links == 0:
            return 0.0
        # bidirectional links: two transfers per link per unit time
        return self.total_transfers / (2 * self.total_links)

    @property
    def bottleneck_time(self) -> float:
        """Completion time limited by the hottest link."""
        return float(self.max_link_load)


def gather_pattern(mesh: Mesh2D, master: int = 0, x: int = 1) -> list[tuple[int, int]]:
    """The serial reduction's traffic: every node sends ``x`` partial
    elements to the master (Algorithm 1's communication side)."""
    mesh.validate_node(master)
    return [
        (src, master)
        for src in range(mesh.n_nodes)
        if src != master
        for _ in range(x)
    ]


def all_to_all_pattern(mesh: Mesh2D, x: int = 1) -> list[tuple[int, int]]:
    """The privatised parallel reduction's traffic: every node sends its
    slice of every partial to the slice owners (Section V.E's
    ``(nc−1)·x`` exchange, here one element per ordered pair when x = 1)."""
    return [
        (src, dst)
        for src in range(mesh.n_nodes)
        for dst in range(mesh.n_nodes)
        if src != dst
        for _ in range(x)
    ]


def analyse_pattern(mesh: Mesh2D, pairs: list[tuple[int, int]]) -> TrafficAnalysis:
    """Route a pattern with XY routing and collect link-load statistics."""
    loads = path_link_loads(mesh, pairs)
    total_links = mesh.link_count()
    if not loads:
        return TrafficAnalysis(
            n_nodes=mesh.n_nodes, total_transfers=0, max_link_load=0,
            mean_link_load=0.0, busy_links=0, total_links=total_links,
        )
    values = np.array(list(loads.values()), dtype=np.int64)
    return TrafficAnalysis(
        n_nodes=mesh.n_nodes,
        total_transfers=int(values.sum()),
        max_link_load=int(values.max()),
        # bidirectional-capacity convention (2 directed slots per
        # undirected link), same denominator as uniform_time — so
        # imbalance == bottleneck_time / uniform_time
        mean_link_load=float(values.sum() / (2 * total_links)),
        busy_links=len(loads),
        total_links=total_links,
    )


def contended_growcomm(pattern: str = "all_to_all", x: int = 1) -> CommGrowth:
    """A :class:`CommGrowth` priced by the bottleneck link, not aggregate
    capacity.

    ``pattern`` is ``"gather"`` (serial reduction) or ``"all_to_all"``
    (privatised parallel reduction, the Fig 7 case).  The returned growth
    is normalised like Eq 8: communication time per reduction element.
    """
    if pattern not in ("gather", "all_to_all"):
        raise ValueError(
            f"pattern must be 'gather' or 'all_to_all', got {pattern!r}"
        )
    cache: dict[int, float] = {}

    def fn(nc_arr: np.ndarray) -> np.ndarray:
        arr = np.atleast_1d(np.asarray(nc_arr, dtype=np.float64))
        out = np.empty_like(arr)
        for i, v in enumerate(arr):
            k = max(1, int(round(float(v))))
            if k not in cache:
                if k == 1:
                    cache[k] = 0.0
                else:
                    mesh = Mesh2D(k)
                    pairs = (
                        gather_pattern(mesh, 0, x)
                        if pattern == "gather"
                        else all_to_all_pattern(mesh, x)
                    )
                    analysis = analyse_pattern(mesh, pairs)
                    # per-element time: the pattern carries x elements'
                    # worth of traffic per node pair involved
                    cache[k] = analysis.bottleneck_time / x
            out[i] = cache[k]
        return out.reshape(np.asarray(nc_arr, dtype=np.float64).shape)

    return CommGrowth(f"mesh-contended-{pattern}", fn)
