"""On-chip interconnect topologies.

Each topology knows its link count, its average hop distance, and how to
enumerate node adjacency (for exhaustive verification against networkx and
for the simulator's interconnect timing model).

The paper's Eq 8 analysis needs two quantities per topology:

* ``link_operations()`` — how many link transfers the network can carry per
  unit time (the paper: ``4·sqrt(nc)·(sqrt(nc)-1)`` for a mesh with
  bidirectional links, i.e. 2 directions × 2·sqrt(nc)·(sqrt(nc)−1) links);
* ``average_hops()`` — the mean shortest-path distance between distinct
  nodes (the paper approximates ``sqrt(nc) - 1`` for the mesh).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterator

from repro.util.validation import check_positive_int

__all__ = [
    "Topology",
    "Mesh2D",
    "Torus2D",
    "Ring",
    "Hypercube",
    "FullyConnected",
    "resolve_topology",
]


class Topology(ABC):
    """A fixed-size on-chip network of ``n_nodes`` cores."""

    def __init__(self, n_nodes: int):
        self.n_nodes = check_positive_int(n_nodes, "n_nodes")

    # ── structure ─────────────────────────────────────────────────────────
    @abstractmethod
    def edges(self) -> Iterator[tuple[int, int]]:
        """Yield each undirected link exactly once as ``(u, v)`` with u < v."""

    @abstractmethod
    def hop_distance(self, src: int, dst: int) -> int:
        """Shortest-path hop count between two nodes (closed form)."""

    # ── aggregate quantities used by Eq 8 ────────────────────────────────
    def link_count(self) -> int:
        """Number of undirected links."""
        return sum(1 for _ in self.edges())

    def link_operations(self) -> int:
        """Link transfers the network can carry per unit time, assuming
        bidirectional links (two simultaneous transfers per link)."""
        return 2 * self.link_count()

    def average_hops(self) -> float:
        """Mean hop distance over ordered pairs of distinct nodes.

        Computed exactly from :meth:`hop_distance`; subclasses may override
        with a closed form (all our closed forms are verified against this
        in the tests).
        """
        n = self.n_nodes
        if n == 1:
            return 0.0
        total = 0
        for s in range(n):
            for d in range(n):
                if s != d:
                    total += self.hop_distance(s, d)
        return total / (n * (n - 1))

    def validate_node(self, node: int) -> int:
        """Bounds-check a node id."""
        if not (0 <= node < self.n_nodes):
            raise ValueError(f"node {node} out of range [0, {self.n_nodes})")
        return node

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(n_nodes={self.n_nodes})"


@dataclass(frozen=True)
class _GridShape:
    """Rows × cols factorisation of a node count, as square as possible."""

    rows: int
    cols: int

    @staticmethod
    def for_nodes(n: int) -> "_GridShape":
        side = int(math.isqrt(n))
        while side > 1 and n % side != 0:
            side -= 1
        return _GridShape(rows=side, cols=n // side)


class Mesh2D(Topology):
    """A 2D mesh, the paper's assumed topology ("the most commonly used
    topology in many core CMP studies").

    Nodes are laid out row-major on a ``rows × cols`` grid (as square as the
    node count allows; a perfect square when ``n_nodes`` is one, which is the
    case Eq 8 analyses).  Links connect 4-neighbours; routing is XY
    (dimension-ordered), which on a mesh realises the Manhattan shortest
    path.
    """

    def __init__(self, n_nodes: int):
        super().__init__(n_nodes)
        self.shape = _GridShape.for_nodes(self.n_nodes)

    @property
    def rows(self) -> int:
        return self.shape.rows

    @property
    def cols(self) -> int:
        return self.shape.cols

    def coords(self, node: int) -> tuple[int, int]:
        """Grid coordinates (row, col) of a node id."""
        self.validate_node(node)
        return divmod(node, self.cols)

    def node_at(self, row: int, col: int) -> int:
        """Node id at grid coordinates."""
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise ValueError(f"coordinates ({row}, {col}) outside {self.rows}x{self.cols} grid")
        return row * self.cols + col

    def edges(self) -> Iterator[tuple[int, int]]:
        for r in range(self.rows):
            for c in range(self.cols):
                u = self.node_at(r, c)
                if c + 1 < self.cols:
                    yield (u, self.node_at(r, c + 1))
                if r + 1 < self.rows:
                    yield (u, self.node_at(r + 1, c))

    def link_count(self) -> int:
        # paper: 2·sqrt(nc)·(sqrt(nc)-1) for a square mesh; generally
        # rows·(cols-1) + cols·(rows-1).
        return self.rows * (self.cols - 1) + self.cols * (self.rows - 1)

    def hop_distance(self, src: int, dst: int) -> int:
        (r1, c1), (r2, c2) = self.coords(src), self.coords(dst)
        return abs(r1 - r2) + abs(c1 - c2)

    def average_hops(self) -> float:
        # closed form: E|Δrow| + E|Δcol| with E|Δ| = (k²−1)/(3k) per axis of
        # size k, over ordered pairs of distinct nodes; fall back to the
        # generic exact computation (cheap at CMP scales) to avoid a second
        # formula to maintain.
        return super().average_hops()


class Torus2D(Topology):
    """A 2D torus: mesh plus wraparound links (halves average distance)."""

    def __init__(self, n_nodes: int):
        super().__init__(n_nodes)
        self.shape = _GridShape.for_nodes(self.n_nodes)

    @property
    def rows(self) -> int:
        return self.shape.rows

    @property
    def cols(self) -> int:
        return self.shape.cols

    def coords(self, node: int) -> tuple[int, int]:
        self.validate_node(node)
        return divmod(node, self.cols)

    def edges(self) -> Iterator[tuple[int, int]]:
        # collect into a set: on 2-wide dimensions the wraparound link
        # coincides with the mesh link and must not be double-counted.
        seen: set[tuple[int, int]] = set()
        for r in range(self.rows):
            for c in range(self.cols):
                u = r * self.cols + c
                if self.cols > 1:
                    v = r * self.cols + (c + 1) % self.cols
                    seen.add((min(u, v), max(u, v)))
                if self.rows > 1:
                    v = ((r + 1) % self.rows) * self.cols + c
                    seen.add((min(u, v), max(u, v)))
        yield from sorted(seen)

    def hop_distance(self, src: int, dst: int) -> int:
        (r1, c1), (r2, c2) = self.coords(src), self.coords(dst)
        dr = abs(r1 - r2)
        dc = abs(c1 - c2)
        return min(dr, self.rows - dr) + min(dc, self.cols - dc)


class Ring(Topology):
    """A bidirectional ring (cheap links, long average distance ~ n/4)."""

    def edges(self) -> Iterator[tuple[int, int]]:
        n = self.n_nodes
        if n == 1:
            return
        if n == 2:
            yield (0, 1)
            return
        for u in range(n):
            v = (u + 1) % n
            yield tuple(sorted((u, v)))  # type: ignore[misc]

    def hop_distance(self, src: int, dst: int) -> int:
        self.validate_node(src)
        self.validate_node(dst)
        d = abs(src - dst)
        return min(d, self.n_nodes - d)


class Hypercube(Topology):
    """A binary hypercube: node count must be a power of two.

    Node ids are bit strings; links connect ids differing in one bit, so
    the hop distance is the Hamming distance — log-diameter with
    ``(n/2)·log2 n`` links, the classic middle ground between a mesh and
    a crossbar.
    """

    def __init__(self, n_nodes: int):
        super().__init__(n_nodes)
        if n_nodes & (n_nodes - 1) != 0:
            raise ValueError(f"hypercube needs a power-of-two node count, got {n_nodes}")
        self.dimensions = n_nodes.bit_length() - 1

    def edges(self) -> Iterator[tuple[int, int]]:
        for u in range(self.n_nodes):
            for d in range(self.dimensions):
                v = u ^ (1 << d)
                if u < v:
                    yield (u, v)

    def link_count(self) -> int:
        return (self.n_nodes // 2) * self.dimensions if self.dimensions else 0

    def hop_distance(self, src: int, dst: int) -> int:
        self.validate_node(src)
        self.validate_node(dst)
        return (src ^ dst).bit_count()

    def average_hops(self) -> float:
        # E[Hamming distance] over distinct pairs: d·(n/2)/(n−1) exactly
        n, d = self.n_nodes, self.dimensions
        if n == 1:
            return 0.0
        return d * (n / 2) / (n - 1)


class FullyConnected(Topology):
    """A crossbar / full point-to-point network: one hop everywhere.

    Unbuildable at scale (O(n²) links) but the useful upper bound: with it,
    growcomm stays constant and the communication extension collapses back
    to the computation-only model.
    """

    def edges(self) -> Iterator[tuple[int, int]]:
        for u in range(self.n_nodes):
            for v in range(u + 1, self.n_nodes):
                yield (u, v)

    def hop_distance(self, src: int, dst: int) -> int:
        self.validate_node(src)
        self.validate_node(dst)
        return 0 if src == dst else 1


_NAMED = {
    "mesh": Mesh2D,
    "mesh2d": Mesh2D,
    "torus": Torus2D,
    "ring": Ring,
    "hypercube": Hypercube,
    "crossbar": FullyConnected,
    "full": FullyConnected,
}


def resolve_topology(spec: "str | type[Topology]", n_nodes: int) -> Topology:
    """Build a topology from a name ('mesh', 'torus', 'ring', 'crossbar')
    or a Topology subclass."""
    if isinstance(spec, str):
        key = spec.lower()
        if key not in _NAMED:
            raise ValueError(f"unknown topology {spec!r}; expected one of {sorted(_NAMED)}")
        return _NAMED[key](n_nodes)
    if isinstance(spec, type) and issubclass(spec, Topology):
        return spec(n_nodes)
    raise TypeError(f"spec must be a name or Topology subclass, got {spec!r}")
