"""Process-wide metrics: counters, gauges and histograms with labels.

Zero-dependency, Prometheus-shaped instrumentation primitives.  One
:class:`MetricsRegistry` (the module-level :data:`REGISTRY`) holds every
metric *family*; a family plus one concrete label assignment is a
*series* holding the actual value.  Design constraints, in order:

* **near-zero cost when disabled** — every mutator checks the owning
  registry's ``enabled`` flag first and returns immediately, so an
  instrumented hot path pays one attribute load and one branch.  The hot
  layers additionally batch their accounting (the simulator records one
  set of counters per *run*, not per op), so even the enabled cost is
  amortised to nothing;
* **bounded cardinality** — a family accepts at most
  :data:`MAX_SERIES_PER_FAMILY` distinct label assignments; further ones
  collapse into a single ``{"<label>": "__overflow__"}`` series (and log
  one warning) instead of growing without bound;
* **mergeable snapshots** — :meth:`MetricsRegistry.snapshot` produces
  plain JSON-able dicts and :meth:`MetricsRegistry.merge_snapshot` folds
  such a snapshot back in (counters and histogram buckets add, gauges
  take the incoming value).  This is how worker processes ship their
  simulator metrics back to the engine parent.

Registration is idempotent: asking for an existing family with the same
type and label names returns it; a conflicting re-registration raises.
"""

from __future__ import annotations

import bisect
import os
import threading
from typing import Iterable, Mapping

from repro.util.logging import get_logger

__all__ = [
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "REGISTRY",
    "counter",
    "gauge",
    "histogram",
    "enabled",
    "set_enabled",
    "snapshot",
    "merge_snapshot",
    "reset",
    "DEFAULT_BUCKETS",
    "MAX_SERIES_PER_FAMILY",
]

log = get_logger("obs")

#: per-family cap on distinct label assignments (see module docstring)
MAX_SERIES_PER_FAMILY = 512

#: default histogram bucket upper bounds (seconds-flavoured; pass explicit
#: buckets for other units, e.g. cycles)
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

_OVERFLOW = "__overflow__"


class MetricError(ValueError):
    """Misuse of the metrics API (bad labels, conflicting registration)."""


class _Family:
    """Common machinery: name, declared labels, series keyed by label values."""

    metric_type = "untyped"

    def __init__(self, registry: "MetricsRegistry", name: str, help: str,
                 label_names: tuple):
        self._registry = registry
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)
        self._series: dict[tuple, object] = {}
        self._overflowed = False

    # ── label handling ────────────────────────────────────────────────────

    def _series_key(self, labels: Mapping[str, str]) -> tuple:
        if set(labels) != set(self.label_names):
            raise MetricError(
                f"metric {self.name!r} takes labels {list(self.label_names)}, "
                f"got {sorted(labels)}"
            )
        key = tuple(str(labels[n]) for n in self.label_names)
        if key not in self._series and len(self._series) >= MAX_SERIES_PER_FAMILY:
            if not self._overflowed:
                self._overflowed = True
                log.warning(
                    "metric %s exceeded %d label sets; folding further ones "
                    "into %r", self.name, MAX_SERIES_PER_FAMILY, _OVERFLOW,
                )
            key = tuple(_OVERFLOW for _ in self.label_names)
        return key

    def _labels_of(self, key: tuple) -> dict:
        return dict(zip(self.label_names, key))

    # ── snapshot plumbing (per-type hooks below) ──────────────────────────

    def _new_value(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def _value_to_dict(self, value) -> dict:  # pragma: no cover - overridden
        raise NotImplementedError

    def _merge_value(self, key: tuple, data: dict) -> None:  # pragma: no cover
        raise NotImplementedError

    def to_dict(self) -> dict:
        """JSON-able description of the family and all its series."""
        return {
            "name": self.name,
            "type": self.metric_type,
            "help": self.help,
            "labels": list(self.label_names),
            "series": [
                {"labels": self._labels_of(k), **self._value_to_dict(v)}
                for k, v in sorted(self._series.items())
            ],
        }

    def clear(self) -> None:
        self._series.clear()
        self._overflowed = False


class Counter(_Family):
    """A monotonically increasing value per label set."""

    metric_type = "counter"

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Add ``amount`` (>= 0) to the series selected by ``labels``."""
        if not self._registry.enabled:
            return
        if amount < 0:
            raise MetricError(f"counter {self.name!r} cannot decrease by {amount}")
        key = self._series_key(labels)
        self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        """Current value of one series (0.0 when never incremented)."""
        return float(self._series.get(self._series_key(labels), 0.0))

    def _value_to_dict(self, value) -> dict:
        return {"value": value}

    def _merge_value(self, key: tuple, data: dict) -> None:
        self._series[key] = self._series.get(key, 0.0) + float(data["value"])


class Gauge(_Family):
    """A value that can go up and down (queue depth, cache size)."""

    metric_type = "gauge"

    def set(self, value: float, **labels: str) -> None:
        if not self._registry.enabled:
            return
        self._series[self._series_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if not self._registry.enabled:
            return
        key = self._series_key(labels)
        self._series[key] = self._series.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: str) -> float:
        return float(self._series.get(self._series_key(labels), 0.0))

    def _value_to_dict(self, value) -> dict:
        return {"value": value}

    def _merge_value(self, key: tuple, data: dict) -> None:
        # merging snapshots: the incoming observation is the newer one
        self._series[key] = float(data["value"])


class _HistValue:
    """One histogram series: per-bucket counts plus sum and count."""

    __slots__ = ("bucket_counts", "sum", "count")

    def __init__(self, n_buckets: int):
        self.bucket_counts = [0] * (n_buckets + 1)  # +1 for +Inf
        self.sum = 0.0
        self.count = 0


class Histogram(_Family):
    """Cumulative-bucket histogram (Prometheus ``le`` semantics).

    A value lands in the first bucket whose upper bound is >= the value;
    bucket counts reported by :meth:`to_dict` are cumulative, like the
    Prometheus exposition format.
    """

    metric_type = "histogram"

    def __init__(self, registry, name, help, label_names,
                 buckets: Iterable[float] = DEFAULT_BUCKETS):
        super().__init__(registry, name, help, label_names)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise MetricError(f"histogram {self.name!r} needs at least one bucket")
        if len(set(bounds)) != len(bounds):
            raise MetricError(f"histogram {self.name!r} has duplicate buckets")
        self.buckets = bounds

    def observe(self, value: float, **labels: str) -> None:
        """Record one observation."""
        if not self._registry.enabled:
            return
        key = self._series_key(labels)
        hv = self._series.get(key)
        if hv is None:
            hv = self._series[key] = _HistValue(len(self.buckets))
        hv.bucket_counts[bisect.bisect_left(self.buckets, value)] += 1
        hv.sum += value
        hv.count += 1

    def series_stats(self, **labels: str) -> dict:
        """``{count, sum, mean}`` for one series (zeros when empty)."""
        hv = self._series.get(self._series_key(labels))
        if hv is None:
            return {"count": 0, "sum": 0.0, "mean": 0.0}
        return {
            "count": hv.count,
            "sum": hv.sum,
            "mean": hv.sum / hv.count if hv.count else 0.0,
        }

    def _value_to_dict(self, hv: _HistValue) -> dict:
        cumulative = []
        running = 0
        for c in hv.bucket_counts:
            running += c
            cumulative.append(running)
        return {
            "buckets": {
                **{repr(b): cumulative[i] for i, b in enumerate(self.buckets)},
                "+Inf": cumulative[-1],
            },
            "sum": hv.sum,
            "count": hv.count,
        }

    def _merge_value(self, key: tuple, data: dict) -> None:
        hv = self._series.get(key)
        if hv is None:
            hv = self._series[key] = _HistValue(len(self.buckets))
        # incoming buckets are cumulative; de-cumulate against our bounds
        cum = [int(data["buckets"].get(repr(b), 0)) for b in self.buckets]
        cum.append(int(data["buckets"].get("+Inf", 0)))
        prev = 0
        for i, c in enumerate(cum):
            hv.bucket_counts[i] += max(0, c - prev)
            prev = c
        hv.sum += float(data["sum"])
        hv.count += int(data["count"])


_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


def _env_enabled() -> bool:
    return os.environ.get("REPRO_OBS", "").lower() in ("1", "on", "yes", "true")


class MetricsRegistry:
    """A set of metric families behind one enable switch."""

    def __init__(self, enabled: "bool | None" = None):
        self.enabled = _env_enabled() if enabled is None else bool(enabled)
        self._families: dict[str, _Family] = {}
        self._lock = threading.Lock()

    # ── registration ──────────────────────────────────────────────────────

    def _register(self, cls, name: str, help: str, labels, **kwargs):
        labels = tuple(labels)
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if type(existing) is not cls or existing.label_names != labels:
                    raise MetricError(
                        f"metric {name!r} already registered as "
                        f"{existing.metric_type} with labels "
                        f"{list(existing.label_names)}"
                    )
                return existing
            fam = cls(self, name, help, labels, **kwargs)
            self._families[name] = fam
            return fam

    def counter(self, name: str, help: str = "", labels: tuple = ()) -> Counter:
        """Get or create a counter family."""
        return self._register(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", labels: tuple = ()) -> Gauge:
        """Get or create a gauge family."""
        return self._register(Gauge, name, help, labels)

    def histogram(
        self, name: str, help: str = "", labels: tuple = (),
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        """Get or create a histogram family."""
        return self._register(Histogram, name, help, labels, buckets=buckets)

    def get(self, name: str) -> "_Family | None":
        """The registered family called ``name``, or None."""
        return self._families.get(name)

    # ── state management ──────────────────────────────────────────────────

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop every recorded series (families stay registered)."""
        for fam in self._families.values():
            fam.clear()

    # ── snapshots ─────────────────────────────────────────────────────────

    def snapshot(self) -> list[dict]:
        """JSON-able state of every family that has recorded series."""
        return [
            fam.to_dict()
            for _, fam in sorted(self._families.items())
            if fam._series
        ]

    def merge_snapshot(self, snap: "Iterable[dict]") -> None:
        """Fold a :meth:`snapshot` (e.g. from a worker process) into this
        registry: counters and histograms add, gauges take the incoming
        value.  Unknown families are created on the fly; malformed entries
        are skipped (a lost metric must never lose a result)."""
        for fam_dict in snap:
            try:
                cls = _TYPES[fam_dict["type"]]
                kwargs = {}
                if cls is Histogram:
                    bounds = [
                        float(b)
                        for s in fam_dict.get("series", [])
                        for b in s.get("buckets", {})
                        if b != "+Inf"
                    ]
                    if bounds:
                        kwargs["buckets"] = sorted(set(bounds))
                fam = self._register(
                    cls, fam_dict["name"], fam_dict.get("help", ""),
                    tuple(fam_dict.get("labels", ())), **kwargs,
                )
                for s in fam_dict.get("series", []):
                    key = fam._series_key(dict(s.get("labels", {})))
                    fam._merge_value(key, s)
            except (KeyError, TypeError, ValueError, MetricError) as exc:
                log.warning("skipping unmergeable metric %r: %s",
                            fam_dict if isinstance(fam_dict, dict) else "?", exc)


#: the process-wide default registry (enabled via REPRO_OBS=1 or
#: :func:`set_enabled`; the CLI's ``--metrics-out`` flag enables it too)
REGISTRY = MetricsRegistry()


def counter(name: str, help: str = "", labels: tuple = ()) -> Counter:
    """Get or create a counter in the default registry."""
    return REGISTRY.counter(name, help, labels)


def gauge(name: str, help: str = "", labels: tuple = ()) -> Gauge:
    """Get or create a gauge in the default registry."""
    return REGISTRY.gauge(name, help, labels)


def histogram(name: str, help: str = "", labels: tuple = (),
              buckets: Iterable[float] = DEFAULT_BUCKETS) -> Histogram:
    """Get or create a histogram in the default registry."""
    return REGISTRY.histogram(name, help, labels, buckets)


def enabled() -> bool:
    """Whether the default registry is recording."""
    return REGISTRY.enabled


def set_enabled(on: bool) -> None:
    """Turn the default registry (and span recording) on or off."""
    REGISTRY.enabled = bool(on)


def snapshot() -> list[dict]:
    """Snapshot of the default registry."""
    return REGISTRY.snapshot()


def merge_snapshot(snap: "Iterable[dict]") -> None:
    """Merge a snapshot into the default registry."""
    REGISTRY.merge_snapshot(snap)


def reset() -> None:
    """Reset the default registry's series."""
    REGISTRY.reset()
