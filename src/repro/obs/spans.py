"""Lightweight span tracing: nested, attributed timing scopes.

A *span* is one timed scope — ``with span("simx.run", program=name):`` —
with parent/child nesting tracked through a :mod:`contextvars` variable,
so spans nest correctly across threads and (because the variable is
task-local) async contexts.  Completed spans land in a
:class:`SpanRecorder` in completion order, which puts every child before
its parent — the natural order for streaming JSONL.

Recording follows the metrics enable switch
(:func:`repro.obs.metrics.enabled`): a disabled ``span()`` is a single
branch and yields ``None``.  Span ids are sequential per process (no
randomness — deterministic tests, resumable runs); worker-process spans
merged into a parent recorder keep their ids but gain a ``worker``
attribute, so offspring of different processes cannot be confused.
"""

from __future__ import annotations

import contextlib
import contextvars
import itertools
import time
from dataclasses import dataclass, field

from repro.obs import metrics as _metrics

__all__ = ["Span", "SpanRecorder", "RECORDER", "span", "span_summary"]

#: (span_id, depth) of the innermost open span, or None at top level
_current: "contextvars.ContextVar[tuple | None]" = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)


@dataclass(frozen=True)
class Span:
    """One completed timing scope."""

    name: str
    span_id: int
    parent_id: "int | None"
    depth: int
    start: float        # wall-clock epoch seconds (time.time)
    seconds: float      # monotonic duration (time.perf_counter delta)
    attrs: dict = field(default_factory=dict)
    error: "str | None" = None

    def to_dict(self) -> dict:
        d = {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "start": self.start,
            "seconds": self.seconds,
            "attrs": self.attrs,
        }
        if self.error is not None:
            d["error"] = self.error
        return d


class SpanRecorder:
    """Collects completed spans (shared by every ``span()`` by default)."""

    def __init__(self):
        self.spans: list[Span] = []
        self._ids = itertools.count(1)

    def record(self, s: Span) -> None:
        self.spans.append(s)

    def clear(self) -> None:
        self.spans.clear()

    def to_dicts(self) -> list[dict]:
        return [s.to_dict() for s in self.spans]

    def merge_dicts(self, span_dicts, **extra_attrs) -> None:
        """Fold spans shipped from another process in (adds ``extra_attrs``,
        e.g. ``worker=3``, to disambiguate their ids)."""
        for d in span_dicts:
            try:
                self.record(Span(
                    name=str(d["name"]),
                    span_id=int(d["span_id"]),
                    parent_id=d.get("parent_id"),
                    depth=int(d.get("depth", 0)),
                    start=float(d.get("start", 0.0)),
                    seconds=float(d.get("seconds", 0.0)),
                    attrs={**d.get("attrs", {}), **extra_attrs},
                    error=d.get("error"),
                ))
            except (KeyError, TypeError, ValueError):
                continue  # a malformed foreign span is dropped, not fatal


#: the process-wide default recorder
RECORDER = SpanRecorder()


@contextlib.contextmanager
def span(name: str, recorder: "SpanRecorder | None" = None, **attrs):
    """Time a scope as a span; nests under the innermost open span.

    Yields the live span's id (or ``None`` when observability is
    disabled).  Exceptions propagate; the span records the exception type
    in its ``error`` field before re-raising.
    """
    if not _metrics.REGISTRY.enabled:
        yield None
        return
    rec = RECORDER if recorder is None else recorder
    parent = _current.get()
    span_id = next(rec._ids)
    depth = 0 if parent is None else parent[1] + 1
    token = _current.set((span_id, depth))
    start_wall = time.time()
    t0 = time.perf_counter()
    error = None
    try:
        yield span_id
    except BaseException as exc:
        error = type(exc).__name__
        raise
    finally:
        _current.reset(token)
        rec.record(Span(
            name=name,
            span_id=span_id,
            parent_id=None if parent is None else parent[0],
            depth=depth,
            start=start_wall,
            seconds=time.perf_counter() - t0,
            attrs=attrs,
            error=error,
        ))


def span_summary(recorder: "SpanRecorder | None" = None) -> dict:
    """Aggregate ``{name: {count, total_seconds, max_seconds}}`` rollup."""
    rec = RECORDER if recorder is None else recorder
    out: dict[str, dict] = {}
    for s in rec.spans:
        agg = out.setdefault(s.name, {"count": 0, "total_seconds": 0.0,
                                      "max_seconds": 0.0})
        agg["count"] += 1
        agg["total_seconds"] += s.seconds
        agg["max_seconds"] = max(agg["max_seconds"], s.seconds)
    for agg in out.values():
        agg["total_seconds"] = round(agg["total_seconds"], 6)
        agg["max_seconds"] = round(agg["max_seconds"], 6)
    return out
