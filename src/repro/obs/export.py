"""Exporters: Prometheus text format, JSONL snapshots, and the ``repro
stats`` renderer.

Three output shapes for one registry + span recorder:

* :func:`render_prometheus` — the Prometheus text exposition format
  (``# HELP`` / ``# TYPE`` headers, ``_bucket``/``_sum``/``_count``
  histogram series), so a scrape endpoint or a pushgateway shim needs no
  further translation;
* :func:`write_jsonl` / :func:`read_jsonl` — one JSON object per line:
  a ``meta`` header, then one ``metric`` line per family, then one
  ``span`` line per completed span (children before parents — completion
  order).  This is what ``--metrics-out`` produces and ``repro stats``
  consumes;
* :func:`render_stats` — a human-readable terminal summary of a JSONL
  file (or live registry state).

:func:`drain` and :func:`merge_delta` are the worker-process shuttle:
a worker drains its registry+recorder into a plain dict after each work
unit, ships it over the result queue, and the parent folds it back in.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.obs import metrics as _metrics
from repro.obs import spans as _spans
from repro.util.tables import TextTable

__all__ = [
    "render_prometheus",
    "write_jsonl",
    "read_jsonl",
    "render_stats",
    "drain",
    "merge_delta",
]

_JSONL_SCHEMA = 1


def _format_value(v: float) -> str:
    """Prometheus-style number: integers without the trailing ``.0``."""
    f = float(v)
    return str(int(f)) if f.is_integer() else repr(f)


def _escape_label_value(value: object) -> str:
    """Escape a label value per the Prometheus text exposition format:
    backslash, double-quote and line feed (in that order — escaping the
    backslash first keeps the other two escapes unambiguous)."""
    return (str(value)
            .replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n"))


def _label_str(labels: dict, extra: "dict | None" = None) -> str:
    merged = {**labels, **(extra or {})}
    if not merged:
        return ""
    inner = ",".join(f'{k}="{_escape_label_value(v)}"'
                     for k, v in merged.items())
    return "{" + inner + "}"


def render_prometheus(registry: "_metrics.MetricsRegistry | None" = None) -> str:
    """The registry's state in the Prometheus text exposition format."""
    reg = _metrics.REGISTRY if registry is None else registry
    lines: list[str] = []
    for fam in reg.snapshot():
        name = fam["name"]
        if fam["help"]:
            lines.append(f"# HELP {name} {fam['help']}")
        lines.append(f"# TYPE {name} {fam['type']}")
        for s in fam["series"]:
            labels = s["labels"]
            if fam["type"] == "histogram":
                for bound, count in s["buckets"].items():
                    le = bound if bound == "+Inf" else _format_value(float(bound))
                    lines.append(
                        f"{name}_bucket{_label_str(labels, {'le': le})} {count}"
                    )
                lines.append(f"{name}_sum{_label_str(labels)} "
                             f"{_format_value(s['sum'])}")
                lines.append(f"{name}_count{_label_str(labels)} {s['count']}")
            else:
                lines.append(f"{name}{_label_str(labels)} "
                             f"{_format_value(s['value'])}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_jsonl(
    path: "str | Path",
    registry: "_metrics.MetricsRegistry | None" = None,
    recorder: "_spans.SpanRecorder | None" = None,
    meta: "dict | None" = None,
) -> Path:
    """Write metrics then spans as JSONL; returns the path."""
    reg = _metrics.REGISTRY if registry is None else registry
    rec = _spans.RECORDER if recorder is None else recorder
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    with p.open("w") as fh:
        header = {"type": "meta", "schema": _JSONL_SCHEMA, "written_at": time.time()}
        if meta:
            header.update(meta)
        fh.write(json.dumps(header, sort_keys=True, default=str) + "\n")
        for fam in reg.snapshot():
            record = dict(fam)
            record["metric_type"] = record.pop("type")
            fh.write(json.dumps({"type": "metric", **record},
                                sort_keys=True, default=str) + "\n")
        for s in rec.to_dicts():
            fh.write(json.dumps({"type": "span", **s},
                                sort_keys=True, default=str) + "\n")
    return p


def read_jsonl(path: "str | Path") -> dict:
    """Parse a :func:`write_jsonl` file into ``{meta, metrics, spans}``.

    Unparsable lines are skipped (a truncated trailing line must not make
    the whole file unreadable)."""
    meta: dict = {}
    metrics: list[dict] = []
    spans: list[dict] = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
        except ValueError:
            continue
        kind = obj.get("type")
        if kind == "meta":
            meta = obj
        elif kind == "metric":
            fam = dict(obj)
            fam.pop("type", None)
            fam["type"] = fam.pop("metric_type", "untyped")
            metrics.append(fam)
        elif kind == "span":
            spans.append(obj)
    return {"meta": meta, "metrics": metrics, "spans": spans}


def _histogram_row(name: str, labels: dict, s: dict) -> list:
    count = int(s.get("count", 0))
    total = float(s.get("sum", 0.0))
    label_part = _label_str(labels)
    return [
        f"{name}{label_part}",
        count,
        round(total, 4),
        round(total / count, 6) if count else 0.0,
    ]


def render_stats(data: dict) -> str:
    """Terminal summary of a :func:`read_jsonl` result."""
    parts: list[str] = []
    counters = TextTable(title="counters / gauges", columns=["metric", "value"])
    hists = TextTable(title="histograms",
                      columns=["metric", "count", "sum", "mean"])
    n_counter_rows = n_hist_rows = 0
    for fam in data.get("metrics", ()):
        name = fam.get("name", "?")
        for s in fam.get("series", ()):
            labels = s.get("labels", {})
            if fam.get("type") == "histogram":
                hists.add_row(_histogram_row(name, labels, s))
                n_hist_rows += 1
            else:
                value = s.get("value", 0.0)
                counters.add_row([
                    f"{name}{_label_str(labels)}",
                    int(value) if float(value).is_integer() else round(value, 6),
                ])
                n_counter_rows += 1
    if n_counter_rows:
        parts.append(counters.render())
    if n_hist_rows:
        parts.append(hists.render())

    spans = data.get("spans", ())
    if spans:
        by_name: dict[str, dict] = {}
        for s in spans:
            agg = by_name.setdefault(s.get("name", "?"),
                                     {"count": 0, "total": 0.0, "max": 0.0})
            agg["count"] += 1
            agg["total"] += float(s.get("seconds", 0.0))
            agg["max"] = max(agg["max"], float(s.get("seconds", 0.0)))
        t = TextTable(title="spans",
                      columns=["span", "count", "total s", "mean s", "max s"])
        for name, agg in sorted(by_name.items(),
                                key=lambda kv: -kv[1]["total"]):
            t.add_row([
                name, agg["count"], round(agg["total"], 4),
                round(agg["total"] / agg["count"], 6), round(agg["max"], 6),
            ])
        parts.append(t.render())

        slowest = sorted(spans, key=lambda s: -float(s.get("seconds", 0.0)))[:10]
        t2 = TextTable(title="slowest spans",
                       columns=["span", "seconds", "attrs"])
        for s in slowest:
            indent = "  " * int(s.get("depth", 0))
            attrs = s.get("attrs", {})
            attr_str = " ".join(f"{k}={v}" for k, v in attrs.items())
            t2.add_row([
                f"{indent}{s.get('name', '?')}",
                round(float(s.get("seconds", 0.0)), 6),
                attr_str[:60],
            ])
        parts.append(t2.render())

    if not parts:
        return "(no metrics or spans recorded)"
    return "\n\n".join(parts)


# ── worker-process shuttle ────────────────────────────────────────────────


def drain() -> "dict | None":
    """Snapshot-and-reset the default registry and span recorder.

    Returns ``None`` when observability is disabled or nothing was
    recorded, so the common case ships no extra bytes over the result
    queue."""
    if not _metrics.REGISTRY.enabled:
        return None
    snap = _metrics.snapshot()
    span_dicts = _spans.RECORDER.to_dicts()
    if not snap and not span_dicts:
        return None
    _metrics.reset()
    _spans.RECORDER.clear()
    return {"metrics": snap, "spans": span_dicts}


def merge_delta(delta: "dict | None", **span_attrs) -> None:
    """Fold a :func:`drain` result (e.g. from a worker) into the default
    registry/recorder; ``span_attrs`` (e.g. ``worker=3``) are added to
    every merged span."""
    if not delta:
        return
    _metrics.merge_snapshot(delta.get("metrics", ()))
    _spans.RECORDER.merge_dicts(delta.get("spans", ()), **span_attrs)
