"""``repro.obs`` — zero-dependency observability: metrics, spans, exporters.

The cross-cutting measurement layer for the whole reproduction (see
``docs/observability.md``):

* :mod:`repro.obs.metrics` — a process-wide :class:`MetricsRegistry` of
  counters, gauges and labelled histograms, off by default (enable with
  ``REPRO_OBS=1``, :func:`set_enabled`, or the CLI's ``--metrics-out``);
* :mod:`repro.obs.spans` — nested ``span("simx.run", attrs=...)`` timing
  scopes recorded in completion order;
* :mod:`repro.obs.export` — a Prometheus text exporter, the JSONL
  snapshot format behind ``--metrics-out`` / ``repro stats``, and the
  drain/merge shuttle that ships worker-process metrics back to the
  engine parent.

Instrumented layers: the simulator (per-run op/burst/cycle accounting),
the engine scheduler and worker pools (unit latency, queue depth, event
counters), the sweep cache tiers (hit/miss rates) and the experiment
drivers (per-figure wall time).  Everything is a no-op costing one
branch while disabled — enforced by ``tests/obs/test_overhead.py`` and
``benchmarks/test_obs_overhead.py``.
"""

from repro.obs.export import (
    drain,
    merge_delta,
    read_jsonl,
    render_prometheus,
    render_stats,
    write_jsonl,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    counter,
    enabled,
    gauge,
    histogram,
    merge_snapshot,
    reset,
    set_enabled,
    snapshot,
)
from repro.obs.spans import RECORDER, Span, SpanRecorder, span, span_summary

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "RECORDER",
    "REGISTRY",
    "Span",
    "SpanRecorder",
    "counter",
    "drain",
    "enabled",
    "gauge",
    "histogram",
    "merge_delta",
    "merge_snapshot",
    "read_jsonl",
    "render_prometheus",
    "render_stats",
    "reset",
    "set_enabled",
    "snapshot",
    "span",
    "span_summary",
    "write_jsonl",
]
