"""Hardware-validation substrate (the paper's 2-socket Xeon substitute).

The paper validates the growing-serial-section observation on a real
two-socket Xeon E5520 machine (8 cores).  This package provides:

* :mod:`repro.hardware.machine_model` — a deterministic analytical model of
  that machine (NUMA sockets, cache-to-cache transfer costs, barrier
  overheads) that converts a workload's phase accounting into wall-clock
  times.  Default backend: reproducible everywhere, including CI.
* :mod:`repro.hardware.executor` — runs a workload either on the machine
  model or, optionally, on the *actual* host using ``multiprocessing``
  with real timers (``backend="process"``), for users who want Fig 2(c) on
  their own silicon.
* :mod:`repro.hardware.calibration` — compares simulator- and
  hardware-derived growth curves and parameters.
"""

from repro.hardware.calibration import compare_growth_curves
from repro.hardware.executor import execute_workload
from repro.hardware.machine_model import HardwareMachineModel, XEON_E5520

__all__ = [
    "HardwareMachineModel",
    "XEON_E5520",
    "execute_workload",
    "compare_growth_curves",
]
