"""Phase-timed workload execution on (modelled or real) hardware.

Two backends:

* ``"model"`` (default) — deterministic: the workload's phase accounting is
  priced by a :class:`~repro.hardware.machine_model.HardwareMachineModel`.
  This is what tests and the Fig 2(c) benchmark use.
* ``"process"`` — the real thing: the parallel phase runs across a
  ``multiprocessing`` pool with wall-clock timers around each phase.
  Available for kmeans/fuzzy (their parallel kernels pickle cleanly);
  results depend on the host and are inherently noisy, so nothing in the
  test suite asserts on their magnitudes.
"""

from __future__ import annotations

import time
from typing import Iterable, Mapping

import numpy as np

from repro.hardware.machine_model import XEON_E5520, HardwareMachineModel
from repro.workloads.base import (
    PHASE_INIT,
    PHASE_PARALLEL,
    PHASE_REDUCTION,
    PHASE_SERIAL,
    ClusteringWorkloadBase,
)
from repro.workloads.instrument import PhaseBreakdown

__all__ = ["execute_workload", "model_breakdown", "process_breakdown"]


def model_breakdown(
    workload: ClusteringWorkloadBase,
    n_threads: int,
    model: HardwareMachineModel = XEON_E5520,
) -> PhaseBreakdown:
    """Run the workload and price its phases with the machine model."""
    if n_threads > model.n_cores:
        raise ValueError(
            f"{n_threads} threads exceed the modelled machine's {model.n_cores} cores"
        )
    execution = workload.execute(n_threads)
    totals = {PHASE_INIT: 0.0, PHASE_PARALLEL: 0.0, PHASE_REDUCTION: 0.0, PHASE_SERIAL: 0.0}
    wall = 0.0
    for work in execution.phases:
        t = model.phase_wall_time_ns(work)
        wall += t
        if work.is_serial():
            # serial phases: the master's busy time is the quantity the
            # paper's extraction uses (the barrier share goes to parallel
            # overhead, not the serial fraction)
            totals[work.phase] += model.thread_time_ns(work, 0)
        else:
            totals[work.phase] += t
    return PhaseBreakdown(
        n_threads=n_threads,
        total=wall,
        init=totals[PHASE_INIT],
        parallel=totals[PHASE_PARALLEL],
        reduction=totals[PHASE_REDUCTION],
        serial=totals[PHASE_SERIAL],
    )


def _kmeans_chunk(args):
    """Worker for the real-process backend (module-level for pickling)."""
    points, centers = args
    d2 = ((points[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
    assign = np.argmin(d2, axis=1)
    C = centers.shape[0]
    partial = np.zeros_like(centers)
    np.add.at(partial, assign, points)
    counts = np.bincount(assign, minlength=C).astype(np.float64)
    return partial, counts


def process_breakdown(workload, n_threads: int, iterations: int = 5) -> PhaseBreakdown:
    """Run a kmeans-style workload on the actual host with real timers.

    Only supports workloads exposing ``dataset`` with points and
    ``n_centers`` (kmeans/fuzzy); the reduction is the serial
    (Algorithm 1) strategy, timed on the parent process.
    """
    import multiprocessing as mp

    ds = workload.dataset
    rng = np.random.default_rng(getattr(workload, "seed", 0))

    t0 = time.perf_counter()
    idx = rng.choice(ds.n_points, size=ds.n_centers, replace=False)
    centers = ds.points[idx].copy()
    init_time = time.perf_counter() - t0

    slices = ClusteringWorkloadBase.partition(ds.n_points, n_threads)
    parallel_time = reduction_time = serial_time = 0.0
    # fork (where available) avoids re-importing __main__, which breaks
    # for interactive/stdin parents; spawn is the portable fallback
    method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
    ctx = mp.get_context(method)
    with ctx.Pool(processes=n_threads) as pool:
        for _ in range(iterations):
            chunks = [(ds.points[sl], centers) for sl in slices]
            t0 = time.perf_counter()
            results = pool.map(_kmeans_chunk, chunks)
            parallel_time += time.perf_counter() - t0

            t0 = time.perf_counter()
            total = np.zeros_like(centers)
            counts = np.zeros(ds.n_centers)
            for partial, pc in results:  # Algorithm 1: linear merge
                total += partial
                counts += pc
            reduction_time += time.perf_counter() - t0

            t0 = time.perf_counter()
            centers = total / np.maximum(counts, 1.0)[:, None]
            serial_time += time.perf_counter() - t0

    total_time = init_time + parallel_time + reduction_time + serial_time
    return PhaseBreakdown(
        n_threads=n_threads,
        total=total_time,
        init=init_time,
        parallel=parallel_time,
        reduction=reduction_time,
        serial=serial_time,
    )


def execute_workload(
    workload: ClusteringWorkloadBase,
    thread_counts: Iterable[int],
    backend: str = "model",
    model: HardwareMachineModel = XEON_E5520,
) -> Mapping[int, PhaseBreakdown]:
    """Phase breakdowns per thread count, on the chosen backend.

    This is the hardware-side equivalent of sweeping the simulator; feed
    the result to :func:`repro.workloads.instrument.extract_parameters` or
    :func:`~repro.workloads.instrument.serial_growth_curve`.
    """
    if backend not in ("model", "process"):
        raise ValueError(f"backend must be 'model' or 'process', got {backend!r}")
    out: dict[int, PhaseBreakdown] = {}
    for p in thread_counts:
        if backend == "model":
            out[p] = model_breakdown(workload, p, model)
        else:
            out[p] = process_breakdown(workload, p)
    return out
