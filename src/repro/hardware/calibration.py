"""Cross-validation of simulator and hardware growth curves.

Fig 2(c) of the paper exists to show that the growing-serial-section
behaviour seen in simulation also appears on real hardware.  This module
quantifies the agreement between two serial-growth curves (simulator vs
hardware-model or real-process measurements).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

__all__ = ["GrowthComparison", "compare_growth_curves"]


@dataclass(frozen=True)
class GrowthComparison:
    """Agreement metrics between two normalised serial-growth curves."""

    cores: tuple[int, ...]
    curve_a: tuple[float, ...]
    curve_b: tuple[float, ...]

    @property
    def correlation(self) -> float:
        """Pearson correlation of the two curves (1.0 = same shape)."""
        a, b = np.asarray(self.curve_a), np.asarray(self.curve_b)
        if a.std() == 0 or b.std() == 0:
            return 1.0 if np.allclose(a, b) else 0.0
        return float(np.corrcoef(a, b)[0, 1])

    @property
    def max_relative_deviation(self) -> float:
        """max |a − b| / b over the sweep."""
        a, b = np.asarray(self.curve_a), np.asarray(self.curve_b)
        return float(np.max(np.abs(a - b) / np.maximum(b, 1e-12)))

    def both_grow(self) -> bool:
        """True when both curves are (weakly) increasing — the qualitative
        claim Fig 2(c) validates."""
        a, b = np.asarray(self.curve_a), np.asarray(self.curve_b)
        return bool(np.all(np.diff(a) >= -1e-9) and np.all(np.diff(b) >= -1e-9))


def compare_growth_curves(
    curve_a: Mapping[int, float], curve_b: Mapping[int, float]
) -> GrowthComparison:
    """Compare two {core count → normalised serial time} curves on their
    common core counts."""
    common = sorted(set(curve_a) & set(curve_b))
    if len(common) < 2:
        raise ValueError("need at least two common core counts to compare")
    return GrowthComparison(
        cores=tuple(common),
        curve_a=tuple(float(curve_a[c]) for c in common),
        curve_b=tuple(float(curve_b[c]) for c in common),
    )
