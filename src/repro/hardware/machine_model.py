"""A deterministic analytical model of a small NUMA multiprocessor.

Converts :class:`~repro.workloads.base.PhaseWork` accounting into
nanosecond-scale wall-clock times for a machine like the paper's testbed
(two Xeon E5520 sockets, four cores each):

* compute bursts retire at ``frequency × ipc`` instructions per second;
* private memory traffic streams at an effective per-access cost
  (hardware prefetchers make sequential scans cheap);
* *shared* reads — lines last written by another core — pay a
  cache-to-cache transfer, with a larger penalty when the owner sits on
  the other socket (QPI hop);
* every fork-join phase boundary costs a barrier latency that grows
  logarithmically with the thread count.

The model is intentionally simple: the paper only needs the *relative*
growth of serial-section time with core count, which this reproduces
deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import check_positive, check_positive_int
from repro.workloads.base import PhaseWork

__all__ = ["HardwareMachineModel", "XEON_E5520"]


@dataclass(frozen=True)
class HardwareMachineModel:
    """Timing parameters of a small NUMA machine (times in nanoseconds).

    Parameters
    ----------
    n_sockets / cores_per_socket:
        Topology; threads are packed socket-first (0..3 on socket 0, ...).
    frequency_ghz / ipc:
        Sustained instruction throughput per core.
    private_access_ns:
        Effective cost of a private (streamed, prefetched) memory access.
    local_c2c_ns / remote_c2c_ns:
        Cache-to-cache transfer cost within a socket / across sockets.
    barrier_base_ns:
        Per-round cost of a fork-join barrier (multiplied by log2(p)+1).
    elements_per_line:
        Memory-operation counts are per float64 element; transfers move
        whole 64-byte cache lines, so per-element costs are the line costs
        divided by this (8 for float64).
    """

    n_sockets: int = 2
    cores_per_socket: int = 4
    frequency_ghz: float = 2.26
    ipc: float = 2.0
    private_access_ns: float = 1.2
    local_c2c_ns: float = 25.0
    remote_c2c_ns: float = 95.0
    barrier_base_ns: float = 400.0
    elements_per_line: int = 8

    def __post_init__(self) -> None:
        check_positive_int(self.n_sockets, "n_sockets")
        check_positive_int(self.cores_per_socket, "cores_per_socket")
        check_positive(self.frequency_ghz, "frequency_ghz")
        check_positive(self.ipc, "ipc")
        check_positive(self.private_access_ns, "private_access_ns")
        check_positive(self.local_c2c_ns, "local_c2c_ns")
        check_positive(self.remote_c2c_ns, "remote_c2c_ns")
        check_positive(self.barrier_base_ns, "barrier_base_ns")

    @property
    def n_cores(self) -> int:
        return self.n_sockets * self.cores_per_socket

    def socket_of(self, thread_id: int) -> int:
        """Socket a thread is pinned to (packed placement)."""
        return (thread_id // self.cores_per_socket) % self.n_sockets

    def instruction_time_ns(self, instructions: int) -> float:
        """Time to retire a compute burst."""
        return instructions / (self.frequency_ghz * self.ipc)

    def shared_access_ns(self, reader: int, n_threads: int) -> float:
        """Average cost of one coherence-miss read for ``reader``, with
        owners spread uniformly over the other active threads."""
        if n_threads <= 1:
            return self.private_access_ns
        others = [t for t in range(n_threads) if t != reader]
        total = sum(
            self.remote_c2c_ns
            if self.socket_of(t) != self.socket_of(reader)
            else self.local_c2c_ns
            for t in others
        )
        return total / len(others)

    def thread_time_ns(self, work: PhaseWork, thread_id: int) -> float:
        """Busy time of one thread inside one phase."""
        instr = work.per_thread_instructions[thread_id]
        reads = work.per_thread_reads[thread_id]
        writes = work.per_thread_writes[thread_id]
        shared = work.shared_reads[thread_id] if work.shared_reads else 0
        private_ops = max(0, reads - shared) + writes
        t = self.instruction_time_ns(instr)
        t += private_ops * self.private_access_ns
        # coherence misses are paid once per cache line, not per element
        t += (
            shared
            * self.shared_access_ns(thread_id, work.n_threads)
            / self.elements_per_line
        )
        return t

    def phase_wall_time_ns(self, work: PhaseWork) -> float:
        """Wall-clock time of one fork-join phase (slowest thread plus the
        closing barrier when more than one thread participates)."""
        slowest = max(
            self.thread_time_ns(work, t) for t in range(work.n_threads)
        )
        if work.n_threads > 1:
            import math

            rounds = math.ceil(math.log2(work.n_threads)) + 1
            slowest += self.barrier_base_ns * rounds
        return slowest


#: The paper's validation machine: two 4-core Xeon E5520 sockets.
XEON_E5520 = HardwareMachineModel()
