"""repro — reproduction of *Implications of Merging Phases on Scalability of
Multi-core Architectures* (Manivannan, Juurlink, Stenström; ICPP 2011).

The package has four layers:

* :mod:`repro.core` — the paper's analytical models (Eqs 1–8): Amdahl,
  Hill–Marty, and the merging-phase / communication extensions.
* :mod:`repro.simx` — a discrete-event CMP simulator (the SESC substitute)
  with caches, MESI coherence and per-phase cycle accounting.
* :mod:`repro.workloads` — MineBench-style clustering workloads (kmeans,
  fuzzy c-means, HOP) with instrumented parallel/merge phase structure,
  plus dataset generators and reduction strategies.
* :mod:`repro.experiments` — drivers that regenerate every table and figure
  of the paper's evaluation (see DESIGN.md for the index).

Quickstart
----------
>>> import repro
>>> params = repro.AppParams(f=0.99, fcon_share=0.60, fored_share=0.80)
>>> design = repro.merging.best_symmetric(params, n=256)
>>> round(design.speedup, 1), design.r
(36.2, 32.0)
"""

from repro.core import (
    amdahl,
    communication,
    hill_marty,
    measured,
    merging,
    optimizer,
)
from repro.core.classes import TABLE3_CLASSES, AppClass
from repro.core.params import TABLE2, TABLE4, AppParams, MeasuredParams

__version__ = "1.0.0"

__all__ = [
    "amdahl",
    "communication",
    "hill_marty",
    "measured",
    "merging",
    "optimizer",
    "AppParams",
    "MeasuredParams",
    "AppClass",
    "TABLE2",
    "TABLE3_CLASSES",
    "TABLE4",
    "__version__",
]
