"""Deterministic fault injection for the engine's crash-safety contract.

The crash-safe run machinery (journal, drain, resume) is only as good as
the failures it has been proven against, so this module packages every
failure mode the engine claims to survive as a *seeded, reproducible*
injector.  The chaos suite (``tests/chaos/``) and the CI ``chaos`` job
drive these to assert the headline property: an interrupted run, resumed
with ``--resume``, produces **byte-identical** reports to an
uninterrupted one.

Injectors
---------
* **worker kill / unit hang** — executors (registered under the
  ``chaos-kill-once`` / ``chaos-hang-once`` kinds) that SIGKILL their
  own worker process or hang past the unit timeout on the first attempt
  and succeed on the retry;
* **corrupted or truncated files** — :func:`corrupt_file` and
  :func:`truncate_tail` damage sweep-store entries and journal tails the
  way real crashes and bad disks do (the read sides must treat both as
  misses, never as errors);
* **cache-write failure** — :class:`FlakyStore` wraps a
  :class:`~repro.experiments.store.SweepStore` and deterministically
  drops chosen ``put`` calls, simulating a full disk (the run must still
  complete, and the journal must still make it resumable);
* **parent-process death** — setting ``REPRO_CHAOS_KILL_AT_SETTLE=<n>``
  in a subprocess's environment makes
  :func:`maybe_kill_on_settle` SIGKILL the whole process immediately
  after the *n*-th journal record is durable, which is the harshest
  possible interruption point the resume path must recover from;
* **network faults** — :class:`NetChaos` plans per-result misbehaviour
  for a remote worker (:mod:`repro.engine.remote`): dropped result
  frames (the lease must expire and be re-issued), duplicated frames
  (the coordinator must dedupe by unit key), torn frames (half a frame
  then a dead connection) and delayed sends (slow workers).  Workers
  take it via ``repro worker --chaos-net SPEC``.

Everything takes an explicit seed (:class:`Chaos` wraps
``random.Random``) so a failing chaos scenario replays exactly.
"""

from __future__ import annotations

import os
import random
import signal
import time
from pathlib import Path
from typing import Iterable, Sequence

from repro.engine.units import register_executor

__all__ = [
    "Chaos",
    "FlakyStore",
    "NetChaos",
    "KILL_AT_SETTLE_ENV",
    "corrupt_file",
    "truncate_tail",
    "corrupt_store_entry",
    "maybe_kill_on_settle",
    "KILL_ONCE",
    "HANG_ONCE",
]

#: environment variable: SIGKILL the process after this many journal settles
KILL_AT_SETTLE_ENV = "REPRO_CHAOS_KILL_AT_SETTLE"


class Chaos:
    """Seeded decision source so every injected fault is replayable."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.rng = random.Random(seed)

    def settle_point(self, n_units: int) -> int:
        """A settle count to die at, strictly inside the run (1..n-1)."""
        if n_units < 2:
            return 1
        return self.rng.randrange(1, n_units)

    def pick(self, seq: Sequence):
        """One deterministic choice from a sequence."""
        return seq[self.rng.randrange(len(seq))]

    def indices(self, n: int, k: int) -> "set[int]":
        """``k`` distinct indices out of ``n`` (for choosing victims)."""
        k = max(0, min(k, n))
        return set(self.rng.sample(range(n), k))


# ── file corruption ────────────────────────────────────────────────────────


def corrupt_file(path: "str | Path", mode: str = "truncate", seed: int = 0) -> Path:
    """Damage a file the way crashes and bit rot do.

    ``truncate`` cuts the file at a seeded interior point (a half-written
    entry), ``garbage`` overwrites a seeded slice with junk bytes (bit
    rot), ``empty`` leaves a zero-byte file (an interrupted create).
    """
    path = Path(path)
    data = path.read_bytes()
    rng = random.Random(seed)
    if mode == "truncate":
        cut = rng.randrange(1, len(data)) if len(data) > 1 else 0
        path.write_bytes(data[:cut])
    elif mode == "garbage":
        if data:
            start = rng.randrange(len(data))
            end = min(len(data), start + max(1, len(data) // 4))
            junk = bytes(rng.randrange(256) for _ in range(end - start))
            path.write_bytes(data[:start] + junk + data[end:])
    elif mode == "empty":
        path.write_bytes(b"")
    else:
        raise ValueError(f"unknown corruption mode {mode!r}; "
                         "expected truncate|garbage|empty")
    return path


def truncate_tail(path: "str | Path", nbytes: int = 7) -> Path:
    """Cut the last ``nbytes`` off a file — the exact shape of a journal
    whose writer was killed mid-append."""
    path = Path(path)
    data = path.read_bytes()
    path.write_bytes(data[: max(0, len(data) - nbytes)])
    return path


def corrupt_store_entry(store, key: str, mode: str = "truncate",
                        seed: int = 0) -> Path:
    """Corrupt one committed sweep-store entry (``store.path_for(key)``)."""
    return corrupt_file(store.path_for(key), mode=mode, seed=seed)


# ── cache-write failure ────────────────────────────────────────────────────


class FlakyStore:
    """A sweep-store wrapper whose writes deterministically fail.

    Wraps any object with the :class:`~repro.experiments.store.SweepStore`
    interface; ``put`` calls whose 0-based index is in ``fail_puts`` (or
    *all* of them with ``fail_all``) are dropped and report ``None`` —
    exactly the store's own disk-full behaviour.  Reads pass through, so
    the run sees a cache that silently loses writes.
    """

    def __init__(self, inner, *, fail_puts: "Iterable[int]" = (),
                 fail_all: bool = False):
        self.inner = inner
        self.fail_puts = set(fail_puts)
        self.fail_all = fail_all
        self.puts = 0
        self.dropped = 0

    def put(self, key: str, payload: dict) -> "Path | None":
        index = self.puts
        self.puts += 1
        if self.fail_all or index in self.fail_puts:
            self.dropped += 1
            return None
        return self.inner.put(key, payload)

    # reads and bookkeeping delegate untouched
    def get(self, key: str):
        return self.inner.get(key)

    def path_for(self, key: str):
        return self.inner.path_for(key)

    def key_for(self, description: dict) -> str:
        return self.inner.key_for(description)

    def clear(self) -> int:
        return self.inner.clear()

    def __len__(self) -> int:
        return len(self.inner)

    @property
    def root(self):
        return self.inner.root


# ── network faults (remote worker protocol) ────────────────────────────────


class NetChaos:
    """A per-result misbehaviour plan for a remote worker.

    The worker loop in :func:`repro.engine.remote.run_worker` consults
    :meth:`plan` with the 0-based index of each result it is about to
    send and obeys the returned ``(action, delay_s)``:

    ``"send"``
        behave normally (after sleeping ``delay_s``);
    ``"drop"``
        never send the result — the coordinator's lease must expire and
        the unit be re-issued;
    ``"duplicate"``
        send the result frame twice — the coordinator must settle once
        and flag the second as a :``duplicate_settle``;
    ``"torn"``
        send only the first half of the frame and drop the connection —
        the coordinator must treat the torn frame as a disconnect, not a
        result.

    Index sets can be given explicitly, or drawn from a seed via
    :meth:`seeded`.  :meth:`parse` reads the CLI form used by
    ``repro worker --chaos-net``, e.g. ``"drop=0,duplicate=2,delay=0.5"``
    (comma-separated ``action=index`` pairs; ``delay`` takes seconds and
    applies to every send).
    """

    def __init__(self, *, drop: "Iterable[int]" = (),
                 duplicate: "Iterable[int]" = (),
                 torn: "Iterable[int]" = (), delay_s: float = 0.0):
        self.drop = set(drop)
        self.duplicate = set(duplicate)
        self.torn = set(torn)
        self.delay_s = float(delay_s)

    def plan(self, index: int) -> "tuple[str, float]":
        if index in self.torn:
            return "torn", self.delay_s
        if index in self.drop:
            return "drop", self.delay_s
        if index in self.duplicate:
            return "duplicate", self.delay_s
        return "send", self.delay_s

    @classmethod
    def seeded(cls, seed: int, n_results: int, *, n_drop: int = 1,
               n_duplicate: int = 1, delay_s: float = 0.0) -> "NetChaos":
        """Victim indices drawn deterministically from ``seed``."""
        chaos = Chaos(seed)
        drop = chaos.indices(n_results, n_drop)
        remaining = [i for i in range(n_results) if i not in drop]
        dup = {remaining[i] for i in
               chaos.indices(len(remaining), n_duplicate)} if remaining else set()
        return cls(drop=drop, duplicate=dup, delay_s=delay_s)

    @classmethod
    def parse(cls, spec: str) -> "NetChaos":
        """Build a plan from the CLI form ``action=value[,action=value...]``."""
        kwargs = {"drop": set(), "duplicate": set(), "torn": set()}
        delay = 0.0
        for part in filter(None, (p.strip() for p in spec.split(","))):
            action, _, value = part.partition("=")
            if action == "delay":
                delay = float(value)
            elif action in kwargs:
                kwargs[action].add(int(value))
            else:
                raise ValueError(
                    f"unknown chaos-net action {action!r}; "
                    "expected drop|duplicate|torn|delay")
        return cls(delay_s=delay, **kwargs)


# ── parent-process death ───────────────────────────────────────────────────


def maybe_kill_on_settle(settled: int) -> None:
    """SIGKILL the current process when the chaos env var says this settle
    count is the chosen death point (no-op otherwise).

    Called by :meth:`~repro.engine.journal.RunJournal.record` after each
    record is flushed, so the journal is durable up to and including the
    fatal settle — the invariant resume depends on.
    """
    raw = os.environ.get(KILL_AT_SETTLE_ENV)
    if not raw:
        return
    try:
        n = int(raw)
    except ValueError:
        return
    if 0 < n <= settled:
        os.kill(os.getpid(), signal.SIGKILL)


# ── fault-injecting executors (for pool-level chaos tests) ─────────────────

KILL_ONCE = "chaos-kill-once"
HANG_ONCE = "chaos-hang-once"


def _kill_once(spec: tuple) -> dict:
    """SIGKILL this worker on the first attempt; succeed on the retry.

    ``spec`` is ``(marker_path, value)``; the marker file records that an
    attempt already died, making the injection exactly-once.
    """
    marker, value = spec
    if not os.path.exists(marker):
        open(marker, "w").close()
        os.kill(os.getpid(), signal.SIGKILL)
    return {"value": value}


def _hang_once(spec: tuple) -> dict:
    """Sleep past the unit timeout on the first attempt; then succeed.

    ``spec`` is ``(marker_path, hang_seconds, value)``.
    """
    marker, hang_seconds, value = spec
    if not os.path.exists(marker):
        open(marker, "w").close()
        time.sleep(hang_seconds)
    return {"value": value}


register_executor(KILL_ONCE, _kill_once)
register_executor(HANG_ONCE, _hang_once)
