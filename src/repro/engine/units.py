"""Work units — the engine's currency — and the executor registry.

A :class:`WorkUnit` is a *content-keyed*, picklable description of one
independent piece of computation:

* ``key`` is the unit's identity, a SHA-256 content hash of everything
  the result depends on (producers reuse
  :meth:`repro.experiments.store.SweepStore.key_for`, so an engine key
  and the on-disk sweep-cache key are the *same* string).  Two units
  with equal keys are the same computation; the scheduler executes at
  most one of them and the result can satisfy any cache tier.
* ``kind`` names the executor that knows how to run the unit.  Executors
  are plain functions ``spec -> payload`` registered per kind; the
  payload must be a JSON-serialisable dict so it can round-trip through
  the result queue and the disk store.
* ``spec`` is the executor's argument tuple.  It crosses the process
  boundary by pickling, so everything in it must be picklable.

Executor resolution is lazy: worker processes look a kind up at
execution time, importing :mod:`repro.engine.executors` (the built-ins)
on first miss.  Extra kinds registered in the parent before the pool
starts are inherited by workers under the default ``fork`` start method.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

__all__ = ["WorkUnit", "register_executor", "resolve_executor", "execute"]

#: kind -> executor(spec) -> JSON-serialisable payload dict
_EXECUTORS: dict[str, Callable[[tuple], dict]] = {}


@dataclass(frozen=True, eq=False)
class WorkUnit:
    """One schedulable computation (identity semantics; dedupe by ``key``).

    ``cacheable`` marks whether the payload may be persisted in the
    on-disk sweep store.  Non-deterministic units (wall-clock hardware
    runs) and results that depend on unversioned model code set it False:
    they still dedupe, journal and memoise within a run, but never
    satisfy a lookup from an older code version.
    """

    kind: str
    key: str
    spec: tuple
    label: str = ""
    cacheable: bool = True

    def describe(self) -> str:
        """Short human-readable handle for logs and events."""
        return self.label or f"{self.kind}:{self.key[:12]}"


def register_executor(kind: str, fn: Callable[[tuple], dict]) -> None:
    """Register (or replace) the executor for ``kind``."""
    _EXECUTORS[kind] = fn


def resolve_executor(kind: str) -> Callable[[tuple], dict]:
    """The executor registered for ``kind`` (loads built-ins on demand)."""
    fn = _EXECUTORS.get(kind)
    if fn is None:
        from repro.engine import executors  # noqa: F401  (registers built-ins)

        fn = _EXECUTORS.get(kind)
    if fn is None:
        raise KeyError(
            f"no executor registered for work-unit kind {kind!r}; "
            f"known: {', '.join(sorted(_EXECUTORS)) or '(none)'}"
        )
    return fn


def execute(kind: str, spec: tuple) -> dict:
    """Run one unit in the current process (workers and the serial pool)."""
    return resolve_executor(kind)(spec)
