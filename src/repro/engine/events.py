"""Engine progress/event stream.

Every observable thing the engine does — workers starting, units
dispatching, cache hits, crashes, retries, progress/ETA — is emitted as
an :class:`EngineEvent` through one :class:`EventLog`.  Events serve
three consumers at once:

* **logging** — each event is mirrored to the ``repro.engine`` logger
  (:mod:`repro.util.logging`); lifecycle noise at DEBUG, anomalies
  (crashes, timeouts, fallbacks) at WARNING, so ``-v`` shows the full
  stream while a default run only surfaces trouble;
* **tests** — fault-tolerance tests assert on recorded kinds
  (``count("worker_crashed")``), which is far more robust than scraping
  log text;
* **artefacts** — pass ``jsonl_path`` to also append one JSON line per
  event; CI uploads this file so a failed parallel run can be post-mortemed
  without rerunning it.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro import obs
from repro.util.logging import get_logger

__all__ = ["EngineEvent", "EventLog"]

log = get_logger("engine")

_EVENTS = obs.counter("engine_events_total", "engine events emitted",
                      labels=("kind",))

#: event kinds that indicate something went wrong (logged at WARNING)
_WARN_KINDS = frozenset({
    "worker_crashed", "unit_timeout", "unit_retry", "serial_fallback",
    "cache_put_failed", "journal_write_failed", "drain_started",
    "run_interrupted", "lease_expired", "worker_disconnected",
    "duplicate_settle",
})


@dataclass(frozen=True)
class EngineEvent:
    """One engine occurrence: a kind plus free-form JSON-able details."""

    kind: str
    data: dict = field(default_factory=dict)
    timestamp: float = field(default_factory=time.time)


class EventLog:
    """Collects :class:`EngineEvent`\\ s, mirrors them to the logger, and
    optionally appends them to a JSONL file."""

    def __init__(self, jsonl_path: "str | Path | None" = None):
        self.events: list[EngineEvent] = []
        self._jsonl_path = Path(jsonl_path) if jsonl_path is not None else None
        self._fh = None

    def emit(self, kind: str, **data) -> EngineEvent:
        """Record one event; returns it (handy for tests)."""
        event = EngineEvent(kind, data)
        self.events.append(event)
        _EVENTS.inc(kind=kind)
        level = log.warning if kind in _WARN_KINDS else log.debug
        level("%s %s", kind, " ".join(f"{k}={v}" for k, v in data.items()))
        if self._jsonl_path is not None:
            self._write_jsonl(event)
        return event

    def _write_jsonl(self, event: EngineEvent) -> None:
        try:
            if self._fh is None:
                self._jsonl_path.parent.mkdir(parents=True, exist_ok=True)
                self._fh = self._jsonl_path.open("a")
            self._fh.write(json.dumps(
                {"t": event.timestamp, "kind": event.kind, **event.data},
                sort_keys=True, default=str,
            ) + "\n")
            self._fh.flush()
        except OSError as exc:  # an unwritable log must not kill the run
            log.warning("cannot write event log %s: %s", self._jsonl_path, exc)
            self._jsonl_path = None

    def count(self, kind: str) -> int:
        """How many events of ``kind`` were recorded."""
        return sum(1 for e in self.events if e.kind == kind)

    def kinds(self) -> list[str]:
        """Recorded event kinds, in order."""
        return [e.kind for e in self.events]

    def close(self) -> None:
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:
                pass
            self._fh = None
