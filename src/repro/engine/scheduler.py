"""The work-unit scheduler and engine session.

:class:`EngineSession` is the orchestration entry point: it owns one
pool (created lazily, reused across batches, torn down on ``close``) and
one :class:`~repro.engine.events.EventLog`, and its :meth:`run_units`
implements the scheduling contract:

1. **dedupe within the batch** — units with equal content keys collapse
   to one execution;
2. **dedupe against caches** — the caller supplies ``cache_get`` /
   ``cache_put`` hooks (e.g. :mod:`repro.experiments.simsweep` checks
   its in-process memo and the on-disk
   :class:`~repro.experiments.store.SweepStore`); hits never reach a
   worker, and fresh results are written back *as they land*, so a
   concurrent run on another process benefits immediately;
3. **dispatch misses** across the pool and return ``{key: payload}``.

Determinism: results are keyed by content hash and units are pure, so
callers rebuild their outputs in *their own* iteration order — the
completion order of workers never leaks into a report.  A parallel run
is byte-identical to a serial one by construction.

Degradation: if worker processes cannot start (restricted platforms,
``multiprocessing`` missing) or ``REPRO_ENGINE_SERIAL`` is set, the
session falls back to in-process serial execution and says so on the
event stream — a parallel flag can never make a run *fail*, only
faster.

:func:`session` is the convenience context manager the CLI uses: it
installs the session as the ambient engine for
:func:`repro.experiments.simsweep.simulate_breakdowns` and guarantees
teardown.  :func:`precompute` warms both cache tiers for the declared
sweeps of a set of experiments in one globally-deduplicated batch.
"""

from __future__ import annotations

import contextlib
import os
import signal as signal_mod
import threading
import time
from typing import Callable, Iterable, Iterator, Mapping

from repro import obs
from repro.engine.events import EventLog
from repro.engine.journal import RunJournal, run_path
from repro.engine.pool import (
    PoolUnavailable,
    RunInterrupted,
    SerialPool,
    WorkerPool,
    default_workers,
)
from repro.engine.units import WorkUnit
from repro.util.logging import get_logger

__all__ = ["EngineSession", "session", "precompute", "drain_on_signal"]

log = get_logger("engine")


def _serial_forced() -> bool:
    return os.environ.get("REPRO_ENGINE_SERIAL", "").lower() in (
        "1", "on", "yes", "true",
    )


class EngineSession:
    """One parallel-execution session: a pool, an event log, counters."""

    def __init__(
        self,
        n_workers: "int | None" = None,
        *,
        unit_timeout: "float | None" = 600.0,
        max_retries: int = 2,
        backoff: float = 0.25,
        max_backoff: float = 5.0,
        start_method: "str | None" = None,
        events: "EventLog | None" = None,
        journal: "RunJournal | None" = None,
        run_id: "str | None" = None,
        drain_grace: float = 10.0,
        listen: "str | None" = None,
        lease_timeout: "float | None" = 600.0,
        worker_timeout: "float | None" = None,
    ):
        self.n_workers = default_workers() if n_workers is None else max(1, int(n_workers))
        self.unit_timeout = unit_timeout
        self.max_retries = max_retries
        self.backoff = backoff
        self.max_backoff = max_backoff
        self.start_method = start_method
        self.drain_grace = drain_grace
        self.listen = listen
        self.lease_timeout = lease_timeout
        self.worker_timeout = worker_timeout
        self.events = events if events is not None else EventLog()
        self.journal = journal
        self.run_id = run_id if run_id is not None else (
            journal.run_id if journal is not None else None)
        if journal is not None and journal.on_error is None:
            journal.on_error = self._on_journal_error
        self.stats = {"units": 0, "deduped": 0, "journal_hits": 0,
                      "cache_hits": 0, "executed": 0}
        self._pool = None
        self._stop = threading.Event()
        self._stop_reason: "str | None" = None
        self.remote_address: "str | None" = None
        if self.listen is not None and not _serial_forced():
            # bind eagerly so `repro worker --connect` has somewhere to go
            # before the first batch is dispatched
            self._pool = self._make_remote_pool()
            self.remote_address = self._pool.address

    # ── graceful shutdown ─────────────────────────────────────────────────

    def request_stop(self, reason: str = "stop requested") -> None:
        """Ask the session to drain: stop dispatching, settle or abandon
        in-flight units, then raise :class:`RunInterrupted` from the
        active (or next) ``run_units`` call.  Signal-handler safe: only
        sets a flag."""
        self._stop_reason = reason
        self._stop.set()

    @property
    def stop_requested(self) -> bool:
        return self._stop.is_set()

    def _on_journal_error(self, message: str) -> None:
        self.events.emit("journal_write_failed", run_id=self.run_id,
                         error=message)

    def _journal_record(self, key: str, payload: dict) -> None:
        if self.journal is not None:
            self.journal.record(key, payload)

    def _resume_hint(self) -> "str | None":
        return f"--resume {self.run_id}" if self.run_id else None

    # ── pool management ───────────────────────────────────────────────────

    def _make_remote_pool(self):
        from repro.engine.remote import RemotePool

        return RemotePool(
            self.listen,
            lease_timeout=self.lease_timeout,
            max_retries=self.max_retries,
            backoff=self.backoff,
            max_backoff=self.max_backoff,
            events=self.events,
            should_stop=self._stop.is_set,
            drain_grace=self.drain_grace,
            worker_timeout=self.worker_timeout,
        )

    def _make_pool(self) -> "WorkerPool | SerialPool":
        if self.listen is not None and not _serial_forced():
            return self._make_remote_pool()
        if self.n_workers <= 1 or _serial_forced():
            reason = ("REPRO_ENGINE_SERIAL is set" if _serial_forced()
                      else "single worker requested")
            self.events.emit("serial_fallback", reason=reason)
            return SerialPool(events=self.events, should_stop=self._stop.is_set)
        return WorkerPool(
            self.n_workers,
            unit_timeout=self.unit_timeout,
            max_retries=self.max_retries,
            backoff=self.backoff,
            max_backoff=self.max_backoff,
            start_method=self.start_method,
            events=self.events,
            should_stop=self._stop.is_set,
            drain_grace=self.drain_grace,
        )

    def _degrade(self, reason: str) -> SerialPool:
        self.events.emit("serial_fallback", reason=reason)
        self._pool = SerialPool(events=self.events, should_stop=self._stop.is_set)
        return self._pool

    # ── scheduling ────────────────────────────────────────────────────────

    def run_units(
        self,
        units: Iterable[WorkUnit],
        *,
        cache_get: "Callable[[WorkUnit], dict | None] | None" = None,
        cache_put: "Callable[[WorkUnit, dict], None] | None" = None,
    ) -> dict[str, dict]:
        """Dedupe, consult the journal and caches, execute misses.

        Returns ``{key: payload}``.  Tier order for each unique unit:
        the run journal (a resumed run re-executes nothing that settled
        before the crash), then the caller's ``cache_get`` (memo +
        :class:`~repro.experiments.store.SweepStore`), then the pool.
        Every settled unit is journaled *before* the cache write — the
        write-ahead ordering crash safety rests on.
        """
        units = list(units)
        unique: dict[str, WorkUnit] = {}
        for u in units:
            unique.setdefault(u.key, u)
        self.stats["units"] += len(units)
        self.stats["deduped"] += len(units) - len(unique)

        def cache_write(unit: WorkUnit, payload: dict) -> None:
            if cache_put is None:
                return
            try:
                cache_put(unit, payload)
            except Exception as exc:  # a cache write must not kill the run
                self.events.emit("cache_put_failed", key=unit.key,
                                 error=f"{type(exc).__name__}: {exc}")

        results: dict[str, dict] = {}
        misses: list[WorkUnit] = []
        for key, unit in unique.items():
            payload = self.journal.get(key) if self.journal is not None else None
            if payload is not None:
                results[key] = payload
                self.stats["journal_hits"] += 1
                self.events.emit("journal_hit", key=key, label=unit.describe())
                # backfill the cache tiers so post-resume serial phases and
                # concurrent runs benefit even if the first attempt's cache
                # writes were lost
                cache_write(unit, payload)
                continue
            payload = cache_get(unit) if cache_get is not None else None
            if payload is not None:
                results[key] = payload
                self.stats["cache_hits"] += 1
                self.events.emit("cache_hit", key=key, label=unit.describe())
                # a cache hit settles the unit: journal it so the run can be
                # resumed even if this cache entry later corrupts or clears
                self._journal_record(key, payload)
            else:
                misses.append(unit)
        if not misses:
            return results
        if self._stop.is_set():
            exc = RunInterrupted(self._stop_reason or "stop requested",
                                 settled=len(results), pending=len(misses))
            self._emit_interrupted(exc)
            raise exc

        total = len(misses)
        done = 0
        started = time.monotonic()
        self.events.emit("batch_start", units=len(units), unique=len(unique),
                         cache_hits=len(results), to_execute=total,
                         workers=self.n_workers)

        def on_result(key: str, payload: dict) -> None:
            nonlocal done
            done += 1
            self._journal_record(key, payload)  # write-ahead: journal first
            cache_write(unique[key], payload)
            elapsed = time.monotonic() - started
            eta = elapsed / done * (total - done)
            self.events.emit("progress", done=done, total=total,
                             elapsed_s=round(elapsed, 2), eta_s=round(eta, 2))

        if self._pool is None:
            self._pool = self._make_pool()
        with obs.span("engine.batch", to_execute=total, workers=self.n_workers):
            try:
                executed = self._pool.run(misses, on_result=on_result)
            except PoolUnavailable as exc:
                # no unit ran (startup failed before dispatch): rerun serially
                executed = self._degrade(str(exc)).run(misses,
                                                       on_result=on_result)
            except RunInterrupted as exc:
                if self._stop_reason:  # the pool only sees a flag; name it
                    exc.reason = self._stop_reason
                self.stats["executed"] += exc.settled
                self._emit_interrupted(exc)
                raise
        results.update(executed)
        self.stats["executed"] += total
        self.events.emit("batch_done", executed=total,
                         seconds=round(time.monotonic() - started, 3))
        return results

    def _emit_interrupted(self, exc: RunInterrupted) -> None:
        """Record the interruption and how to pick the run back up."""
        self.events.emit(
            "run_interrupted", reason=exc.reason, settled=exc.settled,
            abandoned=len(exc.abandoned), pending=exc.pending,
            journaled=len(self.journal) if self.journal is not None else 0,
            resume=self._resume_hint(),
        )

    def summary(self) -> str:
        """One line for the CLI: units, hits, executions, recoveries."""
        s = self.stats
        parts = [
            f"{s['units']} unit(s): {s['cache_hits']} cache hit(s), "
            f"{s['executed']} executed on {self.n_workers} worker(s)"
        ]
        if s["journal_hits"]:
            parts.append(f"{s['journal_hits']} replayed from the run journal")
        if s["deduped"]:
            parts.append(f"{s['deduped']} deduplicated")
        retries = self.events.count("unit_retry")
        crashes = self.events.count("worker_crashed")
        if crashes:
            parts.append(f"{crashes} worker crash(es), {retries} unit retry(ies)")
        return "; ".join(parts)

    # ── lifecycle ─────────────────────────────────────────────────────────

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        if self.journal is not None:
            self.journal.close()
        if obs.enabled():
            # fold the observability state into the event stream so JSONL
            # event logs (and the bench harness) carry the numbers too
            self.events.emit("metrics_snapshot", metrics=obs.snapshot(),
                             spans=obs.span_summary())
        self.events.close()

    def __enter__(self) -> "EngineSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@contextlib.contextmanager
def drain_on_signal(
    sess: EngineSession,
    signals: "tuple[int, ...]" = (signal_mod.SIGINT, signal_mod.SIGTERM),
) -> Iterator[EngineSession]:
    """Turn SIGINT/SIGTERM into a graceful drain of ``sess``.

    The first signal only flags the session (:meth:`EngineSession
    .request_stop`): the pool stops dispatching, in-flight units get a
    grace window to settle (and be journaled), and ``run_units`` raises
    :class:`RunInterrupted` with a resume hint on the event stream.  A
    second signal falls back to ``KeyboardInterrupt`` for people who
    really mean it.  Outside the main thread (where signal handlers
    cannot be installed) this is a no-op passthrough.
    """
    if threading.current_thread() is not threading.main_thread():
        yield sess
        return

    def _handler(signum, frame):
        name = signal_mod.Signals(signum).name
        if sess.stop_requested:
            raise KeyboardInterrupt(name)
        sess.request_stop(name)

    previous = {}
    try:
        for sig in signals:
            previous[sig] = signal_mod.signal(sig, _handler)
    except (OSError, ValueError):  # pragma: no cover - exotic platforms
        pass
    try:
        yield sess
    finally:
        for sig, old in previous.items():
            try:
                signal_mod.signal(sig, old)
            except (OSError, ValueError):  # pragma: no cover
                pass


@contextlib.contextmanager
def session(
    n_workers: "int | None" = None,
    *,
    event_log: "str | None" = None,
    install: bool = True,
    run_id: "str | None" = None,
    runs_root: "str | None" = None,
    drain_signals: bool = False,
    **pool_options,
) -> Iterator[EngineSession]:
    """An :class:`EngineSession`, installed as the ambient engine.

    While the context is active, :func:`repro.experiments.simsweep
    .simulate_breakdowns` routes its cache misses through the session's
    worker pool, so *any* experiment driver parallelizes without code
    changes.  ``event_log`` additionally appends every engine event to a
    JSONL file.  Pass ``install=False`` to drive the session manually.

    ``run_id`` makes the session **crash-safe and resumable**: a
    :class:`~repro.engine.journal.RunJournal` under the run's directory
    (``.repro-cache/runs/<run-id>/`` by default, see
    :func:`~repro.engine.journal.run_path`) records every settled unit,
    an existing journal is replayed as the first cache tier, and the
    event log defaults into the same directory.  ``drain_signals`` adds
    the SIGINT/SIGTERM graceful drain (:func:`drain_on_signal`).
    """
    journal = None
    if run_id is not None:
        rd = run_path(run_id, root=runs_root, create=True)
        journal = RunJournal(rd / "journal.jsonl", run_id=run_id)
        if event_log is None:
            event_log = str(rd / "events.jsonl")
    sess = EngineSession(n_workers, events=EventLog(jsonl_path=event_log),
                         journal=journal, run_id=run_id, **pool_options)
    if journal is not None:
        sess.events.emit(
            "journal_opened", run_id=run_id, path=str(journal.path),
            entries=len(journal), dropped=journal.dropped,
            tail_truncated=journal.tail_truncated,
        )
    if install:
        from repro.experiments import simsweep

        simsweep.set_engine(sess)
    try:
        with (drain_on_signal(sess) if drain_signals
              else contextlib.nullcontext()):
            yield sess
    finally:
        if install:
            from repro.experiments import simsweep

            simsweep.set_engine(None)
        sess.close()


def precompute(
    sess: EngineSession,
    experiment_ids: Iterable[str],
    options: "Mapping[str, object] | None" = None,
) -> int:
    """Warm every cache tier for the declared work of ``experiment_ids``.

    Collects every work unit the experiments declare — simulator sweeps,
    hand-built trace programs, hardware executions and model-layer
    evaluations alike (see the experiment specs in
    :mod:`repro.experiments.registry`) — deduplicates them *globally*
    (Table II and Fig 2 share their entire sweep, so it runs once) and
    executes the misses across the pool in one journaled pass.  The
    drivers then assemble serially against hot caches, which is what
    makes a parallel report byte-identical to a serial one.  Returns the
    number of units declared.
    """
    from repro.experiments.registry import declare_units
    from repro.pipeline import runtime

    units: list[WorkUnit] = []
    for eid in experiment_ids:
        units.extend(declare_units(eid, **dict(options or {})))
    if units:
        log.info("precomputing %d declared work unit(s) on %d worker(s)",
                 len(units), sess.n_workers)
        sess.run_units(units, cache_get=runtime.cache_get,
                       cache_put=runtime.cache_put)
    return len(units)
