"""Built-in work-unit executors.

Imported lazily by :func:`repro.engine.units.resolve_executor` — in the
parent on the serial path, or inside a worker process on first miss —
so worker startup does not pay for the experiments stack until a unit
actually needs it.  Executors must be pure functions of their spec and
return a JSON-serialisable dict (the payload crosses the result queue
and may be persisted in the sweep store).
"""

from __future__ import annotations

from repro.engine.units import register_executor

__all__ = [
    "SWEEP_POINT",
    "SIM_PROGRAM",
    "HARDWARE_MODEL",
    "HARDWARE_PROCESS",
    "MODEL_EVAL",
    "MODEL_EVAL_GRID",
]

#: one simulator run: (workload, n_threads, mem_scale, machine-config)
SWEEP_POINT = "sweep-point"
#: one simulator run of a hand-built trace: (builder-ref, kwargs, config)
SIM_PROGRAM = "sim-program"
#: one machine-model execution: (workload, n_threads, hardware-model)
HARDWARE_MODEL = "hardware-model"
#: one wall-clock execution on the host: (workload, n_threads)
HARDWARE_PROCESS = "hardware-process"
#: one model-layer evaluation: (function-ref, kwargs)
MODEL_EVAL = "model-eval"
#: one vectorized model evaluation over a whole grid: (function-ref, kwargs)
MODEL_EVAL_GRID = "model-eval-grid"


def _run_sweep_point(spec: tuple) -> dict:
    from repro.experiments import simsweep

    workload, n_threads, mem_scale, config = spec
    return simsweep.execute_sweep_point(workload, n_threads, mem_scale, config)


def _run_sim_program(spec: tuple) -> dict:
    from repro.pipeline import builders

    return builders.execute_sim_program(spec)


def _run_hardware_model(spec: tuple) -> dict:
    from repro.pipeline import builders

    return builders.execute_hardware_model(spec)


def _run_hardware_process(spec: tuple) -> dict:
    from repro.pipeline import builders

    return builders.execute_hardware_process(spec)


def _run_model_eval(spec: tuple) -> dict:
    from repro.pipeline import builders

    return builders.execute_model_eval(spec)


def _run_model_eval_grid(spec: tuple) -> dict:
    from repro.pipeline import builders

    return builders.execute_model_eval_grid(spec)


register_executor(SWEEP_POINT, _run_sweep_point)
register_executor(SIM_PROGRAM, _run_sim_program)
register_executor(HARDWARE_MODEL, _run_hardware_model)
register_executor(HARDWARE_PROCESS, _run_hardware_process)
register_executor(MODEL_EVAL, _run_model_eval)
register_executor(MODEL_EVAL_GRID, _run_model_eval_grid)
