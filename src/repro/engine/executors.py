"""Built-in work-unit executors.

Imported lazily by :func:`repro.engine.units.resolve_executor` — in the
parent on the serial path, or inside a worker process on first miss —
so worker startup does not pay for the experiments stack until a unit
actually needs it.  Executors must be pure functions of their spec and
return a JSON-serialisable dict (the payload crosses the result queue
and may be persisted in the sweep store).
"""

from __future__ import annotations

from repro.engine.units import register_executor

__all__ = ["SWEEP_POINT"]

#: one simulator run: (workload, n_threads, mem_scale, machine-config)
SWEEP_POINT = "sweep-point"


def _run_sweep_point(spec: tuple) -> dict:
    from repro.experiments import simsweep

    workload, n_threads, mem_scale, config = spec
    return simsweep.execute_sweep_point(workload, n_threads, mem_scale, config)


register_executor(SWEEP_POINT, _run_sweep_point)
