"""Fault-tolerant worker pools.

Two implementations behind one interface (``run(units, on_result=...)``):

* :class:`WorkerPool` — N long-lived worker *processes*.  The design
  choice that buys fault tolerance is **one task queue per worker with
  at most one unit outstanding**: the parent always knows exactly which
  unit each worker holds, so a dead worker (``kill -9``, OOM, segfault,
  per-unit timeout) loses *only* its in-flight unit.  That unit is
  retried on a freshly spawned worker with bounded exponential backoff;
  a unit that keeps killing workers eventually fails the run with
  :class:`UnitFailure` instead of hanging it.
* :class:`SerialPool` — same contract, current process, no dependencies.
  The scheduler degrades to it when ``multiprocessing`` is unavailable
  or refuses to start (:class:`PoolUnavailable`), when only one worker
  is requested, or when ``REPRO_ENGINE_SERIAL`` is set.

Failure taxonomy: worker *deaths* are environmental, so they are
retried; executor *exceptions* are deterministic, so they travel back as
tracebacks and fail fast — retrying a ``ValueError`` would just raise it
again, slower.

Work units are assumed **pure** (their content hash is their identity),
which is what makes retries and duplicate late results safe: executing a
unit twice yields the same payload, so the first result to arrive wins
and every later one is dropped.
"""

from __future__ import annotations

import os
import queue as queue_mod
import time
import traceback
from collections import deque
from typing import Callable, Iterable

try:  # gracefully degrade on platforms without multiprocessing
    import multiprocessing as _mp
except ImportError:  # pragma: no cover - CPython always ships it
    _mp = None

from repro import obs
from repro.engine.events import EventLog
from repro.engine.units import WorkUnit, execute

__all__ = [
    "EngineError",
    "UnitFailure",
    "PoolUnavailable",
    "RunInterrupted",
    "SerialPool",
    "WorkerPool",
    "default_workers",
]

#: parent polling granularity; bounds crash/timeout detection latency
_POLL_S = 0.05

# ── observability ─────────────────────────────────────────────────────────
_UNITS_DONE = obs.counter("engine_units_total", "work units completed",
                          labels=("pool",))
_UNIT_RETRIES = obs.counter("engine_unit_retries_total",
                            "unit retries after worker deaths")
_RESPAWNS = obs.counter("engine_worker_respawns_total",
                        "workers respawned after a crash/timeout")
_QUEUE_DEPTH = obs.gauge("engine_queue_depth",
                         "units not yet settled (ready + delayed + in flight)")
_UNIT_SECONDS = obs.histogram("engine_unit_seconds",
                              "dispatch-to-done wall seconds per unit",
                              labels=("pool",))


class EngineError(RuntimeError):
    """Base class for engine failures."""


class UnitFailure(EngineError):
    """A work unit could not be completed (exception or repeated crashes)."""

    def __init__(self, unit: WorkUnit, reason: str):
        self.key = unit.key
        self.label = unit.describe()
        self.reason = reason
        super().__init__(f"work unit {self.label} failed: {reason}")


class PoolUnavailable(EngineError):
    """Worker processes cannot be created on this platform/configuration."""


class RunInterrupted(EngineError):
    """A stop request (SIGINT/SIGTERM drain) ended the run early.

    Everything settled before the interrupt was already delivered through
    ``on_result`` — and therefore journaled, when the session has a run
    journal — so the run can be resumed; ``abandoned`` names the in-flight
    unit keys given up on, ``pending`` counts units never dispatched.
    """

    def __init__(self, reason: str, *, settled: int = 0,
                 abandoned: "tuple[str, ...] | list[str]" = (), pending: int = 0):
        self.reason = reason
        self.settled = settled
        self.abandoned = tuple(abandoned)
        self.pending = pending
        super().__init__(
            f"run interrupted ({reason}): {settled} unit(s) settled, "
            f"{len(self.abandoned)} abandoned in flight, {pending} pending"
        )


def default_workers() -> int:
    """Default pool width: one per CPU, capped (parent merges serially)."""
    return max(1, min(os.cpu_count() or 1, 8))


def _worker_main(worker_id: int, task_q, result_q) -> None:
    """Worker loop: one unit at a time until the ``None`` sentinel."""
    if obs.enabled():
        # a forked worker inherits the parent's recorded series and spans;
        # drop them so drain() ships only this worker's own deltas
        obs.reset()
        obs.RECORDER.clear()
    while True:
        try:
            task = task_q.get()
        except (EOFError, OSError):  # parent went away / queue closed
            return
        if task is None:
            return
        key, kind, spec = task
        try:
            payload = execute(kind, spec)
            # piggyback this unit's metric/span delta on the result tuple;
            # drain() is None when observability is off, so the common case
            # ships no extra bytes over the queue
            result_q.put((worker_id, key, True, payload, obs.drain()))
        except BaseException:  # noqa: BLE001 - full traceback to the parent
            try:
                result_q.put((worker_id, key, False,
                              traceback.format_exc(limit=30), obs.drain()))
            except Exception:  # pragma: no cover - result queue gone
                return


class SerialPool:
    """In-process execution with the pool interface (the degraded mode)."""

    n_workers = 1

    def __init__(self, events: "EventLog | None" = None,
                 should_stop: "Callable[[], bool] | None" = None):
        self.events = events if events is not None else EventLog()
        self.should_stop = should_stop

    def run(
        self,
        units: Iterable[WorkUnit],
        on_result: "Callable[[str, dict], None] | None" = None,
    ) -> dict[str, dict]:
        units = list(units)
        results: dict[str, dict] = {}
        for unit in units:
            if unit.key in results:
                continue
            if self.should_stop is not None and self.should_stop():
                pending = len({u.key for u in units} - results.keys())
                raise RunInterrupted("stop requested", settled=len(results),
                                     pending=pending)
            self.events.emit("unit_dispatched", key=unit.key,
                             label=unit.describe(), worker=-1, attempt=0)
            started = time.monotonic()
            try:
                payload = execute(unit.kind, unit.spec)
            except Exception as exc:
                # same report shape as the worker path: the full formatted
                # traceback, so a degraded (serial) run is equally debuggable
                raise UnitFailure(
                    unit, f"executor raised:\n{traceback.format_exc(limit=30)}"
                ) from exc
            results[unit.key] = payload
            _UNITS_DONE.inc(pool="serial")
            _UNIT_SECONDS.observe(time.monotonic() - started, pool="serial")
            self.events.emit("unit_done", key=unit.key, label=unit.describe(),
                             worker=-1,
                             seconds=round(time.monotonic() - started, 4))
            if on_result is not None:
                on_result(unit.key, payload)
        return results

    def close(self) -> None:
        pass


class _WorkerSlot:
    """Parent-side bookkeeping for one worker process."""

    __slots__ = ("proc", "task_q", "unit", "deadline", "started")

    def __init__(self, proc, task_q):
        self.proc = proc
        self.task_q = task_q
        self.unit: "WorkUnit | None" = None  # the one in-flight unit
        self.deadline: "float | None" = None
        self.started: "float | None" = None  # dispatch time of that unit


class WorkerPool:
    """N worker processes with per-unit timeout and crash retry."""

    def __init__(
        self,
        n_workers: int,
        *,
        unit_timeout: "float | None" = 600.0,
        max_retries: int = 2,
        backoff: float = 0.25,
        max_backoff: float = 5.0,
        start_method: "str | None" = None,
        events: "EventLog | None" = None,
        should_stop: "Callable[[], bool] | None" = None,
        drain_grace: float = 10.0,
    ):
        if _mp is None:
            raise PoolUnavailable("multiprocessing is not importable")
        self.n_workers = max(1, int(n_workers))
        self.unit_timeout = unit_timeout
        self.max_retries = max(0, int(max_retries))
        self.backoff = backoff
        self.max_backoff = max(float(max_backoff), float(backoff))
        self.start_method = start_method
        self.should_stop = should_stop
        self.drain_grace = float(drain_grace)
        self.events = events if events is not None else EventLog()
        self._ctx = None
        self._result_q = None
        self._slots: dict[int, _WorkerSlot] = {}
        self._next_worker_id = 0

    # ── lifecycle ─────────────────────────────────────────────────────────

    def _start(self) -> None:
        method = self.start_method or os.environ.get("REPRO_ENGINE_START_METHOD")
        try:
            if method:
                self._ctx = _mp.get_context(method)
            elif "fork" in _mp.get_all_start_methods():
                # fork: cheap worker startup and parent-registered executors
                # are inherited; spawn re-imports only the built-ins.
                self._ctx = _mp.get_context("fork")
            else:  # pragma: no cover - non-fork platforms
                self._ctx = _mp.get_context()
            self._result_q = self._ctx.Queue()
            for _ in range(self.n_workers):
                self._spawn()
        except (OSError, ValueError, RuntimeError) as exc:
            self._teardown()
            raise PoolUnavailable(f"cannot start worker processes: {exc}") from exc

    def _spawn(self) -> int:
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        task_q = self._ctx.Queue()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(worker_id, task_q, self._result_q),
            name=f"repro-engine-worker-{worker_id}",
            daemon=True,
        )
        proc.start()
        self._slots[worker_id] = _WorkerSlot(proc, task_q)
        self.events.emit("worker_started", worker=worker_id, pid=proc.pid)
        return worker_id

    def _discard(self, worker_id: int) -> None:
        """Forget a dead worker's slot without respawning a replacement."""
        slot = self._slots.pop(worker_id, None)
        if slot is not None:
            try:
                slot.task_q.close()
                slot.task_q.cancel_join_thread()
            except (OSError, AttributeError):
                pass

    def _replace(self, worker_id: int) -> None:
        """Respawn a dead/killed worker (its slot is already forgotten)."""
        self._discard(worker_id)
        fresh = self._spawn()
        _RESPAWNS.inc()
        self.events.emit("worker_restarted", worker=fresh, replaces=worker_id)

    def close(self) -> None:
        """Shut workers down (sentinel, then SIGKILL stragglers)."""
        for slot in self._slots.values():
            try:
                slot.task_q.put(None)
            except (OSError, ValueError):
                pass
        deadline = time.monotonic() + 2.0
        for slot in self._slots.values():
            slot.proc.join(max(0.0, deadline - time.monotonic()))
            if slot.proc.is_alive():
                slot.proc.kill()
                slot.proc.join(1.0)
            try:
                slot.task_q.close()
                slot.task_q.cancel_join_thread()
            except (OSError, AttributeError):
                pass
        if self._result_q is not None:
            try:
                self._result_q.close()
                self._result_q.cancel_join_thread()
            except (OSError, AttributeError):
                pass
        if self._slots or self._result_q is not None:
            self.events.emit("pool_closed", workers=len(self._slots))
        self._slots = {}
        self._result_q = None

    def _teardown(self) -> None:
        for slot in self._slots.values():
            if slot.proc.is_alive():
                slot.proc.kill()
        self._slots = {}
        self._result_q = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ── execution ─────────────────────────────────────────────────────────

    def run(
        self,
        units: Iterable[WorkUnit],
        on_result: "Callable[[str, dict], None] | None" = None,
    ) -> dict[str, dict]:
        """Execute all units; returns ``{key: payload}``.

        Raises :class:`UnitFailure` on an executor exception or when a
        unit exhausts its crash retries, and :class:`PoolUnavailable` if
        workers cannot be started at all (no units were run in that
        case, so the caller may rerun the same batch serially).
        """
        by_key: dict[str, WorkUnit] = {}
        for u in units:
            by_key.setdefault(u.key, u)
        if not by_key:
            return {}
        if self._result_q is None:
            self._start()
        else:
            # top up workers abandoned by an earlier drained/failed batch
            for _ in range(self.n_workers - len(self._slots)):
                self._spawn()

        ready: deque[str] = deque(by_key)
        delayed: list[tuple[float, str]] = []  # (eligible_at, key)
        attempts: dict[str, int] = {k: 0 for k in by_key}
        results: dict[str, dict] = {}
        draining = False
        drain_deadline = 0.0

        def settle(key: str, payload: dict) -> None:
            results[key] = payload
            if on_result is not None:
                on_result(key, payload)

        def crashed(worker_id: int, slot: _WorkerSlot, cause: str) -> None:
            unit = slot.unit
            self.events.emit(
                "worker_crashed", worker=worker_id, cause=cause,
                exitcode=slot.proc.exitcode,
                key=unit.key if unit else None,
                label=unit.describe() if unit else None,
            )
            if draining:
                # no respawn, no retry: the unit is abandoned and the drain
                # exit below reports it in RunInterrupted.abandoned
                self._discard(worker_id)
                return
            self._replace(worker_id)
            if unit is None or unit.key in results:
                return
            attempts[unit.key] += 1
            if attempts[unit.key] > self.max_retries:
                raise UnitFailure(
                    unit,
                    f"worker died {attempts[unit.key]} time(s) running it "
                    f"(last cause: {cause}); retry budget {self.max_retries} "
                    "exhausted",
                )
            # exponential backoff, capped so a flaky unit never waits
            # unboundedly between attempts
            delay = min(self.backoff * (2 ** (attempts[unit.key] - 1)),
                        self.max_backoff)
            delayed.append((time.monotonic() + delay, unit.key))
            _UNIT_RETRIES.inc()
            self.events.emit("unit_retry", key=unit.key, label=unit.describe(),
                             attempt=attempts[unit.key], delay_s=round(delay, 3))

        try:
            while len(results) < len(by_key):
                now = time.monotonic()
                _QUEUE_DEPTH.set(len(by_key) - len(results))
                if (not draining and self.should_stop is not None
                        and self.should_stop()):
                    # drain: dispatch nothing further, give in-flight units a
                    # grace window to settle, then abandon what remains
                    draining = True
                    drain_deadline = now + self.drain_grace
                    self.events.emit(
                        "drain_started",
                        in_flight=sum(1 for s in self._slots.values()
                                      if s.unit is not None),
                        pending=len(by_key) - len(results),
                        grace_s=self.drain_grace,
                    )
                if not draining:
                    # mature delayed retries back into the ready queue
                    still: list[tuple[float, str]] = []
                    for eligible_at, key in delayed:
                        if eligible_at <= now:
                            ready.append(key)
                        else:
                            still.append((eligible_at, key))
                    delayed = still
                    # hand a unit to every idle worker
                    for worker_id, slot in self._slots.items():
                        if slot.unit is not None:
                            continue
                        while ready:
                            key = ready.popleft()
                            if key not in results:  # skip late-settled duplicates
                                unit = by_key[key]
                                slot.unit = unit
                                slot.deadline = (
                                    now + self.unit_timeout
                                    if self.unit_timeout else None
                                )
                                slot.started = now
                                slot.task_q.put((unit.key, unit.kind, unit.spec))
                                self.events.emit(
                                    "unit_dispatched", key=key,
                                    label=unit.describe(),
                                    worker=worker_id, attempt=attempts[key],
                                )
                                break
                # collect one result (short timeout keeps the loop responsive)
                try:
                    worker_id, key, ok, payload, delta = self._result_q.get(
                        timeout=_POLL_S)
                except (queue_mod.Empty, EOFError, OSError):
                    pass
                else:
                    obs.merge_delta(delta, worker=worker_id)
                    seconds = None
                    slot = self._slots.get(worker_id)
                    if slot is not None and slot.unit is not None and slot.unit.key == key:
                        if slot.started is not None:
                            seconds = time.monotonic() - slot.started
                        slot.unit = None
                        slot.deadline = None
                        slot.started = None
                    if key in by_key and key not in results:
                        if ok:
                            settle(key, payload)
                            _UNITS_DONE.inc(pool="worker")
                            if seconds is not None:
                                _UNIT_SECONDS.observe(seconds, pool="worker")
                            self.events.emit("unit_done", key=key,
                                             label=by_key[key].describe(),
                                             worker=worker_id)
                        else:
                            raise UnitFailure(by_key[key],
                                              f"executor raised:\n{payload}")
                if draining:
                    in_flight = sorted(
                        s.unit.key for s in self._slots.values()
                        if s.unit is not None and s.unit.key not in results
                    )
                    if not in_flight or time.monotonic() > drain_deadline:
                        # a retry parked in the delayed queue is every bit as
                        # abandoned as an in-flight unit: it was dispatched,
                        # failed, and will never be retried now
                        parked = {k for _, k in delayed if k not in results}
                        abandoned = sorted(set(in_flight) | parked)
                        pending = len(by_key) - len(results) - len(abandoned)
                        raise RunInterrupted(
                            "stop requested", settled=len(results),
                            abandoned=abandoned, pending=pending,
                        )
                # detect dead workers and expired deadlines
                now = time.monotonic()
                for worker_id, slot in list(self._slots.items()):
                    if not slot.proc.is_alive():
                        crashed(worker_id, slot, "process died")
                    elif slot.deadline is not None and now > slot.deadline:
                        self.events.emit(
                            "unit_timeout", key=slot.unit.key,
                            label=slot.unit.describe(), worker=worker_id,
                            timeout_s=self.unit_timeout,
                        )
                        slot.proc.kill()
                        slot.proc.join(1.0)
                        crashed(worker_id, slot, "unit timeout")
        finally:
            # whatever path exits the loop — success, UnitFailure, a drain's
            # RunInterrupted — the pool must come back clean: no slot may
            # keep an abandoned unit (a reused pool would mis-see busy
            # workers) and the queue-depth gauge must not stick nonzero
            for slot in self._slots.values():
                slot.unit = None
                slot.deadline = None
                slot.started = None
            _QUEUE_DEPTH.set(0)
        return results
