"""Write-ahead run journal: crash-safe, resumable experiment runs.

A *run* is one CLI invocation (``repro run table2 --run-id nightly``)
whose settled work units must survive the death of the whole process —
``kill -9``, OOM, a full disk, a power-cycled CI runner.  The engine's
:class:`~repro.engine.pool.WorkerPool` already tolerates *worker* deaths
within a run; this module makes the run itself recoverable:

* every settled ``(unit key → payload)`` is appended to a per-run JSONL
  **journal** before it is offered to any cache tier (write-ahead
  ordering: the durable record exists before anything depends on it);
* appends are atomic at line granularity — one ``write()`` of one
  ``\\n``-terminated line, flushed to the OS immediately, so a process
  killed at any instant leaves at most one truncated *tail* line;
* every record carries a content checksum over ``(key, payload)``, so
  replay can tell a corrupt line from a valid one without trusting the
  writer;
* :meth:`RunJournal.replay` is deliberately forgiving: a truncated tail
  is the *expected* signature of a crash and is silently dropped, any
  other corrupt line is skipped and counted — a journal must never turn
  disk corruption into an unresumable run.

On resume (``repro run --resume <run-id>``) the journal is replayed into
memory and acts as a cache tier consulted *ahead of* the on-disk
:class:`~repro.experiments.store.SweepStore` — so a resumed run
re-executes only the units that had not settled, even if every sweep
cache write of the first attempt was lost.

Run directories live under ``.repro-cache/runs/<run-id>/`` (override
with ``REPRO_RUNS_DIR``) and hold the journal, the engine event log, and
a small manifest recording what the run was asked to do (so ``--resume``
needs no other arguments).

The journal is also the deterministic hook point for the fault-injection
harness: when ``REPRO_CHAOS_KILL_AT_SETTLE=<n>`` is set,
:func:`repro.engine.chaos.maybe_kill_on_settle` SIGKILLs the process
right after the *n*-th record is made durable — which is how the chaos
suite proves that interrupt-then-resume is byte-identical to an
uninterrupted run.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import time
from pathlib import Path
from typing import Callable, Iterator

__all__ = [
    "RunJournal",
    "runs_root",
    "run_path",
    "resolve_run_dir",
    "new_run_id",
    "read_manifest",
    "write_manifest",
]

_JOURNAL_SCHEMA = 1
_MANIFEST_NAME = "manifest.json"
_RUN_ID_RE = re.compile(r"[A-Za-z0-9][A-Za-z0-9._-]{0,127}")


def runs_root() -> Path:
    """Directory holding all run directories (``REPRO_RUNS_DIR`` or
    ``.repro-cache/runs`` under the current directory)."""
    return Path(os.environ.get("REPRO_RUNS_DIR", str(Path(".repro-cache") / "runs")))


def validate_run_id(run_id: str) -> str:
    """A run id must be a safe single path component; returns it."""
    if not _RUN_ID_RE.fullmatch(run_id):
        raise ValueError(
            f"invalid run id {run_id!r}: use letters, digits, '.', '_', '-' "
            "(max 128 chars, no leading punctuation)"
        )
    return run_id


def new_run_id() -> str:
    """A fresh, human-sortable run id (timestamp plus random suffix)."""
    stamp = time.strftime("%Y%m%d-%H%M%S")
    return f"run-{stamp}-{os.urandom(3).hex()}"


def run_path(run_id: str, *, root: "str | Path | None" = None,
             create: bool = False) -> Path:
    """The directory for ``run_id`` (created when ``create`` is set)."""
    validate_run_id(run_id)
    path = Path(root) if root is not None else runs_root()
    path = path / run_id
    if create:
        path.mkdir(parents=True, exist_ok=True)
    return path


def resolve_run_dir(run_id: str, *, root: "str | Path | None" = None) -> Path:
    """The *existing* directory for ``run_id``, for ``--resume``.

    ``runs_root()`` is CWD-relative unless ``REPRO_RUNS_DIR`` is set, so
    resuming from a different working directory used to silently open a
    *fresh* journal and re-execute everything.  This resolver refuses to
    guess: when the run directory (or any trace of the run — manifest or
    journal) is missing it raises :class:`FileNotFoundError` with a hint
    naming the root that was searched and how to point at the right one.
    """
    path = run_path(run_id, root=root)
    if path.is_dir() and (
        (path / _MANIFEST_NAME).exists() or (path / "journal.jsonl").exists()
    ):
        return path
    raise FileNotFoundError(
        f"no run directory for {run_id!r} under {path.parent.resolve()}.\n"
        "hint: the runs root is resolved relative to the current working "
        "directory unless REPRO_RUNS_DIR is set — rerun from the directory "
        "the run was started in, or set REPRO_RUNS_DIR to the absolute "
        "runs root recorded in the run's manifest (`runs_root` field)."
    )


def write_manifest(run_dir: "str | Path", manifest: dict) -> Path:
    """Atomically write a run's manifest (what it was asked to do)."""
    run_dir = Path(run_dir)
    run_dir.mkdir(parents=True, exist_ok=True)
    path = run_dir / _MANIFEST_NAME
    tmp = run_dir / f"{_MANIFEST_NAME}.{os.getpid()}.tmp"
    tmp.write_text(json.dumps(manifest, sort_keys=True, indent=2) + "\n")
    os.replace(tmp, path)
    return path


def read_manifest(run_dir: "str | Path") -> "dict | None":
    """A run's manifest, or ``None`` when missing or unreadable."""
    try:
        data = json.loads((Path(run_dir) / _MANIFEST_NAME).read_text())
    except (OSError, ValueError):
        return None
    return data if isinstance(data, dict) else None


def _checksum(key: str, payload: dict) -> str:
    """Content checksum binding a record's key to its payload."""
    blob = key + "\n" + json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:12]


class RunJournal:
    """An append-only JSONL journal of settled work units for one run.

    Opening an existing journal replays it immediately: valid records
    become in-memory entries served through :meth:`get` (the resume
    cache tier), a truncated tail is dropped (``tail_truncated``), and
    corrupt interior lines are skipped (``dropped``).  :meth:`record`
    appends new entries durably and is idempotent per key.

    Journal *writes* are best-effort in the same sense as the sweep
    store: an unwritable journal (disk full, permissions) disables
    itself, reports through ``on_error`` once, and never fails the run —
    losing crash-safety must not lose the run that is still succeeding.
    """

    def __init__(self, path: "str | Path", *, run_id: "str | None" = None,
                 fsync: "bool | None" = None,
                 on_error: "Callable[[str], None] | None" = None):
        self.path = Path(path)
        self.run_id = run_id
        self.on_error = on_error
        if fsync is None:
            fsync = os.environ.get("REPRO_JOURNAL_FSYNC", "").lower() in (
                "1", "on", "yes", "true",
            )
        self.fsync = fsync
        self.broken = False
        self.dropped = 0
        self.tail_truncated = False
        self._fh = None
        self._entries: dict[str, dict] = {}
        self._settled = 0  # records written by *this* process
        if self.path.exists():
            self._entries = self.replay()

    # ── replay (the read side) ───────────────────────────────────────────

    def replay(self) -> dict[str, dict]:
        """Load every valid record; tolerant of a corrupt/truncated tail."""
        entries: dict[str, dict] = {}
        self.dropped = 0
        self.tail_truncated = False
        try:
            raw = self.path.read_bytes()
        except OSError:
            return entries
        lines = raw.decode("utf-8", errors="replace").split("\n")
        # a well-formed journal ends with "\n": the final split element is
        # empty.  Anything else there is a mid-write tail from a crash.
        if lines and lines[-1] == "":
            lines.pop()
        else:
            self.tail_truncated = True
        last = len(lines) - 1
        for i, line in enumerate(lines):
            rec = self._parse(line)
            if rec is None:
                if i == last:
                    # an unparsable *final* line is the torn tail of a
                    # mid-append crash — expected damage, not corruption
                    self.tail_truncated = True
                else:
                    self.dropped += 1
                continue
            if "h" in rec:  # header record: metadata only
                if self.run_id is None:
                    self.run_id = rec["h"].get("run_id")
                continue
            entries[rec["key"]] = rec["payload"]
        return entries

    @staticmethod
    def _parse(line: str) -> "dict | None":
        line = line.strip()
        if not line:
            return None
        try:
            rec = json.loads(line)
        except ValueError:
            return None
        if not isinstance(rec, dict):
            return None
        if "h" in rec:
            return rec if isinstance(rec["h"], dict) else None
        key, payload, check = rec.get("key"), rec.get("payload"), rec.get("c")
        if not isinstance(key, str) or not isinstance(payload, dict):
            return None
        if check != _checksum(key, payload):
            return None
        return rec

    # ── the cache-tier interface ─────────────────────────────────────────

    def get(self, key: str) -> "dict | None":
        """The journaled payload for ``key``, or ``None``."""
        return self._entries.get(key)

    def keys(self) -> Iterator[str]:
        return iter(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    # ── the write-ahead side ─────────────────────────────────────────────

    def record(self, key: str, payload: dict) -> bool:
        """Durably append one settled unit; ``True`` when newly journaled.

        Idempotent per key (a unit settled from a cache hit and again
        from a replay writes once).  A failed append flips the journal
        into its broken state and reports once through ``on_error``.
        """
        if key in self._entries or self.broken:
            return False
        if not self._write(self._record_line(key, payload)):
            return False
        self._entries[key] = payload
        self._settled += 1
        # deterministic crash injection for the chaos harness (no-op
        # unless REPRO_CHAOS_KILL_AT_SETTLE is set in the environment)
        from repro.engine import chaos

        chaos.maybe_kill_on_settle(self._settled)
        return True

    def _record_line(self, key: str, payload: dict) -> str:
        return json.dumps(
            {"key": key, "payload": payload, "c": _checksum(key, payload)},
            sort_keys=True, separators=(",", ":"), default=str,
        ) + "\n"

    def _header_line(self) -> str:
        return json.dumps(
            {"h": {"journal": _JOURNAL_SCHEMA, "run_id": self.run_id,
                   "created": time.time()}},
            sort_keys=True,
        ) + "\n"

    def _repair(self) -> None:
        """Rewrite the journal as header + valid entries (atomic).

        A torn tail means the file ends mid-line; appending to it would
        glue the next record onto the fragment and corrupt both.  Before
        the first append of a resumed run the file is rebuilt from the
        replayed entries — dropping exactly the damage replay already
        ignores.
        """
        tmp = self.path.with_name(f"{self.path.name}.{os.getpid()}.repair")
        with tmp.open("w", encoding="utf-8") as fh:
            fh.write(self._header_line())
            for key, payload in self._entries.items():
                fh.write(self._record_line(key, payload))
        os.replace(tmp, self.path)

    def _write(self, line: str) -> bool:
        try:
            if self._fh is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                if self.tail_truncated or self.dropped:
                    self._repair()
                fresh = not self.path.exists() or self.path.stat().st_size == 0
                self._fh = self.path.open("a", encoding="utf-8")
                if fresh:
                    self._fh.write(self._header_line())
            self._fh.write(line)
            self._fh.flush()
            if self.fsync:
                os.fsync(self._fh.fileno())
        except (OSError, ValueError) as exc:
            self.broken = True
            if self.on_error is not None:
                self.on_error(f"{type(exc).__name__}: {exc}")
            return False
        return True

    def close(self) -> None:
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:
                pass
            self._fh = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
