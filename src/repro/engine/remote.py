"""Distributed unit execution: a coordinator/worker protocol over TCP.

The engine's :class:`~repro.engine.pool.WorkerPool` shards a run across
processes on *one* host.  This module shards it across *machines* while
keeping every durability and identity guarantee intact, because the unit
abstraction is already location-transparent: a
:class:`~repro.engine.units.WorkUnit` is content-hashed, pure, and
backend-tagged, so it does not matter *where* it executes — only that
its payload settles through the coordinator's write-ahead journal.

Roles
-----
* :class:`RemotePool` — the **coordinator**.  Same interface as
  ``WorkerPool``/``SerialPool`` (``run(units, on_result=...)``), so
  ``run --listen``, ``runall`` and pipeline ``resolve_units`` are
  backend-agnostic.  It binds a listening socket, hands **leases** to
  whichever workers connect, re-issues leases that expire or whose
  worker disconnects, and settles each unit **at most once** (first
  result wins; the journal write in ``on_result`` happens *before* the
  worker's acknowledgement frame, so a settled unit is durable before
  anyone is told about it).
* :func:`run_worker` — the **worker** loop behind ``repro worker
  --connect HOST:PORT``: lease a unit, execute it via the ordinary
  executor registry (:func:`repro.engine.units.execute`), stream the
  result plus this worker's :func:`repro.obs.drain` delta back, repeat.
  Workers are stateless and disposable: a SIGKILLed worker loses only
  its lease, which the coordinator re-issues elsewhere.

Protocol
--------
Length-prefixed JSON frames: a 4-byte big-endian length, then a UTF-8
JSON object.  A frame that ends mid-read (torn length or torn body) is a
*transport* failure — the peer treats the connection as dead and the
lease machinery recovers; it is never interpreted as data.  Unit specs
are arbitrary picklable tuples (they cross the one-host pool by pickle
too), so they travel base64-pickled inside the JSON frame.  **The
protocol therefore assumes trusted workers on a trusted network** —
exactly the same trust the multiprocess pool places in ``fork``.

Worker → coordinator requests (strict request/response):

==========  ============================================  =================
request     fields                                        replies
==========  ============================================  =================
``hello``   ``worker`` (name), ``pid``                    ``welcome``
``lease``   —                                             ``unit`` | ``idle`` | ``bye``
``result``  ``lease``, ``key``, ``ok``, ``payload`` /     ``ack`` (``settled``
            ``error``, ``obs``                            true/false)
==========  ============================================  =================

Durability invariants (the same ones the one-host chaos suite proves):

* every settled unit is journaled (via ``on_result``) **before** its
  ``ack`` frame is sent;
* settles are **at-most-once per key**: a late result for a lease that
  already expired and was re-issued — or a duplicated result frame — is
  acknowledged with ``settled: false`` and dropped
  (``duplicate_settle`` event);
* a lease past its deadline, or held by a disconnected worker, is
  re-issued with capped exponential backoff and a bounded attempt
  budget (``lease_expired`` events → :class:`UnitFailure` when
  exhausted, never a hang);
* a SIGKILLed **coordinator** resumes byte-identically from its journal
  exactly like any other interrupted run: workers keep reconnecting
  (``retry_for`` window) and the resumed run re-leases only what never
  settled.
"""

from __future__ import annotations

import base64
import importlib
import itertools
import json
import os
import pickle
import queue as queue_mod
import socket
import struct
import threading
import time
import traceback
from collections import deque
from typing import Callable, Iterable

from repro import obs
from repro.engine.events import EventLog
from repro.engine.pool import (
    PoolUnavailable,
    RunInterrupted,
    UnitFailure,
    _POLL_S,
    _QUEUE_DEPTH,
    _UNIT_RETRIES,
    _UNITS_DONE,
)
from repro.engine.units import WorkUnit, execute
from repro.util.logging import get_logger

__all__ = [
    "ProtocolError",
    "RemotePool",
    "run_worker",
    "parse_hostport",
    "send_frame",
    "recv_frame",
    "encode_spec",
    "decode_spec",
]

log = get_logger("engine")

#: frames larger than this are a protocol violation, not data
_MAX_FRAME = 64 * 1024 * 1024

_REMOTE_SETTLES = obs.counter("engine_remote_settles_total",
                              "units settled over the remote protocol",
                              labels=("outcome",))
_LEASES = obs.counter("engine_remote_leases_total", "leases issued")
_WORKERS_CONNECTED = obs.gauge("engine_remote_workers",
                               "remote workers currently connected")


class ProtocolError(ConnectionError):
    """The peer sent bytes that are not a valid frame."""


# ── framing ────────────────────────────────────────────────────────────────


def parse_hostport(address: str) -> "tuple[str, int]":
    """``"HOST:PORT"`` → ``(host, port)`` (host defaults to all interfaces
    when omitted: ``":7077"``)."""
    host, sep, port = address.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(f"invalid address {address!r}: expected HOST:PORT")
    return (host or "0.0.0.0", int(port))


def _recv_exact(sock: socket.socket, n: int) -> "bytes | None":
    """Exactly ``n`` bytes, ``None`` on a clean EOF *before* any byte, and
    :class:`ProtocolError` on EOF mid-read (a torn frame)."""
    buf = bytearray()
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            if not buf:
                return None
            raise ProtocolError(f"torn frame: EOF after {len(buf)}/{n} bytes")
        buf.extend(chunk)
    return bytes(buf)


def send_frame(sock: socket.socket, message: dict) -> None:
    """One length-prefixed JSON frame (a single ``sendall``)."""
    body = json.dumps(message, separators=(",", ":"), default=str).encode()
    if len(body) > _MAX_FRAME:
        raise ProtocolError(f"frame too large ({len(body)} bytes)")
    sock.sendall(struct.pack(">I", len(body)) + body)


def recv_frame(sock: socket.socket) -> "dict | None":
    """One frame, ``None`` on clean EOF between frames, raises
    :class:`ProtocolError` on a torn or malformed frame."""
    header = _recv_exact(sock, 4)
    if header is None:
        return None
    (length,) = struct.unpack(">I", header)
    if length > _MAX_FRAME:
        raise ProtocolError(f"frame length {length} exceeds the {_MAX_FRAME} cap")
    body = _recv_exact(sock, length)
    if body is None:
        raise ProtocolError("torn frame: EOF before the body")
    try:
        message = json.loads(body)
    except ValueError as exc:
        raise ProtocolError(f"frame is not JSON: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError("frame is not a JSON object")
    return message


def encode_spec(spec: tuple) -> str:
    """A unit spec as transportable text (specs are picklable, the same
    contract the one-host pool's task queue relies on)."""
    return base64.b64encode(pickle.dumps(spec)).decode("ascii")


def decode_spec(blob: str) -> tuple:
    return pickle.loads(base64.b64decode(blob.encode("ascii")))


# ── coordinator ────────────────────────────────────────────────────────────


class _Lease:
    """One outstanding unit → worker assignment."""

    __slots__ = ("lease_id", "key", "worker", "conn_id", "deadline")

    def __init__(self, lease_id: int, key: str, worker: str, conn_id: int,
                 deadline: float):
        self.lease_id = lease_id
        self.key = key
        self.worker = worker
        self.conn_id = conn_id
        self.deadline = deadline


class _Batch:
    """Shared state for one ``run()`` call (guarded by the pool lock)."""

    def __init__(self, by_key: "dict[str, WorkUnit]"):
        self.by_key = by_key
        self.ready: deque[str] = deque(by_key)
        self.delayed: "list[tuple[float, str]]" = []  # (eligible_at, key)
        self.attempts: dict[str, int] = {k: 0 for k in by_key}
        self.leases: dict[int, _Lease] = {}
        self.settled: set[str] = set()
        self.inbox: "queue_mod.Queue" = queue_mod.Queue()
        self.draining = False


class RemotePool:
    """Coordinator: leases units to remote workers over TCP.

    Pool-interface compatible with :class:`~repro.engine.pool.WorkerPool`
    (``run``/``close``/``events``/``should_stop``), so
    :class:`~repro.engine.scheduler.EngineSession` can swap it in
    transparently.  The listener binds at construction time, so workers
    may connect before the first batch; between batches they receive
    ``idle`` replies and keep polling.

    ``worker_timeout`` bounds the wait for the *first* worker: when no
    worker has ever connected within that many seconds of a batch
    starting, :class:`PoolUnavailable` is raised — which the session
    turns into the usual graceful serial degradation.
    """

    def __init__(
        self,
        listen: str = "127.0.0.1:0",
        *,
        lease_timeout: "float | None" = 600.0,
        max_retries: int = 2,
        backoff: float = 0.25,
        max_backoff: float = 5.0,
        events: "EventLog | None" = None,
        should_stop: "Callable[[], bool] | None" = None,
        drain_grace: float = 10.0,
        worker_timeout: "float | None" = None,
    ):
        self.lease_timeout = lease_timeout
        self.max_retries = max(0, int(max_retries))
        self.backoff = backoff
        self.max_backoff = max(float(max_backoff), float(backoff))
        self.should_stop = should_stop
        self.drain_grace = float(drain_grace)
        self.worker_timeout = worker_timeout
        self.events = events if events is not None else EventLog()
        self._lock = threading.Lock()
        self._events_lock = threading.Lock()
        self._batch: "_Batch | None" = None
        self._closed = False
        self._ever_connected = threading.Event()
        self._workers: dict[int, str] = {}  # conn_id -> worker name
        self._conns: dict[int, socket.socket] = {}
        self._lease_ids = itertools.count(1)
        self._conn_ids = itertools.count(1)
        host, port = parse_hostport(listen)
        try:
            self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            self._listener.bind((host, port))
            self._listener.listen(64)
        except OSError as exc:
            raise PoolUnavailable(
                f"cannot bind coordinator on {listen}: {exc}") from exc
        bound_host, bound_port = self._listener.getsockname()[:2]
        #: the actual bound address as ``"HOST:PORT"`` (port 0 resolves here)
        self.address: str = f"{bound_host}:{bound_port}"
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-remote-accept", daemon=True)
        self._accept_thread.start()
        self._emit("coordinator_listening", host=bound_host, port=bound_port)

    @property
    def n_workers(self) -> int:
        """Currently connected workers (at least 1, for ETA arithmetic)."""
        return max(1, len(self._workers))

    def _emit(self, kind: str, **data) -> None:
        # connection threads and the run loop share one EventLog; serialise
        with self._events_lock:
            self.events.emit(kind, **data)

    # ── connection handling (one thread per worker) ───────────────────────

    def _accept_loop(self) -> None:
        while True:
            try:
                conn, _addr = self._listener.accept()
            except OSError:  # listener closed: shutdown
                return
            conn_id = next(self._conn_ids)
            threading.Thread(
                target=self._serve_connection, args=(conn, conn_id),
                name=f"repro-remote-conn-{conn_id}", daemon=True,
            ).start()

    def _serve_connection(self, conn: socket.socket, conn_id: int) -> None:
        worker = f"conn-{conn_id}"
        try:
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            while True:
                message = recv_frame(conn)
                if message is None:
                    return
                op = message.get("op")
                if op == "hello":
                    worker = str(message.get("worker") or worker)
                    self._workers[conn_id] = worker
                    self._conns[conn_id] = conn
                    self._ever_connected.set()
                    _WORKERS_CONNECTED.set(len(self._workers))
                    self._emit("worker_connected", worker=worker,
                               pid=message.get("pid"))
                    send_frame(conn, {"op": "welcome",
                                      "lease_timeout": self.lease_timeout})
                elif op == "lease":
                    send_frame(conn, self._grant_lease(worker, conn_id))
                elif op == "result":
                    send_frame(conn, self._accept_result(worker, message))
                else:
                    raise ProtocolError(f"unknown op {op!r}")
        except (ProtocolError, ConnectionError, OSError, ValueError) as exc:
            if not self._closed:
                self._emit("worker_disconnected", worker=worker,
                           error=f"{type(exc).__name__}: {exc}")
        finally:
            released = self._release_worker(conn_id)
            if released and not self._closed:
                # expire this worker's leases *now*; the run loop re-issues
                self._emit("leases_released", worker=worker, keys=released)
            _WORKERS_CONNECTED.set(len(self._workers))
            try:
                conn.close()
            except OSError:
                pass

    def _grant_lease(self, worker: str, conn_id: int) -> dict:
        with self._lock:
            if self._closed:
                return {"op": "bye"}
            batch = self._batch
            if batch is None or batch.draining:
                return {"op": "idle", "retry_s": 0.2}
            key = None
            while batch.ready:
                candidate = batch.ready.popleft()
                if candidate not in batch.settled:
                    key = candidate
                    break
            if key is None:
                return {"op": "idle", "retry_s": 0.1}
            unit = batch.by_key[key]
            lease_id = next(self._lease_ids)
            deadline = (time.monotonic() + self.lease_timeout
                        if self.lease_timeout else float("inf"))
            batch.leases[lease_id] = _Lease(lease_id, key, worker, conn_id,
                                            deadline)
        _LEASES.inc()
        self._emit("lease_issued", key=key, label=unit.describe(),
                   worker=worker, lease=lease_id,
                   attempt=batch.attempts.get(key, 0))
        return {"op": "unit", "lease": lease_id, "key": key,
                "kind": unit.kind, "spec": encode_spec(unit.spec),
                "label": unit.describe()}

    def _accept_result(self, worker: str, message: dict) -> dict:
        """Queue a result for the run loop and wait for the settle verdict.

        The reply — the worker's acknowledgement — is only produced after
        the run loop has run ``on_result`` (journal write included) or
        rejected the result, which is what makes every ack mean
        *durable*."""
        with self._lock:
            batch = self._batch
        if batch is None:
            return {"op": "ack", "settled": False}
        box = {"done": threading.Event(), "settled": False}
        batch.inbox.put((box, worker, message))
        # generous bound: the run loop settles in micro-seconds unless it
        # is tearing down, in which case the unit simply re-runs later
        box["done"].wait(timeout=60.0)
        return {"op": "ack", "settled": box["settled"]}

    def _release_worker(self, conn_id: int) -> "list[str]":
        """Expire every lease a (dead) connection holds; returns the keys."""
        self._workers.pop(conn_id, None)
        self._conns.pop(conn_id, None)
        released: list[str] = []
        with self._lock:
            batch = self._batch
            if batch is None:
                return released
            for lease in batch.leases.values():
                if lease.conn_id == conn_id and lease.deadline != 0.0:
                    lease.deadline = 0.0  # the run loop's expiry scan reissues
                    released.append(lease.key)
        return released

    # ── the run loop (the caller's thread) ────────────────────────────────

    def run(
        self,
        units: Iterable[WorkUnit],
        on_result: "Callable[[str, dict], None] | None" = None,
    ) -> dict[str, dict]:
        """Execute all units on whatever workers connect; ``{key: payload}``.

        Raises :class:`UnitFailure` on an executor exception or an
        exhausted lease budget, :class:`RunInterrupted` on a drain, and
        :class:`PoolUnavailable` when ``worker_timeout`` elapses with no
        worker ever connected (nothing ran: safe to degrade serially).
        """
        by_key: dict[str, WorkUnit] = {}
        for u in units:
            by_key.setdefault(u.key, u)
        if not by_key:
            return {}
        if self._closed:
            raise PoolUnavailable("remote pool is closed")
        batch = _Batch(by_key)
        with self._lock:
            self._batch = batch
        results: dict[str, dict] = {}
        draining = False
        drain_deadline = 0.0
        batch_started = time.monotonic()

        try:
            while len(results) < len(by_key):
                now = time.monotonic()
                _QUEUE_DEPTH.set(len(by_key) - len(results))
                if (not draining and self.should_stop is not None
                        and self.should_stop()):
                    draining = True
                    drain_deadline = now + self.drain_grace
                    with self._lock:
                        batch.draining = True
                        in_flight = len(batch.leases)
                    self._emit("drain_started", in_flight=in_flight,
                               pending=len(by_key) - len(results),
                               grace_s=self.drain_grace)
                if not draining:
                    with self._lock:
                        still: "list[tuple[float, str]]" = []
                        for eligible_at, key in batch.delayed:
                            if eligible_at <= now:
                                batch.ready.append(key)
                            else:
                                still.append((eligible_at, key))
                        batch.delayed = still
                if (self.worker_timeout is not None
                        and not self._ever_connected.is_set()
                        and not results
                        and now - batch_started > self.worker_timeout):
                    raise PoolUnavailable(
                        f"no remote worker connected within "
                        f"{self.worker_timeout:g}s of the batch starting")
                # settle at most one result per iteration (keeps the expiry
                # and drain checks responsive)
                try:
                    box, worker, message = batch.inbox.get(timeout=_POLL_S)
                except queue_mod.Empty:
                    pass
                else:
                    self._settle(batch, results, by_key, on_result,
                                 box, worker, message)
                # lease expiry → re-issue with backoff, bounded attempts
                now = time.monotonic()
                expired: list[_Lease] = []
                with self._lock:
                    for lease_id in [lid for lid, l in batch.leases.items()
                                     if l.deadline <= now]:
                        expired.append(batch.leases.pop(lease_id))
                for lease in expired:
                    if lease.key in results:
                        continue
                    batch.attempts[lease.key] += 1
                    attempt = batch.attempts[lease.key]
                    unit = by_key[lease.key]
                    self._emit("lease_expired", key=lease.key,
                               label=unit.describe(), worker=lease.worker,
                               attempt=attempt)
                    if attempt > self.max_retries:
                        raise UnitFailure(
                            unit,
                            f"lease expired {attempt} time(s) (last worker: "
                            f"{lease.worker}); retry budget "
                            f"{self.max_retries} exhausted",
                        )
                    delay = min(self.backoff * (2 ** (attempt - 1)),
                                self.max_backoff)
                    _UNIT_RETRIES.inc()
                    with self._lock:
                        if draining:
                            batch.delayed.append((float("inf"), lease.key))
                        else:
                            batch.delayed.append((now + delay, lease.key))
                    self._emit("unit_retry", key=lease.key,
                               label=unit.describe(), attempt=attempt,
                               delay_s=round(delay, 3))
                if draining:
                    with self._lock:
                        leased = sorted({l.key for l in batch.leases.values()
                                         if l.key not in results})
                        parked = sorted({k for _, k in batch.delayed
                                         if k not in results})
                    if not leased or time.monotonic() > drain_deadline:
                        abandoned = sorted(set(leased) | set(parked))
                        pending = len(by_key) - len(results) - len(abandoned)
                        raise RunInterrupted(
                            "stop requested", settled=len(results),
                            abandoned=abandoned, pending=pending,
                        )
        finally:
            with self._lock:
                self._batch = None
            # unblock any connection thread still parked on the inbox
            while True:
                try:
                    box, _worker, _message = batch.inbox.get_nowait()
                except queue_mod.Empty:
                    break
                box["settled"] = False
                box["done"].set()
            _QUEUE_DEPTH.set(0)
        return results

    def _settle(self, batch: _Batch, results: dict, by_key: dict,
                on_result, box: dict, worker: str, message: dict) -> None:
        """Process one result frame (in the run-loop thread).

        Order matters: ``on_result`` — which journals — runs before
        ``box["done"].set()`` releases the worker's ack."""
        key = message.get("key")
        lease_id = message.get("lease")
        with self._lock:
            lease = batch.leases.pop(lease_id, None)
        obs.merge_delta(message.get("obs"), worker=worker)
        if key not in by_key or key in results:
            _REMOTE_SETTLES.inc(outcome="duplicate")
            self._emit("duplicate_settle", key=key, worker=worker,
                       lease=lease_id, stale=lease is None)
            box["settled"] = False
            box["done"].set()
            return
        if not message.get("ok"):
            box["settled"] = False
            box["done"].set()
            raise UnitFailure(
                by_key[key],
                f"executor raised on worker {worker}:\n"
                f"{message.get('error', '(no traceback)')}",
            )
        payload = message.get("payload")
        if not isinstance(payload, dict):
            box["settled"] = False
            box["done"].set()
            raise UnitFailure(by_key[key],
                              f"worker {worker} sent a non-dict payload")
        results[key] = payload
        if on_result is not None:
            on_result(key, payload)  # write-ahead: journal before the ack
        with self._lock:
            batch.settled.add(key)
        _UNITS_DONE.inc(pool="remote")
        _REMOTE_SETTLES.inc(outcome="settled")
        box["settled"] = True
        box["done"].set()
        self._emit("unit_done", key=key, label=by_key[key].describe(),
                   worker=worker)

    # ── lifecycle ─────────────────────────────────────────────────────────

    def close(self) -> None:
        """Stop accepting, drop connections; connected workers see EOF and
        exit once their reconnect window (``--retry-for``) runs dry."""
        if self._closed:
            return
        self._closed = True
        try:
            self._listener.close()
        except OSError:
            pass
        for conn in list(self._conns.values()):
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        self._accept_thread.join(timeout=2.0)
        self._emit("pool_closed", workers=len(self._workers))
        self._workers.clear()
        self._conns.clear()

    def __enter__(self) -> "RemotePool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ── worker ─────────────────────────────────────────────────────────────────


def run_worker(
    connect: str,
    *,
    name: "str | None" = None,
    retry_for: float = 30.0,
    idle_poll: float = 0.2,
    imports: "Iterable[str]" = (),
    max_units: "int | None" = None,
    net_chaos=None,
) -> int:
    """The worker loop behind ``repro worker --connect HOST:PORT``.

    Connects (and *re*-connects — a restarted coordinator is picked up
    transparently, which is what lets a resumed run reuse live workers),
    leases units, executes them with the ordinary executor registry and
    streams results + :func:`repro.obs.drain` deltas back.  Exits 0 when
    the coordinator says ``bye`` or when ``retry_for`` seconds pass
    without a successful connect *or* a granted lease — so idle workers
    wind down on their own after a run ends.

    ``imports`` names modules to import first (their import side effects
    register extra executor kinds — e.g. ``repro.engine.chaos``).
    ``net_chaos`` is a :class:`repro.engine.chaos.NetChaos` plan used by
    the fault-injection suite to drop, duplicate, delay or tear result
    frames deterministically.
    """
    host, port = parse_hostport(connect)
    for module in imports:
        importlib.import_module(module)
    worker_name = name or f"{socket.gethostname()}-{os.getpid()}"
    executed = 0
    result_index = 0
    sock: "socket.socket | None" = None
    deadline = time.monotonic() + retry_for

    def _drop_connection() -> None:
        nonlocal sock
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass
            sock = None

    try:
        while True:
            if sock is None:
                if time.monotonic() > deadline:
                    log.info("worker %s: no coordinator within %.0fs; exiting",
                             worker_name, retry_for)
                    return 0
                try:
                    sock = socket.create_connection((host, port), timeout=5.0)
                    sock.settimeout(None)
                    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                    send_frame(sock, {"op": "hello", "worker": worker_name,
                                      "pid": os.getpid()})
                    welcome = recv_frame(sock)
                    if welcome is None or welcome.get("op") != "welcome":
                        raise ProtocolError("coordinator did not welcome us")
                    deadline = time.monotonic() + retry_for
                    log.info("worker %s: connected to %s:%d",
                             worker_name, host, port)
                except (OSError, ConnectionError):
                    _drop_connection()
                    time.sleep(min(1.0, max(idle_poll, 0.05)))
                    continue
            try:
                send_frame(sock, {"op": "lease"})
                reply = recv_frame(sock)
            except (OSError, ConnectionError):
                _drop_connection()
                continue
            if reply is None:
                _drop_connection()
                continue
            op = reply.get("op")
            if op == "bye":
                return 0
            if op == "idle":
                if time.monotonic() > deadline:
                    return 0
                time.sleep(float(reply.get("retry_s", idle_poll)))
                continue
            if op != "unit":
                _drop_connection()
                continue
            key = reply["key"]
            try:
                payload = execute(reply["kind"], decode_spec(reply["spec"]))
                result = {"op": "result", "lease": reply["lease"], "key": key,
                          "ok": True, "payload": payload}
            except BaseException:  # noqa: BLE001 - traceback to coordinator
                result = {"op": "result", "lease": reply["lease"], "key": key,
                          "ok": False, "error": traceback.format_exc(limit=30)}
            delta = obs.drain()
            if delta is not None:
                result["obs"] = delta
            action, delay = (net_chaos.plan(result_index) if net_chaos
                             else ("send", 0.0))
            result_index += 1
            if delay:
                time.sleep(delay)
            if action == "drop":
                continue  # the lease expires; the coordinator re-issues
            try:
                if action == "torn":
                    body = json.dumps(result, separators=(",", ":"),
                                      default=str).encode()
                    blob = struct.pack(">I", len(body)) + body
                    sock.sendall(blob[: max(5, len(blob) // 2)])
                    _drop_connection()
                    continue
                send_frame(sock, result)
                recv_frame(sock)  # the ack: sent only after the settle
                if action == "duplicate":
                    send_frame(sock, result)
                    recv_frame(sock)  # acked with settled=false
            except (OSError, ConnectionError):
                _drop_connection()
                continue
            executed += 1
            deadline = time.monotonic() + retry_for
            if max_units is not None and executed >= max_units:
                return 0
    finally:
        _drop_connection()
