"""``repro.engine`` — parallel experiment orchestration.

A work-unit scheduler plus a fault-tolerant multiprocess worker pool
that parallelizes experiment execution end to end while keeping reports
**byte-identical** to serial runs (see ``docs/engine.md``):

* experiments declare their sweeps as content-hashed
  :class:`~repro.engine.units.WorkUnit`\\ s (the hash doubles as the
  on-disk sweep-cache key);
* the :class:`~repro.engine.scheduler.EngineSession` deduplicates units
  within a batch and against both cache tiers, dispatches the misses
  across N worker processes, and merges results deterministically;
* the :class:`~repro.engine.pool.WorkerPool` survives worker deaths —
  per-unit timeouts, bounded retry with backoff, and a killed worker
  loses only its single in-flight unit — degrading to in-process serial
  execution when ``multiprocessing`` is unavailable;
* everything observable flows through an
  :class:`~repro.engine.events.EventLog` (progress, ETA, cache hits,
  crashes), mirrored to ``repro.util.logging`` and optionally to JSONL;
* runs are **crash-safe and resumable**: with a ``run_id``, every
  settled unit is write-ahead journaled
  (:class:`~repro.engine.journal.RunJournal`), SIGINT/SIGTERM drains
  gracefully (:class:`~repro.engine.pool.RunInterrupted` carries a
  resume hint), and ``--resume`` replays the journal as a cache tier
  ahead of the sweep store — proven by the fault-injection harness in
  :mod:`repro.engine.chaos`;
* execution is **location-transparent**: ``--listen`` swaps the process
  pool for the :class:`~repro.engine.remote.RemotePool`, whose workers
  (``repro worker --connect``) lease units over a socket protocol with
  journal-before-acknowledge durability and at-most-once settle — the
  same byte-identity and resume guarantees across machines.

Typical use is via the CLI (``repro run <id> --parallel N``,
``repro runall``) or::

    from repro import engine

    with engine.session(n_workers=4) as sess:
        engine.precompute(sess, ["table2", "fig2"], {"scale": 0.15})
        report = run_experiment("table2")   # hot caches, serial semantics
"""

from repro.engine.events import EngineEvent, EventLog
from repro.engine.journal import (
    RunJournal,
    new_run_id,
    read_manifest,
    resolve_run_dir,
    run_path,
    runs_root,
    write_manifest,
)
from repro.engine.pool import (
    EngineError,
    PoolUnavailable,
    RunInterrupted,
    SerialPool,
    UnitFailure,
    WorkerPool,
    default_workers,
)
from repro.engine.scheduler import (
    EngineSession,
    drain_on_signal,
    precompute,
    session,
)
from repro.engine.units import WorkUnit, register_executor

__all__ = [
    "EngineError",
    "EngineEvent",
    "EngineSession",
    "EventLog",
    "PoolUnavailable",
    "RunInterrupted",
    "RunJournal",
    "SerialPool",
    "UnitFailure",
    "WorkUnit",
    "WorkerPool",
    "default_workers",
    "drain_on_signal",
    "new_run_id",
    "precompute",
    "read_manifest",
    "register_executor",
    "resolve_run_dir",
    "run_path",
    "runs_root",
    "session",
    "write_manifest",
]
