"""Endpoint logic for ``repro serve`` — parse, resolve, respond.

The HTTP framing lives in :mod:`repro.serve.server`; this module is the
application: a :class:`ServeApp` owning the serving cache tier
(:class:`~repro.serve.lru.LRUCache` + :class:`~repro.serve.lru
.SingleFlight`), the point-query :class:`~repro.serve.batcher
.MicroBatcher`, and one async handler per route.

Endpoints (see ``docs/serving.md`` for schemas):

=====================  ====================================================
``GET /healthz``        liveness + version + cache occupancy
``GET /metrics``        Prometheus text exposition of the obs registry
``GET /v1/experiments`` the experiment registry (id, description, options)
``POST /v1/eval``       one point query (Eqs 1–8) via the micro-batcher
``POST /v1/sweep``      power-of-two size sweeps for a list of points
``POST /v1/optimize``   optimal-(r, rl) design search
``GET /v1/report/<id>`` a paper table/figure report, byte-identical to
                        ``repro run <id>`` output
=====================  ====================================================

Every query answer flows LRU → single-flight → (batcher or thread) →
:func:`repro.pipeline.resolve_units` / :func:`~repro.experiments.registry
.run_experiment`, so the journal → memo → disk tiers keep working exactly
as they do for the CLI, and a warm server answers repeats without any
evaluation at all.
"""

from __future__ import annotations

import asyncio
import json
import time

from repro import obs
from repro.experiments.store import SweepStore
from repro.serve import queries
from repro.serve.batcher import MicroBatcher
from repro.serve.lru import LRUCache, SingleFlight

__all__ = ["ServeApp", "HttpError", "json_response"]

#: bounded-latency buckets suited to sub-millisecond cache hits
_LATENCY_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

_REQUESTS = obs.counter(
    "serve_requests_total", "HTTP requests by endpoint and status",
    labels=("endpoint", "status"),
)
_LATENCY = obs.histogram(
    "serve_request_seconds", "request wall time by endpoint",
    labels=("endpoint",), buckets=_LATENCY_BUCKETS,
)
_CACHE = obs.counter(
    "serve_cache_lookups_total", "serving-tier cache lookups",
    labels=("tier", "result"),
)
_COALESCED = obs.counter(
    "serve_coalesced_total", "queries coalesced onto an in-flight identical one",
)
_EVALS = obs.counter(
    "serve_evaluations_total", "underlying evaluations by query kind",
    labels=("kind",),
)


class HttpError(Exception):
    """An error with a client-facing status code and message."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


def json_response(payload: dict) -> bytes:
    return (json.dumps(payload, sort_keys=True) + "\n").encode()


def _require_number(body: dict, name: str) -> float:
    value = body.get(name)
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise HttpError(400, f"field {name!r} must be a number")
    return float(value)


def _opt_str(body: dict, name: str) -> "str | None":
    value = body.get(name)
    if value is not None and not isinstance(value, str):
        raise HttpError(400, f"field {name!r} must be a string")
    return value


def _opt_int(body: dict, name: str, default: int) -> int:
    value = body.get(name, default)
    if not isinstance(value, int) or isinstance(value, bool) or value < 1:
        raise HttpError(400, f"field {name!r} must be a positive integer")
    return value


def _points_of(body: dict) -> "list[dict]":
    pts = body.get("points")
    if not isinstance(pts, list) or not pts or not all(
            isinstance(p, dict) for p in pts):
        raise HttpError(400, "field 'points' must be a non-empty list of objects")
    return pts


class ServeApp:
    """The serving application: routes + the in-memory cache tier."""

    def __init__(self, cache_size: int = 4096):
        self.lru = LRUCache(cache_size)
        self.flight = SingleFlight()
        self.batcher = MicroBatcher()
        self.started_at = time.time()
        self.requests = 0

    # ── the cache frontend ────────────────────────────────────────────────

    async def cached(self, kind: str, description: dict, factory) -> dict:
        """LRU → single-flight → ``factory`` for one content-hashed query.

        ``description`` must canonically describe everything the response
        depends on; its hash is the cache identity (the same scheme as
        work-unit keys, :meth:`SweepStore.key_for`).
        """
        key = SweepStore.key_for(description)
        hit = self.lru.get(key)
        if hit is not None:
            _CACHE.inc(tier="lru", result="hit")
            return hit  # type: ignore[return-value]
        _CACHE.inc(tier="lru", result="miss")
        before = self.flight.coalesced

        async def compute():
            _EVALS.inc(kind=kind)
            return await factory()

        result = await self.flight.do(key, compute)
        if self.flight.coalesced > before:
            _COALESCED.inc(self.flight.coalesced - before)
        self.lru.put(key, result)
        return result  # type: ignore[return-value]

    # ── query endpoints ───────────────────────────────────────────────────

    async def eval_point(self, body: dict) -> dict:
        model = _opt_str(body, "model") or "merging-symmetric"
        spec = queries.MODELS.get(model)
        if spec is None:
            raise HttpError(
                400,
                f"unknown model {model!r}; known: {', '.join(sorted(queries.MODELS))}",
            )
        n = _opt_int(body, "n", 256)
        growth = _opt_str(body, "growth")
        perf = _opt_str(body, "perf")
        point = {name: _require_number(body, name) for name in spec["required"]}
        for name in spec["optional"]:
            point[name] = (_require_number(body, name)
                           if body.get(name) is not None else 1.0)
        group = (model, n, growth, perf)

        async def factory():
            try:
                speedup = await self.batcher.submit(group, point)
            except queries.QueryError as exc:
                raise HttpError(400, str(exc)) from None
            return {"model": model, "n": n, "growth": growth, "perf": perf,
                    **point, "speedup": speedup}

        return await self.cached(
            "point", {"endpoint": "eval", "group": list(group), "point": point},
            factory,
        )

    async def _resolve_grid(self, fn, kwargs: dict, label: str) -> dict:
        """One grid work unit through the pipeline tiers, off-loop."""
        from repro.pipeline import model_eval_grid_unit, resolve_units

        unit = model_eval_grid_unit(fn, kwargs, label=label)

        def run():
            try:
                return resolve_units([unit])[unit.key]
            except queries.QueryError as exc:
                raise HttpError(400, str(exc)) from None

        return await asyncio.to_thread(run)

    async def eval_sweep(self, body: dict) -> dict:
        model = _opt_str(body, "model") or "merging-symmetric"
        if model not in queries.MODELS:
            raise HttpError(
                400,
                f"unknown model {model!r}; known: {', '.join(sorted(queries.MODELS))}",
            )
        n = _opt_int(body, "n", 256)
        growth = _opt_str(body, "growth")
        perf = _opt_str(body, "perf")
        fields = queries._SWEEP_FIELDS[model]
        points = _points_of(body)
        kwargs: dict = {"model": model, "n": n, "growth": growth, "perf": perf}
        for name in fields:
            if name == "r":
                kwargs[name] = [float(p.get("r", 1.0)) for p in points]
            else:
                kwargs[name] = [_require_number(p, name) for p in points]

        async def factory():
            payload = await self._resolve_grid(
                queries.eval_sweep, kwargs, f"serve-sweep:{model}x{len(points)}")
            return {"model": model, "n": n, "growth": growth, "perf": perf,
                    "sizes": payload["sizes"], "speedup": payload["speedup"]}

        return await self.cached(
            "sweep", {"endpoint": "sweep", "kwargs": kwargs}, factory)

    async def optimize(self, body: dict) -> dict:
        points = _points_of(body)
        kwargs: dict = {
            "f": [_require_number(p, "f") for p in points],
            "fcon_share": [_require_number(p, "fcon_share") for p in points],
            "fored_share": [_require_number(p, "fored_share") for p in points],
            "n": _opt_int(body, "n", 256),
            "growth": _opt_str(body, "growth"),
            "perf": _opt_str(body, "perf"),
        }
        choices = body.get("r_choices")
        if choices is not None:
            if (not isinstance(choices, list) or not choices or not all(
                    isinstance(c, (int, float)) and not isinstance(c, bool)
                    for c in choices)):
                raise HttpError(400, "field 'r_choices' must be a list of numbers")
            kwargs["r_choices"] = [float(c) for c in choices]

        async def factory():
            payload = await self._resolve_grid(
                queries.search_optimal, kwargs,
                f"serve-optimize:x{len(points)}")
            return {"n": kwargs["n"], "growth": kwargs["growth"],
                    "perf": kwargs["perf"], **payload}

        return await self.cached(
            "optimize", {"endpoint": "optimize", "kwargs": kwargs}, factory)

    # ── report endpoints ──────────────────────────────────────────────────

    @staticmethod
    def _report_options(params: dict) -> dict:
        """Driver options from query parameters (CLI-flag shaped)."""
        options: dict = {}
        if "scale" in params:
            try:
                options["scale"] = float(params["scale"])
            except ValueError:
                raise HttpError(400, "query parameter 'scale' must be a number")
        if "threads" in params:
            try:
                options["thread_counts"] = tuple(
                    int(t) for t in params["threads"].split(",") if t)
            except ValueError:
                raise HttpError(400, "query parameter 'threads' must be a "
                                     "comma-separated list of integers")
        if "n" in params:
            try:
                options["n"] = int(params["n"])
            except ValueError:
                raise HttpError(400, "query parameter 'n' must be an integer")
        return options

    async def report(self, experiment_id: str, params: dict) -> dict:
        from repro.experiments.registry import (
            SPECS,
            filter_options,
            run_experiment,
        )
        from repro.experiments.store import report_to_dict

        if experiment_id not in SPECS:
            raise HttpError(404, f"unknown experiment {experiment_id!r}")
        options = filter_options(experiment_id, self._report_options(params))

        async def factory():
            def run():
                report = run_experiment(experiment_id, **options)
                return {"experiment_id": experiment_id,
                        "options": {k: list(v) if isinstance(v, tuple) else v
                                    for k, v in sorted(options.items())},
                        "render": report.render(),
                        "all_match": report.all_match,
                        "report": report_to_dict(report)}

            return await asyncio.to_thread(run)

        return await self.cached(
            "report",
            {"endpoint": "report", "experiment": experiment_id,
             "options": {k: list(v) if isinstance(v, tuple) else v
                         for k, v in sorted(options.items())}},
            factory,
        )

    # ── infrastructure endpoints ──────────────────────────────────────────

    def healthz(self) -> dict:
        from repro.cli import version_string

        return {
            "status": "ok",
            "version": version_string(),
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "requests": self.requests,
            "lru": self.lru.info(),
            "inflight": self.flight.inflight(),
            "batches": {"count": self.batcher.batches,
                        "points": self.batcher.points},
        }

    def metrics(self) -> str:
        """The Prometheus exposition, with the pipeline tiers' counters
        mirrored in as gauges so one scrape shows every cache tier."""
        from repro.experiments import simsweep
        from repro.pipeline import memo_info

        tiers = obs.gauge("serve_pipeline_tier", "pipeline cache-tier counters "
                          "as seen at scrape time", labels=("tier", "event"))
        for event, value in memo_info().items():
            tiers.set(float(value), tier="memo", event=event)
        for event in ("memory_hits", "disk_hits", "misses"):
            tiers.set(float(simsweep.cache_info().get(event, 0)),
                      tier="sweep", event=event)
        return obs.render_prometheus()

    def experiments(self) -> list:
        from repro.experiments.registry import SPECS, describe_experiment
        from repro.pipeline import accepted_options

        entries = []
        for name in sorted(SPECS):
            accepted = accepted_options(SPECS[name].assemble)
            entries.append({
                "id": name,
                "description": describe_experiment(name),
                "options": sorted(accepted) if accepted is not None else None,
            })
        return entries

    # ── dispatch ──────────────────────────────────────────────────────────

    async def handle(self, method: str, path: str, params: dict,
                     body: bytes) -> "tuple[int, str, bytes]":
        """Route one request; returns ``(status, content_type, payload)``."""
        endpoint, t0 = "unknown", time.perf_counter()
        self.requests += 1
        try:
            if path == "/healthz" and method == "GET":
                endpoint = "healthz"
                return self._finish(endpoint, t0, 200, "application/json",
                                    json_response(self.healthz()))
            if path == "/metrics" and method == "GET":
                endpoint = "metrics"
                return self._finish(endpoint, t0, 200,
                                    "text/plain; version=0.0.4",
                                    self.metrics().encode())
            if path == "/v1/experiments" and method == "GET":
                endpoint = "experiments"
                return self._finish(endpoint, t0, 200, "application/json",
                                    json_response({"experiments": self.experiments()}))
            if path.startswith("/v1/report/") and method == "GET":
                endpoint = "report"
                payload = await self.report(path[len("/v1/report/"):], params)
                if params.get("format") == "text":
                    return self._finish(endpoint, t0, 200, "text/plain",
                                        (payload["render"] + "\n").encode())
                return self._finish(endpoint, t0, 200, "application/json",
                                    json_response(payload))
            if path in ("/v1/eval", "/v1/sweep", "/v1/optimize"):
                if method != "POST":
                    raise HttpError(405, f"{path} requires POST")
                endpoint = path.rsplit("/", 1)[-1]
                try:
                    parsed = json.loads(body.decode() or "{}")
                except (ValueError, UnicodeDecodeError):
                    raise HttpError(400, "request body must be valid JSON")
                if not isinstance(parsed, dict):
                    raise HttpError(400, "request body must be a JSON object")
                handler = {"eval": self.eval_point, "sweep": self.eval_sweep,
                           "optimize": self.optimize}[endpoint]
                payload = await handler(parsed)
                return self._finish(endpoint, t0, 200, "application/json",
                                    json_response(payload))
            raise HttpError(404, f"no route for {method} {path}")
        except HttpError as exc:
            return self._finish(endpoint, t0, exc.status, "application/json",
                                json_response({"error": exc.message}))
        except Exception as exc:  # noqa: BLE001 - a request must never kill the loop
            return self._finish(endpoint, t0, 500, "application/json",
                                json_response({"error": f"internal error: {exc}"}))

    def _finish(self, endpoint: str, t0: float, status: int,
                content_type: str, payload: bytes) -> "tuple[int, str, bytes]":
        _REQUESTS.inc(endpoint=endpoint, status=str(status))
        _LATENCY.observe(time.perf_counter() - t0, endpoint=endpoint)
        return status, content_type, payload
