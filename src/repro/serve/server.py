"""A stdlib-only asyncio HTTP/1.1 server for :class:`~repro.serve
.handlers.ServeApp`.

No frameworks: one ``asyncio.start_server`` accept loop, one coroutine
per connection speaking just enough HTTP/1.1 for a JSON API — request
line, headers, ``Content-Length`` bodies, persistent connections
(keep-alive is what makes high closed-loop QPS possible), and bounded
header/body sizes so a misbehaving client cannot balloon memory.

Three entry points:

* :func:`serve_forever` — the async server (used by the CLI);
* :func:`run` — blocking wrapper with SIGINT/SIGTERM-friendly shutdown;
* :class:`BackgroundServer` — run a server on an ephemeral port in a
  daemon thread, for tests and the load generator's ``--spawn`` mode.
"""

from __future__ import annotations

import asyncio
import json
import threading
from urllib.parse import parse_qsl, unquote, urlsplit

from repro.serve.handlers import ServeApp
from repro.util.logging import get_logger

__all__ = ["serve_forever", "run", "BackgroundServer"]

log = get_logger("serve")

_MAX_HEADER_BYTES = 64 * 1024
_MAX_BODY_BYTES = 4 * 1024 * 1024

_STATUS_TEXT = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout",
    413: "Payload Too Large", 500: "Internal Server Error",
}


def _response_bytes(status: int, content_type: str, payload: bytes,
                    keep_alive: bool) -> bytes:
    head = (
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(payload)}\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        "\r\n"
    )
    return head.encode() + payload


async def _read_request(reader: asyncio.StreamReader):
    """Parse one request; returns ``(method, path, params, body, keep_alive)``
    or None on a cleanly closed connection."""
    try:
        header_blob = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if exc.partial:
            raise ValueError("truncated request") from None
        return None  # client closed between requests: normal keep-alive end
    except asyncio.LimitOverrunError:
        raise ValueError("request headers too large") from None
    if len(header_blob) > _MAX_HEADER_BYTES:
        raise ValueError("request headers too large")
    lines = header_blob.decode("latin-1").split("\r\n")
    try:
        method, target, version = lines[0].split(" ", 2)
    except ValueError:
        raise ValueError(f"malformed request line {lines[0]!r}") from None
    headers = {}
    for line in lines[1:]:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    split = urlsplit(target)
    path = unquote(split.path)
    params = dict(parse_qsl(split.query))
    length = int(headers.get("content-length", "0") or "0")
    if length > _MAX_BODY_BYTES:
        raise ValueError("request body too large")
    body = await reader.readexactly(length) if length else b""
    # HTTP/1.0 connections default to close; only 1.1 defaults to keep-alive
    default = "close" if version.strip().upper() == "HTTP/1.0" else "keep-alive"
    keep_alive = headers.get("connection", default).lower() != "close"
    return method.upper(), path, params, body, keep_alive


async def _handle_connection(app: ServeApp, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter,
                             idle_timeout: "float | None" = None) -> None:
    try:
        while True:
            try:
                # the idle deadline covers the whole read: a client that
                # never sends, or stalls mid-header/mid-body (slowloris),
                # cannot hold the connection task forever
                if idle_timeout is not None:
                    request = await asyncio.wait_for(_read_request(reader),
                                                     timeout=idle_timeout)
                else:
                    request = await _read_request(reader)
            except asyncio.TimeoutError:
                writer.write(_response_bytes(
                    408, "application/json",
                    (json.dumps({"error": "idle timeout"}) + "\n").encode(),
                    False))
                await writer.drain()
                return
            except (ValueError, asyncio.IncompleteReadError) as exc:
                writer.write(_response_bytes(
                    400, "application/json",
                    (json.dumps({"error": str(exc)}) + "\n").encode(), False))
                await writer.drain()
                return
            if request is None:
                return
            method, path, params, body, keep_alive = request
            status, ctype, payload = await app.handle(method, path, params, body)
            writer.write(_response_bytes(status, ctype, payload, keep_alive))
            await writer.drain()
            if not keep_alive:
                return
    except (ConnectionResetError, BrokenPipeError):
        pass  # client went away mid-response: not the server's problem
    except asyncio.CancelledError:
        pass  # server shutdown; ending normally keeps the stream
        # protocol's done-callback from logging the cancellation
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError,
                asyncio.CancelledError):
            pass


async def serve_forever(
    app: "ServeApp | None" = None,
    host: str = "127.0.0.1",
    port: int = 8177,
    ready: "asyncio.Event | None" = None,
    on_bound=None,
    idle_timeout: "float | None" = 30.0,
) -> None:
    """Serve until cancelled.  ``on_bound(host, port)`` (if given) is
    called with the actual bound address — port 0 picks an ephemeral one.
    ``idle_timeout`` closes a connection (408) after that many seconds
    without a complete request; ``None`` disables the deadline."""
    app = app if app is not None else ServeApp()
    server = await asyncio.start_server(
        lambda r, w: _handle_connection(app, r, w, idle_timeout), host, port,
        limit=_MAX_HEADER_BYTES,
    )
    bound = server.sockets[0].getsockname()
    log.info("serving on http://%s:%s", bound[0], bound[1])
    if on_bound is not None:
        on_bound(bound[0], bound[1])
    if ready is not None:
        ready.set()
    async with server:
        await server.serve_forever()


def run(app: "ServeApp | None" = None, host: str = "127.0.0.1",
        port: int = 8177, idle_timeout: "float | None" = 30.0) -> int:
    """Blocking entry point for the CLI; returns an exit code."""
    try:
        asyncio.run(serve_forever(app, host, port,
                                  on_bound=lambda h, p: print(
                                      f"repro.serve listening on http://{h}:{p}",
                                      flush=True),
                                  idle_timeout=idle_timeout))
    except KeyboardInterrupt:
        print("serve: shut down")
        return 0
    except OSError as exc:
        print(f"serve: cannot bind {host}:{port}: {exc}")
        return 1
    return 0


class BackgroundServer:
    """A server on a daemon thread with its own event loop.

    >>> with BackgroundServer() as srv:           # doctest: +SKIP
    ...     requests_go_to(f"http://127.0.0.1:{srv.port}")

    Used by ``tests/serve`` and by ``scripts/run_loadgen.py --spawn``;
    exiting the context cancels the server and joins the thread.
    """

    def __init__(self, app: "ServeApp | None" = None,
                 host: str = "127.0.0.1", port: int = 0,
                 idle_timeout: "float | None" = 30.0):
        self.app = app if app is not None else ServeApp()
        self.host = host
        self.port = port
        self.idle_timeout = idle_timeout
        self._loop: "asyncio.AbstractEventLoop | None" = None
        self._thread: "threading.Thread | None" = None
        self._bound = threading.Event()
        self._task: "asyncio.Task | None" = None

    def _main(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)

        def on_bound(_host, port):
            self.port = port
            self._bound.set()

        self._task = loop.create_task(serve_forever(
            self.app, self.host, self.port, on_bound=on_bound,
            idle_timeout=self.idle_timeout))
        try:
            loop.run_until_complete(self._task)
        except asyncio.CancelledError:
            pass
        finally:
            # open keep-alive connections have their own tasks parked in
            # readuntil; cancel them before closing the loop
            pending = [t for t in asyncio.all_tasks(loop) if not t.done()]
            for t in pending:
                t.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True))
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    def __enter__(self) -> "BackgroundServer":
        self._thread = threading.Thread(target=self._main,
                                        name="repro-serve", daemon=True)
        self._thread.start()
        if not self._bound.wait(timeout=10):
            raise RuntimeError("server failed to bind within 10s")
        return self

    def __exit__(self, *exc_info) -> None:
        if self._loop is not None and self._task is not None:
            self._loop.call_soon_threadsafe(self._task.cancel)
        if self._thread is not None:
            self._thread.join(timeout=10)
