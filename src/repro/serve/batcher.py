"""Micro-batching: many point queries, one vectorized kernel invocation.

Point queries are tiny (one float out), so per-query kernel dispatch
would dominate under load.  The :class:`MicroBatcher` exploits the event
loop's natural arrival batching: every point query submitted while the
loop is busy with the current tick lands in a pending list, and one
``call_soon`` callback — scheduled when the first point arrives — drains
the whole list at the next tick.  Points are grouped by their kernel
signature ``(model, n, growth, perf)`` and each group becomes **one**
``model-eval-grid`` work unit over stacked parameter arrays, resolved
through the standard pipeline tiers off-loop (``asyncio.to_thread``) so
the loop keeps accepting connections while numpy works.

Because the grid kernels are elementwise over the point axis, each
point's answer is bit-identical whether it was evaluated alone or in any
batch — which is what makes it safe for the caller to cache per-point
responses out of a batched evaluation.
"""

from __future__ import annotations

import asyncio

from repro import obs
from repro.serve import queries

__all__ = ["MicroBatcher", "BATCH_FIELDS"]

#: the per-point parameter fields a batch stacks into parallel arrays
BATCH_FIELDS = ("f", "fcon_share", "fored_share", "r", "rl", "p")

_BATCH_POINTS = obs.histogram(
    "serve_batch_points", "point queries coalesced per grid invocation",
    buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256),
)
_EVALS = obs.counter(
    "serve_evaluations_total", "underlying evaluations by query kind",
    labels=("kind",),
)


class MicroBatcher:
    """Gathers point queries per event-loop tick into grid units.

    Event-loop-local like the rest of the serving tier: ``submit`` must be
    called from the loop's thread; only the grid resolution itself runs on
    a worker thread.
    """

    def __init__(self):
        self._pending: "list[tuple[tuple, dict, asyncio.Future]]" = []
        self._scheduled = False
        self.batches = 0
        self.points = 0

    async def submit(self, group: tuple, point: "dict[str, float]") -> float:
        """Queue one point for the next flush; returns its speedup.

        ``group`` is the kernel signature ``(model, n, growth, perf)``;
        ``point`` maps each relevant :data:`BATCH_FIELDS` name to a float.
        """
        fut: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending.append((group, point, fut))
        if not self._scheduled:
            self._scheduled = True
            asyncio.get_running_loop().call_soon(self._flush)
        return await fut

    def _flush(self) -> None:
        """Drain everything queued this tick into one task per group."""
        batch, self._pending = self._pending, []
        self._scheduled = False
        if not batch:
            return
        groups: "dict[tuple, list[tuple[dict, asyncio.Future]]]" = {}
        for group, point, fut in batch:
            groups.setdefault(group, []).append((point, fut))
        for group, items in groups.items():
            asyncio.get_running_loop().create_task(self._run_group(group, items))

    async def _run_group(self, group: tuple,
                         items: "list[tuple[dict, asyncio.Future]]") -> None:
        # function-level import: repro.pipeline must not be this package's
        # first import (its builders module loads the experiments registry)
        from repro.pipeline import model_eval_grid_unit, resolve_units

        model, n, growth, perf = group
        kwargs: dict = {"model": model, "n": n, "growth": growth, "perf": perf}
        for field in BATCH_FIELDS:
            if any(field in point for point, _ in items):
                kwargs[field] = [float(point.get(field, 0.0))
                                 for point, _ in items]
        self.batches += 1
        self.points += len(items)
        _BATCH_POINTS.observe(len(items))
        _EVALS.inc(kind="point-batch")
        unit = model_eval_grid_unit(
            queries.eval_point_batch, kwargs,
            label=f"serve-batch:{model}x{len(items)}",
        )
        try:
            payloads = await asyncio.to_thread(resolve_units, [unit])
            speedups = payloads[unit.key]["speedup"]
        except Exception as exc:
            for _, fut in items:
                if not fut.done():
                    fut.set_exception(exc)
                    fut.exception()  # a cancelled caller must not warn
            return
        for i, (_, fut) in enumerate(items):
            if not fut.done():
                fut.set_result(float(speedups[i]))
