"""Query evaluators: the serving layer's entry points into Eqs 1–8.

Every expensive thing the server computes is expressed as a module-level
function here, so a query can become one ``model-eval-grid``
:class:`~repro.engine.units.WorkUnit` (function *reference* + plain-data
kwargs) and resolve through the standard pipeline tiers — the server adds
its LRU/single-flight tier in front but never bypasses the substrate.

Three evaluators, one per query family:

* :func:`eval_point_batch` — a whole micro-batch of point queries as one
  vectorized :mod:`repro.core.gridkernels` call.  Kernels are elementwise
  over the point axis, so each answer is bit-identical to evaluating the
  point alone — batch composition can never change a response (proved by
  ``tests/serve/test_batcher.py``).
* :func:`eval_sweep` — one or more parameter points swept across the
  power-of-two size grid (a Fig-4/Fig-5-shaped curve per point).
* :func:`search_optimal` — the optimal-(r, rl) design search: best
  symmetric and best asymmetric designs plus their Hill–Marty references,
  mirroring :func:`repro.core.gridkernels.conclusions_grid`.

Validation raises :class:`QueryError` with a client-presentable message;
the HTTP layer maps it to a 400.
"""

from __future__ import annotations

import numpy as np

from repro.core import gridkernels
from repro.core.merging import power_of_two_sizes

__all__ = [
    "QueryError",
    "MODELS",
    "eval_point_batch",
    "eval_sweep",
    "search_optimal",
]


class QueryError(ValueError):
    """A malformed query (unknown model, missing/invalid parameters)."""


#: model name -> the parameter fields each point must carry.  ``r`` in the
#: asymmetric models is the small-core size and defaults to 1 BCE (the
#: paper's base core), so it is accepted but not required.
MODELS: "dict[str, dict]" = {
    "amdahl": {"required": ("f", "p"), "optional": ()},
    "hm-symmetric": {"required": ("f", "r"), "optional": ()},
    "hm-asymmetric": {"required": ("f", "rl"), "optional": ()},
    "merging-symmetric": {
        "required": ("f", "fcon_share", "fored_share", "r"), "optional": (),
    },
    "merging-asymmetric": {
        "required": ("f", "fcon_share", "fored_share", "rl"), "optional": ("r",),
    },
    "comm-symmetric": {"required": ("f", "fcon_share", "r"), "optional": ()},
    "comm-asymmetric": {"required": ("f", "fcon_share", "rl"), "optional": ("r",)},
}

#: fields a sweep point may carry (the swept size axis comes from ``n``)
_SWEEP_FIELDS = {
    "amdahl": ("f",),
    "hm-symmetric": ("f",),
    "hm-asymmetric": ("f",),
    "merging-symmetric": ("f", "fcon_share", "fored_share"),
    "merging-asymmetric": ("f", "fcon_share", "fored_share", "r"),
    "comm-symmetric": ("f", "fcon_share"),
    "comm-asymmetric": ("f", "fcon_share", "r"),
}


def _field(kwargs: dict, name: str, length: int, default: "float | None" = None
           ) -> np.ndarray:
    values = kwargs.get(name)
    if values is None or (hasattr(values, "__len__") and len(values) == 0):
        if default is None:
            raise QueryError(f"model {kwargs.get('model')!r} requires {name!r}")
        return np.full(length, float(default))
    arr = np.asarray(values, dtype=np.float64)
    if arr.shape != (length,):
        raise QueryError(
            f"field {name!r} must have one value per point "
            f"(expected {length}, got {arr.size})"
        )
    return arr


def _check_model(model: str) -> dict:
    spec = MODELS.get(model)
    if spec is None:
        raise QueryError(
            f"unknown model {model!r}; known: {', '.join(sorted(MODELS))}"
        )
    return spec


def eval_point_batch(
    model: str,
    n: int = 256,
    growth: "str | None" = None,
    perf: "str | None" = None,
    f: "list | tuple" = (),
    fcon_share: "list | tuple" = (),
    fored_share: "list | tuple" = (),
    r: "list | tuple" = (),
    rl: "list | tuple" = (),
    p: "list | tuple" = (),
) -> dict:
    """Speedups for a batch of point queries, one vectorized kernel call.

    All supplied fields are parallel per-point lists.  Returns
    ``{"speedup": [...]}`` in point order.
    """
    _check_model(model)
    kw = {"model": model, "f": f, "fcon_share": fcon_share,
          "fored_share": fored_share, "r": r, "rl": rl, "p": p}
    m = len(f)
    if m == 0:
        raise QueryError("a point batch needs at least one point (empty 'f')")
    try:
        if model == "amdahl":
            sp = gridkernels.amdahl_speedup(_field(kw, "f", m), _field(kw, "p", m))
        elif model == "hm-symmetric":
            sp = gridkernels.hm_symmetric(_field(kw, "f", m), n,
                                          _field(kw, "r", m), perf)
        elif model == "hm-asymmetric":
            sp = gridkernels.hm_asymmetric(_field(kw, "f", m), n,
                                           _field(kw, "rl", m), perf)
        elif model == "merging-symmetric":
            sp = gridkernels.merging_symmetric(
                _field(kw, "f", m), _field(kw, "fcon_share", m),
                _field(kw, "fored_share", m), n, _field(kw, "r", m),
                growth, perf,
            )
        elif model == "merging-asymmetric":
            sp = gridkernels.merging_asymmetric(
                _field(kw, "f", m), _field(kw, "fcon_share", m),
                _field(kw, "fored_share", m), n, _field(kw, "rl", m),
                _field(kw, "r", m, default=1.0), growth, perf,
            )
        elif model == "comm-symmetric":
            sp = gridkernels.comm_symmetric(
                _field(kw, "f", m), _field(kw, "fcon_share", m), n,
                _field(kw, "r", m), perf=perf,
            )
        else:  # comm-asymmetric
            sp = gridkernels.comm_asymmetric(
                _field(kw, "f", m), _field(kw, "fcon_share", m), n,
                _field(kw, "rl", m), _field(kw, "r", m, default=1.0), perf=perf,
            )
    except ValueError as exc:  # range checks from the kernels
        raise QueryError(str(exc)) from None
    return {"speedup": np.asarray(sp, dtype=np.float64)}


def eval_sweep(
    model: str,
    n: int = 256,
    growth: "str | None" = None,
    perf: "str | None" = None,
    f: "list | tuple" = (),
    fcon_share: "list | tuple" = (),
    fored_share: "list | tuple" = (),
    r: "list | tuple" = (),
) -> dict:
    """Each point's speedup curve across the power-of-two size grid.

    For symmetric models the swept axis is the per-core size ``r``; for
    asymmetric ones it is the large-core size ``rl`` (with ``r`` the fixed
    small-core size per point).  Returns ``{"sizes": [...], "speedup":
    [[...] per point]}``.
    """
    _check_model(model)
    fields = _SWEEP_FIELDS[model]
    kw = {"model": model, "f": f, "fcon_share": fcon_share,
          "fored_share": fored_share, "r": r}
    m = len(f)
    if m == 0:
        raise QueryError("a sweep needs at least one point (empty 'f')")
    sizes = power_of_two_sizes(n)
    cols = {}
    for name in fields:
        default = 1.0 if name == "r" else None
        cols[name] = _field(kw, name, m, default=default)[:, None]
    try:
        if model == "amdahl":
            sp = gridkernels.amdahl_speedup(cols["f"], sizes[None, :])
        elif model == "hm-symmetric":
            sp = gridkernels.hm_symmetric(cols["f"], n, sizes[None, :], perf)
        elif model == "hm-asymmetric":
            sp = gridkernels.hm_asymmetric(cols["f"], n, sizes[None, :], perf)
        elif model == "merging-symmetric":
            sp = gridkernels.merging_symmetric(
                cols["f"], cols["fcon_share"], cols["fored_share"], n,
                sizes[None, :], growth, perf,
            )
        elif model == "merging-asymmetric":
            sp = gridkernels.merging_asymmetric(
                cols["f"], cols["fcon_share"], cols["fored_share"], n,
                sizes[None, :], cols["r"], growth, perf,
            )
        elif model == "comm-symmetric":
            sp = gridkernels.comm_symmetric(
                cols["f"], cols["fcon_share"], n, sizes[None, :], perf=perf,
            )
        else:  # comm-asymmetric
            sp = gridkernels.comm_asymmetric(
                cols["f"], cols["fcon_share"], n, sizes[None, :], cols["r"],
                perf=perf,
            )
    except ValueError as exc:
        raise QueryError(str(exc)) from None
    return {"sizes": sizes, "speedup": np.asarray(sp, dtype=np.float64)}


def search_optimal(
    f: "list | tuple" = (),
    fcon_share: "list | tuple" = (),
    fored_share: "list | tuple" = (),
    n: int = 256,
    growth: "str | None" = None,
    perf: "str | None" = None,
    r_choices: "list | tuple" = (1.0, 4.0, 16.0),
) -> dict:
    """The optimal-(r, rl) design search for one or more applications.

    Vectorized over points via the :mod:`~repro.core.gridkernels`
    reducers, matching :func:`repro.core.merging.best_symmetric` /
    ``best_asymmetric`` bit-for-bit (same grids, same tie-breaking).
    """
    kw = {"model": "optimize", "f": f, "fcon_share": fcon_share,
          "fored_share": fored_share}
    m = len(f)
    if m == 0:
        raise QueryError("an optimize query needs at least one point (empty 'f')")
    fv = _field(kw, "f", m)
    con = _field(kw, "fcon_share", m)
    ored = _field(kw, "fored_share", m)
    try:
        sym_r, sym_sp = gridkernels.best_symmetric_grid(
            fv, con, ored, n, growth, perf)
        asym_rl, asym_r, asym_sp = gridkernels.best_asymmetric_grid(
            fv, con, ored, n, tuple(float(c) for c in r_choices), growth, perf)
        hm_r, hm_sp = gridkernels.hm_best_symmetric_grid(fv, n, perf)
    except ValueError as exc:
        raise QueryError(str(exc)) from None
    return {
        "symmetric": {"r": sym_r, "speedup": sym_sp},
        "asymmetric": {"rl": asym_rl, "r": asym_r, "speedup": asym_sp},
        "hill_marty": {"r": hm_r, "speedup": hm_sp},
        "acmp_ratio": asym_sp / sym_sp,
    }
