"""``repro.serve`` — the speedup model as an async query service.

The ROADMAP's serving item, realised: a stdlib-only asyncio HTTP/JSON
server that answers Eq 1–8 model queries at high QPS on top of the same
execution substrate every experiment uses (``repro.pipeline``'s
journal → memo → disk tiers), fronted by the serving-specific machinery
this package adds:

* :mod:`repro.serve.lru` — a bounded response LRU plus single-flight
  de-duplication (N identical concurrent queries → one evaluation);
* :mod:`repro.serve.batcher` — a micro-batcher folding every point query
  that arrives within one event-loop tick into a single vectorized
  ``model-eval-grid`` kernel invocation;
* :mod:`repro.serve.queries` — the module-level evaluators those grid
  units reference (point batches, size sweeps, optimal-(r, rl) search);
* :mod:`repro.serve.handlers` — endpoint logic and obs instrumentation
  (request counters, latency histograms, per-tier cache counters);
* :mod:`repro.serve.server` — minimal HTTP/1.1 framing with keep-alive.

Start it with ``repro-merging serve``; benchmark it with
``scripts/run_loadgen.py`` (emits ``BENCH_serve.json``).  See
``docs/serving.md`` for the endpoint and schema reference.
"""

from repro.serve.batcher import MicroBatcher
from repro.serve.handlers import ServeApp
from repro.serve.lru import LRUCache, SingleFlight
from repro.serve.server import BackgroundServer, run, serve_forever

__all__ = [
    "BackgroundServer",
    "LRUCache",
    "MicroBatcher",
    "ServeApp",
    "SingleFlight",
    "run",
    "serve_forever",
]
