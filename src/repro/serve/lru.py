"""The serving cache tier: a bounded LRU plus single-flight coalescing.

``repro.serve`` answers queries through the same resolution substrate as
every experiment (journal → memo → disk store → execution, see
:mod:`repro.pipeline.runtime`), but a query server needs one more tier in
front of all of those: an in-memory, bounded, *request-shaped* cache.
The pipeline memo stores unit payloads keyed by unit hash; the
:class:`LRUCache` here stores finished *response* objects keyed by the
content hash of the whole query, so a repeated query costs a dict lookup
and no model evaluation at all.

:class:`SingleFlight` is the companion de-duplicator: when N identical
queries are in flight concurrently, the first becomes the *leader* and
actually computes; the rest coalesce onto the leader's future and wake
with the same result.  Together they give the classic serving guarantee:
*at most one underlying evaluation per distinct query, no matter how many
clients ask at once* (proved by ``tests/serve/test_singleflight.py``).

Both classes are event-loop-local by design: they are only touched from
the server's asyncio thread, so neither takes a lock.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable

__all__ = ["LRUCache", "SingleFlight"]


class LRUCache:
    """A bounded mapping with least-recently-used eviction.

    Backed by dict insertion order: a hit re-inserts the key at the tail,
    an insert beyond ``maxsize`` evicts the head.  ``maxsize <= 0``
    disables caching entirely (every ``get`` misses, ``put`` is a no-op),
    which is how ``repro serve --cache-size 0`` opts out.
    """

    def __init__(self, maxsize: int = 4096):
        self.maxsize = int(maxsize)
        self._data: "dict[str, object]" = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def get(self, key: str) -> "object | None":
        """The cached value (refreshed to most-recent), or None."""
        if key not in self._data:
            self.misses += 1
            return None
        value = self._data.pop(key)
        self._data[key] = value  # re-insert at the MRU end
        self.hits += 1
        return value

    def put(self, key: str, value: object) -> None:
        """Insert (or refresh) ``key``, evicting the LRU entry if full."""
        if self.maxsize <= 0:
            return
        if key in self._data:
            self._data.pop(key)
        elif len(self._data) >= self.maxsize:
            oldest = next(iter(self._data))
            del self._data[oldest]
            self.evictions += 1
        self._data[key] = value

    def clear(self) -> None:
        self._data.clear()

    def info(self) -> dict:
        """Counters + occupancy, in the shape ``/healthz`` reports."""
        total = self.hits + self.misses
        return {
            "entries": len(self._data),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hits / total if total else 0.0,
        }


class SingleFlight:
    """Coalesce concurrent identical computations onto one future.

    ``do(key, factory)`` runs ``factory()`` at most once per key at any
    moment: the first caller (the leader) awaits the factory directly,
    every concurrent caller with the same key awaits the leader's future
    instead.  Once the flight lands (result or exception) the key is
    released, so a *later* call computes afresh — single-flight is about
    concurrency, not memoisation; pair it with :class:`LRUCache` for the
    latter.
    """

    def __init__(self):
        self._inflight: "dict[str, asyncio.Future]" = {}
        self.coalesced = 0
        self.flights = 0

    def inflight(self) -> int:
        """How many distinct keys are currently being computed."""
        return len(self._inflight)

    async def do(self, key: str, factory: Callable[[], Awaitable]) -> object:
        """Return ``factory()``'s result, computing it at most once per
        key among concurrent callers."""
        existing = self._inflight.get(key)
        if existing is not None:
            self.coalesced += 1
            # shield: a cancelled follower must not cancel the shared flight
            return await asyncio.shield(existing)
        fut: asyncio.Future = asyncio.get_running_loop().create_future()
        self._inflight[key] = fut
        self.flights += 1
        try:
            result = await factory()
        except BaseException as exc:
            if not fut.cancelled():
                fut.set_exception(exc)
                fut.exception()  # mark retrieved: followers may be zero
            raise
        else:
            if not fut.cancelled():
                fut.set_result(result)
            return result
        finally:
            self._inflight.pop(key, None)
