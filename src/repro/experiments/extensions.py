"""Extension experiments: models the paper names as future work, plus
probes beyond its scope.

* ``ext-critical`` — the combined critical-section + merging model
  (Section VI: "these can [be] combined ... to improve accuracy");
* ``ext-energy`` — the merging model under energy/EDP objectives;
* ``ext-scaled`` — weak (Gustafson) scaling with merging phases;
* ``ext-contention`` — Fig 7(a) with the bottleneck-link mesh model in
  place of Eq 8's balanced-links assumption;
* ``ext-acmp-sim`` — Eq 5's structure validated in *simulation*: the same
  workload on a simulated ACMP (big core 0) vs a symmetric CMP.
"""

from __future__ import annotations

import numpy as np

from repro.core import communication as comm
from repro.core import merging
from repro.core.critical import CriticalParams, best_symmetric_cs, speedup_symmetric_cs
from repro.core.energy import PowerModel, best_symmetric_energy
from repro.core.params import AppParams
from repro.core.scaled import (
    scaled_speedup_gustafson,
    scaled_speedup_limit,
    scaled_speedup_merging,
)
from repro.experiments.report import ExperimentReport, PaperComparison, series_table
from repro.experiments.simsweep import simulate_breakdowns
from repro.noc.contention import contended_growcomm
from repro.pipeline import ExperimentSpec, Stage, sim_point_unit
from repro.util.tables import TextTable

__all__ = [
    "run_critical",
    "run_energy",
    "run_scaled",
    "run_contention",
    "run_acmp_sim",
    "run_crossover_sim",
    "declare_units_crossover",
    "declare_units_acmp",
    "SPECS",
]


def _base() -> AppParams:
    return AppParams(f=0.99, fcon_share=0.60, fored_share=0.80)


def run_critical(n: int = 256) -> ExperimentReport:
    """Combined critical-section + merging model across cs shares."""
    report = ExperimentReport(
        "ext-critical", "Critical sections combined with merging phases"
    )
    sizes = merging.power_of_two_sizes(n)
    series = {"fcs=0 (Eq 4)": np.asarray(merging.speedup_symmetric(_base(), n, sizes))}
    bests = {}
    for share in (0.01, 0.05, 0.15, 0.30):
        p = CriticalParams(base=_base(), fcs_share=share)
        series[f"fcs={share:.0%}"] = np.asarray(
            speedup_symmetric_cs(p, n, sizes, mode="bottleneck")
        )
        bests[share] = best_symmetric_cs(p, n)
    report.add_table(series_table(
        "combined model: symmetric speedup vs r (bottleneck contention)",
        "r (BCEs/core)", [int(s) for s in sizes], series,
    ))
    report.add_comparison(PaperComparison(
        claim="negligible critical sections (Table II levels) change nothing",
        paper_value="clustering apps: cs <= 0.004%",
        measured_value=f"best {best_symmetric_cs(CriticalParams(_base(), 1e-5), n)[1]:.1f} "
                       f"vs Eq4 {merging.best_symmetric(_base(), n).speedup:.1f}",
        qualitative=True,
        claim_holds=abs(
            best_symmetric_cs(CriticalParams(_base(), 1e-5), n)[1]
            - merging.best_symmetric(_base(), n).speedup
        ) < 0.1,
    ))
    report.add_comparison(PaperComparison(
        claim="the two limiters compose: heavier locks lower every design point",
        paper_value="(monotone)",
        measured_value=", ".join(f"{s:.0%}->{sp:.1f}" for s, (_, sp) in bests.items()),
        qualitative=True,
        claim_holds=all(
            bests[a][1] >= bests[b][1] - 1e-9
            for a, b in zip(sorted(bests), sorted(bests)[1:])
        ),
    ))

    # ACS table: migrating contended critical sections to the large core
    # [Suleman et al.], across large-core sizes
    from repro.core.critical import speedup_asymmetric_cs

    cs = CriticalParams(base=_base(), fcs_share=0.10)
    acs_table = TextTable(
        title="ACMP with 10% critical sections: ACS on vs off (r=1 small cores)",
        columns=["rl", "without ACS", "with ACS", "gain"],
    )
    acs_gains = []
    for rl in (16.0, 64.0, 128.0):
        off = float(speedup_asymmetric_cs(cs, n, rl, r=1.0, accelerate_critical=False))
        on = float(speedup_asymmetric_cs(cs, n, rl, r=1.0, accelerate_critical=True))
        acs_gains.append(on / off)
        acs_table.add_row([int(rl), round(off, 1), round(on, 1), f"{on / off:.2f}x"])
    report.add_table(acs_table)
    report.add_comparison(PaperComparison(
        claim="ACS (critical sections on the big core) always helps, more "
              "with bigger cores",
        paper_value="[Suleman et al. ASPLOS'09]",
        measured_value=" -> ".join(f"{g:.2f}x" for g in acs_gains),
        qualitative=True,
        claim_holds=all(g >= 1.0 for g in acs_gains)
        and acs_gains[-1] >= acs_gains[0],
    ))
    report.raw["bests"] = bests
    report.raw["acs_gains"] = acs_gains
    return report


def run_energy(n: int = 256) -> ExperimentReport:
    """Energy/EDP-optimal designs under merging overhead."""
    report = ExperimentReport("ext-energy", "Energy-aware design points")
    pm = PowerModel(idle_fraction=0.3)
    t = TextTable(
        title="optimal symmetric design per objective (f=0.99, fcon=60%)",
        columns=["fored", "perf: r", "perf: x", "EDP: r", "EDP: x",
                 "perf/W: r", "perf/W"],
    )
    rows = {}
    for ored in (0.10, 0.40, 0.80):
        p = AppParams(f=0.99, fcon_share=0.60, fored_share=ored)
        perf_d = best_symmetric_energy(p, n, "speedup", pm)
        edp_d = best_symmetric_energy(p, n, "edp", pm)
        ppw_d = best_symmetric_energy(p, n, "perf_per_watt", pm)
        rows[ored] = (perf_d, edp_d, ppw_d)
        t.add_row([
            f"{ored:.0%}", perf_d.r, round(perf_d.speedup, 1),
            edp_d.r, round(edp_d.speedup, 1),
            ppw_d.r, round(ppw_d.perf_per_watt, 3),
        ])
    report.add_table(t)
    report.add_comparison(PaperComparison(
        claim="conclusion (b) holds for EDP too: overhead grows the optimal core",
        paper_value="(monotone in fored)",
        measured_value=" -> ".join(f"{rows[o][1].r:.0f}" for o in sorted(rows)),
        qualitative=True,
        claim_holds=all(
            rows[a][1].r <= rows[b][1].r
            for a, b in zip(sorted(rows), sorted(rows)[1:])
        ),
    ))
    report.raw["rows"] = rows
    return report


def run_scaled(max_cores: int = 4096) -> ExperimentReport:
    """Weak scaling (Gustafson) with merging phases."""
    report = ExperimentReport("ext-scaled", "Weak scaling with merging phases")
    p = _base()
    cores = np.array([1, 4, 16, 64, 256, 1024, 4096], dtype=np.float64)
    cores = cores[cores <= max_cores]
    gus = np.asarray(scaled_speedup_gustafson(p.f, cores))
    lin = np.asarray(scaled_speedup_merging(p, cores))
    log = np.asarray(scaled_speedup_merging(p, cores, "log"))
    report.add_table(series_table(
        "scaled speedup (work grows with cores)",
        "cores", [int(c) for c in cores],
        {"Gustafson": gus, "merging (linear)": lin, "merging (log)": log},
    ))
    limit = scaled_speedup_limit(p)
    report.add_comparison(PaperComparison(
        claim="weak scaling saturates at f/fored instead of growing unboundedly",
        paper_value=f"limit {limit:.0f}",
        measured_value=f"{float(lin[-1]):.0f} at {int(cores[-1])} cores",
        qualitative=True,
        claim_holds=float(lin[-1]) < limit and float(lin[-1]) > 0.8 * limit,
    ))
    report.add_comparison(PaperComparison(
        claim="log-growth merges keep weak scaling alive far longer",
        paper_value="(ordering)",
        measured_value=f"{float(log[-1]):.0f} vs {float(lin[-1]):.0f}",
        qualitative=True, claim_holds=float(log[-1]) > 2 * float(lin[-1]),
    ))
    report.raw.update(cores=cores, gustafson=gus, linear=lin, log=log)
    return report


def run_contention(n: int = 256) -> ExperimentReport:
    """Fig 7(a) with bottleneck-link contention instead of Eq 8."""
    report = ExperimentReport(
        "ext-contention", "Mesh link contention vs Eq 8's balanced-links premise"
    )
    p = _base()
    sizes = merging.power_of_two_sizes(n)
    eq8 = np.asarray(comm.speedup_symmetric_comm(p, n, sizes))
    contended = np.asarray(
        comm.speedup_symmetric_comm(p, n, sizes, comm=contended_growcomm("all_to_all"))
    )
    report.add_table(series_table(
        "Fig 7(a) under exact bottleneck-link routing",
        "r (BCEs/core)", [int(s) for s in sizes],
        {"Eq 8 (balanced links)": eq8, "bottleneck link (XY routed)": contended},
    ))
    i8, ic = int(np.argmax(eq8)), int(np.argmax(contended))
    report.add_comparison(PaperComparison(
        claim="Eq 8 is optimistic: contention lowers the peak",
        paper_value="'still provides an optimistic estimate' (Sec V.E)",
        measured_value=f"{float(contended[ic]):.1f} vs {float(eq8[i8]):.1f}",
        qualitative=True, claim_holds=float(contended[ic]) <= float(eq8[i8]),
    ))
    report.add_comparison(PaperComparison(
        claim="contention pushes the optimum to the same or larger cores",
        paper_value="r >= 8",
        measured_value=f"r={int(sizes[ic])}",
        qualitative=True, claim_holds=sizes[ic] >= sizes[i8],
    ))
    report.raw.update(eq8=eq8, contended=contended, sizes=sizes)
    return report


def _crossover_workload(n_items: int, n_bins: int):
    from repro.workloads.histogram import HistogramWorkload

    return HistogramWorkload(n_items=n_items, n_bins=n_bins, seed=7)


def _crossover_designs(budget: int) -> list:
    """Every power-of-two split of ``budget`` BCEs into (r, cores, config)."""
    from repro.simx import MachineConfig

    designs = []
    r = 1
    while r <= budget:
        nc = budget // r
        designs.append((r, nc, MachineConfig(
            n_cores=nc,
            core_perf_factors=tuple(float(r) ** 0.5 for _ in range(nc)),
        )))
        r *= 2
    return designs


def declare_units_crossover(
    budget: int = 16, n_items: int = 20000, n_bins: int = 8192
) -> list:
    """Every fixed-budget design's simulator run as an engine work unit."""
    wl = _crossover_workload(n_items, n_bins)
    return [
        sim_point_unit(wl, nc, 2, cfg) for _, nc, cfg in _crossover_designs(budget)
    ]


def run_crossover_sim(
    budget: int = 16, n_items: int = 20000, n_bins: int = 8192
) -> ExperimentReport:
    """Conclusion (b) reproduced in full-system simulation.

    Every symmetric design of a fixed BCE budget is *built* (nc cores of
    r BCEs, perf factor sqrt(r)) and a merge-heavy workload run on each.
    Under the constant-serial-section assumption the most-cores design
    should win; mechanically, the growing merge (serial accumulation of
    nc partial histograms, paid in coherence misses) makes an interior
    core size optimal — the paper's "fewer but more capable cores", with
    no analytic model in the loop.
    """
    report = ExperimentReport(
        "ext-crossover-sim",
        "The fewer-larger-cores crossover, measured in simulation",
    )
    wl = _crossover_workload(n_items, n_bins)
    cycles: dict[int, int] = {}
    for r, nc, cfg in _crossover_designs(budget):
        b = simulate_breakdowns(wl, [nc], mem_scale=2, config=cfg)[nc]
        cycles[r] = int(b.total)
    t = TextTable(
        title=f"histogram (x={n_bins} bins) on every {budget}-BCE symmetric design",
        columns=["r (BCEs/core)", "cores", "cycles", "speedup vs r=1"],
    )
    for r, c in cycles.items():
        t.add_row([r, budget // r, c, round(cycles[1] / c, 2)])
    report.add_table(t)
    best_r = min(cycles, key=cycles.get)
    report.add_comparison(PaperComparison(
        claim="max-core-count design is NOT the fastest (conclusion (b), simulated)",
        paper_value="r=1 never yields the highest speedup (Fig 4, Linear)",
        measured_value=f"best r={best_r}",
        qualitative=True, claim_holds=best_r > 1,
    ))
    report.add_comparison(PaperComparison(
        claim="the optimum is interior: one giant core is not best either",
        paper_value="peaks at intermediate r",
        measured_value=f"r={best_r} of 1..{budget}",
        qualitative=True, claim_holds=best_r < budget,
    ))
    report.raw["cycles"] = cycles
    return report


def _acmp_workload(scale: float):
    from repro.workloads.datasets import make_blobs
    from repro.workloads.kmeans import KMeansWorkload

    n_pts = max(300, int(17695 * scale))
    return KMeansWorkload(
        make_blobs(n_pts, 9, 8, seed=11), max_iterations=3, tolerance=1e-12
    )


def _acmp_configs(rl: int, n_threads: int) -> tuple:
    from repro.simx import MachineConfig

    return (
        MachineConfig.baseline(n_cores=n_threads),
        MachineConfig.asymmetric(rl=rl, n_small=n_threads - 1, r=1),
    )


def declare_units_acmp(
    scale: float = 0.08, rl: int = 16, n_threads: int = 8
) -> list:
    """Both machines' kmeans runs as engine work units."""
    wl = _acmp_workload(scale)
    return [
        sim_point_unit(wl, n_threads, 2, cfg) for cfg in _acmp_configs(rl, n_threads)
    ]


def run_acmp_sim(scale: float = 0.08, rl: int = 16, n_threads: int = 8) -> ExperimentReport:
    """Simulated ACMP vs symmetric CMP on kmeans (Eq 5's structure)."""
    report = ExperimentReport(
        "ext-acmp-sim", "Simulated ACMP: serial sections on the large core"
    )
    wl = _acmp_workload(scale)
    sym_cfg, acmp_cfg = _acmp_configs(rl, n_threads)
    sym = simulate_breakdowns(wl, [n_threads], mem_scale=2, config=sym_cfg)[n_threads]
    acmp = simulate_breakdowns(wl, [n_threads], mem_scale=2, config=acmp_cfg)[n_threads]
    t = TextTable(
        title=f"kmeans at {n_threads} threads: symmetric vs ACMP (rl={rl})",
        columns=["machine", "total", "parallel", "reduction", "init+serial"],
    )
    for name, b in (("symmetric", sym), (f"ACMP rl={rl}", acmp)):
        t.add_row([name, b.total, b.parallel, b.reduction, b.init + b.serial])
    report.add_table(t)
    serial_speedup = sym.serial_sections / acmp.serial_sections
    report.add_comparison(PaperComparison(
        claim=f"the {rl}-BCE core speeds up serial sections, but far below "
              f"perf({rl}) — the merge is memory-bound and wires don't scale",
        paper_value=f"1 < factor << {rl ** 0.5:.0f}",
        measured_value=f"{serial_speedup:.2f}",
        qualitative=True,
        # compute accelerates by sqrt(rl); the coherence-miss-dominated
        # merge barely does — mechanically the reason the paper finds the
        # ACMP advantage "indeed quite limited" for reduction-heavy apps
        claim_holds=1.02 < serial_speedup < rl ** 0.5 / 2,
    ))
    merge_speedup = sym.reduction / acmp.reduction
    report.add_comparison(PaperComparison(
        claim="the merge accelerates least of all serial parts (coherence "
              "misses dominate it)",
        paper_value="(memory-bound)",
        measured_value=f"merge {merge_speedup:.2f}x vs "
                       f"const {(sym.init + sym.serial) / (acmp.init + acmp.serial):.2f}x",
        qualitative=True,
        claim_holds=merge_speedup < rl ** 0.5 / 2,
    ))
    report.add_comparison(PaperComparison(
        claim="ACMP improves total time (serial sections off the critical path)",
        paper_value="Eq 5 > Eq 4 at low overhead scale",
        measured_value=f"{sym.total / acmp.total:.3f}x",
        qualitative=True, claim_holds=acmp.total < sym.total,
    ))
    report.raw.update(symmetric=sym, acmp=acmp)
    return report


SPECS = (
    ExperimentSpec("ext-critical", run_critical),
    ExperimentSpec("ext-energy", run_energy),
    ExperimentSpec("ext-scaled", run_scaled),
    ExperimentSpec("ext-contention", run_contention),
    ExperimentSpec(
        "ext-acmp-sim", run_acmp_sim,
        stages=(Stage("sim-sweep", declare_units_acmp),),
    ),
    ExperimentSpec(
        "ext-crossover-sim", run_crossover_sim,
        stages=(Stage("sim-sweep", declare_units_crossover),),
    ),
)
