"""Table III — application classes and parameters for the design study."""

from __future__ import annotations

from repro.core.classes import TABLE3_CLASSES
from repro.experiments.report import ExperimentReport
from repro.util.tables import TextTable
from repro.pipeline import ExperimentSpec

__all__ = ["run", "SPEC"]


def run() -> ExperimentReport:
    """Render the eight application classes."""
    report = ExperimentReport("table3", "Application classes and parameters")
    t = TextTable(
        title="Table III — application classes",
        columns=["parallelism", "constant", "reduction", "f", "fcon (%)", "fored (%)"],
    )
    for cls in TABLE3_CLASSES:
        p = cls.params()
        t.add_row([
            "Emb." if cls.parallelism == "emb" else "Non-emb.",
            cls.constant, cls.reduction,
            p.f, 100 * p.fcon_share, 100 * p.fored_share,
        ])
    report.add_table(t)
    report.raw["classes"] = TABLE3_CLASSES
    return report


SPEC = ExperimentSpec("table3", run)
