"""Diffing stored experiment reports (regression tracking).

``repro-merging diff old.json new.json`` compares two JSON reports of the
same experiment: which paper comparisons flipped, which measured values
moved, which tables changed shape.  Intended workflow: archive reports
with ``run --json`` at a known-good revision, diff after model or
simulator changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.report import ExperimentReport

__all__ = ["ReportDiff", "diff_reports"]


@dataclass
class ReportDiff:
    """Differences between two reports of the same experiment."""

    experiment_id: str
    flipped_claims: list[str] = field(default_factory=list)
    changed_values: list[tuple[str, str, str]] = field(default_factory=list)
    added_claims: list[str] = field(default_factory=list)
    removed_claims: list[str] = field(default_factory=list)
    table_shape_changes: list[str] = field(default_factory=list)

    @property
    def is_clean(self) -> bool:
        """True when nothing regressed or changed."""
        return not (
            self.flipped_claims
            or self.changed_values
            or self.added_claims
            or self.removed_claims
            or self.table_shape_changes
        )

    def render(self) -> str:
        if self.is_clean:
            return f"{self.experiment_id}: no differences"
        lines = [f"{self.experiment_id}: differences found"]
        for claim in self.flipped_claims:
            lines.append(f"  FLIPPED: {claim}")
        for claim, old, new in self.changed_values:
            lines.append(f"  value changed: {claim}: {old} -> {new}")
        for claim in self.added_claims:
            lines.append(f"  added claim: {claim}")
        for claim in self.removed_claims:
            lines.append(f"  removed claim: {claim}")
        for msg in self.table_shape_changes:
            lines.append(f"  table: {msg}")
        return "\n".join(lines)


def diff_reports(old: ExperimentReport, new: ExperimentReport) -> ReportDiff:
    """Structural diff of two reports.

    Claims are matched by their text; a claim whose ``matches()`` outcome
    changed is *flipped* (the regression signal), one whose measured value
    merely moved is reported as a value change.
    """
    if old.experiment_id != new.experiment_id:
        raise ValueError(
            f"cannot diff different experiments: "
            f"{old.experiment_id!r} vs {new.experiment_id!r}"
        )
    diff = ReportDiff(experiment_id=new.experiment_id)
    old_by_claim = {c.claim: c for c in old.comparisons}
    new_by_claim = {c.claim: c for c in new.comparisons}
    for claim, oc in old_by_claim.items():
        nc = new_by_claim.get(claim)
        if nc is None:
            diff.removed_claims.append(claim)
            continue
        if oc.matches() != nc.matches():
            diff.flipped_claims.append(
                f"{claim} ({'held' if oc.matches() else 'failed'} -> "
                f"{'holds' if nc.matches() else 'FAILS'})"
            )
        elif str(oc.measured_value) != str(nc.measured_value):
            diff.changed_values.append(
                (claim, str(oc.measured_value), str(nc.measured_value))
            )
    for claim in new_by_claim:
        if claim not in old_by_claim:
            diff.added_claims.append(claim)

    old_tables = {t.title: t for t in old.tables}
    new_tables = {t.title: t for t in new.tables}
    for title, ot in old_tables.items():
        nt = new_tables.get(title)
        if nt is None:
            diff.table_shape_changes.append(f"removed: {title!r}")
        elif (len(ot.rows), list(ot.columns)) != (len(nt.rows), list(nt.columns)):
            diff.table_shape_changes.append(f"shape changed: {title!r}")
    for title in new_tables:
        if title not in old_tables:
            diff.table_shape_changes.append(f"added: {title!r}")
    return diff
