"""Workload-mix design study (extension).

Chips serve portfolios.  This experiment takes the paper's Table II
applications (converted to design-space form) plus a merge-heavy histogram
profile, sweeps mix weights, and reports how the mix-optimal core size
moves — the multi-application version of conclusion (b).
"""

from __future__ import annotations

import numpy as np

from repro.core import merging
from repro.core.mix import WorkloadMix, best_symmetric_for_mix, mix_speedup
from repro.core.params import TABLE2, AppParams
from repro.experiments.report import ExperimentReport, PaperComparison
from repro.util.tables import TextTable
from repro.pipeline import ExperimentSpec

__all__ = ["run", "SPEC"]


def _portfolio() -> dict[str, AppParams]:
    apps = {name: mp.to_design_params() for name, mp in TABLE2.items()}
    apps["merge-heavy"] = AppParams(
        f=0.95, fcon_share=0.40, fored_share=0.90, name="merge-heavy"
    )
    return apps


def run(n: int = 256) -> ExperimentReport:
    """Sweep the portfolio's mix weights."""
    report = ExperimentReport("ext-mix", "Designing for workload mixes")
    apps = _portfolio()
    t = TextTable(
        title="per-application optima (the corner cases the mix must bridge)",
        columns=["application", "optimal r", "speedup"],
    )
    per_app = {}
    for name, p in apps.items():
        best = merging.best_symmetric(p, n)
        per_app[name] = best
        t.add_row([name, best.r, round(best.speedup, 1)])
    report.add_table(t)

    clustering = [apps["kmeans"], apps["fuzzy"], apps["hop"]]
    heavy = apps["merge-heavy"]
    t2 = TextTable(
        title="mix optimum vs merge-heavy share (rest: clustering portfolio)",
        columns=["merge-heavy weight", "optimal r", "mix speedup"],
    )
    rs = []
    for share in (0.0, 0.25, 0.5, 0.75, 1.0):
        if share == 0.0:
            m = WorkloadMix.uniform(clustering)
        elif share == 1.0:
            m = WorkloadMix.uniform([heavy])
        else:
            m = WorkloadMix(
                apps=(*clustering, heavy),
                weights=(*(((1 - share) / 3,) * 3), share),
            )
        best = best_symmetric_for_mix(m, n)
        rs.append(best.r)
        t2.add_row([f"{share:.0%}", best.r, round(best.speedup, 1)])
    report.add_table(t2)

    report.add_comparison(PaperComparison(
        claim="a heavier merge share in the mix forces larger cores",
        paper_value="monotone (conclusion (b), portfolio form)",
        measured_value=" -> ".join(f"{r:.0f}" for r in rs),
        qualitative=True,
        claim_holds=all(a <= b + 1e-9 for a, b in zip(rs, rs[1:])),
    ))
    pure_mix = WorkloadMix.uniform(list(apps.values()))
    best_mix = best_symmetric_for_mix(pure_mix, n)
    dominated = all(
        best_mix.speedup >= float(mix_speedup(pure_mix, n, per_app[a].r)) - 1e-9
        for a in apps
    )
    report.add_comparison(PaperComparison(
        claim="the compromise design beats every single-app design on the mix",
        paper_value="(dominance)",
        measured_value=f"r={best_mix.r:.0f}, {best_mix.speedup:.1f}x",
        qualitative=True, claim_holds=dominated,
    ))
    report.raw.update(per_app=per_app, mix_best=best_mix, rs=rs)
    return report


SPEC = ExperimentSpec("ext-mix", run)
